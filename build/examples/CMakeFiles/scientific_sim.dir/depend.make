# Empty dependencies file for scientific_sim.
# This may be replaced when dependencies are built.
