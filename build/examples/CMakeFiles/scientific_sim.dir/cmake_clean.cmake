file(REMOVE_RECURSE
  "CMakeFiles/scientific_sim.dir/scientific_sim.cpp.o"
  "CMakeFiles/scientific_sim.dir/scientific_sim.cpp.o.d"
  "scientific_sim"
  "scientific_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scientific_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
