# Empty compiler generated dependencies file for multimedia_stream.
# This may be replaced when dependencies are built.
