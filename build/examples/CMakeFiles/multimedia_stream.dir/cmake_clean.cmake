file(REMOVE_RECURSE
  "CMakeFiles/multimedia_stream.dir/multimedia_stream.cpp.o"
  "CMakeFiles/multimedia_stream.dir/multimedia_stream.cpp.o.d"
  "multimedia_stream"
  "multimedia_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimedia_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
