file(REMOVE_RECURSE
  "CMakeFiles/buffer_manager.dir/buffer_manager.cpp.o"
  "CMakeFiles/buffer_manager.dir/buffer_manager.cpp.o.d"
  "buffer_manager"
  "buffer_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
