# Empty dependencies file for buffer_manager.
# This may be replaced when dependencies are built.
