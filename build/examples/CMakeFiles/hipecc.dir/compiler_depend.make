# Empty compiler generated dependencies file for hipecc.
# This may be replaced when dependencies are built.
