file(REMOVE_RECURSE
  "CMakeFiles/hipecc.dir/hipecc.cpp.o"
  "CMakeFiles/hipecc.dir/hipecc.cpp.o.d"
  "hipecc"
  "hipecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
