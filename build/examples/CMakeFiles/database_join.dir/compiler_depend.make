# Empty compiler generated dependencies file for database_join.
# This may be replaced when dependencies are built.
