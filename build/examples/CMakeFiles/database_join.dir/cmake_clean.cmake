file(REMOVE_RECURSE
  "CMakeFiles/database_join.dir/database_join.cpp.o"
  "CMakeFiles/database_join.dir/database_join.cpp.o.d"
  "database_join"
  "database_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
