# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_database_join "/root/repo/build/examples/database_join" "42" "40")
set_tests_properties(example_database_join PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multimedia_stream "/root/repo/build/examples/multimedia_stream" "1")
set_tests_properties(example_multimedia_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scientific_sim "/root/repo/build/examples/scientific_sim" "2")
set_tests_properties(example_scientific_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_buffer_manager "/root/repo/build/examples/buffer_manager" "2000" "2")
set_tests_properties(example_buffer_manager PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hipecc_mru "/root/repo/build/examples/hipecc" "/root/repo/examples/policies/mru_join.hp")
set_tests_properties(example_hipecc_mru PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hipecc_fifo2nd "/root/repo/build/examples/hipecc" "/root/repo/examples/policies/fifo_second_chance.hp")
set_tests_properties(example_hipecc_fifo2nd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hipecc_clock "/root/repo/build/examples/hipecc" "/root/repo/examples/policies/clock.hp")
set_tests_properties(example_hipecc_clock PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
