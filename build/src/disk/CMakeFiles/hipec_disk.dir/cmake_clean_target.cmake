file(REMOVE_RECURSE
  "libhipec_disk.a"
)
