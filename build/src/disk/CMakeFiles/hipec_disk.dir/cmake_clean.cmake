file(REMOVE_RECURSE
  "CMakeFiles/hipec_disk.dir/disk_model.cc.o"
  "CMakeFiles/hipec_disk.dir/disk_model.cc.o.d"
  "libhipec_disk.a"
  "libhipec_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
