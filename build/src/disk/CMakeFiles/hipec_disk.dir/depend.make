# Empty dependencies file for hipec_disk.
# This may be replaced when dependencies are built.
