# CMake generated Testfile for 
# Source directory: /root/repo/src/hipec
# Build directory: /root/repo/build/src/hipec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
