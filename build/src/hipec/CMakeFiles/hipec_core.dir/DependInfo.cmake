
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hipec/checker.cc" "src/hipec/CMakeFiles/hipec_core.dir/checker.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/checker.cc.o.d"
  "/root/repo/src/hipec/engine.cc" "src/hipec/CMakeFiles/hipec_core.dir/engine.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/engine.cc.o.d"
  "/root/repo/src/hipec/executor.cc" "src/hipec/CMakeFiles/hipec_core.dir/executor.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/executor.cc.o.d"
  "/root/repo/src/hipec/frame_manager.cc" "src/hipec/CMakeFiles/hipec_core.dir/frame_manager.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/frame_manager.cc.o.d"
  "/root/repo/src/hipec/instruction.cc" "src/hipec/CMakeFiles/hipec_core.dir/instruction.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/instruction.cc.o.d"
  "/root/repo/src/hipec/operand.cc" "src/hipec/CMakeFiles/hipec_core.dir/operand.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/operand.cc.o.d"
  "/root/repo/src/hipec/program.cc" "src/hipec/CMakeFiles/hipec_core.dir/program.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/program.cc.o.d"
  "/root/repo/src/hipec/validator.cc" "src/hipec/CMakeFiles/hipec_core.dir/validator.cc.o" "gcc" "src/hipec/CMakeFiles/hipec_core.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hipec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hipec_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/hipec_mach.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
