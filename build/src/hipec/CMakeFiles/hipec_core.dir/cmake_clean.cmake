file(REMOVE_RECURSE
  "CMakeFiles/hipec_core.dir/checker.cc.o"
  "CMakeFiles/hipec_core.dir/checker.cc.o.d"
  "CMakeFiles/hipec_core.dir/engine.cc.o"
  "CMakeFiles/hipec_core.dir/engine.cc.o.d"
  "CMakeFiles/hipec_core.dir/executor.cc.o"
  "CMakeFiles/hipec_core.dir/executor.cc.o.d"
  "CMakeFiles/hipec_core.dir/frame_manager.cc.o"
  "CMakeFiles/hipec_core.dir/frame_manager.cc.o.d"
  "CMakeFiles/hipec_core.dir/instruction.cc.o"
  "CMakeFiles/hipec_core.dir/instruction.cc.o.d"
  "CMakeFiles/hipec_core.dir/operand.cc.o"
  "CMakeFiles/hipec_core.dir/operand.cc.o.d"
  "CMakeFiles/hipec_core.dir/program.cc.o"
  "CMakeFiles/hipec_core.dir/program.cc.o.d"
  "CMakeFiles/hipec_core.dir/validator.cc.o"
  "CMakeFiles/hipec_core.dir/validator.cc.o.d"
  "libhipec_core.a"
  "libhipec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
