file(REMOVE_RECURSE
  "libhipec_core.a"
)
