# Empty dependencies file for hipec_core.
# This may be replaced when dependencies are built.
