# Empty dependencies file for hipec_baseline.
# This may be replaced when dependencies are built.
