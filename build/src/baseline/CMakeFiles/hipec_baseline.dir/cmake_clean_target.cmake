file(REMOVE_RECURSE
  "libhipec_baseline.a"
)
