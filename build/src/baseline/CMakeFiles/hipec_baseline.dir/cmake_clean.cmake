file(REMOVE_RECURSE
  "CMakeFiles/hipec_baseline.dir/user_level_pager.cc.o"
  "CMakeFiles/hipec_baseline.dir/user_level_pager.cc.o.d"
  "libhipec_baseline.a"
  "libhipec_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
