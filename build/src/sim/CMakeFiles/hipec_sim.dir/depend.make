# Empty dependencies file for hipec_sim.
# This may be replaced when dependencies are built.
