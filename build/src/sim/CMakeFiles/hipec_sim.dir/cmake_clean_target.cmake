file(REMOVE_RECURSE
  "libhipec_sim.a"
)
