file(REMOVE_RECURSE
  "CMakeFiles/hipec_sim.dir/clock.cc.o"
  "CMakeFiles/hipec_sim.dir/clock.cc.o.d"
  "CMakeFiles/hipec_sim.dir/stats.cc.o"
  "CMakeFiles/hipec_sim.dir/stats.cc.o.d"
  "CMakeFiles/hipec_sim.dir/trace.cc.o"
  "CMakeFiles/hipec_sim.dir/trace.cc.o.d"
  "libhipec_sim.a"
  "libhipec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
