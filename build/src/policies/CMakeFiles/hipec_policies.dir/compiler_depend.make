# Empty compiler generated dependencies file for hipec_policies.
# This may be replaced when dependencies are built.
