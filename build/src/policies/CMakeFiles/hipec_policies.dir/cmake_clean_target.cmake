file(REMOVE_RECURSE
  "libhipec_policies.a"
)
