file(REMOVE_RECURSE
  "CMakeFiles/hipec_policies.dir/oracle.cc.o"
  "CMakeFiles/hipec_policies.dir/oracle.cc.o.d"
  "CMakeFiles/hipec_policies.dir/policies.cc.o"
  "CMakeFiles/hipec_policies.dir/policies.cc.o.d"
  "libhipec_policies.a"
  "libhipec_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
