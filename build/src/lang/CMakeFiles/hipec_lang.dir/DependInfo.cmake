
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/assembler.cc" "src/lang/CMakeFiles/hipec_lang.dir/assembler.cc.o" "gcc" "src/lang/CMakeFiles/hipec_lang.dir/assembler.cc.o.d"
  "/root/repo/src/lang/compiler.cc" "src/lang/CMakeFiles/hipec_lang.dir/compiler.cc.o" "gcc" "src/lang/CMakeFiles/hipec_lang.dir/compiler.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/hipec_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/hipec_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/hipec_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/hipec_lang.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hipec/CMakeFiles/hipec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/hipec_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hipec_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
