file(REMOVE_RECURSE
  "libhipec_lang.a"
)
