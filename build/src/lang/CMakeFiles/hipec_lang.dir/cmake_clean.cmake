file(REMOVE_RECURSE
  "CMakeFiles/hipec_lang.dir/assembler.cc.o"
  "CMakeFiles/hipec_lang.dir/assembler.cc.o.d"
  "CMakeFiles/hipec_lang.dir/compiler.cc.o"
  "CMakeFiles/hipec_lang.dir/compiler.cc.o.d"
  "CMakeFiles/hipec_lang.dir/lexer.cc.o"
  "CMakeFiles/hipec_lang.dir/lexer.cc.o.d"
  "CMakeFiles/hipec_lang.dir/parser.cc.o"
  "CMakeFiles/hipec_lang.dir/parser.cc.o.d"
  "libhipec_lang.a"
  "libhipec_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
