# Empty dependencies file for hipec_lang.
# This may be replaced when dependencies are built.
