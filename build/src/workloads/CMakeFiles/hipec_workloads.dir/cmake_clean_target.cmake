file(REMOVE_RECURSE
  "libhipec_workloads.a"
)
