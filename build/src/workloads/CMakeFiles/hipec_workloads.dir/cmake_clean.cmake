file(REMOVE_RECURSE
  "CMakeFiles/hipec_workloads.dir/access_patterns.cc.o"
  "CMakeFiles/hipec_workloads.dir/access_patterns.cc.o.d"
  "CMakeFiles/hipec_workloads.dir/aim_suite.cc.o"
  "CMakeFiles/hipec_workloads.dir/aim_suite.cc.o.d"
  "CMakeFiles/hipec_workloads.dir/join_workload.cc.o"
  "CMakeFiles/hipec_workloads.dir/join_workload.cc.o.d"
  "libhipec_workloads.a"
  "libhipec_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
