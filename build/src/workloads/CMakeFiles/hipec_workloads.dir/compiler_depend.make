# Empty compiler generated dependencies file for hipec_workloads.
# This may be replaced when dependencies are built.
