
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mach/emm.cc" "src/mach/CMakeFiles/hipec_mach.dir/emm.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/emm.cc.o.d"
  "/root/repo/src/mach/kernel.cc" "src/mach/CMakeFiles/hipec_mach.dir/kernel.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/kernel.cc.o.d"
  "/root/repo/src/mach/page_queue.cc" "src/mach/CMakeFiles/hipec_mach.dir/page_queue.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/page_queue.cc.o.d"
  "/root/repo/src/mach/pageout_daemon.cc" "src/mach/CMakeFiles/hipec_mach.dir/pageout_daemon.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/pageout_daemon.cc.o.d"
  "/root/repo/src/mach/pmap.cc" "src/mach/CMakeFiles/hipec_mach.dir/pmap.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/pmap.cc.o.d"
  "/root/repo/src/mach/vm_map.cc" "src/mach/CMakeFiles/hipec_mach.dir/vm_map.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/vm_map.cc.o.d"
  "/root/repo/src/mach/vm_object.cc" "src/mach/CMakeFiles/hipec_mach.dir/vm_object.cc.o" "gcc" "src/mach/CMakeFiles/hipec_mach.dir/vm_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hipec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hipec_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
