file(REMOVE_RECURSE
  "CMakeFiles/hipec_mach.dir/emm.cc.o"
  "CMakeFiles/hipec_mach.dir/emm.cc.o.d"
  "CMakeFiles/hipec_mach.dir/kernel.cc.o"
  "CMakeFiles/hipec_mach.dir/kernel.cc.o.d"
  "CMakeFiles/hipec_mach.dir/page_queue.cc.o"
  "CMakeFiles/hipec_mach.dir/page_queue.cc.o.d"
  "CMakeFiles/hipec_mach.dir/pageout_daemon.cc.o"
  "CMakeFiles/hipec_mach.dir/pageout_daemon.cc.o.d"
  "CMakeFiles/hipec_mach.dir/pmap.cc.o"
  "CMakeFiles/hipec_mach.dir/pmap.cc.o.d"
  "CMakeFiles/hipec_mach.dir/vm_map.cc.o"
  "CMakeFiles/hipec_mach.dir/vm_map.cc.o.d"
  "CMakeFiles/hipec_mach.dir/vm_object.cc.o"
  "CMakeFiles/hipec_mach.dir/vm_object.cc.o.d"
  "libhipec_mach.a"
  "libhipec_mach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_mach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
