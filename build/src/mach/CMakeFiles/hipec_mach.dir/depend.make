# Empty dependencies file for hipec_mach.
# This may be replaced when dependencies are built.
