# Empty compiler generated dependencies file for hipec_mach.
# This may be replaced when dependencies are built.
