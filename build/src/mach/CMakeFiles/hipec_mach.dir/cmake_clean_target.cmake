file(REMOVE_RECURSE
  "libhipec_mach.a"
)
