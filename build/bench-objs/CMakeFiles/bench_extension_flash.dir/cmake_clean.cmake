file(REMOVE_RECURSE
  "../bench/bench_extension_flash"
  "../bench/bench_extension_flash.pdb"
  "CMakeFiles/bench_extension_flash.dir/bench_extension_flash.cc.o"
  "CMakeFiles/bench_extension_flash.dir/bench_extension_flash.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
