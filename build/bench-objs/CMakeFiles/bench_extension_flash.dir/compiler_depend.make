# Empty compiler generated dependencies file for bench_extension_flash.
# This may be replaced when dependencies are built.
