# Empty dependencies file for bench_extension_adaptive.
# This may be replaced when dependencies are built.
