file(REMOVE_RECURSE
  "../bench/bench_extension_adaptive"
  "../bench/bench_extension_adaptive.pdb"
  "CMakeFiles/bench_extension_adaptive.dir/bench_extension_adaptive.cc.o"
  "CMakeFiles/bench_extension_adaptive.dir/bench_extension_adaptive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
