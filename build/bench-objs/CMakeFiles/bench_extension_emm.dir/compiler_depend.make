# Empty compiler generated dependencies file for bench_extension_emm.
# This may be replaced when dependencies are built.
