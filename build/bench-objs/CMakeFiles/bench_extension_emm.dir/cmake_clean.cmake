file(REMOVE_RECURSE
  "../bench/bench_extension_emm"
  "../bench/bench_extension_emm.pdb"
  "CMakeFiles/bench_extension_emm.dir/bench_extension_emm.cc.o"
  "CMakeFiles/bench_extension_emm.dir/bench_extension_emm.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_emm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
