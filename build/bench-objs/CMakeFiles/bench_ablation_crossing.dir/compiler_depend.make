# Empty compiler generated dependencies file for bench_ablation_crossing.
# This may be replaced when dependencies are built.
