file(REMOVE_RECURSE
  "../bench/bench_ablation_crossing"
  "../bench/bench_ablation_crossing.pdb"
  "CMakeFiles/bench_ablation_crossing.dir/bench_ablation_crossing.cc.o"
  "CMakeFiles/bench_ablation_crossing.dir/bench_ablation_crossing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crossing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
