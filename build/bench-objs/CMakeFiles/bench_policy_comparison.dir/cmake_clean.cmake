file(REMOVE_RECURSE
  "../bench/bench_policy_comparison"
  "../bench/bench_policy_comparison.pdb"
  "CMakeFiles/bench_policy_comparison.dir/bench_policy_comparison.cc.o"
  "CMakeFiles/bench_policy_comparison.dir/bench_policy_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_policy_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
