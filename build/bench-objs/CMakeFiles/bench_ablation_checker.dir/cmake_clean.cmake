file(REMOVE_RECURSE
  "../bench/bench_ablation_checker"
  "../bench/bench_ablation_checker.pdb"
  "CMakeFiles/bench_ablation_checker.dir/bench_ablation_checker.cc.o"
  "CMakeFiles/bench_ablation_checker.dir/bench_ablation_checker.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
