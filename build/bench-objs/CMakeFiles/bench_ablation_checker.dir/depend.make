# Empty dependencies file for bench_ablation_checker.
# This may be replaced when dependencies are built.
