file(REMOVE_RECURSE
  "../bench/bench_figure6"
  "../bench/bench_figure6.pdb"
  "CMakeFiles/bench_figure6.dir/bench_figure6.cc.o"
  "CMakeFiles/bench_figure6.dir/bench_figure6.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
