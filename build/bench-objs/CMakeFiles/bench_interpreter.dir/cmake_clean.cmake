file(REMOVE_RECURSE
  "../bench/bench_interpreter"
  "../bench/bench_interpreter.pdb"
  "CMakeFiles/bench_interpreter.dir/bench_interpreter.cc.o"
  "CMakeFiles/bench_interpreter.dir/bench_interpreter.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
