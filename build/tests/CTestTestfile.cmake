# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/disk_test[1]_include.cmake")
include("/root/repo/build/tests/mach_test[1]_include.cmake")
include("/root/repo/build/tests/hipec_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/emm_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/policy_library_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/fallback_paths_test[1]_include.cmake")
