# Empty dependencies file for hipec_test.
# This may be replaced when dependencies are built.
