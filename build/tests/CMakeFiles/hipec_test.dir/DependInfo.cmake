
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hipec_test.cc" "tests/CMakeFiles/hipec_test.dir/hipec_test.cc.o" "gcc" "tests/CMakeFiles/hipec_test.dir/hipec_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/hipec_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hipec_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/hipec_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/policies/CMakeFiles/hipec_policies.dir/DependInfo.cmake"
  "/root/repo/build/src/hipec/CMakeFiles/hipec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mach/CMakeFiles/hipec_mach.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/hipec_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hipec_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
