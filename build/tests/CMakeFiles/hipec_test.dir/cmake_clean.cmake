file(REMOVE_RECURSE
  "CMakeFiles/hipec_test.dir/hipec_test.cc.o"
  "CMakeFiles/hipec_test.dir/hipec_test.cc.o.d"
  "hipec_test"
  "hipec_test.pdb"
  "hipec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hipec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
