file(REMOVE_RECURSE
  "CMakeFiles/emm_test.dir/emm_test.cc.o"
  "CMakeFiles/emm_test.dir/emm_test.cc.o.d"
  "emm_test"
  "emm_test.pdb"
  "emm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
