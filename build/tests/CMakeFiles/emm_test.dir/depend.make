# Empty dependencies file for emm_test.
# This may be replaced when dependencies are built.
