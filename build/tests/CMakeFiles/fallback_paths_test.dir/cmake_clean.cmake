file(REMOVE_RECURSE
  "CMakeFiles/fallback_paths_test.dir/fallback_paths_test.cc.o"
  "CMakeFiles/fallback_paths_test.dir/fallback_paths_test.cc.o.d"
  "fallback_paths_test"
  "fallback_paths_test.pdb"
  "fallback_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallback_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
