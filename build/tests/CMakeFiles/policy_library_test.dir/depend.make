# Empty dependencies file for policy_library_test.
# This may be replaced when dependencies are built.
