file(REMOVE_RECURSE
  "CMakeFiles/policy_library_test.dir/policy_library_test.cc.o"
  "CMakeFiles/policy_library_test.dir/policy_library_test.cc.o.d"
  "policy_library_test"
  "policy_library_test.pdb"
  "policy_library_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_library_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
