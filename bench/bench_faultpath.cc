// Whole-fault-path microbenchmark (host time, not virtual time): drives real page faults
// through the full stack — kernel entry, HiPEC engine, policy executor, frame manager, disk
// model — for the Table 2 policy set, and reports faults/sec plus an ns/fault breakdown as
// one JSON object per line (grep for lines starting with '{').
//
// Four dispatch configurations are compared:
//   production   decoded IR, superinstruction fusion, computed-goto dispatch (the default)
//   pre_pr       decoded IR as it was before the fusion/threading work: unfused stream,
//                dense-switch dispatch
//   reference    the retained pre-IR decode-per-event switch interpreter
//   jit          install-time template JIT (native code per event, jit.h); on hosts where
//                the JIT is unavailable this layer silently measures the IR fallback, and
//                the jit_* metrics are emitted with available=0 so CI skips them
//
// The breakdown attributes the production ns/fault to layers by measuring each layer in
// isolation (policy execution via a bare ExecuteEvent on the free-list path, frame manager
// via a Request/Release cycle, I/O via direct disk-model reads scaled by the storm's
// disk-fill rate) and charging the remainder to kernel entry/page installation.
//
// A calibration score (arith-loop commands/sec on the production interpreter) is emitted so
// CI can compare runs across machines of different speeds: faults/sec divided by the
// calibration score is roughly machine-independent.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "disk/disk_model.h"
#include "hipec/builder.h"
#include "hipec/engine.h"
#include "hipec/executor.h"
#include "hipec/jit.h"
#include "mach/kernel.h"
#include "obs/probe.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
namespace ops = core::std_ops;

// One interpreter configuration under test.
struct PathConfig {
  const char* name;
  core::DispatchMode mode;
  bool threaded;
  bool fuse;
  // Re-enable the pre-interning string-keyed counter lookups on every layer (see
  // sim::CounterSet::SetLegacyStringLookups) so "pre_pr" measures the path as it actually
  // was, not just the interpreter half of it.
  bool legacy_counters;
};

constexpr PathConfig kConfigs[] = {
    {"production", core::DispatchMode::kDecodedIr, /*threaded=*/true, /*fuse=*/true,
     /*legacy_counters=*/false},
    {"pre_pr", core::DispatchMode::kDecodedIr, /*threaded=*/false, /*fuse=*/false,
     /*legacy_counters=*/true},
    {"reference", core::DispatchMode::kReferenceSwitch, /*threaded=*/false, /*fuse=*/true,
     /*legacy_counters=*/false},
    {"jit", core::DispatchMode::kJit, /*threaded=*/true, /*fuse=*/true,
     /*legacy_counters=*/false},
};
constexpr size_t kNumConfigs = sizeof(kConfigs) / sizeof(kConfigs[0]);
constexpr size_t kProductionIdx = 0;
constexpr size_t kPrePrIdx = 1;
constexpr size_t kReferenceIdx = 2;
constexpr size_t kJitIdx = 3;

struct PolicyCase {
  const char* name;
  std::function<core::PolicyProgram()> make_program;
  std::function<core::HipecOptions()> make_options;
};

core::HipecOptions StandardOptions() {
  core::HipecOptions options;
  options.min_frames = 16;
  options.free_target = 4;
  options.inactive_target = 8;
  return options;
}

std::vector<PolicyCase> Table2Policies() {
  return {
      {"fifo", [] { return policies::FifoPolicy(policies::CommandStyle::kSimple); },
       StandardOptions},
      {"fifo_second_chance", [] { return policies::FifoSecondChancePolicy(); },
       StandardOptions},
      {"lru", [] { return policies::LruPolicy(policies::CommandStyle::kComplex); },
       StandardOptions},
      {"mru", [] { return policies::MruPolicy(policies::CommandStyle::kSimple); },
       StandardOptions},
      {"clock", [] { return policies::ClockPolicy(); }, StandardOptions},
      {"two_queue", [] { return policies::TwoQueuePolicy(); },
       [] {
         core::HipecOptions options = policies::TwoQueueOptions();
         options.min_frames = 16;
         return options;
       }},
  };
}

mach::KernelParams BenchParams() {
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 16;
  params.pageout.free_min = 4;
  params.hipec_build = true;
  return params;
}

void ApplyConfig(core::HipecEngine& engine, core::Container* container,
                 const PathConfig& config) {
  engine.executor().set_dispatch_mode(config.mode);
  engine.executor().set_threaded_dispatch(config.threaded);
  sim::CounterSet::SetLegacyStringLookups(config.legacy_counters);
  if (!config.fuse) {
    container->AdoptDecodedProgram(core::DecodePolicy(container->program(),
                                                      container->operands(), nullptr,
                                                      /*fuse_superinstructions=*/false));
  }
}

// Restores the process-wide counter mode when a measurement scope ends.
struct LegacyCounterScopeReset {
  ~LegacyCounterScopeReset() { sim::CounterSet::SetLegacyStringLookups(false); }
};

double Seconds(std::chrono::steady_clock::time_point start) {
  std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

struct StormResult {
  double faults_per_sec = 0;
  double ns_per_fault = 0;
  int64_t faults = 0;
  double disk_fills_per_fault = 0;
};

// Cyclic sweep over a 64-page region backed by 16 private frames: every policy replaces
// continuously, so nearly every touch is a whole fault (TLB-hit touches cost ~ns and are
// excluded by dividing elapsed time by the fault count).
StormResult RunFaultStorm(const PolicyCase& policy, const PathConfig& config) {
  LegacyCounterScopeReset reset_legacy_mode;
  constexpr uint64_t kRegionPages = 64;
  constexpr int kWarmupSweeps = 50;
  constexpr int kMeasureSweeps = 1000;

  mach::Kernel kernel(BenchParams());
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("bench");
  core::HipecRegion region = engine.VmAllocateHipec(task, kRegionPages * kPageSize,
                                                    policy.make_program(),
                                                    policy.make_options());
  if (!region.ok) {
    std::fprintf(stderr, "bench_faultpath: %s registration failed: %s\n", policy.name,
                 region.error.c_str());
    std::exit(1);
  }
  ApplyConfig(engine, region.container, config);

  auto sweep = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      for (uint64_t i = 0; i < kRegionPages; ++i) {
        kernel.Touch(task, region.addr + i * kPageSize, (i + static_cast<uint64_t>(round)) % 3 == 0);
      }
    }
  };

  sweep(kWarmupSweeps);

  // Best of three measurement windows over the same steady-state storm: the shared machines
  // CI runs on jitter by tens of percent, and the fastest window is the least-perturbed one.
  constexpr int kWindows = 3;
  StormResult result;
  for (int window = 0; window < kWindows; ++window) {
    int64_t faults_before = engine.counters().Get("engine.faults_handled");
    int64_t fills_before = kernel.counters().Get("kernel.disk_fills");
    auto start = std::chrono::steady_clock::now();
    sweep(kMeasureSweeps);
    double elapsed = Seconds(start);
    if (task->terminated()) {
      std::fprintf(stderr, "bench_faultpath: %s/%s terminated: %s\n", policy.name, config.name,
                   task->termination_reason().c_str());
      std::exit(1);
    }
    int64_t faults = engine.counters().Get("engine.faults_handled") - faults_before;
    if (faults <= 0) {
      std::fprintf(stderr, "bench_faultpath: %s/%s took no faults\n", policy.name, config.name);
      std::exit(1);
    }
    double faults_per_sec = static_cast<double>(faults) / elapsed;
    if (faults_per_sec > result.faults_per_sec) {
      result.faults = faults;
      result.faults_per_sec = faults_per_sec;
      result.ns_per_fault = 1e9 * elapsed / static_cast<double>(faults);
      result.disk_fills_per_fault =
          static_cast<double>(kernel.counters().Get("kernel.disk_fills") - fills_before) /
          static_cast<double>(faults);
    }
  }
  return result;
}

// Isolated policy execution on the free-list fast path: the ns the executor itself
// contributes to a fault, without kernel entry, page installation or I/O.
double MeasurePolicyNs(const PolicyCase& policy, const PathConfig& config) {
  LegacyCounterScopeReset reset_legacy_mode;
  mach::Kernel kernel(BenchParams());
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("bench");
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 32 * kPageSize, policy.make_program(),
                             policy.make_options());
  if (!region.ok) {
    return 0;
  }
  ApplyConfig(engine, region.container, config);
  core::Container* container = region.container;
  core::PolicyExecutor& executor = engine.executor();

  auto run_one = [&]() -> bool {
    core::ExecResult result = executor.ExecuteEvent(container, core::kEventPageFault);
    if (!result.ok() ||
        container->operands().TypeOf(result.return_operand) != core::OperandType::kPage) {
      return false;
    }
    mach::VmPage* page = container->operands().ReadPageOrNull(result.return_operand);
    if (page == nullptr) {
      return false;
    }
    container->free_q().EnqueueTail(page, 0);
    container->operands().WritePage(result.return_operand, nullptr);
    return true;
  };

  for (int i = 0; i < 2'000; ++i) {
    if (!run_one()) {
      return 0;
    }
  }
  // Best of five windows (more than the storm's three): the jit_policy_speedup gate divides
  // two of these numbers, so scheduler noise on either side shows up directly in the gated
  // ratio, and the windows are short enough (~0.5 ms) that extra ones are nearly free.
  constexpr int kEvents = 20'000;
  constexpr int kWindows = 5;
  double best_ns = 0;
  for (int window = 0; window < kWindows; ++window) {
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kEvents; ++i) {
      run_one();
    }
    const double ns = 1e9 * Seconds(start) / kEvents;
    if (best_ns == 0 || ns < best_ns) {
      best_ns = ns;
    }
  }
  return best_ns;
}

// Frame-manager Request/Release cycle cost (global pool bookkeeping, queue moves).
double MeasureFrameManagerNs() {
  mach::Kernel kernel(BenchParams());
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("bench");
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 32 * kPageSize,
                             policies::FifoPolicy(policies::CommandStyle::kSimple),
                             StandardOptions());
  if (!region.ok) {
    return 0;
  }
  core::Container* c = region.container;
  core::GlobalFrameManager& manager = engine.manager();

  auto cycle = [&]() {
    if (!manager.RequestFrames(c, 1, &c->free_q())) {
      return;
    }
    mach::VmPage* page = c->free_q().DequeueTail();
    if (page != nullptr) {
      manager.ReleaseFrame(c, page);
    }
  };
  for (int i = 0; i < 2'000; ++i) {
    cycle();
  }
  constexpr int kCycles = 20'000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCycles; ++i) {
    cycle();
  }
  return 1e9 * Seconds(start) / kCycles;
}

// Host cost of one disk-model page read (the virtual service-time computation).
double MeasureIoNs() {
  sim::VirtualClock clock;
  disk::DiskModel disk_model(&clock, disk::DiskParams::Era1994(), /*seed=*/42);
  for (int i = 0; i < 1'000; ++i) {
    disk_model.ReadPage(static_cast<uint64_t>(i) * 37 % 4096);
  }
  constexpr int kReads = 20'000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReads; ++i) {
    disk_model.ReadPage(static_cast<uint64_t>(i) * 37 % 4096);
  }
  return 1e9 * Seconds(start) / kReads;
}

// Machine-speed score for cross-run comparisons: arith-loop commands/sec on the production
// interpreter (same workload as bench_interpreter's JSON summary).
double MeasureCalibrationScore() {
  core::EventBuilder b;
  auto loop = b.NewLabel();
  auto done = b.NewLabel();
  b.LoadImm(ops::kScratch0, 100);
  b.LoadImm(ops::kScratch1, 1);
  b.Bind(loop);
  b.Comp(ops::kScratch0, ops::kScratch1, core::CompOp::kGt);
  b.JumpIfFalse(done);
  b.Arith(ops::kScratch0, ops::kScratch1, core::ArithOp::kSub);
  b.JumpIfFalse(loop);
  b.Bind(done);
  b.Return(0);
  core::PolicyProgram program;
  program.SetEvent(core::kEventPageFault, b.Build());
  core::EventBuilder reclaim;
  reclaim.Return(0);
  program.SetEvent(core::kEventReclaimFrame, reclaim.Build());

  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::GlobalFrameManager manager(&kernel, {});
  core::PolicyExecutor executor(&kernel, &manager);
  mach::Task* task = kernel.CreateTask("bench");
  mach::VmObject* object = kernel.CreateAnonObject(4 * kPageSize);
  core::Container container(1, task, object, std::move(program), 0, sim::kSecond);
  core::SetupStandardOperands(&container, {});

  for (int i = 0; i < 2'000; ++i) {
    executor.ExecuteEvent(&container, core::kEventPageFault);
  }
  constexpr int kEvents = 20'000;
  int64_t commands = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    commands += executor.ExecuteEvent(&container, core::kEventPageFault).commands_executed;
  }
  return static_cast<double>(commands) / Seconds(start);
}

}  // namespace

int main() {
  bench::Title("bench_faultpath: whole-fault microbenchmark (host time)");
  bench::Note("configs: production (fused IR, computed-goto), pre_pr (unfused IR, switch),");
  bench::Note("         reference (pre-IR decode-per-event interpreter), jit (template JIT)");
  bench::Rule();

  const double io_ns = MeasureIoNs();
  const double frame_manager_ns = MeasureFrameManagerNs();

  bench::JsonLine json;
  json.Str("bench", "faultpath").Str("metric", "calibration_commands_per_sec")
      .Num("value", MeasureCalibrationScore(), 0).Emit();

  double log_speedup_sum = 0;
  double log_jit_speedup_sum = 0;
  int policy_count = 0;
  for (const PolicyCase& policy : Table2Policies()) {
    double per_config[kNumConfigs] = {};
    for (size_t ci = 0; ci < kNumConfigs; ++ci) {
      const PathConfig& config = kConfigs[ci];
      // Calibrate adjacent in time to the storm it normalizes: shared machines drift by tens
      // of percent over the run, and a single up-front score would bake that drift into the
      // normalized numbers CI compares.
      const double calibration = MeasureCalibrationScore();
      StormResult storm = RunFaultStorm(policy, config);
      per_config[ci] = storm.faults_per_sec;
      std::printf("%-20s %-12s %9.0f faults/sec  %8.0f ns/fault  (%lld faults)\n",
                  policy.name, config.name, storm.faults_per_sec, storm.ns_per_fault,
                  static_cast<long long>(storm.faults));
      json.Str("bench", "faultpath")
          .Str("policy", policy.name)
          .Str("config", config.name)
          .Int("faults", storm.faults)
          .Num("faults_per_sec", storm.faults_per_sec, 0)
          .Num("ns_per_fault", storm.ns_per_fault, 1)
          .Num("normalized_score", storm.faults_per_sec / calibration, 6)
          .Emit();

      if (ci == kProductionIdx) {
        // ns/fault breakdown for the production path.
        double policy_ns = MeasurePolicyNs(policy, config);
        double io_share_ns = io_ns * storm.disk_fills_per_fault;
        double kernel_entry_ns =
            std::max(0.0, storm.ns_per_fault - policy_ns - frame_manager_ns - io_share_ns);
        json.Str("bench", "faultpath_breakdown")
            .Str("policy", policy.name)
            .Num("ns_per_fault", storm.ns_per_fault, 1)
            .Num("kernel_entry_ns", kernel_entry_ns, 1)
            .Num("policy_ns", policy_ns, 1)
            .Num("frame_manager_ns", frame_manager_ns, 1)
            .Num("io_ns", io_share_ns, 1)
            .Emit();
      }
    }
    double speedup = per_config[kProductionIdx] / per_config[kPrePrIdx];
    log_speedup_sum += std::log(speedup);
    ++policy_count;
    std::printf("%-20s speedup vs pre_pr: %.2fx, vs reference: %.2fx\n", policy.name,
                speedup, per_config[kProductionIdx] / per_config[kReferenceIdx]);
    json.Str("bench", "faultpath")
        .Str("policy", policy.name)
        .Str("metric", "speedup_vs_pre_pr")
        .Num("value", speedup)
        .Emit();
    json.Str("bench", "faultpath")
        .Str("policy", policy.name)
        .Str("metric", "speedup_vs_reference")
        .Num("value", per_config[kProductionIdx] / per_config[kReferenceIdx])
        .Emit();

    // Policy-layer JIT speedup: isolated ExecuteEvent (free-list fast path), compiled code
    // vs the production computed-goto IR loop. This is the number the JIT work is gated on —
    // the whole-fault ratio above dilutes it with kernel entry, page installation and I/O,
    // which the JIT does not touch. On non-x86-64 hosts the jit config runs the IR fallback,
    // so the ratio is ~1.0 and meaningless; available=0 tells the regression gate to skip it.
    const double ir_policy_ns = MeasurePolicyNs(policy, kConfigs[kProductionIdx]);
    const double jit_policy_ns = MeasurePolicyNs(policy, kConfigs[kJitIdx]);
    const double jit_speedup =
        jit_policy_ns > 0 ? ir_policy_ns / jit_policy_ns : 0.0;
    if (jit_speedup > 0) {
      log_jit_speedup_sum += std::log(jit_speedup);
    }
    std::printf("%-20s jit policy layer: %.0f -> %.0f ns/event (%.2fx)\n", policy.name,
                ir_policy_ns, jit_policy_ns, jit_speedup);
    json.Str("bench", "faultpath")
        .Str("policy", policy.name)
        .Str("metric", "jit_policy_speedup")
        .Num("value", jit_speedup)
        .Num("ir_policy_ns", ir_policy_ns, 1)
        .Num("jit_policy_ns", jit_policy_ns, 1)
        .Int("available", core::jit::Available() ? 1 : 0)
        .Emit();
  }

  double geomean = std::exp(log_speedup_sum / policy_count);
  double jit_geomean = std::exp(log_jit_speedup_sum / policy_count);
  bench::Rule();
  std::printf("geomean speedup (production vs pre_pr): %.2fx\n", geomean);
  std::printf("geomean jit policy-layer speedup (jit vs production): %.2fx\n", jit_geomean);
  json.Str("bench", "faultpath").Str("metric", "geomean_speedup_vs_pre_pr")
      .Num("value", geomean).Emit();
  json.Str("bench", "faultpath").Str("metric", "jit_speedup")
      .Num("value", jit_geomean)
      .Int("available", core::jit::Available() ? 1 : 0)
      .Emit();

  // Observability-probe overhead on the production path: the storms above ran with probes
  // compiled in but runtime-disabled (the default, gated by the CI regression check against
  // bench/baseline.json); here the same storm runs once in each mode so the cost of turning
  // observability *on* is a first-class metric rather than folklore.
  {
    const PolicyCase probe_policy = Table2Policies().front();
    StormResult probes_off;
    StormResult probes_on;
    {
      obs::ScopedProbes scoped(false);
      probes_off = RunFaultStorm(probe_policy, kConfigs[kProductionIdx]);
    }
    {
      obs::ScopedProbes scoped(true);
      probes_on = RunFaultStorm(probe_policy, kConfigs[kProductionIdx]);
    }
    double overhead_pct =
        probes_off.ns_per_fault > 0
            ? 100.0 * (probes_on.ns_per_fault - probes_off.ns_per_fault) / probes_off.ns_per_fault
            : 0.0;
    std::printf("probe overhead (%s, production): off %.0f ns/fault, on %.0f ns/fault "
                "(%+.2f%%, compiled %s)\n",
                probe_policy.name, probes_off.ns_per_fault, probes_on.ns_per_fault,
                overhead_pct, obs::ProbesCompiledIn() ? "in" : "out");
    json.Str("bench", "faultpath")
        .Str("metric", "probe_overhead_pct")
        .Str("policy", probe_policy.name)
        .Num("value", overhead_pct, 3)
        .Num("ns_per_fault_probes_off", probes_off.ns_per_fault, 1)
        .Num("ns_per_fault_probes_on", probes_on.ns_per_fault, 1)
        .Int("probes_compiled_in", obs::ProbesCompiledIn() ? 1 : 0)
        .Emit();
  }
  return 0;
}
