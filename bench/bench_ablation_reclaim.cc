// Ablation: the reclamation victim order (§4.3.1 / §6 future work). FAFR (the paper's
// policy) always raids the oldest container first; round-robin spreads the pain; largest-
// first targets the biggest surplus. Three long-lived applications of different sizes face a
// stream of short-lived newcomers whose admissions force reclamation.
#include <cstdio>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

struct Outcome {
  size_t end_frames[3];
  int64_t reclaimed_from[3];
  int admitted_newcomers;
};

Outcome Run(core::ReclaimOrder order) {
  mach::KernelParams params;
  params.total_frames = 4096;
  params.kernel_reserved_frames = 512;  // 3584 free
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::FrameManagerConfig manager_config;
  manager_config.partition_burst_fraction = 0.97;
  manager_config.reclaim_order = order;
  core::HipecEngine engine(&kernel, manager_config);

  // Three residents: min 128 each, grown to 1600/1000/600 frames (3200 of ~3500 grantable).
  core::HipecRegion residents[3];
  size_t grow_to[3] = {1600, 1000, 600};
  for (int i = 0; i < 3; ++i) {
    mach::Task* task = kernel.CreateTask("resident");
    core::HipecOptions options;
    options.min_frames = 128;
    residents[i] = engine.VmAllocateHipec(
        task, 2048 * kPageSize, policies::FifoPolicy(policies::CommandStyle::kSimple), options);
    if (!residents[i].ok ||
        !engine.manager().RequestFrames(residents[i].container, grow_to[i] - 128,
                                        &residents[i].container->free_q())) {
      std::fprintf(stderr, "setup failed\n");
      return {};
    }
  }

  // Five newcomers of 300 frames arrive and STAY, so each admission tightens the squeeze on
  // the residents and forces another round of normal reclamation.
  int admitted = 0;
  for (int n = 0; n < 5; ++n) {
    mach::Task* task = kernel.CreateTask("newcomer");
    core::HipecOptions options;
    options.min_frames = 300;
    core::HipecRegion region = engine.VmAllocateHipec(
        task, 300 * kPageSize, policies::FifoPolicy(policies::CommandStyle::kSimple), options);
    if (region.ok) {
      ++admitted;
      kernel.TouchRange(task, region.addr, 300 * kPageSize, false);
    }
  }

  Outcome out{};
  out.admitted_newcomers = admitted;
  for (int i = 0; i < 3; ++i) {
    out.end_frames[i] = residents[i].container->allocated_frames;
    out.reclaimed_from[i] = residents[i].container->frames_reclaimed_from;
  }
  return out;
}

void Row(const char* label, const Outcome& out) {
  std::printf("%-14s %8d    %6zu/%-6lld %6zu/%-6lld %6zu/%-6lld\n", label,
              out.admitted_newcomers, out.end_frames[0],
              static_cast<long long>(out.reclaimed_from[0]), out.end_frames[1],
              static_cast<long long>(out.reclaimed_from[1]), out.end_frames[2],
              static_cast<long long>(out.reclaimed_from[2]));
}

}  // namespace

int main() {
  bench::Title("Ablation — normal-reclamation victim order");
  bench::Note("Residents grown to 1600/1000/600 frames (min 128 each); five 300-frame");
  bench::Note("newcomers arrive and stay. Cells: frames kept / frames reclaimed.");
  bench::Rule();
  std::printf("%-14s %8s    %-13s %-13s %-13s\n", "order", "admits", "app A (1600)",
              "app B (1000)", "app C (600)");
  bench::Rule();
  Row("FAFR", Run(core::ReclaimOrder::kFafr));
  Row("round-robin", Run(core::ReclaimOrder::kRoundRobin));
  Row("largest-first", Run(core::ReclaimOrder::kLargestFirst));
  bench::Rule();
  bench::Note("Expected shape: FAFR drains the oldest app (A) toward its minimum first;");
  bench::Note("largest-first also hits A but spares it once B grows relatively larger;");
  bench::Note("round-robin spreads reclamation most evenly — the fairness trade-off the");
  bench::Note("paper defers to future work.");
  return 0;
}
