// Policy-server throughput benchmark: one in-process hipecd serving N forked client
// processes over real shared-memory rings, weak scaling in the client count.
//
// Each phase forks N real client processes (fork + the hipec::server::Client library, the
// same code path the hipec_client example uses), every client installs a policy over its own
// region and streams an identical touch/flush workload through its ring. Work per client is
// constant, so perfect scaling is aggregate requests/sec proportional to clients until the
// drain pool or the core count saturates.
//
// The gated metric is server.requests_per_sec_per_core: the best phase's aggregate drained
// requests per wall second divided by the cores actually engaged (client producers + drain
// threads, capped at the host's hardware threads). Like the bench_parallel speedups it
// carries a hardware_threads field and check_perf_regression.py only gates it on hosts with
// at least 8 hardware threads — a 1-core runner time-slices daemon and clients over one core
// and measures the scheduler, not the server.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/histogram.h"
#include "policies/policies.h"
#include "server/client.h"
#include "server/server.h"

namespace {

using hipec::bench::JsonLine;

// One forked client: install, stream passes * pages touches (plus one flush per pass), reap
// everything, leave orderly. Exit status is the phase's per-client pass/fail.
int RunBenchClient(const std::string& socket_path, int index, uint64_t pages,
                   uint64_t passes) {
  hipec::server::Client client;
  std::string error;
  if (!client.Connect(socket_path, "bench#" + std::to_string(index), 1, &error)) {
    std::fprintf(stderr, "bench client %d: connect: %s\n", index, error.c_str());
    return 1;
  }
  hipec::server::ClientInstallOptions options;
  options.region_pages = pages;
  options.min_frames = static_cast<uint32_t>(std::max<uint64_t>(pages / 4, 8));
  options.free_target = 4;
  options.inactive_target = 8;
  if (!client.Install(hipec::policies::FifoSecondChancePolicy(), options, &error)) {
    std::fprintf(stderr, "bench client %d: install: %s\n", index, error.c_str());
    return 1;
  }
  for (uint64_t pass = 0; pass < passes; ++pass) {
    for (uint64_t page = 0; page < pages; ++page) {
      if (!client.SubmitTouch(static_cast<uint32_t>(page), (page % 8) == 0)) {
        std::fprintf(stderr, "bench client %d: submit stalled out\n", index);
        return 1;
      }
    }
    if (!client.SubmitFlush(static_cast<uint32_t>(pass % pages))) {
      std::fprintf(stderr, "bench client %d: flush stalled out\n", index);
      return 1;
    }
  }
  if (!client.WaitForCompletions(30'000'000'000ull)) {
    std::fprintf(stderr, "bench client %d: completions timed out (%llu/%llu)\n", index,
                 static_cast<unsigned long long>(client.completed()),
                 static_cast<unsigned long long>(client.submitted()));
    return 1;
  }
  if (!client.Teardown(&error)) {
    std::fprintf(stderr, "bench client %d: teardown: %s\n", index, error.c_str());
    return 1;
  }
  client.Goodbye();
  return 0;
}

struct PhaseResult {
  size_t clients = 0;
  uint64_t requests = 0;
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  bool ok = false;
};

PhaseResult RunPhase(hipec::server::Server& daemon, const std::string& socket_path,
                     size_t clients, uint64_t pages, uint64_t passes) {
  PhaseResult result;
  result.clients = clients;
  const int64_t requests_before = daemon.counters().Get("server.requests");
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<pid_t> pids;
  for (size_t i = 0; i < clients; ++i) {
    pid_t pid = fork();
    if (pid == 0) {
      _exit(RunBenchClient(socket_path, static_cast<int>(i), pages, passes));
    }
    pids.push_back(pid);
  }
  bool ok = true;
  for (pid_t pid : pids) {
    int status = 0;
    waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      ok = false;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.requests =
      static_cast<uint64_t>(daemon.counters().Get("server.requests") - requests_before);
  result.requests_per_sec =
      result.wall_seconds > 0.0 ? static_cast<double>(result.requests) / result.wall_seconds
                                : 0.0;
  result.ok = ok;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // --pages N: region pages per client (default 128). --passes N: touch passes per client
  // (default 32). --max-clients N: largest weak-scaling phase (default 4, the acceptance
  // floor; must be a power of two). --drain-threads N: daemon drain pool (default 2).
  uint64_t pages = 128;
  uint64_t passes = 32;
  size_t max_clients = 4;
  size_t drain_threads = 2;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--pages" && i + 1 < argc) {
      pages = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--passes" && i + 1 < argc) {
      passes = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--max-clients" && i + 1 < argc) {
      max_clients = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--drain-threads" && i + 1 < argc) {
      drain_threads = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--pages N] [--passes N] [--max-clients N] [--drain-threads N]\n",
                   argv[0]);
      return 2;
    }
  }
  if (max_clients < 4) {
    max_clients = 4;  // the acceptance criterion: at least 4 real client processes
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  hipec::bench::Title("policy server throughput (hipecd, forked clients, weak scaling)");
  hipec::bench::Note("host reports " + std::to_string(hardware_threads) +
                     " hardware thread(s); drain pool " + std::to_string(drain_threads));

  // Probes on: the drain loop records per-request service time into per-client histograms,
  // which this bench summarizes for hipec-report parity checks.
  hipec::obs::ProbeSet::SetEnabled(true);

  std::string socket_path = "/tmp/hipec-bench-" + std::to_string(getpid()) + ".sock";
  hipec::server::ServerConfig config;
  config.socket_path = socket_path;
  config.drain_threads = drain_threads;
  // Frames sized so the largest phase's clients all fit without reclaim storms dominating.
  config.total_frames = 4096 + 512 * max_clients;
  config.kernel_reserved_frames = 512;
  hipec::server::Server daemon(config);
  std::string error;
  if (!daemon.Start(&error)) {
    std::fprintf(stderr, "bench_server: start: %s\n", error.c_str());
    return 1;
  }

  std::printf("  %8s %10s %10s %14s %8s\n", "clients", "requests", "wall_sec",
              "requests/sec", "ok");
  JsonLine json;
  double best_rps = 0.0;
  size_t best_clients = 0;
  bool all_ok = true;
  for (size_t clients = 1; clients <= max_clients; clients *= 2) {
    PhaseResult r = RunPhase(daemon, socket_path, clients, pages, passes);
    all_ok = all_ok && r.ok;
    std::printf("  %8zu %10llu %10.3f %14.0f %8s\n", r.clients,
                static_cast<unsigned long long>(r.requests), r.wall_seconds,
                r.requests_per_sec, r.ok ? "yes" : "NO");
    json.Str("bench", "server")
        .Int("clients", static_cast<long long>(r.clients))
        .Int("hardware_threads", hardware_threads)
        .Int("drain_threads", static_cast<long long>(drain_threads))
        .Int("requests", static_cast<long long>(r.requests))
        .Num("wall_sec", r.wall_seconds, 4)
        .Num("requests_per_sec", r.requests_per_sec, 0)
        .Int("ok", r.ok ? 1 : 0)
        .Emit();
    if (r.ok && r.requests_per_sec > best_rps) {
      best_rps = r.requests_per_sec;
      best_clients = clients;
    }
  }

  // Cores engaged in the best phase: client producers plus the drain pool, capped at what
  // the host actually has. Dividing by this makes the metric a per-core service rate that
  // stays comparable across phase shapes and hosts.
  const size_t engaged =
      std::max<size_t>(1, std::min<size_t>(best_clients + drain_threads,
                                           hardware_threads == 0 ? 1 : hardware_threads));
  const double per_core = best_rps / static_cast<double>(engaged);
  std::printf("  best: %zu clients, %.0f requests/sec over %zu engaged core(s) = %.0f/core\n",
              best_clients, best_rps, engaged, per_core);
  json.Str("bench", "server")
      .Str("metric", "requests_per_sec_per_core")
      .Num("value", per_core, 1)
      .Int("hardware_threads", hardware_threads)
      .Int("clients", static_cast<long long>(best_clients))
      .Int("engaged_cores", static_cast<long long>(engaged))
      .Emit();

  // Per-client latency summaries (probe-fed histograms the daemon keeps per session) — the
  // same distributions hipec-report renders; here as informational records (no "metric").
  hipec::obs::Histogram merged;
  for (const hipec::server::ClientStats& stats : daemon.ClientStatsSnapshot()) {
    if (stats.latency.count() == 0) {
      continue;
    }
    merged.MergeFrom(stats.latency);
    json.Str("bench", "server")
        .Str("client", stats.name)
        .Int("completions", static_cast<long long>(stats.completions))
        .Int("lat_count", static_cast<long long>(stats.latency.count()))
        .Num("lat_mean_ns", stats.latency.Mean(), 1)
        .Int("lat_p50_ns", static_cast<long long>(stats.latency.Quantile(0.5)))
        .Int("lat_p99_ns", static_cast<long long>(stats.latency.Quantile(0.99)))
        .Emit();
  }
  if (merged.count() > 0) {
    std::printf("  service latency: %s\n", merged.Summary().c_str());
  }

  daemon.Stop();
  if (!all_ok) {
    std::fprintf(stderr, "bench_server: at least one client phase failed\n");
    return 1;
  }
  return 0;
}
