// Ablation: the security checker's adaptive sleep (§4.3.3). WakeUp halves on a detected
// timeout and doubles when quiet, clamped to [250 ms, 8 s]. This bench prints the interval
// trajectory through a runaway-policy storm followed by a quiet period, plus the checker's
// CPU consumption in both regimes.
#include <cstdio>

#include "bench_util.h"
#include "hipec/builder.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
namespace ops = core::std_ops;

core::PolicyProgram RunawayPolicy() {
  core::PolicyProgram program;
  core::EventBuilder fault;
  auto loop = fault.NewLabel();
  fault.Bind(loop);
  fault.ClearCondition();
  fault.JumpIfFalse(loop);
  fault.Return(0);
  program.SetEvent(core::kEventPageFault, fault.Build());
  program.SetEvent(core::kEventReclaimFrame, policies::StandardReclaimEvent());
  return program;
}

}  // namespace

int main() {
  bench::Title("Ablation — security-checker adaptive wakeup");

  mach::KernelParams params;
  params.hipec_build = true;
  // Slow down the (virtual) interpreter so runaway policies are caught by the *checker*,
  // never by the simulation's host-protection command cap.
  params.costs.command_decode_ns = 500;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);

  std::printf("\nPhase 1: quiet system, 60 virtual seconds\n");
  bench::Rule();
  kernel.clock().Advance(60 * sim::kSecond);
  std::printf("  wakeups: %lld  interval now: %.2f s  checker CPU: %lld ns\n",
              static_cast<long long>(engine.checker().wakeups()),
              static_cast<double>(engine.checker().current_wakeup_interval()) / sim::kSecond,
              static_cast<long long>(engine.checker().counters().Get("checker.cpu_ns")));

  std::printf("\nPhase 2: runaway-policy storm (6 offenders, TimeOut 100 ms)\n");
  bench::Rule();
  std::printf("%10s %14s %18s %16s\n", "offender", "detected at", "detection latency",
              "interval after");
  for (int i = 0; i < 6; ++i) {
    mach::Task* task = kernel.CreateTask("runaway");
    core::HipecOptions options;
    options.min_frames = 8;
    options.timeout_ns = 100 * sim::kMillisecond;
    core::HipecRegion region =
        engine.VmAllocateHipec(task, 16 * kPageSize, RunawayPolicy(), options);
    if (!region.ok) {
      std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
      return 1;
    }
    sim::Nanos start = kernel.clock().now();
    kernel.Touch(task, region.addr, false);  // runs until the checker kills it
    sim::Nanos detected = kernel.clock().now();
    std::printf("%10d %14.2f %16.0f ms %14.2f s\n", i + 1,
                static_cast<double>(detected) / sim::kSecond,
                static_cast<double>(detected - start) / sim::kMillisecond,
                static_cast<double>(engine.checker().current_wakeup_interval()) / sim::kSecond);
  }
  std::printf("  timeouts detected: %lld\n",
              static_cast<long long>(engine.checker().timeouts_detected()));

  std::printf("\nPhase 3: quiet again, 120 virtual seconds\n");
  bench::Rule();
  int64_t cpu_before = engine.checker().counters().Get("checker.cpu_ns");
  kernel.clock().Advance(120 * sim::kSecond);
  std::printf("  interval recovered to: %.2f s  checker CPU this phase: %lld ns over 120 s\n",
              static_cast<double>(engine.checker().current_wakeup_interval()) / sim::kSecond,
              static_cast<long long>(engine.checker().counters().Get("checker.cpu_ns") -
                                     cpu_before));

  bench::Note("\nExpected shape: the interval collapses toward 250 ms during the storm");
  bench::Note("(detection latency shrinks with it), then doubles back to the 8 s cap when");
  bench::Note("quiet — where the checker consumes only microseconds of CPU per minute.");
  return 0;
}
