// Table 3 reproduction: page-fault handling time for a 40 MB virtual address range, with and
// without disk I/O, under stock Mach and under HiPEC running the *same* FIFO-with-second-
// chance policy that the Mach kernel uses.
//
// Paper values (Acer Altos 10000, i486-50):
//   without disk I/O:  Mach 4016.5 ms, HiPEC 4088.6 ms (1.8% overhead)
//   with disk I/O:     Mach 82485.5 ms, HiPEC 82505.6 ms (0.024% overhead)
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

constexpr uint64_t kRegionBytes = 40ull * 1024 * 1024;  // 40 MB
constexpr uint64_t kPages = kRegionBytes / kPageSize;   // 10 240 faults

mach::KernelParams Machine(bool hipec_build) {
  mach::KernelParams params;
  params.total_frames = 16384;           // 64 MB machine
  params.kernel_reserved_frames = 2048;  // kernel text/data/buffers
  params.hipec_build = hipec_build;
  return params;
}

// Touch order: sequential for the zero-fill case; shuffled for the disk case so reads seek
// like paging against a fragmented backing store (the paper's 8.05 ms/fault implies
// random-access service times).
std::vector<uint64_t> TouchOrder(bool shuffled) {
  std::vector<uint64_t> order(kPages);
  for (uint64_t i = 0; i < kPages; ++i) {
    order[i] = i;
  }
  if (shuffled) {
    sim::Rng rng(0xF00D);
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.Below(i)]);
    }
  }
  return order;
}

sim::Nanos RunMach(bool with_disk) {
  mach::Kernel kernel(Machine(/*hipec_build=*/false));
  mach::Task* task = kernel.CreateTask("sweep");
  uint64_t addr;
  if (with_disk) {
    mach::VmObject* file = kernel.CreateFileObject("data", kRegionBytes);
    addr = kernel.VmMapFile(task, file);
  } else {
    addr = kernel.VmAllocate(task, kRegionBytes);
  }
  sim::Nanos start = kernel.clock().now();
  for (uint64_t p : TouchOrder(with_disk)) {
    kernel.Touch(task, addr + p * kPageSize, /*is_write=*/false);
  }
  return kernel.clock().now() - start;
}

sim::Nanos RunHipec(bool with_disk) {
  mach::Kernel kernel(Machine(/*hipec_build=*/true));
  // The join of minFrame=10240 against 14336 boot-free frames needs a watermark above 50%.
  core::HipecEngine engine(&kernel, core::FrameManagerConfig{0.75, 64});
  mach::Task* task = kernel.CreateTask("sweep");
  core::HipecOptions options;
  options.min_frames = kPages;
  options.free_target = 64;
  options.inactive_target = 128;
  core::HipecRegion region;
  if (with_disk) {
    mach::VmObject* file = kernel.CreateFileObject("data", kRegionBytes);
    region = engine.VmMapHipec(task, file, policies::FifoSecondChancePolicy(), options);
  } else {
    region = engine.VmAllocateHipec(task, kRegionBytes, policies::FifoSecondChancePolicy(),
                                    options);
  }
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return -1;
  }
  sim::Nanos start = kernel.clock().now();
  for (uint64_t p : TouchOrder(with_disk)) {
    kernel.Touch(task, region.addr + p * kPageSize, /*is_write=*/false);
  }
  return kernel.clock().now() - start;
}

void Row(const char* label, sim::Nanos mach_ns, sim::Nanos hipec_ns, double paper_mach_ms,
         double paper_hipec_ms, double paper_overhead_pct) {
  double overhead = 100.0 * static_cast<double>(hipec_ns - mach_ns) /
                    static_cast<double>(mach_ns);
  std::printf("%-28s %14s %14s %9.3f%%   (paper: %9.1f ms %9.1f ms %7.3f%%)\n", label,
              sim::FormatNanos(mach_ns).c_str(), sim::FormatNanos(hipec_ns).c_str(), overhead,
              paper_mach_ms, paper_hipec_ms, paper_overhead_pct);
}

}  // namespace

int main() {
  bench::Title("Table 3 — 40 MB page-fault sweep: Mach kernel vs HiPEC mechanism");
  bench::Note("HiPEC runs the same FIFO-with-second-chance policy as the Mach kernel;");
  bench::Note("the overhead is command fetch/decode + dispatch + the per-fault region check.");
  bench::Rule();
  std::printf("%-28s %14s %14s %10s\n", "case", "Mach 3.0", "HiPEC", "overhead");
  bench::Rule();

  sim::Nanos mach_fast = RunMach(/*with_disk=*/false);
  sim::Nanos hipec_fast = RunHipec(/*with_disk=*/false);
  Row("without disk I/O", mach_fast, hipec_fast, 4016.5, 4088.6, 1.8);

  sim::Nanos mach_disk = RunMach(/*with_disk=*/true);
  sim::Nanos hipec_disk = RunHipec(/*with_disk=*/true);
  Row("with disk I/O", mach_disk, hipec_disk, 82485.5, 82505.6, 0.024);

  bench::Rule();
  bench::Note("Expected shape: ~1-2% overhead without I/O; vanishing overhead (<0.1%) once");
  bench::Note("each fault pays a multi-millisecond disk read.");
  return 0;
}
