// Figure 5 reproduction: AIM-III-like system throughput (jobs/minute) versus the number of
// simulated concurrent users, on the unmodified Mach kernel and the modified HiPEC kernel,
// for three workload mixes (standard, disk-weighted, memory-weighted).
//
// Paper result: the two kernels provide essentially the same throughput under all three
// mixes; throughput degrades beyond ~5-6 users as jobs compete for system resources.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workloads/aim_suite.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using workloads::AimConfig;
using workloads::AimResult;
using workloads::RunAim;
using workloads::WorkloadMix;

void RunMix(const WorkloadMix& mix) {
  std::printf("\nWorkload mix: %s (compute %.1f / disk %.1f / memory %.1f)\n",
              mix.name.c_str(), mix.compute_weight, mix.disk_weight, mix.memory_weight);
  bench::Rule();
  std::printf("%6s %16s %16s %10s %12s\n", "users", "Mach jobs/min", "HiPEC jobs/min",
              "delta", "faults(HiPEC)");
  bench::Rule();
  double peak = 0;
  int peak_users = 0;
  for (int users : {1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20}) {
    AimConfig config;
    config.mix = mix;
    config.users = users;
    config.hipec_kernel = false;
    AimResult mach = RunAim(config);
    config.hipec_kernel = true;
    AimResult hipec = RunAim(config);
    double delta = 100.0 * (hipec.jobs_per_minute - mach.jobs_per_minute) /
                   (mach.jobs_per_minute > 0 ? mach.jobs_per_minute : 1.0);
    std::printf("%6d %16.1f %16.1f %9.2f%% %12lld\n", users, mach.jobs_per_minute,
                hipec.jobs_per_minute, delta, static_cast<long long>(hipec.page_faults));
    if (mach.jobs_per_minute > peak) {
      peak = mach.jobs_per_minute;
      peak_users = users;
    }
  }
  bench::Rule();
  std::printf("Throughput peaks near %d users, then declines under contention.\n", peak_users);
}

}  // namespace

int main() {
  bench::Title("Figure 5 — AIM throughput on the Mach kernel and the HiPEC kernel");
  bench::Note("The HiPEC kernel adds a per-fault specific-region check and the security-");
  bench::Note("checker thread; with no specific applications running, both should cost");
  bench::Note("almost nothing (the paper: 'almost provide the same throughput').");

  RunMix(WorkloadMix::Standard());
  RunMix(WorkloadMix::DiskHeavy());
  RunMix(WorkloadMix::MemoryHeavy());

  bench::Note("\nExpected shape: HiPEC-vs-Mach delta within a fraction of a percent at every");
  bench::Note("point; rise to a peak around 5-6 users, then decline.");
  return 0;
}
