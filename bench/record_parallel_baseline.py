#!/usr/bin/env python3
"""Record parallel + server perf floors from a real multi-core runner.

The parallel.speedup_8_vs_1, parallel.scheduler.tenants_per_sec, and
server.requests_per_sec_per_core baselines are only meaningful when measured on a host
with at least 8 hardware threads — on anything smaller the benches measure the host
scheduler, extract_metrics drops the metrics, and the gate skips them. The values checked
into bench/baseline.json for these keys are therefore conservative floors until someone
runs this script on real hardware:

    bench/record_parallel_baseline.py --build-dir build            # measure + rewrite
    bench/record_parallel_baseline.py --build-dir build --dry-run  # measure + print only

The script runs bench_parallel and bench_server --runs times (default 3), takes the
MINIMUM observed value per metric, multiplies by --margin (default 0.8, i.e. the floor
sits 20% below the worst observed run), and rewrites just those keys in the baseline
file, leaving every other floor and all _comment keys untouched. On a host with fewer
than 8 hardware threads it refuses to write (the numbers would be scheduler noise);
--dry-run still runs the benches there so the plumbing can be exercised anywhere.

Exit status 0 on success (or a completed dry run), 1 when a bench fails, produces no
usable records, or the host is too small to record.
"""

import argparse
import json
import os
import subprocess
import sys

# Metrics this script owns: bench binary -> metric-record name -> baseline key.
RECORDED = {
    "bench_parallel": {
        "speedup_8_vs_1": "parallel.speedup_8_vs_1",
        "scheduler.tenants_per_sec": "parallel.scheduler.tenants_per_sec",
    },
    "bench_server": {
        "requests_per_sec_per_core": "server.requests_per_sec_per_core",
    },
}
BENCH_NAME = {"bench_parallel": "parallel", "bench_server": "server"}
MIN_HARDWARE_THREADS = 8


def run_bench(path):
    """Runs one bench binary, returns its parsed JSON-line records (or None on failure)."""
    try:
        proc = subprocess.run([path], capture_output=True, text=True, check=False)
    except OSError as err:
        print(f"record_parallel_baseline: cannot run {path}: {err}", file=sys.stderr)
        return None
    if proc.returncode != 0:
        print(f"record_parallel_baseline: {path} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return None
    records = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(obj, dict):
            records.append(obj)
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory holding bench/ binaries")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__), "baseline.json"),
                        help="baseline file to rewrite (default: bench/baseline.json)")
    parser.add_argument("--runs", type=int, default=3,
                        help="repetitions per bench; the floor uses the minimum (default 3)")
    parser.add_argument("--margin", type=float, default=0.8,
                        help="floor = margin * min observed (default 0.8)")
    parser.add_argument("--dry-run", action="store_true",
                        help="measure and print the floors without writing the baseline")
    args = parser.parse_args()

    hardware_threads = os.cpu_count() or 1
    if hardware_threads < MIN_HARDWARE_THREADS and not args.dry_run:
        print(f"record_parallel_baseline: this host reports {hardware_threads} hardware "
              f"thread(s); these baselines must be recorded on >= {MIN_HARDWARE_THREADS} "
              "(the benches measure the host scheduler below that). "
              "Use --dry-run to exercise the plumbing anyway.", file=sys.stderr)
        return 1

    observed = {}  # baseline key -> list of observed values
    for bench, wanted in RECORDED.items():
        path = os.path.join(args.build_dir, "bench", bench)
        for _ in range(max(1, args.runs)):
            records = run_bench(path)
            if records is None:
                return 1
            for rec in records:
                if rec.get("bench") != BENCH_NAME[bench]:
                    continue
                metric = rec.get("metric")
                if metric in wanted and isinstance(rec.get("value"), (int, float)):
                    observed.setdefault(wanted[metric], []).append(rec["value"])

    if not observed:
        print("record_parallel_baseline: benches produced no recordable metric records",
              file=sys.stderr)
        return 1

    floors = {key: args.margin * min(values) for key, values in observed.items()}
    print(f"{'baseline key':<40} {'runs':>5} {'min':>12} {'floor':>12}")
    for key in sorted(floors):
        print(f"{key:<40} {len(observed[key]):>5} {min(observed[key]):>12.3f} "
              f"{floors[key]:>12.3f}")

    if args.dry_run:
        print("record_parallel_baseline: dry run, baseline not modified")
        return 0

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)  # dicts preserve insertion order: comments keep their place
    for key, floor in floors.items():
        baseline[key] = round(floor, 3)
    with open(args.baseline, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=2)
        fh.write("\n")
    print(f"record_parallel_baseline: wrote {len(floors)} floor(s) to {args.baseline} "
          f"(host: {hardware_threads} hardware threads)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
