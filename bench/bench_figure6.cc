// Figure 6 reproduction: elapsed time (in minutes) of the nested-loops join as the outer
// table grows from 20 MB to 60 MB, with a 40 MB frame budget.
//
// Paper result: under the conventional LRU-like policy the join degrades sharply once the
// outer table exceeds the 40 MB of available frames (cyclic thrashing: PF_l faults); under
// HiPEC with an MRU policy the join only faults on the part that does not fit (PF_m faults).
// "A great response time gap occurs when data size is larger than available frames."
#include <cstdio>

#include "bench_util.h"
#include "workloads/join_workload.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using workloads::JoinConfig;
using workloads::JoinMode;
using workloads::JoinResult;
using workloads::RunJoin;

constexpr int64_t kMb = 1024 * 1024;

}  // namespace

int main() {
  bench::Title("Figure 6 — elapsed time (minutes) for the nested-loops join");
  bench::Note("Inner table: 4 KB, pinned. Outer table: 20-60 MB, 64-byte tuples, memory-");
  bench::Note("mapped, scanned 64 times. Frame budget (MSize): 40 MB.");
  bench::Rule();
  std::printf("%10s %14s %14s %12s %12s %14s %14s\n", "outer(MB)", "LRU(min)", "MRU(min)",
              "LRU faults", "MRU faults", "PF_l analytic", "PF_m analytic");
  bench::Rule();

  for (int64_t outer_mb : {20, 30, 40, 45, 50, 55, 60}) {
    JoinConfig config;
    config.outer_bytes = outer_mb * kMb;
    config.memory_bytes = 40 * kMb;

    config.mode = JoinMode::kMachDefault;
    JoinResult lru = RunJoin(config);
    config.mode = JoinMode::kHipecMru;
    JoinResult mru = RunJoin(config);

    std::printf("%10lld %14.2f %14.2f %12lld %12lld %14lld %14lld\n",
                static_cast<long long>(outer_mb), lru.minutes, mru.minutes,
                static_cast<long long>(lru.page_faults),
                static_cast<long long>(mru.page_faults),
                static_cast<long long>(lru.analytic_faults),
                static_cast<long long>(mru.analytic_faults));
    if (lru.terminated || mru.terminated) {
      std::printf("  !! run terminated: %s %s\n", lru.termination_reason.c_str(),
                  mru.termination_reason.c_str());
    }
  }
  bench::Rule();
  bench::Note("Expected shape: both curves near-flat and equal up to 40 MB; beyond it the");
  bench::Note("LRU curve climbs with PF_l = outer*64/page while the MRU curve climbs only");
  bench::Note("with PF_m — a widening multi-x response-time gap, matching the analysis.");
  return 0;
}
