// Extension bench (§6): "The new hardware architecture, such as flash RAM, can be managed
// efficiently if each specific application can control the device". The Figure 6 join on a
// mechanical disk versus a 1994-class flash card: flash shrinks the *cost* of every fault by
// ~15x, but the *number* of faults is a property of the replacement policy alone — the right
// policy still wins, and by the same fault ratio.
#include <cstdio>

#include "bench_util.h"
#include "workloads/join_workload.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using workloads::JoinConfig;
using workloads::JoinMode;
using workloads::JoinResult;
using workloads::RunJoin;

constexpr int64_t kMb = 1024 * 1024;

}  // namespace

int main() {
  bench::Title("Extension — the Figure 6 join on disk vs flash backing store");
  bench::Rule();
  std::printf("%10s %12s %12s %12s %12s %13s %13s\n", "outer(MB)", "disk LRU", "disk MRU",
              "flash LRU", "flash MRU", "LRU faults", "MRU faults");
  std::printf("%10s %12s %12s %12s %12s\n", "", "(min)", "(min)", "(min)", "(min)");
  bench::Rule();
  for (int64_t outer_mb : {45, 50, 55, 60}) {
    JoinConfig config;
    config.outer_bytes = outer_mb * kMb;
    config.memory_bytes = 40 * kMb;

    config.flash_backing = false;
    config.mode = JoinMode::kMachDefault;
    JoinResult disk_lru = RunJoin(config);
    config.mode = JoinMode::kHipecMru;
    JoinResult disk_mru = RunJoin(config);

    config.flash_backing = true;
    config.mode = JoinMode::kMachDefault;
    JoinResult flash_lru = RunJoin(config);
    config.mode = JoinMode::kHipecMru;
    JoinResult flash_mru = RunJoin(config);

    std::printf("%10lld %12.2f %12.2f %12.2f %12.2f %13lld %13lld\n",
                static_cast<long long>(outer_mb), disk_lru.minutes, disk_mru.minutes,
                flash_lru.minutes, flash_mru.minutes,
                static_cast<long long>(flash_lru.page_faults),
                static_cast<long long>(flash_mru.page_faults));
  }
  bench::Rule();
  bench::Note("Expected shape: flash compresses both curves ~15x in time; the LRU/MRU fault");
  bench::Note("ratio is identical on both devices — policy control stays worthwhile even on");
  bench::Note("fast storage, and the flash write-erase penalty rewards policies that avoid");
  bench::Note("dirty evictions.");
  return 0;
}
