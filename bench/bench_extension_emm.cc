// Extension bench: the cost of the external-memory-management interface itself. §4 cites
// Wang et al.: "little performance overhead is incurred for running an EMM interface", which
// is the paper's argument that HiPEC ports beyond Mach. Reproduce the claim: the Table 3
// disk sweep with backing store reached directly by the kernel versus through an external
// file pager (one IPC round trip + user-level service per fill).
#include <cstdio>

#include "bench_util.h"
#include "mach/emm.h"
#include "mach/kernel.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

constexpr uint64_t kPages = 10240;  // the 40 MB sweep

sim::Nanos Run(bool through_pager) {
  mach::KernelParams params;
  params.total_frames = 16384;
  params.kernel_reserved_frames = 2048;
  mach::Kernel kernel(params);
  mach::FilePager pager(&kernel);
  mach::Task* task = kernel.CreateTask("sweep");
  mach::VmObject* file = kernel.CreateFileObject("data", kPages * kPageSize);
  if (through_pager) {
    kernel.AttachPager(file, &pager);
  }
  uint64_t addr = kernel.VmMapFile(task, file);

  // Shuffled order, as in bench_table3's disk case.
  std::vector<uint64_t> order(kPages);
  for (uint64_t i = 0; i < kPages; ++i) {
    order[i] = i;
  }
  sim::Rng rng(0xF00D);
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.Below(i)]);
  }

  sim::Nanos start = kernel.clock().now();
  for (uint64_t p : order) {
    kernel.Touch(task, addr + p * kPageSize, false);
  }
  return kernel.clock().now() - start;
}

}  // namespace

int main() {
  bench::Title("Extension — EMM interface overhead (Wang's claim, cited in §4)");
  bench::Note("40 MB disk sweep with the kernel paging directly vs through an external file");
  bench::Note("pager (memory_object_data_request/data_provided per fill).");
  bench::Rule();
  sim::Nanos direct = Run(false);
  sim::Nanos paged = Run(true);
  double overhead = 100.0 * static_cast<double>(paged - direct) / static_cast<double>(direct);
  std::printf("%-34s %14s\n", "in-kernel paging", sim::FormatNanos(direct).c_str());
  std::printf("%-34s %14s\n", "external pager (EMM)", sim::FormatNanos(paged).c_str());
  std::printf("%-34s %13.2f%%  (%s per fill: IPC + pager service)\n", "overhead", overhead,
              sim::FormatNanos((paged - direct) / static_cast<sim::Nanos>(kPages)).c_str());
  bench::Rule();
  bench::Note("Expected shape: a few percent — the ~300 us message exchange disappears under");
  bench::Note("the multi-millisecond disk read, which is why an EMM-based HiPEC port is");
  bench::Note("viable on systems without in-kernel integration.");
  return 0;
}
