// Table 4 reproduction: the cost of each kernel-crossing technique for application-specific
// resource management, versus HiPEC's in-kernel interpretation.
//
// Paper values: null system call 19 us; null IPC 292 us; simple HiPEC page-fault overhead
// ~150 ns (the fetch+decode of the Comp, DeQueue, Return commands on the free-list path).
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/stats.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

sim::Nanos MeasureNullSyscall(mach::Kernel& kernel) {
  sim::Nanos start = kernel.clock().now();
  constexpr int kCalls = 1000;
  for (int i = 0; i < kCalls; ++i) {
    kernel.NullSyscall();
  }
  return (kernel.clock().now() - start) / kCalls;
}

// Measures the *interpretation* component of a simple HiPEC page fault: the number of
// commands executed on the free-list fast path times the decode cost — exactly what the
// paper reports as "~150 nsec" (dispatch and page installation are excluded there too).
sim::Nanos MeasureSimpleFaultDecode() {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options;
  options.min_frames = 64;
  options.free_target = 8;
  options.inactive_target = 16;
  core::HipecRegion region = engine.VmAllocateHipec(task, 64 * kPageSize,
                                                    policies::FifoSecondChancePolicy(), options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return -1;
  }
  int64_t commands_before = engine.executor().counters().Get("executor.commands");
  kernel.Touch(task, region.addr, false);  // one simple fault off the free list
  int64_t commands = engine.executor().counters().Get("executor.commands") - commands_before;
  return commands * kernel.costs().command_decode_ns;
}

// Host-side (wall-clock) cost of interpreting one HiPEC command, measured on the free-list
// fast path under the given dispatch mode. This is the reproduction's own decode/dispatch
// overhead — the before/after of the decode-once refactor — not a virtual-time quantity.
double MeasureHostNsPerCommand(core::DispatchMode mode) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options;
  options.min_frames = 16;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 32 * kPageSize,
                             policies::FifoPolicy(policies::CommandStyle::kSimple), options);
  core::Container* container = region.container;
  core::PolicyExecutor& executor = engine.executor();
  executor.set_dispatch_mode(mode);

  auto run_one = [&] {
    core::ExecResult result = executor.ExecuteEvent(container, core::kEventPageFault);
    mach::VmPage* page = container->operands().ReadPage(result.return_operand);
    container->free_q().EnqueueTail(page, 0);  // keep the free list from draining
    container->operands().WritePage(result.return_operand, nullptr);
    return result.commands_executed;
  };
  for (int i = 0; i < 20'000; ++i) {
    run_one();
  }
  constexpr int kEvents = 500'000;
  int64_t commands = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    commands += run_one();
  }
  std::chrono::duration<double, std::nano> elapsed = std::chrono::steady_clock::now() - start;
  return elapsed.count() / static_cast<double>(commands);
}

}  // namespace

int main() {
  bench::Title("Table 4 — crossing-technique costs");
  mach::Kernel kernel{mach::KernelParams{}};
  sim::CostModel costs;

  sim::Nanos null_syscall = MeasureNullSyscall(kernel);
  sim::Nanos null_ipc = costs.IpcDecisionNs();
  sim::Nanos hipec_simple = MeasureSimpleFaultDecode();

  bench::Rule();
  std::printf("%-38s %12s   %s\n", "evaluation", "measured", "paper");
  bench::Rule();
  std::printf("%-38s %12s   19 us\n", "Null System Call",
              sim::FormatNanos(null_syscall).c_str());
  std::printf("%-38s %12s   292 us\n", "Null IPC Call", sim::FormatNanos(null_ipc).c_str());
  std::printf("%-38s %12s   ~150 ns\n", "Simple HiPEC page fault overhead",
              sim::FormatNanos(hipec_simple).c_str());
  bench::Rule();

  std::printf("\nPer replacement decision, end to end:\n");
  std::printf("  HiPEC (dispatch + 3-command decode): %s\n",
              sim::FormatNanos(costs.HipecDecisionNs(3)).c_str());
  std::printf("  upcall round trip:                   %s\n",
              sim::FormatNanos(costs.UpcallDecisionNs()).c_str());
  std::printf("  IPC round trip:                      %s\n",
              sim::FormatNanos(costs.IpcDecisionNs()).c_str());
  bench::Note("\nExpected shape: HiPEC interpretation is 2-3 orders of magnitude cheaper than"
              "\neither crossing technique.");

  std::printf("\nHost-side interpretation cost per command (decode-once refactor):\n");
  double after = MeasureHostNsPerCommand(core::DispatchMode::kDecodedIr);
  double before = MeasureHostNsPerCommand(core::DispatchMode::kReferenceSwitch);
  std::printf("  before (decode-per-event switch):    %.2f ns/command\n", before);
  std::printf("  after  (decoded-IR dispatch table):  %.2f ns/command (%.2fx)\n", after,
              before / after);
  return 0;
}
