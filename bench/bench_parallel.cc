// Parallel fault-throughput benchmark: runs the real-threads scenario driver
// (scenario/threaded.h) at 1/2/4/8 tenant threads and reports aggregate faults/sec, as a
// human table and as JSON lines for the CI perf-smoke gate.
//
// Weak scaling: each thread gets an identical tenant (same trace length, same working set)
// and the machine grows with the thread count, so perfect scaling is a flat per-thread
// throughput — i.e. aggregate faults/sec proportional to threads. The speedup_N_vs_1 metrics
// carry a hardware_threads field; check_perf_regression.py only gates them on hosts with at
// least 8 hardware threads (a 1-core CI runner cannot exhibit parallel speedup, only
// lock-contention overhead, and gating there would measure the scheduler, not the kernel).
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "scenario/scheduler.h"
#include "scenario/threaded.h"
#include "sim/clock.h"

namespace {

using hipec::bench::JsonLine;
using hipec::scenario::PatternKind;
using hipec::scenario::PolicyKind;
using hipec::scenario::SchedulerResult;
using hipec::scenario::SchedulerSpec;
using hipec::scenario::TenantSpec;
using hipec::scenario::ThreadedScenarioResult;
using hipec::scenario::ThreadedScenarioSpec;

ThreadedScenarioSpec MakeSpec(size_t threads, size_t accesses) {
  ThreadedScenarioSpec spec;
  spec.name = "parallel-" + std::to_string(threads) + "t";
  // Weak scaling: per-thread slice of the machine is constant across runs.
  spec.total_frames = 512 + 160 * threads;
  spec.kernel_reserved_frames = 128;
  spec.audit = true;
  spec.audit_interval_ms = 10;
  for (size_t i = 0; i < threads; ++i) {
    TenantSpec t;
    t.name = "worker-" + std::to_string(i);
    t.policy = PolicyKind::kFifoSecondChance;
    t.pattern = PatternKind::kHotCold;
    t.pages = 256;
    t.min_frames = 48;
    t.accesses = accesses;
    t.write_fraction = 0.1;
    t.hot_pages = 48;
    t.hot_fraction = 0.9;
    spec.tenants.push_back(t);
  }
  return spec;
}

// The churn population for the M:N scheduler phase: mostly small short-lived tenants (the
// churn itself), plus a seasoning of hogs (stubborn, oversized), early departures, and
// looping policies the security checker must kill — every lifecycle edge the scheduler has,
// at population scale.
SchedulerSpec MakeChurnSpec(size_t tenants, size_t workers) {
  SchedulerSpec spec;
  spec.name = "churn-" + std::to_string(tenants) + "x" + std::to_string(workers) + "w";
  spec.total_frames = 4096;
  spec.kernel_reserved_frames = 256;
  spec.workers = workers;
  spec.slice_accesses = 64;
  spec.max_live_tenants = 64;
  spec.audit = true;
  spec.audit_interval_ms = 50;
  for (size_t i = 0; i < tenants; ++i) {
    TenantSpec t;
    t.name = "tenant-" + std::to_string(i);
    if (i % 500 == 250) {
      // A policy that never returns: only the checker's TimeOut fuse ends it.
      t.policy = PolicyKind::kLooping;
      t.pattern = PatternKind::kSequential;
      t.pages = 32;
      t.min_frames = 8;
      t.accesses = 64;
      t.timeout_ns = 50 * hipec::sim::kMillisecond;
    } else if (i % 100 == 50) {
      // A hog: big footprint, refuses cooperative reclamation.
      t.policy = PolicyKind::kStubborn;
      t.pattern = PatternKind::kUniform;
      t.pages = 384;
      t.min_frames = 48;
      t.accesses = 512;
      t.request_size = 32;
      t.write_fraction = 0.1;
    } else {
      t.policy = (i % 3 == 0) ? PolicyKind::kFifoSecondChance
                              : (i % 3 == 1) ? PolicyKind::kLru : PolicyKind::kGreedy;
      t.pattern = (i % 2 == 0) ? PatternKind::kHotCold : PatternKind::kZipf;
      t.pages = 48 + (i % 4) * 16;
      t.min_frames = 8;
      t.accesses = 128;
      t.write_fraction = (i % 5 == 0) ? 0.2 : 0.0;
      if (i % 7 == 3) {
        t.departure_step = 1;  // departs after one scheduling slice
      }
    }
    spec.tenants.push_back(t);
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  // --accesses N: references per tenant thread in the weak-scaling phase (default 8000).
  // --tenants N: churn-phase population for the M:N scheduler (default 10000; 0 skips).
  // --churn-workers N: worker pool size for the churn phase (default 8).
  size_t accesses = 8000;
  size_t tenants = 10'000;
  size_t churn_workers = 8;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--accesses" && i + 1 < argc) {
      accesses = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--tenants" && i + 1 < argc) {
      tenants = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--churn-workers" && i + 1 < argc) {
      churn_workers = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--accesses N] [--tenants N] [--churn-workers N]\n",
                   argv[0]);
      return 2;
    }
  }

  const unsigned hardware_threads = std::thread::hardware_concurrency();
  hipec::bench::Title("parallel fault throughput (real threads, weak scaling)");
  hipec::bench::Note("host reports " + std::to_string(hardware_threads) +
                     " hardware thread(s)");
  std::printf("  %8s %10s %10s %10s %12s %10s %8s\n", "threads", "faults", "accesses",
              "wall_sec", "faults/sec", "acc/sec", "audits");

  std::map<size_t, double> faults_per_sec;
  JsonLine json;
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadedScenarioResult r =
        hipec::scenario::RunThreadedScenario(MakeSpec(threads, accesses));
    faults_per_sec[threads] = r.faults_per_sec;
    std::printf("  %8zu %10lld %10llu %10.3f %12.0f %10.0f %8lld\n", r.threads,
                static_cast<long long>(r.total_faults),
                static_cast<unsigned long long>(r.total_accesses), r.wall_seconds,
                r.faults_per_sec, r.accesses_per_sec, static_cast<long long>(r.audits_run));
    json.Str("bench", "parallel")
        .Int("threads", static_cast<long long>(r.threads))
        .Int("hardware_threads", hardware_threads)
        .Int("faults", r.total_faults)
        .Int("accesses", static_cast<long long>(r.total_accesses))
        .Num("wall_sec", r.wall_seconds, 4)
        .Num("faults_per_sec", r.faults_per_sec, 0)
        .Num("accesses_per_sec", r.accesses_per_sec, 0)
        .Int("audits", r.audits_run)
        .Int("checker_wakeups", r.checker_wakeups)
        .Int("checker_kills", r.checker_kills)
        .Emit();
  }

  const double base = faults_per_sec[1];
  for (size_t threads : {2, 4, 8}) {
    double speedup = base > 0.0 ? faults_per_sec[threads] / base : 0.0;
    std::printf("  speedup %zut vs 1t: %.2fx\n", threads, speedup);
    json.Str("bench", "parallel")
        .Str("metric", "speedup_" + std::to_string(threads) + "_vs_1")
        .Num("value", speedup, 3)
        .Int("hardware_threads", hardware_threads)
        .Emit();
  }

  if (tenants > 0) {
    // --- M:N scheduler churn: the 10,000-tenant scenario on a fixed worker pool ------------
    hipec::bench::Title("tenant churn (M:N scheduler, " + std::to_string(churn_workers) +
                        " workers)");
    SchedulerResult sr =
        hipec::scenario::RunScheduledScenario(MakeChurnSpec(tenants, churn_workers));
    std::printf(
        "  %8s %9s %9s %9s %9s %9s %7s %7s %9s %12s\n", "tenants", "admitted", "completed",
        "departed", "termin", "kills", "audits", "steals", "wall_sec", "tenants/sec");
    std::printf("  %8zu %9zu %9zu %9zu %9zu %9lld %7lld %7lld %9.3f %12.0f\n",
                sr.tenants_total, sr.admitted, sr.completed, sr.departed, sr.terminated,
                static_cast<long long>(sr.checker_kills),
                static_cast<long long>(sr.audits_run), static_cast<long long>(sr.steals),
                sr.wall_seconds, sr.tenants_per_sec);
    json.Str("bench", "parallel")
        .Str("metric", "scheduler.tenants_per_sec")
        .Num("value", sr.tenants_per_sec, 1)
        .Int("hardware_threads", hardware_threads)
        .Emit();
    // Informational detail record (never baselined: no "metric", and "workers" rather than
    // "threads" keeps it out of the extractor's throughput branch).
    json.Str("bench", "parallel")
        .Str("phase", "churn")
        .Int("workers", static_cast<long long>(sr.workers))
        .Int("tenants_total", static_cast<long long>(sr.tenants_total))
        .Int("completed", static_cast<long long>(sr.completed))
        .Int("departed", static_cast<long long>(sr.departed))
        .Int("terminated", static_cast<long long>(sr.terminated))
        .Int("checker_kills", sr.checker_kills)
        .Int("slices", sr.slices)
        .Int("steals", sr.steals)
        .Int("audits", sr.audits_run)
        .Num("wall_sec", sr.wall_seconds, 4)
        .Num("faults_per_sec", sr.faults_per_sec, 0)
        .Emit();
  }
  return 0;
}
