// Host-side microbenchmarks (google-benchmark): raw speed of the simulator's hot paths —
// instruction codec, page-queue operations, the policy executor's interpretation loop, and
// the pseudo-code translator. These measure the *reproduction's* performance, not the
// paper's virtual-time results (those live in bench_table*/bench_figure*).
//
// The executor benchmarks run under both dispatch modes so the decode-once IR interpreter can
// be compared against the retained pre-refactor switch interpreter on the same workload.
// After the google-benchmark tables, main() emits one JSON object per line summarizing
// interpretation throughput (commands/sec, ns/command) per mode plus the speedup — grep for
// lines starting with '{' to consume them from scripts.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "hipec/builder.h"
#include "hipec/engine.h"
#include "hipec/executor.h"
#include "lang/compiler.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
namespace ops = core::std_ops;

void BM_InstructionCodec(benchmark::State& state) {
  uint32_t word = 0x02020C01;
  for (auto _ : state) {
    core::Instruction inst = core::Instruction::Decode(word);
    benchmark::DoNotOptimize(word = inst.Encode());
  }
}
BENCHMARK(BM_InstructionCodec);

void BM_PageQueueChurn(benchmark::State& state) {
  mach::PageQueue queue("bench");
  std::vector<mach::VmPage> pages(64);
  for (auto& p : pages) {
    queue.EnqueueTail(&p, 0);
  }
  for (auto _ : state) {
    mach::VmPage* page = queue.DequeueHead();
    queue.EnqueueTail(page, 0);
    benchmark::DoNotOptimize(page);
  }
}
BENCHMARK(BM_PageQueueChurn);

// One full PageFault-event interpretation (free-list fast path) per iteration.
void RunExecutorSimpleFault(benchmark::State& state, core::DispatchMode mode) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("bench");
  core::HipecOptions options;
  options.min_frames = 16;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 32 * kPageSize,
                             policies::FifoPolicy(policies::CommandStyle::kSimple), options);
  core::Container* container = region.container;
  core::PolicyExecutor& executor = engine.executor();
  executor.set_dispatch_mode(mode);
  for (auto _ : state) {
    core::ExecResult result = executor.ExecuteEvent(container, core::kEventPageFault);
    // Put the page back so the free list never drains.
    mach::VmPage* page = container->operands().ReadPage(result.return_operand);
    container->free_q().EnqueueTail(page, 0);
    container->operands().WritePage(result.return_operand, nullptr);
    benchmark::DoNotOptimize(result.commands_executed);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExecutorSimpleFault_Ir(benchmark::State& state) {
  RunExecutorSimpleFault(state, core::DispatchMode::kDecodedIr);
}
BENCHMARK(BM_ExecutorSimpleFault_Ir);

void BM_ExecutorSimpleFault_Switch(benchmark::State& state) {
  RunExecutorSimpleFault(state, core::DispatchMode::kReferenceSwitch);
}
BENCHMARK(BM_ExecutorSimpleFault_Switch);

// The sustained-throughput workload: a 100-iteration compare/branch/arithmetic loop per
// event (~400 commands). Shared by the google-benchmark cases and the JSON summary below.
core::PolicyProgram ArithLoopProgram() {
  core::EventBuilder b;
  auto loop = b.NewLabel();
  auto done = b.NewLabel();
  b.LoadImm(ops::kScratch0, 100);
  b.LoadImm(ops::kScratch1, 1);
  b.Bind(loop);
  b.Comp(ops::kScratch0, ops::kScratch1, core::CompOp::kGt);
  b.JumpIfFalse(done);
  b.Arith(ops::kScratch0, ops::kScratch1, core::ArithOp::kSub);
  b.JumpIfFalse(loop);
  b.Bind(done);
  b.Return(0);
  core::PolicyProgram program;
  program.SetEvent(core::kEventPageFault, b.Build());
  core::EventBuilder reclaim;
  reclaim.Return(0);
  program.SetEvent(core::kEventReclaimFrame, reclaim.Build());
  return program;
}

// Sustained interpretation throughput; items = HiPEC commands interpreted.
void RunExecutorArithLoop(benchmark::State& state, core::DispatchMode mode) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::GlobalFrameManager manager(&kernel, {});
  core::PolicyExecutor executor(&kernel, &manager);
  executor.set_dispatch_mode(mode);

  mach::Task* task = kernel.CreateTask("bench");
  mach::VmObject* object = kernel.CreateAnonObject(4 * kPageSize);
  core::Container container(1, task, object, ArithLoopProgram(), 0, sim::kSecond);
  core::SetupStandardOperands(&container, {});

  int64_t commands = 0;
  for (auto _ : state) {
    core::ExecResult result = executor.ExecuteEvent(&container, core::kEventPageFault);
    commands += result.commands_executed;
  }
  state.SetItemsProcessed(commands);
}

void BM_ExecutorArithLoop_Ir(benchmark::State& state) {
  RunExecutorArithLoop(state, core::DispatchMode::kDecodedIr);
}
BENCHMARK(BM_ExecutorArithLoop_Ir);

void BM_ExecutorArithLoop_Switch(benchmark::State& state) {
  RunExecutorArithLoop(state, core::DispatchMode::kReferenceSwitch);
}
BENCHMARK(BM_ExecutorArithLoop_Switch);

void BM_TranslatorCompile(benchmark::State& state) {
  const std::string source = R"(
Event PageFault() {
  if (_free_count > reserved_target)
    page = de_queue_head(_free_queue)
  else begin
    page = mru(_active_queue)
    if (page.dirty) flush(page)
  endif
  return(page)
}
Event ReclaimFrame() {
  while (reclaim_count > 0) {
    release(_free_queue)
    reclaim_count = reclaim_count - 1
  }
}
)";
  for (auto _ : state) {
    lang::CompiledPolicy compiled = lang::CompilePolicy(source);
    benchmark::DoNotOptimize(compiled.program.TotalWords());
  }
}
BENCHMARK(BM_TranslatorCompile);

void BM_KernelTouchTlbHit(benchmark::State& state) {
  mach::Kernel kernel{mach::KernelParams{}};
  mach::Task* task = kernel.CreateTask("bench");
  uint64_t addr = kernel.VmAllocate(task, 4 * kPageSize);
  kernel.Touch(task, addr, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.Touch(task, addr, false));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KernelTouchTlbHit);

// Direct (host-clock) measurement of the arith-loop workload for the JSON summary.
double MeasureCommandsPerSec(core::DispatchMode mode) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::GlobalFrameManager manager(&kernel, {});
  core::PolicyExecutor executor(&kernel, &manager);
  executor.set_dispatch_mode(mode);

  mach::Task* task = kernel.CreateTask("bench");
  mach::VmObject* object = kernel.CreateAnonObject(4 * kPageSize);
  core::Container container(1, task, object, ArithLoopProgram(), 0, sim::kSecond);
  core::SetupStandardOperands(&container, {});

  for (int i = 0; i < 2'000; ++i) {  // warm up caches, branch predictors, lazy decode
    executor.ExecuteEvent(&container, core::kEventPageFault);
  }
  constexpr int kEvents = 50'000;
  int64_t commands = 0;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kEvents; ++i) {
    commands += executor.ExecuteEvent(&container, core::kEventPageFault).commands_executed;
  }
  std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  return static_cast<double>(commands) / elapsed.count();
}

const char* ModeName(core::DispatchMode mode) {
  return mode == core::DispatchMode::kDecodedIr ? "decoded_ir" : "reference_switch";
}

void EmitJsonSummary() {
  bench::JsonLine json;
  double per_mode[2] = {0, 0};
  for (core::DispatchMode mode :
       {core::DispatchMode::kDecodedIr, core::DispatchMode::kReferenceSwitch}) {
    double cps = MeasureCommandsPerSec(mode);
    per_mode[static_cast<int>(mode)] = cps;
    json.Str("bench", "executor_arith_loop")
        .Str("mode", ModeName(mode))
        .Num("commands_per_sec", cps, 0)
        .Num("ns_per_command", 1e9 / cps)
        .Emit();
  }
  json.Str("bench", "executor_arith_loop")
      .Str("metric", "ir_speedup")
      .Num("value", per_mode[0] / per_mode[1])
      .Emit();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  EmitJsonSummary();
  return 0;
}
