// Shared console-table and JSON-emission helpers for the paper-reproduction benches.
#ifndef HIPEC_BENCH_BENCH_UTIL_H_
#define HIPEC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/json.h"
#include "obs/probe.h"

// Sanitizer detection for the provenance stamp below. GCC defines __SANITIZE_*__; clang
// only exposes __has_feature. UBSan defines neither, so it cannot be detected here — in
// this repo's CI it always rides combined with ASan (-fsanitize=address,undefined), so
// "asan" in a provenance stamp means the ASan+UBSan job.
#if defined(__SANITIZE_ADDRESS__)
#define HIPEC_BENCH_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define HIPEC_BENCH_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HIPEC_BENCH_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define HIPEC_BENCH_TSAN 1
#endif
#endif

namespace hipec::bench {

// Build/run configuration provenance, stamped into every JSON line the benches Emit() so
// check_perf_regression.py can refuse to compare runs from mismatched configurations
// (probes compiled out vs in, sanitizer vs release, JIT default on vs off) instead of
// silently gating apples against oranges.
//
//   cfg_dispatch    compile-time default dispatch loop: "threaded" (computed goto) on
//                   GNU-compatible compilers, "switch" elsewhere
//   cfg_jit         1 when the HIPEC_JIT environment variable selects DispatchMode::kJit
//                   as the process default (same parse as mach::DefaultJitMode)
//   cfg_probes      the HIPEC_OBS_PROBES compile-time gate: 0 means every probe was
//                   compiled out, so per-fault numbers are not comparable to a probed build
//   cfg_sanitizer   "asan", "tsan", or "none" (UBSan is not macro-detectable; see above)
inline const std::string& ConfigProvenanceFields() {
  static const std::string fields = [] {
    const char* jit_env = std::getenv("HIPEC_JIT");
    const bool jit = jit_env != nullptr && jit_env[0] != '\0' && jit_env[0] != '0';
#if defined(__GNUC__)
    const char* dispatch = "threaded";
#else
    const char* dispatch = "switch";
#endif
#if defined(HIPEC_BENCH_ASAN)
    const char* sanitizer = "asan";
#elif defined(HIPEC_BENCH_TSAN)
    const char* sanitizer = "tsan";
#else
    const char* sanitizer = "none";
#endif
    std::string out;
    out += "\"cfg_dispatch\":\"";
    out += dispatch;
    out += "\",\"cfg_jit\":";
    out += jit ? '1' : '0';
    out += ",\"cfg_probes\":";
    out += obs::ProbesCompiledIn() ? '1' : '0';
    out += ",\"cfg_sanitizer\":\"";
    out += sanitizer;
    out += '"';
    return out;
  }();
  return fields;
}

// Builds one machine-readable JSON object per line, keys in insertion order — the format the
// benches print after their human-readable tables and scripts/CI consume by grepping for
// lines starting with '{'. Escaping delegates to obs::AppendJsonEscaped (src/obs/json.h),
// the single writer-side escaper in the tree, so bench output and flight-recorder dumps can
// never drift apart.
class JsonLine {
 public:
  JsonLine& Str(const char* key, const std::string& value) {
    Key(key);
    buf_ += '"';
    obs::AppendJsonEscaped(&buf_, value);
    buf_ += '"';
    return *this;
  }
  JsonLine& Int(const char* key, long long value) {
    char num[32];
    std::snprintf(num, sizeof(num), "%lld", value);
    Key(key);
    buf_ += num;
    return *this;
  }
  JsonLine& Num(const char* key, double value, int precision = 3) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.*f", precision, value);
    Key(key);
    buf_ += num;
    return *this;
  }
  // Prints the finished object — with the config-provenance stamp appended — on its own
  // line and resets for reuse.
  void Emit() {
    std::printf("%s\n", FinishWithProvenance().c_str());
    std::fflush(stdout);
  }

  // Returns the finished object and resets for reuse (tests use this instead of Emit).
  std::string Finish() {
    std::string out = buf_ + "}";
    Reset();
    return out;
  }

  // What Emit() prints: the object with the cfg_* provenance fields appended.
  std::string FinishWithProvenance() {
    std::string out = buf_;
    if (out.size() > 1) {
      out += ',';
    }
    out += ConfigProvenanceFields();
    out += '}';
    Reset();
    return out;
  }

 private:
  // clear+push_back instead of assigning a literal: GCC 12's -Wrestrict false-positives on
  // the inlined const char* assignment when Emit() is called from some loop shapes.
  void Reset() {
    buf_.clear();
    buf_.push_back('{');
  }

  void Key(const char* key) {
    if (buf_.size() > 1) {
      buf_ += ',';
    }
    buf_ += '"';
    obs::AppendJsonEscaped(&buf_, key);
    buf_ += "\":";
  }

  std::string buf_ = "{";
};

inline void Title(const std::string& text) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace hipec::bench

#endif  // HIPEC_BENCH_BENCH_UTIL_H_
