// Shared console-table helpers for the paper-reproduction benches.
#ifndef HIPEC_BENCH_BENCH_UTIL_H_
#define HIPEC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace hipec::bench {

inline void Title(const std::string& text) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace hipec::bench

#endif  // HIPEC_BENCH_BENCH_UTIL_H_
