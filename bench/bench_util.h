// Shared console-table and JSON-emission helpers for the paper-reproduction benches.
#ifndef HIPEC_BENCH_BENCH_UTIL_H_
#define HIPEC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

namespace hipec::bench {

// Builds one machine-readable JSON object per line, keys in insertion order — the format the
// benches print after their human-readable tables and scripts/CI consume by grepping for
// lines starting with '{'. String values are escaped, so scenario names carrying quotes,
// backslashes, or control characters still emit valid JSON.
class JsonLine {
 public:
  JsonLine& Str(const char* key, const std::string& value) {
    Key(key);
    buf_ += '"';
    AppendEscaped(value);
    buf_ += '"';
    return *this;
  }
  JsonLine& Int(const char* key, long long value) {
    char num[32];
    std::snprintf(num, sizeof(num), "%lld", value);
    Key(key);
    buf_ += num;
    return *this;
  }
  JsonLine& Num(const char* key, double value, int precision = 3) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.*f", precision, value);
    Key(key);
    buf_ += num;
    return *this;
  }
  // Prints the finished object on its own line and resets for reuse.
  void Emit() {
    std::printf("%s\n", Finish().c_str());
    std::fflush(stdout);
  }

  // Returns the finished object and resets for reuse (tests use this instead of Emit).
  std::string Finish() {
    std::string out = buf_ + "}";
    buf_ = "{";
    return out;
  }

 private:
  void Key(const char* key) {
    if (buf_.size() > 1) {
      buf_ += ',';
    }
    buf_ += '"';
    AppendEscaped(key);
    buf_ += "\":";
  }

  void AppendEscaped(const std::string& value) {
    for (char ch : value) {
      switch (ch) {
        case '"':
          buf_ += "\\\"";
          break;
        case '\\':
          buf_ += "\\\\";
          break;
        case '\n':
          buf_ += "\\n";
          break;
        case '\t':
          buf_ += "\\t";
          break;
        case '\r':
          buf_ += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char hex[8];
            std::snprintf(hex, sizeof(hex), "\\u%04x", static_cast<unsigned char>(ch));
            buf_ += hex;
          } else {
            buf_ += ch;
          }
      }
    }
  }

  std::string buf_ = "{";
};

inline void Title(const std::string& text) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace hipec::bench

#endif  // HIPEC_BENCH_BENCH_UTIL_H_
