// Shared console-table and JSON-emission helpers for the paper-reproduction benches.
#ifndef HIPEC_BENCH_BENCH_UTIL_H_
#define HIPEC_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "obs/json.h"

namespace hipec::bench {

// Builds one machine-readable JSON object per line, keys in insertion order — the format the
// benches print after their human-readable tables and scripts/CI consume by grepping for
// lines starting with '{'. Escaping delegates to obs::AppendJsonEscaped (src/obs/json.h),
// the single writer-side escaper in the tree, so bench output and flight-recorder dumps can
// never drift apart.
class JsonLine {
 public:
  JsonLine& Str(const char* key, const std::string& value) {
    Key(key);
    buf_ += '"';
    obs::AppendJsonEscaped(&buf_, value);
    buf_ += '"';
    return *this;
  }
  JsonLine& Int(const char* key, long long value) {
    char num[32];
    std::snprintf(num, sizeof(num), "%lld", value);
    Key(key);
    buf_ += num;
    return *this;
  }
  JsonLine& Num(const char* key, double value, int precision = 3) {
    char num[64];
    std::snprintf(num, sizeof(num), "%.*f", precision, value);
    Key(key);
    buf_ += num;
    return *this;
  }
  // Prints the finished object on its own line and resets for reuse.
  void Emit() {
    std::printf("%s\n", Finish().c_str());
    std::fflush(stdout);
  }

  // Returns the finished object and resets for reuse (tests use this instead of Emit).
  std::string Finish() {
    std::string out = buf_ + "}";
    buf_ = "{";
    return out;
  }

 private:
  void Key(const char* key) {
    if (buf_.size() > 1) {
      buf_ += ',';
    }
    buf_ += '"';
    obs::AppendJsonEscaped(&buf_, key);
    buf_ += "\":";
  }

  std::string buf_ = "{";
};

inline void Title(const std::string& text) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) { std::printf("%s\n", text.c_str()); }

inline void Rule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace hipec::bench

#endif  // HIPEC_BENCH_BENCH_UTIL_H_
