// Ablation: the partition_burst watermark (§4.3.1). The paper fixes it at 50% of post-boot
// free frames and leaves "an adaptable or dynamically adjustable partition_burst" to future
// work. Sweep the fraction and observe the trade between the specific application (which
// wants a large private pool) and non-specific applications (which share what remains).
#include <cstdio>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

struct Outcome {
  size_t granted;      // frames the specific app ended up with
  int64_t specific_faults;
  int64_t hog_faults;
};

Outcome Run(double fraction) {
  mach::KernelParams params;
  params.total_frames = 4096;
  params.kernel_reserved_frames = 512;  // 3584 free after boot
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel, core::FrameManagerConfig{fraction, 64});

  // The specific application wants 2048 frames for a 2048-page working set; it accepts
  // whatever minFrame the watermark allows (privileged-user admission, §4.3.1).
  mach::Task* app = kernel.CreateTask("specific");
  size_t want = 2048;
  core::HipecOptions options;
  options.min_frames = want;
  core::HipecRegion region;
  while (true) {
    region = engine.VmAllocateHipec(app, 2048 * kPageSize,
                                    policies::FifoPolicy(policies::CommandStyle::kSimple),
                                    options);
    if (region.ok || options.min_frames <= 64) {
      break;
    }
    options.min_frames -= 64;  // retry with a smaller request, as §4.3.1 suggests
  }

  // A non-specific hog cycles over 2400 pages in whatever is left of the global pool.
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, 2400 * kPageSize);

  Outcome out{};
  out.granted = region.ok ? region.container->allocated_frames : 0;
  // Uniform random accesses, so the fault rate scales smoothly with the pool each side got
  // (cyclic scans would make the transition all-or-nothing).
  sim::Rng app_rng(1);
  sim::Rng hog_rng(2);
  for (int sweep = 0; sweep < 3; ++sweep) {
    if (region.ok) {
      for (int i = 0; i < 2048; ++i) {
        kernel.Touch(app, region.addr + app_rng.Below(2048) * kPageSize, false);
      }
    }
    for (int i = 0; i < 2400; ++i) {
      kernel.Touch(hog, hog_addr + hog_rng.Below(2400) * kPageSize, false);
    }
  }
  out.specific_faults = engine.counters().Get("engine.faults_handled");
  out.hog_faults = kernel.counters().Get("kernel.page_faults") - out.specific_faults;
  return out;
}

}  // namespace

int main() {
  bench::Title("Ablation — partition_burst watermark sweep");
  bench::Note("3584 free frames after boot; a specific app asks for 2048, a non-specific hog");
  bench::Note("cycles over 2400 pages. The watermark splits the machine between them.");
  bench::Rule();
  std::printf("%10s %12s %16s %14s\n", "fraction", "granted", "specific faults", "hog faults");
  bench::Rule();
  for (double fraction : {0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9}) {
    Outcome out = Run(fraction);
    std::printf("%10.2f %12zu %16lld %14lld\n", fraction, out.granted,
                static_cast<long long>(out.specific_faults),
                static_cast<long long>(out.hog_faults));
  }
  bench::Rule();
  bench::Note("Expected shape: raising the watermark monotonically shrinks the specific");
  bench::Note("app's fault count (bigger private pool) and inflates the hog's — the paper's");
  bench::Note("50% default is the even split.");
  return 0;
}
