// Policy-library comparison: fault counts of every shipped replacement policy across four
// canonical access patterns, each through the full HiPEC stack (bytecode interpretation on
// every fault). This is the practical payoff the paper argues for: no single row of this
// table wins every column, so applications must be able to choose — and with HiPEC they can.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/access_patterns.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
using policies::CommandStyle;

constexpr size_t kFrames = 128;
constexpr uint64_t kRegionPages = 256;

int64_t Run(const core::PolicyProgram& program, core::HipecOptions options,
            const std::vector<uint64_t>& trace) {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  options.min_frames = kFrames;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, kRegionPages * kPageSize, program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return -1;
  }
  for (uint64_t page : trace) {
    if (!kernel.Touch(task, region.addr + page * kPageSize, false)) {
      std::fprintf(stderr, "terminated: %s\n", task->termination_reason().c_str());
      return -1;
    }
  }
  return engine.counters().Get("engine.faults_handled");
}

struct PolicyRow {
  const char* name;
  core::PolicyProgram program;
  core::HipecOptions options;
};

}  // namespace

int main() {
  bench::Title("Policy library — faults by policy and access pattern");
  bench::Note("256-page region, 128-frame private pool, every fault interpreted in bytecode.");

  // Patterns. Mixed = Zipf lookups with an interleaved one-shot scan (the 2Q showcase).
  std::vector<uint64_t> cyclic = workloads::CyclicScan(192, 6);
  std::vector<uint64_t> zipf = workloads::ZipfTrace(kRegionPages, 4000, 0.9, 17);
  std::vector<uint64_t> uniform = workloads::UniformRandom(kRegionPages, 4000, 23);
  std::vector<uint64_t> mixed;
  {
    sim::ZipfGenerator hot(96, 0.9, 31);
    for (int i = 0; i < 1200; ++i) {
      mixed.push_back(hot.Next());
    }
    for (uint64_t s = 96; s < 246; ++s) {
      mixed.push_back(s);
      mixed.push_back(hot.Next());
    }
    for (int i = 0; i < 1200; ++i) {
      mixed.push_back(hot.Next());
    }
  }

  std::vector<PolicyRow> rows;
  rows.push_back({"FIFO", policies::FifoPolicy(CommandStyle::kSimple), {}});
  rows.push_back({"FIFO-2nd-chance", policies::FifoSecondChancePolicy(), {}});
  rows.push_back({"CLOCK", policies::ClockPolicy(), {}});
  rows.push_back({"2Q (scan-resistant)", policies::TwoQueuePolicy(),
                  policies::TwoQueueOptions()});
  rows.push_back({"LRU", policies::LruPolicy(CommandStyle::kComplex), {}});
  rows.push_back({"MRU", policies::MruPolicy(CommandStyle::kComplex), {}});

  bench::Rule();
  std::printf("%-22s %10s %10s %10s %10s\n", "policy", "cyclic", "zipf", "uniform", "mixed");
  bench::Rule();
  for (PolicyRow& row : rows) {
    core::HipecOptions options = row.options;
    options.free_target = 4;
    options.inactive_target = 16;
    std::printf("%-22s %10lld %10lld %10lld %10lld\n", row.name,
                static_cast<long long>(Run(row.program, options, cyclic)),
                static_cast<long long>(Run(row.program, options, zipf)),
                static_cast<long long>(Run(row.program, options, uniform)),
                static_cast<long long>(Run(row.program, options, mixed)));
  }
  bench::Rule();
  bench::Note("Expected shape: MRU wins the cyclic column by a wide margin and loses the");
  bench::Note("skewed columns; LRU/CLOCK win zipf; 2Q wins mixed (scan resistance); no");
  bench::Note("policy dominates — the case for application-specific control.");
  return 0;
}
