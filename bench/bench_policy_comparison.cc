// Policy-library comparison: fault counts of every shipped replacement policy across four
// canonical access patterns, each through the full HiPEC stack (bytecode interpretation on
// every fault). This is the practical payoff the paper argues for: no single row of this
// table wins every column, so applications must be able to choose — and with HiPEC they can.
//
// The columns come from the shared workload registry (workloads/registry.h), the same
// generator configurations every other bench enumerates.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/registry.h"
#include "workloads/workload_source.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
using policies::CommandStyle;

constexpr size_t kFrames = 128;

int64_t Run(const core::PolicyProgram& program, core::HipecOptions options,
            const workloads::WorkloadSource& source) {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  options.min_frames = kFrames;
  core::HipecRegion region = engine.VmAllocateHipec(
      task, source.region_pages() * kPageSize, program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return -1;
  }
  std::unique_ptr<workloads::WorkloadSource> stream = source.Clone();
  workloads::Access access;
  while (stream->Next(&access)) {
    if (!kernel.Touch(task, region.addr + access.vpage * kPageSize, access.is_write())) {
      std::fprintf(stderr, "terminated: %s\n", task->termination_reason().c_str());
      return -1;
    }
  }
  return engine.counters().Get("engine.faults_handled");
}

struct PolicyRow {
  const char* name;
  core::PolicyProgram program;
  core::HipecOptions options;
};

}  // namespace

int main() {
  bench::Title("Policy library — faults by policy and access pattern");
  bench::Note("256-page region, 128-frame private pool, every fault interpreted in bytecode.");

  // Columns: cyclic, zipf, uniform, mixed (Zipf lookups with an interleaved one-shot scan,
  // the 2Q showcase) — the registry's comparison grid.
  std::vector<workloads::NamedWorkload> columns = workloads::ComparisonWorkloads();

  std::vector<PolicyRow> rows;
  rows.push_back({"FIFO", policies::FifoPolicy(CommandStyle::kSimple), {}});
  rows.push_back({"FIFO-2nd-chance", policies::FifoSecondChancePolicy(), {}});
  rows.push_back({"CLOCK", policies::ClockPolicy(), {}});
  rows.push_back({"2Q (scan-resistant)", policies::TwoQueuePolicy(),
                  policies::TwoQueueOptions()});
  rows.push_back({"LRU", policies::LruPolicy(CommandStyle::kComplex), {}});
  rows.push_back({"MRU", policies::MruPolicy(CommandStyle::kComplex), {}});

  bench::Rule();
  std::printf("%-22s", "policy");
  for (const workloads::NamedWorkload& column : columns) {
    std::printf(" %10s", column.name.c_str());
  }
  std::printf("\n");
  bench::Rule();
  for (PolicyRow& row : rows) {
    core::HipecOptions options = row.options;
    options.free_target = 4;
    options.inactive_target = 16;
    std::printf("%-22s", row.name);
    for (const workloads::NamedWorkload& column : columns) {
      std::printf(" %10lld",
                  static_cast<long long>(Run(row.program, options, *column.source)));
    }
    std::printf("\n");
  }
  bench::Rule();
  bench::Note("Expected shape: MRU wins the cyclic column by a wide margin and loses the");
  bench::Note("skewed columns; LRU/CLOCK win zipf; 2Q wins mixed (scan resistance); no");
  bench::Note("policy dominates — the case for application-specific control.");
  return 0;
}
