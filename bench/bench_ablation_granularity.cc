// Ablation: command granularity (§4.2). "The more complex a command is, the less overhead it
// creates because the policy executor does not need to fetch and interpret many commands
// during execution. While the simple commands induce more overhead ... they are flexible."
//
// Same workload, three expressions of eviction policy:
//   * one complex FIFO command per eviction,
//   * the equivalent one-simple-command program (DeQueue head),
//   * the full FIFO-with-second-chance program (many simple commands, amortized over faults).
#include <cstdio>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

struct RunStats {
  double commands_per_fault;
  double interp_ns_per_fault;
  int64_t faults;
};

RunStats Run(const core::PolicyProgram& program, int64_t free_target, int64_t inactive_target) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  core::HipecOptions options;
  options.min_frames = 2048;
  options.free_target = free_target;
  options.inactive_target = inactive_target;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 4096 * kPageSize, program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return {};
  }
  int64_t commands_before = engine.executor().counters().Get("executor.commands");
  // Three sweeps: heavy eviction traffic through 2048 frames.
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (uint64_t p = 0; p < 4096; ++p) {
      kernel.Touch(task, region.addr + p * kPageSize, true);
    }
  }
  int64_t commands = engine.executor().counters().Get("executor.commands") - commands_before;
  int64_t faults = engine.counters().Get("engine.faults_handled");
  const sim::CostModel& costs = kernel.costs();
  RunStats stats;
  stats.faults = faults;
  stats.commands_per_fault = static_cast<double>(commands) / static_cast<double>(faults);
  stats.interp_ns_per_fault =
      static_cast<double>(commands * costs.command_decode_ns) / static_cast<double>(faults);
  return stats;
}

void Row(const char* label, const RunStats& stats) {
  std::printf("%-44s %10.1f %14.0f %10lld\n", label, stats.commands_per_fault,
              stats.interp_ns_per_fault, static_cast<long long>(stats.faults));
}

}  // namespace

int main() {
  bench::Title("Ablation — command granularity: complex vs simple commands");
  bench::Rule();
  std::printf("%-44s %10s %14s %10s\n", "policy expression", "cmds/flt", "decode ns/flt",
              "faults");
  bench::Rule();
  Row("FIFO, one complex command",
      Run(policies::FifoPolicy(policies::CommandStyle::kComplex), 0, 0));
  Row("FIFO, one simple command (DeQueue head)",
      Run(policies::FifoPolicy(policies::CommandStyle::kSimple), 0, 0));
  Row("FIFO-2nd-chance, full simple-command program",
      Run(policies::FifoSecondChancePolicy(), 64, 128));
  bench::Rule();
  bench::Note("Expected shape: the two FIFO rows tie (either way one command evicts); the");
  bench::Note("second-chance program interprets ~3x more commands per fault, yet even that");
  bench::Note("is ~1 us — far below one kernel crossing (Table 4). Note also that true");
  bench::Note("LRU/MRU are *only* expressible as complex commands: no simple command reads");
  bench::Note("a page's recency, which is exactly why Table 1 includes FIFO/LRU/MRU.");
  return 0;
}
