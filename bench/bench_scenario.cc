// Multi-tenant scenario benchmark: runs the canned contention scenarios (scenario/canned.h)
// end to end — invariant auditing on — and reports per-tenant fault throughput, Request
// reject rates, and forced-reclamation counts, as a human table and as JSON lines for the CI
// perf-smoke gate. With --replay DIR, each canned .hpt capture in DIR additionally runs as a
// contention scenario: two tenants under different policies replay the same trace (clones
// share the record storage — the WorkloadSource fan-out path) against a uniform background
// task.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "scenario/canned.h"
#include "scenario/scenario.h"
#include "workloads/registry.h"

namespace {

using hipec::bench::JsonLine;
using hipec::scenario::ScenarioResult;
using hipec::scenario::ScenarioSpec;
using hipec::scenario::TenantResult;

double RejectRate(int64_t made, int64_t rejected) {
  return made > 0 ? static_cast<double>(rejected) / static_cast<double>(made) : 0.0;
}

void RunOne(ScenarioSpec spec, const std::string& trace_dir) {
  if (!trace_dir.empty()) {
    spec.chrome_trace_path = trace_dir + "/" + spec.name + ".trace.json";
  }
  auto start = std::chrono::steady_clock::now();
  ScenarioResult result = hipec::scenario::RunScenario(spec);
  std::chrono::duration<double> host = std::chrono::steady_clock::now() - start;
  double host_sec = host.count();
  double virtual_sec = static_cast<double>(result.virtual_ns) / 1e9;

  int64_t faults = 0;
  int64_t requests = 0;
  int64_t rejects = 0;
  int64_t forced = 0;
  for (const TenantResult& t : result.tenants) {
    faults += t.faults_handled;
    requests += t.requests_made;
    rejects += t.requests_rejected;
    forced += t.frames_force_reclaimed;
  }

  hipec::bench::Title("scenario: " + result.name);
  std::printf("  virtual time %.3f s, host time %.3f s, audits %lld, checker kills %lld\n",
              virtual_sec, host_sec, static_cast<long long>(result.audits_run),
              static_cast<long long>(result.checker_kills));
  std::printf("  %-18s %8s %8s %8s %8s %8s %8s\n", "tenant", "faults", "req", "rej", "forced",
              "peak", "done");
  for (const TenantResult& t : result.tenants) {
    std::printf("  %-18s %8lld %8lld %8lld %8lld %8zu %8s\n", t.name.c_str(),
                static_cast<long long>(t.faults_handled),
                static_cast<long long>(t.requests_made),
                static_cast<long long>(t.requests_rejected),
                static_cast<long long>(t.frames_force_reclaimed), t.frames_peak,
                t.completed         ? "yes"
                : t.killed_by_checker ? "killed"
                : t.torn_down         ? "torn"
                                      : "no");
  }

  JsonLine json;
  json.Str("bench", "scenario")
      .Str("scenario", result.name)
      .Int("tenants", static_cast<long long>(result.tenants.size()))
      .Int("background", static_cast<long long>(result.background.size()))
      .Int("faults", faults)
      .Int("requests", requests)
      .Int("requests_rejected", rejects)
      .Num("reject_rate", RejectRate(requests, rejects), 4)
      .Int("forced_reclaims", forced)
      .Int("flush_exchange", result.Decision("flush-exchange"))
      .Int("flush_sync", result.Decision("flush-sync"))
      .Int("burst_watermark_final", static_cast<long long>(result.burst_watermark_final))
      .Int("checker_kills", result.checker_kills)
      .Int("audits", result.audits_run)
      .Int("trace_dropped", static_cast<long long>(result.trace_dropped))
      .Num("virtual_sec", virtual_sec, 3)
      .Num("host_sec", host_sec, 3)
      .Emit();
  json.Str("bench", "scenario")
      .Str("scenario", result.name)
      .Str("metric", "faults_per_host_sec")
      .Num("value", host_sec > 0 ? static_cast<double>(faults) / host_sec : 0.0, 0)
      .Emit();
  for (const TenantResult& t : result.tenants) {
    json.Str("bench", "scenario_tenant")
        .Str("scenario", result.name)
        .Str("tenant", t.name)
        .Int("faults", t.faults_handled)
        .Num("faults_per_virtual_sec",
             virtual_sec > 0 ? static_cast<double>(t.faults_handled) / virtual_sec : 0.0, 1)
        .Int("requests", t.requests_made)
        .Int("requests_rejected", t.requests_rejected)
        .Num("reject_rate", RejectRate(t.requests_made, t.requests_rejected), 4)
        .Int("forced_reclaims", t.frames_force_reclaimed)
        .Int("frames_peak", static_cast<long long>(t.frames_peak))
        .Int("completed", t.completed ? 1 : 0)
        .Int("killed_by_checker", t.killed_by_checker ? 1 : 0)
        .Emit();
  }
}

// One contention scenario per canned trace: two tenants replay the same capture under
// different policies (LRU vs FIFO), sharing the record storage via Workload::Shared, while
// a uniform background task keeps global pressure on the frame manager.
ScenarioSpec ReplayScenario(const hipec::workloads::NamedWorkload& trace) {
  namespace ws = hipec::scenario;
  ScenarioSpec spec;
  spec.name = "replay-";
  spec.name += trace.name;
  spec.slice_accesses = 64;
  spec.steps = static_cast<int>(trace.source->size() / spec.slice_accesses) + 2;
  ws::TenantSpec lru;
  lru.name = "lru-replay";
  lru.policy = ws::PolicyKind::kLru;
  lru.workload = hipec::workloads::Workload::Shared(trace.source);
  lru.min_frames = 64;
  ws::TenantSpec fifo = lru;
  fifo.name = "fifo-replay";
  fifo.policy = ws::PolicyKind::kFifo;
  spec.tenants.push_back(std::move(lru));
  spec.tenants.push_back(std::move(fifo));
  ws::BackgroundSpec bg;
  bg.name = "bg-uniform";
  bg.pages = 256;
  bg.accesses = 4000;
  spec.background.push_back(std::move(bg));
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-dir DIR: also export each scenario as Chrome trace-event JSON (Perfetto-loadable)
  // into DIR, one <scenario>.trace.json per canned scenario.
  // --replay DIR: additionally run a replay contention scenario per .hpt capture in DIR.
  std::string trace_dir;
  std::string replay_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-dir DIR] [--replay DIR]\n", argv[0]);
      return 2;
    }
  }
  for (const ScenarioSpec& spec : hipec::scenario::AllCannedScenarios()) {
    RunOne(spec, trace_dir);
  }
  if (!replay_dir.empty()) {
    std::string error;
    std::vector<hipec::workloads::NamedWorkload> traces =
        hipec::workloads::LoadTraceDir(replay_dir, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "trace load: %s\n", error.c_str());
    }
    if (traces.empty()) {
      std::fprintf(stderr, "no replayable traces in %s\n", replay_dir.c_str());
      return 2;
    }
    for (const hipec::workloads::NamedWorkload& trace : traces) {
      RunOne(ReplayScenario(trace), trace_dir);
    }
  }
  return 0;
}
