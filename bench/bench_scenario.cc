// Multi-tenant scenario benchmark: runs the canned contention scenarios (scenario/canned.h)
// end to end — invariant auditing on — and reports per-tenant fault throughput, Request
// reject rates, and forced-reclamation counts, as a human table and as JSON lines for the CI
// perf-smoke gate.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "scenario/canned.h"
#include "scenario/scenario.h"

namespace {

using hipec::bench::JsonLine;
using hipec::scenario::ScenarioResult;
using hipec::scenario::ScenarioSpec;
using hipec::scenario::TenantResult;

double RejectRate(int64_t made, int64_t rejected) {
  return made > 0 ? static_cast<double>(rejected) / static_cast<double>(made) : 0.0;
}

void RunOne(ScenarioSpec spec, const std::string& trace_dir) {
  if (!trace_dir.empty()) {
    spec.chrome_trace_path = trace_dir + "/" + spec.name + ".trace.json";
  }
  auto start = std::chrono::steady_clock::now();
  ScenarioResult result = hipec::scenario::RunScenario(spec);
  std::chrono::duration<double> host = std::chrono::steady_clock::now() - start;
  double host_sec = host.count();
  double virtual_sec = static_cast<double>(result.virtual_ns) / 1e9;

  int64_t faults = 0;
  int64_t requests = 0;
  int64_t rejects = 0;
  int64_t forced = 0;
  for (const TenantResult& t : result.tenants) {
    faults += t.faults_handled;
    requests += t.requests_made;
    rejects += t.requests_rejected;
    forced += t.frames_force_reclaimed;
  }

  hipec::bench::Title("scenario: " + result.name);
  std::printf("  virtual time %.3f s, host time %.3f s, audits %lld, checker kills %lld\n",
              virtual_sec, host_sec, static_cast<long long>(result.audits_run),
              static_cast<long long>(result.checker_kills));
  std::printf("  %-18s %8s %8s %8s %8s %8s %8s\n", "tenant", "faults", "req", "rej", "forced",
              "peak", "done");
  for (const TenantResult& t : result.tenants) {
    std::printf("  %-18s %8lld %8lld %8lld %8lld %8zu %8s\n", t.name.c_str(),
                static_cast<long long>(t.faults_handled),
                static_cast<long long>(t.requests_made),
                static_cast<long long>(t.requests_rejected),
                static_cast<long long>(t.frames_force_reclaimed), t.frames_peak,
                t.completed         ? "yes"
                : t.killed_by_checker ? "killed"
                : t.torn_down         ? "torn"
                                      : "no");
  }

  JsonLine json;
  json.Str("bench", "scenario")
      .Str("scenario", result.name)
      .Int("tenants", static_cast<long long>(result.tenants.size()))
      .Int("background", static_cast<long long>(result.background.size()))
      .Int("faults", faults)
      .Int("requests", requests)
      .Int("requests_rejected", rejects)
      .Num("reject_rate", RejectRate(requests, rejects), 4)
      .Int("forced_reclaims", forced)
      .Int("flush_exchange", result.Decision("flush-exchange"))
      .Int("flush_sync", result.Decision("flush-sync"))
      .Int("burst_watermark_final", static_cast<long long>(result.burst_watermark_final))
      .Int("checker_kills", result.checker_kills)
      .Int("audits", result.audits_run)
      .Int("trace_dropped", static_cast<long long>(result.trace_dropped))
      .Num("virtual_sec", virtual_sec, 3)
      .Num("host_sec", host_sec, 3)
      .Emit();
  json.Str("bench", "scenario")
      .Str("scenario", result.name)
      .Str("metric", "faults_per_host_sec")
      .Num("value", host_sec > 0 ? static_cast<double>(faults) / host_sec : 0.0, 0)
      .Emit();
  for (const TenantResult& t : result.tenants) {
    json.Str("bench", "scenario_tenant")
        .Str("scenario", result.name)
        .Str("tenant", t.name)
        .Int("faults", t.faults_handled)
        .Num("faults_per_virtual_sec",
             virtual_sec > 0 ? static_cast<double>(t.faults_handled) / virtual_sec : 0.0, 1)
        .Int("requests", t.requests_made)
        .Int("requests_rejected", t.requests_rejected)
        .Num("reject_rate", RejectRate(t.requests_made, t.requests_rejected), 4)
        .Int("forced_reclaims", t.frames_force_reclaimed)
        .Int("frames_peak", static_cast<long long>(t.frames_peak))
        .Int("completed", t.completed ? 1 : 0)
        .Int("killed_by_checker", t.killed_by_checker ? 1 : 0)
        .Emit();
  }
}

}  // namespace

int main(int argc, char** argv) {
  // --trace-dir DIR: also export each scenario as Chrome trace-event JSON (Perfetto-loadable)
  // into DIR, one <scenario>.trace.json per canned scenario.
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--trace-dir" && i + 1 < argc) {
      trace_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-dir DIR]\n", argv[0]);
      return 2;
    }
  }
  for (const ScenarioSpec& spec : hipec::scenario::AllCannedScenarios()) {
    RunOne(spec, trace_dir);
  }
  return 0;
}
