// Extension bench (§4.3.1 future work): "an adaptable or dynamically adjustable
// partition_burst will be studied in the future". A two-phase workload — first a specific
// application wants most of memory, then a non-specific surge needs it back — under a fixed
// 50% watermark versus the adaptive watermark.
#include <cstdio>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/random.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

struct Outcome {
  size_t burst_phase1;
  size_t specific_frames;   // what the specific app held after phase 1
  int64_t specific_faults;  // its faults during phase 1
  size_t burst_phase2;
  int64_t hog_faults;  // non-specific faults during phase 2
};

Outcome Run(bool adaptive) {
  mach::KernelParams params;
  params.total_frames = 4096;
  params.kernel_reserved_frames = 512;  // 3584 free after boot
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::FrameManagerConfig config;
  config.partition_burst_fraction = 0.5;
  config.adaptive_burst = adaptive;
  core::HipecEngine engine(&kernel, config);

  Outcome out{};

  // Phase 1: the specific application wants a 2600-page working set.
  mach::Task* app = kernel.CreateTask("specific");
  core::HipecOptions options;
  options.min_frames = 512;
  core::HipecRegion region = engine.VmAllocateHipec(
      app, 2600 * kPageSize, policies::FifoPolicy(policies::CommandStyle::kSimple), options);
  if (!region.ok) {
    std::fprintf(stderr, "registration failed: %s\n", region.error.c_str());
    return out;
  }
  sim::Rng rng(5);
  for (int burst_round = 0; burst_round < 30; ++burst_round) {
    engine.manager().RequestFrames(region.container, 128, &region.container->free_q());
    for (int i = 0; i < 800; ++i) {
      kernel.Touch(app, region.addr + rng.Below(2600) * kPageSize, false);
    }
  }
  out.burst_phase1 = engine.manager().partition_burst();
  out.specific_frames = region.container->allocated_frames;
  out.specific_faults = engine.counters().Get("engine.faults_handled");

  // Phase 2: a non-specific surge needs memory back.
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, 2600 * kPageSize);
  int64_t hog_before = kernel.counters().Get("kernel.page_faults");
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2600; ++i) {
      // Each fault under memory pressure raises the daemon's low-memory notification, which
      // is where the adaptive watermark sees non-specific demand.
      kernel.Touch(hog, hog_addr + rng.Below(2600) * kPageSize, false);
    }
  }
  out.burst_phase2 = engine.manager().partition_burst();
  out.hog_faults = kernel.counters().Get("kernel.page_faults") - hog_before -
                   (engine.counters().Get("engine.faults_handled") - out.specific_faults);
  return out;
}

void Row(const char* label, const Outcome& out) {
  std::printf("%-10s %12zu %12zu %12lld %12zu %12lld\n", label, out.burst_phase1,
              out.specific_frames, static_cast<long long>(out.specific_faults),
              out.burst_phase2, static_cast<long long>(out.hog_faults));
}

}  // namespace

int main() {
  bench::Title("Extension — fixed vs adaptive partition_burst");
  bench::Note("Phase 1: one specific app wants a 2600-page working set (3584 frames exist).");
  bench::Note("Phase 2: a 2600-page non-specific surge arrives.");
  bench::Rule();
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "watermark", "burst P1", "app frames",
              "app faults", "burst P2", "hog faults");
  bench::Rule();
  Row("fixed 50%", Run(false));
  Row("adaptive", Run(true));
  bench::Rule();
  bench::Note("Expected shape: the adaptive watermark rises in phase 1 (fewer specific");
  bench::Note("faults, more frames granted) and falls back in phase 2, returning frames to");
  bench::Note("the global pool (fewer hog faults than a high fixed watermark would allow).");
  return 0;
}
