// Eviction tournament: every shipped replacement policy runs every canonical workload
// through the full HiPEC stack, and the results land in one machine-readable leaderboard.
//
// This is the policy zoo's scoreboard. Where bench_policy_comparison prints fault counts
// for a human, this bench emits one JSON record per (policy, workload) cell — hit ratio,
// host ns/fault, checker kills, registration rejects — that hipec-report flattens into
// gate-able metrics (tournament.hit_ratio.<policy>.<workload>, ...). CI runs it as the
// tournament-smoke job and tools/check_tournament.py enforces the floors: the score-based
// policies (AWRP, perceptron) must beat FIFO on the hot/cold and looping workloads, which
// is the whole point of the WeightedSelect/SatDotProduct opcode family.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/access_patterns.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
using policies::CommandStyle;

// 256 private frames over a 512-page region: large enough that the looping workload
// (288 pages) overflows the pool — the configuration where FIFO/LRU collapse to ~0%
// hits and a frequency-with-decay policy can hold a stable resident set.
constexpr size_t kFrames = 256;
constexpr uint64_t kRegionPages = 512;

struct CellResult {
  int64_t accesses = 0;
  int64_t faults = 0;
  double hit_ratio = 0.0;
  double ns_per_fault = 0.0;
  int64_t kills = 0;    // task terminated mid-run (checker or policy error)
  int64_t rejects = 0;  // registration refused by the validator/admission path
};

CellResult Run(const core::PolicyProgram& program, core::HipecOptions options,
               const std::vector<uint64_t>& trace) {
  CellResult r;
  r.accesses = static_cast<int64_t>(trace.size());
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  options.min_frames = kFrames;
  options.free_target = 4;
  options.inactive_target = 16;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, kRegionPages * kPageSize, program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration rejected: %s\n", region.error.c_str());
    r.rejects = 1;
    return r;
  }
  auto start = std::chrono::steady_clock::now();
  for (uint64_t page : trace) {
    if (!kernel.Touch(task, region.addr + page * kPageSize, false)) {
      std::fprintf(stderr, "terminated: %s\n", task->termination_reason().c_str());
      r.kills = 1;
      break;
    }
  }
  auto end = std::chrono::steady_clock::now();
  r.faults = engine.counters().Get("engine.faults_handled");
  if (r.accesses > 0) {
    r.hit_ratio = 1.0 - static_cast<double>(r.faults) / static_cast<double>(r.accesses);
  }
  if (r.faults > 0) {
    r.ns_per_fault =
        std::chrono::duration<double, std::nano>(end - start).count() /
        static_cast<double>(r.faults);
  }
  return r;
}

struct PolicyEntry {
  const char* name;
  core::PolicyProgram program;
  core::HipecOptions options;
};

struct WorkloadEntry {
  const char* name;
  std::vector<uint64_t> trace;
};

}  // namespace

int main() {
  bench::Title("Eviction tournament — every policy x every workload");
  bench::Note("512-page region, 256-frame private pool; one JSON leaderboard record per cell.");

  // The contestants. Order fixes the table rows; names are the leaderboard keys.
  std::vector<PolicyEntry> entries;
  entries.push_back({"fifo", policies::FifoPolicy(CommandStyle::kSimple), {}});
  entries.push_back({"lru", policies::LruPolicy(CommandStyle::kComplex), {}});
  entries.push_back({"clock", policies::ClockPolicy(), {}});
  entries.push_back({"2q", policies::TwoQueuePolicy(), policies::TwoQueueOptions()});
  entries.push_back({"mru", policies::MruPolicy(CommandStyle::kComplex), {}});
  entries.push_back({"awrp", policies::AwrpPolicy(), {}});
  entries.push_back(
      {"perceptron", policies::PerceptronPolicy(), policies::PerceptronOptions()});

  // The events. hot_cold and looping carry the acceptance floors: the score-based
  // policies must beat FIFO on both.
  //   hot_cold — 64 hot pages take 90% of references; the cold tail spans the region.
  //   looping  — 288-page cyclic scan over 256 frames: 32 pages don't fit, so FIFO/LRU
  //              evict every page just before its next use (the classic worst case).
  //   zipf     — skewed lookups, the database-index pattern.
  //   uniform  — no structure at all; every policy converges to the same miss rate.
  //   scan_mix — Zipf hot set with an interleaved one-shot scan (the 2Q showcase).
  std::vector<WorkloadEntry> workloads;
  workloads.push_back({"hot_cold", workloads::HotColdTrace(kRegionPages, 64, 0.9, 8000, 11)});
  workloads.push_back({"looping", workloads::CyclicScan(288, 24)});
  workloads.push_back({"zipf", workloads::ZipfTrace(kRegionPages, 8000, 0.9, 17)});
  workloads.push_back({"uniform", workloads::UniformRandom(kRegionPages, 8000, 23)});
  {
    std::vector<uint64_t> mixed;
    sim::ZipfGenerator hot(128, 0.9, 31);
    for (int i = 0; i < 2400; ++i) {
      mixed.push_back(hot.Next());
    }
    for (uint64_t s = 128; s < 428; ++s) {
      mixed.push_back(s);
      mixed.push_back(hot.Next());
    }
    for (int i = 0; i < 2400; ++i) {
      mixed.push_back(hot.Next());
    }
    workloads.push_back({"scan_mix", std::move(mixed)});
  }

  bench::Rule();
  std::printf("%-12s %-10s %10s %10s %10s %12s %6s %7s\n", "policy", "workload", "accesses",
              "faults", "hit%", "ns/fault", "kills", "rejects");
  bench::Rule();

  bench::JsonLine json;
  for (PolicyEntry& entry : entries) {
    for (WorkloadEntry& workload : workloads) {
      CellResult r = Run(entry.program, entry.options, workload.trace);
      std::printf("%-12s %-10s %10lld %10lld %9.1f%% %12.0f %6lld %7lld\n", entry.name,
                  workload.name, static_cast<long long>(r.accesses),
                  static_cast<long long>(r.faults), 100.0 * r.hit_ratio, r.ns_per_fault,
                  static_cast<long long>(r.kills), static_cast<long long>(r.rejects));
      json.Str("bench", "tournament")
          .Str("policy", entry.name)
          .Str("workload", workload.name)
          .Int("accesses", r.accesses)
          .Int("faults", r.faults)
          .Num("hit_ratio", r.hit_ratio, 4)
          .Num("ns_per_fault", r.ns_per_fault, 1)
          .Int("kills", r.kills)
          .Int("rejects", r.rejects);
      json.Emit();
    }
  }
  bench::Rule();
  bench::Note("Expected shape: awrp/perceptron win looping and hot_cold (score words keep");
  bench::Note("the stable set resident); lru/clock win zipf; 2q wins scan_mix; mru wins");
  bench::Note("looping among the classics; nobody wins uniform. No row dominates — the");
  bench::Note("case for application-chosen policies, now with a learned entry in the zoo.");
  return 0;
}
