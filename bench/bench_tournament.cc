// Eviction tournament: every shipped replacement policy runs every canonical workload
// through the full HiPEC stack, and the results land in one machine-readable leaderboard.
//
// This is the policy zoo's scoreboard. Where bench_policy_comparison prints fault counts
// for a human, this bench emits one JSON record per (policy, workload) cell — hit ratio,
// host ns/fault, checker kills, registration rejects — that hipec-report flattens into
// gate-able metrics (tournament.hit_ratio.<policy>.<workload>, ...). CI runs it as the
// tournament-smoke job and tools/check_tournament.py enforces the floors: the score-based
// policies (AWRP, perceptron) must beat FIFO on the hot/cold and looping workloads, which
// is the whole point of the WeightedSelect/SatDotProduct opcode family.
//
// The synthetic grid comes from the shared workload registry (workloads/registry.h), so
// "zipf" here and "zipf" anywhere else in the tree are the same generator configuration.
// With --traces DIR, every canned .hpt capture in DIR joins the grid as extra columns
// (source "trace"), and each trace cell additionally emits a bench:"replay" record whose
// fields are all virtual-machine facts (records replayed, faults, hit ratio, virtual fault
// time) — deterministic across runs and across interpreter/JIT, which the replay-smoke CI
// job asserts cell for cell.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/registry.h"
#include "workloads/workload_source.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;
using policies::CommandStyle;

// 256 private frames: large enough that the looping workload (288 pages) overflows the
// pool — the configuration where FIFO/LRU collapse to ~0% hits and a frequency-with-decay
// policy can hold a stable resident set. Canned traces replay against the same pool so
// leaderboard columns stay comparable.
constexpr size_t kFrames = 256;

struct CellResult {
  int64_t accesses = 0;
  int64_t faults = 0;
  double hit_ratio = 0.0;
  double ns_per_fault = 0.0;     // host timing: excluded from determinism comparisons
  int64_t virtual_ns = 0;        // virtual clock at end of replay: deterministic
  int64_t kills = 0;    // task terminated mid-run (checker or policy error)
  int64_t rejects = 0;  // registration refused by the validator/admission path
};

CellResult Run(const core::PolicyProgram& program, core::HipecOptions options,
               const workloads::WorkloadSource& source) {
  CellResult r;
  r.accesses = static_cast<int64_t>(source.size());
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  options.min_frames = kFrames;
  options.free_target = 4;
  options.inactive_target = 16;
  core::HipecRegion region = engine.VmAllocateHipec(
      task, source.region_pages() * kPageSize, program, options);
  if (!region.ok) {
    std::fprintf(stderr, "registration rejected: %s\n", region.error.c_str());
    r.rejects = 1;
    return r;
  }
  std::unique_ptr<workloads::WorkloadSource> stream = source.Clone();
  auto start = std::chrono::steady_clock::now();
  workloads::Access access;
  while (stream->Next(&access)) {
    if (!kernel.Touch(task, region.addr + access.vpage * kPageSize, access.is_write())) {
      std::fprintf(stderr, "terminated: %s\n", task->termination_reason().c_str());
      r.kills = 1;
      break;
    }
  }
  auto end = std::chrono::steady_clock::now();
  r.faults = engine.counters().Get("engine.faults_handled");
  r.virtual_ns = static_cast<int64_t>(kernel.clock().now());
  if (r.accesses > 0) {
    r.hit_ratio = 1.0 - static_cast<double>(r.faults) / static_cast<double>(r.accesses);
  }
  if (r.faults > 0) {
    r.ns_per_fault =
        std::chrono::duration<double, std::nano>(end - start).count() /
        static_cast<double>(r.faults);
  }
  return r;
}

struct PolicyEntry {
  const char* name;
  core::PolicyProgram program;
  core::HipecOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  std::string trace_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      trace_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--traces DIR]\n", argv[0]);
      return 2;
    }
  }

  bench::Title("Eviction tournament — every policy x every workload");
  bench::Note("512-page region, 256-frame private pool; one JSON leaderboard record per cell.");

  // The contestants. Order fixes the table rows; names are the leaderboard keys.
  std::vector<PolicyEntry> entries;
  entries.push_back({"fifo", policies::FifoPolicy(CommandStyle::kSimple), {}});
  entries.push_back({"lru", policies::LruPolicy(CommandStyle::kComplex), {}});
  entries.push_back({"clock", policies::ClockPolicy(), {}});
  entries.push_back({"2q", policies::TwoQueuePolicy(), policies::TwoQueueOptions()});
  entries.push_back({"mru", policies::MruPolicy(CommandStyle::kComplex), {}});
  entries.push_back({"awrp", policies::AwrpPolicy(), {}});
  entries.push_back(
      {"perceptron", policies::PerceptronPolicy(), policies::PerceptronOptions()});

  // The events: the registry's synthetic grid (hot_cold and looping carry the acceptance
  // floors), plus every canned capture under --traces DIR.
  std::vector<workloads::NamedWorkload> grid = workloads::TournamentWorkloads();
  if (!trace_dir.empty()) {
    std::string error;
    std::vector<workloads::NamedWorkload> traces =
        workloads::LoadTraceDir(trace_dir, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "trace load: %s\n", error.c_str());
    }
    if (traces.empty()) {
      std::fprintf(stderr, "no replayable traces in %s\n", trace_dir.c_str());
      return 2;
    }
    for (auto& t : traces) {
      grid.push_back(std::move(t));
    }
  }

  bench::Rule();
  std::printf("%-12s %-14s %10s %10s %10s %12s %6s %7s\n", "policy", "workload", "accesses",
              "faults", "hit%", "ns/fault", "kills", "rejects");
  bench::Rule();

  bench::JsonLine json;
  for (PolicyEntry& entry : entries) {
    for (const workloads::NamedWorkload& workload : grid) {
      CellResult r = Run(entry.program, entry.options, *workload.source);
      std::printf("%-12s %-14s %10lld %10lld %9.1f%% %12.0f %6lld %7lld\n", entry.name,
                  workload.name.c_str(), static_cast<long long>(r.accesses),
                  static_cast<long long>(r.faults), 100.0 * r.hit_ratio, r.ns_per_fault,
                  static_cast<long long>(r.kills), static_cast<long long>(r.rejects));
      json.Str("bench", "tournament")
          .Str("policy", entry.name)
          .Str("workload", workload.name)
          .Str("source", workload.trace ? "trace" : "synthetic")
          .Int("accesses", r.accesses)
          .Int("faults", r.faults)
          .Num("hit_ratio", r.hit_ratio, 4)
          .Num("ns_per_fault", r.ns_per_fault, 1)
          .Int("kills", r.kills)
          .Int("rejects", r.rejects);
      json.Emit();
      if (workload.trace) {
        // The replay record: virtual-machine facts only (ns_per_fault, the lone
        // host-timing field, stays out), so the line is byte-identical run to run and
        // every field but the cfg_jit provenance stamp matches across HIPEC_JIT=0/1.
        json.Str("bench", "replay")
            .Str("policy", entry.name)
            .Str("trace", workload.name)
            .Int("records", r.accesses)
            .Int("faults", r.faults)
            .Num("hit_ratio", r.hit_ratio, 4)
            .Int("virtual_fault_ns", r.virtual_ns)
            .Int("kills", r.kills)
            .Int("rejects", r.rejects);
        json.Emit();
      }
    }
  }
  bench::Rule();
  bench::Note("Expected shape: awrp/perceptron win looping and hot_cold (score words keep");
  bench::Note("the stable set resident); lru/clock win zipf; 2q wins scan_mix; mru wins");
  bench::Note("looping among the classics; nobody wins uniform. No row dominates — the");
  bench::Note("case for application-chosen policies, now with a learned entry in the zoo.");
  return 0;
}
