#!/usr/bin/env python3
"""Perf smoke gate: compare bench JSON output against bench/baseline.json.

Usage:
    check_perf_regression.py --baseline bench/baseline.json \
        --input faultpath.out [--input interpreter.out] [--factor 0.75]
    check_perf_regression.py --baseline bench/baseline.json --report report.json

The benches emit one JSON object per line after their human-readable tables; everything
that does not parse as a JSON object is ignored, so raw bench stdout can be fed in
directly. Alternatively (or additionally), --report accepts machine-readable reports
produced by `hipec-report --json`, whose top-level "metrics" object uses the same
flattened names as extract_metrics below; both sources merge into one metric set.

Gate rules (a metric missing from either side is skipped, never a failure — so feeding a
bench that baseline.json knows nothing about, or a baseline entry for a bench that was not
run, only narrows the comparison):
  * faultpath normalized production throughput per policy: faults_per_sec divided by the
    run's own calibration score, so the comparison tolerates machines of different speeds.
    Fails when current < factor * baseline.
  * faultpath speedup_vs_pre_pr per policy and the geomean: same-run relative numbers,
    immune to machine speed. Fails when current < factor * baseline.
  * interpreter ir_speedup: same-run relative. Fails when current < factor * baseline.
  * scenario metrics (bench_scenario): recorded as scenario.<name>.<metric>; compared only
    if a baseline entry exists.

Exit status 0 when every compared metric passes (including the degenerate case where
nothing overlapped the baseline), 1 on a regression or unreadable input.
"""

import argparse
import json
import sys


def parse_json_lines(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict):
                records.append(obj)
    return records


def extract_metrics(records):
    """Flattens bench records into {metric_name: value}."""
    metrics = {}
    for rec in records:
        bench = rec.get("bench")
        if bench == "faultpath" and rec.get("config") == "production":
            policy = rec["policy"]
            if "normalized_score" in rec:
                metrics[f"faultpath.normalized.{policy}"] = rec["normalized_score"]
        elif bench == "faultpath" and rec.get("metric") == "speedup_vs_pre_pr":
            metrics[f"faultpath.speedup_vs_pre_pr.{rec['policy']}"] = rec["value"]
        elif bench == "faultpath" and rec.get("metric") == "geomean_speedup_vs_pre_pr":
            metrics["faultpath.geomean_speedup_vs_pre_pr"] = rec["value"]
        elif bench == "executor_arith_loop" and rec.get("metric") == "ir_speedup":
            metrics["interpreter.ir_speedup"] = rec["value"]
        elif bench == "scenario" and "metric" in rec:
            metrics[f"scenario.{rec['scenario']}.{rec['metric']}"] = rec["value"]
        elif bench == "parallel" and "metric" in rec:
            # Thread-scaling speedups and the M:N scheduler churn rate are only meaningful
            # on hosts with enough hardware threads; on a 1-core runner they measure the
            # host scheduler, not the kernel, so they are dropped here and the gate skips
            # them (missing metric = skipped).
            if (rec["metric"].startswith("speedup")
                    or rec["metric"].startswith("scheduler.")) \
                    and rec.get("hardware_threads", 0) < 8:
                continue
            metrics[f"parallel.{rec['metric']}"] = rec["value"]
        elif bench == "parallel" and "threads" in rec:
            # Absolute throughput is machine-dependent: informational (never baselined),
            # and it keeps the metric set non-empty when the speedups are dropped above.
            metrics[f"parallel.faults_per_sec.{rec['threads']}t"] = rec["faults_per_sec"]
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON file")
    parser.add_argument("--input", action="append", default=[],
                        help="bench stdout capture (repeatable)")
    parser.add_argument("--report", action="append", default=[],
                        help="hipec-report --json output (repeatable); its 'metrics' "
                             "object merges with metrics extracted from --input files")
    parser.add_argument("--factor", type=float, default=0.75,
                        help="fail when current < factor * baseline (default 0.75, "
                             "i.e. a >25%% regression)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    if not args.input and not args.report:
        print("check_perf_regression: need at least one --input or --report", file=sys.stderr)
        return 1

    records = []
    for path in args.input:
        records.extend(parse_json_lines(path))
    current = extract_metrics(records)
    for path in args.report:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
        metrics = report.get("metrics")
        if not isinstance(metrics, dict):
            print(f"check_perf_regression: {path} has no 'metrics' object "
                  "(expected hipec-report --json output)", file=sys.stderr)
            return 1
        for name, value in metrics.items():
            if isinstance(value, (int, float)):
                current[name] = value
    if not current:
        print("check_perf_regression: no bench JSON lines found in inputs", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    print(f"{'metric':<45} {'baseline':>12} {'current':>12} {'min ok':>12}  verdict")
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None or not isinstance(base, (int, float)):
            continue
        compared += 1
        floor = args.factor * base
        ok = cur >= floor
        failures += 0 if ok else 1
        print(f"{name:<45} {base:>12.4f} {cur:>12.4f} {floor:>12.4f}  "
              f"{'ok' if ok else 'REGRESSION'}")

    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<45} {'(no baseline)':>12} {current[name]:>12.4f}")

    if compared == 0:
        # Benches with no baseline entry are informational, not failures: a newly added
        # bench must be able to ride through the gate before a baseline is recorded for it.
        print("check_perf_regression: no metric overlapped the baseline; nothing to gate")
        return 0
    if failures:
        print(f"\ncheck_perf_regression: {failures}/{compared} metric(s) regressed "
              f"beyond the {1 - args.factor:.0%} allowance", file=sys.stderr)
        return 1
    print(f"\ncheck_perf_regression: all {compared} compared metric(s) within allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
