#!/usr/bin/env python3
"""Perf smoke gate: compare bench JSON output against bench/baseline.json.

Usage:
    check_perf_regression.py --baseline bench/baseline.json \
        --input faultpath.out [--input interpreter.out] [--factor 0.75]
    check_perf_regression.py --baseline bench/baseline.json --report report.json

The benches emit one JSON object per line after their human-readable tables; everything
that does not parse as a JSON object is ignored, so raw bench stdout can be fed in
directly. Alternatively (or additionally), --report accepts machine-readable reports
produced by `hipec-report --json`, whose top-level "metrics" object uses the same
flattened names as extract_metrics below; both sources merge into one metric set.

Gate rules (a metric missing from either side is never a failure — so feeding a bench
that baseline.json knows nothing about, or a baseline entry for a bench that was not run,
only narrows the comparison; metrics with no baseline entry are printed as informational
rows and summarized in a stderr warning so a silently-narrowed gate is visible):
  * faultpath normalized production throughput per policy: faults_per_sec divided by the
    run's own calibration score, so the comparison tolerates machines of different speeds.
    Fails when current < factor * baseline.
  * faultpath speedup_vs_pre_pr per policy and the geomean: same-run relative numbers,
    immune to machine speed. Fails when current < factor * baseline.
  * faultpath jit_speedup per policy and the geomean (policy-layer JIT vs the computed-goto
    IR loop): same-run relative. Skipped when the run reports available=0 (no JIT emitter
    on the host), compared against the baseline floors otherwise.
  * interpreter ir_speedup: same-run relative. Fails when current < factor * baseline.
  * scenario metrics (bench_scenario): recorded as scenario.<name>.<metric>; compared only
    if a baseline entry exists.
  * trace-replay metrics (bench_tournament --traces): recorded as
    replay.<field>.<policy>.<trace> from the deterministic virtual-machine facts
    (hit_ratio, faults, records, virtual_fault_ns); compared only if baselined.

Config provenance: every bench JSON line carries cfg_* fields (dispatch variant, JIT
default, probes compiled in/out, sanitizer — see bench/bench_util.h). The gate refuses to
run when the input records disagree with each other on any cfg_* value (two .out files
from different builds), or when a value contradicts the baseline's "_config" object (a
sanitizer or probes-compiled-out run being compared against release floors). Records
without cfg_* fields (hipec-report output, older captures) don't participate in the check.

Exit status 0 when every compared metric passes (including the degenerate case where
nothing overlapped the baseline), 1 on a regression, mismatched configuration, or
unreadable input.
"""

import argparse
import json
import sys


def parse_json_lines(path):
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(obj, dict):
                records.append(obj)
    return records


def extract_metrics(records):
    """Flattens bench records into {metric_name: value}."""
    metrics = {}
    for rec in records:
        bench = rec.get("bench")
        if bench == "faultpath" and rec.get("config") == "production":
            policy = rec["policy"]
            if "normalized_score" in rec:
                metrics[f"faultpath.normalized.{policy}"] = rec["normalized_score"]
        elif bench == "faultpath" and rec.get("config") == "jit":
            # Whole-fault throughput with the JIT dispatch layer. On hosts without an
            # emitter this measures the interpreter fallback, which is never slower than
            # production, so conservative floors hold either way.
            if "normalized_score" in rec:
                metrics[f"faultpath.jit.normalized.{rec['policy']}"] = rec["normalized_score"]
        elif bench == "faultpath" and rec.get("metric") == "speedup_vs_pre_pr":
            metrics[f"faultpath.speedup_vs_pre_pr.{rec['policy']}"] = rec["value"]
        elif bench == "faultpath" and rec.get("metric") == "geomean_speedup_vs_pre_pr":
            metrics["faultpath.geomean_speedup_vs_pre_pr"] = rec["value"]
        elif bench == "faultpath" and rec.get("metric") == "jit_policy_speedup":
            # available=0 means the host has no JIT emitter and the "jit" config measured
            # the interpreter fallback: the ratio is ~1.0 and meaningless, so it is dropped
            # here and the gate skips it (missing metric = skipped, per the rules above).
            if rec.get("available", 1):
                metrics[f"faultpath.jit_speedup.{rec['policy']}"] = rec["value"]
        elif bench == "faultpath" and rec.get("metric") == "jit_speedup":
            if rec.get("available", 1):
                metrics["faultpath.jit_speedup"] = rec["value"]
        elif bench == "executor_arith_loop" and rec.get("metric") == "ir_speedup":
            metrics["interpreter.ir_speedup"] = rec["value"]
        elif bench == "scenario" and "metric" in rec:
            metrics[f"scenario.{rec['scenario']}.{rec['metric']}"] = rec["value"]
        elif bench == "replay" and "trace" in rec:
            # Trace-replay cells (bench_tournament --traces): only the deterministic
            # virtual-machine facts — identical run to run and across JIT modes — so they
            # can be baselined exactly. Host timing (ns_per_fault) is excluded on purpose.
            suffix = f"{rec['policy']}.{rec['trace']}"
            metrics[f"replay.hit_ratio.{suffix}"] = rec["hit_ratio"]
            metrics[f"replay.faults.{suffix}"] = rec["faults"]
            metrics[f"replay.records.{suffix}"] = rec["records"]
            metrics[f"replay.virtual_fault_ns.{suffix}"] = rec["virtual_fault_ns"]
        elif bench == "parallel" and "metric" in rec:
            # Thread-scaling speedups and the M:N scheduler churn rate are only meaningful
            # on hosts with enough hardware threads; on a 1-core runner they measure the
            # host scheduler, not the kernel, so they are dropped here and the gate skips
            # them (missing metric = skipped).
            if (rec["metric"].startswith("speedup")
                    or rec["metric"].startswith("scheduler.")) \
                    and rec.get("hardware_threads", 0) < 8:
                continue
            metrics[f"parallel.{rec['metric']}"] = rec["value"]
        elif bench == "parallel" and "threads" in rec:
            # Absolute throughput is machine-dependent: informational (never baselined),
            # and it keeps the metric set non-empty when the speedups are dropped above.
            metrics[f"parallel.faults_per_sec.{rec['threads']}t"] = rec["faults_per_sec"]
        elif bench == "server" and "metric" in rec:
            # bench_server's per-core service rate. Like the parallel speedups, a 1-core
            # runner time-slices the daemon's drain pool against its own forked clients and
            # measures the host scheduler, so the gated metric is dropped below 8 hardware
            # threads and the gate skips it (missing metric = skipped).
            if (rec["metric"] == "requests_per_sec_per_core"
                    and rec.get("hardware_threads", 0) < 8):
                continue
            metrics[f"server.{rec['metric']}"] = rec["value"]
        elif bench == "server" and "clients" in rec and "requests_per_sec" in rec:
            # Informational per-phase throughput (never baselined): keeps the metric set
            # non-empty on small hosts where the per-core metric is dropped above.
            metrics[f"server.requests_per_sec.{rec['clients']}c"] = rec["requests_per_sec"]
    return metrics


def check_config(records, baseline):
    """Refuses mismatched configurations. Returns an error string, or None when coherent.

    Two checks: every record that carries cfg_* provenance must agree with every other
    record (mixing .out files from different builds/environments), and must agree with the
    baseline's optional "_config" object (comparing a sanitizer or probes-stripped run
    against floors recorded on a release build). Records without cfg_* fields are exempt —
    they predate the provenance stamp or came through hipec-report.
    """
    seen = {}  # cfg key -> (value, first record's bench name)
    for rec in records:
        for key, value in rec.items():
            if not key.startswith("cfg_"):
                continue
            if key in seen and seen[key][0] != value:
                return (f"inputs disagree on {key}: {seen[key][0]!r} (from bench "
                        f"{seen[key][1]!r}) vs {value!r} (from bench {rec.get('bench')!r}) "
                        "— these runs came from different build configurations")
            seen.setdefault(key, (value, rec.get("bench")))
    expected = baseline.get("_config")
    if isinstance(expected, dict):
        for key, want in expected.items():
            if key in seen and seen[key][0] != want:
                return (f"run config {key}={seen[key][0]!r} does not match the baseline's "
                        f"_config expectation {want!r} — these floors were recorded under "
                        "a different configuration")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, help="checked-in baseline JSON file")
    parser.add_argument("--input", action="append", default=[],
                        help="bench stdout capture (repeatable)")
    parser.add_argument("--report", action="append", default=[],
                        help="hipec-report --json output (repeatable); its 'metrics' "
                             "object merges with metrics extracted from --input files")
    parser.add_argument("--factor", type=float, default=0.75,
                        help="fail when current < factor * baseline (default 0.75, "
                             "i.e. a >25%% regression)")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    if not args.input and not args.report:
        print("check_perf_regression: need at least one --input or --report", file=sys.stderr)
        return 1

    # Input problems accumulate instead of short-circuiting: one run reports every bad
    # report file and any config mismatch together, so a broken CI capture is diagnosed
    # in a single pass rather than one re-run per problem.
    errors = []
    records = []
    for path in args.input:
        records.extend(parse_json_lines(path))
    config_error = check_config(records, baseline)
    if config_error:
        errors.append(config_error)
    current = extract_metrics(records)
    for path in args.report:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
        metrics = report.get("metrics")
        if not isinstance(metrics, dict):
            errors.append(f"{path} has no 'metrics' object "
                          "(expected hipec-report --json output)")
            continue
        for name, value in metrics.items():
            if isinstance(value, (int, float)):
                current[name] = value
    if not current and not errors:
        errors.append("no bench JSON lines found in inputs")
    if errors:
        for message in errors:
            print(f"check_perf_regression: {message}", file=sys.stderr)
        return 1

    failures = 0
    compared = 0
    print(f"{'metric':<45} {'baseline':>12} {'current':>12} {'min ok':>12}  verdict")
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None or not isinstance(base, (int, float)):
            continue
        compared += 1
        floor = args.factor * base
        ok = cur >= floor
        failures += 0 if ok else 1
        print(f"{name:<45} {base:>12.4f} {cur:>12.4f} {floor:>12.4f}  "
              f"{'ok' if ok else 'REGRESSION'}")

    # Metrics the run produced but the baseline does not know: informational, never a
    # failure — but loudly flagged on stderr, so a metric that silently fell out of
    # baseline.json (a rename, a dropped recording step) is noticed instead of the gate
    # quietly narrowing.
    unbaselined = sorted(set(current) - set(baseline))
    for name in unbaselined:
        print(f"{name:<45} {'(no baseline)':>12} {current[name]:>12.4f}")
    if unbaselined:
        print(f"check_perf_regression: warning: {len(unbaselined)} metric(s) have no "
              "baseline entry and were not gated: " + ", ".join(unbaselined),
              file=sys.stderr)

    if compared == 0:
        # Benches with no baseline entry are informational, not failures: a newly added
        # bench must be able to ride through the gate before a baseline is recorded for it.
        print("check_perf_regression: no metric overlapped the baseline; nothing to gate")
        return 0
    if failures:
        print(f"\ncheck_perf_regression: {failures}/{compared} metric(s) regressed "
              f"beyond the {1 - args.factor:.0%} allowance", file=sys.stderr)
        return 1
    print(f"\ncheck_perf_regression: all {compared} compared metric(s) within allowance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
