// Ablation: the crossing mechanism (§5.1 / Table 4, end to end). The *same* FIFO replacement
// policy over the same private pool and the same cyclic workload, managed through:
//   * HiPEC in-kernel interpretation,
//   * kernel->user upcalls,
//   * IPC to an external pager,
//   * PREMO-style syscalls over the shared pool.
// Only the per-decision mechanism differs, so the elapsed-time spread is pure crossing cost
// (plus, for PREMO, shared-pool interference).
#include <cstdio>
#include <functional>

#include "baseline/user_level_pager.h"
#include "bench_util.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/stats.h"

namespace {

using namespace hipec;  // NOLINT: bench driver
using mach::kPageSize;

constexpr uint64_t kRegionPages = 1024;
constexpr size_t kPoolFrames = 512;
constexpr int kSweeps = 4;

mach::KernelParams Machine() {
  mach::KernelParams params;
  params.total_frames = 4096;
  params.kernel_reserved_frames = 512;
  params.hipec_build = true;
  return params;
}

struct Outcome {
  sim::Nanos elapsed;
  int64_t faults;
};

// A competing non-specific application, interleaved with the managed application's sweeps.
// Its working set keeps the global pool under pressure, which the private-pool mechanisms
// shrug off and PREMO's shared pool cannot.
constexpr uint64_t kHogPages = 2800;

// Runs interleaved app/hog sweeps; returns the elapsed virtual time of the *app's* sweeps
// only, plus its fault count from `fault_counter`.
template <typename TouchApp>
Outcome RunInterleaved(mach::Kernel& kernel, mach::Task* hog, uint64_t hog_addr,
                       TouchApp&& touch_app, const std::function<int64_t()>& fault_counter) {
  sim::Nanos app_elapsed = 0;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    sim::Nanos start = kernel.clock().now();
    for (uint64_t p = 0; p < kRegionPages; ++p) {
      touch_app(p);
    }
    app_elapsed += kernel.clock().now() - start;
    kernel.TouchRange(hog, hog_addr, kHogPages * kPageSize, false);
  }
  return {app_elapsed, fault_counter()};
}

Outcome RunHipec() {
  mach::Kernel kernel(Machine());
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  core::HipecOptions options;
  options.min_frames = kPoolFrames;
  core::HipecRegion region = engine.VmAllocateHipec(
      task, kRegionPages * kPageSize, policies::FifoPolicy(policies::CommandStyle::kSimple),
      options);
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, kHogPages * kPageSize);
  return RunInterleaved(
      kernel, hog, hog_addr,
      [&](uint64_t p) { kernel.Touch(task, region.addr + p * kPageSize, false); },
      [&] { return engine.counters().Get("engine.faults_handled"); });
}

Outcome RunBaseline(baseline::Mechanism mechanism) {
  mach::Kernel kernel(Machine());
  baseline::PagerConfig config;
  config.mechanism = mechanism;
  config.policy = policies::OraclePolicy::kFifo;
  baseline::UserLevelPager pager(&kernel, config);
  mach::Task* task = kernel.CreateTask("app");
  uint64_t addr = pager.CreateRegion(task, kRegionPages * kPageSize, kPoolFrames);
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, kHogPages * kPageSize);
  return RunInterleaved(
      kernel, hog, hog_addr,
      [&](uint64_t p) { kernel.Touch(task, addr + p * kPageSize, false); },
      [&] { return pager.counters().Get("pager.faults"); });
}

void Row(const char* label, const Outcome& outcome, const Outcome& reference) {
  std::printf("%-34s %14s %10lld %10.2fx\n", label,
              sim::FormatNanos(outcome.elapsed).c_str(),
              static_cast<long long>(outcome.faults),
              static_cast<double>(outcome.elapsed) / static_cast<double>(reference.elapsed));
}

}  // namespace

int main() {
  bench::Title("Ablation — crossing mechanism, identical FIFO policy end to end");
  bench::Note("1024-page region, 512-frame pool, 4 cyclic sweeps interleaved with a 2800-page");
  bench::Note("non-specific hog. Elapsed counts the app's sweeps only.");
  bench::Rule();
  std::printf("%-34s %14s %10s %10s\n", "mechanism", "elapsed", "faults", "vs HiPEC");
  bench::Rule();
  Outcome hipec = RunHipec();
  Row("HiPEC (in-kernel interpretation)", hipec, hipec);
  Row("upcall", RunBaseline(baseline::Mechanism::kUpcall), hipec);
  Row("IPC external pager", RunBaseline(baseline::Mechanism::kIpc), hipec);
  Row("PREMO syscalls (shared pool)", RunBaseline(baseline::Mechanism::kPremoSyscall), hipec);
  bench::Rule();
  bench::Note("Expected shape: HiPEC < upcall < IPC; PREMO pays syscalls *and* shared-pool");
  bench::Note("interference.");
  return 0;
}
