#!/usr/bin/env python3
"""Offline markdown link checker for the repo's docs.

Walks every *.md file under the repository root (plus docs/), extracts inline links
[text](target) and reference definitions [id]: target, and verifies:

  * relative file targets exist (resolved against the file's directory),
  * #anchor fragments match a heading in the target file (GitHub slug rules:
    lowercase, spaces -> dashes, punctuation stripped),
  * bare #anchors resolve within the same file.

External links (http/https/mailto) are deliberately NOT fetched — CI must pass with no
network — but their syntax is still validated. Exit 1 with one line per broken link.

Usage: check_md_links.py [root]   (default: the repo root containing this script)
"""

import os
import re
import sys

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading):
    """The anchor GitHub generates for a heading."""
    slug = heading.strip().lower()
    slug = re.sub(r"[`*_~]", "", slug)            # strip inline formatting markers
    slug = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", slug)  # links render as their text
    slug = re.sub(r"[^\w\- ]", "", slug)           # drop punctuation
    slug = slug.replace(" ", "-")
    return slug


def anchors_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as fh:
                text = CODE_FENCE.sub("", fh.read())
        except OSError:
            cache[path] = set()
            return cache[path]
        seen = {}
        anchors = set()
        for match in HEADING.finditer(text):
            slug = github_slug(match.group(1))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = anchors
    return cache[path]


def check_file(md_path, root):
    problems = []
    with open(md_path, encoding="utf-8") as fh:
        text = fh.read()
    text = CODE_FENCE.sub("", text)

    targets = []
    for regex in (INLINE_LINK, IMAGE_LINK, REF_DEF):
        targets.extend(m.group(1) for m in regex.finditer(text))

    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            anchor = target[1:]
            if anchor and anchor not in anchors_of(md_path):
                problems.append(f"{os.path.relpath(md_path, root)}: broken anchor '{target}'")
            continue
        path_part, _, fragment = target.partition("#")
        resolved = os.path.normpath(os.path.join(os.path.dirname(md_path), path_part))
        if not os.path.exists(resolved):
            problems.append(f"{os.path.relpath(md_path, root)}: missing file '{target}'")
            continue
        if fragment and resolved.endswith(".md") and fragment not in anchors_of(resolved):
            problems.append(
                f"{os.path.relpath(md_path, root)}: anchor '#{fragment}' not found in "
                f"'{path_part}'")
    return problems


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    md_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames
                       if d not in {".git", "build", "third_party"} and not d.startswith("build")]
        md_files.extend(os.path.join(dirpath, f) for f in filenames if f.endswith(".md"))

    problems = []
    for md in sorted(md_files):
        problems.extend(check_file(md, root))

    for line in problems:
        print(line, file=sys.stderr)
    print(f"check_md_links: {len(md_files)} file(s), {len(problems)} broken link(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
