// hipec-report: turns bench/scenario JSON-line output into a human summary table and a
// machine-readable report (see src/obs/report.h for both formats).
//
//   hipec-report [files...]            summary table to stdout (no files: read stdin)
//   hipec-report --json [files...]     machine report JSON to stdout
//   hipec-report --out PATH ...        write the chosen rendering to PATH instead
//   hipec-report --strict ...          exit 2 when the report carries warnings
//                                      (e.g. nonzero trace_dropped in any scenario)
//   hipec-report --selfcheck [files]   run the embedded parser/builder validation; with
//                                      files, additionally require each to yield at least
//                                      one recognized bench record. Exit 0/1. CI runs this
//                                      against the perf-smoke bench output.
//
// The machine report's "metrics" map uses check_perf_regression.py's flattened names, so
//   hipec-report --json bench_scenario.out > report.json
//   check_perf_regression.py --baseline bench/baseline.json --report report.json
// gates on exactly the numbers the report shows.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/report.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--out PATH] [--strict] [--selfcheck] [files...]\n",
               argv0);
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool strict = false;
  bool selfcheck = false;
  std::string out_path;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--strict") {
      strict = true;
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (arg == "--out") {
      if (++i >= argc) {
        return Usage(argv[0]);
      }
      out_path = argv[i];
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "hipec-report: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  if (selfcheck) {
    std::string diagnostics;
    if (!hipec::obs::SelfCheck(&diagnostics)) {
      std::fprintf(stderr, "hipec-report: SELFCHECK FAILED: %s\n", diagnostics.c_str());
      return 1;
    }
    std::printf("hipec-report: embedded selfcheck ok\n");
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "hipec-report: cannot open %s\n", path.c_str());
        return 1;
      }
      std::vector<hipec::obs::JsonValue> records;
      size_t ignored = 0;
      std::vector<hipec::obs::ReportWarning> parse_warnings;
      hipec::obs::ParseJsonLines(in, &records, &ignored, &parse_warnings);
      hipec::obs::Report report = hipec::obs::BuildReport(records);
      if (!parse_warnings.empty()) {
        std::fprintf(stderr, "hipec-report: %s: %zu unparseable JSON line(s): %s\n",
                     path.c_str(), parse_warnings.size(),
                     parse_warnings[0].message.c_str());
        return 1;
      }
      if (report.metrics.empty() && report.scenarios.empty()) {
        std::fprintf(stderr, "hipec-report: %s: no recognized bench records — report "
                             "parsing and bench output have drifted apart\n",
                     path.c_str());
        return 1;
      }
      std::printf("hipec-report: %s ok (%zu record(s), %zu metric(s), %zu warning(s))\n",
                  path.c_str(), records.size(), report.metrics.size(),
                  report.warnings.size());
    }
    return 0;
  }

  std::vector<hipec::obs::JsonValue> records;
  size_t ignored = 0;
  std::vector<hipec::obs::ReportWarning> parse_warnings;
  if (files.empty()) {
    hipec::obs::ParseJsonLines(std::cin, &records, &ignored, &parse_warnings);
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "hipec-report: cannot open %s\n", path.c_str());
        return 1;
      }
      hipec::obs::ParseJsonLines(in, &records, &ignored, &parse_warnings);
    }
  }

  hipec::obs::Report report = hipec::obs::BuildReport(records);
  report.ignored_lines = ignored;
  report.warnings.insert(report.warnings.end(), parse_warnings.begin(),
                         parse_warnings.end());

  std::string rendered = json ? hipec::obs::RenderReportJson(report) + "\n"
                              : hipec::obs::RenderReportTable(report);
  if (out_path.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "hipec-report: cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    out << rendered;
  }

  // Warnings always reach stderr too, so they are visible even when stdout is redirected
  // into a report file.
  for (const hipec::obs::ReportWarning& w : report.warnings) {
    std::fprintf(stderr, "hipec-report: WARNING [%s] %s\n", w.source.c_str(),
                 w.message.c_str());
  }
  if (strict && !report.warnings.empty()) {
    return 2;
  }
  return 0;
}
