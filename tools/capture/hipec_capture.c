/*
 * hipec-capture: LD_PRELOAD interposition shim that records the page-level I/O of a real,
 * unmodified program into a raw capture stream, later converted to a .hpt trace by
 * tools/hipec-trace convert.
 *
 * Usage:
 *   HIPEC_CAPTURE_OUT=/tmp/run.raw LD_PRELOAD=$BUILD/tools/libhipec_capture.so g++ -c foo.cc
 *
 * What it records: every open/read/write/pread/pwrite/mmap (POSIX) and fopen/fread/fwrite
 * (stdio) is reduced to fixed 24-byte records {file_id, op, page, mono_ns}, one per 4 KiB
 * page the operation spans. The capture output itself is opened O_APPEND, so child
 * processes that inherit LD_PRELOAD (g++ spawning cc1plus and as) append to the same
 * stream without coordination; file ids are FNV-1a hashes of the path, so the same file
 * gets the same id in every process.
 *
 * What it deliberately does not do: follow page-cache hits vs misses (that's the replay
 * engine's job), capture mmap'ed *accesses* (a SIGSEGV-tracker is out of scope — an mmap
 * is recorded as a read of its first page so the mapping at least appears in the stream),
 * or try to be complete for io_uring/AIO. It is a workload sketcher, not an auditor.
 */
#define _GNU_SOURCE
#include <dlfcn.h>
#include <fcntl.h>
#include <pthread.h>
#include <stdarg.h>
#include <stdint.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <time.h>
#include <unistd.h>

#define CAP_PAGE_SIZE 4096ULL
#define CAP_MAX_FDS 4096
#define CAP_MAX_PAGES_PER_OP 64 /* bound record volume for huge reads */

typedef struct {
  uint32_t file_id;
  uint8_t op; /* 0 = read, 1 = write */
  uint8_t pad[3];
  uint64_t page;
  uint64_t ns;
} cap_record;

/* ---- real libc entry points ---------------------------------------------------------- */

static int (*real_open)(const char *, int, ...);
static int (*real_open64)(const char *, int, ...);
static int (*real_openat)(int, const char *, int, ...);
static int (*real_close)(int);
static ssize_t (*real_read)(int, void *, size_t);
static ssize_t (*real_write)(int, const void *, size_t);
static ssize_t (*real_pread)(int, void *, size_t, off_t);
static ssize_t (*real_pwrite)(int, const void *, size_t, off_t);
static off_t (*real_lseek)(int, off_t, int);
static void *(*real_mmap)(void *, size_t, int, int, int, off_t);
static FILE *(*real_fopen)(const char *, const char *);
static FILE *(*real_fopen64)(const char *, const char *);

static pthread_mutex_t cap_mu = PTHREAD_MUTEX_INITIALIZER;
static int cap_out_fd = -1; /* -1: unresolved, -2: disabled */

/* Per-fd state. Indexed by fd; fds >= CAP_MAX_FDS are ignored. */
static struct {
  uint32_t file_id; /* 0: untracked */
  uint64_t offset;
} cap_fds[CAP_MAX_FDS];

static void cap_resolve(void) {
  if (real_open != NULL) {
    return;
  }
  real_open = dlsym(RTLD_NEXT, "open");
  real_open64 = dlsym(RTLD_NEXT, "open64");
  real_openat = dlsym(RTLD_NEXT, "openat");
  real_close = dlsym(RTLD_NEXT, "close");
  real_read = dlsym(RTLD_NEXT, "read");
  real_write = dlsym(RTLD_NEXT, "write");
  real_pread = dlsym(RTLD_NEXT, "pread");
  real_pwrite = dlsym(RTLD_NEXT, "pwrite");
  real_lseek = dlsym(RTLD_NEXT, "lseek");
  real_mmap = dlsym(RTLD_NEXT, "mmap");
  real_fopen = dlsym(RTLD_NEXT, "fopen");
  real_fopen64 = dlsym(RTLD_NEXT, "fopen64");
}

static uint32_t cap_hash_path(const char *path) {
  /* FNV-1a, folded to 32 bits; id 0 is reserved for "untracked". */
  uint64_t h = 1469598103934665603ULL;
  for (const unsigned char *p = (const unsigned char *)path; *p != 0; ++p) {
    h ^= *p;
    h *= 1099511628211ULL;
  }
  uint32_t id = (uint32_t)(h ^ (h >> 32));
  return id == 0 ? 1 : id;
}

static int cap_interesting(const char *path) {
  /* Skip the pseudo filesystems and the terminal: they are chatter, not workload. */
  if (path == NULL) {
    return 0;
  }
  if (strncmp(path, "/proc/", 6) == 0 || strncmp(path, "/sys/", 5) == 0 ||
      strncmp(path, "/dev/", 5) == 0) {
    return 0;
  }
  const char *out = getenv("HIPEC_CAPTURE_OUT");
  if (out != NULL && strcmp(path, out) == 0) {
    return 0; /* never trace our own output */
  }
  return 1;
}

static uint64_t cap_now_ns(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (uint64_t)ts.tv_sec * 1000000000ULL + (uint64_t)ts.tv_nsec;
}

static void cap_emit(uint32_t file_id, int is_write, uint64_t offset, uint64_t len) {
  if (file_id == 0 || len == 0) {
    return;
  }
  pthread_mutex_lock(&cap_mu);
  if (cap_out_fd == -1) {
    const char *out = getenv("HIPEC_CAPTURE_OUT");
    if (out == NULL || out[0] == 0) {
      cap_out_fd = -2;
    } else {
      cap_out_fd = real_open(out, O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (cap_out_fd < 0) {
        cap_out_fd = -2;
      }
    }
  }
  if (cap_out_fd < 0) {
    pthread_mutex_unlock(&cap_mu);
    return;
  }
  cap_record recs[CAP_MAX_PAGES_PER_OP];
  uint64_t first = offset / CAP_PAGE_SIZE;
  uint64_t last = (offset + len - 1) / CAP_PAGE_SIZE;
  uint64_t n = last - first + 1;
  if (n > CAP_MAX_PAGES_PER_OP) {
    n = CAP_MAX_PAGES_PER_OP;
  }
  uint64_t ns = cap_now_ns();
  for (uint64_t i = 0; i < n; ++i) {
    memset(&recs[i], 0, sizeof(recs[i]));
    recs[i].file_id = file_id;
    recs[i].op = is_write ? 1 : 0;
    recs[i].page = first + i;
    recs[i].ns = ns;
  }
  /* One O_APPEND write per op: atomic enough that concurrent children interleave at
   * record granularity in practice (each op is <= 1536 bytes, far below PIPE_BUF-ish
   * append atomicity on regular files for this use). */
  ssize_t ignored = real_write(cap_out_fd, recs, (size_t)(n * sizeof(cap_record)));
  (void)ignored;
  pthread_mutex_unlock(&cap_mu);
}

static void cap_track(int fd, const char *path) {
  if (fd < 0 || fd >= CAP_MAX_FDS || !cap_interesting(path)) {
    return;
  }
  pthread_mutex_lock(&cap_mu);
  cap_fds[fd].file_id = cap_hash_path(path);
  cap_fds[fd].offset = 0;
  pthread_mutex_unlock(&cap_mu);
}

/* ---- POSIX wrappers ------------------------------------------------------------------ */

int open(const char *path, int flags, ...) {
  cap_resolve();
  mode_t mode = 0;
  if (flags & O_CREAT) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  int fd = real_open(path, flags, mode);
  cap_track(fd, path);
  return fd;
}

int open64(const char *path, int flags, ...) {
  cap_resolve();
  mode_t mode = 0;
  if (flags & O_CREAT) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  int fd = real_open64 != NULL ? real_open64(path, flags, mode)
                               : real_open(path, flags, mode);
  cap_track(fd, path);
  return fd;
}

int openat(int dirfd, const char *path, int flags, ...) {
  cap_resolve();
  mode_t mode = 0;
  if (flags & O_CREAT) {
    va_list ap;
    va_start(ap, flags);
    mode = va_arg(ap, mode_t);
    va_end(ap);
  }
  int fd = real_openat(dirfd, path, flags, mode);
  /* Only absolute paths (or AT_FDCWD-relative) hash stably across processes. */
  if (dirfd == AT_FDCWD || path[0] == '/') {
    cap_track(fd, path);
  }
  return fd;
}

int close(int fd) {
  cap_resolve();
  if (fd >= 0 && fd < CAP_MAX_FDS) {
    pthread_mutex_lock(&cap_mu);
    cap_fds[fd].file_id = 0;
    pthread_mutex_unlock(&cap_mu);
  }
  return real_close(fd);
}

ssize_t read(int fd, void *buf, size_t count) {
  cap_resolve();
  ssize_t n = real_read(fd, buf, count);
  if (n > 0 && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    cap_emit(cap_fds[fd].file_id, 0, cap_fds[fd].offset, (uint64_t)n);
    cap_fds[fd].offset += (uint64_t)n;
  }
  return n;
}

ssize_t write(int fd, const void *buf, size_t count) {
  cap_resolve();
  ssize_t n = real_write(fd, buf, count);
  if (n > 0 && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    cap_emit(cap_fds[fd].file_id, 1, cap_fds[fd].offset, (uint64_t)n);
    cap_fds[fd].offset += (uint64_t)n;
  }
  return n;
}

ssize_t pread(int fd, void *buf, size_t count, off_t offset) {
  cap_resolve();
  ssize_t n = real_pread(fd, buf, count, offset);
  if (n > 0 && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    cap_emit(cap_fds[fd].file_id, 0, (uint64_t)offset, (uint64_t)n);
  }
  return n;
}

ssize_t pwrite(int fd, const void *buf, size_t count, off_t offset) {
  cap_resolve();
  ssize_t n = real_pwrite(fd, buf, count, offset);
  if (n > 0 && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    cap_emit(cap_fds[fd].file_id, 1, (uint64_t)offset, (uint64_t)n);
  }
  return n;
}

off_t lseek(int fd, off_t offset, int whence) {
  cap_resolve();
  off_t pos = real_lseek(fd, offset, whence);
  if (pos >= 0 && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    cap_fds[fd].offset = (uint64_t)pos;
  }
  return pos;
}

void *mmap(void *addr, size_t length, int prot, int flags, int fd, off_t offset) {
  cap_resolve();
  void *p = real_mmap(addr, length, prot, flags, fd, offset);
  if (p != MAP_FAILED && fd >= 0 && fd < CAP_MAX_FDS && cap_fds[fd].file_id != 0) {
    /* The mapping's first page stands in for accesses we cannot see. */
    cap_emit(cap_fds[fd].file_id, (prot & PROT_WRITE) != 0, (uint64_t)offset,
             CAP_PAGE_SIZE);
  }
  return p;
}

/* ---- stdio wrappers ------------------------------------------------------------------
 * glibc's fread/fwrite drive the underlying file with internal calls that bypass the PLT,
 * so interposing read()/write() does not see them. Interposing fopen and marking the
 * FILE's fd is enough: fileno() gives us the descriptor, and the actual I/O lands in the
 * records via the stream's own buffered refills... which we cannot see either. So fopen
 * emits a single page-0 read (the open itself touches the file head), and programs whose
 * I/O matters for capture should use POSIX I/O (the canned workload programs in
 * tools/workloads do). Compiler captures still work because cc1plus reads sources and
 * headers via open+read. */

FILE *fopen(const char *path, const char *mode) {
  cap_resolve();
  FILE *f = real_fopen(path, mode);
  if (f != NULL && cap_interesting(path)) {
    cap_track(fileno(f), path);
    cap_emit(cap_hash_path(path), mode != NULL && mode[0] != 'r', 0, 1);
  }
  return f;
}

FILE *fopen64(const char *path, const char *mode) {
  cap_resolve();
  FILE *f = real_fopen64 != NULL ? real_fopen64(path, mode) : real_fopen(path, mode);
  if (f != NULL && cap_interesting(path)) {
    cap_track(fileno(f), path);
    cap_emit(cap_hash_path(path), mode != NULL && mode[0] != 'r', 0, 1);
  }
  return f;
}
