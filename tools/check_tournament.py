#!/usr/bin/env python3
"""Tournament gate: validate bench_tournament's leaderboard and enforce the policy floors.

Usage:
    check_tournament.py tournament.out [--min-policies 5] [--min-workloads 5]
                        [--require-traces N]

The input is bench_tournament's raw stdout (human table plus one JSON object per line);
anything that does not parse as a JSON object with bench == "tournament" or
bench == "replay" is ignored.

Checks, all reported in one pass (no stop-at-first):
  * schema — every leaderboard record carries policy, workload, accesses, faults,
    hit_ratio, ns_per_fault, kills, rejects with sane ranges (0 <= hit_ratio <= 1,
    faults <= accesses, non-negative counts); every replay record carries policy, trace,
    records, faults, hit_ratio, virtual_fault_ns, kills, rejects under the same ranges;
  * coverage — at least --min-policies policies and --min-workloads workloads, and the
    grid is complete (every policy ran every workload, synthetic and trace-backed alike);
  * health — no cell was killed by the security checker or rejected at registration;
  * consistency — a trace's replay record and its tournament cell describe the same run
    (equal faults and record counts), and "source" tags match the replay rows;
  * floors — the score-based policies must beat FIFO where score-based eviction is the
    point: awrp and perceptron each need a strictly higher hit ratio than fifo on the
    hot_cold and looping workloads;
  * traces — with --require-traces N: at least N distinct replayed traces, a full
    policy x trace replay grid, and at least one learned policy (awrp or perceptron)
    strictly beating fifo's hit ratio on at least one real trace.

Exit status 0 when everything holds, 1 otherwise (every violation is listed).
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("policy", "workload", "accesses", "faults", "hit_ratio",
                   "ns_per_fault", "kills", "rejects")
REPLAY_REQUIRED_FIELDS = ("policy", "trace", "records", "faults", "hit_ratio",
                          "virtual_fault_ns", "kills", "rejects")
FLOOR_POLICIES = ("awrp", "perceptron")
FLOOR_WORKLOADS = ("hot_cold", "looping")
BASELINE_POLICY = "fifo"


def parse_leaderboard(path):
    cells = {}
    replays = {}
    errors = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(rec, dict):
                continue
            bench = rec.get("bench")
            if bench == "tournament":
                missing = [f for f in REQUIRED_FIELDS if f not in rec]
                if missing:
                    errors.append(f"line {lineno}: missing field(s) {', '.join(missing)}")
                    continue
                key = (rec["policy"], rec["workload"])
                if key in cells:
                    errors.append(f"line {lineno}: duplicate cell {key[0]}/{key[1]}")
                    continue
                cells[key] = rec
            elif bench == "replay":
                missing = [f for f in REPLAY_REQUIRED_FIELDS if f not in rec]
                if missing:
                    errors.append(
                        f"line {lineno}: replay missing field(s) {', '.join(missing)}")
                    continue
                key = (rec["policy"], rec["trace"])
                if key in replays:
                    errors.append(f"line {lineno}: duplicate replay {key[0]}/{key[1]}")
                    continue
                replays[key] = rec
    return cells, replays, errors


def check_cell(rec):
    policy, workload = rec["policy"], rec["workload"]
    where = f"{policy}/{workload}"
    errors = []
    if not 0.0 <= rec["hit_ratio"] <= 1.0:
        errors.append(f"{where}: hit_ratio {rec['hit_ratio']} outside [0, 1]")
    if rec["accesses"] <= 0:
        errors.append(f"{where}: non-positive accesses {rec['accesses']}")
    if rec["faults"] < 0 or rec["faults"] > rec["accesses"]:
        errors.append(f"{where}: faults {rec['faults']} outside [0, accesses]")
    if rec["ns_per_fault"] < 0:
        errors.append(f"{where}: negative ns_per_fault {rec['ns_per_fault']}")
    if rec.get("source") not in (None, "trace", "synthetic"):
        errors.append(f"{where}: unknown source tag {rec['source']!r}")
    if rec["kills"] != 0:
        errors.append(f"{where}: policy was killed mid-run (kills={rec['kills']})")
    if rec["rejects"] != 0:
        errors.append(f"{where}: registration rejected (rejects={rec['rejects']})")
    return errors


def check_replay(rec):
    policy, trace = rec["policy"], rec["trace"]
    where = f"replay {policy}/{trace}"
    errors = []
    if not 0.0 <= rec["hit_ratio"] <= 1.0:
        errors.append(f"{where}: hit_ratio {rec['hit_ratio']} outside [0, 1]")
    if rec["records"] <= 0:
        errors.append(f"{where}: non-positive records {rec['records']}")
    if rec["faults"] < 0 or rec["faults"] > rec["records"]:
        errors.append(f"{where}: faults {rec['faults']} outside [0, records]")
    if rec["virtual_fault_ns"] < 0:
        errors.append(f"{where}: negative virtual_fault_ns {rec['virtual_fault_ns']}")
    if rec["kills"] != 0:
        errors.append(f"{where}: policy was killed mid-run (kills={rec['kills']})")
    if rec["rejects"] != 0:
        errors.append(f"{where}: registration rejected (rejects={rec['rejects']})")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("leaderboard", help="bench_tournament stdout capture")
    parser.add_argument("--min-policies", type=int, default=5)
    parser.add_argument("--min-workloads", type=int, default=5)
    parser.add_argument("--require-traces", type=int, default=0,
                        help="require at least N replayed real traces, a full "
                             "policy x trace grid, and a learned-policy win")
    args = parser.parse_args()

    cells, replays, errors = parse_leaderboard(args.leaderboard)
    policies = sorted({p for p, _ in cells})
    workloads = sorted({w for _, w in cells})
    traces = sorted({t for _, t in replays})

    if not cells:
        errors.append("no tournament records found in the input")
    if len(policies) < args.min_policies:
        errors.append(f"only {len(policies)} policies ({', '.join(policies)}); "
                      f"need at least {args.min_policies}")
    if len(workloads) < args.min_workloads:
        errors.append(f"only {len(workloads)} workloads ({', '.join(workloads)}); "
                      f"need at least {args.min_workloads}")
    for policy in policies:
        for workload in workloads:
            if (policy, workload) not in cells:
                errors.append(f"incomplete grid: no cell for {policy}/{workload}")

    for rec in cells.values():
        errors.extend(check_cell(rec))
    for rec in replays.values():
        errors.extend(check_replay(rec))

    # Consistency: a replay row and its tournament cell describe the same run — the trace
    # appears in the grid under its trace name with source == "trace", and the
    # deterministic counts agree.
    for (policy, trace), rec in sorted(replays.items()):
        cell = cells.get((policy, trace))
        if cell is None:
            errors.append(f"replay {policy}/{trace} has no matching tournament cell")
            continue
        if cell.get("source") != "trace":
            errors.append(f"cell {policy}/{trace}: replayed but source is "
                          f"{cell.get('source')!r}, expected 'trace'")
        if cell["faults"] != rec["faults"] or cell["accesses"] != rec["records"]:
            errors.append(
                f"replay {policy}/{trace} disagrees with its tournament cell "
                f"(faults {rec['faults']} vs {cell['faults']}, "
                f"records {rec['records']} vs {cell['accesses']})")

    # The acceptance floors: score-based eviction must pay off where it is supposed to.
    for workload in FLOOR_WORKLOADS:
        base = cells.get((BASELINE_POLICY, workload))
        if base is None:
            errors.append(f"floor check impossible: no {BASELINE_POLICY}/{workload} cell")
            continue
        for policy in FLOOR_POLICIES:
            rec = cells.get((policy, workload))
            if rec is None:
                errors.append(f"floor check impossible: no {policy}/{workload} cell")
                continue
            if rec["hit_ratio"] <= base["hit_ratio"]:
                errors.append(
                    f"floor violated: {policy} hit_ratio {rec['hit_ratio']:.4f} does not "
                    f"beat {BASELINE_POLICY} {base['hit_ratio']:.4f} on {workload}")
            else:
                print(f"floor ok: {policy} {rec['hit_ratio']:.4f} > "
                      f"{BASELINE_POLICY} {base['hit_ratio']:.4f} on {workload}")

    # Trace requirements: real evidence must be present, fully replayed, and at least one
    # learned policy has to win somewhere on it.
    if args.require_traces > 0:
        if len(traces) < args.require_traces:
            errors.append(f"only {len(traces)} replayed trace(s) ({', '.join(traces)}); "
                          f"need at least {args.require_traces}")
        for policy in policies:
            for trace in traces:
                if (policy, trace) not in replays:
                    errors.append(f"incomplete replay grid: no {policy}/{trace} replay")
        learned_wins = []
        for trace in traces:
            base = replays.get((BASELINE_POLICY, trace))
            if base is None:
                continue
            for policy in FLOOR_POLICIES:
                rec = replays.get((policy, trace))
                if rec is not None and rec["hit_ratio"] > base["hit_ratio"]:
                    learned_wins.append(
                        f"{policy} {rec['hit_ratio']:.4f} > {BASELINE_POLICY} "
                        f"{base['hit_ratio']:.4f} on {trace}")
        if traces and not learned_wins:
            errors.append("no learned policy (" + ", ".join(FLOOR_POLICIES) +
                          f") beats {BASELINE_POLICY} on any replayed trace")
        for win in learned_wins:
            print(f"replay floor ok: {win}")

    print(f"check_tournament: {len(cells)} cells, {len(policies)} policies, "
          f"{len(workloads)} workloads, {len(traces)} replayed traces")
    if errors:
        for message in errors:
            print(f"check_tournament: {message}", file=sys.stderr)
        print(f"check_tournament: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_tournament: leaderboard complete, all floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
