#!/usr/bin/env python3
"""Tournament gate: validate bench_tournament's leaderboard and enforce the policy floors.

Usage:
    check_tournament.py tournament.out [--min-policies 5] [--min-workloads 5]

The input is bench_tournament's raw stdout (human table plus one JSON object per line);
anything that does not parse as a JSON object with bench == "tournament" is ignored.

Checks, all reported in one pass (no stop-at-first):
  * schema — every leaderboard record carries policy, workload, accesses, faults,
    hit_ratio, ns_per_fault, kills, rejects with sane ranges (0 <= hit_ratio <= 1,
    faults <= accesses, non-negative counts);
  * coverage — at least --min-policies policies and --min-workloads workloads, and the
    grid is complete (every policy ran every workload);
  * health — no cell was killed by the security checker or rejected at registration;
  * floors — the score-based policies must beat FIFO where score-based eviction is the
    point: awrp and perceptron each need a strictly higher hit ratio than fifo on the
    hot_cold and looping workloads.

Exit status 0 when everything holds, 1 otherwise (every violation is listed).
"""

import argparse
import json
import sys

REQUIRED_FIELDS = ("policy", "workload", "accesses", "faults", "hit_ratio",
                   "ns_per_fault", "kills", "rejects")
FLOOR_POLICIES = ("awrp", "perceptron")
FLOOR_WORKLOADS = ("hot_cold", "looping")
BASELINE_POLICY = "fifo"


def parse_leaderboard(path):
    cells = {}
    errors = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line.startswith("{"):
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(rec, dict) or rec.get("bench") != "tournament":
                continue
            missing = [f for f in REQUIRED_FIELDS if f not in rec]
            if missing:
                errors.append(f"line {lineno}: missing field(s) {', '.join(missing)}")
                continue
            key = (rec["policy"], rec["workload"])
            if key in cells:
                errors.append(f"line {lineno}: duplicate cell {key[0]}/{key[1]}")
                continue
            cells[key] = rec
    return cells, errors


def check_cell(rec):
    policy, workload = rec["policy"], rec["workload"]
    where = f"{policy}/{workload}"
    errors = []
    if not 0.0 <= rec["hit_ratio"] <= 1.0:
        errors.append(f"{where}: hit_ratio {rec['hit_ratio']} outside [0, 1]")
    if rec["accesses"] <= 0:
        errors.append(f"{where}: non-positive accesses {rec['accesses']}")
    if rec["faults"] < 0 or rec["faults"] > rec["accesses"]:
        errors.append(f"{where}: faults {rec['faults']} outside [0, accesses]")
    if rec["ns_per_fault"] < 0:
        errors.append(f"{where}: negative ns_per_fault {rec['ns_per_fault']}")
    if rec["kills"] != 0:
        errors.append(f"{where}: policy was killed mid-run (kills={rec['kills']})")
    if rec["rejects"] != 0:
        errors.append(f"{where}: registration rejected (rejects={rec['rejects']})")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("leaderboard", help="bench_tournament stdout capture")
    parser.add_argument("--min-policies", type=int, default=5)
    parser.add_argument("--min-workloads", type=int, default=5)
    args = parser.parse_args()

    cells, errors = parse_leaderboard(args.leaderboard)
    policies = sorted({p for p, _ in cells})
    workloads = sorted({w for _, w in cells})

    if not cells:
        errors.append("no tournament records found in the input")
    if len(policies) < args.min_policies:
        errors.append(f"only {len(policies)} policies ({', '.join(policies)}); "
                      f"need at least {args.min_policies}")
    if len(workloads) < args.min_workloads:
        errors.append(f"only {len(workloads)} workloads ({', '.join(workloads)}); "
                      f"need at least {args.min_workloads}")
    for policy in policies:
        for workload in workloads:
            if (policy, workload) not in cells:
                errors.append(f"incomplete grid: no cell for {policy}/{workload}")

    for rec in cells.values():
        errors.extend(check_cell(rec))

    # The acceptance floors: score-based eviction must pay off where it is supposed to.
    for workload in FLOOR_WORKLOADS:
        base = cells.get((BASELINE_POLICY, workload))
        if base is None:
            errors.append(f"floor check impossible: no {BASELINE_POLICY}/{workload} cell")
            continue
        for policy in FLOOR_POLICIES:
            rec = cells.get((policy, workload))
            if rec is None:
                errors.append(f"floor check impossible: no {policy}/{workload} cell")
                continue
            if rec["hit_ratio"] <= base["hit_ratio"]:
                errors.append(
                    f"floor violated: {policy} hit_ratio {rec['hit_ratio']:.4f} does not "
                    f"beat {BASELINE_POLICY} {base['hit_ratio']:.4f} on {workload}")
            else:
                print(f"floor ok: {policy} {rec['hit_ratio']:.4f} > "
                      f"{BASELINE_POLICY} {base['hit_ratio']:.4f} on {workload}")

    print(f"check_tournament: {len(cells)} cells, {len(policies)} policies, "
          f"{len(workloads)} workloads")
    if errors:
        for message in errors:
            print(f"check_tournament: {message}", file=sys.stderr)
        print(f"check_tournament: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_tournament: leaderboard complete, all floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
