// Prints the deterministic ScenarioResult::Fingerprint() of every canned scenario, one per
// line as `name<TAB>fingerprint`. Used to regenerate tests/golden_fingerprints.inc, which
// pins the virtual-clock execution mode bit-for-bit across refactors:
//
//   build/tools/hipec-fingerprints --inc > tests/golden_fingerprints.inc
#include <cstdio>
#include <cstring>
#include <string>

#include "scenario/canned.h"
#include "scenario/scenario.h"

int main(int argc, char** argv) {
  const bool as_inc = argc > 1 && std::strcmp(argv[1], "--inc") == 0;
  if (as_inc) {
    std::printf(
        "// Golden fingerprints of the canned scenarios under the deterministic virtual-clock\n"
        "// mode. Regenerate with: build/tools/hipec-fingerprints --inc\n"
        "// Any diff here means virtual-clock execution is no longer bit-for-bit reproducible\n"
        "// against the recorded baseline -- that is a finding, not a test to update casually.\n");
  }
  for (const auto& spec : hipec::scenario::AllCannedScenarios()) {
    hipec::scenario::ScenarioResult result = hipec::scenario::RunScenario(spec);
    if (as_inc) {
      std::printf("{\"%s\",\n \"%s\"},\n", result.name.c_str(), result.Fingerprint().c_str());
    } else {
      std::printf("%s\t%s\n", result.name.c_str(), result.Fingerprint().c_str());
    }
  }
  return 0;
}
