// hipec-trace: the .hpt trace toolbox.
//
//   hipec-trace convert RAW OUT.hpt --name NAME [--page-size N] [--max-records N]
//       Converts a raw hipec-capture stream (fixed 24-byte records appended by the
//       LD_PRELOAD shim, tools/capture/hipec_capture.c) into a canonical .hpt trace:
//       (file_id, page) pairs are remapped to a dense vpage space in first-touch order,
//       think time is derived from the captured monotonic timestamps (delta to the
//       previous record, clamped to 1 ms so a capture-side stall never dominates replay),
//       and the result is delta-encoded by workloads::EncodeTrace.
//
//   hipec-trace inspect FILE.hpt        header + decode status
//   hipec-trace stats FILE.hpt          record counts, r/w mix, unique pages, hottest pages
//   hipec-trace truncate IN.hpt N OUT.hpt   keep the first N records
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "workloads/trace_format.h"

namespace {

using hipec::workloads::Access;
using hipec::workloads::AccessOp;
using hipec::workloads::LoadTraceFile;
using hipec::workloads::TraceData;
using hipec::workloads::TraceStatus;
using hipec::workloads::TraceStatusName;
using hipec::workloads::WriteTraceFile;

// The raw record the capture shim appends; layout must match hipec_capture.c.
struct RawRecord {
  uint32_t file_id;
  uint8_t op;
  uint8_t pad[3];
  uint64_t page;
  uint64_t ns;
};
static_assert(sizeof(RawRecord) == 24, "raw capture record layout");

constexpr uint64_t kMaxThinkNs = 1000000;  // 1 ms: capture stalls don't dominate replay

int Usage() {
  std::fprintf(stderr,
               "usage: hipec-trace convert RAW OUT.hpt --name NAME [--page-size N] "
               "[--max-records N]\n"
               "       hipec-trace inspect FILE.hpt\n"
               "       hipec-trace stats FILE.hpt\n"
               "       hipec-trace truncate IN.hpt N OUT.hpt\n");
  return 2;
}

int Convert(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string raw_path = argv[0];
  std::string out_path = argv[1];
  std::string name;
  uint32_t page_size = 4096;
  uint64_t max_records = 1ull << 20;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      name = argv[++i];
    } else if (std::strcmp(argv[i], "--page-size") == 0 && i + 1 < argc) {
      page_size = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--max-records") == 0 && i + 1 < argc) {
      max_records = std::strtoull(argv[++i], nullptr, 10);
    } else {
      return Usage();
    }
  }
  std::FILE* f = std::fopen(raw_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "hipec-trace: cannot open %s\n", raw_path.c_str());
    return 1;
  }
  TraceData trace;
  trace.name = name.empty() ? out_path : name;
  trace.page_size = page_size;
  // Dense first-touch remap: the replayed region is exactly the set of distinct pages the
  // program touched, in discovery order — file boundaries disappear, access structure
  // (reuse distances, scan runs) survives.
  std::unordered_map<uint64_t, uint64_t> remap;
  RawRecord rec;
  uint64_t prev_ns = 0;
  uint64_t dropped_tail = 0;
  while (std::fread(&rec, sizeof(rec), 1, f) == 1) {
    if (trace.records.size() >= max_records) {
      ++dropped_tail;
      continue;
    }
    uint64_t key = (static_cast<uint64_t>(rec.file_id) << 32) ^ rec.page;
    auto [it, fresh] = remap.try_emplace(key, remap.size());
    Access a;
    a.vpage = it->second;
    a.op = rec.op != 0 ? AccessOp::kWrite : AccessOp::kRead;
    if (prev_ns != 0 && rec.ns > prev_ns) {
      a.think_ns = static_cast<uint32_t>(std::min(rec.ns - prev_ns, kMaxThinkNs));
    }
    prev_ns = rec.ns;
    trace.records.push_back(a);
  }
  std::fclose(f);
  trace.region_pages = remap.size();
  if (trace.records.empty()) {
    std::fprintf(stderr, "hipec-trace: %s holds no capture records\n", raw_path.c_str());
    return 1;
  }
  std::string error;
  if (!WriteTraceFile(out_path, trace, &error)) {
    std::fprintf(stderr, "hipec-trace: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: %zu records, %llu-page region (%llu capture records beyond cap dropped)\n",
              out_path.c_str(), trace.records.size(),
              static_cast<unsigned long long>(trace.region_pages),
              static_cast<unsigned long long>(dropped_tail));
  return 0;
}

int Inspect(const char* path) {
  TraceData trace;
  std::string error;
  TraceStatus status = LoadTraceFile(path, &trace, &error);
  if (status != TraceStatus::kOk) {
    std::fprintf(stderr, "hipec-trace: %s (%s)\n", error.c_str(), TraceStatusName(status));
    return 1;
  }
  std::printf("file:          %s\n", path);
  std::printf("name:          %s\n", trace.name.c_str());
  std::printf("page size:     %u\n", trace.page_size);
  std::printf("region pages:  %llu\n", static_cast<unsigned long long>(trace.region_pages));
  std::printf("records:       %zu\n", trace.records.size());
  return 0;
}

int Stats(const char* path) {
  TraceData trace;
  std::string error;
  TraceStatus status = LoadTraceFile(path, &trace, &error);
  if (status != TraceStatus::kOk) {
    std::fprintf(stderr, "hipec-trace: %s (%s)\n", error.c_str(), TraceStatusName(status));
    return 1;
  }
  uint64_t writes = 0;
  uint64_t think_total = 0;
  std::unordered_map<uint64_t, uint64_t> touches;
  for (const Access& a : trace.records) {
    writes += a.is_write() ? 1 : 0;
    think_total += a.think_ns;
    ++touches[a.vpage];
  }
  std::printf("%s: %zu records over %llu pages (%zu touched)\n", trace.name.c_str(),
              trace.records.size(), static_cast<unsigned long long>(trace.region_pages),
              touches.size());
  std::printf("  writes:      %llu (%.1f%%)\n", static_cast<unsigned long long>(writes),
              trace.records.empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(writes) /
                        static_cast<double>(trace.records.size()));
  std::printf("  think total: %.3f ms\n", static_cast<double>(think_total) / 1e6);
  std::vector<std::pair<uint64_t, uint64_t>> hot(touches.begin(), touches.end());
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::printf("  hottest pages:");
  for (size_t i = 0; i < hot.size() && i < 8; ++i) {
    std::printf(" %llu(x%llu)", static_cast<unsigned long long>(hot[i].first),
                static_cast<unsigned long long>(hot[i].second));
  }
  std::printf("\n");
  return 0;
}

int Truncate(const char* in_path, const char* count_str, const char* out_path) {
  TraceData trace;
  std::string error;
  TraceStatus status = LoadTraceFile(in_path, &trace, &error);
  if (status != TraceStatus::kOk) {
    std::fprintf(stderr, "hipec-trace: %s (%s)\n", error.c_str(), TraceStatusName(status));
    return 1;
  }
  uint64_t keep = std::strtoull(count_str, nullptr, 10);
  if (keep == 0) {
    std::fprintf(stderr, "hipec-trace: truncate count must be positive\n");
    return 1;
  }
  if (keep < trace.records.size()) {
    trace.records.resize(keep);
  }
  // Tighten the region to the surviving pages so replays size their pools honestly.
  uint64_t max_page = 0;
  for (const Access& a : trace.records) {
    max_page = std::max(max_page, a.vpage);
  }
  trace.region_pages = max_page + 1;
  if (!WriteTraceFile(out_path, trace, &error)) {
    std::fprintf(stderr, "hipec-trace: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s: kept %zu records, %llu-page region\n", out_path, trace.records.size(),
              static_cast<unsigned long long>(trace.region_pages));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];
  if (cmd == "convert" && argc >= 4) {
    return Convert(argc - 2, argv + 2);
  }
  if (cmd == "inspect" && argc == 3) {
    return Inspect(argv[2]);
  }
  if (cmd == "stats" && argc == 3) {
    return Stats(argv[2]);
  }
  if (cmd == "truncate" && argc == 5) {
    return Truncate(argv[2], argv[3], argv[4]);
  }
  return Usage();
}
