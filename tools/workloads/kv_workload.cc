// kv_workload: a miniature key-value store exercised with a skewed get/put mix — the
// capture target behind the canned "kv" trace. Values live in one flat file at
// key * 4 KiB; gets pread the value page, puts pwrite it. Keys are drawn from a Zipf
// distribution (Gray et al. incremental method, same construction as sim::ZipfGenerator)
// so the page stream has a hot set over a long cold tail — the access shape a database
// index gives its buffer pool.
//
//   kv_workload FILE [keys] [ops] [theta] [write_pct] [seed]
//
// Plain POSIX I/O on purpose: the hipec-capture shim interposes open/pread/pwrite, so
// every operation lands in the raw capture stream.
#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace {

constexpr size_t kPage = 4096;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double NextDouble(uint64_t* state) {
  return static_cast<double>(SplitMix64(state) >> 11) * (1.0 / 9007199254740992.0);
}

// Zipf over [0, n) with parameter theta, Gray et al. "Quickly generating billion-record
// synthetic databases" method.
class Zipf {
 public:
  Zipf(uint64_t n, double theta, uint64_t seed) : n_(n), theta_(theta), state_(seed) {
    for (uint64_t i = 1; i <= n_; ++i) {
      zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - (1.0 / std::pow(2.0, theta_)) / zetan_ * 2.0);
    threshold_ = 1.0 + std::pow(0.5, theta_);
  }

  uint64_t Next() {
    double u = NextDouble(&state_);
    double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < threshold_) {
      return 1;
    }
    return static_cast<uint64_t>(
        static_cast<double>(n_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

 private:
  uint64_t n_;
  double theta_;
  uint64_t state_;
  double zetan_ = 0.0;
  double alpha_ = 0.0;
  double eta_ = 0.0;
  double threshold_ = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [keys] [ops] [theta] [write_pct] [seed]\n",
                 argv[0]);
    return 2;
  }
  const char* path = argv[1];
  uint64_t keys = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 600;
  uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 8000;
  double theta = argc > 4 ? std::strtod(argv[4], nullptr) : 0.9;
  uint64_t write_pct = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 10;
  uint64_t seed = argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 42;

  int fd = open(path, O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    std::perror("open");
    return 1;
  }
  std::vector<char> page(kPage, 0);
  // Load phase: populate every key so gets always hit allocated pages.
  for (uint64_t k = 0; k < keys; ++k) {
    std::memcpy(page.data(), &k, sizeof(k));
    if (pwrite(fd, page.data(), kPage, static_cast<off_t>(k * kPage)) !=
        static_cast<ssize_t>(kPage)) {
      std::perror("pwrite");
      return 1;
    }
  }
  // Serve phase: zipf-skewed get/put mix.
  Zipf zipf(keys, theta, seed);
  uint64_t rng = seed ^ 0xD1B54A32D192ED03ULL;
  uint64_t gets = 0;
  uint64_t puts = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    uint64_t k = zipf.Next() % keys;
    if (SplitMix64(&rng) % 100 < write_pct) {
      std::memcpy(page.data(), &i, sizeof(i));
      if (pwrite(fd, page.data(), kPage, static_cast<off_t>(k * kPage)) < 0) {
        std::perror("pwrite");
        return 1;
      }
      ++puts;
    } else {
      if (pread(fd, page.data(), kPage, static_cast<off_t>(k * kPage)) < 0) {
        std::perror("pread");
        return 1;
      }
      ++gets;
    }
  }
  close(fd);
  std::printf("kv_workload: %llu keys loaded, %llu gets, %llu puts\n",
              static_cast<unsigned long long>(keys), static_cast<unsigned long long>(gets),
              static_cast<unsigned long long>(puts));
  return 0;
}
