// dataloader_workload: an ML-style data loader — the capture target behind the canned
// "dataloader" trace. A dataset of N fixed-size samples (one 4 KiB page each) is read for
// E epochs; within each epoch the sample order is a full Fisher-Yates shuffle, so every
// page is touched exactly once per epoch in a different order — the classic
// cache-adversarial pattern (reuse distance ~= dataset size; LRU gets nothing, and a
// policy has to notice that nothing is worth keeping).
//
//   dataloader_workload FILE [samples] [epochs] [seed]
//
// Plain POSIX pread so the hipec-capture shim sees every sample fetch.
#include <fcntl.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

namespace {

constexpr size_t kPage = 4096;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [samples] [epochs] [seed]\n", argv[0]);
    return 2;
  }
  const char* path = argv[1];
  uint64_t samples = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 500;
  uint64_t epochs = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;
  uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 7;

  int fd = open(path, O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    std::perror("open");
    return 1;
  }
  std::vector<char> page(kPage, 0);
  // Materialize the dataset (the writes are part of the captured workload: a
  // preprocessing pass before training).
  for (uint64_t s = 0; s < samples; ++s) {
    std::memcpy(page.data(), &s, sizeof(s));
    if (pwrite(fd, page.data(), kPage, static_cast<off_t>(s * kPage)) !=
        static_cast<ssize_t>(kPage)) {
      std::perror("pwrite");
      return 1;
    }
  }
  std::vector<uint64_t> order(samples);
  std::iota(order.begin(), order.end(), 0);
  uint64_t checksum = 0;
  for (uint64_t e = 0; e < epochs; ++e) {
    // Fisher-Yates reshuffle per epoch.
    for (uint64_t i = samples; i > 1; --i) {
      uint64_t j = SplitMix64(&seed) % i;
      std::swap(order[i - 1], order[j]);
    }
    for (uint64_t s : order) {
      if (pread(fd, page.data(), kPage, static_cast<off_t>(s * kPage)) < 0) {
        std::perror("pread");
        return 1;
      }
      checksum += static_cast<unsigned char>(page[0]);
    }
  }
  close(fd);
  std::printf("dataloader_workload: %llu samples x %llu epochs (checksum %llu)\n",
              static_cast<unsigned long long>(samples),
              static_cast<unsigned long long>(epochs),
              static_cast<unsigned long long>(checksum));
  return 0;
}
