// The M:N tenant scheduler (src/scenario/scheduler.h): churn populations multiplexed over a
// fixed worker pool against one real-threads kernel, the threaded injection schedule, and
// the reclaim-debt fix for the victim-skip starvation in HipecEngine::RunReclaim.
//
// These runs are nondeterministic by design (host scheduling decides interleavings and
// steal counts); the assertions are conservation-style — every tenant retires exactly once,
// audits stay green, injected tenants are accounted — not golden outputs.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "scenario/scheduler.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec::scenario {
namespace {

using mach::kPageSize;

// A small mixed population: every policy/pattern family, some writers, some departures.
TenantSpec ChurnTenant(int i) {
  TenantSpec t;
  t.name = "churn." + std::to_string(i);
  switch (i % 5) {
    case 0:
      t.policy = PolicyKind::kFifoSecondChance;
      t.pattern = PatternKind::kHotCold;
      break;
    case 1:
      t.policy = PolicyKind::kLru;
      t.pattern = PatternKind::kZipf;
      break;
    case 2:
      t.policy = PolicyKind::kGreedy;
      t.pattern = PatternKind::kBursty;
      break;
    case 3:
      t.policy = PolicyKind::kFifo;
      t.pattern = PatternKind::kSequential;
      break;
    default:
      t.policy = PolicyKind::kClock;
      t.pattern = PatternKind::kUniform;
      break;
  }
  t.pages = 48 + (i % 3) * 16;
  t.min_frames = 8;
  t.accesses = 160;
  t.write_fraction = (i % 4 == 0) ? 0.3 : 0.0;
  if (i % 7 == 3) {
    t.departure_step = 1;  // departs after one scheduling slice
  }
  return t;
}

TEST(SchedulerTest, ChurnPopulationRetiresEveryTenantWithAuditsGreen) {
  SchedulerSpec spec;
  spec.name = "sched_churn_small";
  spec.total_frames = 2048;
  spec.kernel_reserved_frames = 256;
  spec.workers = 4;
  spec.slice_accesses = 64;
  spec.max_live_tenants = 24;
  spec.audit_interval_ms = 5;
  for (int i = 0; i < 300; ++i) {
    spec.tenants.push_back(ChurnTenant(i));
  }

  SchedulerResult result = RunScheduledScenario(spec);  // throws on audit violation

  EXPECT_EQ(result.tenants_total, 300u);
  // Every tenant was started (admitted or fell back to non-specific) and retired exactly
  // once, through exactly one of the four exits.
  EXPECT_EQ(result.admitted + result.denied, 300u);
  EXPECT_EQ(result.completed + result.departed + result.terminated + result.torn_down, 300u);
  EXPECT_GT(result.departed, 0u);  // the i%7==3 cohort left early
  EXPECT_GT(result.slices, 0);
  EXPECT_GT(result.total_accesses, 0u);
  EXPECT_GT(result.total_faults, 0);
  EXPECT_GT(result.audits_run, 0);
  EXPECT_EQ(result.flight_recorder_dumps, 0);
  EXPECT_EQ(result.tenants.size(), 300u);
  EXPECT_GT(result.tenants_per_sec, 0.0);
}

TEST(SchedulerTest, MagazinesOffAndSingleWorkerStillRetireEveryone) {
  // Degenerate pool shapes: one worker (pure serial admission) and no per-worker frame
  // magazines — both must still drain the population.
  SchedulerSpec spec;
  spec.name = "sched_one_worker";
  spec.total_frames = 1024;
  spec.kernel_reserved_frames = 128;
  spec.workers = 1;
  spec.magazine_capacity = 0;
  spec.max_live_tenants = 8;
  for (int i = 0; i < 40; ++i) {
    spec.tenants.push_back(ChurnTenant(i));
  }
  SchedulerResult result = RunScheduledScenario(spec);
  EXPECT_EQ(result.admitted + result.denied, 40u);
  EXPECT_EQ(result.completed + result.departed + result.terminated + result.torn_down, 40u);
  EXPECT_EQ(result.steals, 0);  // nobody to steal from
}

TEST(SchedulerTest, InjectionsFireUnderTheWorkerPool) {
  SchedulerSpec spec;
  spec.name = "sched_injections";
  spec.total_frames = 2048;
  spec.kernel_reserved_frames = 256;
  spec.workers = 4;
  spec.slice_accesses = 32;
  spec.max_live_tenants = 16;
  for (int i = 0; i < 40; ++i) {
    TenantSpec t = ChurnTenant(i);
    t.departure_step = -1;
    spec.tenants.push_back(t);
  }
  // Tenant 0 runs (nominally) forever so the mid-run teardown finds it live; the teardown
  // is also what ends it.
  spec.tenants[0].accesses = 2'000'000;

  InjectionSpec spike;
  spike.kind = InjectionKind::kDiskLatencySpike;
  spike.at_step = 5;  // ms since start
  spike.duration_steps = 20;
  spike.extra_latency_ns = 2 * sim::kMillisecond;
  InjectionSpec loop;
  loop.kind = InjectionKind::kPolicyLoop;
  loop.at_step = 10;
  InjectionSpec flusher;
  flusher.kind = InjectionKind::kReserveStarvation;
  flusher.at_step = 15;
  flusher.accesses = 256;
  InjectionSpec teardown;
  teardown.kind = InjectionKind::kTeardown;
  teardown.at_step = 30;
  teardown.tenant_index = 0;
  spec.injections = {spike, loop, flusher, teardown};

  SchedulerResult result = RunScheduledScenario(spec);

  EXPECT_EQ(result.tenants_total, 42u);  // 40 listed + looping + flusher arrivals
  EXPECT_EQ(result.completed + result.departed + result.terminated + result.torn_down,
            result.admitted + result.denied);
  // The security checker killed the looping policy (its 50 ms TimeOut fuse).
  EXPECT_GE(result.checker_kills, 1);
  // The teardown removed tenant 0's region mid-run.
  EXPECT_EQ(result.torn_down, 1u);
  EXPECT_EQ(result.flight_recorder_dumps, 0);
}

// Regression test for the RunReclaim victim-skip starvation: when the manager's reclamation
// pass cannot take a victim's task lock (bounded backoff try-lock), the skipped ask must
// accrue as reclaim debt on the container and be repaid — added to the next successful
// pass's ask — instead of being dropped on the floor forever.
TEST(ReclaimDebtTest, SkippedVictimAccruesDebtAndRepaysOnNextPass) {
  mach::KernelParams params;
  params.exec_mode = sim::ExecMode::kRealThreads;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  mach::Kernel kernel(params);
  core::FrameManagerConfig config;
  config.partition_burst_fraction = 0.3;  // burst ~134 of 448 post-boot frames
  config.reserve_frames = 16;
  core::HipecEngine engine(&kernel, config);

  // Victim A: admitted small, then granted a surplus (NormalReclaim only asks containers
  // holding more than their minFrame guarantee).
  mach::Task* task_a = kernel.CreateTask("victim");
  core::HipecOptions opt_a;
  opt_a.min_frames = 16;
  core::HipecRegion region_a =
      engine.VmAllocateHipec(task_a, 128 * kPageSize,
                             policies::FifoPolicy(policies::CommandStyle::kSimple), opt_a);
  ASSERT_TRUE(region_a.ok) << region_a.error;
  ASSERT_TRUE(engine.manager().RequestFrames(region_a.container, 48,
                                             &region_a.container->free_q()));

  mach::Task* task_b = kernel.CreateTask("requester");
  core::HipecOptions opt_b;
  opt_b.min_frames = 16;
  core::HipecRegion region_b =
      engine.VmAllocateHipec(task_b, 128 * kPageSize,
                             policies::FifoPolicy(policies::CommandStyle::kSimple), opt_b);
  ASSERT_TRUE(region_b.ok) << region_b.error;

  const sim::CounterId skips = sim::InternCounter("engine.reclaim_lock_skips");
  const sim::CounterId repaid = sim::InternCounter("engine.reclaim_debt_repaid");
  ASSERT_EQ(engine.counters().Get(skips), 0);

  // Hold A's task lock from another thread for the whole first request.
  std::atomic<bool> locked{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    sim::ScopedLock lock(task_a->mutex());
    locked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!locked.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // total_specific (16+48+16) + 60 exceeds the burst, so the request must reclaim from A —
  // whose lock is unavailable. The pass skips A, records the skip, and banks the ask.
  engine.manager().RequestFrames(region_b.container, 60, &region_b.container->free_q());
  EXPECT_GT(engine.counters().Get(skips), 0);
  EXPECT_GT(region_a.container->reclaim_debt.load(std::memory_order_relaxed), 0u);

  release.store(true, std::memory_order_release);
  holder.join();

  // Lock released: the next reclamation pass reaches A, repays the banked debt (its ask is
  // inflated by it), and clears the container's debt.
  engine.manager().RequestFrames(region_b.container, 60, &region_b.container->free_q());
  EXPECT_GT(engine.counters().Get(repaid), 0);
  EXPECT_EQ(region_a.container->reclaim_debt.load(std::memory_order_relaxed), 0u);

  kernel.TerminateTask(task_a, "done");
  kernel.TerminateTask(task_b, "done");
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

}  // namespace
}  // namespace hipec::scenario
