// Differential fuzzing of the install-time template JIT against the IR interpreter: seeded
// deterministic random policies, executed in two isolated worlds (DispatchMode::kJit vs
// kDecodedIr), compared on outcome, error text, Return operand, command count, and the full
// command-by-command trace. Policies are drawn from the valid instruction space but are NOT
// required to run cleanly — runtime errors (empty dequeues, empty page variables, jumps off
// the stream, division by zero, budget exhaustion on generated loops) are part of the
// contract being checked: both engines must fail the same way at the same command.
//
// Everything is seeded, so a passing corpus is a permanent regression corpus — no flakes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <ostream>
#include <random>
#include <string>
#include <vector>

#include "hipec/builder.h"
#include "hipec/executor.h"
#include "hipec/frame_manager.h"
#include "hipec/jit.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace hipec::core {

void PrintTo(const ExecTrace& t, std::ostream* os) {
  *os << "{event=" << t.event << " cc=" << t.cc << " op=" << static_cast<int>(t.opcode)
      << " cond=" << t.condition << "}";
}

namespace {

namespace ops = std_ops;
using mach::kPageSize;

mach::KernelParams FuzzParams() {
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 16;
  params.pageout.free_min = 4;
  params.hipec_build = true;
  return params;
}

struct World {
  mach::Kernel kernel;
  GlobalFrameManager manager;
  PolicyExecutor executor;
  std::vector<std::unique_ptr<Container>> containers;
  std::vector<ExecTrace> trace;

  explicit World(DispatchMode mode)
      : kernel(FuzzParams()), manager(&kernel, FrameManagerConfig{0.5, 16}),
        executor(&kernel, &manager) {
    executor.set_dispatch_mode(mode);
    executor.set_trace_sink(&trace);
    // Generated programs may loop; budget exhaustion is a legitimate shared outcome, it just
    // must arrive at the same command in both engines. Keep it cheap.
    executor.set_max_commands(20'000);
  }

  Container* MakeContainer(PolicyProgram program) {
    mach::Task* task = kernel.CreateTask("fuzz");
    mach::VmObject* object = kernel.CreateAnonObject(64 * kPageSize);
    containers.push_back(std::make_unique<Container>(
        containers.size() + 1, task, object, std::move(program), /*min_frames=*/8,
        kernel.costs().policy_timeout_ns));
    Container* c = containers.back().get();
    HipecOptions options;
    options.min_frames = 8;
    SetupStandardOperands(c, options);
    EXPECT_TRUE(manager.AdmitContainer(c));
    return c;
  }
};

// One random command. Jump targets stay within [1, n_commands] (decoder-legal); operand
// indices are drawn from the standard layout so the decoder accepts most commands and the
// rest die as decode-time traps — identically in both engines.
Instruction RandomInstruction(std::mt19937_64& rng, int n_commands) {
  auto pick = [&](std::initializer_list<uint8_t> choices) {
    std::vector<uint8_t> v(choices);
    return v[rng() % v.size()];
  };
  const uint8_t int_op =
      pick({ops::kScratch0, ops::kScratch1, ops::kResult, ops::kFreeCount, ops::kActiveCount,
            ops::kRequestSize, ops::kFaultAddr});
  const uint8_t writable_int = pick({ops::kScratch0, ops::kScratch1, ops::kResult});
  const uint8_t queue_op = pick({ops::kFreeQueue, ops::kActiveQueue, ops::kInactiveQueue});
  const uint8_t target = static_cast<uint8_t>(1 + rng() % static_cast<uint64_t>(n_commands));

  switch (rng() % 17) {
    case 0:
      return Instruction{Opcode::kArith, writable_int, static_cast<uint8_t>(rng() % 256),
                         static_cast<uint8_t>(ArithOp::kLoadImm)};
    case 1:
      // Div/mod excluded: a generated mul chain could in principle reach INT64_MIN / -1,
      // which both engines execute as a hardware idiv fault — identical, but fatal to the
      // test process. Division parity is covered deterministically in dual_path_test.
      return Instruction{Opcode::kArith, writable_int, int_op,
                         pick({static_cast<uint8_t>(ArithOp::kAdd),
                               static_cast<uint8_t>(ArithOp::kSub),
                               static_cast<uint8_t>(ArithOp::kMul),
                               static_cast<uint8_t>(ArithOp::kMov)})};
    case 2:
      return Instruction{Opcode::kComp, int_op, int_op,
                         static_cast<uint8_t>(1 + rng() % 6)};
    case 3:
      return Instruction{Opcode::kLogic, writable_int, int_op,
                         static_cast<uint8_t>(1 + rng() % 4)};
    case 4:
      return Instruction{Opcode::kJump, 0, 0, target};
    case 5:
      return Instruction{Opcode::kEmptyQ, queue_op, 0, 0};
    case 6:
      return Instruction{Opcode::kInQ, queue_op, ops::kPage, 0};
    case 7:
      return Instruction{Opcode::kDeQueue, ops::kPage, queue_op,
                         static_cast<uint8_t>(1 + rng() % 2)};
    case 8:
      return Instruction{Opcode::kEnQueue, ops::kPage, queue_op,
                         static_cast<uint8_t>(1 + rng() % 2)};
    case 9:
      return Instruction{Opcode::kSet, ops::kPage, static_cast<uint8_t>(rng() % 2),
                         static_cast<uint8_t>(1 + rng() % 2)};
    case 10:
      return Instruction{rng() % 2 == 0 ? Opcode::kRef : Opcode::kMod, ops::kPage, 0, 0};
    case 11:
      return Instruction{Opcode::kRequest, ops::kRequestSize, ops::kFreeQueue, 0};
    case 12: {
      static constexpr Opcode kReplacement[3] = {Opcode::kFifo, Opcode::kLru, Opcode::kMru};
      return Instruction{kReplacement[rng() % 3], queue_op, ops::kPage, 0};
    }
    case 13:
      // Mode 3 is decode-illegal: the trap must fire identically in both engines.
      return Instruction{Opcode::kWeightedSelect, queue_op, ops::kPage,
                         pick({1, 1, 2, 2, 3})};
    case 14:
      // kInactiveCount (0x06) and kFaultAddr (0x0C) each head a contiguous int run long
      // enough for width 2; kScratch0's neighbor is a queue, so that draw decode-traps —
      // identically in both engines.
      return Instruction{Opcode::kSatDotProduct, writable_int,
                         pick({ops::kInactiveCount, ops::kFaultAddr, ops::kScratch0}),
                         static_cast<uint8_t>(1 + rng() % 2)};
    case 15:
      // Loads need a writable destination, stores any readable source; an empty page
      // variable is a runtime error both engines must report at the same command.
      return Instruction{Opcode::kPageWord, ops::kPage,
                         rng() % 2 == 0 ? writable_int : int_op,
                         static_cast<uint8_t>(1 + rng() % 2)};
    default:
      return Instruction{Opcode::kFind, ops::kPage, ops::kFaultAddr, 0};
  }
}

PolicyProgram RandomPolicy(uint64_t seed) {
  std::mt19937_64 rng(seed);
  const int n = static_cast<int>(4 + rng() % 20);
  std::vector<Instruction> commands;
  commands.reserve(static_cast<size_t>(n) + 1);
  for (int i = 0; i < n; ++i) {
    commands.push_back(RandomInstruction(rng, n + 1));
  }
  commands.push_back(Instruction{Opcode::kReturn, ops::kPage, 0, 0});

  PolicyProgram p;
  p.SetEvent(kEventPageFault, commands);
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEvent(kEventReclaimFrame, reclaim.Build());
  return p;
}

// Runs one generated policy in both engines and asserts byte-identical observable behavior.
void RunDifferential(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  World jw(DispatchMode::kJit);
  World iw(DispatchMode::kDecodedIr);
  Container* ca = jw.MakeContainer(RandomPolicy(seed));
  Container* cb = iw.MakeContainer(RandomPolicy(seed));

  // A couple of faults so queue/page state mutates between events, then a reclaim pass.
  for (int round = 0; round < 3; ++round) {
    ExecResult ra = jw.executor.ExecuteEvent(ca, kEventPageFault);
    ExecResult rb = iw.executor.ExecuteEvent(cb, kEventPageFault);
    ASSERT_EQ(ra.outcome, rb.outcome) << ra.error << " vs " << rb.error;
    ASSERT_EQ(ra.error, rb.error);
    ASSERT_EQ(ra.return_operand, rb.return_operand);
    ASSERT_EQ(ra.commands_executed, rb.commands_executed);
    ASSERT_EQ(jw.kernel.ctx().now(), iw.kernel.ctx().now()) << "virtual clocks diverged";
  }
  ca->operands().WriteInt(ops::kReclaimCount, 1);
  cb->operands().WriteInt(ops::kReclaimCount, 1);
  ExecResult ra = jw.executor.ExecuteEvent(ca, kEventReclaimFrame);
  ExecResult rb = iw.executor.ExecuteEvent(cb, kEventReclaimFrame);
  ASSERT_EQ(ra.outcome, rb.outcome) << ra.error << " vs " << rb.error;
  ASSERT_EQ(ra.error, rb.error);

  ASSERT_EQ(jw.trace.size(), iw.trace.size());
  for (size_t i = 0; i < jw.trace.size(); ++i) {
    ASSERT_EQ(jw.trace[i], iw.trace[i]) << "first divergence at trace index " << i;
  }
  // Operand state must agree too — a store parity bug could hide from the trace.
  for (uint8_t idx : {ops::kScratch0, ops::kScratch1, ops::kResult}) {
    ASSERT_EQ(ca->operands().ReadInt(idx), cb->operands().ReadInt(idx))
        << "operand 0x" << std::hex << static_cast<int>(idx);
  }
}

TEST(JitDifferentialTest, SeededCorpus) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    RunDifferential(seed);
    if (HasFatalFailure()) {
      return;
    }
  }
}

// A second band with a different generator stride, so the corpus isn't one contiguous run of
// the PRNG's low bits.
TEST(JitDifferentialTest, SeededCorpusStride) {
  for (uint64_t seed = 0x9E3779B97F4A7C15ull; seed > 0x9E3779B97F4A7C15ull - 100; --seed) {
    RunDifferential(seed);
    if (HasFatalFailure()) {
      return;
    }
  }
}

}  // namespace
}  // namespace hipec::core
