// Multi-tenant scenario engine tests: canned contention scenarios run end to end with the
// invariant auditor on, determinism across same-seed runs, fault injection (checker kills,
// teardown, disk spikes, reserve starvation), and the auditor's ability to actually detect
// corrupted frame state.
#include <gtest/gtest.h>

#include <string>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "scenario/canned.h"
#include "scenario/invariants.h"
#include "scenario/scenario.h"
#include "sim/check.h"

namespace hipec::scenario {
namespace {

using mach::kPageSize;

const TenantResult* FindTenant(const ScenarioResult& result, const std::string& name) {
  for (const TenantResult& t : result.tenants) {
    if (t.name == name) {
      return &t;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------- acceptance scenario

// The ISSUE's acceptance bar: >= 8 specific containers plus 4 non-specific tasks run to
// completion under continuous frame-conservation auditing.
TEST(ScenarioTest, RampUpCompletesUnderAudit) {
  ScenarioResult result = RunScenario(RampUp());  // throws CheckFailure on any violation
  ASSERT_EQ(result.tenants.size(), 8u);
  ASSERT_EQ(result.background.size(), 4u);
  for (const TenantResult& t : result.tenants) {
    EXPECT_TRUE(t.admitted) << t.name;
    EXPECT_TRUE(t.completed) << t.name;
    EXPECT_GT(t.faults_handled, 0) << t.name;
    EXPECT_GT(t.commands_executed, 0) << t.name;
  }
  for (const BackgroundResult& b : result.background) {
    EXPECT_TRUE(b.completed) << b.name;
  }
  EXPECT_GT(result.audits_run, 0);
  EXPECT_GT(result.virtual_ns, 0);
  EXPECT_EQ(result.checker_kills, 0);
}

TEST(ScenarioTest, SameSeedRunsAreByteIdentical) {
  ScenarioResult a = RunScenario(RampUp());
  ScenarioResult b = RunScenario(RampUp());
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
}

TEST(ScenarioTest, DifferentSeedDiverges) {
  ScenarioSpec spec = RampUp();
  ScenarioResult a = RunScenario(spec);
  spec.seed ^= 0xDEADBEEF;
  ScenarioResult b = RunScenario(spec);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
}

// ---------------------------------------------------------------- contention scenarios

// With the herd's minimums pinned against the watermark there is no reclaimable surplus
// anywhere: every Request overshoots and the manager must deny it.
TEST(ScenarioTest, ThunderingHerdRejectsRequests) {
  ScenarioResult result = RunScenario(ThunderingHerd());
  for (const TenantResult& t : result.tenants) {
    EXPECT_TRUE(t.admitted) << t.name;
    EXPECT_TRUE(t.completed) << t.name;  // rejection degrades to self-eviction, not failure
  }
  EXPECT_GT(result.Decision("request-reject"), 100);
  int64_t rejected = 0;
  for (const TenantResult& t : result.tenants) {
    rejected += t.requests_rejected;
  }
  EXPECT_GT(rejected, 100);
}

// The stubborn hog refuses cooperative reclamation, so the at-min smalls' admissions can
// only be funded by FAFR forced reclamation seizing the hog's frames — and the hog's own
// requests, with nobody else above min, are denied.
TEST(ScenarioTest, HogLosesFramesToForcedReclaim) {
  ScenarioResult result = RunScenario(HogVsMany());
  const TenantResult* hog = FindTenant(result, "hog");
  ASSERT_NE(hog, nullptr);
  EXPECT_TRUE(hog->admitted);
  EXPECT_GT(hog->frames_force_reclaimed, 0);
  EXPECT_GT(hog->requests_rejected, 0);
  EXPECT_GT(hog->frames_peak, 400u);  // it really did balloon before being clawed back
  for (const TenantResult& t : result.tenants) {
    if (t.name != "hog") {
      EXPECT_TRUE(t.admitted) << t.name;
      EXPECT_TRUE(t.completed) << t.name;
    }
  }
}

// Tenants departing and arriving mid-scenario, plus a mid-scenario region teardown, all
// under audit: the freed frames are fully returned (conservation would fail otherwise).
TEST(ScenarioTest, ChurnSurvivesDeparturesAndTeardown) {
  ScenarioResult result = RunScenario(Churn());
  const TenantResult* torn = FindTenant(result, "churn-2");
  ASSERT_NE(torn, nullptr);
  EXPECT_TRUE(torn->torn_down);
  EXPECT_FALSE(torn->completed);
  for (const std::string& name : {"churn-0", "churn-1", "churn-3"}) {
    const TenantResult* t = FindTenant(result, name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_TRUE(t->terminated) << name;  // departed on schedule
  }
  for (const std::string& name : {"late-0", "late-1"}) {
    const TenantResult* t = FindTenant(result, name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_TRUE(t->admitted) << name;
    EXPECT_TRUE(t->completed) << name;
  }
  EXPECT_GT(result.Decision("remove-container"), 0);
}

// ---------------------------------------------------------------- fault injection

// The ISSUE's second acceptance bar: injected infinite-loop policies are killed by the
// security checker while every innocent tenant finishes unharmed.
TEST(ScenarioTest, CheckerKillsLoopersWorkersUnharmed) {
  ScenarioResult result = RunScenario(CheckerKillStorm());
  EXPECT_EQ(result.checker_kills, 3);
  int loopers = 0;
  for (const TenantResult& t : result.tenants) {
    if (t.injected) {
      ++loopers;
      EXPECT_TRUE(t.killed_by_checker) << t.name;
      EXPECT_TRUE(t.terminated) << t.name;
      EXPECT_FALSE(t.completed) << t.name;
    } else {
      EXPECT_TRUE(t.completed) << t.name;
      EXPECT_FALSE(t.killed_by_checker) << t.name;
    }
  }
  EXPECT_EQ(loopers, 3);
}

// Write-heavy tenants evicting dirty pages faster than the disk retires write-backs drain
// the 4-frame Flush reserve: exchanges happen while it lasts, then Flush degrades to the
// synchronous path.
TEST(ScenarioTest, ReserveStarvationForcesSynchronousFlush) {
  ScenarioResult result = RunScenario(ReserveStarvation());
  EXPECT_GT(result.Decision("flush-exchange"), 0);
  EXPECT_GT(result.Decision("flush-sync"), 0);
  for (const TenantResult& t : result.tenants) {
    EXPECT_TRUE(t.completed) << t.name;
  }
}

// A disk latency spike mid-scenario slows everyone down but breaks nothing.
TEST(ScenarioTest, DiskSpikeOnlyCostsTime) {
  ScenarioSpec spec = DiskSpike();
  ScenarioResult spiked = RunScenario(spec);
  spec.injections.clear();
  ScenarioResult calm = RunScenario(spec);
  for (const TenantResult& t : spiked.tenants) {
    EXPECT_TRUE(t.completed) << t.name;
  }
  EXPECT_GT(spiked.virtual_ns, calm.virtual_ns);
  // The injection only perturbs timing, not reference streams: fault counts match.
  for (size_t i = 0; i < spiked.tenants.size(); ++i) {
    EXPECT_EQ(spiked.tenants[i].faults_handled, calm.tenants[i].faults_handled)
        << spiked.tenants[i].name;
  }
}

// A tenant whose minFrame demand exceeds the watermark is refused registration and falls
// back to running as a non-specific application (§4.3.1) — it still completes.
TEST(ScenarioTest, AdmissionRejectFallsBackToNonSpecific) {
  ScenarioSpec spec;
  spec.name = "admission_reject";
  spec.total_frames = 512;
  spec.kernel_reserved_frames = 64;
  spec.steps = 16;
  TenantSpec big;
  big.name = "too-big";
  big.policy = PolicyKind::kGreedy;
  big.pattern = PatternKind::kSequential;
  big.pages = 64;
  big.min_frames = 4000;  // no watermark admits this
  big.accesses = 200;
  spec.tenants.push_back(big);
  ScenarioResult result = RunScenario(spec);
  const TenantResult* t = FindTenant(result, "too-big");
  ASSERT_NE(t, nullptr);
  EXPECT_FALSE(t->admitted);
  EXPECT_TRUE(t->completed);
  EXPECT_EQ(t->faults_handled, 0);  // non-specific faults are the daemon's, not HiPEC's
  EXPECT_GT(result.Decision("admit-reject"), 0);
}

// ---------------------------------------------------------------- trace materialization

TEST(ScenarioTest, TracesAreDeterministicPerOrdinal) {
  TenantSpec t;
  t.pattern = PatternKind::kHotCold;
  t.pages = 128;
  t.accesses = 500;
  t.write_fraction = 0.3;
  auto a = MaterializeTrace(t, 42, 0);
  auto b = MaterializeTrace(t, 42, 0);
  auto c = MaterializeTrace(t, 42, 1);
  ASSERT_EQ(a.size(), 500u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // sibling tenants with identical specs still get distinct streams
  size_t writes = 0;
  for (const auto& [page, is_write] : a) {
    EXPECT_LT(page, 128u);
    writes += is_write ? 1 : 0;
  }
  EXPECT_GT(writes, 100u);
  EXPECT_LT(writes, 200u);
}

// ---------------------------------------------------------------- auditor detection power

class AuditorDetectionTest : public ::testing::Test {
 protected:
  AuditorDetectionTest() : kernel_(Params()), engine_(&kernel_) {
    task_ = kernel_.CreateTask("app");
    core::HipecOptions options;
    options.min_frames = 32;
    options.free_target = 4;
    options.inactive_target = 8;
    options.reserved_target = 0;
    region_ = engine_.VmAllocateHipec(task_, 64 * kPageSize,
                                      policies::FifoSecondChancePolicy(), options);
    EXPECT_TRUE(region_.ok) << region_.error;
    // Touch only half the granted minimum so the free queue still holds frames to steal.
    EXPECT_TRUE(kernel_.TouchRange(task_, region_.addr, 16 * kPageSize, true));
  }

  static mach::KernelParams Params() {
    mach::KernelParams params;
    params.total_frames = 1024;
    params.kernel_reserved_frames = 128;
    params.hipec_build = true;
    return params;
  }

  mach::Kernel kernel_;
  core::HipecEngine engine_;
  mach::Task* task_ = nullptr;
  core::HipecRegion region_;
};

TEST_F(AuditorDetectionTest, CleanStatePasses) {
  AuditReport report = AuditFrameInvariants(engine_);
  EXPECT_TRUE(report.ok) << report.violation;
}

TEST_F(AuditorDetectionTest, DetectsAllocationCountCorruption) {
  ++region_.container->allocated_frames;  // claims a frame it does not hold
  AuditReport report = AuditFrameInvariants(engine_);
  EXPECT_FALSE(report.ok);
  --region_.container->allocated_frames;
  EXPECT_TRUE(AuditFrameInvariants(engine_).ok);
}

TEST_F(AuditorDetectionTest, DetectsStolenFrame) {
  // Rip a frame off the container's free queue without telling the manager: the sweep sees
  // fewer owned frames than the container claims.
  mach::VmPage* page = region_.container->free_q().DequeueHead();
  ASSERT_NE(page, nullptr);
  void* owner = page->owner;
  page->owner = nullptr;
  AuditReport report = AuditFrameInvariants(engine_);
  EXPECT_FALSE(report.ok);
  page->owner = owner;
  region_.container->free_q().EnqueueTail(page, kernel_.clock().now());
  EXPECT_TRUE(AuditFrameInvariants(engine_).ok);
}

TEST_F(AuditorDetectionTest, DetectsFafrOrderCorruption) {
  // The manager exposes the FAFR list read-only; corrupting it is exactly the point here.
  auto* head = const_cast<mach::VmPage*>(engine_.manager().alloc_head());
  ASSERT_NE(head, nullptr);
  ASSERT_NE(head->alloc_next, nullptr);
  // Swap two allocation stamps: the list order no longer matches allocation order.
  std::swap(head->alloc_seq, head->alloc_next->alloc_seq);
  AuditReport report = AuditFrameInvariants(engine_);
  EXPECT_FALSE(report.ok);
  std::swap(head->alloc_seq, head->alloc_next->alloc_seq);
  EXPECT_TRUE(AuditFrameInvariants(engine_).ok);
}

TEST_F(AuditorDetectionTest, AuditNowThrowsAndCounts) {
  InvariantAuditor auditor(&engine_);
  auditor.AuditNow("test-decision");
  EXPECT_EQ(auditor.audits_run(), 1);
  ++region_.container->allocated_frames;
  EXPECT_THROW(auditor.AuditNow("corrupted"), sim::CheckFailure);
  --region_.container->allocated_frames;
}

}  // namespace
}  // namespace hipec::scenario
