// Dual-path equivalence tests for the decode-once refactor: every policy must behave
// byte-for-byte identically under the decoded-IR interpreter and the retained pre-IR switch
// interpreter — same command-by-command trace (CC sequence, operator, condition flag after
// each command), same outcome, same Return operand, same error text. Also the executor
// error-path tests that must surface as ExecOutcome::kError with a useful message (never
// undefined behavior): out-of-range jump targets, truncated streams, operand-kind misuse.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "hipec/executor.h"
#include "hipec/frame_manager.h"
#include "hipec/jit.h"
#include "hipec/validator.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace hipec::core {

void PrintTo(const ExecTrace& t, std::ostream* os) {
  *os << "{event=" << t.event << " cc=" << t.cc << " op=" << static_cast<int>(t.opcode)
      << " cond=" << t.condition << "}";
}

namespace {

namespace ops = std_ops;
using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 16;
  params.pageout.free_min = 4;
  params.hipec_build = true;
  return params;
}

// A self-contained kernel + executor pinned to one dispatch mode. Each parity check builds
// two of these so both interpreters start from identical virtual time and frame-pool state.
struct World {
  mach::Kernel kernel;
  GlobalFrameManager manager;
  PolicyExecutor executor;
  std::vector<std::unique_ptr<Container>> containers;
  std::vector<ExecTrace> trace;

  explicit World(DispatchMode mode)
      : kernel(SmallParams()), manager(&kernel, FrameManagerConfig{0.5, 16}),
        executor(&kernel, &manager) {
    executor.set_dispatch_mode(mode);
    executor.set_trace_sink(&trace);
  }

  Container* MakeContainer(PolicyProgram program, HipecOptions options = {}) {
    mach::Task* task = kernel.CreateTask("app");
    mach::VmObject* object = kernel.CreateAnonObject(64 * kPageSize);
    containers.push_back(std::make_unique<Container>(
        containers.size() + 1, task, object, std::move(program), options.min_frames,
        options.timeout_ns > 0 ? options.timeout_ns : kernel.costs().policy_timeout_ns));
    Container* c = containers.back().get();
    SetupStandardOperands(c, options);
    if (options.min_frames > 0) {
      EXPECT_TRUE(manager.AdmitContainer(c));
    }
    return c;
  }
};

PolicyProgram OneEvent(std::vector<Instruction> commands) {
  PolicyProgram p;
  p.SetEvent(kEventPageFault, commands);
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEvent(kEventReclaimFrame, reclaim.Build());
  return p;
}

// Runs one event in both worlds and checks the results agree. Traces are compared by the
// caller once the whole scenario has run.
void RunBothAndCompare(World& ir, Container* ca, World& sw, Container* cb, int event,
                       ExecResult* out = nullptr) {
  ExecResult ra = ir.executor.ExecuteEvent(ca, event);
  ExecResult rb = sw.executor.ExecuteEvent(cb, event);
  EXPECT_EQ(ra.outcome, rb.outcome) << ra.error << " vs " << rb.error;
  EXPECT_EQ(ra.error, rb.error);
  EXPECT_EQ(ra.return_operand, rb.return_operand);
  EXPECT_EQ(ra.commands_executed, rb.commands_executed);
  if (out != nullptr) {
    *out = ra;
  }
}

void ExpectTracesIdentical(const World& ir, const World& sw) {
  ASSERT_EQ(ir.trace.size(), sw.trace.size());
  for (size_t i = 0; i < ir.trace.size(); ++i) {
    EXPECT_EQ(ir.trace[i], sw.trace[i]) << "first divergence at trace index " << i;
  }
}

// One interpreter configuration for a parity check: which loop runs, whether the IR loop
// uses computed-goto dispatch, and whether the stream was decoded with superinstruction
// fusion. The default is the production path.
struct PathConfig {
  DispatchMode mode = DispatchMode::kDecodedIr;
  bool threaded = true;
  bool fuse = true;
};

Container* MakePathContainer(World& w, PolicyProgram program, const HipecOptions& options,
                             const PathConfig& config) {
  w.executor.set_threaded_dispatch(config.threaded);
  Container* c = w.MakeContainer(std::move(program), options);
  if (!config.fuse) {
    c->AdoptDecodedProgram(
        DecodePolicy(c->program(), c->operands(), nullptr, /*fuse_superinstructions=*/false));
  }
  return c;
}

// Drives a policy the way the engine does — repeated PageFaults with the returned frame
// pushed onto the active queue, reference/modify bits toggled deterministically, then a
// ReclaimFrame pass — far enough to drain the free list and exercise the replacement path.
void ExerciseTable2PolicyPaths(const std::function<PolicyProgram()>& make_program,
                               HipecOptions options, const PathConfig& a,
                               const PathConfig& b) {
  World ir(a.mode);
  World sw(b.mode);
  Container* ca = MakePathContainer(ir, make_program(), options, a);
  Container* cb = MakePathContainer(sw, make_program(), options, b);

  auto after_fault = [](World& w, Container* c, const ExecResult& result, int round) {
    if (c->operands().TypeOf(result.return_operand) != OperandType::kPage) {
      return;
    }
    mach::VmPage* page = c->operands().ReadPageOrNull(result.return_operand);
    if (page == nullptr || page->owner != c || page->queue != nullptr) {
      return;
    }
    page->reference = round % 2 == 0;
    page->modified = round % 3 == 0;
    c->active_q().EnqueueTail(page, w.kernel.clock().now());
    c->operands().WritePage(result.return_operand, nullptr);
  };

  const int rounds = static_cast<int>(options.min_frames) * 2 + 4;
  for (int round = 0; round < rounds; ++round) {
    ExecResult result;
    RunBothAndCompare(ir, ca, sw, cb, kEventPageFault, &result);
    if (result.outcome != ExecOutcome::kOk) {
      break;  // identical failure in both worlds (checked above) — parity still holds
    }
    after_fault(ir, ca, result, round);
    after_fault(sw, cb, result, round);
  }

  ca->operands().WriteInt(ops::kReclaimCount, 2);
  cb->operands().WriteInt(ops::kReclaimCount, 2);
  RunBothAndCompare(ir, ca, sw, cb, kEventReclaimFrame);

  ExpectTracesIdentical(ir, sw);
  EXPECT_GT(ir.trace.size(), 0u);
}

// The headline pairing: production IR (fused, threaded where available) vs the pre-IR
// reference interpreter.
void ExerciseTable2Policy(const std::function<PolicyProgram()>& make_program,
                          HipecOptions options) {
  ExerciseTable2PolicyPaths(make_program, options, PathConfig{},
                            PathConfig{DispatchMode::kReferenceSwitch});
}

TEST(DualPathTable2Test, FifoSecondChance) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::FifoSecondChancePolicy(); }, options);
}

TEST(DualPathTable2Test, MruSimple) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::MruPolicy(policies::CommandStyle::kSimple); },
                       options);
}

TEST(DualPathTable2Test, MruComplex) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::MruPolicy(policies::CommandStyle::kComplex); },
                       options);
}

TEST(DualPathTable2Test, LruComplex) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::LruPolicy(policies::CommandStyle::kComplex); },
                       options);
}

TEST(DualPathTable2Test, Fifo) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::FifoPolicy(policies::CommandStyle::kSimple); },
                       options);
}

TEST(DualPathTable2Test, Clock) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::ClockPolicy(); }, options);
}

TEST(DualPathTable2Test, TwoQueue) {
  HipecOptions options = policies::TwoQueueOptions();
  options.min_frames = 8;
  ExerciseTable2Policy([] { return policies::TwoQueuePolicy(); }, options);
}

// --------------------------------------------------------- superinstruction fusion parity

// Fused vs unfused decodings of the same policy, both on the IR loop: the fusion pass must
// be invisible in every observable (trace, outcome, command count, virtual time effects).
TEST(DualPathFusionTest, FusedVsUnfusedIrFifoSecondChance) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::FifoSecondChancePolicy(); }, options,
                            PathConfig{.fuse = true}, PathConfig{.fuse = false});
}

TEST(DualPathFusionTest, FusedVsUnfusedIrClock) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::ClockPolicy(); }, options,
                            PathConfig{.fuse = true}, PathConfig{.fuse = false});
}

TEST(DualPathFusionTest, FusedVsUnfusedIrTwoQueue) {
  HipecOptions options = policies::TwoQueueOptions();
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::TwoQueuePolicy(); }, options,
                            PathConfig{.fuse = true}, PathConfig{.fuse = false});
}

// The unfused IR stream must also still match the pre-IR reference interpreter (closes the
// triangle: fused == unfused == reference).
TEST(DualPathFusionTest, UnfusedIrVsReferenceSwitchLru) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::LruPolicy(policies::CommandStyle::kComplex); },
                            options, PathConfig{.fuse = false},
                            PathConfig{.mode = DispatchMode::kReferenceSwitch});
}

// Computed-goto vs dense-switch instantiations of the IR loop, both fused.
TEST(DualPathFusionTest, ThreadedVsSwitchDispatchFifoSecondChance) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::FifoSecondChancePolicy(); }, options,
                            PathConfig{.threaded = true}, PathConfig{.threaded = false});
}

TEST(DualPathFusionTest, ThreadedVsSwitchDispatchTwoQueue) {
  HipecOptions options = policies::TwoQueueOptions();
  options.min_frames = 8;
  ExerciseTable2PolicyPaths([] { return policies::TwoQueuePolicy(); }, options,
                            PathConfig{.threaded = true}, PathConfig{.threaded = false});
}

// Guard against the equivalence tests above becoming vacuous: the Table 2 policies must
// actually contain fused pairs after decoding with fusion on.
TEST(DualPathFusionTest, Table2PoliciesActuallyFuse) {
  World w(DispatchMode::kDecodedIr);
  Container* c = w.MakeContainer(OneEvent({Instruction{Opcode::kReturn, 0, 0, 0}}),
                                 policies::TwoQueueOptions());
  for (const PolicyProgram& program :
       {policies::FifoSecondChancePolicy(), policies::ClockPolicy(),
        policies::TwoQueuePolicy(), policies::LruPolicy(policies::CommandStyle::kComplex)}) {
    DecodedProgram fused = DecodePolicy(program, c->operands());
    int fused_count = 0;
    for (const DecodedEvent& ev : fused.events) {
      for (const DecodedInst& d : ev.insts) {
        fused_count += IsFusedKind(d.kind) ? 1 : 0;
      }
    }
    EXPECT_GT(fused_count, 0) << "policy decoded without a single superinstruction";
    DecodedProgram unfused =
        DecodePolicy(program, c->operands(), nullptr, /*fuse_superinstructions=*/false);
    for (const DecodedEvent& ev : unfused.events) {
      for (const DecodedInst& d : ev.insts) {
        EXPECT_FALSE(IsFusedKind(d.kind));
      }
    }
  }
}

// A jump that targets the second half of an otherwise-fusable Comp;Jump pair must block the
// fusion: control enters at the Jump alone, so folding it into the Comp would change both
// the trace and the branch behavior.
TEST(DualPathFusionTest, JumpIntoPairSecondHalfBlocksFusionAndStaysEquivalent) {
  auto make_program = [] {
    std::vector<Instruction> commands = {
        // 1: Comp s0 == s1 (both 0 → true, so the next Jump falls through)
        Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch1,
                    static_cast<uint8_t>(CompOp::kEq)},
        // 2: Jump → 4 (not taken on first pass; taken when re-entered from 3)
        Instruction{Opcode::kJump, 0, 0, 4},
        // 3: Jump → 2 (flag is clear after 2 executed untaken → taken; makes 2 a jump target)
        Instruction{Opcode::kJump, 0, 0, 2},
        // 4: Return
        Instruction{Opcode::kReturn, 0, 0, 0},
    };
    return OneEvent(commands);
  };

  World ir(DispatchMode::kDecodedIr);
  World sw(DispatchMode::kReferenceSwitch);
  Container* ca = ir.MakeContainer(make_program());
  Container* cb = sw.MakeContainer(make_program());

  // Slot 2 is a jump target, so pair (1,2) must not fuse.
  const DecodedEvent& decoded = ca->decoded_program().event(kEventPageFault);
  EXPECT_EQ(decoded.insts[1].kind, DispatchKind::kCompEq);
  EXPECT_EQ(decoded.insts[2].kind, DispatchKind::kJump);

  ExecResult result;
  RunBothAndCompare(ir, ca, sw, cb, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kOk);
  EXPECT_EQ(result.commands_executed, 5);  // 1, 2, 3, 2(taken), 4
  ExpectTracesIdentical(ir, sw);
}

// A fused Comp;Jump whose jump target was redirected to the trap slot at decode time must
// fail at the moment the branch is taken — identically to the unfused and reference paths.
TEST(DualPathFusionTest, FusedJumpOutOfRangeFailsIdentically) {
  auto make_program = [] {
    std::vector<Instruction> commands = {
        // 1: Comp s0 != s1 (both 0 → false, so the Jump is taken)
        Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch1,
                    static_cast<uint8_t>(CompOp::kNe)},
        // 2: Jump → 99 (out of range; decode redirects to trap slot 0)
        Instruction{Opcode::kJump, 0, 0, 99},
        // 3: Return (never reached)
        Instruction{Opcode::kReturn, 0, 0, 0},
    };
    return OneEvent(commands);
  };

  World ir(DispatchMode::kDecodedIr);
  World sw(DispatchMode::kReferenceSwitch);
  Container* ca = ir.MakeContainer(make_program());
  Container* cb = sw.MakeContainer(make_program());

  // The pair is eligible (slot 2 is not a jump target) and must have fused.
  const DecodedEvent& decoded = ca->decoded_program().event(kEventPageFault);
  EXPECT_EQ(decoded.insts[1].kind, DispatchKind::kFusedCompNeJump);

  ExecResult result;
  RunBothAndCompare(ir, ca, sw, cb, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_EQ(result.error, "control fell outside the command stream");
  EXPECT_EQ(result.commands_executed, 2);  // both halves charged before the trap fires
  ExpectTracesIdentical(ir, sw);
}

// Sustained control flow: the 100-iteration compare/branch/arithmetic loop. Checks the exact
// command count as well as the trace, so a dispatch bug cannot hide behind a short stream.
TEST(DualPathTest, ArithLoopTraceIsIdentical) {
  auto make_program = [] {
    EventBuilder b;
    auto loop = b.NewLabel();
    auto done = b.NewLabel();
    b.LoadImm(ops::kScratch0, 100);
    b.LoadImm(ops::kScratch1, 1);
    b.Bind(loop);
    b.Comp(ops::kScratch0, ops::kScratch1, CompOp::kGt);
    b.JumpIfFalse(done);
    b.Arith(ops::kScratch0, ops::kScratch1, ArithOp::kSub);
    b.JumpIfFalse(loop);
    b.Bind(done);
    b.Return(0);
    return OneEvent(b.Build());
  };
  World ir(DispatchMode::kDecodedIr);
  World sw(DispatchMode::kReferenceSwitch);
  Container* ca = ir.MakeContainer(make_program());
  Container* cb = sw.MakeContainer(make_program());
  ExecResult result;
  RunBothAndCompare(ir, ca, sw, cb, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kOk);
  // 2 LoadImm + 99 * (Comp, Jump, Arith, Jump) + final (Comp, Jump) + Return.
  EXPECT_EQ(result.commands_executed, 401);
  ExpectTracesIdentical(ir, sw);
  EXPECT_EQ(ca->operands().ReadInt(ops::kScratch0), 1);
  EXPECT_EQ(cb->operands().ReadInt(ops::kScratch0), 1);
}

// ------------------------------------------------------------------- error-path parity

// Both interpreters must fail the same way, with the same message, at the same point.
void ExpectSameError(PolicyProgram (*make_program)(), const std::string& substring) {
  World ir(DispatchMode::kDecodedIr);
  World sw(DispatchMode::kReferenceSwitch);
  Container* ca = ir.MakeContainer(make_program());
  Container* cb = sw.MakeContainer(make_program());
  ExecResult result;
  RunBothAndCompare(ir, ca, sw, cb, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find(substring), std::string::npos) << result.error;
  ExpectTracesIdentical(ir, sw);
}

TEST(DualPathErrorTest, TakenJumpToOutOfRangeTargetIsPolicyError) {
  // Condition is false at the Jump, so the jump to slot 200 (far past the 4-word stream) is
  // taken; both interpreters must report leaving the stream, not crash or execute garbage.
  ExpectSameError(
      [] {
        return OneEvent({Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch0,
                                     static_cast<uint8_t>(CompOp::kNe)},
                         Instruction{Opcode::kJump, 0, 0, 200},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "control fell outside the command stream");
}

TEST(DualPathErrorTest, JumpToMagicWordIsPolicyError) {
  ExpectSameError(
      [] {
        return OneEvent({Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch0,
                                     static_cast<uint8_t>(CompOp::kNe)},
                         Instruction{Opcode::kJump, 0, 0, 0},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "control fell outside the command stream");
}

TEST(DualPathErrorTest, TruncatedStreamFallsOffTheEnd) {
  // A stream with no Return: control runs past the last word. (SetEventRaw bypasses the
  // builder, which would always emit a Return.)
  ExpectSameError(
      [] {
        PolicyProgram p;
        p.SetEventRaw(kEventPageFault,
                      {kHipecMagic,
                       Instruction{Opcode::kArith, ops::kScratch0, 5,
                                   static_cast<uint8_t>(ArithOp::kLoadImm)}
                           .Encode()});
        EventBuilder reclaim;
        reclaim.Return(0);
        p.SetEvent(kEventReclaimFrame, reclaim.Build());
        return p;
      },
      "control fell outside the command stream");
}

TEST(DualPathErrorTest, InvalidOpcodeIsPolicyError) {
  ExpectSameError(
      [] {
        PolicyProgram p;
        p.SetEventRaw(kEventPageFault, {kHipecMagic, 0xBBu << 24});
        EventBuilder reclaim;
        reclaim.Return(0);
        p.SetEvent(kEventReclaimFrame, reclaim.Build());
        return p;
      },
      "invalid operator code");
}

TEST(DualPathErrorTest, DivisionByZeroMatches) {
  ExpectSameError(
      [] {
        EventBuilder b;
        b.LoadImm(ops::kScratch1, 0)
            .Arith(ops::kScratch0, ops::kScratch1, ArithOp::kDiv)
            .Return(0);
        return OneEvent(b.Build());
      },
      "division by zero");
}

// Operand-kind misuse reaches the interpreter only when the install-time scan is bypassed
// (these programs would be rejected by DecodeAndValidate). It must still be a clean
// PolicyError in both modes; the wording legitimately differs — the IR path reports the
// decode-time diagnostic, the reference path the first typed-accessor failure it hits at
// run time — so each mode asserts its own substring.
void ExpectKindError(PolicyProgram (*make_program)(), const std::string& ir_substring,
                     const std::string& sw_substring) {
  for (DispatchMode mode : {DispatchMode::kDecodedIr, DispatchMode::kReferenceSwitch}) {
    bool is_ir = mode == DispatchMode::kDecodedIr;
    SCOPED_TRACE(is_ir ? "decoded_ir" : "reference_switch");
    World w(mode);
    Container* c = w.MakeContainer(make_program());
    ExecResult result = w.executor.ExecuteEvent(c, kEventPageFault);
    EXPECT_EQ(result.outcome, ExecOutcome::kError);
    EXPECT_NE(result.error.find(is_ir ? ir_substring : sw_substring), std::string::npos)
        << result.error;
  }
}

TEST(DualPathErrorTest, MigrateOfNonPageOperandIsPolicyError) {
  ExpectKindError(
      [] {
        return OneEvent({Instruction{Opcode::kMigrate, ops::kFreeQueue, ops::kScratch0, 0},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "not a page variable", "expected a page operand");
}

TEST(DualPathErrorTest, UnlinkOfNonPageOperandIsPolicyError) {
  ExpectKindError(
      [] {
        return OneEvent({Instruction{Opcode::kUnlink, ops::kScratch0, 0, 0},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "not a page variable", "expected a page operand");
}

TEST(DualPathErrorTest, MigrateTargetMustBeAnInteger) {
  // The IR path diagnoses the queue-typed target at decode time; the reference path trips
  // over the (empty) page operand first, since it re-checks operands in execution order.
  ExpectKindError(
      [] {
        return OneEvent({Instruction{Opcode::kMigrate, ops::kPage, ops::kFreeQueue, 0},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "not an integer", "page variable is empty");
}

// ------------------------------------------------------------------- JIT parity
//
// The install-time template JIT (hipec/jit.h) against the production IR interpreter: same
// Table 2 policies, same drive loop, trace compared command by command. On hosts without an
// emitter DispatchMode::kJit degrades to the interpreter per event, so these tests still run
// (and then assert the fallback accounting instead of compiled execution).

const sim::CounterId kCtrJitEventsId = sim::InternCounter("executor.jit_events");
const sim::CounterId kCtrJitFallbacksId = sim::InternCounter("executor.jit_fallbacks");

void ExerciseTable2PolicyJit(const std::function<PolicyProgram()>& make_program,
                             HipecOptions options) {
  ExerciseTable2PolicyPaths(make_program, options, PathConfig{.mode = DispatchMode::kJit},
                            PathConfig{.mode = DispatchMode::kDecodedIr});
}

TEST(DualPathJitTest, Fifo) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::FifoPolicy(policies::CommandStyle::kSimple); },
                          options);
}

TEST(DualPathJitTest, FifoSecondChance) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::FifoSecondChancePolicy(); }, options);
}

TEST(DualPathJitTest, LruComplex) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::LruPolicy(policies::CommandStyle::kComplex); },
                          options);
}

TEST(DualPathJitTest, MruSimple) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::MruPolicy(policies::CommandStyle::kSimple); },
                          options);
}

TEST(DualPathJitTest, Clock) {
  HipecOptions options;
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::ClockPolicy(); }, options);
}

TEST(DualPathJitTest, TwoQueue) {
  HipecOptions options = policies::TwoQueueOptions();
  options.min_frames = 8;
  ExerciseTable2PolicyJit([] { return policies::TwoQueuePolicy(); }, options);
}

// Compiled code must fail exactly like the interpreter: same outcome, same message, same
// trace prefix, same command count.
void ExpectSameErrorJit(PolicyProgram (*make_program)(), const std::string& substring) {
  World jw(DispatchMode::kJit);
  World iw(DispatchMode::kDecodedIr);
  Container* ca = jw.MakeContainer(make_program());
  Container* cb = iw.MakeContainer(make_program());
  ExecResult result;
  RunBothAndCompare(jw, ca, iw, cb, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find(substring), std::string::npos) << result.error;
  ExpectTracesIdentical(jw, iw);
}

TEST(DualPathJitTest, TakenJumpOutsideStreamMatchesInterpreter) {
  ExpectSameErrorJit(
      [] {
        return OneEvent({Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch0,
                                     static_cast<uint8_t>(CompOp::kNe)},
                         Instruction{Opcode::kJump, 0, 0, 200},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "control fell outside the command stream");
}

TEST(DualPathJitTest, DivisionByZeroMatchesInterpreter) {
  ExpectSameErrorJit(
      [] {
        EventBuilder b;
        b.LoadImm(ops::kScratch1, 0)
            .Arith(ops::kScratch0, ops::kScratch1, ArithOp::kDiv)
            .Return(0);
        return OneEvent(b.Build());
      },
      "division by zero");
}

TEST(DualPathJitTest, EmptyDequeueMatchesInterpreter) {
  ExpectSameErrorJit(
      [] {
        return OneEvent({Instruction{Opcode::kDeQueue, ops::kPage, ops::kFreeQueue, 1},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "DeQueue from an empty queue");
}

TEST(DualPathJitTest, EmptyPageOperandMatchesInterpreter) {
  ExpectSameErrorJit(
      [] {
        return OneEvent({Instruction{Opcode::kRef, ops::kPage, 0, 0},
                         Instruction{Opcode::kReturn, 0, 0, 0}});
      },
      "page variable is empty");
}

// On hosts with an emitter, kJit means compiled execution — this pins the counters so a
// regression that silently falls back to the interpreter (and vacuously "matches" it) fails
// loudly instead of passing all the parity tests above.
TEST(DualPathJitTest, JitActuallyExecutesOnSupportedHosts) {
  World w(DispatchMode::kJit);
  Container* c = w.MakeContainer(OneEvent({Instruction{Opcode::kReturn, 0, 0, 0}}));
  ExecResult result = w.executor.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kOk);
  EXPECT_EQ(w.executor.counters().Get(kCtrJitEventsId), 1);
  if (jit::Available()) {
    EXPECT_NE(c->jit_program(), nullptr);
    EXPECT_EQ(w.executor.counters().Get(kCtrJitFallbacksId), 0);
  } else {
    EXPECT_EQ(w.executor.counters().Get(kCtrJitFallbacksId), 1);
  }
}

// Masking a kind must force the containing event (and only it) onto the interpreter, with
// identical observable behavior — this is how the non-x86 fallback path is exercised on
// x86_64 CI.
TEST(DualPathJitTest, MaskedKindFallsBackToInterpreterWithIdenticalTrace) {
  jit::SetUnsupportedKindForTesting(DispatchKind::kArithLoadImm, true);
  ExerciseTable2PolicyJit([] { return policies::FifoSecondChancePolicy(); },
                          [] {
                            HipecOptions options;
                            options.min_frames = 8;
                            return options;
                          }());
  jit::SetUnsupportedKindForTesting(DispatchKind::kArithLoadImm, false);

  // And the fallback was actually taken (not silently compiled anyway).
  jit::SetUnsupportedKindForTesting(DispatchKind::kReturn, true);
  World w(DispatchMode::kJit);
  Container* c = w.MakeContainer(OneEvent({Instruction{Opcode::kReturn, 0, 0, 0}}));
  ExecResult result = w.executor.ExecuteEvent(c, kEventPageFault);
  jit::SetUnsupportedKindForTesting(DispatchKind::kReturn, false);
  EXPECT_EQ(result.outcome, ExecOutcome::kOk);
  EXPECT_EQ(w.executor.counters().Get(kCtrJitFallbacksId), 1);
}

// Activate under the JIT: the bridge re-enters RunEventJit, so a nested event is itself
// compiled code, and recursion depth still errors at the interpreter's limit.
TEST(DualPathJitTest, ActivateNestsAndRecursionLimitMatches) {
  auto make_program = [] {
    PolicyProgram p;
    EventBuilder fault;
    fault.Activate(kEventReclaimFrame).Return(0);
    p.SetEvent(kEventPageFault, fault.Build());
    EventBuilder reclaim;
    reclaim.Return(0);
    p.SetEvent(kEventReclaimFrame, reclaim.Build());
    return p;
  };
  World jw(DispatchMode::kJit);
  World iw(DispatchMode::kDecodedIr);
  Container* ca = jw.MakeContainer(make_program());
  Container* cb = iw.MakeContainer(make_program());
  RunBothAndCompare(jw, ca, iw, cb, kEventPageFault);
  ExpectTracesIdentical(jw, iw);

  // Self-recursion: "Activate recursion too deep" surfaces identically through the bridge's
  // exception capture (the error is raised by the nested C++ frames, not the generated code).
  auto make_recursive = [] {
    PolicyProgram p;
    EventBuilder fault;
    fault.Activate(kEventPageFault).Return(0);
    p.SetEvent(kEventPageFault, fault.Build());
    EventBuilder reclaim;
    reclaim.Return(0);
    p.SetEvent(kEventReclaimFrame, reclaim.Build());
    return p;
  };
  World jr(DispatchMode::kJit);
  World ir2(DispatchMode::kDecodedIr);
  Container* cr = jr.MakeContainer(make_recursive());
  Container* ci = ir2.MakeContainer(make_recursive());
  ExecResult result;
  RunBothAndCompare(jr, cr, ir2, ci, kEventPageFault, &result);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find("recursion too deep"), std::string::npos) << result.error;
  ExpectTracesIdentical(jr, ir2);
}

// ------------------------------------------------------------------- IR consistency

// One valid instruction per opcode, so the KeepsCondition/SetsCondition agreement check
// below cannot silently skip an operator.
std::vector<Instruction> OnePerOpcode() {
  return {
      Instruction{Opcode::kJump, 0, 0, 1},
      Instruction{Opcode::kActivate, kEventReclaimFrame, 0, 0},
      Instruction{Opcode::kArith, ops::kScratch0, ops::kScratch1,
                  static_cast<uint8_t>(ArithOp::kAdd)},
      Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch1,
                  static_cast<uint8_t>(CompOp::kGt)},
      Instruction{Opcode::kLogic, ops::kScratch0, ops::kScratch1,
                  static_cast<uint8_t>(LogicOp::kAnd)},
      Instruction{Opcode::kEmptyQ, ops::kFreeQueue, 0, 0},
      Instruction{Opcode::kInQ, ops::kFreeQueue, ops::kPage, 0},
      Instruction{Opcode::kDeQueue, ops::kPage, ops::kFreeQueue, 1},
      Instruction{Opcode::kEnQueue, ops::kPage, ops::kFreeQueue, 1},
      Instruction{Opcode::kRequest, ops::kRequestSize, ops::kFreeQueue, 0},
      Instruction{Opcode::kRelease, ops::kFreeQueue, 0, 0},
      Instruction{Opcode::kFlush, ops::kPage, 0, 0},
      Instruction{Opcode::kSet, ops::kPage, 1, 1},
      Instruction{Opcode::kRef, ops::kPage, 0, 0},
      Instruction{Opcode::kMod, ops::kPage, 0, 0},
      Instruction{Opcode::kFind, ops::kPage, ops::kFaultAddr, 0},
      Instruction{Opcode::kFifo, ops::kFreeQueue, ops::kPage, 0},
      Instruction{Opcode::kLru, ops::kFreeQueue, ops::kPage, 0},
      Instruction{Opcode::kMru, ops::kFreeQueue, ops::kPage, 0},
      Instruction{Opcode::kMigrate, ops::kPage, ops::kScratch0, 0},
      Instruction{Opcode::kUnlink, ops::kPage, 0, 0},
      Instruction{Opcode::kWeightedSelect, ops::kFreeQueue, ops::kPage,
                  static_cast<uint8_t>(SelectMode::kMin)},
      Instruction{Opcode::kSatDotProduct, ops::kScratch0, ops::kResult, 1},
      Instruction{Opcode::kPageWord, ops::kPage, ops::kScratch0,
                  static_cast<uint8_t>(PageWordOp::kLoad)},
      Instruction{Opcode::kReturn, 0, 0, 0},
  };
}

// The IR's condition-flag classification must agree with the raw instruction set's: the
// interpreter clears the flag after exactly the commands SetsCondition says it should.
TEST(DecodedIrTest, KeepsConditionAgreesWithSetsConditionForEveryOpcode) {
  std::vector<Instruction> commands = OnePerOpcode();
  ASSERT_EQ(commands.size(), static_cast<size_t>(kOpcodeCount));

  World w(DispatchMode::kDecodedIr);
  Container* c = w.MakeContainer(OneEvent(commands));
  // Decode without superinstruction fusion so every opcode maps 1:1 onto an unfused kind —
  // a fused kind covers two opcodes and is checked separately (trace-equivalence tests).
  DecodedProgram unfused =
      DecodePolicy(c->program(), c->operands(), nullptr, /*fuse_superinstructions=*/false);
  const DecodedEvent& decoded = unfused.event(kEventPageFault);
  ASSERT_EQ(decoded.insts.size(), commands.size() + 2);  // + magic slot + end trap slot

  for (size_t cc = 1; cc <= commands.size(); ++cc) {
    const DecodedInst& d = decoded.insts[cc];
    ASSERT_NE(d.kind, DispatchKind::kTrapError)
        << "cc=" << cc << ": expected a cleanly decodable instruction";
    ASSERT_FALSE(IsFusedKind(d.kind)) << "cc=" << cc << ": unfused decode produced a fused kind";
    EXPECT_EQ(KeepsCondition(d.kind), SetsCondition(static_cast<Opcode>(d.raw_op)))
        << "cc=" << cc << " kind=" << static_cast<int>(d.kind);
  }
  // Library policies too, for good measure (they exercise fused sub-operations). These
  // decode with fusion on, as installed; fused kinds span two opcodes (e.g. Comp;Jump, where
  // SetsCondition differs between the halves), so the 1:1 agreement check skips them.
  for (const PolicyProgram& program :
       {policies::FifoSecondChancePolicy(), policies::ClockPolicy(),
        policies::TwoQueuePolicy()}) {
    DecodedProgram dp = DecodePolicy(program, c->operands());
    for (const DecodedEvent& ev : dp.events) {
      for (const DecodedInst& d : ev.insts) {
        if (d.kind == DispatchKind::kTrapError || d.kind == DispatchKind::kTrapOutside ||
            IsFusedKind(d.kind)) {
          continue;
        }
        EXPECT_EQ(KeepsCondition(d.kind), SetsCondition(static_cast<Opcode>(d.raw_op)));
      }
    }
  }
}

// The engine's install path must adopt the validator's IR (no second decode) and run it.
TEST(DecodedIrTest, EngineInstallAdoptsDecodedProgram) {
  mach::KernelParams params = SmallParams();
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 8;
  HipecRegion region = engine.VmAllocateHipec(task, 32 * kPageSize,
                                              policies::FifoSecondChancePolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  // The adopted IR is present and has both mandatory events.
  const DecodedProgram& dp = region.container->decoded_program();
  EXPECT_TRUE(dp.HasEvent(kEventPageFault));
  EXPECT_TRUE(dp.HasEvent(kEventReclaimFrame));
  EXPECT_TRUE(kernel.Touch(task, region.addr, false));
}

}  // namespace
}  // namespace hipec::core
