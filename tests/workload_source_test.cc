// Workload-layer tests (workloads/workload_source.h, workloads/registry.h): the
// byte-identical compatibility contract between MakePatternSource and the pre-refactor
// scenario generation, Clone/Seek/fan-out semantics, registry equivalence with the direct
// generator calls the benches used to make, and trace-backed scenario tenants running
// deterministically end to end.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "scenario/scenario.h"
#include "sim/random.h"
#include "workloads/access_patterns.h"
#include "workloads/registry.h"
#include "workloads/trace_format.h"
#include "workloads/workload_source.h"

namespace hipec::workloads {
namespace {

std::vector<Access> Drain(WorkloadSource& source) {
  std::vector<Access> out;
  Access a;
  while (source.Next(&a)) {
    out.push_back(a);
  }
  return out;
}

// Reference implementation of the pre-refactor stream: the exact generator call the
// scenario engine made for each kind, plus the write-flag derivation from seed + 1. The
// adapter must reproduce this byte for byte — this test is what pins the golden scenario
// fingerprints in place.
std::vector<std::pair<uint64_t, bool>> LegacyStream(const SyntheticSpec& spec,
                                                    uint64_t seed) {
  std::vector<uint64_t> pages;
  switch (spec.kind) {
    case PatternKind::kSequential:
      pages = StridedScan(spec.pages, 1, spec.accesses);
      break;
    case PatternKind::kCyclic: {
      pages = CyclicScan(spec.pages, spec.cyclic_loops);
      size_t n = pages.size();
      pages.resize(spec.accesses);
      for (size_t i = n; i < pages.size(); ++i) {
        pages[i] = pages[i % std::max<size_t>(n, 1)];
      }
      break;
    }
    case PatternKind::kUniform:
      pages = UniformRandom(spec.pages, spec.accesses, seed);
      break;
    case PatternKind::kZipf:
      pages = ZipfTrace(spec.pages, spec.accesses, spec.zipf_theta, seed);
      break;
    case PatternKind::kStrided:
      pages = StridedScan(spec.pages, spec.stride, spec.accesses);
      break;
    case PatternKind::kHotCold:
      pages = HotColdTrace(spec.pages, spec.hot_pages, spec.hot_fraction, spec.accesses,
                           seed);
      break;
    case PatternKind::kBursty:
      pages = BurstyTrace(spec.pages, spec.burst_phase, spec.accesses, seed);
      break;
  }
  sim::Rng write_rng(seed + 1);
  std::vector<std::pair<uint64_t, bool>> out;
  out.reserve(pages.size());
  for (uint64_t page : pages) {
    out.emplace_back(page, write_rng.Chance(spec.write_fraction));
  }
  return out;
}

TEST(PatternCompat, EveryKindMatchesLegacyGenerationByteForByte) {
  const PatternKind kinds[] = {PatternKind::kSequential, PatternKind::kCyclic,
                               PatternKind::kUniform,    PatternKind::kZipf,
                               PatternKind::kStrided,    PatternKind::kHotCold,
                               PatternKind::kBursty};
  for (PatternKind kind : kinds) {
    for (uint64_t seed : {1ull, 42ull, 0x5CE11A0ull}) {
      SyntheticSpec spec;
      spec.kind = kind;
      spec.pages = 96;
      spec.accesses = 700;
      spec.write_fraction = 0.3;
      auto expected = LegacyStream(spec, seed);
      auto source = MakePatternSource(spec, seed);
      ASSERT_NE(source, nullptr);
      EXPECT_EQ(source->region_pages(), spec.pages);
      std::vector<Access> got = Drain(*source);
      ASSERT_EQ(got.size(), expected.size())
          << "kind " << static_cast<int>(kind) << " seed " << seed;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].vpage, expected[i].first)
            << "kind " << static_cast<int>(kind) << " seed " << seed << " index " << i;
        ASSERT_EQ(got[i].is_write(), expected[i].second)
            << "kind " << static_cast<int>(kind) << " seed " << seed << " index " << i;
      }
    }
  }
}

TEST(PatternCompat, ScenarioMaterializeTraceRoutesThroughAdapter) {
  scenario::TenantSpec tenant;
  tenant.pattern = PatternKind::kZipf;
  tenant.pages = 200;
  tenant.accesses = 900;
  tenant.write_fraction = 0.25;
  tenant.zipf_theta = 0.7;
  auto flat = scenario::MaterializeTrace(tenant, 0x5CE11A0, 2);
  auto source = scenario::MaterializeSource(tenant, 0x5CE11A0, 2);
  ASSERT_NE(source, nullptr);
  std::vector<Access> pulled = Drain(*source);
  ASSERT_EQ(flat.size(), pulled.size());
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i].first, pulled[i].vpage);
    EXPECT_EQ(flat[i].second, pulled[i].is_write());
  }
}

TEST(PatternCompat, TenantOrdinalsGetIndependentStreams) {
  scenario::TenantSpec tenant;
  tenant.pattern = PatternKind::kUniform;
  tenant.pages = 128;
  tenant.accesses = 400;
  auto a = scenario::MaterializeTrace(tenant, 7, 0);
  auto b = scenario::MaterializeTrace(tenant, 7, 1);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);  // different ordinal → different derived seed → different stream
  // Same (seed, ordinal) is reproducible.
  EXPECT_EQ(a, scenario::MaterializeTrace(tenant, 7, 0));
}

TEST(SourceSemantics, SeekClampsAndResumes) {
  SyntheticSpec spec;
  spec.kind = PatternKind::kSequential;
  spec.pages = 10;
  spec.accesses = 10;
  auto source = MakePatternSource(spec, 1);
  Access a;
  ASSERT_TRUE(source->Next(&a));
  EXPECT_EQ(a.vpage, 0u);
  source->Seek(7);
  EXPECT_EQ(source->pos(), 7u);
  ASSERT_TRUE(source->Next(&a));
  EXPECT_EQ(a.vpage, 7u);
  source->Seek(999);  // clamps to size
  EXPECT_EQ(source->pos(), 10u);
  EXPECT_FALSE(source->Next(&a));
  source->Reset();
  EXPECT_EQ(source->pos(), 0u);
  ASSERT_TRUE(source->Next(&a));
  EXPECT_EQ(a.vpage, 0u);
}

TEST(SourceSemantics, WorkloadSharedFansOutWithoutCopying) {
  auto records = std::make_shared<std::vector<Access>>();
  for (uint64_t i = 0; i < 50; ++i) {
    Access a;
    a.vpage = i % 10;
    records->push_back(a);
  }
  auto base = std::make_shared<MaterializedSource>("shared", 10, records);
  Workload w = Workload::Shared(base);
  ASSERT_TRUE(w.set());
  auto one = w.Instantiate(1);
  auto two = w.Instantiate(2);  // seed is ignored for shared sources
  auto* m1 = dynamic_cast<MaterializedSource*>(one.get());
  auto* m2 = dynamic_cast<MaterializedSource*>(two.get());
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m1->records(), records.get());
  EXPECT_EQ(m2->records(), records.get());
  EXPECT_EQ(Drain(*one), Drain(*two));
}

TEST(SourceSemantics, WorkloadPatternSeedsAtInstantiate) {
  SyntheticSpec spec;
  spec.kind = PatternKind::kUniform;
  spec.pages = 64;
  spec.accesses = 200;
  Workload w = Workload::Pattern(spec);
  auto a = Drain(*w.Instantiate(3));
  auto b = Drain(*w.Instantiate(4));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Drain(*w.Instantiate(3)));
  EXPECT_FALSE(Workload().set());
  EXPECT_EQ(Workload().Instantiate(1), nullptr);
}

// The registry must serve exactly the streams the benches used to build inline — the
// leaderboard's workload names keep meaning the same reference strings.
TEST(Registry, TournamentGridMatchesDirectGeneratorCalls) {
  auto grid = TournamentWorkloads();
  ASSERT_EQ(grid.size(), 5u);
  const struct {
    const char* name;
    std::vector<uint64_t> pages;
  } expected[] = {
      {"hot_cold", HotColdTrace(512, 64, 0.9, 8000, 11)},
      {"looping", CyclicScan(288, 24)},
      {"zipf", ZipfTrace(512, 8000, 0.9, 17)},
      {"uniform", UniformRandom(512, 8000, 23)},
      {"scan_mix", ScanMixTrace(128, 0.9, 31, 2400, 300, 2400)},
  };
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(grid[i].name, expected[i].name);
    EXPECT_EQ(grid[i].region_pages, 512u);
    EXPECT_FALSE(grid[i].trace);
    auto clone = grid[i].source->Clone();
    std::vector<Access> got = Drain(*clone);
    ASSERT_EQ(got.size(), expected[i].pages.size()) << grid[i].name;
    for (size_t j = 0; j < got.size(); ++j) {
      ASSERT_EQ(got[j].vpage, expected[i].pages[j]) << grid[i].name << " index " << j;
      ASSERT_FALSE(got[j].is_write());
    }
  }
}

TEST(Registry, ComparisonColumnsMatchDirectGeneratorCalls) {
  auto cols = ComparisonWorkloads();
  ASSERT_EQ(cols.size(), 4u);
  EXPECT_EQ(cols[0].name, "cyclic");
  EXPECT_EQ(cols[3].name, "mixed");
  auto mixed = ScanMixTrace(96, 0.9, 31, 1200, 150, 1200);
  auto clone = cols[3].source->Clone();
  std::vector<Access> got = Drain(*clone);
  ASSERT_EQ(got.size(), mixed.size());
  for (size_t j = 0; j < got.size(); ++j) {
    ASSERT_EQ(got[j].vpage, mixed[j]);
  }
}

TEST(Registry, LoadTraceDirSkipsMalformedAndSortsByFilename) {
  std::string dir = testing::TempDir() + "/workload_source_test_traces";
  std::filesystem::create_directories(dir);
  TraceData t;
  t.name = "good";
  t.region_pages = 4;
  Access a;
  a.vpage = 1;
  t.records.push_back(a);
  std::string error;
  ASSERT_TRUE(WriteTraceFile(dir + "/b_good.hpt", t, &error)) << error;
  {
    std::ofstream bad(dir + "/a_bad.hpt", std::ios::binary);
    bad << "this is not a trace";
  }
  std::string load_error;
  auto loaded = LoadTraceDir(dir, &load_error);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].name, "good");
  EXPECT_TRUE(loaded[0].trace);
  EXPECT_EQ(loaded[0].region_pages, 4u);
  EXPECT_FALSE(load_error.empty());  // the malformed file is reported, not fatal
  std::filesystem::remove_all(dir);
}

// A trace-backed tenant runs through the full scenario engine deterministically: the
// region widens to the trace's region_pages, the tenant completes, and two runs produce
// byte-identical fingerprints.
TEST(ScenarioReplay, TraceBackedTenantIsDeterministic) {
  auto records = std::make_shared<std::vector<Access>>();
  sim::Rng rng(99);
  for (int i = 0; i < 600; ++i) {
    Access a;
    a.vpage = rng.Below(300);
    a.op = rng.Chance(0.2) ? AccessOp::kWrite : AccessOp::kRead;
    records->push_back(a);
  }
  auto source = std::make_shared<MaterializedSource>("replay-trace", 300, records);

  scenario::ScenarioSpec spec;
  spec.name = "trace-replay";
  spec.steps = 16;
  spec.slice_accesses = 64;
  scenario::TenantSpec tenant;
  tenant.name = "replayer";
  tenant.policy = scenario::PolicyKind::kLru;
  tenant.workload = Workload::Shared(source);
  tenant.pages = 8;  // deliberately smaller than the trace region; engine must widen
  tenant.min_frames = 32;
  spec.tenants.push_back(tenant);

  scenario::ScenarioResult first = scenario::RunScenario(spec);
  scenario::ScenarioResult second = scenario::RunScenario(spec);
  ASSERT_EQ(first.tenants.size(), 1u);
  EXPECT_TRUE(first.tenants[0].admitted);
  EXPECT_TRUE(first.tenants[0].completed);
  EXPECT_EQ(first.tenants[0].accesses_done, records->size());
  EXPECT_GT(first.tenants[0].faults_handled, 0);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

}  // namespace
}  // namespace hipec::workloads
