// Unit tests for the simulation substrate: virtual clock, events, RNG, stats.
#include <gtest/gtest.h>

#include <vector>

#include "sim/check.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace hipec::sim {
namespace {

TEST(VirtualClockTest, StartsAtZero) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0);
  EXPECT_EQ(clock.pending_events(), 0u);
  EXPECT_EQ(clock.next_deadline(), -1);
}

TEST(VirtualClockTest, AdvanceMovesTime) {
  VirtualClock clock;
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100);
  clock.Advance(0);
  EXPECT_EQ(clock.now(), 100);
}

TEST(VirtualClockTest, NegativeAdvanceThrows) {
  VirtualClock clock;
  EXPECT_THROW(clock.Advance(-1), CheckFailure);
}

TEST(VirtualClockTest, EventFiresAtDeadline) {
  VirtualClock clock;
  Nanos fired_at = -1;
  clock.ScheduleAt(50, [&] { fired_at = clock.now(); });
  clock.Advance(49);
  EXPECT_EQ(fired_at, -1);
  clock.Advance(1);
  EXPECT_EQ(fired_at, 50);
}

TEST(VirtualClockTest, EventsFireInDeadlineOrder) {
  VirtualClock clock;
  std::vector<int> order;
  clock.ScheduleAt(30, [&] { order.push_back(3); });
  clock.ScheduleAt(10, [&] { order.push_back(1); });
  clock.ScheduleAt(20, [&] { order.push_back(2); });
  clock.Advance(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualClockTest, SameDeadlineFiresInScheduleOrder) {
  VirtualClock clock;
  std::vector<int> order;
  clock.ScheduleAt(10, [&] { order.push_back(1); });
  clock.ScheduleAt(10, [&] { order.push_back(2); });
  clock.Advance(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VirtualClockTest, CallbackObservesItsDeadlineAsNow) {
  VirtualClock clock;
  Nanos seen = -1;
  clock.ScheduleAt(25, [&] { seen = clock.now(); });
  clock.Advance(1000);
  EXPECT_EQ(seen, 25);
  EXPECT_EQ(clock.now(), 1000);
}

TEST(VirtualClockTest, CallbackMayScheduleFurtherEventsWithinHorizon) {
  VirtualClock clock;
  std::vector<Nanos> fires;
  clock.ScheduleAt(10, [&] {
    fires.push_back(clock.now());
    clock.ScheduleAfter(5, [&] { fires.push_back(clock.now()); });
  });
  clock.Advance(100);
  EXPECT_EQ(fires, (std::vector<Nanos>{10, 15}));
}

TEST(VirtualClockTest, AdvanceInsideCallbackThrows) {
  VirtualClock clock;
  bool threw = false;
  clock.ScheduleAt(10, [&] {
    try {
      clock.Advance(1);
    } catch (const CheckFailure&) {
      threw = true;
    }
  });
  clock.Advance(20);
  EXPECT_TRUE(threw);
}

TEST(VirtualClockTest, CancelPreventsFiring) {
  VirtualClock clock;
  int fired = 0;
  auto id = clock.ScheduleAt(10, [&] { ++fired; });
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));
  clock.Advance(100);
  EXPECT_EQ(fired, 0);
}

TEST(VirtualClockTest, PeriodicRescheduleChain) {
  VirtualClock clock;
  int fires = 0;
  std::function<void()> tick = [&] {
    ++fires;
    if (fires < 5) {
      clock.ScheduleAfter(100, tick);
    }
  };
  clock.ScheduleAfter(100, tick);
  clock.Advance(10'000);
  EXPECT_EQ(fires, 5);
}

TEST(VirtualClockTest, SchedulingInPastThrows) {
  VirtualClock clock;
  clock.Advance(100);
  EXPECT_THROW(clock.ScheduleAt(50, [] {}), CheckFailure);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.Between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(ZipfTest, SkewsTowardLowRanks) {
  ZipfGenerator zipf(1000, 0.9, 123);
  int low = 0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    uint64_t r = zipf.Next();
    EXPECT_LT(r, 1000u);
    if (r < 100) {
      ++low;
    }
  }
  // With theta=0.9, far more than 10% of draws hit the hottest 10% of ranks.
  EXPECT_GT(low, kDraws / 2);
}

TEST(LatencyRecorderTest, SummaryStatistics) {
  LatencyRecorder rec;
  for (Nanos v : {5, 1, 9, 3, 7}) {
    rec.Record(v);
  }
  EXPECT_EQ(rec.count(), 5u);
  EXPECT_EQ(rec.sum(), 25);
  EXPECT_DOUBLE_EQ(rec.Mean(), 5.0);
  EXPECT_EQ(rec.Min(), 1);
  EXPECT_EQ(rec.Max(), 9);
  EXPECT_EQ(rec.Percentile(50), 5);
  EXPECT_EQ(rec.Percentile(100), 9);
}

TEST(LatencyRecorderTest, RecordAfterSortedQueryStillWorks) {
  LatencyRecorder rec;
  rec.Record(10);
  EXPECT_EQ(rec.Min(), 10);
  rec.Record(5);
  EXPECT_EQ(rec.Min(), 5);
}

TEST(CounterSetTest, AddAndGet) {
  CounterSet counters;
  EXPECT_EQ(counters.Get("x"), 0);
  counters.Add("x");
  counters.Add("x", 4);
  EXPECT_EQ(counters.Get("x"), 5);
}

TEST(CounterRegistryTest, InternIsIdempotentAndRoundTrips) {
  CounterRegistry& registry = CounterRegistry::Instance();
  CounterId id = registry.Intern("registry_test.round_trip");
  EXPECT_EQ(registry.Intern("registry_test.round_trip"), id);  // duplicate registration
  EXPECT_EQ(registry.NameOf(id), "registry_test.round_trip");
  EXPECT_EQ(registry.Find("registry_test.round_trip"), id);

  CounterId other = registry.Intern("registry_test.other");
  EXPECT_NE(other, id);
  EXPECT_EQ(registry.NameOf(other), "registry_test.other");
}

TEST(CounterRegistryTest, FindOfUnknownNameDoesNotIntern) {
  CounterRegistry& registry = CounterRegistry::Instance();
  size_t size_before = registry.size();
  EXPECT_EQ(registry.Find("registry_test.never_interned"), CounterRegistry::kInvalid);
  EXPECT_EQ(registry.size(), size_before);

  // Get() by an unknown string reports 0 without registering the name.
  CounterSet counters;
  EXPECT_EQ(counters.Get("registry_test.never_interned"), 0);
  EXPECT_EQ(registry.size(), size_before);
}

TEST(CounterRegistryTest, IdAndStringApisHitTheSameCounter) {
  CounterId id = InternCounter("registry_test.same_counter");
  CounterSet counters;
  counters.Add(id, 3);
  counters.Add("registry_test.same_counter", 4);
  EXPECT_EQ(counters.Get(id), 7);
  EXPECT_EQ(counters.Get("registry_test.same_counter"), 7);
  EXPECT_EQ(counters.all().at("registry_test.same_counter"), 7);
}

TEST(CounterSetTest, ClearZeroesEverything) {
  CounterSet counters;
  CounterId id = InternCounter("registry_test.clear_me");
  counters.Add(id, 41);
  counters.Add("registry_test.clear_me_too", 1);
  counters.Clear();
  EXPECT_EQ(counters.Get(id), 0);
  EXPECT_EQ(counters.Get("registry_test.clear_me_too"), 0);
  EXPECT_TRUE(counters.all().empty());
  counters.Add(id);  // still usable after Clear
  EXPECT_EQ(counters.Get(id), 1);
}

TEST(CounterSetTest, LegacyStringLookupModeKeepsValuesIdentical) {
  // The A/B switch bench_faultpath uses to price the pre-interning counter path must only
  // change per-call cost, never observable values.
  CounterId id = InternCounter("registry_test.legacy_mode");
  CounterSet counters;
  counters.Add(id, 2);
  CounterSet::SetLegacyStringLookups(true);
  EXPECT_TRUE(CounterSet::legacy_string_lookups());
  counters.Add(id, 3);
  counters.Add("registry_test.legacy_mode", 4);
  CounterSet::SetLegacyStringLookups(false);
  counters.Add(id, 5);
  EXPECT_EQ(counters.Get(id), 14);
  EXPECT_EQ(counters.Get("registry_test.legacy_mode"), 14);
  EXPECT_EQ(counters.all().at("registry_test.legacy_mode"), 14);
}

TEST(CounterSetTest, ToStringListsNonZeroCountersSorted) {
  CounterSet counters;
  counters.Add("registry_test.b_second", 2);
  counters.Add("registry_test.a_first", 1);
  EXPECT_EQ(counters.ToString(),
            "registry_test.a_first=1\nregistry_test.b_second=2\n");
}

TEST(FormatNanosTest, PicksUnits) {
  EXPECT_EQ(FormatNanos(150), "150 ns");
  EXPECT_EQ(FormatNanos(19 * kMicrosecond), "19.0 us");
  EXPECT_EQ(FormatNanos(4016'500'000), "4016.5 ms");
  EXPECT_EQ(FormatNanos(82 * kSecond), "82000.0 ms");
  EXPECT_EQ(FormatNanos(200 * kSecond), "200.000 s");
}

TEST(CostModelTest, CalibratedAgainstPaperTable4) {
  CostModel costs;
  EXPECT_EQ(costs.null_syscall_ns, 19'000);
  EXPECT_EQ(costs.null_ipc_ns, 292'000);
  // "Simple HiPEC page fault overhead ~= 150 nsec" = fetch+decode of Comp, DeQueue, Return.
  EXPECT_EQ(3 * costs.command_decode_ns, 150);
  EXPECT_LT(costs.HipecDecisionNs(3), costs.UpcallDecisionNs());
  EXPECT_LT(costs.UpcallDecisionNs(), costs.IpcDecisionNs());
}

TEST(CheckTest, ThrowsWithMessage) {
  try {
    HIPEC_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("math broke: 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace hipec::sim
