// Tests for the bench JSON emitter: one object per line with real escaping, so bench names
// and free-text values can never produce unparseable CI perf-gate input.
#include <gtest/gtest.h>

#include <string>

#include "bench_util.h"

namespace hipec::bench {
namespace {

TEST(JsonLineTest, KeysInInsertionOrder) {
  JsonLine json;
  std::string out =
      json.Str("bench", "faultpath").Int("n", 42).Num("rate", 0.5, 2).Finish();
  EXPECT_EQ(out, "{\"bench\":\"faultpath\",\"n\":42,\"rate\":0.50}");
}

TEST(JsonLineTest, FinishResetsForReuse) {
  JsonLine json;
  EXPECT_EQ(json.Int("a", 1).Finish(), "{\"a\":1}");
  EXPECT_EQ(json.Int("b", 2).Finish(), "{\"b\":2}");
}

TEST(JsonLineTest, EscapesQuotesAndBackslashes) {
  JsonLine json;
  std::string out = json.Str("name", "say \"hi\" C:\\tmp").Finish();
  EXPECT_EQ(out, "{\"name\":\"say \\\"hi\\\" C:\\\\tmp\"}");
}

TEST(JsonLineTest, EscapesControlCharacters) {
  JsonLine json;
  std::string out = json.Str("s", std::string("a\nb\tc\rd") + '\x01').Finish();
  EXPECT_EQ(out, "{\"s\":\"a\\nb\\tc\\rd\\u0001\"}");
}

TEST(JsonLineTest, EscapesKeysToo) {
  JsonLine json;
  EXPECT_EQ(json.Int("k\"ey", 1).Finish(), "{\"k\\\"ey\":1}");
}

TEST(JsonLineTest, NegativeAndLargeInts) {
  JsonLine json;
  EXPECT_EQ(json.Int("neg", -7).Int("big", 9007199254740993LL).Finish(),
            "{\"neg\":-7,\"big\":9007199254740993}");
}

}  // namespace
}  // namespace hipec::bench
