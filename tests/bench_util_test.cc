// Tests for the bench JSON emitter: one object per line with real escaping, so bench names
// and free-text values can never produce unparseable CI perf-gate input.
#include <gtest/gtest.h>

#include <string>

#include "bench_util.h"

namespace hipec::bench {
namespace {

TEST(JsonLineTest, KeysInInsertionOrder) {
  JsonLine json;
  std::string out =
      json.Str("bench", "faultpath").Int("n", 42).Num("rate", 0.5, 2).Finish();
  EXPECT_EQ(out, "{\"bench\":\"faultpath\",\"n\":42,\"rate\":0.50}");
}

TEST(JsonLineTest, FinishResetsForReuse) {
  JsonLine json;
  EXPECT_EQ(json.Int("a", 1).Finish(), "{\"a\":1}");
  EXPECT_EQ(json.Int("b", 2).Finish(), "{\"b\":2}");
}

TEST(JsonLineTest, EscapesQuotesAndBackslashes) {
  JsonLine json;
  std::string out = json.Str("name", "say \"hi\" C:\\tmp").Finish();
  EXPECT_EQ(out, "{\"name\":\"say \\\"hi\\\" C:\\\\tmp\"}");
}

TEST(JsonLineTest, EscapesControlCharacters) {
  JsonLine json;
  std::string out = json.Str("s", std::string("a\nb\tc\rd") + '\x01').Finish();
  EXPECT_EQ(out, "{\"s\":\"a\\nb\\tc\\rd\\u0001\"}");
}

TEST(JsonLineTest, EscapesKeysToo) {
  JsonLine json;
  EXPECT_EQ(json.Int("k\"ey", 1).Finish(), "{\"k\\\"ey\":1}");
}

TEST(JsonLineTest, NegativeAndLargeInts) {
  JsonLine json;
  EXPECT_EQ(json.Int("neg", -7).Int("big", 9007199254740993LL).Finish(),
            "{\"neg\":-7,\"big\":9007199254740993}");
}

// Emit() stamps every line with the build/config provenance the perf gate matches on;
// FinishWithProvenance is the testable form of what Emit prints.
TEST(JsonLineTest, EmittedLinesCarryConfigProvenance) {
  JsonLine json;
  std::string out = json.Str("bench", "faultpath").FinishWithProvenance();
  EXPECT_NE(out.find("\"cfg_dispatch\":\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"cfg_jit\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"cfg_probes\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"cfg_sanitizer\":\""), std::string::npos) << out;
  // Still one well-formed object: payload first, provenance appended before the brace.
  EXPECT_EQ(out.find("{\"bench\":\"faultpath\",\"cfg_dispatch\""), 0u) << out;
  EXPECT_EQ(out.back(), '}');
}

TEST(JsonLineTest, ProvenanceMatchesCompileTimeConfig) {
  JsonLine json;
  std::string out = json.Int("x", 1).FinishWithProvenance();
#if defined(__GNUC__)
  EXPECT_NE(out.find("\"cfg_dispatch\":\"threaded\""), std::string::npos) << out;
#else
  EXPECT_NE(out.find("\"cfg_dispatch\":\"switch\""), std::string::npos) << out;
#endif
  const std::string probes =
      std::string("\"cfg_probes\":") + (obs::ProbesCompiledIn() ? "1" : "0");
  EXPECT_NE(out.find(probes), std::string::npos) << out;
}

TEST(JsonLineTest, ProvenanceOnEmptyObjectIsWellFormed) {
  JsonLine json;
  std::string out = json.FinishWithProvenance();
  EXPECT_EQ(out.find("{\"cfg_dispatch\""), 0u) << out;
}

}  // namespace
}  // namespace hipec::bench
