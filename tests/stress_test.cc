// Randomized stress and property tests: many applications (specific and non-specific) doing
// random operations against one kernel, with the global invariants checked throughout.
//
// Invariants exercised (DESIGN.md §5):
//   1. frame conservation (free + queues + private pools + wired == total)
//   2. queue sanity (counts match traversal; each page on <= 1 queue)
//   3. the executor never crashes the "kernel" — worst case is application termination
//   8. total specific frames never exceed partition_burst after a reclamation round
#include <gtest/gtest.h>

#include <vector>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/random.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;
using mach::kPageSize;

struct App {
  mach::Task* task = nullptr;
  HipecRegion region;  // !ok for non-specific apps
  uint64_t addr = 0;
  uint64_t pages = 0;
};

class StressWorld {
 public:
  explicit StressWorld(uint64_t seed) : rng_(seed) {
    mach::KernelParams params;
    params.total_frames = 2048;
    params.kernel_reserved_frames = 256;
    params.pageout.free_target = 32;
    params.pageout.free_min = 8;
    params.pageout.inactive_target = 64;
    params.hipec_build = true;
    kernel_ = std::make_unique<mach::Kernel>(params);
    engine_ = std::make_unique<HipecEngine>(kernel_.get(), FrameManagerConfig{0.6, 32});
  }

  void Step() {
    switch (rng_.Below(20)) {
      case 0:
        SpawnSpecific();
        break;
      case 1:
        SpawnNonSpecific();
        break;
      case 2:
        KillSomeone();
        break;
      case 3:
        RequestMore();
        break;
      default:
        TouchSomething();
        break;
    }
  }

  void CheckInvariants() {
    mach::FrameAccounting acc = kernel_->ComputeFrameAccounting();
    ASSERT_EQ(acc.unaccounted, 0u);
    ASSERT_EQ(acc.Sum(), acc.total);
    // Queue counts match traversal.
    auto& daemon = kernel_->daemon();
    size_t shard_sum = 0;
    for (size_t i = 0; i < daemon.free_pool().shard_count(); ++i) {
      const mach::PageQueue& shard = daemon.free_pool().shard_queue(i);
      ASSERT_EQ(shard.count(), shard.CountByTraversal());
      shard_sum += shard.count();
    }
    ASSERT_EQ(daemon.free_pool().count(), shard_sum);
    size_t active_sum = 0;
    size_t inactive_sum = 0;
    for (size_t i = 0; i < daemon.queue_shard_count(); ++i) {
      ASSERT_EQ(daemon.active_queue(i).count(), daemon.active_queue(i).CountByTraversal());
      ASSERT_EQ(daemon.inactive_queue(i).count(), daemon.inactive_queue(i).CountByTraversal());
      active_sum += daemon.active_queue(i).count();
      inactive_sum += daemon.inactive_queue(i).count();
    }
    ASSERT_EQ(daemon.active_count(), active_sum);
    ASSERT_EQ(daemon.inactive_count(), inactive_sum);
    for (Container* c : engine_->manager().containers()) {
      ASSERT_EQ(c->free_q().count(), c->free_q().CountByTraversal());
      ASSERT_EQ(c->active_q().count(), c->active_q().CountByTraversal());
    }
    // The burst watermark bounds specific allocations.
    ASSERT_LE(engine_->manager().total_specific(), engine_->manager().partition_burst());
  }

  void FinishAll() {
    for (App& app : apps_) {
      if (!app.task->terminated()) {
        kernel_->TerminateTask(app.task, "stress teardown");
      }
    }
    ASSERT_EQ(engine_->manager().total_specific(), 0u);
  }

  size_t live_apps() const { return apps_.size(); }
  HipecEngine& engine() { return *engine_; }

 private:
  PolicyProgram RandomPolicy() {
    switch (rng_.Below(4)) {
      case 0:
        return policies::FifoSecondChancePolicy();
      case 1:
        return policies::MruPolicy(policies::CommandStyle::kSimple);
      case 2:
        return policies::LruPolicy(policies::CommandStyle::kComplex);
      default:
        return policies::FifoPolicy(policies::CommandStyle::kSimple);
    }
  }

  void SpawnSpecific() {
    if (apps_.size() >= 12) {
      return;
    }
    App app;
    app.task = kernel_->CreateTask("specific");
    app.pages = 32 + rng_.Below(96);
    HipecOptions options;
    options.min_frames = 16 + rng_.Below(64);
    options.free_target = 4;
    options.inactive_target = 8;
    options.strict_accounting = rng_.Chance(0.5);
    app.region = engine_->VmAllocateHipec(app.task, app.pages * kPageSize, RandomPolicy(),
                                          options);
    if (!app.region.ok) {
      // Admission denied: runs as a non-specific application (the paper's §4.3.1 fallback).
      app.addr = kernel_->VmAllocate(app.task, app.pages * kPageSize);
    } else {
      app.addr = app.region.addr;
    }
    apps_.push_back(app);
  }

  void SpawnNonSpecific() {
    if (apps_.size() >= 12) {
      return;
    }
    App app;
    app.task = kernel_->CreateTask("plain");
    app.pages = 64 + rng_.Below(256);
    app.addr = kernel_->VmAllocate(app.task, app.pages * kPageSize);
    apps_.push_back(app);
  }

  void KillSomeone() {
    if (apps_.empty()) {
      return;
    }
    size_t i = rng_.Below(apps_.size());
    kernel_->TerminateTask(apps_[i].task, "stress kill");
    apps_.erase(apps_.begin() + static_cast<ptrdiff_t>(i));
  }

  void RequestMore() {
    for (App& app : apps_) {
      if (app.region.ok && !app.task->terminated()) {
        // Grant or reject — either is fine; the invariants must hold regardless.
        engine_->manager().RequestFrames(app.region.container, 8 + rng_.Below(32),
                                         &app.region.container->free_q());
        return;
      }
    }
  }

  void TouchSomething() {
    if (apps_.empty()) {
      return;
    }
    App& app = apps_[rng_.Below(apps_.size())];
    if (app.task->terminated()) {
      return;
    }
    for (int i = 0; i < 16; ++i) {
      uint64_t page = rng_.Below(app.pages);
      if (!kernel_->Touch(app.task, app.addr + page * kPageSize, rng_.Chance(0.5))) {
        break;  // terminated mid-burst (policy error etc.) — allowed
      }
    }
  }

  sim::Rng rng_;
  std::unique_ptr<mach::Kernel> kernel_;
  std::unique_ptr<HipecEngine> engine_;
  std::vector<App> apps_;
};

class StressTest : public ::testing::TestWithParam<int> {};

TEST_P(StressTest, InvariantsHoldUnderRandomOperations) {
  StressWorld world(static_cast<uint64_t>(GetParam()) * 0x9E3779B9ULL + 1);
  for (int step = 0; step < 600; ++step) {
    world.Step();
    if (step % 25 == 0) {
      world.CheckInvariants();
    }
  }
  world.CheckInvariants();
  world.FinishAll();
  world.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressTest, ::testing::Range(1, 13));

// Random *garbage* programs must never corrupt the kernel: either they are rejected
// statically, or they run and the worst outcome is application termination. Frame
// conservation holds either way.
class GarbageProgramTest : public ::testing::TestWithParam<int> {};

TEST_P(GarbageProgramTest, GarbagePoliciesCannotCorruptTheKernel) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()) * 77777ULL + 3);
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel);
  engine.executor().set_max_commands(100'000);  // keep runaway garbage cheap

  int accepted = 0;
  for (int round = 0; round < 40; ++round) {
    PolicyProgram program;
    for (int event = 0; event < 2; ++event) {
      std::vector<uint32_t> words{kHipecMagic};
      size_t n = 1 + rng.Below(12);
      for (size_t i = 0; i < n; ++i) {
        // Mostly-plausible garbage: valid opcodes with random operands, plus raw noise.
        uint32_t word = rng.Chance(0.7)
                            ? (rng.Below(kOpcodeCount) << 24) |
                                  static_cast<uint32_t>(rng.Next() & 0x00FF'FFFF)
                            : static_cast<uint32_t>(rng.Next());
        words.push_back(word);
      }
      words.push_back(Instruction{Opcode::kReturn, 0, 0, 0}.Encode());
      program.SetEventRaw(event, words);
    }

    mach::Task* task = kernel.CreateTask("garbage");
    HipecOptions options;
    options.min_frames = 8;
    HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, program, options);
    if (region.ok) {
      ++accepted;
      kernel.Touch(task, region.addr, false);   // may terminate the task; must not throw
      kernel.Touch(task, region.addr + kPageSize, true);
    }
    kernel.TerminateTask(task, "round over");

    mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
    ASSERT_EQ(acc.unaccounted, 0u);
    ASSERT_EQ(acc.Sum(), acc.total);
    ASSERT_EQ(engine.manager().total_specific(), 0u);
  }
  // The validator should reject most garbage outright.
  EXPECT_LT(accepted, 40);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageProgramTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace hipec::core
