// Tests for the baseline application-controlled paging mechanisms (upcall / IPC / PREMO).
#include <gtest/gtest.h>

#include "baseline/user_level_pager.h"
#include "mach/kernel.h"
#include "policies/oracle.h"
#include "workloads/access_patterns.h"

namespace hipec::baseline {
namespace {

using mach::kPageSize;
using policies::OraclePolicy;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.pageout.free_target = 32;
  params.pageout.free_min = 8;
  params.pageout.inactive_target = 64;
  return params;
}

struct RunOutput {
  int64_t faults;
  int64_t decisions;
  sim::Nanos elapsed;
};

RunOutput RunPager(PagerConfig config, const std::vector<uint64_t>& trace, size_t pool) {
  mach::Kernel kernel(SmallParams());
  UserLevelPager pager(&kernel, config);
  mach::Task* task = kernel.CreateTask("app");
  uint64_t addr = pager.CreateRegion(task, 256 * kPageSize, pool);
  sim::Nanos start = kernel.clock().now();
  for (uint64_t page : trace) {
    // Read-only so no write-back traffic perturbs the elapsed-time comparisons.
    EXPECT_TRUE(kernel.Touch(task, addr + page * kPageSize, false));
  }
  return RunOutput{pager.counters().Get("pager.faults"), pager.decisions(),
                   kernel.clock().now() - start};
}

TEST(UserLevelPagerTest, PrivatePoolMatchesOracleFaults) {
  auto trace = workloads::CyclicScan(48, 4);
  for (OraclePolicy policy : {OraclePolicy::kFifo, OraclePolicy::kLru, OraclePolicy::kMru}) {
    PagerConfig config;
    config.mechanism = Mechanism::kUpcall;
    config.policy = policy;
    RunOutput out = RunPager(config, trace, 32);
    policies::OracleResult oracle = policies::SimulateReplacement(trace, 32, policy);
    EXPECT_EQ(out.faults, static_cast<int64_t>(oracle.faults))
        << "policy " << static_cast<int>(policy);
  }
}

TEST(UserLevelPagerTest, DecisionsOnlyOnEvictions) {
  auto trace = workloads::SequentialScan(32);  // fits the pool: no evictions
  PagerConfig config;
  RunOutput out = RunPager(config, trace, 32);
  EXPECT_EQ(out.faults, 32);
  EXPECT_EQ(out.decisions, 0);
}

TEST(UserLevelPagerTest, IpcCostsMoreThanUpcall) {
  auto trace = workloads::CyclicScan(64, 4);  // heavy eviction traffic
  PagerConfig upcall;
  upcall.mechanism = Mechanism::kUpcall;
  PagerConfig ipc;
  ipc.mechanism = Mechanism::kIpc;
  RunOutput u = RunPager(upcall, trace, 32);
  RunOutput i = RunPager(ipc, trace, 32);
  EXPECT_EQ(u.faults, i.faults);  // identical replacement behaviour
  EXPECT_GT(u.decisions, 0);
  // IPC pays 292 us per decision vs 42 us for an upcall round trip.
  EXPECT_GT(i.elapsed, u.elapsed);
  sim::CostModel costs;
  sim::Nanos expected_gap = u.decisions * (costs.IpcDecisionNs() - costs.UpcallDecisionNs());
  EXPECT_EQ(i.elapsed - u.elapsed, expected_gap);
}

TEST(UserLevelPagerTest, PremoSharedPoolSuffersInterference) {
  // Run the same access pattern with and without a competing non-specific memory hog. The
  // private-pool mechanisms are immune; PREMO's shared pool is not (the paper's §2 critique).
  auto run = [&](Mechanism mechanism, bool with_hog) {
    mach::Kernel kernel(SmallParams());
    PagerConfig config;
    config.mechanism = mechanism;
    UserLevelPager pager(&kernel, config);
    mach::Task* app = kernel.CreateTask("app");
    uint64_t addr = pager.CreateRegion(app, 128 * kPageSize, 64);
    mach::Task* hog = kernel.CreateTask("hog");
    uint64_t hog_addr = kernel.VmAllocate(hog, 900 * kPageSize);

    // Warm the specific application's working set.
    for (uint64_t p = 0; p < 64; ++p) {
      EXPECT_TRUE(kernel.Touch(app, addr + p * kPageSize, true));
    }
    if (with_hog) {
      // 900 pages against ~832 remaining frames: the daemon must evict, and in the shared
      // pool the specific application's pages are fair game.
      EXPECT_TRUE(kernel.TouchRange(hog, hog_addr, 900 * kPageSize, true));
    }
    // Re-scan the working set: with a private pool these are all hits or self-contained.
    int64_t faults_before = pager.counters().Get("pager.faults");
    for (uint64_t p = 0; p < 64; ++p) {
      EXPECT_TRUE(kernel.Touch(app, addr + p * kPageSize, false));
    }
    return pager.counters().Get("pager.faults") - faults_before;
  };

  EXPECT_EQ(run(Mechanism::kUpcall, true), run(Mechanism::kUpcall, false));
  EXPECT_GT(run(Mechanism::kPremoSyscall, true), run(Mechanism::kPremoSyscall, false));
  EXPECT_GT(run(Mechanism::kPremoSyscall, true), 0);
}

TEST(UserLevelPagerTest, TeardownConservesFrames) {
  mach::Kernel kernel(SmallParams());
  {
    UserLevelPager pager(&kernel, PagerConfig{});
    mach::Task* task = kernel.CreateTask("app");
    uint64_t addr = pager.CreateRegion(task, 64 * kPageSize, 48);
    EXPECT_TRUE(kernel.TouchRange(task, addr, 64 * kPageSize, true));
    kernel.TerminateTask(task, "done");
  }
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.container_owned, 0u);
  EXPECT_EQ(acc.global_free + acc.global_active + acc.global_inactive + acc.wired, acc.total);
}

}  // namespace
}  // namespace hipec::baseline
