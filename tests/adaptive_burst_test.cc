// Adaptive partition_burst watermark (§4.3.1 future work): the drift directions are covered
// in extensions_test.cc; these tests pin down the [min, max] clamp — sustained pressure in
// either direction parks the watermark exactly at the configured bound, never beyond.
#include <gtest/gtest.h>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/clock.h"

namespace hipec::core {
namespace {

using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;  // 896 free after boot
  params.hipec_build = true;
  return params;
}

HipecRegion Allocate(HipecEngine& engine, mach::Task* task, uint64_t pages,
                     size_t min_frames) {
  HipecOptions options;
  options.min_frames = min_frames;
  options.free_target = 4;
  options.inactive_target = 8;
  options.reserved_target = 0;
  return engine.VmAllocateHipec(task, pages * kPageSize,
                                policies::FifoSecondChancePolicy(), options);
}

TEST(AdaptiveBurstClampTest, SustainedRejectionParksAtMaxFraction) {
  mach::Kernel kernel(SmallParams());
  FrameManagerConfig config;
  config.partition_burst_fraction = 0.5;  // 448
  config.adaptive_burst = true;
  config.burst_max_fraction = 0.60;  // hard ceiling: 537 of 896
  HipecEngine engine(&kernel, config);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = Allocate(engine, task, 800, 100);
  ASSERT_TRUE(region.ok) << region.error;

  // A request that can never fit (100 held + 600 asked > any admissible watermark) is
  // rejected every round; each rejection nudges the watermark up one step until the clamp.
  for (int round = 0; round < 20; ++round) {
    EXPECT_FALSE(
        engine.manager().RequestFrames(region.container, 600, &region.container->free_q()));
    kernel.clock().Advance(300 * sim::kMillisecond);
  }
  EXPECT_EQ(engine.manager().partition_burst(),
            static_cast<size_t>(0.60 * 896));  // at the ceiling...
  int64_t raises = engine.manager().counters().Get("manager.burst_raised");
  EXPECT_GT(raises, 0);

  // ...and pinned there: further rejections do not move it.
  EXPECT_FALSE(
      engine.manager().RequestFrames(region.container, 600, &region.container->free_q()));
  kernel.clock().Advance(300 * sim::kMillisecond);
  EXPECT_FALSE(
      engine.manager().RequestFrames(region.container, 600, &region.container->free_q()));
  EXPECT_EQ(engine.manager().partition_burst(), static_cast<size_t>(0.60 * 896));
}

TEST(AdaptiveBurstClampTest, SustainedGlobalPressureParksAtMinFraction) {
  mach::Kernel kernel(SmallParams());
  FrameManagerConfig config;
  config.partition_burst_fraction = 0.70;  // 627
  config.adaptive_burst = true;
  config.burst_min_fraction = 0.45;  // hard floor: 403 of 896
  HipecEngine engine(&kernel, config);
  mach::Task* app = kernel.CreateTask("app");
  HipecRegion region = Allocate(engine, app, 700, 100);
  ASSERT_TRUE(region.ok) << region.error;
  ASSERT_TRUE(
      engine.manager().RequestFrames(region.container, 400, &region.container->free_q()));
  ASSERT_EQ(region.container->allocated_frames, 500u);

  // A non-specific hog keeps the daemon paging; every rate-limit window lowers the
  // watermark one step until the floor, clawing back specific frames above it.
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, 600 * kPageSize);
  for (int round = 0; round < 12; ++round) {
    EXPECT_TRUE(kernel.TouchRange(hog, hog_addr, 600 * kPageSize, true));
    kernel.clock().Advance(300 * sim::kMillisecond);
  }
  size_t floor = static_cast<size_t>(0.45 * 896);
  EXPECT_EQ(engine.manager().partition_burst(), floor);
  EXPECT_GT(engine.manager().counters().Get("manager.burst_lowered"), 0);
  // The lowered watermark was enforced, but never below the container's minimum.
  EXPECT_LE(engine.manager().total_specific(), floor);
  EXPECT_GE(region.container->allocated_frames, 100u);

  // Pinned at the floor: more global pressure changes nothing.
  EXPECT_TRUE(kernel.TouchRange(hog, hog_addr, 600 * kPageSize, true));
  kernel.clock().Advance(300 * sim::kMillisecond);
  EXPECT_TRUE(kernel.TouchRange(hog, hog_addr, 600 * kPageSize, true));
  EXPECT_EQ(engine.manager().partition_burst(), floor);

  mach::FrameAccounting acc = kernel.ComputeFrameAccounting(&engine.manager());
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

}  // namespace
}  // namespace hipec::core
