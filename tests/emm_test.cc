// Tests for the external memory management substrate: ports, pager message traffic, the
// default/file pagers, and HiPEC layered over pager-backed objects.
#include <gtest/gtest.h>

#include "hipec/engine.h"
#include "mach/emm.h"
#include "mach/ipc.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace hipec::mach {
namespace {

using mach::kPageSize;

KernelParams SmallParams() {
  KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 32;
  params.pageout.free_min = 8;
  params.pageout.inactive_target = 96;
  return params;
}

TEST(IpcPortTest, FifoDelivery) {
  IpcPort port("p");
  port.Send(IpcMessage{IpcMessage::Id::kMemoryObjectDataRequest, 1, 100, true});
  port.Send(IpcMessage{IpcMessage::Id::kMemoryObjectDataWrite, 2, 200, true});
  EXPECT_EQ(port.pending(), 2u);
  IpcMessage m;
  ASSERT_TRUE(port.TryReceive(&m));
  EXPECT_EQ(m.id, IpcMessage::Id::kMemoryObjectDataRequest);
  EXPECT_EQ(m.object_id, 1u);
  ASSERT_TRUE(port.TryReceive(&m));
  EXPECT_EQ(m.offset, 200u);
  EXPECT_FALSE(port.TryReceive(&m));
  EXPECT_EQ(port.counters().Get("port.sends"), 2);
  EXPECT_EQ(port.counters().Get("port.receives"), 2);
}

TEST(EmmTest, FilePagerServicesEveryFill) {
  Kernel kernel(SmallParams());
  FilePager pager(&kernel);
  Task* task = kernel.CreateTask("t");
  VmObject* file = kernel.CreateFileObject("data", 16 * kPageSize);
  kernel.AttachPager(file, &pager);
  uint64_t addr = kernel.VmMapFile(task, file);

  EXPECT_TRUE(kernel.TouchRange(task, addr, 16 * kPageSize, false));
  EXPECT_EQ(pager.counters().Get("pager.data_requests"), 16);
  EXPECT_EQ(kernel.counters().Get("kernel.pager_fills"), 16);
  EXPECT_EQ(kernel.disk().counters().Get("disk.reads"), 16);  // the pager did the reads
}

TEST(EmmTest, DefaultPagerOnlyTouchedAfterPageout) {
  Kernel kernel(SmallParams());
  DefaultPager pager(&kernel);
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  VmMapEntry* entry = task->map().Lookup(addr);
  kernel.AttachPager(entry->object, &pager);

  // First-touch zero fills never contact the pager...
  EXPECT_TRUE(kernel.TouchRange(task, addr, 600 * kPageSize, true));
  EXPECT_EQ(pager.counters().Get("pager.data_requests"), 0);
  // ...but evictions of dirty pages went to it as data_write messages...
  EXPECT_GT(pager.counters().Get("pager.data_writes"), 0);
  // ...and refaulting an evicted page asks it for the data back.
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  EXPECT_GT(pager.counters().Get("pager.data_requests"), 0);
}

TEST(EmmTest, PagerFillCostsOneIpcRoundTripPlusService) {
  // Same single-fill on two kernels; the difference must be exactly the IPC round trip plus
  // the pager's user-level compute (the disk read happens either way and uses the same
  // deterministic service sequence).
  auto run = [](bool with_pager) {
    Kernel kernel(SmallParams());
    FilePager pager(&kernel);
    Task* task = kernel.CreateTask("t");
    VmObject* file = kernel.CreateFileObject("data", 4 * kPageSize);
    if (with_pager) {
      kernel.AttachPager(file, &pager);
    }
    uint64_t addr = kernel.VmMapFile(task, file);
    sim::Nanos before = kernel.clock().now();
    kernel.Touch(task, addr, false);
    return kernel.clock().now() - before;
  };
  sim::Nanos direct = run(false);
  sim::Nanos paged = run(true);
  sim::CostModel costs;
  EXPECT_EQ(paged - direct, costs.null_ipc_ns + 15 * sim::kMicrosecond);
}

TEST(EmmTest, TerminateSentOnDeallocate) {
  Kernel kernel(SmallParams());
  FilePager pager(&kernel);
  Task* task = kernel.CreateTask("t");
  VmObject* file = kernel.CreateFileObject("data", 4 * kPageSize);
  kernel.AttachPager(file, &pager);
  uint64_t addr = kernel.VmMapFile(task, file);
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  kernel.VmDeallocate(task, addr);
  EXPECT_EQ(pager.counters().Get("pager.terminates"), 1);
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
}

TEST(EmmTest, HipecPolicyOverPagerBackedObject) {
  // The paper's configuration: HiPEC controls the replacement policy of a region whose data
  // moves through the external pager interface.
  KernelParams params = SmallParams();
  params.hipec_build = true;
  Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  FilePager pager(&kernel);
  Task* task = kernel.CreateTask("db");
  VmObject* table = kernel.CreateFileObject("table", 64 * kPageSize);
  kernel.AttachPager(table, &pager);

  core::HipecOptions options;
  options.min_frames = 32;
  core::HipecRegion region = engine.VmMapHipec(task, table, policies::MruPolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  // Two sweeps over 64 pages through 32 frames: MRU faults 64 + (64-32+1).
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, false));
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, false));
  EXPECT_FALSE(task->terminated()) << task->termination_reason();
  EXPECT_EQ(pager.counters().Get("pager.data_requests"),
            engine.counters().Get("engine.faults_handled"));
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
}

}  // namespace
}  // namespace hipec::mach
