// Unit tests for the disk model: service times, calibration, asynchronous write-back.
#include <gtest/gtest.h>

#include "disk/disk_model.h"
#include "sim/clock.h"

namespace hipec::disk {
namespace {

using sim::kMillisecond;
using sim::Nanos;
using sim::VirtualClock;

TEST(DiskParamsTest, DerivedQuantities) {
  DiskParams p = DiskParams::Era1994();
  // 6000 rpm -> 10 ms per revolution.
  EXPECT_NEAR(static_cast<double>(p.RevolutionNs()), 10.0 * kMillisecond,
              0.02 * kMillisecond);
  // A 4 KB page is 8 sectors of a 64-sector track.
  EXPECT_NEAR(static_cast<double>(p.PageTransferNs()),
              static_cast<double>(p.RevolutionNs()) * 8.0 / 64.0, 1.0);
  EXPECT_GT(p.BlocksPerCylinder(), 0);
}

TEST(DiskModelTest, ReadAdvancesClockByServiceTime) {
  VirtualClock clock;
  DiskModel disk(&clock, DiskParams::Era1994(), /*seed=*/1);
  Nanos t = disk.ReadPage(12345);
  EXPECT_EQ(clock.now(), t);
  EXPECT_GT(t, 0);
}

// Table 3 implies ~7.66 ms of disk time per random 4 KB page fault. The model must average
// near that for random blocks.
TEST(DiskModelTest, RandomReadCalibration) {
  VirtualClock clock;
  DiskModel disk(&clock, DiskParams::Era1994(), /*seed=*/2);
  sim::Rng rng(3);
  constexpr int kReads = 4000;
  Nanos start = clock.now();
  for (int i = 0; i < kReads; ++i) {
    disk.ReadPage(rng.Below(1'000'000));
  }
  double mean = static_cast<double>(clock.now() - start) / kReads;
  EXPECT_NEAR(mean, 7.66 * kMillisecond, 0.8 * kMillisecond);
}

TEST(DiskModelTest, SequentialReadsFasterThanRandom) {
  VirtualClock clock_seq;
  DiskModel seq(&clock_seq, DiskParams::Era1994(), /*seed=*/4);
  for (int i = 0; i < 500; ++i) {
    seq.ReadPage(static_cast<uint64_t>(i));
  }

  VirtualClock clock_rand;
  DiskModel rand_disk(&clock_rand, DiskParams::Era1994(), /*seed=*/4);
  sim::Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    rand_disk.ReadPage(rng.Below(1'000'000));
  }
  EXPECT_LT(clock_seq.now(), clock_rand.now());
}

TEST(DiskModelTest, AsyncWriteReturnsImmediately) {
  VirtualClock clock;
  DiskModel disk(&clock, DiskParams::Era1994(), /*seed=*/6);
  Nanos before = clock.now();
  disk.WritePageAsync(42);
  EXPECT_EQ(clock.now(), before);  // no synchronous charge
  EXPECT_EQ(disk.pending_writes(), 1u);
}

TEST(DiskModelTest, WritesDrainViaEvents) {
  VirtualClock clock;
  DiskModel disk(&clock, DiskParams::Era1994(), /*seed=*/7);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    disk.WritePageAsync(static_cast<uint64_t>(i) * 1000, [&] { ++completed; });
  }
  disk.DrainWrites();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(disk.pending_writes(), 0u);
  EXPECT_EQ(disk.counters().Get("disk.writes_done"), 10);
}

TEST(DiskModelTest, ReadWaitsWhenWriteQueueSaturated) {
  DiskParams p = DiskParams::Era1994();
  p.write_queue_limit = 4;
  VirtualClock clock;
  DiskModel disk(&clock, p, /*seed=*/8);
  for (int i = 0; i < 8; ++i) {
    disk.WritePageAsync(static_cast<uint64_t>(i) * 500);
  }
  EXPECT_GT(disk.pending_writes(), 4u);
  disk.ReadPage(99);  // must wait for the queue to fall below the limit
  EXPECT_LE(disk.pending_writes() - (disk.pending_writes() > 0 ? 1 : 0),
            p.write_queue_limit);
}

TEST(DiskModelTest, ElevatorServesNearestCylinderFirst) {
  DiskParams p = DiskParams::Era1994();
  VirtualClock clock;
  DiskModel disk(&clock, p, /*seed=*/9, WriteScheduling::kElevator);
  // Head starts at cylinder 0. Queue writes at far and near cylinders; after the first
  // (already-in-flight FIFO) write, the elevator should pick the nearer one.
  uint64_t blocks_per_cyl = static_cast<uint64_t>(p.BlocksPerCylinder());
  disk.WritePageAsync(0);                        // starts immediately
  disk.WritePageAsync(900 * blocks_per_cyl);     // far
  disk.WritePageAsync(3 * blocks_per_cyl);       // near
  disk.DrainWrites();
  EXPECT_EQ(disk.counters().Get("disk.writes_done"), 3);
}

TEST(DiskModelTest, DeterministicAcrossRuns) {
  auto run = [] {
    VirtualClock clock;
    DiskModel disk(&clock, DiskParams::Era1994(), /*seed=*/10);
    sim::Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      disk.ReadPage(rng.Below(500'000));
    }
    return clock.now();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace hipec::disk
