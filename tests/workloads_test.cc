// Tests for the workload generators, the nested-loops join experiment driver, and the
// AIM-like multiuser throughput model.
#include <gtest/gtest.h>

#include "policies/oracle.h"
#include "workloads/access_patterns.h"
#include "workloads/aim_suite.h"
#include "workloads/join_workload.h"

namespace hipec::workloads {
namespace {

constexpr int64_t kMb = 1024 * 1024;

// ---------------------------------------------------------------- access patterns

TEST(AccessPatternsTest, SequentialAndCyclic) {
  auto seq = SequentialScan(5);
  EXPECT_EQ(seq, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
  auto cyc = CyclicScan(3, 2);
  EXPECT_EQ(cyc, (std::vector<uint64_t>{0, 1, 2, 0, 1, 2}));
}

TEST(AccessPatternsTest, UniformRandomBounded) {
  auto trace = UniformRandom(10, 1000, 7);
  ASSERT_EQ(trace.size(), 1000u);
  for (uint64_t p : trace) {
    EXPECT_LT(p, 10u);
  }
  EXPECT_EQ(trace, UniformRandom(10, 1000, 7));  // deterministic
  EXPECT_NE(trace, UniformRandom(10, 1000, 8));
}

TEST(AccessPatternsTest, ZipfSkew) {
  auto trace = ZipfTrace(100, 5000, 0.9, 11);
  size_t hot = 0;
  for (uint64_t p : trace) {
    if (p < 10) {
      ++hot;
    }
  }
  EXPECT_GT(hot, trace.size() / 3);
}

TEST(AccessPatternsTest, StridedWraps) {
  auto trace = StridedScan(8, 3, 6);
  EXPECT_EQ(trace, (std::vector<uint64_t>{0, 3, 6, 1, 4, 7}));
}

// ---------------------------------------------------------------- join workload

JoinConfig SmallJoin(JoinMode mode, int64_t outer_mb) {
  JoinConfig config;
  config.mode = mode;
  config.outer_bytes = outer_mb * kMb;
  config.memory_bytes = 1 * kMb;  // 256-frame budget: fast to simulate
  return config;
}

TEST(JoinWorkloadTest, FitsInMemoryOnlyColdFaults) {
  for (JoinMode mode : {JoinMode::kMachDefault, JoinMode::kHipecMru}) {
    JoinResult result = RunJoin(SmallJoin(mode, 1));
    EXPECT_FALSE(result.terminated) << result.termination_reason;
    // One cold scan: 256 pages (give the default kernel a little slack for daemon churn).
    EXPECT_GE(result.page_faults, 256);
    EXPECT_LE(result.page_faults, 300);
  }
}

TEST(JoinWorkloadTest, MachDefaultThrashesPerTheLruFormula) {
  JoinResult result = RunJoin(SmallJoin(JoinMode::kMachDefault, 2));
  EXPECT_FALSE(result.terminated) << result.termination_reason;
  // PF_l = outer_pages * loops = 512 * 64.
  EXPECT_EQ(result.analytic_faults, 512 * 64);
  EXPECT_NEAR(static_cast<double>(result.page_faults),
              static_cast<double>(result.analytic_faults),
              0.05 * static_cast<double>(result.analytic_faults));
}

TEST(JoinWorkloadTest, HipecMruMatchesTheMruFormula) {
  JoinResult result = RunJoin(SmallJoin(JoinMode::kHipecMru, 2));
  EXPECT_FALSE(result.terminated) << result.termination_reason;
  // PF_m = (outer - memory) * (loops-1) / page + outer/page = 256*63 + 512.
  EXPECT_EQ(result.analytic_faults, 256 * 63 + 512);
  EXPECT_NEAR(static_cast<double>(result.page_faults),
              static_cast<double>(result.analytic_faults),
              0.05 * static_cast<double>(result.analytic_faults));
}

TEST(JoinWorkloadTest, MruBeatsDefaultBeyondMemorySize) {
  // PF_m / PF_l ~= (outer - memory) / outer: the MRU win is largest just past the memory
  // size. outer = 1.5x memory gives a ~3x fault reduction. Use a 4 MB budget so the default
  // kernel's fixed frame slack (~256 frames) is proportionally irrelevant.
  JoinConfig config = SmallJoin(JoinMode::kMachDefault, 6);
  config.memory_bytes = 4 * kMb;
  JoinResult lru = RunJoin(config);
  config.mode = JoinMode::kHipecMru;
  JoinResult mru = RunJoin(config);
  EXPECT_LT(mru.page_faults, lru.page_faults / 2);
  EXPECT_LT(mru.elapsed, lru.elapsed / 2);
}

TEST(JoinWorkloadTest, HipecLruThrashesLikeDefault) {
  // An explicitly-LRU HiPEC policy is no better than the kernel default (ablation): the win
  // comes from the *policy*, not from HiPEC itself.
  JoinResult kernel_default = RunJoin(SmallJoin(JoinMode::kMachDefault, 2));
  JoinResult hipec_lru = RunJoin(SmallJoin(JoinMode::kHipecLru, 2));
  EXPECT_NEAR(static_cast<double>(hipec_lru.page_faults),
              static_cast<double>(kernel_default.page_faults),
              0.1 * static_cast<double>(kernel_default.page_faults));
}

// ---------------------------------------------------------------- AIM suite

TEST(AimSuiteTest, Deterministic) {
  AimConfig config;
  config.users = 4;
  AimResult a = RunAim(config);
  AimResult b = RunAim(config);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.page_faults, b.page_faults);
}

TEST(AimSuiteTest, ThroughputRisesThenDeclines) {
  AimConfig config;
  auto tput = [&](int users) {
    config.users = users;
    return RunAim(config).jobs_per_minute;
  };
  double one = tput(1);
  double mid = tput(6);
  double many = tput(18);
  EXPECT_GT(mid, 1.5 * one);  // multiprogramming overlap helps
  EXPECT_LT(many, mid);       // paging + saturation hurt
}

TEST(AimSuiteTest, HipecKernelOverheadIsNegligible) {
  // The Figure 5 claim: the modified kernel provides essentially the same throughput for
  // non-specific applications under all three mixes.
  for (const WorkloadMix& mix :
       {WorkloadMix::Standard(), WorkloadMix::DiskHeavy(), WorkloadMix::MemoryHeavy()}) {
    for (int users : {2, 8}) {
      AimConfig config;
      config.mix = mix;
      config.users = users;
      config.hipec_kernel = false;
      AimResult mach = RunAim(config);
      config.hipec_kernel = true;
      AimResult hipec = RunAim(config);
      EXPECT_GT(hipec.checker_wakeups, 0);
      EXPECT_NEAR(hipec.jobs_per_minute, mach.jobs_per_minute,
                  0.03 * mach.jobs_per_minute)
          << "mix=" << mix.name << " users=" << users;
    }
  }
}

TEST(AimSuiteTest, MemoryMixFaultsMoreUnderPressure) {
  AimConfig config;
  config.mix = WorkloadMix::MemoryHeavy();
  config.users = 2;
  int64_t low = RunAim(config).page_faults;
  config.users = 16;
  int64_t high = RunAim(config).page_faults;
  EXPECT_GT(high, low);
}

TEST(AimSuiteTest, UtilizationsAreSane) {
  AimConfig config;
  config.users = 10;
  AimResult result = RunAim(config);
  // At 10 users paging makes the disk the bottleneck; the CPU idles behind it.
  EXPECT_GT(result.cpu_utilization, 0.03);
  EXPECT_LE(result.cpu_utilization, 1.01);
  EXPECT_GT(result.disk_utilization, 0.3);
  EXPECT_LE(result.disk_utilization, 1.01);
}

}  // namespace
}  // namespace hipec::workloads
