// Tests for the observability subsystem (src/obs/): histogram bucket boundaries and
// quantile semantics, probe gating, the minimal JSON parser, the Chrome trace exporter's
// schema and track routing, the flight recorder's dump triggers (invariant violation,
// checker kill), and the hipec-report builder — including the golden scenario test that a
// fixed-seed run exports schema-valid, Perfetto-loadable trace JSON.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/histogram.h"
#include "obs/json.h"
#include "obs/probe.h"
#include "obs/report.h"
#include "policies/policies.h"
#include "scenario/canned.h"
#include "scenario/invariants.h"
#include "scenario/scenario.h"
#include "sim/check.h"
#include "sim/trace.h"

namespace hipec::obs {
namespace {

using mach::kPageSize;

// ------------------------------------------------------------------------------- histogram

TEST(HistogramTest, ZeroSamples) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Histogram::BucketOf((uint64_t{1} << 62) - 1), 62u);
  // Everything at or above 2^62 lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketOf(uint64_t{1} << 62), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), Histogram::kOverflowBucket);

  // BucketLo(1) is 0 by design (interpolation floor for the [1,2) bucket), so the
  // lo==bucket round-trip only holds from bucket 2 up.
  EXPECT_EQ(Histogram::BucketOf(Histogram::BucketHi(1)), 1u);
  for (size_t i = 2; i + 1 < Histogram::kBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketLo(i)), i) << "bucket " << i;
    EXPECT_EQ(Histogram::BucketOf(Histogram::BucketHi(i)), i) << "bucket " << i;
  }
}

TEST(HistogramTest, SingleValueQuantilesAreExact) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(340);
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Min(), 340u);
  EXPECT_EQ(h.Max(), 340u);
  EXPECT_DOUBLE_EQ(h.Mean(), 340.0);
  // min == max clamps the in-bucket interpolation to the exact value.
  EXPECT_EQ(h.Quantile(0.5), 340u);
  EXPECT_EQ(h.Quantile(0.99), 340u);
  EXPECT_EQ(h.Quantile(1.0), 340u);
}

TEST(HistogramTest, QuantileRankWalksBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) {
    h.Record(1);  // bucket 1
  }
  for (int i = 0; i < 10; ++i) {
    h.Record(1024);  // bucket 11
  }
  EXPECT_EQ(h.Quantile(0.5), 1u);   // rank 50 falls in the low bucket, clamped to min
  EXPECT_EQ(h.Quantile(0.9), 1u);   // rank 90 is still the last low-bucket sample
  // rank 91+ lands in the 1024 bucket; interpolation clamps to max.
  EXPECT_GE(h.Quantile(0.95), 512u);
  EXPECT_LE(h.Quantile(0.95), 1024u);
  EXPECT_EQ(h.Quantile(1.0), 1024u);
}

TEST(HistogramTest, OverflowBucketReportsExactMax) {
  Histogram h;
  const int64_t huge = (int64_t{1} << 62) + 12345;
  h.Record(huge);
  h.Record(huge - 7);
  EXPECT_EQ(h.BucketCount(Histogram::kOverflowBucket), 2u);
  // Quantiles that land in the overflow bucket return the running max, not an interpolation
  // against UINT64_MAX.
  EXPECT_EQ(h.Quantile(0.5), static_cast<uint64_t>(huge));
  EXPECT_EQ(h.Quantile(1.0), static_cast<uint64_t>(huge));
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.BucketCount(0), 1u);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Record(4);
  a.Record(5);
  b.Record(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Min(), 4u);
  EXPECT_EQ(a.Max(), 1000u);
  EXPECT_EQ(a.sum(), 1009u);
}

TEST(HistogramTest, JsonOutputParses) {
  Histogram h;
  h.Record(3);
  h.Record(300);
  std::string out;
  h.AppendJson(&out);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(out, &v, &error)) << error << " in " << out;
  EXPECT_EQ(v.IntOr("count", -1), 2);
  EXPECT_EQ(v.IntOr("min", -1), 3);
  EXPECT_EQ(v.IntOr("max", -1), 300);
  const JsonValue* buckets = v.Get("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->IsArray());
  EXPECT_EQ(buckets->array.size(), 2u);  // two non-empty buckets
}

// ---------------------------------------------------------------------------------- probes

TEST(ProbeTest, RegistryInternsIdempotently) {
  ProbeId a = InternProbe("test.obs_probe_alpha");
  ProbeId b = InternProbe("test.obs_probe_alpha");
  ProbeId c = InternProbe("test.obs_probe_beta");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(ProbeRegistry::Instance().NameOf(a), "test.obs_probe_alpha");
  EXPECT_EQ(ProbeRegistry::Instance().Find("test.obs_probe_alpha"), a);
  EXPECT_EQ(ProbeRegistry::Instance().Find("test.obs_probe_never_interned"),
            ProbeRegistry::kInvalid);
}

TEST(ProbeTest, DisabledRecordIsNoOp) {
  const ProbeId id = InternProbe("test.obs_probe_disabled");
  ProbeSet set;
  ASSERT_FALSE(ProbesEnabled());  // runtime default is off
  set.Record(id, 99);
  EXPECT_EQ(set.Find(id), nullptr);
}

TEST(ProbeTest, ScopedEnableRecordsAndRestores) {
  const ProbeId id = InternProbe("test.obs_probe_scoped");
  ProbeSet set;
  {
    ScopedProbes scoped(true);
    EXPECT_TRUE(ProbesEnabled());
    set.Record(id, 10);
    set.Record(id, 20);
  }
  EXPECT_FALSE(ProbesEnabled());
  const Histogram* h = set.Find(id);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->Max(), 20u);
  auto all = set.all();
  ASSERT_EQ(all.count("test.obs_probe_scoped"), 1u);
}

// ----------------------------------------------------------------------------- JSON parser

TEST(JsonTest, ParsesNestedDocument) {
  const char* text =
      R"({"s":"a\"b\\cA","n":-2.5e2,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,[3]],"obj":{"k":"v"}})";
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(text, &v, &error)) << error;
  EXPECT_EQ(v.StringOr("s", ""), "a\"b\\cA");
  EXPECT_DOUBLE_EQ(v.NumberOr("n", 0), -250.0);
  EXPECT_TRUE(v.Get("t")->bool_value);
  EXPECT_FALSE(v.Get("f")->bool_value);
  EXPECT_TRUE(v.Get("z")->IsNull());
  ASSERT_TRUE(v.Get("arr")->IsArray());
  EXPECT_EQ(v.Get("arr")->array.size(), 3u);
  EXPECT_EQ(v.Get("obj")->StringOr("k", ""), "v");
}

TEST(JsonTest, RejectsMalformedInput) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing", &v, &error));
  EXPECT_FALSE(ParseJson("{\"a\":}", &v, &error));
  EXPECT_FALSE(ParseJson("{'a':1}", &v, &error));
  EXPECT_FALSE(ParseJson("", &v, &error));
  EXPECT_FALSE(ParseJson("[1,2,", &v, &error));
}

TEST(JsonTest, EscapingRoundTrips) {
  std::string out = "\"";
  AppendJsonEscaped(&out, "line\nwith \"quotes\" and \\slashes\\ and\ttabs");
  out += "\"";
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(out, &v, &error)) << error << " in " << out;
  EXPECT_EQ(v.string, "line\nwith \"quotes\" and \\slashes\\ and\ttabs");
}

// ---------------------------------------------------------------------------- chrome trace

sim::TraceEvent Ev(sim::Nanos t, sim::TraceCategory cat, uint16_t code, uint64_t a,
                   uint64_t b) {
  return sim::TraceEvent{t, cat, code, a, b};
}

TEST(ChromeTraceTest, EventNamesCoverNewCodes) {
  using sim::TraceCategory;
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kReclaim, 0, 1, 1)), "reclaim");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kReclaim, 1, 1, 1)), "forced-reclaim");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kChecker, 2, 1, 0)), "checker-kill");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kManager, 1, 1, 4)), "request-reject");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kManager, 3, 1, 9)), "flush-exchange");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kManager, 4, 1, 9)), "flush-sync");
  EXPECT_EQ(ChromeTraceEventName(Ev(0, TraceCategory::kManager, 5, 1, 0)), "flush-clean");
}

TEST(ChromeTraceTest, SchemaAndTrackRouting) {
  using sim::TraceCategory;
  std::vector<sim::TraceEvent> events = {
      Ev(1000, TraceCategory::kFault, 0, /*task=*/7, 0x1000),
      Ev(2500, TraceCategory::kManager, 1, /*container=*/3, 16),
      Ev(3000, TraceCategory::kChecker, 0, 250000, 2),      // wakeup -> kernel track
      Ev(4000, TraceCategory::kChecker, 2, /*container=*/3, 5),  // kill -> tenant track
  };
  std::vector<ChromeTraceTrack> tracks = {{7, 3, "tenant-a"}};
  std::string json = ExportChromeTrace(events, tracks, "unit-test");

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &v, &error)) << error;
  EXPECT_EQ(v.StringOr("displayTimeUnit", ""), "ms");
  const JsonValue* trace_events = v.Get("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_TRUE(trace_events->IsArray());

  int meta = 0;
  int instants = 0;
  bool saw_tenant_track = false;
  for (const JsonValue& e : trace_events->array) {
    ASSERT_TRUE(e.IsObject());
    std::string ph = e.StringOr("ph", "");
    ASSERT_TRUE(ph == "M" || ph == "i") << "unexpected phase " << ph;
    EXPECT_EQ(e.IntOr("pid", -1), 1);
    if (ph == "M") {
      ++meta;
      if (e.StringOr("name", "") == "thread_name" &&
          e.Get("args")->StringOr("name", "") == "tenant-a") {
        saw_tenant_track = true;
        EXPECT_EQ(e.IntOr("tid", -1), 1);
      }
      continue;
    }
    ++instants;
    EXPECT_EQ(e.StringOr("s", ""), "t");
    EXPECT_NE(e.Get("ts"), nullptr);
    EXPECT_TRUE(e.Get("ts")->IsNumber());
    ASSERT_NE(e.Get("args"), nullptr);
    std::string name = e.StringOr("name", "");
    if (name == "fault" || name == "request-reject" || name == "checker-kill") {
      EXPECT_EQ(e.IntOr("tid", -1), 1) << name << " should land on the tenant track";
    } else {
      EXPECT_EQ(e.IntOr("tid", -1), 0) << name << " should land on the kernel track";
    }
  }
  EXPECT_EQ(meta, 3);  // process_name + kernel + tenant-a
  EXPECT_EQ(instants, 4);
  EXPECT_TRUE(saw_tenant_track);
}

// -------------------------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, SnapshotWindowsAndAccounting) {
  sim::Tracer tracer(/*capacity=*/8);
  tracer.Enable();
  for (int i = 0; i < 20; ++i) {
    tracer.Record(i * 100, sim::TraceCategory::kFault, 0, 1, static_cast<uint64_t>(i));
  }
  FlightRecorder recorder(&tracer, /*last_events=*/4);
  ProbeSet probes;
  {
    ScopedProbes scoped(true);
    probes.Record(InternProbe("test.fr_probe"), 7);
  }
  recorder.AddProbeSource("unit", &probes);

  std::string snapshot = recorder.Snapshot("unit-test-reason");
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(snapshot, &v, &error)) << error;
  const JsonValue* fr = v.Get("flight_recorder");
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->StringOr("reason", ""), "unit-test-reason");
  EXPECT_EQ(fr->IntOr("trace_total_recorded", -1), 20);
  EXPECT_EQ(fr->IntOr("trace_dropped", -1), 12);  // ring capacity 8
  const JsonValue* events = fr->Get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->array.size(), 4u);  // window trims the surviving 8 to the last 4
  // Newest-last: the final event is the last one recorded.
  EXPECT_EQ(events->array.back().IntOr("b", -1), 19);
  const JsonValue* probes_json = fr->Get("probes");
  ASSERT_NE(probes_json, nullptr);
  ASSERT_NE(probes_json->Get("unit"), nullptr);
  EXPECT_NE(probes_json->Get("unit")->Get("test.fr_probe"), nullptr);
}

// Mirrors scenario_test's AuditorDetectionTest corruption pattern, but asserts the auditor
// dumps through the attached flight recorder before throwing.
TEST(FlightRecorderTest, DumpsOnInvariantViolation) {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  kernel.tracer().Enable();
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  core::HipecOptions options;
  options.min_frames = 32;
  options.free_target = 4;
  options.inactive_target = 8;
  core::HipecRegion region = engine.VmAllocateHipec(
      task, 64 * kPageSize, policies::FifoSecondChancePolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  ASSERT_TRUE(kernel.TouchRange(task, region.addr, 16 * kPageSize, true));

  FlightRecorder recorder(&kernel.tracer());
  std::vector<std::string> dumps;
  recorder.SetSink([&](const std::string& json) { dumps.push_back(json); });

  scenario::InvariantAuditor auditor(&engine);
  auditor.SetFlightRecorder(&recorder);
  auditor.AuditNow("clean");
  EXPECT_TRUE(dumps.empty());

  ++region.container->allocated_frames;  // claims a frame it does not hold
  EXPECT_THROW(auditor.AuditNow("corrupted"), sim::CheckFailure);
  --region.container->allocated_frames;

  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(recorder.dumps(), 1);
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(dumps[0], &v, &error)) << error;
  const JsonValue* fr = v.Get("flight_recorder");
  ASSERT_NE(fr, nullptr);
  EXPECT_NE(fr->StringOr("reason", "").find("invariant-violation"), std::string::npos);
  EXPECT_GT(fr->Get("events")->array.size(), 0u);
}

TEST(FlightRecorderTest, ScenarioDumpsOnCheckerKill) {
  scenario::ScenarioSpec spec = scenario::CheckerKillStorm();
  std::vector<std::string> dumps;
  spec.flight_recorder_sink = [&](const std::string& json) { dumps.push_back(json); };
  scenario::ScenarioResult result = scenario::RunScenario(spec);
  ASSERT_GT(result.checker_kills, 0);
  EXPECT_EQ(static_cast<int64_t>(dumps.size()), result.checker_kills);
  EXPECT_EQ(result.flight_recorder_dumps, result.checker_kills);
  for (const std::string& dump : dumps) {
    JsonValue v;
    std::string error;
    ASSERT_TRUE(ParseJson(dump, &v, &error)) << error;
    EXPECT_NE(v.Get("flight_recorder")->StringOr("reason", "").find("checker-kill"),
              std::string::npos);
  }
}

// ---------------------------------------------------------------------------------- report

TEST(ReportTest, SelfCheckPasses) {
  std::string diagnostics;
  EXPECT_TRUE(SelfCheck(&diagnostics)) << diagnostics;
}

TEST(ReportTest, WarnsOnTraceDrops) {
  std::istringstream in(
      "scenario: demo (human line)\n"
      R"({"bench":"scenario","scenario":"demo","faults":10,"requests":2,)"
      R"("requests_rejected":1,"forced_reclaims":3,"flush_exchange":0,"flush_sync":0,)"
      R"("checker_kills":0,"audits":5,"trace_dropped":17,"virtual_sec":1.0,"host_sec":0.1})"
      "\n");
  std::vector<JsonValue> records;
  size_t ignored = 0;
  std::vector<ReportWarning> parse_warnings;
  ParseJsonLines(in, &records, &ignored, &parse_warnings);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(ignored, 1u);
  EXPECT_TRUE(parse_warnings.empty());

  Report report = BuildReport(records);
  ASSERT_EQ(report.scenarios.size(), 1u);
  EXPECT_EQ(report.scenarios[0].trace_dropped, 17);
  EXPECT_EQ(report.metrics.at("scenario.demo.forced_reclaims"), 3.0);
  EXPECT_EQ(report.metrics.at("scenario.demo.trace_dropped"), 17.0);
  ASSERT_EQ(report.warnings.size(), 1u);
  EXPECT_NE(report.warnings[0].message.find("dropped 17"), std::string::npos);

  // The machine report round-trips and carries the warning.
  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(RenderReportJson(report), &v, &error)) << error;
  EXPECT_EQ(v.IntOr("report_version", -1), 1);
  EXPECT_EQ(v.Get("warnings")->array.size(), 1u);
}

// ------------------------------------------------------------------- golden Perfetto export

// The acceptance scenario: a fixed-seed HogVsMany run must export Chrome trace-event JSON
// that a checker validates structurally (schema, metadata, tenant tracks, event phases) —
// not string equality, since ring drops make exact event counts capacity-dependent.
TEST(GoldenTraceTest, HogVsManyExportsSchemaValidPerfettoJson) {
  scenario::ScenarioSpec spec = scenario::HogVsMany();
  const std::string path = ::testing::TempDir() + "/hog_vs_many.trace.json";
  spec.chrome_trace_path = path;
  scenario::ScenarioResult result = scenario::RunScenario(spec);

  // The contention story happened at all (otherwise the trace proves nothing).
  EXPECT_GT(result.Decision("request-reject"), 0);
  int64_t forced = 0;
  for (const auto& t : result.tenants) {
    forced += t.frames_force_reclaimed;
  }
  EXPECT_GT(forced, 0);

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "trace file not written: " << path;
  std::stringstream buffer;
  buffer << file.rdbuf();

  JsonValue v;
  std::string error;
  ASSERT_TRUE(ParseJson(buffer.str(), &v, &error)) << error;
  EXPECT_EQ(v.StringOr("displayTimeUnit", ""), "ms");
  const JsonValue* events = v.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_GT(events->array.size(), 10u);

  // Metadata: the process is named after the scenario and every tenant has a named track.
  std::vector<std::string> thread_names;
  bool process_named = false;
  for (const JsonValue& e : events->array) {
    if (e.StringOr("ph", "") == "M") {
      if (e.StringOr("name", "") == "process_name") {
        process_named = e.Get("args")->StringOr("name", "") == "hog_vs_many";
      } else if (e.StringOr("name", "") == "thread_name") {
        thread_names.push_back(e.Get("args")->StringOr("name", ""));
      }
    } else {
      // Every non-metadata event is a well-formed thread-scoped instant.
      EXPECT_EQ(e.StringOr("ph", ""), "i");
      EXPECT_EQ(e.StringOr("s", ""), "t");
      EXPECT_TRUE(e.Get("ts") != nullptr && e.Get("ts")->IsNumber());
      EXPECT_TRUE(e.Get("tid") != nullptr && e.Get("tid")->IsNumber());
      EXPECT_NE(e.Get("args"), nullptr);
    }
  }
  EXPECT_TRUE(process_named);
  ASSERT_FALSE(thread_names.empty());
  EXPECT_EQ(thread_names.front(), "kernel");
  EXPECT_NE(std::find(thread_names.begin(), thread_names.end(), "hog"), thread_names.end());
  // One track per tenant and background task, plus the kernel track.
  EXPECT_EQ(thread_names.size(), 1 + result.tenants.size() + result.background.size());

  // Determinism: the same spec reproduces the same fingerprint (the exported trace is a view
  // of the same events), and the drop accounting is surfaced for the report stage.
  scenario::ScenarioResult again = scenario::RunScenario(scenario::HogVsMany());
  EXPECT_EQ(result.Fingerprint(), again.Fingerprint());
  EXPECT_EQ(result.trace_dropped, again.trace_dropped);
}

}  // namespace
}  // namespace hipec::obs
