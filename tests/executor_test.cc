// Semantics tests for the policy executor: every command, the condition-flag/Jump rule,
// Activate nesting, error handling, timeout backstop, and cost charging.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "hipec/executor.h"
#include "hipec/frame_manager.h"
#include "mach/kernel.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;
using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 16;
  params.pageout.free_min = 4;
  params.pageout.inactive_target = 32;
  params.hipec_build = true;
  return params;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : kernel_(SmallParams()),
        manager_(&kernel_, FrameManagerConfig{0.5, 16}),
        executor_(&kernel_, &manager_) {}

  // Builds a container with the standard layout and `min_frames` private frames.
  Container* MakeContainer(PolicyProgram program, HipecOptions options = {}) {
    task_ = kernel_.CreateTask("app");
    object_ = kernel_.CreateAnonObject(64 * kPageSize);
    containers_.push_back(std::make_unique<Container>(
        next_id_++, task_, object_, std::move(program), options.min_frames,
        options.timeout_ns > 0 ? options.timeout_ns : kernel_.costs().policy_timeout_ns));
    Container* c = containers_.back().get();
    SetupStandardOperands(c, options);
    if (options.min_frames > 0) {
      EXPECT_TRUE(manager_.AdmitContainer(c));
    }
    return c;
  }

  // Wraps a single-event PageFault program (plus a trivial ReclaimFrame).
  static PolicyProgram OneEvent(std::vector<Instruction> commands) {
    PolicyProgram p;
    p.SetEvent(kEventPageFault, commands);
    EventBuilder reclaim;
    reclaim.Return(0);
    p.SetEvent(kEventReclaimFrame, reclaim.Build());
    return p;
  }

  mach::Kernel kernel_;
  GlobalFrameManager manager_;
  PolicyExecutor executor_;
  mach::Task* task_ = nullptr;
  mach::VmObject* object_ = nullptr;
  std::vector<std::unique_ptr<Container>> containers_;
  uint64_t next_id_ = 1;
};

// ---------------------------------------------------------------- Arith / Comp / Logic

struct ArithCase {
  ArithOp op;
  int64_t lhs, rhs, expected;
};

class ArithTest : public ExecutorTest, public ::testing::WithParamInterface<ArithCase> {};

TEST_P(ArithTest, ComputesInPlace) {
  const ArithCase& c = GetParam();
  EventBuilder b;
  b.Arith(ops::kScratch0, ops::kScratch1, c.op).Return(0);
  Container* container = MakeContainer(OneEvent(b.Build()));
  container->operands().WriteInt(ops::kScratch0, c.lhs);
  container->operands().WriteInt(ops::kScratch1, c.rhs);
  ExecResult result = executor_.ExecuteEvent(container, kEventPageFault);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(container->operands().ReadInt(ops::kScratch0), c.expected);
}

INSTANTIATE_TEST_SUITE_P(AllOps, ArithTest,
                         ::testing::Values(ArithCase{ArithOp::kAdd, 7, 3, 10},
                                           ArithCase{ArithOp::kSub, 7, 3, 4},
                                           ArithCase{ArithOp::kMul, 7, 3, 21},
                                           ArithCase{ArithOp::kDiv, 7, 3, 2},
                                           ArithCase{ArithOp::kMod, 7, 3, 1},
                                           ArithCase{ArithOp::kMov, 7, 3, 3},
                                           ArithCase{ArithOp::kSub, 3, 7, -4}));

TEST_F(ExecutorTest, LoadImmediate) {
  EventBuilder b;
  b.LoadImm(ops::kResult, 200).Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 200);
}

TEST_F(ExecutorTest, DivisionByZeroIsPolicyError) {
  EventBuilder b;
  b.LoadImm(ops::kScratch1, 0)
      .Arith(ops::kScratch0, ops::kScratch1, ArithOp::kDiv)
      .Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find("division by zero"), std::string::npos);
}

struct CompCase {
  CompOp op;
  int64_t lhs, rhs;
  bool expected;
};

class CompTest : public ExecutorTest, public ::testing::WithParamInterface<CompCase> {};

TEST_P(CompTest, SetsConditionFlag) {
  const CompCase& param = GetParam();
  EventBuilder b;
  auto false_path = b.NewLabel();
  b.Comp(ops::kScratch0, ops::kScratch1, param.op);
  b.JumpIfFalse(false_path);
  b.LoadImm(ops::kResult, 1).Return(0);
  b.Bind(false_path);
  b.LoadImm(ops::kResult, 0).Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  c->operands().WriteInt(ops::kScratch0, param.lhs);
  c->operands().WriteInt(ops::kScratch1, param.rhs);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), param.expected ? 1 : 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CompTest,
    ::testing::Values(CompCase{CompOp::kGt, 5, 3, true}, CompCase{CompOp::kGt, 3, 3, false},
                      CompCase{CompOp::kLt, 2, 3, true}, CompCase{CompOp::kLt, 3, 3, false},
                      CompCase{CompOp::kEq, 3, 3, true}, CompCase{CompOp::kEq, 2, 3, false},
                      CompCase{CompOp::kNe, 2, 3, true}, CompCase{CompOp::kNe, 3, 3, false},
                      CompCase{CompOp::kGe, 3, 3, true}, CompCase{CompOp::kGe, 2, 3, false},
                      CompCase{CompOp::kLe, 3, 3, true}, CompCase{CompOp::kLe, 4, 3, false}));

TEST_F(ExecutorTest, NonTestCommandClearsConditionFlag) {
  // Comp makes the flag true; LoadImm (non-test) clears it; the Jump is then taken — this is
  // how Table 2's "unconditional" jumps work.
  EventBuilder b;
  auto target = b.NewLabel();
  b.Comp(ops::kScratch0, ops::kScratch0, CompOp::kEq);  // true
  b.LoadImm(ops::kScratch1, 1);                         // clears the flag
  b.JumpIfFalse(target);                                // must be taken
  b.LoadImm(ops::kResult, 99).Return(0);
  b.Bind(target);
  b.LoadImm(ops::kResult, 42).Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 42);
}

TEST_F(ExecutorTest, LogicOps) {
  EventBuilder b;
  b.LoadImm(ops::kScratch0, 1)
      .LoadImm(ops::kScratch1, 0)
      .Logic(ops::kScratch0, ops::kScratch1, LogicOp::kOr)    // 1|0 = 1
      .Logic(ops::kResult, ops::kScratch1, LogicOp::kNot)     // !0 = 1
      .Logic(ops::kScratch0, ops::kResult, LogicOp::kAnd)     // 1&1 = 1
      .Logic(ops::kScratch0, ops::kResult, LogicOp::kXor)     // 1^1 = 0
      .Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kScratch0), 0);
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 1);
}

// ---------------------------------------------------------------- queues and pages

TEST_F(ExecutorTest, DeQueueEnQueueRoundTrip) {
  EventBuilder b;
  b.DeQueueHead(ops::kPage, ops::kFreeQueue)
      .EnQueueTail(ops::kPage, ops::kActiveQueue)
      .Return(0);
  HipecOptions options;
  options.min_frames = 4;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_EQ(c->free_q().count(), 4u);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->free_q().count(), 3u);
  EXPECT_EQ(c->active_q().count(), 1u);
}

TEST_F(ExecutorTest, DeQueueFromEmptyQueueIsPolicyError) {
  EventBuilder b;
  b.DeQueueHead(ops::kPage, ops::kActiveQueue).Return(ops::kPage);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find("empty queue"), std::string::npos);
}

TEST_F(ExecutorTest, EnQueueOfForeignFrameIsPolicyError) {
  EventBuilder b;
  b.EnQueueTail(ops::kPage, ops::kActiveQueue).Return(0);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  mach::VmPage foreign;  // owner == nullptr: not this container's frame
  c->operands().WritePage(ops::kPage, &foreign);
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find("does not own"), std::string::npos);
}

TEST_F(ExecutorTest, EmptyQAndInQ) {
  EventBuilder b;
  auto not_empty = b.NewLabel();
  b.EmptyQ(ops::kActiveQueue);          // true: empty
  b.JumpIfFalse(not_empty);
  b.LoadImm(ops::kResult, 1);
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.EnQueueTail(ops::kPage, ops::kActiveQueue);
  auto done = b.NewLabel();
  b.InQ(ops::kActiveQueue, ops::kPage);  // true now
  b.JumpIfFalse(done);
  b.LoadImm(ops::kScratch1, 7);
  b.Bind(done);
  b.Return(0);
  b.Bind(not_empty);
  b.LoadImm(ops::kResult, 0).Return(0);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 1);
  EXPECT_EQ(c->operands().ReadInt(ops::kScratch1), 7);
}

TEST_F(ExecutorTest, SetRefModBits) {
  EventBuilder b;
  auto after_ref = b.NewLabel();
  auto after_mod = b.NewLabel();
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.SetBit(ops::kPage, PageBit::kReference, true);
  b.Ref(ops::kPage);
  b.JumpIfFalse(after_ref);
  b.LoadImm(ops::kResult, 1);
  b.Bind(after_ref);
  b.SetBit(ops::kPage, PageBit::kModify, true);
  b.SetBit(ops::kPage, PageBit::kModify, false);
  b.Mod(ops::kPage);
  b.JumpIfFalse(after_mod);
  b.LoadImm(ops::kScratch1, 9);  // would mean "still modified" — wrong
  b.Bind(after_mod);
  b.EnQueueTail(ops::kPage, ops::kFreeQueue).Return(0);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 1);
  EXPECT_EQ(c->operands().ReadInt(ops::kScratch1), 0);
}

// ---------------------------------------------------------------- Activate

TEST_F(ExecutorTest, ActivateRunsAnotherEventLikeAProcedureCall) {
  PolicyProgram p;
  EventBuilder fault;
  fault.Activate(kFirstUserEvent).LoadImm(ops::kScratch1, 5).Return(0);
  p.SetEvent(kEventPageFault, fault.Build());
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEvent(kEventReclaimFrame, reclaim.Build());
  EventBuilder user;
  user.LoadImm(ops::kResult, 77).Return(0);
  p.SetEvent(kFirstUserEvent, user.Build());
  Container* c = MakeContainer(std::move(p));
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 77);   // callee ran
  EXPECT_EQ(c->operands().ReadInt(ops::kScratch1), 5);  // and control returned
}

TEST_F(ExecutorTest, ActivateRecursionLimited) {
  PolicyProgram p;
  EventBuilder fault;
  fault.Activate(kFirstUserEvent).Return(0);
  p.SetEvent(kEventPageFault, fault.Build());
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEvent(kEventReclaimFrame, reclaim.Build());
  EventBuilder user;
  user.Activate(kFirstUserEvent).Return(0);  // self-recursion
  p.SetEvent(kFirstUserEvent, user.Build());
  Container* c = MakeContainer(std::move(p));
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
  EXPECT_NE(result.error.find("recursion"), std::string::npos);
}

// ---------------------------------------------------------------- Request / Release / Flush

TEST_F(ExecutorTest, RequestGrantsFramesAllOrNothing) {
  EventBuilder b;
  auto failed = b.NewLabel();
  b.Request(ops::kRequestSize, ops::kFreeQueue);
  b.JumpIfFalse(failed);
  b.LoadImm(ops::kResult, 1).Return(0);
  b.Bind(failed);
  b.LoadImm(ops::kResult, 0).Return(0);
  HipecOptions options;
  options.min_frames = 4;
  options.request_size = 10;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 1);
  EXPECT_EQ(c->free_q().count(), 14u);
  EXPECT_EQ(c->allocated_frames, 14u);
  EXPECT_EQ(manager_.total_specific(), 14u);
}

TEST_F(ExecutorTest, OversizedRequestRejectedWithoutHanging) {
  EventBuilder b;
  auto failed = b.NewLabel();
  b.Request(ops::kRequestSize, ops::kFreeQueue);
  b.JumpIfFalse(failed);
  b.LoadImm(ops::kResult, 1).Return(0);
  b.Bind(failed);
  b.LoadImm(ops::kResult, 0).Return(0);
  HipecOptions options;
  options.min_frames = 4;
  options.request_size = 100'000;  // far beyond physical memory
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->operands().ReadInt(ops::kResult), 0);  // the executor observed the rejection
  EXPECT_EQ(c->allocated_frames, 4u);
}

TEST_F(ExecutorTest, ReleaseReturnsFramesToTheSystem) {
  EventBuilder b;
  b.Release(ops::kFreeQueue).Return(0);
  HipecOptions options;
  options.min_frames = 4;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  size_t daemon_free = kernel_.daemon().free_count();
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->allocated_frames, 3u);
  EXPECT_EQ(kernel_.daemon().free_count(), daemon_free + 1);
}

TEST_F(ExecutorTest, FlushOfCleanUnmappedPageReturnsSamePage) {
  EventBuilder b;
  b.DeQueueHead(ops::kPage, ops::kFreeQueue)
      .Flush(ops::kPage)
      .EnQueueTail(ops::kPage, ops::kFreeQueue)
      .Return(0);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->free_q().count(), 2u);
  EXPECT_EQ(manager_.counters().Get("manager.flushes_clean"), 1);
}

// ---------------------------------------------------------------- failure modes & costs

TEST_F(ExecutorTest, RunawayLoopHitsBackstop) {
  EventBuilder b;
  auto loop = b.NewLabel();
  b.Bind(loop);
  b.ClearCondition();
  b.JumpIfFalse(loop);
  b.Return(0);  // unreachable, satisfies the validator
  Container* c = MakeContainer(OneEvent(b.Build()));
  executor_.set_max_commands(10'000);
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kTimeout);
  EXPECT_GE(result.commands_executed, 10'000);
}

TEST_F(ExecutorTest, FallingOffTheStreamIsPolicyError) {
  PolicyProgram p;
  // Bypass the builder/validator: a stream that just ends after a Comp.
  p.SetEventRaw(kEventPageFault,
                {kHipecMagic, Instruction{Opcode::kComp, ops::kScratch0, ops::kScratch1,
                                          static_cast<uint8_t>(CompOp::kEq)}
                                  .Encode()});
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEventRaw(kEventReclaimFrame, {kHipecMagic, Instruction{}.Encode()});
  Container* c = MakeContainer(std::move(p));
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
}

TEST_F(ExecutorTest, ChargesInvokePlusPerCommandDecode) {
  EventBuilder b;
  b.LoadImm(ops::kScratch0, 1).LoadImm(ops::kScratch1, 2).Return(0);  // 3 commands
  Container* c = MakeContainer(OneEvent(b.Build()));
  sim::Nanos before = kernel_.clock().now();
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  sim::Nanos elapsed = kernel_.clock().now() - before;
  const sim::CostModel& costs = kernel_.costs();
  EXPECT_EQ(elapsed, costs.policy_invoke_ns + 3 * costs.command_decode_ns);
}

TEST_F(ExecutorTest, TimestampSetDuringAndClearedAfterExecution) {
  EventBuilder b;
  b.Return(0);
  Container* c = MakeContainer(OneEvent(b.Build()));
  EXPECT_EQ(c->exec_start_ns, -1);
  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  EXPECT_EQ(c->exec_start_ns, -1);
  EXPECT_GT(c->commands_executed, 0);
}

// ---------------------------------------------------------------- complex commands

class ComplexCommandTest : public ExecutorTest,
                           public ::testing::WithParamInterface<Opcode> {};

TEST_P(ComplexCommandTest, EvictsAccordingToPolicy) {
  Opcode op = GetParam();
  EventBuilder b;
  switch (op) {
    case Opcode::kFifo:
      b.Fifo(ops::kActiveQueue, ops::kPage);
      break;
    case Opcode::kLru:
      b.Lru(ops::kActiveQueue, ops::kPage);
      break;
    default:
      b.Mru(ops::kActiveQueue, ops::kPage);
      break;
  }
  b.EnQueueTail(ops::kPage, ops::kFreeQueue).Return(ops::kPage);
  HipecOptions options;
  options.min_frames = 3;
  Container* c = MakeContainer(OneEvent(b.Build()), options);

  // Stage three pages on the active queue with known arrival and recency orders:
  // arrival p0,p1,p2; recency p1 oldest, then p2, then p0 most recent.
  mach::VmPage* p0 = c->free_q().DequeueHead();
  mach::VmPage* p1 = c->free_q().DequeueHead();
  mach::VmPage* p2 = c->free_q().DequeueHead();
  c->active_q().EnqueueTail(p0, 0);
  c->active_q().EnqueueTail(p1, 1);
  c->active_q().EnqueueTail(p2, 2);
  p1->last_reference_ns = 10;
  p2->last_reference_ns = 20;
  p0->last_reference_ns = 30;

  ASSERT_TRUE(executor_.ExecuteEvent(c, kEventPageFault).ok());
  mach::VmPage* victim = c->free_q().head();
  ASSERT_NE(victim, nullptr);
  switch (op) {
    case Opcode::kFifo:
      EXPECT_EQ(victim, p0);  // first arrived
      break;
    case Opcode::kLru:
      EXPECT_EQ(victim, p1);  // least recently used
      break;
    default:
      EXPECT_EQ(victim, p0);  // most recently used
      break;
  }
  EXPECT_EQ(c->active_q().count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ComplexCommandTest,
                         ::testing::Values(Opcode::kFifo, Opcode::kLru, Opcode::kMru));

TEST_F(ExecutorTest, ComplexCommandOnEmptyQueueIsPolicyError) {
  EventBuilder b;
  b.Lru(ops::kActiveQueue, ops::kPage).Return(ops::kPage);
  HipecOptions options;
  options.min_frames = 2;
  Container* c = MakeContainer(OneEvent(b.Build()), options);
  ExecResult result = executor_.ExecuteEvent(c, kEventPageFault);
  EXPECT_EQ(result.outcome, ExecOutcome::kError);
}

}  // namespace
}  // namespace hipec::core
