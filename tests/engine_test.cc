// Integration tests: the full HiPEC stack (kernel + engine + manager + checker + bytecode
// policies) driven through real memory accesses, compared against oracle replacement
// simulations, plus security/termination behaviour and frame-conservation invariants.
#include <gtest/gtest.h>

#include <vector>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/oracle.h"
#include "policies/policies.h"
#include "sim/random.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;
using mach::kPageSize;
using policies::CommandStyle;
using policies::OraclePolicy;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;  // 896 free after boot
  params.pageout.free_target = 32;
  params.pageout.free_min = 8;
  params.pageout.inactive_target = 64;
  params.hipec_build = true;
  return params;
}

HipecOptions DefaultOptions(size_t min_frames) {
  HipecOptions options;
  options.min_frames = min_frames;
  options.free_target = 8;
  options.inactive_target = 16;
  options.reserved_target = 0;
  return options;
}

// Checks the frame-conservation invariant including manager-owned frames.
void ExpectConservation(mach::Kernel& kernel) {
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

TEST(EngineTest, RegistrationHappyPath) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 64 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(32));
  ASSERT_TRUE(region.ok) << region.error;
  ASSERT_NE(region.container, nullptr);
  EXPECT_EQ(region.container->allocated_frames, 32u);
  EXPECT_EQ(region.container->free_q().count(), 32u);
  EXPECT_EQ(engine.manager().total_specific(), 32u);
  EXPECT_GT(region.container->buffer_vaddr, 0u);
  ExpectConservation(kernel);
}

TEST(EngineTest, RegistrationRejectsInvalidProgram) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  PolicyProgram bad;  // missing both required events
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, bad, DefaultOptions(8));
  EXPECT_FALSE(region.ok);
  EXPECT_NE(region.error.find("PageFault"), std::string::npos);
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(EngineTest, RegistrationRejectsUnsatisfiableMinFrame) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  // partition_burst = 448 (50% of 896); a minFrame beyond it must be rejected.
  HipecRegion region = engine.VmAllocateHipec(task, 1024 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(800));
  EXPECT_FALSE(region.ok);
  EXPECT_NE(region.error.find("minFrame"), std::string::npos);
  EXPECT_FALSE(task->terminated());  // app may continue as a non-specific application
  ExpectConservation(kernel);
}

TEST(EngineTest, FaultsServedFromPrivateFreeList) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 32 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(32));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 32 * kPageSize, true));
  EXPECT_EQ(engine.counters().Get("engine.faults_handled"), 32);
  EXPECT_EQ(region.container->free_q().count(), 0u);
  EXPECT_EQ(region.container->active_q().count(), 32u);
  // Re-touching is all TLB hits.
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 32 * kPageSize, false));
  EXPECT_EQ(engine.counters().Get("engine.faults_handled"), 32);
  ExpectConservation(kernel);
}

TEST(EngineTest, SecondChancePolicyRecyclesUnderPressure) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 128 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(64));
  ASSERT_TRUE(region.ok) << region.error;
  // 128 pages through 64 frames: the Lack_free_frame event must run and recycle.
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 128 * kPageSize, true));
  EXPECT_FALSE(task->terminated()) << task->termination_reason();
  EXPECT_EQ(engine.counters().Get("engine.faults_handled"), 128);
  EXPECT_EQ(region.container->allocated_frames, 64u);
  // Dirty victims were flushed through the manager's asynchronous exchange.
  EXPECT_GT(engine.manager().counters().Get("manager.flushes_async"), 0);
  ExpectConservation(kernel);
}

// The interned-counter fast path and the retained string-keyed API must observe the same
// values — across a real fault storm that exercises the converted call sites in the kernel,
// engine, manager and executor.
TEST(EngineTest, CounterApisAgreeAcrossFaultStorm) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 128 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(64));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 128 * kPageSize, true));

  // String-keyed Get resolves through the registry onto the same slots the interned-id adds
  // hit on the fault path.
  EXPECT_EQ(engine.counters().Get("engine.faults_handled"), 128);
  EXPECT_EQ(engine.counters().Get(sim::InternCounter("engine.faults_handled")), 128);
  EXPECT_EQ(kernel.counters().Get("kernel.page_faults"),
            kernel.counters().Get(sim::InternCounter("kernel.page_faults")));
  EXPECT_GT(kernel.counters().Get("kernel.hipec_faults"), 0);
  EXPECT_GT(engine.executor().counters().Get("executor.events"), 0);
  EXPECT_EQ(engine.executor().counters().Get("executor.events"),
            engine.executor().counters().Get(sim::InternCounter("executor.events")));

  // The materialized view lists exactly what Get reports.
  auto all = engine.counters().all();
  EXPECT_EQ(all.at("engine.faults_handled"), 128);
  EXPECT_NE(engine.counters().ToString().find("engine.faults_handled=128"),
            std::string::npos);
  ExpectConservation(kernel);
}

TEST(EngineTest, WriteToCommandBufferTerminatesApplication) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(16));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.Touch(task, region.container->buffer_vaddr, false));  // reads fine
  EXPECT_FALSE(kernel.Touch(task, region.container->buffer_vaddr, true));  // writes kill
  EXPECT_TRUE(task->terminated());
  EXPECT_NE(task->termination_reason().find("write-protected"), std::string::npos);
  // Termination returned every private frame.
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(EngineTest, PolicyRuntimeErrorTerminatesApplication) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  // A policy that dequeues from the (empty) inactive queue on every fault.
  PolicyProgram bad;
  EventBuilder fault;
  fault.DeQueueHead(ops::kPage, ops::kInactiveQueue).Return(ops::kPage);
  bad.SetEvent(kEventPageFault, fault.Build());
  bad.SetEvent(kEventReclaimFrame, policies::StandardReclaimEvent());
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, bad, DefaultOptions(8));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_FALSE(kernel.Touch(task, region.addr, false));
  EXPECT_TRUE(task->terminated());
  EXPECT_NE(task->termination_reason().find("empty queue"), std::string::npos);
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(EngineTest, RunawayPolicyKilledBySecurityChecker) {
  mach::KernelParams params = SmallParams();
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  PolicyProgram runaway;
  EventBuilder fault;
  auto loop = fault.NewLabel();
  fault.Bind(loop);
  fault.ClearCondition();
  fault.JumpIfFalse(loop);
  fault.Return(0);
  runaway.SetEvent(kEventPageFault, fault.Build());
  runaway.SetEvent(kEventReclaimFrame, policies::StandardReclaimEvent());
  HipecOptions options = DefaultOptions(8);
  options.timeout_ns = 100 * sim::kMillisecond;  // TimeOut period (privileged-user setting)
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, runaway, options);
  ASSERT_TRUE(region.ok) << region.error;

  EXPECT_FALSE(kernel.Touch(task, region.addr, false));
  EXPECT_TRUE(task->terminated());
  EXPECT_NE(task->termination_reason().find("timed out"), std::string::npos);
  EXPECT_GE(engine.checker().timeouts_detected(), 1);
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(EngineTest, CheckerIntervalDoublesWhenQuiet) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  sim::Nanos initial = engine.checker().current_wakeup_interval();
  EXPECT_GE(initial, kernel.costs().checker_wakeup_min_ns);
  // Quiet system: interval doubles up to the 8 s cap, so the checker "sleeps most of the
  // time and does not create enormous overhead" (§4.3.3).
  kernel.clock().Advance(60 * sim::kSecond);
  EXPECT_EQ(engine.checker().current_wakeup_interval(), kernel.costs().checker_wakeup_max_ns);
  EXPECT_GE(engine.checker().wakeups(), 5);
}

TEST(EngineTest, CheckerIntervalHalvesOnTimeoutDetection) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  // Let the interval grow to 1 s first (wakeups at 0.25 s and 0.75 s).
  kernel.clock().Advance(800 * sim::kMillisecond);
  ASSERT_EQ(engine.checker().current_wakeup_interval(), sim::kSecond);

  // A runaway execution detected at the next wakeup halves the interval.
  mach::Task* task = kernel.CreateTask("app");
  PolicyProgram runaway;
  EventBuilder fault;
  auto loop = fault.NewLabel();
  fault.Bind(loop);
  fault.ClearCondition();
  fault.JumpIfFalse(loop);
  fault.Return(0);
  runaway.SetEvent(kEventPageFault, fault.Build());
  runaway.SetEvent(kEventReclaimFrame, policies::StandardReclaimEvent());
  HipecOptions options = DefaultOptions(8);
  options.timeout_ns = 50 * sim::kMillisecond;
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, runaway, options);
  ASSERT_TRUE(region.ok) << region.error;
  kernel.Touch(task, region.addr, false);
  EXPECT_TRUE(task->terminated());
  EXPECT_EQ(engine.checker().timeouts_detected(), 1);
  EXPECT_EQ(engine.checker().current_wakeup_interval(), 500 * sim::kMillisecond);
}

TEST(EngineTest, RequestReclaimsFromEarlierContainerFafr) {
  mach::KernelParams params = SmallParams();
  params.total_frames = 640;
  params.kernel_reserved_frames = 64;  // 576 free after boot; burst = 288
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel, FrameManagerConfig{0.9, 32});  // burst = 518
  mach::Task* a = kernel.CreateTask("a");
  mach::Task* b = kernel.CreateTask("b");

  HipecRegion ra = engine.VmAllocateHipec(a, 400 * kPageSize,
                                          policies::FifoSecondChancePolicy(),
                                          DefaultOptions(64));
  ASSERT_TRUE(ra.ok) << ra.error;
  // A grows far beyond its minimum.
  ASSERT_TRUE(engine.manager().RequestFrames(ra.container, 300, &ra.container->free_q()));
  EXPECT_EQ(ra.container->allocated_frames, 364u);

  // B's admission cannot be met from free memory alone (576 boot-free - 32 reserve - 364
  // held by A leaves ~180); the manager must run A's ReclaimFrame event (normal
  // reclamation, First-Allocated-First-Reclaimed).
  HipecRegion rb = engine.VmAllocateHipec(b, 250 * kPageSize,
                                          policies::FifoSecondChancePolicy(),
                                          DefaultOptions(200));
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(rb.container->allocated_frames, 200u);
  EXPECT_LT(ra.container->allocated_frames, 364u);
  EXPECT_GE(ra.container->allocated_frames, 64u);  // never below minFrame
  EXPECT_GT(engine.manager().counters().Get("manager.normal_reclaims"), 0);
  ExpectConservation(kernel);
}

TEST(EngineTest, ForcedReclaimWhenPolicyRefusesToRelease) {
  mach::KernelParams params = SmallParams();
  params.total_frames = 640;
  params.kernel_reserved_frames = 64;
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel, FrameManagerConfig{0.9, 32});
  mach::Task* a = kernel.CreateTask("a");
  mach::Task* b = kernel.CreateTask("b");

  // A's ReclaimFrame event returns immediately without releasing anything.
  PolicyProgram selfish = policies::FifoSecondChancePolicy();
  EventBuilder noop;
  noop.Return(0);
  selfish.SetEvent(kEventReclaimFrame, noop.Build());

  HipecRegion ra = engine.VmAllocateHipec(a, 400 * kPageSize, selfish, DefaultOptions(64));
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(engine.manager().RequestFrames(ra.container, 300, &ra.container->free_q()));

  HipecRegion rb = engine.VmAllocateHipec(b, 250 * kPageSize,
                                          policies::FifoSecondChancePolicy(),
                                          DefaultOptions(200));
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_GT(engine.manager().counters().Get("manager.forced_reclaims"), 0);
  EXPECT_GE(ra.container->allocated_frames, 64u);
  ExpectConservation(kernel);
}

TEST(EngineTest, PartitionBurstBoundsSpecificAllocations) {
  mach::Kernel kernel(SmallParams());  // 896 free; burst = 448
  HipecEngine engine(&kernel);
  mach::Task* a = kernel.CreateTask("a");
  HipecRegion ra = engine.VmAllocateHipec(a, 600 * kPageSize,
                                          policies::FifoSecondChancePolicy(),
                                          DefaultOptions(200));
  ASSERT_TRUE(ra.ok) << ra.error;
  // Requests up to the burst succeed; beyond it they are rejected (no other app has surplus).
  EXPECT_TRUE(engine.manager().RequestFrames(ra.container, 248, &ra.container->free_q()));
  EXPECT_EQ(engine.manager().total_specific(), 448u);
  EXPECT_FALSE(engine.manager().RequestFrames(ra.container, 1, &ra.container->free_q()));
  EXPECT_LE(engine.manager().total_specific(), engine.manager().partition_burst());
  ExpectConservation(kernel);
}

TEST(EngineTest, TeardownReturnsEverything) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecRegion region = engine.VmAllocateHipec(task, 64 * kPageSize,
                                              policies::FifoSecondChancePolicy(),
                                              DefaultOptions(48));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, true));
  kernel.TerminateTask(task, "done");
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  EXPECT_EQ(engine.manager().containers().size(), 0u);
  EXPECT_EQ(engine.counters().Get("engine.teardowns"), 1);
  ExpectConservation(kernel);
  // Only the manager's own reserve/laundry frames remain hipec-owned.
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.container_owned, engine.manager().manager_owned());
}

TEST(EngineTest, VmMapHipecControlsFileBackedRegion) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("db");
  mach::VmObject* table = kernel.CreateFileObject("table", 64 * kPageSize);
  HipecRegion region = engine.VmMapHipec(task, table, policies::MruPolicy(),
                                         DefaultOptions(32));
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, false));
  // File-backed: every fill came from disk.
  EXPECT_EQ(kernel.counters().Get("kernel.disk_fills"), 64);
  EXPECT_FALSE(task->terminated());
  ExpectConservation(kernel);
}

// ---------------------------------------------------------------- oracle equivalence

// Runs `trace` (region page numbers) through the engine with `program` and a pool of
// `min_frames` frames; returns the number of HiPEC faults taken.
int64_t RunTrace(const std::vector<uint64_t>& trace, size_t min_frames,
                 const PolicyProgram& program) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options = DefaultOptions(min_frames);
  HipecRegion region = engine.VmAllocateHipec(task, 512 * kPageSize, program, options);
  EXPECT_TRUE(region.ok) << region.error;
  for (uint64_t page : trace) {
    EXPECT_TRUE(kernel.Touch(task, region.addr + page * kPageSize, true))
        << task->termination_reason();
    if (task->terminated()) {
      break;
    }
  }
  return engine.counters().Get("engine.faults_handled");
}

struct OracleCase {
  OraclePolicy oracle;
  CommandStyle style;
  const char* name;
};

class OracleEquivalenceTest : public ::testing::TestWithParam<OracleCase> {};

PolicyProgram ProgramFor(const OracleCase& param) {
  switch (param.oracle) {
    case OraclePolicy::kFifo:
      return policies::FifoPolicy(param.style);
    case OraclePolicy::kLru:
      return policies::LruPolicy(param.style);
    case OraclePolicy::kMru:
      return policies::MruPolicy(param.style);
  }
  return {};
}

TEST_P(OracleEquivalenceTest, SequentialCyclicScan) {
  // The join-like pattern: repeated sequential scans over more pages than frames. For this
  // access pattern queue order equals recency order, so simple and complex styles agree.
  std::vector<uint64_t> trace;
  for (int loop = 0; loop < 4; ++loop) {
    for (uint64_t p = 0; p < 48; ++p) {
      trace.push_back(p);
    }
  }
  int64_t engine_faults = RunTrace(trace, 32, ProgramFor(GetParam()));
  policies::OracleResult oracle = policies::SimulateReplacement(trace, 32, GetParam().oracle);
  if (GetParam().oracle == OraclePolicy::kMru && GetParam().style == CommandStyle::kSimple) {
    // The DeQueue-tail expression of MRU uses *fault* order, which trails exact recency by
    // at most one page per scan (see policies.h); here: 4 scans.
    EXPECT_NEAR(static_cast<double>(engine_faults), static_cast<double>(oracle.faults), 4.0);
  } else {
    EXPECT_EQ(engine_faults, static_cast<int64_t>(oracle.faults));
  }
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndStyles, OracleEquivalenceTest,
    ::testing::Values(OracleCase{OraclePolicy::kFifo, CommandStyle::kComplex, "fifo_complex"},
                      OracleCase{OraclePolicy::kFifo, CommandStyle::kSimple, "fifo_simple"},
                      OracleCase{OraclePolicy::kLru, CommandStyle::kComplex, "lru_complex"},
                      OracleCase{OraclePolicy::kMru, CommandStyle::kComplex, "mru_complex"},
                      OracleCase{OraclePolicy::kMru, CommandStyle::kSimple, "mru_simple"}),
    [](const ::testing::TestParamInfo<OracleCase>& info) { return info.param.name; });

class RandomTraceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTraceTest, LruAndMruMatchOracleOnRandomTraces) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<uint64_t> trace;
  for (int i = 0; i < 600; ++i) {
    trace.push_back(rng.Below(60));
  }
  for (auto oracle_kind : {OraclePolicy::kLru, OraclePolicy::kMru}) {
    PolicyProgram program = oracle_kind == OraclePolicy::kLru
                                ? policies::LruPolicy(CommandStyle::kComplex)
                                : policies::MruPolicy(CommandStyle::kComplex);
    int64_t engine_faults = RunTrace(trace, 24, program);
    policies::OracleResult oracle = policies::SimulateReplacement(trace, 24, oracle_kind);
    EXPECT_EQ(engine_faults, static_cast<int64_t>(oracle.faults))
        << "policy=" << (oracle_kind == OraclePolicy::kLru ? "LRU" : "MRU")
        << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceTest, ::testing::Range(1, 9));

TEST(EngineAnalyticTest, JoinFormulasMatchPaper) {
  // Spot values of the paper's formulas: 60 MB outer, 40 MB memory, 64 loops.
  int64_t mb = 1024 * 1024;
  EXPECT_EQ(policies::JoinFaultsLru(60 * mb, 40 * mb, 64), 60 * mb * 64 / 4096);
  EXPECT_EQ(policies::JoinFaultsMru(60 * mb, 40 * mb, 64),
            ((60 - 40) * mb * 63 + 60 * mb) / 4096);
  // At or below memory size both degenerate to one cold scan.
  EXPECT_EQ(policies::JoinFaultsLru(40 * mb, 40 * mb, 64), 40 * mb / 4096);
  EXPECT_EQ(policies::JoinFaultsMru(40 * mb, 40 * mb, 64), 40 * mb / 4096);
}

}  // namespace
}  // namespace hipec::core
