// Targeted coverage for corners the module suites do not reach: extension opcode encodings,
// validator rules for Migrate/Unlink, disk write scheduling, solid-state mode details, and
// kernel edge cases.
#include <gtest/gtest.h>

#include "disk/disk_model.h"
#include "hipec/builder.h"
#include "hipec/validator.h"
#include "lang/compiler.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/random.h"

namespace hipec {
namespace {

using core::EventBuilder;
using core::Instruction;
using core::Opcode;
using core::PolicyProgram;
using mach::kPageSize;
namespace ops = core::std_ops;

// ---------------------------------------------------------------- extension opcodes

TEST(ExtensionOpcodeTest, BinaryValuesFollowTableOne) {
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kMigrate), 0x14);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kUnlink), 0x15);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kWeightedSelect), 0x16);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kSatDotProduct), 0x17);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kPageWord), 0x18);
  EXPECT_EQ(core::kOpcodeCount, 25);
  EXPECT_EQ(core::kPaperOpcodeCount, 20);
  EXPECT_TRUE(core::IsValidOpcode(0x15));
  EXPECT_TRUE(core::IsValidOpcode(0x16));
  EXPECT_TRUE(core::IsValidOpcode(0x17));
  EXPECT_TRUE(core::IsValidOpcode(0x18));
  EXPECT_FALSE(core::IsValidOpcode(0x19));
  EXPECT_EQ(*core::OpcodeName(Opcode::kMigrate), "Migrate");
  EXPECT_EQ(*core::OpcodeName(Opcode::kUnlink), "Unlink");
  EXPECT_EQ(*core::OpcodeName(Opcode::kWeightedSelect), "WeightedSelect");
  EXPECT_EQ(*core::OpcodeName(Opcode::kSatDotProduct), "SatDotProduct");
  EXPECT_EQ(*core::OpcodeName(Opcode::kPageWord), "PageWord");
  EXPECT_TRUE(core::SetsCondition(Opcode::kMigrate));   // success is testable
  EXPECT_FALSE(core::SetsCondition(Opcode::kUnlink));
  // The rank/score family is all non-test: results land in operands, not the flag.
  EXPECT_FALSE(core::SetsCondition(Opcode::kWeightedSelect));
  EXPECT_FALSE(core::SetsCondition(Opcode::kSatDotProduct));
  EXPECT_FALSE(core::SetsCondition(Opcode::kPageWord));
}

core::OperandArray StdLayout() {
  static mach::PageQueue f("f"), a("a"), i("i");
  core::OperandArray layout;
  layout.DefineQueue(ops::kFreeQueue, &f);
  layout.DefineQueueCount(ops::kFreeCount, &f);
  layout.DefineQueue(ops::kActiveQueue, &a);
  layout.DefineQueue(ops::kInactiveQueue, &i);
  layout.DefinePage(ops::kPage);
  layout.DefineInt(ops::kScratch0, 0);
  layout.DefineInt(ops::kReclaimCount, 0);
  return layout;
}

PolicyProgram WrapFault(std::vector<Instruction> commands) {
  PolicyProgram p;
  p.SetEvent(core::kEventPageFault, commands);
  EventBuilder r;
  r.Return(0);
  p.SetEvent(core::kEventReclaimFrame, r.Build());
  return p;
}

TEST(ExtensionValidatorTest, MigrateOperandTypes) {
  core::OperandArray layout = StdLayout();
  // Good: page + int.
  EventBuilder good;
  good.Migrate(ops::kPage, ops::kScratch0).Return(0);
  EXPECT_TRUE(core::ValidatePolicy(WrapFault(good.Build()), layout).empty());
  // Bad: queue where a page is required.
  EventBuilder bad1;
  bad1.Migrate(ops::kFreeQueue, ops::kScratch0).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad1.Build()), layout).empty());
  // Bad: page where an int target id is required.
  EventBuilder bad2;
  bad2.Migrate(ops::kPage, ops::kPage).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad2.Build()), layout).empty());
}

TEST(ExtensionValidatorTest, UnlinkRequiresPage) {
  core::OperandArray layout = StdLayout();
  EventBuilder bad;
  bad.Unlink(ops::kFreeQueue).Return(0);
  auto errors = core::ValidatePolicy(WrapFault(bad.Build()), layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(core::FormatErrors(errors).find("not a page"), std::string::npos);
}

TEST(ExtensionValidatorTest, WeightedSelectOperandTypes) {
  core::OperandArray layout = StdLayout();
  // Good: queue + page destination, both modes.
  EventBuilder good;
  good.WeightedSelectMin(ops::kFreeQueue, ops::kPage)
      .WeightedSelectMax(ops::kActiveQueue, ops::kPage)
      .Return(0);
  EXPECT_TRUE(core::ValidatePolicy(WrapFault(good.Build()), layout).empty());
  // Bad: page where a queue is required.
  EventBuilder bad1;
  bad1.WeightedSelectMin(ops::kPage, ops::kPage).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad1.Build()), layout).empty());
  // Bad: queue where the page destination is required.
  EventBuilder bad2;
  bad2.WeightedSelectMin(ops::kFreeQueue, ops::kActiveQueue).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad2.Build()), layout).empty());
  // Bad: mode byte outside {kMin, kMax}.
  EventBuilder bad3;
  bad3.Emit({Opcode::kWeightedSelect, ops::kFreeQueue, ops::kPage, 3}).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad3.Build()), layout).empty());
}

TEST(ExtensionValidatorTest, SatDotProductOperandRules) {
  core::OperandArray layout = StdLayout();
  layout.DefineInt(ops::kResult, 0);
  layout.DefineInt(ops::kScratch1, 0);
  // Good: kResult..kScratch1 is a two-int run, enough for width 1.
  EventBuilder good;
  good.SatDotProduct(ops::kScratch0, ops::kResult, 1).Return(0);
  EXPECT_TRUE(core::ValidatePolicy(WrapFault(good.Build()), layout).empty());
  // Bad: width 0 and width > kMaxDotWidth.
  EventBuilder bad1;
  bad1.SatDotProduct(ops::kScratch0, ops::kResult, 0).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad1.Build()), layout).empty());
  EventBuilder bad2;
  bad2.SatDotProduct(ops::kScratch0, ops::kResult,
                     static_cast<uint8_t>(core::kMaxDotWidth + 1))
      .Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad2.Build()), layout).empty());
  // Bad: the vector run walks into a non-int slot (kScratch0's neighbor is a queue).
  EventBuilder bad3;
  bad3.SatDotProduct(ops::kResult, ops::kScratch0, 1).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad3.Build()), layout).empty());
  // Bad: destination is not writable (queue slot).
  EventBuilder bad4;
  bad4.SatDotProduct(ops::kFreeQueue, ops::kResult, 1).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad4.Build()), layout).empty());
}

TEST(ExtensionValidatorTest, PageWordOperandRules) {
  core::OperandArray layout = StdLayout();
  // Good: load into a writable int, store from a readable int.
  EventBuilder good;
  good.PageWordLoad(ops::kPage, ops::kScratch0)
      .PageWordStore(ops::kPage, ops::kScratch0)
      .Return(0);
  EXPECT_TRUE(core::ValidatePolicy(WrapFault(good.Build()), layout).empty());
  // Bad: queue where the page is required.
  EventBuilder bad1;
  bad1.PageWordLoad(ops::kFreeQueue, ops::kScratch0).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad1.Build()), layout).empty());
  // Bad: load destination is not an int.
  EventBuilder bad2;
  bad2.PageWordLoad(ops::kPage, ops::kFreeQueue).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad2.Build()), layout).empty());
  // Bad: flag byte outside {kLoad, kStore}.
  EventBuilder bad3;
  bad3.Emit({Opcode::kPageWord, ops::kPage, ops::kScratch0, 0}).Return(0);
  EXPECT_FALSE(core::ValidatePolicy(WrapFault(bad3.Build()), layout).empty());
}

// ------------------------------------------------------- saturating arithmetic kernels

TEST(SaturatingArithmeticTest, AddBoundaries) {
  EXPECT_EQ(core::SatAdd64(INT64_MAX, 1), INT64_MAX);
  EXPECT_EQ(core::SatAdd64(INT64_MAX, INT64_MAX), INT64_MAX);
  EXPECT_EQ(core::SatAdd64(INT64_MIN, -1), INT64_MIN);
  EXPECT_EQ(core::SatAdd64(INT64_MIN, INT64_MIN), INT64_MIN);
  EXPECT_EQ(core::SatAdd64(INT64_MAX, INT64_MIN), -1);  // exact, no saturation
  EXPECT_EQ(core::SatAdd64(-5, 3), -2);
}

TEST(SaturatingArithmeticTest, MulBoundaries) {
  EXPECT_EQ(core::SatMul64(INT64_MAX, 2), INT64_MAX);
  EXPECT_EQ(core::SatMul64(INT64_MIN, 2), INT64_MIN);
  EXPECT_EQ(core::SatMul64(INT64_MIN, -1), INT64_MAX);  // the -INT64_MIN overflow corner
  EXPECT_EQ(core::SatMul64(-1, INT64_MIN), INT64_MAX);
  EXPECT_EQ(core::SatMul64(INT64_MIN, 0), 0);
  EXPECT_EQ(core::SatMul64(INT64_MAX, -1), INT64_MIN + 1);  // exact
  EXPECT_EQ(core::SatMul64(-3, 7), -21);
  EXPECT_EQ(core::SatMul64(1LL << 32, 1LL << 32), INT64_MAX);
}

TEST(SaturatingArithmeticTest, DotProductSaturatesPerTermAndPerSum) {
  core::OperandEntry slots[4] = {};
  slots[0].int_value = INT64_MAX;
  slots[1].int_value = 2;  // weights
  slots[2].int_value = 2;
  slots[3].int_value = INT64_MAX;  // features
  // w0*f0 saturates high; w1*f1 saturates high; the saturating sum stays pinned.
  EXPECT_EQ(core::SatDotSlots(slots, 0, 2), INT64_MAX);
  slots[0].int_value = INT64_MIN;
  slots[3].int_value = 1;
  // INT64_MIN*2 pins low, 2*1 nudges up: the sum must saturate per step, not wrap.
  EXPECT_EQ(core::SatDotSlots(slots, 0, 2), INT64_MIN + 2);
}

// ---------------------------------------------------------------- disk details

TEST(DiskSchedulingTest, ElevatorDrainsFasterThanFifoOnScatteredWrites) {
  auto drain_time = [](disk::WriteScheduling sched) {
    sim::VirtualClock clock;
    disk::DiskModel disk(&clock, disk::DiskParams::Era1994(), /*seed=*/3, sched);
    // Alternate near/far cylinders: FIFO seeks the full span every time; the elevator
    // batches by position.
    uint64_t bpc = static_cast<uint64_t>(disk.params().BlocksPerCylinder());
    for (int i = 0; i < 40; ++i) {
      disk.WritePageAsync((i % 2 == 0 ? static_cast<uint64_t>(i) : 1000 + i) * bpc);
    }
    disk.DrainWrites();
    return clock.now();
  };
  EXPECT_LT(drain_time(disk::WriteScheduling::kElevator),
            drain_time(disk::WriteScheduling::kFifo));
}

TEST(SolidStateTest, WritePenaltyAndCounters) {
  sim::VirtualClock clock;
  disk::DiskModel flash(&clock, disk::DiskParams::Flash1994(), /*seed=*/4);
  sim::Nanos read = flash.ReadPage(10);
  sim::Nanos write = flash.WritePageSync(10);
  EXPECT_NEAR(static_cast<double>(write - flash.params().controller_overhead_ns),
              4.0 * static_cast<double>(read - flash.params().controller_overhead_ns), 1.0);
  EXPECT_EQ(flash.counters().Get("disk.reads"), 1);
  EXPECT_EQ(flash.counters().Get("disk.writes_sync"), 1);
}

TEST(SolidStateTest, AsyncWritesStillAsynchronous) {
  sim::VirtualClock clock;
  disk::DiskModel flash(&clock, disk::DiskParams::Flash1994(), /*seed=*/5);
  flash.WritePageAsync(1);
  EXPECT_EQ(clock.now(), 0);
  flash.DrainWrites();
  EXPECT_GT(clock.now(), 0);
}

// ---------------------------------------------------------------- kernel edges

TEST(KernelEdgeTest, TouchOnTerminatedTaskFails) {
  mach::Kernel kernel{mach::KernelParams{}};
  mach::Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 4 * kPageSize);
  kernel.TerminateTask(task, "done");
  EXPECT_FALSE(kernel.Touch(task, addr, false));
}

TEST(KernelEdgeTest, DoubleTerminateIsIdempotent) {
  mach::Kernel kernel{mach::KernelParams{}};
  mach::Task* task = kernel.CreateTask("t");
  kernel.VmAllocate(task, 4 * kPageSize);
  kernel.TerminateTask(task, "first");
  kernel.TerminateTask(task, "second");
  EXPECT_EQ(task->termination_reason(), "first");
  EXPECT_EQ(kernel.counters().Get("kernel.task_terminations"), 1);
}

TEST(KernelEdgeTest, FindObjectById) {
  mach::Kernel kernel{mach::KernelParams{}};
  mach::VmObject* file = kernel.CreateFileObject("f", 4 * kPageSize);
  EXPECT_EQ(kernel.FindObject(file->id()), file);
  EXPECT_EQ(kernel.FindObject(99999), nullptr);
}

TEST(KernelEdgeTest, DeferredChargesDrainOnNextTouch) {
  mach::Kernel kernel{mach::KernelParams{}};
  mach::Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 4 * kPageSize);
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  kernel.AddDeferredCharge(5 * sim::kMillisecond);
  sim::Nanos before = kernel.clock().now();
  EXPECT_TRUE(kernel.Touch(task, addr, false));  // TLB hit + the stolen 5 ms
  EXPECT_EQ(kernel.clock().now() - before,
            5 * sim::kMillisecond + kernel.costs().memory_access_ns);
  EXPECT_EQ(kernel.pending_deferred_charge(), 0);
}

// ---------------------------------------------------------------- translator corners

TEST(TranslatorCornerTest, WhileWithCompoundCondition) {
  lang::CompiledPolicy compiled = lang::CompilePolicy(R"(
    Event PageFault() {
      x = 0
      y = 10
      while (x < 5 && y > 0) {
        x = x + 1
        y = y - 2
      }
      result = x * 100 + y
      page = de_queue_head(_free_queue)
      return(page)
    }
    Event ReclaimFrame() { return }
  )");
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options = compiled.options;
  options.min_frames = 8;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 16 * kPageSize, compiled.program, options);
  ASSERT_TRUE(region.ok) << region.error;
  ASSERT_TRUE(kernel.Touch(task, region.addr, false)) << task->termination_reason();
  EXPECT_EQ(region.container->operands().ReadInt(ops::kResult), 500);  // x=5, y=0
}

TEST(TranslatorCornerTest, SamplePolicyFilesStayCompilable) {
  // The shipped .hp samples must always compile (the smoke tests run hipecc on them too;
  // this keeps the property inside the unit suite).
  for (const char* body : {
           "Event PageFault() { page = lru(_active_queue) return(page) }\n"
           "Event ReclaimFrame() { return }",
           "queue a\nqueue b\nconst lim = 5000\n"
           "Event PageFault() {\n"
           "  if (fault_addr > lim) { page = fifo(_active_queue) }\n"
           "  else { page = de_queue_head(_free_queue) }\n"
           "  return(page)\n}\n"
           "Event ReclaimFrame() { return }",
       }) {
    EXPECT_NO_THROW(lang::CompilePolicy(body));
  }
}

}  // namespace
}  // namespace hipec
