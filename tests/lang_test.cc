// Tests for the pseudo-code translator: lexer, parser, code generation, error reporting, the
// hex exchange format, and the headline property — compiling Figure 4's pseudo-code yields a
// policy behaviourally identical to the hand-coded Table 2 program.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "hipec/engine.h"
#include "lang/assembler.h"
#include "lang/compiler.h"
#include "lang/parser.h"
#include "mach/kernel.h"
#include "policies/policies.h"

namespace hipec::lang {
namespace {

namespace ops = core::std_ops;
using mach::kPageSize;

// The pseudo-code of Figure 4, with the paper's own syntax quirks (begin/end/endif blocks,
// the `reserve_target` spelling, the implicit page argument of en_queue_tail).
constexpr const char* kFigure4Source = R"(
Event PageFault() {
  if (_free_count > reserve_target)
    page = de_queue_head(_free_queue)
  else begin
    Lack_free_frame()
    page = de_queue_head(_free_queue)
  endif
  return(page)
}

Event Lack_free_frame() {
  /* FIFO with 2nd Chance */
  while (_inactive_count < inactive_target) {
    page = de_queue_head(_active_queue)
    reset(page.reference)
    en_queue_tail(_inactive_queue)
  }
  while (_free_count < free_target) {
    page = de_queue_head(_inactive_queue)
    if (page.reference) begin
      en_queue_tail(_active_queue, page)
      reset(page.reference)
    end else begin
      if (page.dirty) begin
        flush(page)
      end
      en_queue_head(_free_queue, page)
    end
  }
}

Event ReclaimFrame() {
  while (reclaim_count > 0) {
    if (_free_count > 0)
      release(_free_queue)
    else begin
      if (_inactive_count > 0)
        release(_inactive_queue)
      else begin
        if (_active_count > 0)
          release(_active_queue)
        else
          return
      endif
    endif
    reclaim_count = reclaim_count - 1
  }
}
)";

// ---------------------------------------------------------------- lexer / parser

TEST(LexerTest, TokenKindsAndLines) {
  auto tokens = Tokenize("if (a >= 3) { b = a && c }\nwhile");
  ASSERT_GE(tokens.size(), 14u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIf);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[4].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[4].int_value, 3);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
  EXPECT_EQ(tokens[tokens.size() - 2].kind, TokenKind::kWhile);
  EXPECT_EQ(tokens[tokens.size() - 2].line, 2);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);  // a, b, end
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(LexerTest, ErrorsOnStrayCharacters) {
  EXPECT_THROW(Tokenize("a $ b"), CompileError);
  EXPECT_THROW(Tokenize("/* unterminated"), CompileError);
  EXPECT_THROW(Tokenize("a & b"), CompileError);
}

TEST(ParserTest, ParsesFigure4) {
  PolicySource source = Parse(kFigure4Source);
  ASSERT_EQ(source.events.size(), 3u);
  EXPECT_EQ(source.events[0].name, "PageFault");
  EXPECT_EQ(source.events[1].name, "Lack_free_frame");
  EXPECT_EQ(source.events[2].name, "ReclaimFrame");
  // PageFault: if, return.
  ASSERT_EQ(source.events[0].body.size(), 2u);
  EXPECT_EQ(source.events[0].body[0]->kind, Stmt::Kind::kIf);
  EXPECT_EQ(source.events[0].body[0]->else_body.size(), 2u);
  EXPECT_EQ(source.events[0].body[1]->kind, Stmt::Kind::kReturn);
}

TEST(ParserTest, QueueDeclarations) {
  PolicySource source = Parse("queue hot; queue cold\nEvent PageFault() { return }\n"
                              "Event ReclaimFrame() { return }");
  ASSERT_EQ(source.queue_decls.size(), 2u);
  EXPECT_EQ(source.queue_decls[0], "hot");
  EXPECT_EQ(source.queue_decls[1], "cold");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_THROW(Parse("Event X { }"), CompileError);                   // missing ()
  EXPECT_THROW(Parse("Event X() { if a > 3 return }"), CompileError);  // missing (
  EXPECT_THROW(Parse("Event X() { b = }"), CompileError);
  EXPECT_THROW(Parse("Event X() { begin"), CompileError);
}

// ---------------------------------------------------------------- compilation

TEST(CompilerTest, Figure4CompilesAndValidates) {
  CompiledPolicy compiled = CompilePolicy(kFigure4Source);
  EXPECT_TRUE(compiled.program.HasEvent(core::kEventPageFault));
  EXPECT_TRUE(compiled.program.HasEvent(core::kEventReclaimFrame));
  EXPECT_TRUE(compiled.program.HasEvent(core::kFirstUserEvent));  // Lack_free_frame
  EXPECT_EQ(compiled.events.at("Lack_free_frame"), core::kFirstUserEvent);

  // The compiled program passes the security checker's static pass under the layout the
  // compiler requested: registration through the engine succeeds.
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options = compiled.options;
  options.min_frames = 32;
  options.free_target = 8;
  options.inactive_target = 16;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 64 * kPageSize, compiled.program, options);
  EXPECT_TRUE(region.ok) << region.error;
}

TEST(CompilerTest, MissingRequiredEventsRejected) {
  EXPECT_THROW(CompilePolicy("Event PageFault() { return }"), CompileError);
}

TEST(CompilerTest, TypeErrors) {
  const char* reclaim = "Event ReclaimFrame() { return }";
  // Assigning a page producer to a variable already used as an integer.
  EXPECT_THROW(CompilePolicy(std::string("Event PageFault() { x = 1\n x = de_queue_head("
                                         "_free_queue)\n return }") +
                             reclaim),
               CompileError);
  // Queue used as an integer.
  EXPECT_THROW(
      CompilePolicy(std::string("Event PageFault() { x = _free_queue + 1\n return }") + reclaim),
      CompileError);
  // Assignment to a read-only count.
  EXPECT_THROW(
      CompilePolicy(std::string("Event PageFault() { _free_count = 3\n return }") + reclaim),
      CompileError);
  // Unknown builtin.
  EXPECT_THROW(
      CompilePolicy(std::string("Event PageFault() { frobnicate(page)\n return }") + reclaim),
      CompileError);
  // Assignment to a declared constant.
  EXPECT_THROW(CompilePolicy(std::string("const k = 9\nEvent PageFault() { k = 3\n return }") +
                             reclaim),
               CompileError);
}

int64_t EvalResult(const std::string& body);  // defined below

TEST(CompilerTest, ConstDeclarationsAndLargeLiterals) {
  EXPECT_EQ(EvalResult("result = 4096"), 4096);           // pooled literal
  EXPECT_EQ(EvalResult("result = 100000 + 23"), 100023);  // pooled + immediate
  EXPECT_EQ(EvalResult("result = -7"), -7);               // unary minus
  EXPECT_EQ(EvalResult("x = 70000\nresult = x / 7"), 10000);
}

TEST(CompilerTest, ConstDeclarationUsableInEvents) {
  CompiledPolicy compiled = CompilePolicy(R"(
    const window = 8192
    const threshold = -3
    Event PageFault() {
      result = window + threshold
      page = de_queue_head(_free_queue)
      return(page)
    }
    Event ReclaimFrame() { return }
  )");
  // Consts appear as read-only initialized user operands.
  bool found_window = false;
  for (const auto& init : compiled.options.user_int_inits) {
    if (init.value == 8192) {
      EXPECT_TRUE(init.read_only);
      found_window = true;
    }
  }
  EXPECT_TRUE(found_window);

  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options = compiled.options;
  options.min_frames = 8;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 16 * kPageSize, compiled.program, options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.Touch(task, region.addr, false)) << task->termination_reason();
  EXPECT_EQ(region.container->operands().ReadInt(ops::kResult), 8189);
}

TEST(CompilerTest, UserSymbolsAllocatedAfterStandardLayout) {
  CompiledPolicy compiled = CompilePolicy(R"(
queue shelf
Event PageFault() {
  count = count + 1
  victim = de_queue_head(_free_queue)
  en_queue_tail(shelf, victim)
  victim = de_queue_head(shelf)
  return(victim)
}
Event ReclaimFrame() { return }
)");
  EXPECT_EQ(compiled.symbols.at("shelf"), ops::kUserBase);
  EXPECT_EQ(compiled.symbols.at("count"), ops::kUserBase + 1);
  EXPECT_EQ(compiled.options.user_queue_count, 1u);
  EXPECT_GE(compiled.options.user_int_count, 1u);
  EXPECT_GE(compiled.options.user_page_count, 1u);
}

// Runs a compiled program through the engine against a simple arithmetic harness: the
// PageFault event computes into `result` and returns a page.
int64_t EvalResult(const std::string& body) {
  std::string source = "Event PageFault() {\n" + body +
                       "\npage = de_queue_head(_free_queue)\nreturn(page)\n}\n"
                       "Event ReclaimFrame() { return }";
  CompiledPolicy compiled = CompilePolicy(source);
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options = compiled.options;
  options.min_frames = 8;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 16 * kPageSize, compiled.program, options);
  EXPECT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.Touch(task, region.addr, false)) << task->termination_reason();
  return region.container->operands().ReadInt(ops::kResult);
}

TEST(CompilerTest, ArithmeticExpressions) {
  EXPECT_EQ(EvalResult("result = 2 + 3 * 4"), 14);
  EXPECT_EQ(EvalResult("result = (2 + 3) * 4"), 20);
  EXPECT_EQ(EvalResult("result = 17 % 5"), 2);
  EXPECT_EQ(EvalResult("result = 20 / 4 - 1"), 4);
  EXPECT_EQ(EvalResult("x = 10\nresult = x - 1"), 9);
  EXPECT_EQ(EvalResult("x = 1\nx = x + 1\nx = x + 1\nresult = x"), 3);
  EXPECT_EQ(EvalResult("x = 5\nresult = 1 - x"), -4);
}

TEST(CompilerTest, ControlFlow) {
  EXPECT_EQ(EvalResult("if (3 > 2) result = 1 else result = 2"), 1);
  EXPECT_EQ(EvalResult("if (2 > 3) result = 1 else result = 2"), 2);
  EXPECT_EQ(EvalResult("if (2 > 3) result = 1"), 0);
  EXPECT_EQ(EvalResult("x = 0\nwhile (x < 7) { x = x + 1 }\nresult = x"), 7);
  EXPECT_EQ(EvalResult("result = 0\nif (1 < 2 && 3 < 4) result = 5"), 5);
  EXPECT_EQ(EvalResult("result = 0\nif (1 > 2 && 3 < 4) result = 5"), 0);
  EXPECT_EQ(EvalResult("result = 0\nif (1 > 2 || 3 < 4) result = 5"), 5);
  EXPECT_EQ(EvalResult("result = 0\nif (!(1 > 2)) result = 5"), 5);
  EXPECT_EQ(EvalResult("result = 0\nif (!(1 > 2) && !(5 == 6)) result = 5"), 5);
}

TEST(CompilerTest, QueueConditions) {
  EXPECT_EQ(EvalResult("result = 0\nif (empty(_active_queue)) result = 1"), 1);
  EXPECT_EQ(EvalResult(
                "v = de_queue_head(_free_queue)\nen_queue_tail(_active_queue, v)\n"
                "result = 0\nif (in_queue(_active_queue, v)) result = 1\n"
                "v = de_queue_head(_active_queue)\nen_queue_tail(_free_queue, v)"),
            1);
}

// ---------------------------------------------------------------- Figure 4 == Table 2

struct RunStats {
  int64_t faults;
  std::vector<uint64_t> resident_offsets;
  bool terminated;
};

RunStats RunSecondChanceWorkload(const core::PolicyProgram& program,
                                 const core::HipecOptions& base_options) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("t");
  core::HipecOptions options = base_options;
  options.min_frames = 64;
  options.free_target = 8;
  options.inactive_target = 16;
  options.reserved_target = 0;
  core::HipecRegion region =
      engine.VmAllocateHipec(task, 128 * kPageSize, program, options);
  EXPECT_TRUE(region.ok) << region.error;

  // Two sweeps over 128 pages through 64 frames, with page 0 kept hot.
  for (int sweep = 0; sweep < 2 && !task->terminated(); ++sweep) {
    for (uint64_t p = 0; p < 128 && !task->terminated(); ++p) {
      kernel.Touch(task, region.addr + p * kPageSize, true);
      kernel.Touch(task, region.addr, false);
    }
  }
  RunStats stats;
  stats.terminated = task->terminated();
  stats.faults = engine.counters().Get("engine.faults_handled");
  if (!task->terminated()) {
    region.container->object()->ForEachResident(
        [&](uint64_t offset, mach::VmPage*) { stats.resident_offsets.push_back(offset); });
    std::sort(stats.resident_offsets.begin(), stats.resident_offsets.end());
  }
  return stats;
}

TEST(TranslatorEquivalenceTest, Figure4MatchesHandCodedTable2) {
  CompiledPolicy compiled = CompilePolicy(kFigure4Source);
  RunStats translated = RunSecondChanceWorkload(compiled.program, compiled.options);
  RunStats hand_coded =
      RunSecondChanceWorkload(policies::FifoSecondChancePolicy(), core::HipecOptions{});

  EXPECT_FALSE(translated.terminated);
  EXPECT_FALSE(hand_coded.terminated);
  EXPECT_EQ(translated.faults, hand_coded.faults);
  EXPECT_EQ(translated.resident_offsets, hand_coded.resident_offsets);
  // The hot page survived both.
  ASSERT_FALSE(translated.resident_offsets.empty());
  EXPECT_EQ(translated.resident_offsets.front(), 0u);
}

// ---------------------------------------------------------------- hex exchange format

TEST(AssemblerTest, HexRoundTrip) {
  CompiledPolicy compiled = CompilePolicy(kFigure4Source);
  std::string hex = DumpHex(compiled.program);
  core::PolicyProgram back = ParseHex(hex);
  ASSERT_EQ(back.event_limit(), compiled.program.event_limit());
  for (int ev = 0; ev < back.event_limit(); ++ev) {
    ASSERT_EQ(back.HasEvent(ev), compiled.program.HasEvent(ev)) << "event " << ev;
    if (back.HasEvent(ev)) {
      EXPECT_EQ(back.event(ev).words, compiled.program.event(ev).words) << "event " << ev;
    }
  }
}

TEST(AssemblerTest, ParseErrors) {
  EXPECT_THROW(ParseHex("48695043\n"), CompileError);       // word before event header
  EXPECT_THROW(ParseHex("event x\n"), CompileError);        // bad event number
  EXPECT_THROW(ParseHex("event 0\nZZZZ\n"), CompileError);  // bad hex
  EXPECT_THROW(ParseHex("event 0\n"), CompileError);        // empty event
}

TEST(AssemblerTest, CommentsAndWhitespaceTolerated) {
  core::PolicyProgram p = ParseHex("# policy\nevent 0\n  48695043  # magic\n00000000\n");
  ASSERT_TRUE(p.HasEvent(0));
  EXPECT_EQ(p.event(0).words.size(), 2u);
}

TEST(DisassemblerTest, ListsEvents) {
  CompiledPolicy compiled = CompilePolicy(kFigure4Source);
  std::string listing = compiled.program.ToString();
  EXPECT_NE(listing.find("Event 0 (PageFault):"), std::string::npos);
  EXPECT_NE(listing.find("Event 1 (ReclaimFrame):"), std::string::npos);
  EXPECT_NE(listing.find("Comp"), std::string::npos);
  EXPECT_NE(listing.find("DeQueue"), std::string::npos);
  EXPECT_NE(listing.find("Flush"), std::string::npos);
}

}  // namespace
}  // namespace hipec::lang
