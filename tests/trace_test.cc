// Tests for the execution tracer and its hooks across the kernel and the HiPEC engine.
#include <gtest/gtest.h>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "sim/trace.h"

namespace hipec::sim {
namespace {

using mach::kPageSize;

TEST(TracerTest, DisabledByDefaultAndFree) {
  Tracer tracer;
  tracer.Record(1, TraceCategory::kFault, 0, 1, 2);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(TracerTest, RecordsInOrder) {
  Tracer tracer(8);
  tracer.Enable();
  for (uint64_t i = 0; i < 5; ++i) {
    tracer.Record(static_cast<Nanos>(i * 10), TraceCategory::kFault, 0, i, 0);
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().a, 0u);
  EXPECT_EQ(events.back().a, 4u);
}

TEST(TracerTest, RingBufferKeepsNewest) {
  Tracer tracer(4);
  tracer.Enable();
  for (uint64_t i = 0; i < 10; ++i) {
    tracer.Record(static_cast<Nanos>(i), TraceCategory::kEviction, 0, i, 0);
  }
  auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().a, 6u);  // oldest surviving
  EXPECT_EQ(events.back().a, 9u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

TEST(TracerTest, DroppedCountsOverwrittenEvents) {
  Tracer tracer(4);
  tracer.Enable();
  for (uint64_t i = 0; i < 3; ++i) {
    tracer.Record(static_cast<Nanos>(i), TraceCategory::kFault, 0, i, 0);
  }
  EXPECT_EQ(tracer.dropped(), 0u);  // ring not yet full
  for (uint64_t i = 3; i < 10; ++i) {
    tracer.Record(static_cast<Nanos>(i), TraceCategory::kFault, 0, i, 0);
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, DumpJsonCarriesDropAccountingAndEvents) {
  Tracer tracer(2);
  tracer.Enable();
  tracer.Record(5, TraceCategory::kFault, 0, 1, 0x1000);
  tracer.Record(6, TraceCategory::kReclaim, 1, 7, 3);
  tracer.Record(7, TraceCategory::kChecker, 1, 9, 0);
  std::string json = tracer.DumpJson();
  // Drop accounting is the point: a reader must be able to tell the record is partial.
  EXPECT_NE(json.find("\"total_recorded\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":1"), std::string::npos) << json;
  // Surviving events appear in chronological order with their fields.
  size_t reclaim = json.find("\"cat\":\"RECLAIM\"");
  size_t checker = json.find("\"cat\":\"CHECKER\"");
  ASSERT_NE(reclaim, std::string::npos) << json;
  ASSERT_NE(checker, std::string::npos) << json;
  EXPECT_LT(reclaim, checker);
  EXPECT_EQ(json.find("\"cat\":\"FAULT\""), std::string::npos);  // overwritten
  EXPECT_NE(json.find("\"t\":6"), std::string::npos);
  EXPECT_NE(json.find("\"a\":7"), std::string::npos);
}

TEST(TracerTest, CategoryFilterAndDump) {
  Tracer tracer(16);
  tracer.Enable();
  tracer.Record(1, TraceCategory::kFault, 0, 1, 0x1000);
  tracer.Record(2, TraceCategory::kEviction, 1, 7, 3);
  tracer.Record(3, TraceCategory::kFault, 0, 1, 0x2000);
  EXPECT_EQ(tracer.Snapshot(TraceCategory::kFault).size(), 2u);
  EXPECT_EQ(tracer.Snapshot(TraceCategory::kEviction).size(), 1u);
  std::string dump = tracer.Dump();
  EXPECT_NE(dump.find("FAULT"), std::string::npos);
  EXPECT_NE(dump.find("EVICT"), std::string::npos);
}

TEST(TracerIntegrationTest, KernelAndEngineHooks) {
  mach::KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  kernel.tracer().Enable();
  core::HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  core::HipecOptions options;
  options.min_frames = 16;
  core::HipecRegion region = engine.VmAllocateHipec(
      task, 32 * kPageSize, policies::MruPolicy(policies::CommandStyle::kSimple), options);
  ASSERT_TRUE(region.ok) << region.error;

  // Two sweeps: faults, fills, policy events, evictions all traced.
  kernel.TouchRange(task, region.addr, 32 * kPageSize, true);
  kernel.TouchRange(task, region.addr, 32 * kPageSize, true);

  auto& tracer = kernel.tracer();
  EXPECT_GE(tracer.Snapshot(TraceCategory::kFault).size(), 32u);
  EXPECT_GE(tracer.Snapshot(TraceCategory::kFill).size(), 32u);
  EXPECT_GE(tracer.Snapshot(TraceCategory::kPolicy).size(), 32u);
  EXPECT_GE(tracer.Snapshot(TraceCategory::kEviction).size(), 16u);
  EXPECT_FALSE(tracer.Snapshot(TraceCategory::kManager).empty());  // the minFrame grant

  // Policy events carry the container id and outcome 0 (Ok).
  auto policy_events = tracer.Snapshot(TraceCategory::kPolicy);
  EXPECT_EQ(policy_events.front().a, region.container->id());
  EXPECT_EQ(policy_events.front().code, 0);
}

TEST(TracerIntegrationTest, CheckerWakeupsTraced) {
  mach::KernelParams params;
  params.hipec_build = true;
  mach::Kernel kernel(params);
  kernel.tracer().Enable();
  core::HipecEngine engine(&kernel);
  kernel.clock().Advance(5 * kSecond);
  EXPECT_GE(kernel.tracer().Snapshot(TraceCategory::kChecker).size(), 3u);
}

}  // namespace
}  // namespace hipec::sim
