// End-to-end tests for the hipecd policy server (src/server/server.h): install/drain/
// teardown over real Unix sockets and shared-memory rings, the reject-never-crash contract
// for malformed control frames and data-plane records, QoS drain proportionality,
// completion-ring backpressure, heartbeat reaping, and the client-death teardown path
// (SIGKILL mid-burst -> frames reclaimed, auditor green, survivors progress).
//
// The server runs in-process; clients are either in-process Client objects (their ring side
// works the same mapped or passed) or genuinely forked processes where death semantics are
// the point of the test.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "policies/policies.h"
#include "scenario/invariants.h"
#include "server/client.h"
#include "server/server.h"
#include "server/sockio.h"
#include "sim/lock.h"

namespace hipec::server {
namespace {

std::string TestSocketPath(const char* tag) {
  return "/tmp/hipec-test-" + std::string(tag) + "-" + std::to_string(getpid()) + ".sock";
}

ClientInstallOptions SmallRegion(uint64_t pages = 64) {
  ClientInstallOptions options;
  options.region_pages = pages;
  options.min_frames = 16;
  options.free_target = 4;
  options.inactive_target = 8;
  return options;
}

// Spins until `cond` holds or ~2s elapse. Wall-clock polling, not a sync primitive: every
// use below waits on a daemon-side thread the test cannot join directly.
template <typename Cond>
bool SpinUntil(Cond cond) {
  for (int i = 0; i < 1000; ++i) {
    if (cond()) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

void ExpectAuditGreen(Server& daemon) {
  sim::ExclusiveWorldGuard world(daemon.kernel().world());
  scenario::AuditReport audit = scenario::AuditFrameInvariants(daemon.engine());
  EXPECT_TRUE(audit.ok) << audit.violation;
}

TEST(Server, InstallDrainTeardownLifecycle) {
  ServerConfig config;
  config.socket_path = TestSocketPath("lifecycle");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "lifecycle", 1, &error)) << error;
  ASSERT_TRUE(client.Ping(&error)) << error;
  ASSERT_TRUE(client.Install(policies::FifoSecondChancePolicy(), SmallRegion(), &error))
      << error;
  EXPECT_EQ(daemon.LiveSessionCount(), 1u);
  EXPECT_GT(client.container_id(), 0u);

  for (int pass = 0; pass < 3; ++pass) {
    for (uint32_t page = 0; page < 64; ++page) {
      ASSERT_TRUE(client.SubmitTouch(page, (page % 4) == 0));
    }
    ASSERT_TRUE(client.SubmitFlush(pass));
  }
  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  EXPECT_EQ(client.completed(), client.submitted());
  EXPECT_EQ(client.completed_ok(), client.submitted());
  EXPECT_GE(daemon.counters().Get("server.requests"),
            static_cast<int64_t>(client.submitted()));
  EXPECT_GE(daemon.counters().Get("server.completions"),
            static_cast<int64_t>(client.completed()));

  ASSERT_TRUE(client.Teardown(&error)) << error;
  EXPECT_TRUE(SpinUntil([&] { return daemon.LiveSessionCount() == 0; }));
  EXPECT_EQ(daemon.counters().Get("server.teardowns"), 1);
  ExpectAuditGreen(daemon);
  client.Goodbye();
  // An orderly goodbye is not a client death.
  EXPECT_TRUE(
      SpinUntil([&] { return daemon.counters().Get("server.connections") == 1; }));
  EXPECT_EQ(daemon.counters().Get("server.client_deaths"), 0);
  daemon.Stop();
}

// Garbage where a frame header belongs desyncs the stream: the daemon replies with an error
// frame, counts it, disconnects that client — and keeps serving everyone else.
TEST(Server, MalformedHeaderDisconnectsWithoutCrash) {
  ServerConfig config;
  config.socket_path = TestSocketPath("badheader");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  int sock = ConnectUnix(config.socket_path, &error);
  ASSERT_GE(sock, 0) << error;
  const char garbage[16] = "not a frame!!!!";
  ASSERT_TRUE(WriteAll(sock, garbage, sizeof(garbage)));
  // The daemon's reply is an error frame, then EOF.
  uint8_t reply[kFrameHeaderBytes];
  EXPECT_TRUE(ReadFull(sock, reply, sizeof(reply)));
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(reply, sizeof(reply), &header), DecodeStatus::kOk);
  EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kError));
  std::vector<uint8_t> payload(header.length);
  EXPECT_TRUE(ReadFull(sock, payload.data(), payload.size()));
  char one;
  EXPECT_FALSE(ReadFull(sock, &one, 1));  // disconnected
  close(sock);

  EXPECT_TRUE(
      SpinUntil([&] { return daemon.counters().Get("server.malformed_frames") >= 1; }));
  // The daemon survived: a well-behaved client still gets full service.
  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "after-garbage", 1, &error)) << error;
  ASSERT_TRUE(client.Install(policies::LruPolicy(), SmallRegion(), &error)) << error;
  ASSERT_TRUE(client.SubmitTouch(0, false));
  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  client.Goodbye();
  daemon.Stop();
}

// A frame whose header is fine but whose payload is broken keeps the stream in sync: the
// daemon rejects with an error frame and the connection stays useful.
TEST(Server, MalformedPayloadIsRejectedConnectionSurvives) {
  ServerConfig config;
  config.socket_path = TestSocketPath("badpayload");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  int sock = ConnectUnix(config.socket_path, &error);
  ASSERT_GE(sock, 0) << error;
  // A hello frame truncated at the payload level: header claims 4 bytes, hello needs 20+.
  std::string frame;
  {
    std::string full;
    HelloMsg hello;
    hello.client_name = "x";
    EncodeHello(hello, &full);
    frame = full.substr(0, kFrameHeaderBytes);
    const uint32_t lying_len = 4;
    std::memcpy(&frame[4], &lying_len, sizeof(lying_len));
    frame += full.substr(kFrameHeaderBytes, lying_len);
  }
  ASSERT_TRUE(WriteAll(sock, frame.data(), frame.size()));
  // Error reply arrives and the connection is still open: a correct hello now succeeds.
  uint8_t reply[kFrameHeaderBytes];
  ASSERT_TRUE(ReadFull(sock, reply, sizeof(reply)));
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(reply, sizeof(reply), &header), DecodeStatus::kOk);
  EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kError));
  std::vector<uint8_t> payload(header.length);
  ASSERT_TRUE(ReadFull(sock, payload.data(), payload.size()));
  {
    std::string hello_frame;
    HelloMsg hello;
    hello.client_pid = static_cast<uint64_t>(getpid());
    hello.client_name = "recovered";
    EncodeHello(hello, &hello_frame);
    ASSERT_TRUE(WriteAll(sock, hello_frame.data(), hello_frame.size()));
    ASSERT_TRUE(ReadFull(sock, reply, sizeof(reply)));
    ASSERT_EQ(DecodeFrameHeader(reply, sizeof(reply), &header), DecodeStatus::kOk);
    EXPECT_EQ(header.type, static_cast<uint16_t>(MsgType::kHelloAck));
    std::vector<uint8_t> ack(header.length);
    ASSERT_TRUE(ReadFull(sock, ack.data(), ack.size()));
  }
  EXPECT_GE(daemon.counters().Get("server.malformed_frames"), 1);
  close(sock);
  daemon.Stop();
}

// A policy program the validator rejects must produce a not-ok install ack — and leave the
// connection (and the daemon) fully functional.
TEST(Server, InvalidProgramRejectedAtInstall) {
  ServerConfig config;
  config.socket_path = TestSocketPath("badprogram");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "bad-program", 1, &error)) << error;
  core::PolicyProgram garbage;
  garbage.SetEventRaw(0, {0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu});
  EXPECT_FALSE(client.Install(garbage, SmallRegion(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_GE(daemon.counters().Get("server.install_rejects"), 1);
  EXPECT_EQ(daemon.LiveSessionCount(), 0u);
  // Connection survives the rejection; a valid program then installs.
  ASSERT_TRUE(client.Ping(&error)) << error;
  ASSERT_TRUE(client.Install(policies::ClockPolicy(), SmallRegion(), &error)) << error;
  EXPECT_EQ(daemon.LiveSessionCount(), 1u);
  ExpectAuditGreen(daemon);
  client.Goodbye();
  daemon.Stop();
}

// Malformed data-plane records (unknown opcode, out-of-range page, nonzero arg) complete
// with kStatusBadRequest and bump the malformed counters; the session keeps serving.
TEST(Server, MalformedRingRequestsRejectedNotFatal) {
  ServerConfig config;
  config.socket_path = TestSocketPath("badring");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "bad-ring", 1, &error)) << error;
  ASSERT_TRUE(client.Install(policies::FifoPolicy(), SmallRegion(64), &error)) << error;

  Request bad_op;
  bad_op.seq = 9001;
  bad_op.op = kOpLimit;  // first invalid opcode
  ASSERT_TRUE(client.SubmitRaw(bad_op));
  Request bad_page;
  bad_page.seq = 9002;
  bad_page.op = kOpTouch;
  bad_page.page = 64;  // one past the region
  ASSERT_TRUE(client.SubmitRaw(bad_page));
  Request bad_arg;
  bad_arg.seq = 9003;
  bad_arg.op = kOpTouch;
  bad_arg.page = 0;
  bad_arg.arg = 0xDEAD;  // must be zero today
  ASSERT_TRUE(client.SubmitRaw(bad_arg));
  ASSERT_TRUE(client.SubmitTouch(1, false));  // a good one rides along

  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  EXPECT_EQ(client.completed(), 4u);
  EXPECT_EQ(client.completed_rejected(), 3u);
  EXPECT_EQ(client.completed_ok(), 1u);
  EXPECT_EQ(daemon.counters().Get("server.malformed_requests"), 3);
  // Still alive and serving.
  ASSERT_TRUE(client.SubmitTouch(2, true));
  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  ExpectAuditGreen(daemon);
  client.Goodbye();
  daemon.Stop();
}

// QoS weight is a drain-budget multiplier: with both rings loaded, one deterministic drain
// pass executes drain_batch requests for a weight-1 client and 4x that for a weight-4 one.
TEST(Server, QosWeightScalesTheDrainBudget) {
  ServerConfig config;
  config.socket_path = TestSocketPath("qos");
  config.drain_batch = 32;
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  daemon.SetDrainPausedForTest(true);

  Client light;
  ASSERT_TRUE(light.Connect(config.socket_path, "light", 1, &error)) << error;
  ASSERT_TRUE(light.Install(policies::FifoSecondChancePolicy(), SmallRegion(), &error))
      << error;
  Client heavy;
  ASSERT_TRUE(heavy.Connect(config.socket_path, "heavy", 4, &error)) << error;
  ASSERT_TRUE(heavy.Install(policies::FifoSecondChancePolicy(), SmallRegion(), &error))
      << error;

  // Load both rings well past either budget.
  for (uint32_t i = 0; i < 256; ++i) {
    ASSERT_TRUE(light.SubmitTouch(i % 64, false));
    ASSERT_TRUE(heavy.SubmitTouch(i % 64, false));
  }

  uint64_t light_id = 0;
  uint64_t heavy_id = 0;
  for (const ClientStats& stats : daemon.ClientStatsSnapshot()) {
    if (stats.name == "light") {
      light_id = stats.id;
    } else if (stats.name == "heavy") {
      heavy_id = stats.id;
    }
  }
  ASSERT_NE(light_id, 0u);
  ASSERT_NE(heavy_id, 0u);

  EXPECT_EQ(daemon.DrainSessionOnceForTest(light_id), 32u);   // drain_batch * 1
  EXPECT_EQ(daemon.DrainSessionOnceForTest(heavy_id), 128u);  // drain_batch * 4

  daemon.SetDrainPausedForTest(false);
  ASSERT_TRUE(light.WaitForCompletions(5'000'000'000ull));
  ASSERT_TRUE(heavy.WaitForCompletions(5'000'000'000ull));
  light.Goodbye();
  heavy.Goodbye();
  daemon.Stop();
}

// Completion-ring backpressure: with a tiny ring and a client that refuses to reap, the
// daemon's bounded push backoff trips, spills to the overflow queue, and counts stalls —
// and every completion is still delivered once the client drains.
TEST(Server, CompletionBackpressureSpillsAndRecovers) {
  ServerConfig config;
  config.socket_path = TestSocketPath("backpressure");
  config.ring_slots = 8;
  config.drain_batch = 16;
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;
  daemon.SetDrainPausedForTest(true);

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "stubborn-reader", 1, &error)) << error;
  ASSERT_TRUE(client.Install(policies::FifoPolicy(), SmallRegion(8), &error)) << error;
  uint64_t session_id = daemon.ClientStatsSnapshot().at(0).id;

  // Fill the 8-slot submission ring, drain it (8 completions fill the completion ring
  // exactly), then fill and drain again while the client refuses to reap: the second
  // batch's completions cannot fit and must spill.
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.SubmitTouch(i % 8, false));
  }
  EXPECT_EQ(daemon.DrainSessionOnceForTest(session_id), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(client.SubmitTouch(i % 8, false));
  }
  EXPECT_EQ(daemon.DrainSessionOnceForTest(session_id), 8u);
  EXPECT_GE(daemon.counters().Get("server.backpressure_stalls"), 1);

  // The client finally reads; the overflow is delivered ahead of new work.
  daemon.SetDrainPausedForTest(false);
  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  EXPECT_EQ(client.completed(), 16u);
  EXPECT_EQ(client.completed_ok(), 16u);
  client.Goodbye();
  daemon.Stop();
}

// A client that installs and then falls silent past the heartbeat timeout is reaped: full
// container teardown, frames reclaimed, auditor green.
TEST(Server, HeartbeatTimeoutReapsSilentClient) {
  ServerConfig config;
  config.socket_path = TestSocketPath("heartbeat");
  config.heartbeat_timeout_ns = 100'000'000ull;  // 100ms
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect(config.socket_path, "sleeper", 1, &error)) << error;
  ASSERT_TRUE(client.Install(policies::LruPolicy(), SmallRegion(), &error)) << error;
  ASSERT_TRUE(client.SubmitTouch(0, true));
  ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
  EXPECT_EQ(daemon.LiveSessionCount(), 1u);

  // Silence. The reaper must notice and tear the session down.
  EXPECT_TRUE(SpinUntil([&] { return daemon.LiveSessionCount() == 0; }));
  EXPECT_GE(daemon.counters().Get("server.heartbeat_timeouts"), 1);
  EXPECT_GE(daemon.counters().Get("server.client_deaths"), 1);
  ExpectAuditGreen(daemon);
  daemon.Stop();
  client.Close();
}

// The satellite's core scenario: SIGKILL a forked client mid-burst. The daemon must tear
// its container down exactly like a checker kill — frames reclaimed, auditor green — while
// a surviving client keeps making progress.
TEST(Server, SigkilledClientReclaimedSurvivorsProgress) {
  ServerConfig config;
  config.socket_path = TestSocketPath("sigkill");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client survivor;
  ASSERT_TRUE(survivor.Connect(config.socket_path, "survivor", 1, &error)) << error;
  ASSERT_TRUE(survivor.Install(policies::FifoSecondChancePolicy(), SmallRegion(), &error))
      << error;

  pid_t victim = fork();
  if (victim == 0) {
    // Child: connect, install, then submit forever until killed.
    Client doomed;
    std::string child_error;
    if (!doomed.Connect(config.socket_path, "doomed", 2, &child_error) ||
        !doomed.Install(policies::FifoSecondChancePolicy(), SmallRegion(128),
                        &child_error)) {
      _exit(3);
    }
    for (uint64_t i = 0;; ++i) {
      if (!doomed.SubmitTouch(static_cast<uint32_t>(i % 128), (i % 3) == 0)) {
        _exit(4);
      }
      Completion reaped[32];
      doomed.PollCompletions(reaped, 32);
    }
  }
  ASSERT_GT(victim, 0);
  // Let the victim get well into its burst, then kill it cold.
  ASSERT_TRUE(SpinUntil([&] { return daemon.LiveSessionCount() == 2; }));
  ASSERT_TRUE(
      SpinUntil([&] { return daemon.counters().Get("server.requests") > 64; }));
  kill(victim, SIGKILL);
  int status = 0;
  waitpid(victim, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));

  // The daemon notices EOF, runs the death teardown, and the world is consistent again.
  EXPECT_TRUE(SpinUntil([&] { return daemon.LiveSessionCount() == 1; }));
  EXPECT_TRUE(
      SpinUntil([&] { return daemon.counters().Get("server.client_deaths") >= 1; }));
  ExpectAuditGreen(daemon);

  // The survivor never noticed.
  for (uint32_t page = 0; page < 64; ++page) {
    ASSERT_TRUE(survivor.SubmitTouch(page, false));
  }
  ASSERT_TRUE(survivor.WaitForCompletions(5'000'000'000ull));
  EXPECT_EQ(survivor.completed_ok(), survivor.submitted());
  ASSERT_TRUE(survivor.Teardown(&error)) << error;
  survivor.Goodbye();
  ExpectAuditGreen(daemon);
  daemon.Stop();
}

// max_clients is enforced at accept time with a clean error, not a hang.
TEST(Server, ServerFullRejectsExtraClients) {
  ServerConfig config;
  config.socket_path = TestSocketPath("full");
  config.max_clients = 1;
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client first;
  ASSERT_TRUE(first.Connect(config.socket_path, "first", 1, &error)) << error;
  Client second;
  EXPECT_FALSE(second.Connect(config.socket_path, "second", 1, &error));
  EXPECT_GE(daemon.counters().Get("server.connection_rejects"), 1);
  first.Goodbye();
  daemon.Stop();
}

// A departed client releases its max_clients slot: connect/goodbye churn several times
// deeper than max_clients keeps succeeding, and retired sessions leave the session table
// (no leaked Session, ring mapping, or control thread per departure).
TEST(Server, DepartedClientsReleaseTheirSlots) {
  ServerConfig config;
  config.socket_path = TestSocketPath("slotreuse");
  config.max_clients = 1;
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  for (int round = 0; round < 4; ++round) {
    Client client;
    // The previous client's control thread may still be mid-retirement; the slot frees the
    // moment its session leaves the table, so a brief "server full" window is legal.
    ASSERT_TRUE(SpinUntil([&] {
      std::string retry_error;
      return client.Connect(config.socket_path, "churn", 1, &retry_error);
    })) << "round " << round;
    ASSERT_TRUE(client.Install(policies::FifoPolicy(), SmallRegion(), &error))
        << "round " << round << ": " << error;
    ASSERT_TRUE(client.SubmitTouch(0, false));
    ASSERT_TRUE(client.WaitForCompletions(5'000'000'000ull));
    client.Goodbye();
  }
  // Every departed session was pruned, not just flagged dead.
  EXPECT_TRUE(SpinUntil([&] { return daemon.ClientStatsSnapshot().empty(); }));
  ExpectAuditGreen(daemon);
  daemon.Stop();
}

// A connection that never completes install still holds a max_clients slot, so the reaper
// must evict it on the same heartbeat timeout — the clock starts at accept, not install.
TEST(Server, ReaperEvictsClientsThatNeverInstall) {
  ServerConfig config;
  config.socket_path = TestSocketPath("preinstall");
  config.heartbeat_timeout_ns = 100'000'000ull;  // 100ms
  config.max_clients = 1;
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  // A raw connection that never even says hello.
  int idle = ConnectUnix(config.socket_path, &error);
  ASSERT_GE(idle, 0) << error;
  EXPECT_TRUE(SpinUntil(
      [&] { return daemon.counters().Get("server.heartbeat_timeouts") >= 1; }));
  // The daemon hung up on the idler...
  char one;
  EXPECT_FALSE(ReadFull(idle, &one, 1));
  close(idle);
  // ...and the slot is usable again by a real client.
  Client client;
  EXPECT_TRUE(SpinUntil([&] {
    std::string retry_error;
    return client.Connect(config.socket_path, "after-idler", 1, &retry_error);
  }));
  ASSERT_TRUE(client.Install(policies::LruPolicy(), SmallRegion(), &error)) << error;
  EXPECT_EQ(daemon.LiveSessionCount(), 1u);
  client.Goodbye();
  daemon.Stop();
}

// Stop() with live installed sessions must not count deaths, must reclaim everything, and
// must leave the invariants intact — the shutdown analogue of the death path.
TEST(Server, StopWithLiveClientsIsClean) {
  ServerConfig config;
  config.socket_path = TestSocketPath("stop");
  Server daemon(config);
  std::string error;
  ASSERT_TRUE(daemon.Start(&error)) << error;

  Client a;
  ASSERT_TRUE(a.Connect(config.socket_path, "a", 1, &error)) << error;
  ASSERT_TRUE(a.Install(policies::ClockPolicy(), SmallRegion(), &error)) << error;
  Client b;
  ASSERT_TRUE(b.Connect(config.socket_path, "b", 2, &error)) << error;
  ASSERT_TRUE(b.Install(policies::MruPolicy(), SmallRegion(), &error)) << error;
  for (uint32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(a.SubmitTouch(i % 64, false));
    ASSERT_TRUE(b.SubmitTouch(i % 64, true));
  }
  ASSERT_TRUE(a.WaitForCompletions(5'000'000'000ull));
  ASSERT_TRUE(b.WaitForCompletions(5'000'000'000ull));

  daemon.Stop();
  EXPECT_EQ(daemon.counters().Get("server.client_deaths"), 0);
  ExpectAuditGreen(daemon);
  a.Close();
  b.Close();
}

}  // namespace
}  // namespace hipec::server
