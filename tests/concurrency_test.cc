// Concurrency primitives under real threads: the thread-safe stats sinks (sim/stats.h,
// obs/probe.h), the rank-tagged locks (sim/lock.h), and the real clock's deadline queue
// (sim/clock.h). These are the pieces every real-threads component leans on; each test
// hammers one of them from 8 threads and then asserts exact totals — the sinks promise
// no lost updates, not just no crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "obs/probe.h"
#include "sim/clock.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20'000;

void HammerFromThreads(int threads, const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (std::thread& th : pool) {
    th.join();
  }
}

TEST(CounterSetConcurrencyTest, EightThreadHammerLosesNoUpdates) {
  const sim::CounterId a = sim::InternCounter("conctest.counter_a");
  const sim::CounterId b = sim::InternCounter("conctest.counter_b");
  sim::CounterSet counters;
  counters.EnableConcurrent();
  ASSERT_TRUE(counters.concurrent());

  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      counters.Add(a);
      counters.Add(b, t + 1);  // per-thread distinct delta so interleavings differ
    }
  });

  EXPECT_EQ(counters.Get(a), int64_t{kThreads} * kOpsPerThread);
  // sum over t of (t+1) * kOpsPerThread = kOps * kThreads(kThreads+1)/2
  EXPECT_EQ(counters.Get(b), int64_t{kOpsPerThread} * kThreads * (kThreads + 1) / 2);
}

TEST(CounterSetConcurrencyTest, LateInternedIdsLandInOverflowExactly) {
  sim::CounterSet counters;
  counters.EnableConcurrent();
  // Interned *after* EnableConcurrent sized the slabs: must take the overflow path and
  // still be exact under contention.
  const sim::CounterId late =
      sim::InternCounter("conctest.late_counter_beyond_slab_capacity");
  HammerFromThreads(kThreads, [&](int) {
    for (int i = 0; i < 1000; ++i) {
      counters.Add(late);
    }
  });
  EXPECT_EQ(counters.Get(late), int64_t{kThreads} * 1000);
}

TEST(CounterRegistryConcurrencyTest, ConcurrentInterningIsIdempotent) {
  std::vector<std::vector<sim::CounterId>> ids(kThreads);
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 64; ++i) {
      ids[t].push_back(
          sim::CounterRegistry::Instance().Intern("conctest.shared_name_" +
                                                  std::to_string(i)));
    }
  });
  // Every thread resolved each name to the same id, and distinct names got distinct ids.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  for (size_t i = 1; i < ids[0].size(); ++i) {
    EXPECT_NE(ids[0][i], ids[0][i - 1]);
  }
}

TEST(LatencyRecorderConcurrencyTest, EightThreadHammerKeepsExactAggregates) {
  sim::LatencyRecorder recorder;
  recorder.EnableConcurrent();
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 1; i <= kOpsPerThread; ++i) {
      recorder.Record(t * kOpsPerThread + i);
    }
  });
  ASSERT_EQ(recorder.count(), size_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(recorder.Min(), 1);
  EXPECT_EQ(recorder.Max(), int64_t{kThreads} * kOpsPerThread);
  // Sum of 1..N for N = kThreads * kOpsPerThread.
  const int64_t n = int64_t{kThreads} * kOpsPerThread;
  EXPECT_EQ(recorder.sum(), n * (n + 1) / 2);
}

TEST(ProbeSetConcurrencyTest, EightThreadHammerCountsEverySample) {
  const obs::ProbeId probe = obs::InternProbe("conctest.hammer_probe");
  obs::ScopedProbes enabled(true);
  obs::ProbeSet probes;
  probes.EnableConcurrent();
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 5000; ++i) {
      probes.Record(probe, (t + 1) * 10);
    }
  });
  const obs::Histogram* hist = probes.Find(probe);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), uint64_t{kThreads} * 5000);
}

TEST(OrderedMutexTest, DisabledMutexIsANoOpAndTryLockAlwaysOwns) {
  sim::OrderedMutex mu(sim::LockRank::kManager);  // disabled by default
  EXPECT_FALSE(mu.enabled());
  {
    sim::ScopedLock lock(mu);  // must not block or assert
    sim::ScopedTryLock try_lock(mu);
    EXPECT_TRUE(try_lock.owns());  // deterministic-mode callers take the success path
  }
}

TEST(OrderedMutexTest, EnabledMutexIsRecursiveAndExcludesOtherThreads) {
  sim::OrderedMutex mu(sim::LockRank::kManager, /*enabled=*/true);
  sim::ScopedLock outer(mu);
  sim::ScopedLock inner(mu);  // recursion on the same mutex is allowed
  std::atomic<bool> other_owned{true};
  std::thread other([&] {
    sim::ScopedTryLock try_lock(mu);
    other_owned.store(try_lock.owns());
  });
  other.join();
  EXPECT_FALSE(other_owned.load());  // a different thread must fail the try-lock
}

TEST(OrderedMutexTest, EnabledMutexSerializesEightWriters) {
  sim::OrderedMutex mu(sim::LockRank::kLeaf, /*enabled=*/true);
  int64_t plain = 0;  // deliberately non-atomic: the lock is the only protection
  HammerFromThreads(kThreads, [&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      sim::ScopedLock lock(mu);
      ++plain;
    }
  });
  EXPECT_EQ(plain, int64_t{kThreads} * kOpsPerThread);
}

TEST(WorldLockTest, ExclusiveHolderSeesNoSharedHolders) {
  sim::WorldLock world(/*enabled=*/true);
  std::atomic<int> shared_inside{0};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> audits_clean{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        sim::SharedWorldGuard guard(world);
        shared_inside.fetch_add(1, std::memory_order_acq_rel);
        shared_inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    sim::ExclusiveWorldGuard guard(world);
    // With the world held exclusive, no reader can be inside its shared section.
    ASSERT_EQ(shared_inside.load(std::memory_order_acquire), 0);
    audits_clean.fetch_add(1);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) {
    th.join();
  }
  EXPECT_EQ(audits_clean.load(), 200);
}

TEST(RealClockTest, NowIsMonotonicAndStartsNearZero)  {
  sim::RealClock clock;
  EXPECT_FALSE(clock.deterministic());
  sim::Nanos a = clock.now();
  sim::Nanos b = clock.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  // Advance is a no-op: host time passes by itself.
  clock.Advance(10 * sim::kSecond);
  EXPECT_LT(clock.now(), 10 * sim::kSecond);
}

TEST(RealClockTest, PollDueFiresOnlyDueDeadlinesUnlessForced) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  clock.ScheduleAfter(60 * sim::kSecond, [&] { fired.fetch_add(1); }, "far-future");
  EXPECT_EQ(clock.PollDue(), 0u);  // not due yet
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(clock.pending_events(), 1u);
  EXPECT_EQ(clock.PollDue(/*fire_all=*/true), 1u);  // DrainWrites-style force-fire
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(clock.pending_events(), 0u);
}

TEST(RealClockTest, CancelRemovesAPendingDeadline) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  sim::Clock::EventId id =
      clock.ScheduleAfter(60 * sim::kSecond, [&] { fired.fetch_add(1); }, "cancel-me");
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));  // second cancel finds nothing
  EXPECT_EQ(clock.PollDue(/*fire_all=*/true), 0u);
  EXPECT_EQ(fired.load(), 0);
}

TEST(RealClockTest, ConcurrentScheduleCancelPollIsSafeAndExact) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  // Half the threads schedule-and-cancel (never fires), half schedule far-future events
  // that the final force-fire must all deliver.
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 500; ++i) {
      sim::Clock::EventId id = clock.ScheduleAfter(
          60 * sim::kSecond, [&] { fired.fetch_add(1, std::memory_order_relaxed); },
          "hammer");
      if (t % 2 == 0) {
        ASSERT_TRUE(clock.Cancel(id));
      }
      clock.PollDue();  // exercises poll-vs-schedule interleaving; nothing is due
    }
  });
  const auto expected = uint64_t{kThreads} / 2 * 500;
  EXPECT_EQ(clock.pending_events(), expected);
  while (clock.pending_events() > 0) {
    clock.PollDue(/*fire_all=*/true);
  }
  EXPECT_EQ(fired.load(), static_cast<int>(expected));
}

}  // namespace
}  // namespace hipec
