// Concurrency primitives under real threads: the thread-safe stats sinks (sim/stats.h,
// obs/probe.h), the rank-tagged locks (sim/lock.h), and the real clock's deadline queue
// (sim/clock.h). These are the pieces every real-threads component leans on; each test
// hammers one of them from 8 threads and then asserts exact totals — the sinks promise
// no lost updates, not just no crashes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <random>

#include "mach/frame_pool.h"
#include "mach/kernel.h"
#include "mach/pageout_daemon.h"
#include "obs/probe.h"
#include "sim/clock.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec {
namespace {

constexpr int kThreads = 8;
constexpr int kOpsPerThread = 20'000;

void HammerFromThreads(int threads, const std::function<void(int)>& body) {
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&body, t] { body(t); });
  }
  for (std::thread& th : pool) {
    th.join();
  }
}

TEST(CounterSetConcurrencyTest, EightThreadHammerLosesNoUpdates) {
  const sim::CounterId a = sim::InternCounter("conctest.counter_a");
  const sim::CounterId b = sim::InternCounter("conctest.counter_b");
  sim::CounterSet counters;
  counters.EnableConcurrent();
  ASSERT_TRUE(counters.concurrent());

  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      counters.Add(a);
      counters.Add(b, t + 1);  // per-thread distinct delta so interleavings differ
    }
  });

  EXPECT_EQ(counters.Get(a), int64_t{kThreads} * kOpsPerThread);
  // sum over t of (t+1) * kOpsPerThread = kOps * kThreads(kThreads+1)/2
  EXPECT_EQ(counters.Get(b), int64_t{kOpsPerThread} * kThreads * (kThreads + 1) / 2);
}

TEST(CounterSetConcurrencyTest, LateInternedIdsLandInOverflowExactly) {
  sim::CounterSet counters;
  counters.EnableConcurrent();
  // Interned *after* EnableConcurrent sized the slabs: must take the overflow path and
  // still be exact under contention.
  const sim::CounterId late =
      sim::InternCounter("conctest.late_counter_beyond_slab_capacity");
  HammerFromThreads(kThreads, [&](int) {
    for (int i = 0; i < 1000; ++i) {
      counters.Add(late);
    }
  });
  EXPECT_EQ(counters.Get(late), int64_t{kThreads} * 1000);
}

TEST(CounterRegistryConcurrencyTest, ConcurrentInterningIsIdempotent) {
  std::vector<std::vector<sim::CounterId>> ids(kThreads);
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 64; ++i) {
      ids[t].push_back(
          sim::CounterRegistry::Instance().Intern("conctest.shared_name_" +
                                                  std::to_string(i)));
    }
  });
  // Every thread resolved each name to the same id, and distinct names got distinct ids.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  for (size_t i = 1; i < ids[0].size(); ++i) {
    EXPECT_NE(ids[0][i], ids[0][i - 1]);
  }
}

TEST(LatencyRecorderConcurrencyTest, EightThreadHammerKeepsExactAggregates) {
  sim::LatencyRecorder recorder;
  recorder.EnableConcurrent();
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 1; i <= kOpsPerThread; ++i) {
      recorder.Record(t * kOpsPerThread + i);
    }
  });
  ASSERT_EQ(recorder.count(), size_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(recorder.Min(), 1);
  EXPECT_EQ(recorder.Max(), int64_t{kThreads} * kOpsPerThread);
  // Sum of 1..N for N = kThreads * kOpsPerThread.
  const int64_t n = int64_t{kThreads} * kOpsPerThread;
  EXPECT_EQ(recorder.sum(), n * (n + 1) / 2);
}

TEST(ProbeSetConcurrencyTest, EightThreadHammerCountsEverySample) {
  const obs::ProbeId probe = obs::InternProbe("conctest.hammer_probe");
  obs::ScopedProbes enabled(true);
  obs::ProbeSet probes;
  probes.EnableConcurrent();
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 5000; ++i) {
      probes.Record(probe, (t + 1) * 10);
    }
  });
  const obs::Histogram* hist = probes.Find(probe);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), uint64_t{kThreads} * 5000);
}

TEST(OrderedMutexTest, DisabledMutexIsANoOpAndTryLockAlwaysOwns) {
  sim::OrderedMutex mu(sim::LockRank::kManager);  // disabled by default
  EXPECT_FALSE(mu.enabled());
  {
    sim::ScopedLock lock(mu);  // must not block or assert
    sim::ScopedTryLock try_lock(mu);
    EXPECT_TRUE(try_lock.owns());  // deterministic-mode callers take the success path
  }
}

TEST(OrderedMutexTest, EnabledMutexIsRecursiveAndExcludesOtherThreads) {
  sim::OrderedMutex mu(sim::LockRank::kManager, /*enabled=*/true);
  sim::ScopedLock outer(mu);
  sim::ScopedLock inner(mu);  // recursion on the same mutex is allowed
  std::atomic<bool> other_owned{true};
  std::thread other([&] {
    sim::ScopedTryLock try_lock(mu);
    other_owned.store(try_lock.owns());
  });
  other.join();
  EXPECT_FALSE(other_owned.load());  // a different thread must fail the try-lock
}

TEST(OrderedMutexTest, EnabledMutexSerializesEightWriters) {
  sim::OrderedMutex mu(sim::LockRank::kLeaf, /*enabled=*/true);
  int64_t plain = 0;  // deliberately non-atomic: the lock is the only protection
  HammerFromThreads(kThreads, [&](int) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      sim::ScopedLock lock(mu);
      ++plain;
    }
  });
  EXPECT_EQ(plain, int64_t{kThreads} * kOpsPerThread);
}

TEST(WorldLockTest, ExclusiveHolderSeesNoSharedHolders) {
  sim::WorldLock world(/*enabled=*/true);
  std::atomic<int> shared_inside{0};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> audits_clean{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        sim::SharedWorldGuard guard(world);
        shared_inside.fetch_add(1, std::memory_order_acq_rel);
        shared_inside.fetch_sub(1, std::memory_order_acq_rel);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    sim::ExclusiveWorldGuard guard(world);
    // With the world held exclusive, no reader can be inside its shared section.
    ASSERT_EQ(shared_inside.load(std::memory_order_acquire), 0);
    audits_clean.fetch_add(1);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) {
    th.join();
  }
  EXPECT_EQ(audits_clean.load(), 200);
}

TEST(RealClockTest, NowIsMonotonicAndStartsNearZero)  {
  sim::RealClock clock;
  EXPECT_FALSE(clock.deterministic());
  sim::Nanos a = clock.now();
  sim::Nanos b = clock.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
  // Advance is a no-op: host time passes by itself.
  clock.Advance(10 * sim::kSecond);
  EXPECT_LT(clock.now(), 10 * sim::kSecond);
}

TEST(RealClockTest, PollDueFiresOnlyDueDeadlinesUnlessForced) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  clock.ScheduleAfter(60 * sim::kSecond, [&] { fired.fetch_add(1); }, "far-future");
  EXPECT_EQ(clock.PollDue(), 0u);  // not due yet
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(clock.pending_events(), 1u);
  EXPECT_EQ(clock.PollDue(/*fire_all=*/true), 1u);  // DrainWrites-style force-fire
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(clock.pending_events(), 0u);
}

TEST(RealClockTest, CancelRemovesAPendingDeadline) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  sim::Clock::EventId id =
      clock.ScheduleAfter(60 * sim::kSecond, [&] { fired.fetch_add(1); }, "cancel-me");
  EXPECT_TRUE(clock.Cancel(id));
  EXPECT_FALSE(clock.Cancel(id));  // second cancel finds nothing
  EXPECT_EQ(clock.PollDue(/*fire_all=*/true), 0u);
  EXPECT_EQ(fired.load(), 0);
}

TEST(RealClockTest, ConcurrentScheduleCancelPollIsSafeAndExact) {
  sim::RealClock clock;
  std::atomic<int> fired{0};
  // Half the threads schedule-and-cancel (never fires), half schedule far-future events
  // that the final force-fire must all deliver.
  HammerFromThreads(kThreads, [&](int t) {
    for (int i = 0; i < 500; ++i) {
      sim::Clock::EventId id = clock.ScheduleAfter(
          60 * sim::kSecond, [&] { fired.fetch_add(1, std::memory_order_relaxed); },
          "hammer");
      if (t % 2 == 0) {
        ASSERT_TRUE(clock.Cancel(id));
      }
      clock.PollDue();  // exercises poll-vs-schedule interleaving; nothing is due
    }
  });
  const auto expected = uint64_t{kThreads} / 2 * 500;
  EXPECT_EQ(clock.pending_events(), expected);
  while (clock.pending_events() > 0) {
    clock.PollDue(/*fire_all=*/true);
  }
  EXPECT_EQ(fired.load(), static_cast<int>(expected));
}

// --- Sharded pageout daemon ----------------------------------------------------------------
//
// The daemon's active/inactive queues are sharded like the free pool (one OrderedMutex per
// shard); these tests pin the shard-count policy, the magazine frame cache, and — the real
// point — that 8 threads racing the fault/return/activate/balance paths never lose a frame.

mach::KernelParams RealThreadsParams(uint64_t total_frames, uint64_t reserved) {
  mach::KernelParams params;
  params.total_frames = total_frames;
  params.kernel_reserved_frames = reserved;
  params.exec_mode = sim::ExecMode::kRealThreads;
  return params;
}

// Checks per-shard queue sanity and that the lock-free count accessors match the queues.
void ExpectDaemonQueuesConsistent(mach::PageoutDaemon& daemon) {
  size_t active_sum = 0;
  size_t inactive_sum = 0;
  for (size_t i = 0; i < daemon.queue_shard_count(); ++i) {
    ASSERT_EQ(daemon.active_queue(i).count(), daemon.active_queue(i).CountByTraversal());
    ASSERT_EQ(daemon.inactive_queue(i).count(), daemon.inactive_queue(i).CountByTraversal());
    active_sum += daemon.active_queue(i).count();
    inactive_sum += daemon.inactive_queue(i).count();
  }
  EXPECT_EQ(daemon.active_count(), active_sum);
  EXPECT_EQ(daemon.inactive_count(), inactive_sum);
}

TEST(PageoutDaemonShardingTest, DeterministicModeCollapsesToOneShard) {
  // Byte-identical golden fingerprints depend on the deterministic build reproducing the
  // single-queue daemon exactly; the shard-count default must therefore be 1 there.
  mach::KernelParams params;
  params.total_frames = 256;
  params.kernel_reserved_frames = 32;
  mach::Kernel kernel(params);
  EXPECT_EQ(kernel.daemon().queue_shard_count(), 1u);
}

TEST(PageoutDaemonShardingTest, RealThreadsModeHonorsAndClampsShardRequests) {
  {
    mach::KernelParams params = RealThreadsParams(256, 32);
    params.daemon_shards = 4;
    mach::Kernel kernel(params);
    EXPECT_EQ(kernel.daemon().queue_shard_count(), 4u);
  }
  {
    mach::KernelParams params = RealThreadsParams(256, 32);
    params.daemon_shards = 1024;  // absurd request clamps to the compile-time ceiling
    mach::Kernel kernel(params);
    EXPECT_EQ(kernel.daemon().queue_shard_count(), mach::PageoutDaemon::kMaxQueueShards);
  }
  {
    mach::KernelParams params = RealThreadsParams(256, 32);
    params.daemon_shards = 0;  // default: hardware_concurrency, clamped to [1, ceiling]
    mach::Kernel kernel(params);
    EXPECT_GE(kernel.daemon().queue_shard_count(), 1u);
    EXPECT_LE(kernel.daemon().queue_shard_count(), mach::PageoutDaemon::kMaxQueueShards);
  }
}

TEST(FrameMagazineTest, TakePutFlushConservesFrames) {
  mach::KernelParams params = RealThreadsParams(256, 32);
  mach::Kernel kernel(params);
  mach::ShardedFramePool& pool = kernel.daemon().free_pool();
  const size_t boot_free = pool.count();
  const sim::Nanos now = kernel.clock().now();

  mach::FrameMagazine magazine(&pool, /*capacity=*/8, "conctest_magazine");
  // An empty magazine refills a half-capacity batch from the pool on the first Take.
  mach::VmPage* page = magazine.Take(now);
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(magazine.count() + pool.count() + 1, boot_free);
  magazine.Put(page, now);
  // Cached frames still count as global_free in the conservation snapshot — the magazine
  // registry lets Owns() classify them.
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.global_free, boot_free);

  // Overfilling past capacity spills half back to the pool instead of growing unbounded.
  std::vector<mach::VmPage*> held;
  while (mach::VmPage* p = pool.Take()) {
    held.push_back(p);
  }
  for (mach::VmPage* p : held) {
    magazine.Put(p, now);
    EXPECT_LE(magazine.count(), magazine.capacity());
  }
  magazine.Flush(now);
  EXPECT_EQ(magazine.count(), 0u);
  EXPECT_EQ(pool.count(), boot_free);
}

TEST(PageoutDaemonShardingTest, EightThreadDirectAllocReturnBalanceHammer) {
  // Races the daemon's raw entry points (no tasks, no mappings): AllocForFault,
  // ReturnFrame, Activate, Balance, plus per-thread magazines on half the threads. Every
  // frame must be back on a daemon-visible queue when the dust settles.
  mach::KernelParams params = RealThreadsParams(512, 32);
  params.daemon_shards = 4;
  params.pageout.free_target = 64;
  params.pageout.inactive_target = 128;
  mach::Kernel kernel(params);
  mach::PageoutDaemon& daemon = kernel.daemon();
  const size_t boot_free = daemon.free_count();

  HammerFromThreads(kThreads, [&](int t) {
    std::unique_ptr<mach::FrameMagazine> magazine;
    if (t % 2 == 0) {
      magazine = std::make_unique<mach::FrameMagazine>(
          &daemon.free_pool(), /*capacity=*/16, "hammer_magazine." + std::to_string(t));
      daemon.AttachThreadMagazine(magazine.get());
    }
    std::mt19937_64 rng(static_cast<uint64_t>(t) * 7919 + 1);
    std::vector<mach::VmPage*> held;
    for (int i = 0; i < 4000; ++i) {
      switch (rng() % 8) {
        case 0:
        case 1:
        case 2:
          if (mach::VmPage* p = daemon.AllocForFault()) {
            held.push_back(p);
          }
          break;
        case 3:
        case 4:
          if (!held.empty()) {
            daemon.ReturnFrame(held.back());
            held.pop_back();
          }
          break;
        case 5:
        case 6:
          if (!held.empty()) {
            // Hand the frame to the daemon's LRU queues; Balance cycles it back to the
            // pool eventually (no mapping, so eviction always succeeds).
            daemon.Activate(held.back());
            held.pop_back();
          }
          break;
        default:
          daemon.Balance();
          break;
      }
    }
    for (mach::VmPage* p : held) {
      daemon.ReturnFrame(p);
    }
    if (magazine != nullptr) {
      daemon.DetachThreadMagazine();
      magazine->Flush(kernel.clock().now());
    }
  });

  ExpectDaemonQueuesConsistent(daemon);
  EXPECT_EQ(daemon.free_count() + daemon.active_count() + daemon.inactive_count(),
            boot_free);
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

TEST(PageoutDaemonShardingTest, EightTenantFaultEvictionChurnKeepsAccountingExact) {
  // The full kernel paths under memory oversubscription: 8 tasks fault 1536 pages against
  // 448 free frames, so every thread is simultaneously faulting (AllocForFault), evicting
  // other tenants' pages (Balance + desperation), wiring (Unqueue), soft-faulting
  // (ReactivateIfInactive), and tearing down regions mid-run.
  mach::KernelParams params = RealThreadsParams(512, 64);
  params.daemon_shards = 4;
  params.pageout.free_target = 32;
  params.pageout.free_min = 8;
  params.pageout.inactive_target = 64;
  mach::Kernel kernel(params);
  using mach::kPageSize;

  constexpr int kTenants = 8;
  constexpr uint64_t kPagesPerTenant = 192;
  std::vector<mach::Task*> tasks(kTenants);
  std::vector<uint64_t> addrs(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    tasks[t] = kernel.CreateTask("hammer." + std::to_string(t));
    addrs[t] = kernel.VmAllocate(tasks[t], kPagesPerTenant * kPageSize);
  }

  HammerFromThreads(kTenants, [&](int t) {
    std::mt19937_64 rng(static_cast<uint64_t>(t) * 104729 + 7);
    for (int i = 0; i < 3000 && !tasks[t]->terminated(); ++i) {
      const uint64_t page = rng() % kPagesPerTenant;
      kernel.Touch(tasks[t], addrs[t] + page * kPageSize, (rng() & 1) != 0);
      if (i % 512 == 100) {
        kernel.daemon().Balance();
      }
      if (i % 512 == 300) {
        kernel.VmWire(tasks[t], addrs[t] + (rng() % kPagesPerTenant) * kPageSize,
                      kPageSize);
      }
      if (i % 1024 == 700) {
        kernel.VmDeallocate(tasks[t], addrs[t]);
        addrs[t] = kernel.VmAllocate(tasks[t], kPagesPerTenant * kPageSize);
      }
    }
  });

  ExpectDaemonQueuesConsistent(kernel.daemon());
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);

  for (int t = 0; t < kTenants; ++t) {
    if (!tasks[t]->terminated()) {
      kernel.TerminateTask(tasks[t], "hammer done");
    }
  }
  acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
  // Every frame came home: nothing is wired or queued once the tenants are gone.
  EXPECT_EQ(kernel.daemon().free_count(),
            params.total_frames - params.kernel_reserved_frames);
}

}  // namespace
}  // namespace hipec
