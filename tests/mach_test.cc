// Unit and integration tests for the Mach-like VM substrate.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mach/kernel.h"
#include "mach/page_queue.h"
#include "mach/pmap.h"
#include "mach/vm_map.h"
#include "mach/vm_object.h"
#include "mach/vm_page.h"
#include "mach/zone.h"
#include "sim/check.h"

namespace hipec::mach {
namespace {

// ---------------------------------------------------------------- Zone

struct ZonedThing {
  explicit ZonedThing(int v) : value(v) {}
  int value;
};

TEST(ZoneTest, AllocAndFree) {
  Zone<ZonedThing> zone("things", 4);
  ZonedThing* a = zone.Alloc(1);
  ZonedThing* b = zone.Alloc(2);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);
  EXPECT_EQ(zone.live(), 2u);
  zone.Free(a);
  EXPECT_EQ(zone.live(), 1u);
  // Freed slot is recycled.
  ZonedThing* c = zone.Alloc(3);
  EXPECT_EQ(c, a);
  zone.Free(b);
  zone.Free(c);
  EXPECT_EQ(zone.live(), 0u);
}

TEST(ZoneTest, GrowsInChunks) {
  Zone<ZonedThing> zone("things", 2);
  std::vector<ZonedThing*> all;
  for (int i = 0; i < 7; ++i) {
    all.push_back(zone.Alloc(i));
  }
  EXPECT_EQ(zone.capacity(), 8u);  // 4 chunks of 2
  EXPECT_EQ(zone.total_allocs(), 7u);
  for (auto* p : all) {
    zone.Free(p);
  }
}

// ---------------------------------------------------------------- PageQueue

TEST(PageQueueTest, FifoOrder) {
  PageQueue q("q");
  VmPage a, b, c;
  q.EnqueueTail(&a, 0);
  q.EnqueueTail(&b, 1);
  q.EnqueueTail(&c, 2);
  EXPECT_EQ(q.count(), 3u);
  EXPECT_EQ(q.DequeueHead(), &a);
  EXPECT_EQ(q.DequeueHead(), &b);
  EXPECT_EQ(q.DequeueHead(), &c);
  EXPECT_EQ(q.DequeueHead(), nullptr);
}

TEST(PageQueueTest, HeadInsertAndTailRemove) {
  PageQueue q("q");
  VmPage a, b;
  q.EnqueueHead(&a, 0);
  q.EnqueueHead(&b, 0);  // b, a
  EXPECT_EQ(q.DequeueTail(), &a);
  EXPECT_EQ(q.DequeueTail(), &b);
}

TEST(PageQueueTest, RemoveFromMiddle) {
  PageQueue q("q");
  VmPage a, b, c;
  q.EnqueueTail(&a, 0);
  q.EnqueueTail(&b, 0);
  q.EnqueueTail(&c, 0);
  q.Remove(&b);
  EXPECT_EQ(q.count(), 2u);
  EXPECT_EQ(q.CountByTraversal(), 2u);
  EXPECT_EQ(b.queue, nullptr);
  EXPECT_EQ(q.DequeueHead(), &a);
  EXPECT_EQ(q.DequeueHead(), &c);
}

TEST(PageQueueTest, DoubleEnqueueThrows) {
  PageQueue q("q"), r("r");
  VmPage a;
  q.EnqueueTail(&a, 0);
  EXPECT_THROW(r.EnqueueTail(&a, 0), sim::CheckFailure);
  EXPECT_THROW(q.EnqueueHead(&a, 0), sim::CheckFailure);
}

TEST(PageQueueTest, RemoveFromWrongQueueThrows) {
  PageQueue q("q"), r("r");
  VmPage a;
  q.EnqueueTail(&a, 0);
  EXPECT_THROW(r.Remove(&a), sim::CheckFailure);
}

TEST(PageQueueTest, ContainsTracksMembership) {
  PageQueue q("q");
  VmPage a;
  EXPECT_FALSE(q.Contains(&a));
  q.EnqueueTail(&a, 0);
  EXPECT_TRUE(q.Contains(&a));
}

TEST(PageQueueTest, ForEachVisitsInOrder) {
  PageQueue q("q");
  VmPage pages[5];
  for (auto& p : pages) {
    q.EnqueueTail(&p, 0);
  }
  std::vector<VmPage*> seen;
  q.ForEach([&](VmPage* p) {
    seen.push_back(p);
    return true;
  });
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), &pages[0]);
  EXPECT_EQ(seen.back(), &pages[4]);
}

// ---------------------------------------------------------------- VmObject / VmMap

TEST(VmObjectTest, InsertLookupRemove) {
  VmObject obj(1, "o", 10 * kPageSize, false, 100);
  VmPage page;
  obj.InsertPage(&page, 2 * kPageSize);
  EXPECT_EQ(obj.Lookup(2 * kPageSize), &page);
  EXPECT_EQ(obj.Lookup(3 * kPageSize), nullptr);
  EXPECT_EQ(page.object, &obj);
  obj.RemovePage(&page);
  EXPECT_EQ(obj.Lookup(2 * kPageSize), nullptr);
  EXPECT_EQ(page.object, nullptr);
}

TEST(VmObjectTest, DiskReadDecision) {
  VmObject file(1, "file", 4 * kPageSize, /*file_backed=*/true, 100);
  VmObject anon(2, "anon", 4 * kPageSize, /*file_backed=*/false, 200);
  EXPECT_TRUE(file.NeedsDiskRead(0));
  EXPECT_FALSE(anon.NeedsDiskRead(0));
  anon.MarkPagedOut(kPageSize);
  EXPECT_TRUE(anon.NeedsDiskRead(kPageSize));
  EXPECT_FALSE(anon.NeedsDiskRead(0));
  EXPECT_EQ(file.BlockFor(2 * kPageSize), 102u);
}

TEST(VmObjectTest, DoubleInsertThrows) {
  VmObject obj(1, "o", 4 * kPageSize, false, 0);
  VmPage a, b;
  obj.InsertPage(&a, 0);
  EXPECT_THROW(obj.InsertPage(&b, 0), sim::CheckFailure);
}

TEST(VmMapTest, LookupFindsContainingEntry) {
  VmMap map;
  VmObject obj(1, "o", 16 * kPageSize, false, 0);
  uint64_t start = map.Insert(&obj, 0, 16 * kPageSize);
  EXPECT_NE(map.Lookup(start), nullptr);
  EXPECT_NE(map.Lookup(start + 5 * kPageSize + 7), nullptr);
  EXPECT_EQ(map.Lookup(start + 16 * kPageSize), nullptr);
  EXPECT_EQ(map.Lookup(start - 1), nullptr);
}

TEST(VmMapTest, EntriesDoNotOverlap) {
  VmMap map;
  VmObject a(1, "a", 4 * kPageSize, false, 0);
  VmObject b(2, "b", 4 * kPageSize, false, 100);
  uint64_t sa = map.Insert(&a, 0, 4 * kPageSize);
  uint64_t sb = map.Insert(&b, 0, 4 * kPageSize);
  EXPECT_GE(sb, sa + 4 * kPageSize);
  EXPECT_THROW(map.InsertAt(sa, &b, 0, 4 * kPageSize), sim::CheckFailure);
}

TEST(VmMapTest, OffsetOfAlignsToPage) {
  VmMap map;
  VmObject obj(1, "o", 8 * kPageSize, false, 0);
  uint64_t start = map.Insert(&obj, 0, 8 * kPageSize);
  const VmMapEntry* entry = map.Lookup(start);
  EXPECT_EQ(entry->OffsetOf(start + kPageSize + 123), kPageSize);
}

TEST(VmMapTest, RemoveReturnsEntry) {
  VmMap map;
  VmObject obj(1, "o", 4 * kPageSize, false, 0);
  uint64_t start = map.Insert(&obj, 0, 4 * kPageSize);
  VmMapEntry entry = map.Remove(start);
  EXPECT_EQ(entry.object, &obj);
  EXPECT_EQ(map.Lookup(start), nullptr);
}

// ---------------------------------------------------------------- Pmap

TEST(PmapTest, EnterLookupRemove) {
  Pmap pmap;
  Task task(1, "t");
  VmPage page;
  pmap.Enter(&task, 0x10000, &page, false);
  EXPECT_EQ(pmap.Lookup(&task, 0x10000), &page);
  EXPECT_EQ(pmap.Lookup(&task, 0x10000 + 5), &page);  // same page
  EXPECT_EQ(pmap.Lookup(&task, 0x20000), nullptr);
  EXPECT_TRUE(page.has_mapping);
  pmap.RemovePage(&page);
  EXPECT_EQ(pmap.Lookup(&task, 0x10000), nullptr);
  EXPECT_FALSE(page.has_mapping);
  EXPECT_EQ(pmap.mapping_count(), 0u);
}

TEST(PmapTest, SingleMappingEnforced) {
  Pmap pmap;
  Task t1(1, "a"), t2(2, "b");
  VmPage page;
  pmap.Enter(&t1, 0x1000, &page, false);
  EXPECT_THROW(pmap.Enter(&t2, 0x2000, &page, false), sim::CheckFailure);
}

TEST(PmapTest, WriteProtectionRecorded) {
  Pmap pmap;
  Task task(1, "t");
  VmPage page, rw;
  pmap.Enter(&task, 0x1000, &page, /*write_protected=*/true);
  pmap.Enter(&task, 0x2000, &rw, /*write_protected=*/false);
  EXPECT_TRUE(pmap.IsWriteProtected(&page));
  EXPECT_FALSE(pmap.IsWriteProtected(&rw));
}

TEST(PmapTest, RemoveTaskClearsAll) {
  Pmap pmap;
  Task task(1, "t");
  VmPage pages[3];
  for (int i = 0; i < 3; ++i) {
    pmap.Enter(&task, 0x1000 * (static_cast<uint64_t>(i) + 1), &pages[i], false);
  }
  pmap.RemoveTask(&task);
  EXPECT_EQ(pmap.mapping_count(), 0u);
  for (auto& p : pages) {
    EXPECT_FALSE(p.has_mapping);
  }
}

// ---------------------------------------------------------------- Kernel fault path

KernelParams SmallMachine() {
  KernelParams params;
  params.total_frames = 512;
  params.kernel_reserved_frames = 64;
  params.pageout.free_target = 32;
  params.pageout.free_min = 8;
  params.pageout.inactive_target = 96;
  return params;
}

TEST(KernelTest, BootAccounting) {
  Kernel kernel(SmallMachine());
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.total, 512u);
  EXPECT_EQ(acc.wired, 64u);
  EXPECT_EQ(acc.global_free, 448u);
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(kernel.boot_free_frames(), 448u);
}

TEST(KernelTest, ZeroFillFaultOnAnonymousRegion) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 8 * kPageSize);
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  EXPECT_EQ(kernel.counters().Get("kernel.page_faults"), 1);
  EXPECT_EQ(kernel.counters().Get("kernel.zero_fills"), 1);
  EXPECT_EQ(kernel.counters().Get("kernel.disk_fills"), 0);
  // Second touch is a TLB hit: no new fault.
  EXPECT_TRUE(kernel.Touch(task, addr + 100, true));
  EXPECT_EQ(kernel.counters().Get("kernel.page_faults"), 1);
}

TEST(KernelTest, FileBackedFaultReadsDisk) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  VmObject* file = kernel.CreateFileObject("data", 8 * kPageSize);
  uint64_t addr = kernel.VmMapFile(task, file);
  sim::Nanos before = kernel.clock().now();
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  EXPECT_EQ(kernel.counters().Get("kernel.disk_fills"), 1);
  // Fault cost includes a multi-millisecond disk read.
  EXPECT_GT(kernel.clock().now() - before, 2 * sim::kMillisecond);
}

TEST(KernelTest, SegfaultTerminatesTask) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  EXPECT_FALSE(kernel.Touch(task, 0xdead0000, false));
  EXPECT_TRUE(task->terminated());
  EXPECT_EQ(task->termination_reason(), "segmentation violation");
}

TEST(KernelTest, WriteToProtectedRegionTerminates) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  VmObject* file = kernel.CreateFileObject("buf", 4 * kPageSize);
  uint64_t addr = task->map().Insert(file, 0, 4 * kPageSize, /*write_protected=*/true);
  EXPECT_TRUE(kernel.Touch(task, addr, false));   // reads are fine
  EXPECT_FALSE(kernel.Touch(task, addr, true));   // writes terminate
  EXPECT_TRUE(task->terminated());
  // Also when the write is the *first* access (hard fault path).
  Task* task2 = kernel.CreateTask("t2");
  uint64_t addr2 = task2->map().Insert(file, 0, 4 * kPageSize, /*write_protected=*/true);
  EXPECT_FALSE(kernel.Touch(task2, addr2 + kPageSize, true));
  EXPECT_TRUE(task2->terminated());
}

TEST(KernelTest, EvictionUnderMemoryPressure) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  // 448 free frames; touch 600 pages to force replacement.
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, addr, 600 * kPageSize, true));
  EXPECT_GT(kernel.daemon().counters().Get("pageout.evictions"), 0);
  // Dirty anonymous pages were flushed to swap on eviction.
  EXPECT_GT(kernel.counters().Get("kernel.pageouts"), 0);
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

TEST(KernelTest, RefaultAfterEvictionReadsSwap) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, addr, 600 * kPageSize, true));
  // Page 0 was evicted (FIFO-ish); refault must read it back from swap, not zero-fill.
  int64_t disk_fills_before = kernel.counters().Get("kernel.disk_fills");
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  EXPECT_GT(kernel.counters().Get("kernel.disk_fills"), disk_fills_before);
}

TEST(KernelTest, CleanEvictionZeroFillsOnRefault) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  // Read-only touches: pages are zero-filled, never dirtied.
  EXPECT_TRUE(kernel.TouchRange(task, addr, 600 * kPageSize, false));
  EXPECT_EQ(kernel.counters().Get("kernel.pageouts"), 0);
  int64_t zero_fills = kernel.counters().Get("kernel.zero_fills");
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  if (kernel.counters().Get("kernel.page_faults") > 600) {
    // If page 0 was evicted, its refault is another zero-fill (contents were never saved).
    EXPECT_GT(kernel.counters().Get("kernel.zero_fills") +
                  kernel.counters().Get("kernel.soft_faults"),
              zero_fills);
  }
  EXPECT_EQ(kernel.counters().Get("kernel.disk_fills"), 0);
}

TEST(KernelTest, SecondChanceKeepsReferencedPages) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  // Keep re-touching page 0 while sweeping repeatedly. Whenever page 0 reaches the head of
  // the inactive queue its reference bit is set again, so the daemon must give it a second
  // chance instead of evicting it.
  for (int round = 0; round < 4; ++round) {
    for (uint64_t i = 0; i < 600; ++i) {
      ASSERT_TRUE(kernel.Touch(task, addr + i * kPageSize, false));
      ASSERT_TRUE(kernel.Touch(task, addr, false));
    }
  }
  EXPECT_GT(kernel.daemon().counters().Get("pageout.second_chances"), 0);
}

TEST(KernelTest, VmWirePinsPages) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t pinned = kernel.VmAllocate(task, 4 * kPageSize);
  kernel.VmWire(task, pinned, 4 * kPageSize);
  // Heavy pressure must not evict the wired pages.
  uint64_t addr = kernel.VmAllocate(task, 600 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, addr, 600 * kPageSize, true));
  int64_t faults = kernel.counters().Get("kernel.page_faults");
  EXPECT_TRUE(kernel.Touch(task, pinned, false));
  EXPECT_TRUE(kernel.Touch(task, pinned + 3 * kPageSize, false));
  EXPECT_EQ(kernel.counters().Get("kernel.page_faults"), faults);  // no refaults
}

TEST(KernelTest, DeallocateReturnsFrames) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 100 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, addr, 100 * kPageSize, true));
  size_t free_before = kernel.daemon().free_count();
  kernel.VmDeallocate(task, addr);
  EXPECT_EQ(kernel.daemon().free_count(), free_before + 100);
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
}

TEST(KernelTest, TerminateTaskTearsDownAddressSpace) {
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t a1 = kernel.VmAllocate(task, 50 * kPageSize);
  uint64_t a2 = kernel.VmAllocate(task, 30 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, a1, 50 * kPageSize, true));
  EXPECT_TRUE(kernel.TouchRange(task, a2, 30 * kPageSize, false));
  kernel.TerminateTask(task, "test");
  EXPECT_EQ(task->map().entry_count(), 0u);
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.global_free, 448u);
  EXPECT_EQ(acc.unaccounted, 0u);
}

TEST(KernelTest, SoftFaultAfterUnmapIsCheap) {
  // Evicting only the *mapping* (not residency) is not modelled separately, but a page that
  // another fault pushed to the inactive queue and that is refaulted before eviction must be
  // reactivated without disk I/O.
  Kernel kernel(SmallMachine());
  Task* task = kernel.CreateTask("t");
  uint64_t addr = kernel.VmAllocate(task, 8 * kPageSize);
  EXPECT_TRUE(kernel.TouchRange(task, addr, 8 * kPageSize, true));
  // Force the page onto the inactive queue by hand.
  VmPage* page = kernel.pmap().Lookup(task, addr);
  ASSERT_NE(page, nullptr);
  kernel.pmap().RemovePage(page);
  page->queue.load()->Remove(page);
  kernel.daemon().inactive_queue().EnqueueTail(page, kernel.clock().now());
  int64_t soft_before = kernel.counters().Get("kernel.soft_faults");
  EXPECT_TRUE(kernel.Touch(task, addr, false));
  EXPECT_EQ(kernel.counters().Get("kernel.soft_faults"), soft_before + 1);
  EXPECT_TRUE(kernel.daemon().active_queue().Contains(page));
}

TEST(KernelTest, FrameConservationUnderMixedLoad) {
  Kernel kernel(SmallMachine());
  Task* t1 = kernel.CreateTask("a");
  Task* t2 = kernel.CreateTask("b");
  uint64_t a1 = kernel.VmAllocate(t1, 300 * kPageSize);
  VmObject* file = kernel.CreateFileObject("f", 200 * kPageSize);
  uint64_t a2 = kernel.VmMapFile(t2, file);
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(kernel.TouchRange(t1, a1, 300 * kPageSize, true));
    EXPECT_TRUE(kernel.TouchRange(t2, a2, 200 * kPageSize, false));
    FrameAccounting acc = kernel.ComputeFrameAccounting();
    EXPECT_EQ(acc.Sum(), acc.total);
    EXPECT_EQ(acc.unaccounted, 0u);
  }
  kernel.TerminateTask(t1, "done");
  kernel.TerminateTask(t2, "done");
  FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.global_free, 448u);
}

TEST(KernelTest, HipecBuildChargesRegionCheckPerFault) {
  KernelParams plain = SmallMachine();
  KernelParams modified = SmallMachine();
  modified.hipec_build = true;

  auto run = [](KernelParams params) {
    Kernel kernel(params);
    Task* task = kernel.CreateTask("t");
    uint64_t addr = kernel.VmAllocate(task, 64 * kPageSize);
    kernel.TouchRange(task, addr, 64 * kPageSize, false);
    return kernel.clock().now();
  };
  sim::Nanos t_plain = run(plain);
  sim::Nanos t_modified = run(modified);
  EXPECT_EQ(t_modified - t_plain, 64 * plain.costs.hipec_region_check_ns);
}

TEST(KernelTest, NullSyscallCost) {
  Kernel kernel(SmallMachine());
  sim::Nanos before = kernel.clock().now();
  kernel.NullSyscall();
  EXPECT_EQ(kernel.clock().now() - before, kernel.costs().null_syscall_ns);
}

}  // namespace
}  // namespace hipec::mach
