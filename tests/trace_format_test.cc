// .hpt trace-format tests (workloads/trace_format.h), mirroring server_wire_test.cc's
// discipline: round-trips for representative traces, a truncation sweep over every strict
// prefix of a valid encoding, hand-crafted hostile headers and records (oversized
// region/count fields, reserved bits, out-of-range pages), and a seeded bit-flip fuzz —
// the decoder's contract is a typed TraceStatus for every input, never UB or a crash
// (ASan/UBSan hold this in CI).
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "workloads/trace_format.h"
#include "workloads/workload_source.h"

namespace hipec::workloads {
namespace {

TraceData SampleTrace() {
  TraceData t;
  t.name = "sample";
  t.page_size = 4096;
  t.region_pages = 4096;
  uint64_t page = 100;
  for (int i = 0; i < 200; ++i) {
    Access a;
    // Jump around: negative and positive deltas, multi-byte varints.
    page = (page + 2641) % 4096;
    a.vpage = page;
    a.tenant = (i % 7 == 0) ? static_cast<uint32_t>(i) : 0;
    a.think_ns = (i % 5 == 0) ? 1000u * static_cast<uint32_t>(i) : 0;
    a.op = (i % 3 == 0) ? AccessOp::kWrite : AccessOp::kRead;
    t.records.push_back(a);
  }
  return t;
}

TraceStatus Decode(const std::string& bytes, TraceData* out) {
  return DecodeTrace(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), out);
}

TEST(TraceRoundTrip, PreservesEveryField) {
  TraceData t = SampleTrace();
  std::string bytes = EncodeTrace(t);
  ASSERT_FALSE(bytes.empty());
  TraceData back;
  ASSERT_EQ(Decode(bytes, &back), TraceStatus::kOk);
  EXPECT_EQ(back.name, t.name);
  EXPECT_EQ(back.page_size, t.page_size);
  EXPECT_EQ(back.region_pages, t.region_pages);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i], t.records[i]) << "record " << i;
  }
}

TEST(TraceRoundTrip, EmptyRecordListIsValid) {
  TraceData t;
  t.name = "empty";
  t.region_pages = 8;
  std::string bytes = EncodeTrace(t);
  ASSERT_FALSE(bytes.empty());
  TraceData back;
  ASSERT_EQ(Decode(bytes, &back), TraceStatus::kOk);
  EXPECT_TRUE(back.records.empty());
  EXPECT_EQ(back.region_pages, 8u);
}

TEST(TraceRoundTrip, FileRoundTrip) {
  TraceData t = SampleTrace();
  std::string path = testing::TempDir() + "/trace_format_test.hpt";
  std::string error;
  ASSERT_TRUE(WriteTraceFile(path, t, &error)) << error;
  TraceData back;
  ASSERT_EQ(LoadTraceFile(path, &back, &error), TraceStatus::kOk) << error;
  EXPECT_EQ(back.records.size(), t.records.size());
  std::remove(path.c_str());
}

TEST(TraceRoundTrip, MissingFileIsIoError) {
  TraceData out;
  std::string error;
  EXPECT_EQ(LoadTraceFile("/nonexistent/definitely/not/here.hpt", &out, &error),
            TraceStatus::kIoError);
  EXPECT_FALSE(error.empty());
}

// Every strict prefix of a valid encoding must be rejected cleanly — and since records are
// only missing from the end, the status must always be kTruncated (never a crash, never a
// bogus kOk).
TEST(TraceHostile, TruncationSweepEveryStrictPrefix) {
  std::string bytes = EncodeTrace(SampleTrace());
  ASSERT_FALSE(bytes.empty());
  for (size_t len = 0; len < bytes.size(); ++len) {
    TraceData out;
    TraceStatus status = Decode(bytes.substr(0, len), &out);
    EXPECT_EQ(status, TraceStatus::kTruncated) << "prefix length " << len;
  }
}

TEST(TraceHostile, TrailingBytesDetected) {
  std::string bytes = EncodeTrace(SampleTrace());
  bytes += '\0';
  TraceData out;
  EXPECT_EQ(Decode(bytes, &out), TraceStatus::kTrailingBytes);
}

TEST(TraceHostile, BadMagicAndVersion) {
  std::string bytes = EncodeTrace(SampleTrace());
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  TraceData out;
  EXPECT_EQ(Decode(wrong_magic, &out), TraceStatus::kBadMagic);
  std::string wrong_version = bytes;
  wrong_version[4] = 9;
  EXPECT_EQ(Decode(wrong_version, &out), TraceStatus::kBadVersion);
}

// Hand-crafts a header with a chosen field patched, on top of a minimal valid trace.
std::string PatchedHeader(size_t offset, const std::vector<uint8_t>& value) {
  TraceData t;
  t.name = "x";
  t.region_pages = 16;
  Access a;
  a.vpage = 3;
  t.records.push_back(a);
  std::string bytes = EncodeTrace(t);
  for (size_t i = 0; i < value.size(); ++i) {
    bytes[offset + i] = static_cast<char>(value[i]);
  }
  return bytes;
}

TEST(TraceHostile, OversizedAndInvalidHeaderFields) {
  TraceData out;
  // page_size (offset 8): not a power of two.
  EXPECT_EQ(Decode(PatchedHeader(8, {0x01, 0x30, 0, 0}), &out), TraceStatus::kMalformed);
  // page_size: power of two but out of range (2^20).
  EXPECT_EQ(Decode(PatchedHeader(8, {0, 0, 0x10, 0}), &out), TraceStatus::kMalformed);
  // flags (offset 12): reserved bits set.
  EXPECT_EQ(Decode(PatchedHeader(12, {1, 0, 0, 0}), &out), TraceStatus::kMalformed);
  // region_pages (offset 16): zero.
  EXPECT_EQ(Decode(PatchedHeader(16, {0, 0, 0, 0, 0, 0, 0, 0}), &out),
            TraceStatus::kMalformed);
  // region_pages: 2^41 > cap.
  EXPECT_EQ(Decode(PatchedHeader(16, {0, 0, 0, 0, 0, 2, 0, 0}), &out),
            TraceStatus::kMalformed);
  // record_count (offset 24): 16M — under the format cap but vastly larger than the
  // buffer. The allocation guard must trip (truncated), not reserve gigabytes.
  EXPECT_EQ(Decode(PatchedHeader(24, {0xff, 0xff, 0xff, 0, 0, 0, 0, 0}), &out),
            TraceStatus::kTruncated);
  // record_count beyond the format cap entirely.
  EXPECT_EQ(Decode(PatchedHeader(24, {0, 0, 0, 0, 1, 0, 0, 0}), &out),
            TraceStatus::kMalformed);
  // name_len (offset 32): 0xffff > kMaxTraceName.
  EXPECT_EQ(Decode(PatchedHeader(32, {0xff, 0xff}), &out), TraceStatus::kMalformed);
}

TEST(TraceHostile, HostileRecords) {
  TraceData out;
  // Header is 34 bytes + 1 name byte; the single record starts at 35.
  // Tag with reserved bits set.
  EXPECT_EQ(Decode(PatchedHeader(35, {0x80}), &out), TraceStatus::kMalformed);
  // vpage delta (offset 36, after the tag): zigzag(16) = 32 → vpage 16 >= region 16.
  EXPECT_EQ(Decode(PatchedHeader(36, {32}), &out), TraceStatus::kMalformed);
  // Overlong varint: 10 continuation bytes never terminating inside a u64. Rebuild with a
  // record long enough to hold it: tag says tenant follows, then the hostile varint.
  std::string bytes = PatchedHeader(35, {0x02});
  bytes.resize(36);
  for (int i = 0; i < 10; ++i) {
    bytes += static_cast<char>(0x80 | (i + 1));
  }
  EXPECT_EQ(Decode(bytes, &out), TraceStatus::kMalformed);
}

TEST(TraceHostile, SeededBitFlipFuzzNeverCrashes) {
  std::string valid = EncodeTrace(SampleTrace());
  std::mt19937_64 rng(0xF00D);
  int ok = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string mutated = valid;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      size_t byte = rng() % mutated.size();
      mutated[byte] ^= static_cast<char>(1u << (rng() % 8));
    }
    TraceData out;
    if (Decode(mutated, &out) == TraceStatus::kOk) {
      ++ok;  // a flip in the name bytes (or a no-op pair) can legally survive
    }
  }
  // The point is the loop finished without UB; a small survivor count is expected.
  EXPECT_LT(ok, 4000);
}

TEST(TraceHostile, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(0xBEEF);
  for (int iter = 0; iter < 2000; ++iter) {
    size_t len = rng() % 300;
    std::string garbage(len, '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng());
    }
    TraceData out;
    TraceStatus status = Decode(garbage, &out);
    EXPECT_NE(status, TraceStatus::kIoError);  // decode never reports I/O
  }
}

TEST(TraceEncode, RefusesCapViolations) {
  TraceData bad = SampleTrace();
  bad.records[0].vpage = bad.region_pages;  // out of region
  EXPECT_TRUE(EncodeTrace(bad).empty());

  bad = SampleTrace();
  bad.name.assign(kMaxTraceName + 1, 'n');
  EXPECT_TRUE(EncodeTrace(bad).empty());

  bad = SampleTrace();
  bad.page_size = 1000;  // not a power of two
  EXPECT_TRUE(EncodeTrace(bad).empty());

  bad = SampleTrace();
  bad.records[0].tenant = kMaxTraceTenant;
  EXPECT_TRUE(EncodeTrace(bad).empty());
}

TEST(TraceSource, WrapsRecordsAndSharesOnClone) {
  TraceData t = SampleTrace();
  size_t n = t.records.size();
  std::shared_ptr<const WorkloadSource> source = MakeTraceSource(std::move(t));
  EXPECT_EQ(source->size(), n);
  EXPECT_EQ(source->region_pages(), 4096u);
  EXPECT_EQ(source->name(), "sample");
  auto a = source->Clone();
  auto b = source->Clone();
  // Clones share the record storage: same backing vector, independent cursors.
  auto* ma = dynamic_cast<MaterializedSource*>(a.get());
  auto* mb = dynamic_cast<MaterializedSource*>(b.get());
  ASSERT_NE(ma, nullptr);
  ASSERT_NE(mb, nullptr);
  EXPECT_EQ(ma->records(), mb->records());
  Access first;
  ASSERT_TRUE(a->Next(&first));
  EXPECT_EQ(a->pos(), 1u);
  EXPECT_EQ(b->pos(), 0u);
}

}  // namespace
}  // namespace hipec::workloads
