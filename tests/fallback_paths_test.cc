// Tests for rarely-hit fallback paths: the Flush synchronous-write fallback when the
// manager's clean reserve is exhausted, laundry recycling back into the reserve, forced
// reclamation of dirty pages, and whole-experiment determinism.
#include <gtest/gtest.h>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/join_workload.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;
using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  return params;
}

TEST(FlushFallbackTest, SyncWriteWhenReserveExhausted) {
  mach::Kernel kernel(SmallParams());
  // A one-frame reserve: the second outstanding flush in a burst must fall back to a
  // synchronous write (the executor-stalling case §4.3.1's exchange design avoids).
  HipecEngine engine(&kernel, FrameManagerConfig{0.5, 1});
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 64;
  HipecRegion region = engine.VmAllocateHipec(
      task, 256 * kPageSize, policies::MruPolicy(policies::CommandStyle::kSimple), options);
  ASSERT_TRUE(region.ok) << region.error;
  // Dirty the whole pool, then keep faulting: every eviction flushes a dirty page.
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 256 * kPageSize, true));
  EXPECT_FALSE(task->terminated()) << task->termination_reason();
  auto& counters = engine.manager().counters();
  EXPECT_GT(counters.Get("manager.flushes_async"), 0);  // the reserve served the first
  EXPECT_GT(counters.Get("manager.flushes_sync"), 0);   // then the fallback kicked in
  EXPECT_GT(kernel.disk().counters().Get("disk.writes_sync"), 0);
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
}

TEST(FlushFallbackTest, LaundryRecyclesIntoReserve) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel, FrameManagerConfig{0.5, 8});
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 32;
  HipecRegion region = engine.VmAllocateHipec(
      task, 64 * kPageSize, policies::FifoPolicy(policies::CommandStyle::kSimple), options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, true));
  // Let the asynchronous write-back finish: laundry frames return to the reserve.
  kernel.disk().DrainWrites();
  EXPECT_GT(engine.manager().counters().Get("manager.laundry_done"), 0);
  EXPECT_EQ(engine.manager().laundry_count(), 0u);
  EXPECT_EQ(engine.manager().reserve_count(), 8u);  // fully restocked
}

TEST(ForcedReclaimTest, SeizedDirtyPagesAreWrittenAndRefaultable) {
  mach::KernelParams params = SmallParams();
  mach::Kernel kernel(params);
  HipecEngine engine(&kernel, FrameManagerConfig{0.9, 16});
  mach::Task* a = kernel.CreateTask("a");

  // A's ReclaimFrame refuses to release anything, so reclamation must be *forced* — and A's
  // pages are dirty, so the manager must save their contents.
  PolicyProgram selfish = policies::FifoSecondChancePolicy();
  EventBuilder noop;
  noop.Return(0);
  selfish.SetEvent(kEventReclaimFrame, noop.Build());
  HipecOptions options;
  options.min_frames = 64;
  options.free_target = 8;
  options.inactive_target = 16;
  HipecRegion ra = engine.VmAllocateHipec(a, 600 * kPageSize, selfish, options);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(engine.manager().RequestFrames(ra.container, 536, &ra.container->free_q()));
  EXPECT_TRUE(kernel.TouchRange(a, ra.addr, 600 * kPageSize, true));  // all dirty

  // B's admission (260 frames against ~270 free and an 806-frame burst already 600 deep)
  // cannot be satisfied without seizing A's (dirty, resident) frames.
  mach::Task* b = kernel.CreateTask("b");
  int64_t sync_writes_before = kernel.disk().counters().Get("disk.writes_sync");
  HipecOptions b_options = options;
  b_options.min_frames = 260;
  HipecRegion rb = engine.VmAllocateHipec(b, 300 * kPageSize,
                                          policies::FifoSecondChancePolicy(), b_options);
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_GT(engine.manager().counters().Get("manager.forced_reclaims"), 0);
  EXPECT_GT(kernel.disk().counters().Get("disk.writes_sync"), sync_writes_before);

  // A's seized pages were saved: refaulting them reads the data back from swap, not
  // zero-fill. (Scan a range: which exact frames were seized depends on allocation order.)
  int64_t disk_fills_before = kernel.counters().Get("kernel.disk_fills");
  for (uint64_t p = 0; p < 100; ++p) {
    EXPECT_TRUE(kernel.Touch(a, ra.addr + p * kPageSize, false));
  }
  EXPECT_GT(kernel.counters().Get("kernel.disk_fills"), disk_fills_before);
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
}

TEST(DeterminismTest, FullJoinExperimentIsBitReproducible) {
  workloads::JoinConfig config;
  config.outer_bytes = 3 * 1024 * 1024;
  config.memory_bytes = 2 * 1024 * 1024;
  config.mode = workloads::JoinMode::kHipecMru;
  workloads::JoinResult r1 = workloads::RunJoin(config);
  workloads::JoinResult r2 = workloads::RunJoin(config);
  EXPECT_EQ(r1.elapsed, r2.elapsed);
  EXPECT_EQ(r1.page_faults, r2.page_faults);
  EXPECT_EQ(r1.disk_reads, r2.disk_reads);
}

}  // namespace
}  // namespace hipec::core
