// Real-threads scenario driver tests (scenario/threaded.h) plus the determinism half of the
// bargain: the same kernel core, run under the deterministic virtual clock, still produces
// the recorded golden fingerprints byte-for-byte. Together these prove the concurrency
// refactor added a real execution mode without perturbing the reference mode.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "scenario/canned.h"
#include "scenario/scenario.h"
#include "scenario/threaded.h"

namespace hipec::scenario {
namespace {

// --- Deterministic mode: bit-for-bit against the recorded baseline --------------------------

struct GoldenEntry {
  const char* name;
  const char* fingerprint;
};

const GoldenEntry kGolden[] = {
#include "golden_fingerprints.inc"
};

TEST(VirtualClockDeterminismTest, CannedScenariosMatchGoldenFingerprints) {
  std::map<std::string, std::string> golden;
  for (const GoldenEntry& e : kGolden) {
    golden.emplace(e.name, e.fingerprint);
  }
  for (const ScenarioSpec& spec : AllCannedScenarios()) {
    auto it = golden.find(spec.name);
    ASSERT_NE(it, golden.end()) << "no golden fingerprint recorded for " << spec.name
                                << "; regenerate with hipec-fingerprints --inc";
    ScenarioResult result = RunScenario(spec);
    // A mismatch means virtual-clock execution is no longer bit-for-bit reproducible
    // against the baseline — a finding to investigate, not a golden file to update casually.
    EXPECT_EQ(result.Fingerprint(), it->second) << spec.name;
  }
}

// --- Real-threads mode: contention with stop-the-world auditing -----------------------------

TEST(ThreadedScenarioTest, ThunderingHerdShapedContentionHoldsInvariants) {
  // 8 greedy tenants hammering concurrently with Request sizes that overshoot the burst
  // watermark: grants, rejections, and reclamation all race across threads while the
  // stop-the-world auditor re-proves conservation/FAFR/solvency mid-flight.
  ThreadedScenarioSpec spec;
  spec.name = "threaded-herd";
  spec.total_frames = 2048;
  spec.kernel_reserved_frames = 256;
  spec.manager.partition_burst_fraction = 0.49;
  spec.audit_interval_ms = 2;
  for (int i = 0; i < 8; ++i) {
    TenantSpec t;
    t.name = "herd-" + std::to_string(i);
    t.policy = PolicyKind::kGreedy;
    t.pattern = PatternKind::kUniform;
    t.pages = 192;
    t.min_frames = 80;
    t.accesses = 2000;
    t.write_fraction = 0.15;
    t.request_size = 32;
    spec.tenants.push_back(t);
  }

  // RunThreadedScenario throws sim::CheckFailure if any audit finds a violation.
  ThreadedScenarioResult r = RunThreadedScenario(spec);
  EXPECT_EQ(r.threads, 8u);
  EXPECT_GE(r.audits_run, 1);  // the final audit always runs
  EXPECT_GT(r.total_faults, 0);
  for (const TenantResult& t : r.tenants) {
    EXPECT_TRUE(t.admitted) << t.name;
    EXPECT_TRUE(t.completed) << t.name << " terminated early";
    EXPECT_EQ(t.accesses_done, 2000u) << t.name;
  }
  EXPECT_EQ(r.total_accesses, 8u * 2000u);
}

TEST(ThreadedScenarioTest, HogVsManyShapedContentionHoldsInvariants) {
  // One stubborn hog (refuses cooperative reclamation, so only ForcedReclaim can take its
  // frames) against 6 small greedy tenants, all racing from the start. Outcomes — who gets
  // forced-reclaimed from, who gets rejected — depend on the scheduler; the invariants may
  // not.
  ThreadedScenarioSpec spec;
  spec.name = "threaded-hog";
  spec.total_frames = 2048;
  spec.kernel_reserved_frames = 256;
  spec.manager.partition_burst_fraction = 0.45;
  spec.audit_interval_ms = 2;
  TenantSpec hog;
  hog.name = "hog";
  hog.policy = PolicyKind::kStubborn;
  hog.pattern = PatternKind::kUniform;
  hog.pages = 700;
  hog.min_frames = 64;
  hog.accesses = 4000;
  hog.write_fraction = 0.1;
  hog.request_size = 48;
  spec.tenants.push_back(hog);
  for (int i = 0; i < 6; ++i) {
    TenantSpec t;
    t.name = "small-" + std::to_string(i);
    t.policy = PolicyKind::kGreedy;
    t.pattern = PatternKind::kHotCold;
    t.pages = 48;
    t.min_frames = 48;
    t.accesses = 1500;
    t.write_fraction = 0.1;
    spec.tenants.push_back(t);
  }

  ThreadedScenarioResult r = RunThreadedScenario(spec);
  EXPECT_EQ(r.threads, 7u);
  EXPECT_GE(r.audits_run, 1);
  EXPECT_GT(r.total_faults, 0);
  for (const TenantResult& t : r.tenants) {
    EXPECT_TRUE(t.admitted) << t.name;
    // Under real contention a tenant either finishes its trace or is legitimately
    // terminated; silently stalling (neither flag) would hang the join, so reaching here
    // with both false means the driver mis-reported.
    EXPECT_TRUE(t.completed || t.terminated) << t.name;
  }
}

TEST(ThreadedScenarioTest, FinalAuditRunsEvenWithPeriodicAuditingOff) {
  ThreadedScenarioSpec spec;
  spec.name = "threaded-minimal";
  spec.total_frames = 1024;
  spec.kernel_reserved_frames = 128;
  spec.audit = false;
  TenantSpec t;
  t.name = "solo";
  t.policy = PolicyKind::kFifoSecondChance;
  t.pattern = PatternKind::kHotCold;
  t.pages = 128;
  t.min_frames = 32;
  t.accesses = 1000;
  spec.tenants.push_back(t);

  ThreadedScenarioResult r = RunThreadedScenario(spec);
  EXPECT_EQ(r.audits_run, 1);  // exactly the always-on final audit
  ASSERT_EQ(r.tenants.size(), 1u);
  EXPECT_TRUE(r.tenants[0].completed);
  EXPECT_GT(r.tenants[0].faults_handled, 0);
  EXPECT_GT(r.faults_per_sec, 0.0);
}

TEST(ThreadedScenarioTest, InjectionScheduleFiresAgainstRunningWorkers) {
  // The deterministic driver's fault-injection schedule, reinterpreted for wall-clock
  // execution: a disk-latency spike and a mid-run teardown perturb running workers from the
  // control loop, while a looping-policy tenant materializes on a freshly spawned thread and
  // must die to the checker's TimeOut fuse — all with audits green throughout.
  ThreadedScenarioSpec spec;
  spec.name = "threaded-injections";
  spec.total_frames = 1024;
  spec.kernel_reserved_frames = 128;
  spec.audit_interval_ms = 2;
  for (int i = 0; i < 4; ++i) {
    TenantSpec t;
    t.name = "steady-" + std::to_string(i);
    t.policy = PolicyKind::kFifoSecondChance;
    t.pattern = PatternKind::kHotCold;
    t.pages = 96;
    t.min_frames = 24;
    t.accesses = (i == 0) ? 2'000'000 : 4000;  // tenant 0 outlives the teardown that ends it
    t.write_fraction = 0.1;
    spec.tenants.push_back(t);
  }

  InjectionSpec spike;
  spike.kind = InjectionKind::kDiskLatencySpike;
  spike.at_step = 3;  // milliseconds since the workers started
  spike.duration_steps = 10;
  spike.extra_latency_ns = 1 * sim::kMillisecond;
  InjectionSpec loop;
  loop.kind = InjectionKind::kPolicyLoop;
  loop.at_step = 5;
  InjectionSpec teardown;
  teardown.kind = InjectionKind::kTeardown;
  teardown.at_step = 20;
  teardown.tenant_index = 0;
  spec.injections = {spike, loop, teardown};

  ThreadedScenarioResult r = RunThreadedScenario(spec);
  ASSERT_EQ(r.tenants.size(), 5u);  // 4 listed + the injected looper
  EXPECT_GE(r.checker_kills, 1);
  size_t injected = 0;
  size_t torn_down = 0;
  for (const TenantResult& t : r.tenants) {
    injected += t.injected ? 1 : 0;
    torn_down += t.torn_down ? 1 : 0;
    // Every worker ended through a real exit — completion, termination, or teardown.
    EXPECT_TRUE(t.completed || t.terminated || t.torn_down) << t.name;
  }
  EXPECT_EQ(injected, 1u);
  EXPECT_EQ(torn_down, 1u);
}

TEST(ThreadedScenarioTest, AdmissionIsSpecOrderedEvenThoughExecutionIsNot) {
  // Registration happens sequentially before the worker threads spawn, so admission
  // verdicts are reproducible: with min_frames sized to exhaust the burst watermark,
  // the early tenants are admitted and the last is denied — every run.
  ThreadedScenarioSpec spec;
  spec.name = "threaded-admission";
  spec.total_frames = 1024;
  spec.kernel_reserved_frames = 128;
  spec.manager.partition_burst_fraction = 0.5;  // watermark ~ 0.5 * boot-free (~440)
  for (int i = 0; i < 4; ++i) {
    TenantSpec t;
    t.name = "claim-" + std::to_string(i);
    t.policy = PolicyKind::kFifo;
    t.pattern = PatternKind::kSequential;
    t.pages = 160;
    t.min_frames = 120;  // 3 x 120 fits under the watermark; the 4th claim cannot
    t.accesses = 300;
    spec.tenants.push_back(t);
  }

  ThreadedScenarioResult r = RunThreadedScenario(spec);
  ASSERT_EQ(r.tenants.size(), 4u);
  EXPECT_TRUE(r.tenants[0].admitted);
  EXPECT_TRUE(r.tenants[1].admitted);
  EXPECT_TRUE(r.tenants[2].admitted);
  EXPECT_FALSE(r.tenants[3].admitted);  // runs non-specific (§4.3.1) but still completes
  for (const TenantResult& t : r.tenants) {
    EXPECT_TRUE(t.completed) << t.name;
  }
}

}  // namespace
}  // namespace hipec::scenario
