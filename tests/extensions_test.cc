// Tests for the §6 future-work extensions: the Migrate and Unlink commands, strict frame
// accounting + leaked-frame recovery, the adaptive partition_burst, and flash backing.
#include <gtest/gtest.h>

#include "hipec/builder.h"
#include "hipec/engine.h"
#include "lang/compiler.h"
#include "mach/kernel.h"
#include "policies/policies.h"
#include "workloads/join_workload.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;
using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  return params;
}

PolicyProgram WithReclaim(std::vector<Instruction> fault_commands) {
  PolicyProgram program;
  program.SetEvent(kEventPageFault, fault_commands);
  program.SetEvent(kEventReclaimFrame, policies::StandardReclaimEvent());
  return program;
}

void ExpectConservation(mach::Kernel& kernel) {
  mach::FrameAccounting acc = kernel.ComputeFrameAccounting();
  EXPECT_EQ(acc.unaccounted, 0u);
  EXPECT_EQ(acc.Sum(), acc.total);
}

// ---------------------------------------------------------------- Migrate

struct MigrationSetup {
  mach::Kernel kernel{SmallParams()};
  HipecEngine engine{&kernel};
  mach::Task* sender = nullptr;
  mach::Task* receiver = nullptr;
  HipecRegion sender_region;
  HipecRegion receiver_region;

  // `target_op` (a user int at kUserBase) holds the migration target id.
  explicit MigrationSetup(bool receiver_accepts) {
    sender = kernel.CreateTask("sender");
    receiver = kernel.CreateTask("receiver");

    HipecOptions receiver_options;
    receiver_options.min_frames = 8;
    receiver_options.accepts_migration = receiver_accepts;
    receiver_region = engine.VmAllocateHipec(receiver, 16 * kPageSize,
                                             policies::FifoSecondChancePolicy(),
                                             receiver_options);
    EXPECT_TRUE(receiver_region.ok) << receiver_region.error;

    // Sender policy: take two frames off the free list, migrate one to the partner (id in
    // the user int operand), return the other.
    EventBuilder b;
    auto keep = b.NewLabel();
    b.DeQueueHead(ops::kPage, ops::kFreeQueue);
    b.DeQueueHead(ops::kUserBase + 1, ops::kFreeQueue);  // user page var
    b.Migrate(ops::kUserBase + 1, ops::kUserBase);       // target id in user int
    b.JumpIfFalse(keep);
    b.Return(ops::kPage);
    b.Bind(keep);
    b.EnQueueTail(ops::kUserBase + 1, ops::kFreeQueue);  // migration refused: keep the frame
    b.Return(ops::kPage);

    HipecOptions sender_options;
    sender_options.min_frames = 16;
    sender_options.user_int_count = 1;   // kUserBase: the partner id
    sender_options.user_page_count = 1;  // kUserBase+1: the frame being migrated
    sender_region = engine.VmAllocateHipec(sender, 16 * kPageSize, WithReclaim(b.Build()),
                                           sender_options);
    EXPECT_TRUE(sender_region.ok) << sender_region.error;
    sender_region.container->operands().WriteInt(
        ops::kUserBase, static_cast<int64_t>(receiver_region.container->id()));
  }
};

TEST(MigrateTest, MovesFrameBetweenContainers) {
  MigrationSetup setup(/*receiver_accepts=*/true);
  size_t receiver_before = setup.receiver_region.container->allocated_frames;
  size_t specific_before = setup.engine.manager().total_specific();

  EXPECT_TRUE(setup.kernel.Touch(setup.sender, setup.sender_region.addr, false));

  EXPECT_EQ(setup.sender_region.container->allocated_frames, 15u);
  EXPECT_EQ(setup.receiver_region.container->allocated_frames, receiver_before + 1);
  EXPECT_EQ(setup.receiver_region.container->free_q().count(), receiver_before + 1);
  // Migration moves frames within the specific partition.
  EXPECT_EQ(setup.engine.manager().total_specific(), specific_before);
  EXPECT_EQ(setup.engine.manager().counters().Get("manager.migrations"), 1);
  ExpectConservation(setup.kernel);
}

TEST(MigrateTest, RejectedWhenTargetDoesNotAccept) {
  MigrationSetup setup(/*receiver_accepts=*/false);
  EXPECT_TRUE(setup.kernel.Touch(setup.sender, setup.sender_region.addr, false));
  EXPECT_EQ(setup.sender_region.container->allocated_frames, 16u);  // frame kept
  EXPECT_EQ(setup.engine.manager().counters().Get("manager.migrations_rejected"), 1);
  EXPECT_FALSE(setup.sender->terminated());
  ExpectConservation(setup.kernel);
}

TEST(MigrateTest, RejectedForUnknownTargetId) {
  MigrationSetup setup(/*receiver_accepts=*/true);
  setup.sender_region.container->operands().WriteInt(ops::kUserBase, 424242);
  EXPECT_TRUE(setup.kernel.Touch(setup.sender, setup.sender_region.addr, false));
  EXPECT_EQ(setup.engine.manager().counters().Get("manager.migrations_rejected"), 1);
  EXPECT_EQ(setup.sender_region.container->allocated_frames, 16u);
}

TEST(MigrateTest, SelfMigrationRejected) {
  MigrationSetup setup(/*receiver_accepts=*/true);
  setup.sender_region.container->operands().WriteInt(
      ops::kUserBase, static_cast<int64_t>(setup.sender_region.container->id()));
  EXPECT_TRUE(setup.kernel.Touch(setup.sender, setup.sender_region.addr, false));
  EXPECT_EQ(setup.engine.manager().counters().Get("manager.migrations_rejected"), 1);
}

TEST(MigrateTest, PseudoCodeMigrateBuiltin) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* receiver_task = kernel.CreateTask("receiver");
  HipecOptions receiver_options;
  receiver_options.min_frames = 8;
  receiver_options.accepts_migration = true;
  HipecRegion receiver = engine.VmAllocateHipec(receiver_task, 16 * kPageSize,
                                                policies::FifoSecondChancePolicy(),
                                                receiver_options);
  ASSERT_TRUE(receiver.ok) << receiver.error;

  lang::CompiledPolicy compiled = lang::CompilePolicy(R"(
    Event PageFault() {
      page = de_queue_head(_free_queue)
      spare = de_queue_head(_free_queue)
      if (!migrate(spare, partner))
        en_queue_tail(_free_queue, spare)
      return(page)
    }
    Event ReclaimFrame() { return }
  )");
  mach::Task* sender_task = kernel.CreateTask("sender");
  HipecOptions options = compiled.options;
  options.min_frames = 16;
  HipecRegion sender = engine.VmAllocateHipec(sender_task, 16 * kPageSize, compiled.program,
                                              options);
  ASSERT_TRUE(sender.ok) << sender.error;
  sender.container->operands().WriteInt(compiled.symbols.at("partner"),
                                        static_cast<int64_t>(receiver.container->id()));

  EXPECT_TRUE(kernel.Touch(sender_task, sender.addr, false));
  EXPECT_EQ(engine.manager().counters().Get("manager.migrations"), 1);
  EXPECT_EQ(receiver.container->allocated_frames, 9u);
  ExpectConservation(kernel);
}

// ---------------------------------------------------------------- Unlink

TEST(UnlinkTest, MovesPageBetweenQueuesViaPseudoCode) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  lang::CompiledPolicy compiled = lang::CompilePolicy(R"(
    queue shelf
    Event PageFault() {
      page = de_queue_head(_free_queue)
      en_queue_tail(_active_queue, page)
      unlink(page)
      en_queue_tail(shelf, page)
      page = de_queue_head(shelf)
      return(page)
    }
    Event ReclaimFrame() { return }
  )");
  HipecOptions options = compiled.options;
  options.min_frames = 8;
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, compiled.program, options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.Touch(task, region.addr, false));
  EXPECT_FALSE(task->terminated()) << task->termination_reason();
  EXPECT_EQ(region.container->active_q().count(), 1u);  // engine re-enqueued the installed page
  ExpectConservation(kernel);
}

TEST(UnlinkTest, UnlinkOfUnqueuedPageIsPolicyError) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  EventBuilder b;
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.Unlink(ops::kPage);  // already off-queue: error
  b.Return(ops::kPage);
  HipecOptions options;
  options.min_frames = 8;
  HipecRegion region =
      engine.VmAllocateHipec(task, 16 * kPageSize, WithReclaim(b.Build()), options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_FALSE(kernel.Touch(task, region.addr, false));
  EXPECT_TRUE(task->terminated());
  EXPECT_NE(task->termination_reason().find("not on a queue"), std::string::npos);
  ExpectConservation(kernel);
}

// ---------------------------------------------------------------- strict accounting

PolicyProgram LeakyPolicy() {
  // Dequeues two frames into the same page variable: the first becomes unreachable.
  EventBuilder b;
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.DeQueueHead(ops::kPage, ops::kFreeQueue);
  b.Return(ops::kPage);
  return WithReclaim(b.Build());
}

TEST(StrictAccountingTest, LeakDetectedAndApplicationTerminated) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("leaky");
  HipecOptions options;
  options.min_frames = 8;
  options.strict_accounting = true;
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, LeakyPolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_FALSE(kernel.Touch(task, region.addr, false));
  EXPECT_TRUE(task->terminated());
  EXPECT_NE(task->termination_reason().find("leaked a frame"), std::string::npos);
  EXPECT_EQ(engine.counters().Get("engine.leaks_detected"), 1);
  // The leaked frame was recovered by the teardown sweep.
  EXPECT_GT(engine.manager().counters().Get("manager.leaked_frames_recovered"), 0);
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(StrictAccountingTest, WithoutStrictModeLeakRecoveredAtTeardown) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("leaky");
  HipecOptions options;
  options.min_frames = 8;
  HipecRegion region = engine.VmAllocateHipec(task, 16 * kPageSize, LeakyPolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  // Leaks one frame per fault but keeps running.
  EXPECT_TRUE(kernel.Touch(task, region.addr, false));
  EXPECT_TRUE(kernel.Touch(task, region.addr + kPageSize, false));
  EXPECT_FALSE(task->terminated());
  kernel.TerminateTask(task, "done");
  EXPECT_EQ(engine.manager().counters().Get("manager.leaked_frames_recovered"), 2);
  EXPECT_EQ(engine.manager().total_specific(), 0u);
  ExpectConservation(kernel);
}

TEST(StrictAccountingTest, WellBehavedPolicyPasses) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 32;
  options.free_target = 4;
  options.inactive_target = 8;
  options.strict_accounting = true;
  HipecRegion region = engine.VmAllocateHipec(task, 64 * kPageSize,
                                              policies::FifoSecondChancePolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  EXPECT_TRUE(kernel.TouchRange(task, region.addr, 64 * kPageSize, true));
  EXPECT_FALSE(task->terminated()) << task->termination_reason();
  EXPECT_EQ(engine.counters().Get("engine.leaks_detected"), 0);
}

// ---------------------------------------------------------------- adaptive burst

TEST(AdaptiveBurstTest, RaisesUnderSpecificPressure) {
  mach::Kernel kernel(SmallParams());  // 896 free after boot
  FrameManagerConfig config;
  config.partition_burst_fraction = 0.5;  // 448
  config.adaptive_burst = true;
  HipecEngine engine(&kernel, config);
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 300;
  HipecRegion region = engine.VmAllocateHipec(task, 700 * kPageSize,
                                              policies::FifoSecondChancePolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;

  size_t initial_burst = engine.manager().partition_burst();
  // Ask for more than the watermark permits; rejections drive the watermark up until the
  // request fits. (Adjustments are rate-limited in virtual time, hence the Advance.)
  int attempts = 0;
  while (!engine.manager().RequestFrames(region.container, 250, &region.container->free_q())) {
    kernel.clock().Advance(300 * sim::kMillisecond);
    if (++attempts > 20) {
      break;
    }
  }
  EXPECT_LE(attempts, 20);
  EXPECT_GT(engine.manager().partition_burst(), initial_burst);
  EXPECT_EQ(region.container->allocated_frames, 550u);
  EXPECT_GT(engine.manager().counters().Get("manager.burst_raised"), 0);
}

TEST(AdaptiveBurstTest, LowersUnderNonSpecificPressure) {
  mach::Kernel kernel(SmallParams());
  FrameManagerConfig config;
  config.partition_burst_fraction = 0.7;  // 627
  config.adaptive_burst = true;
  HipecEngine engine(&kernel, config);
  mach::Task* app = kernel.CreateTask("app");
  HipecOptions options;
  options.min_frames = 100;
  HipecRegion region = engine.VmAllocateHipec(app, 700 * kPageSize,
                                              policies::FifoSecondChancePolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  ASSERT_TRUE(engine.manager().RequestFrames(region.container, 400, &region.container->free_q()));
  size_t burst_before = engine.manager().partition_burst();

  // A non-specific hog thrashes the remaining global pool; the daemon's low-memory
  // notifications drive the watermark down (rate-limited, so sweep a few times).
  mach::Task* hog = kernel.CreateTask("hog");
  uint64_t hog_addr = kernel.VmAllocate(hog, 600 * kPageSize);
  for (int round = 0; round < 4; ++round) {
    EXPECT_TRUE(kernel.TouchRange(hog, hog_addr, 600 * kPageSize, true));
    kernel.clock().Advance(300 * sim::kMillisecond);
  }
  EXPECT_LT(engine.manager().partition_burst(), burst_before);
  EXPECT_GT(engine.manager().counters().Get("manager.burst_lowered"), 0);
  EXPECT_LE(engine.manager().total_specific(), engine.manager().partition_burst());
  ExpectConservation(kernel);
}

// ---------------------------------------------------------------- flash backing

TEST(FlashBackingTest, FaultsCheaperButPolicyGapPersists) {
  constexpr int64_t kMb = 1024 * 1024;
  workloads::JoinConfig config;
  // outer = 1.5x memory: the MRU fault reduction is ~3x (see workloads_test.cc for sizing).
  config.outer_bytes = 6 * kMb;
  config.memory_bytes = 4 * kMb;

  config.mode = workloads::JoinMode::kMachDefault;
  workloads::JoinResult disk_lru = workloads::RunJoin(config);
  config.flash_backing = true;
  workloads::JoinResult flash_lru = workloads::RunJoin(config);
  config.mode = workloads::JoinMode::kHipecMru;
  workloads::JoinResult flash_mru = workloads::RunJoin(config);

  // Flash shrinks the per-fault cost by an order of magnitude...
  EXPECT_LT(flash_lru.elapsed, disk_lru.elapsed / 5);
  // ...but the fault-count gap between the policies is device-independent.
  EXPECT_EQ(flash_lru.page_faults, disk_lru.page_faults);
  EXPECT_LT(flash_mru.page_faults, flash_lru.page_faults / 2);
  EXPECT_LT(flash_mru.elapsed, flash_lru.elapsed);
}

TEST(FlashBackingTest, DeterministicServiceTimes) {
  sim::VirtualClock clock;
  disk::DiskModel flash(&clock, disk::DiskParams::Flash1994(), 1);
  sim::Nanos read1 = flash.ServiceTimeNs(100);
  sim::Nanos read2 = flash.ServiceTimeNs(999'999);
  EXPECT_EQ(read1, read2);  // no seek/rotation variance
  EXPECT_GT(flash.ServiceTimeNs(5, /*is_write=*/true), read1);
}

// ---------------------------------------------------------------- translator arity errors

TEST(ExtensionLangTest, MigrateAndUnlinkArityErrors) {
  const char* reclaim = "Event ReclaimFrame() { return }";
  EXPECT_THROW(lang::CompilePolicy(std::string("Event PageFault() { migrate(page)\nreturn }") +
                                   reclaim),
               lang::CompileError);
  EXPECT_THROW(
      lang::CompilePolicy(std::string("Event PageFault() { unlink(page, page)\nreturn }") +
                          reclaim),
      lang::CompileError);
}

}  // namespace
}  // namespace hipec::core
