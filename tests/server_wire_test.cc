// Wire-protocol tests for hipecd (src/server/wire.h): round-trips for every control-plane
// message type, a truncation sweep over every strict payload prefix, hand-crafted hostile
// frames (oversized strings, program caps, trailing bytes), and a seeded bit-flip fuzz —
// the decoders' contract is a DecodeStatus for every input, never UB or a crash. Plus the
// shared-memory ring's SPSC unit behaviour (capacity, wrap-around, attach validation).
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/ring.h"
#include "server/wire.h"

namespace hipec::server {
namespace {

// Decodes one full frame (header + payload) the way the daemon's control loop does.
DecodeStatus DecodeWhole(const std::string& frame, DecodedFrame* out) {
  const uint8_t* bytes = reinterpret_cast<const uint8_t*>(frame.data());
  FrameHeader header;
  DecodeStatus status = DecodeFrameHeader(bytes, frame.size(), &header);
  if (status != DecodeStatus::kOk) {
    return status;
  }
  if (frame.size() < kFrameHeaderBytes + header.length) {
    return DecodeStatus::kTruncated;
  }
  return DecodePayload(header, bytes + kFrameHeaderBytes, header.length, out);
}

TEST(WireRoundTrip, Hello) {
  HelloMsg msg;
  msg.version = kWireVersion;
  msg.client_pid = 4242;
  msg.qos_weight = 7;
  msg.client_name = "db-front/3";
  std::string frame;
  EncodeHello(msg, &frame);
  DecodedFrame out;
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kHello);
  EXPECT_EQ(out.hello.version, msg.version);
  EXPECT_EQ(out.hello.client_pid, msg.client_pid);
  EXPECT_EQ(out.hello.qos_weight, msg.qos_weight);
  EXPECT_EQ(out.hello.client_name, msg.client_name);
}

TEST(WireRoundTrip, HelloAck) {
  HelloAckMsg msg;
  msg.version = 1;
  msg.server_pid = 99;
  msg.max_clients = 64;
  std::string frame;
  EncodeHelloAck(msg, &frame);
  DecodedFrame out;
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kHelloAck);
  EXPECT_EQ(out.hello_ack.server_pid, msg.server_pid);
  EXPECT_EQ(out.hello_ack.max_clients, msg.max_clients);
}

TEST(WireRoundTrip, InstallCarriesProgramVerbatim) {
  InstallMsg msg;
  msg.region_pages = 512;
  msg.min_frames = 32;
  msg.qos_weight = 4;
  msg.timeout_ns = 123456789;
  msg.free_target = 4;
  msg.inactive_target = 8;
  msg.reserved_target = 2;
  msg.request_size = 16;
  msg.user_queue_count = 2;
  msg.program.events = {{0xC0DE0001u, 2, 3}, {}, {0xFFFFFFFFu}};
  std::string frame;
  EncodeInstall(msg, &frame);
  DecodedFrame out;
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kInstall);
  EXPECT_EQ(out.install.region_pages, msg.region_pages);
  EXPECT_EQ(out.install.min_frames, msg.min_frames);
  EXPECT_EQ(out.install.qos_weight, msg.qos_weight);
  EXPECT_EQ(out.install.timeout_ns, msg.timeout_ns);
  EXPECT_EQ(out.install.free_target, msg.free_target);
  EXPECT_EQ(out.install.inactive_target, msg.inactive_target);
  EXPECT_EQ(out.install.reserved_target, msg.reserved_target);
  EXPECT_EQ(out.install.request_size, msg.request_size);
  EXPECT_EQ(out.install.user_queue_count, msg.user_queue_count);
  EXPECT_EQ(out.install.program.events, msg.program.events);
}

TEST(WireRoundTrip, InstallAck) {
  InstallAckMsg msg;
  msg.ok = 1;
  msg.error = "";
  msg.container_id = 17;
  msg.region_addr = 0x7000'0000'0000ull;
  msg.ring_slots = 1024;
  std::string frame;
  EncodeInstallAck(msg, &frame);
  DecodedFrame out;
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kInstallAck);
  EXPECT_EQ(out.install_ack.ok, msg.ok);
  EXPECT_EQ(out.install_ack.container_id, msg.container_id);
  EXPECT_EQ(out.install_ack.region_addr, msg.region_addr);
  EXPECT_EQ(out.install_ack.ring_slots, msg.ring_slots);
}

TEST(WireRoundTrip, TeardownAndAck) {
  TeardownMsg msg;
  msg.container_id = 5;
  std::string frame;
  EncodeTeardown(msg, &frame);
  DecodedFrame out;
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kTeardown);
  EXPECT_EQ(out.teardown.container_id, 5u);

  TeardownAckMsg ack;
  ack.ok = 0;
  ack.error = "no such container";
  frame.clear();
  EncodeTeardownAck(ack, &frame);
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  ASSERT_EQ(out.type, MsgType::kTeardownAck);
  EXPECT_EQ(out.teardown_ack.ok, 0);
  EXPECT_EQ(out.teardown_ack.error, "no such container");
}

TEST(WireRoundTrip, PingPongGoodbyeError) {
  std::string frame;
  DecodedFrame out;

  PingMsg ping;
  ping.seq = 77;
  EncodePing(ping, &frame);
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kPing);
  EXPECT_EQ(out.ping.seq, 77u);

  frame.clear();
  PongMsg pong;
  pong.seq = 78;
  EncodePong(pong, &frame);
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kPong);
  EXPECT_EQ(out.pong.seq, 78u);

  frame.clear();
  EncodeGoodbye(GoodbyeMsg{}, &frame);
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kGoodbye);

  frame.clear();
  ErrorMsg err;
  err.code = 503;
  err.message = "server full";
  EncodeError(err, &frame);
  ASSERT_EQ(DecodeWhole(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MsgType::kError);
  EXPECT_EQ(out.error.code, 503u);
  EXPECT_EQ(out.error.message, "server full");
}

// --- hostile headers -------------------------------------------------------------------------

TEST(WireHeader, RejectsBadMagic) {
  std::string frame;
  EncodePing(PingMsg{}, &frame);
  frame[0] = '\0';
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                              &header),
            DecodeStatus::kBadMagic);
}

TEST(WireHeader, RejectsUnknownType) {
  for (uint16_t type : {uint16_t{0}, uint16_t{11}, uint16_t{0xffff}}) {
    std::string frame;
    EncodePing(PingMsg{}, &frame);
    frame[8] = static_cast<char>(type & 0xff);
    frame[9] = static_cast<char>(type >> 8);
    FrameHeader header;
    EXPECT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                                &header),
              DecodeStatus::kBadType)
        << "type " << type;
  }
}

TEST(WireHeader, RejectsHostileLength) {
  std::string frame;
  EncodePing(PingMsg{}, &frame);
  const uint32_t hostile = kMaxFramePayload + 1;
  std::memcpy(&frame[4], &hostile, sizeof(hostile));  // little-endian host assumption is fine:
  FrameHeader header;                                 // the suite only runs on x86_64/aarch64
  EXPECT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                              &header),
            DecodeStatus::kBadLength);
}

TEST(WireHeader, TruncatedHeaderIsTruncated) {
  std::string frame;
  EncodePing(PingMsg{}, &frame);
  for (size_t len = 0; len < kFrameHeaderBytes; ++len) {
    FrameHeader header;
    EXPECT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), len, &header),
              DecodeStatus::kTruncated)
        << "len " << len;
  }
}

// --- truncation sweep ------------------------------------------------------------------------

// Every strict prefix of every real payload must decode to a non-kOk status (truncated or
// malformed), never crash, and never claim success.
TEST(WireFuzz, EveryStrictPrefixRejected) {
  std::vector<std::string> frames;
  {
    std::string f;
    HelloMsg hello;
    hello.client_name = "prefix-sweep";
    EncodeHello(hello, &f);
    frames.push_back(f);
    f.clear();
    EncodeHelloAck(HelloAckMsg{}, &f);
    frames.push_back(f);
    f.clear();
    InstallMsg install;
    install.program.events = {{0xC0DE0001u, 9, 9, 9}, {0xC0DE0002u}};
    EncodeInstall(install, &f);
    frames.push_back(f);
    f.clear();
    InstallAckMsg iack;
    iack.error = "denied";
    EncodeInstallAck(iack, &f);
    frames.push_back(f);
    f.clear();
    EncodeTeardown(TeardownMsg{}, &f);
    frames.push_back(f);
    f.clear();
    TeardownAckMsg tack;
    tack.error = "x";
    EncodeTeardownAck(tack, &f);
    frames.push_back(f);
    f.clear();
    EncodePing(PingMsg{}, &f);
    frames.push_back(f);
    f.clear();
    EncodePong(PongMsg{}, &f);
    frames.push_back(f);
    f.clear();
    ErrorMsg err;
    err.message = "oops";
    EncodeError(err, &f);
    frames.push_back(f);
  }
  for (const std::string& frame : frames) {
    FrameHeader header;
    ASSERT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                                &header),
              DecodeStatus::kOk);
    const uint8_t* payload = reinterpret_cast<const uint8_t*>(frame.data()) + kFrameHeaderBytes;
    for (uint32_t len = 0; len < header.length; ++len) {
      // The attacker controls the length prefix, so the decoder sees a shorter payload whose
      // header agrees with it — the in-sync malformed-frame case the daemon must reject.
      FrameHeader lying = header;
      lying.length = len;
      DecodedFrame out;
      DecodeStatus status = DecodePayload(lying, payload, len, &out);
      EXPECT_NE(status, DecodeStatus::kOk)
          << "type " << header.type << " prefix " << len << " of " << header.length;
    }
  }
}

TEST(WireFuzz, TrailingBytesRejected) {
  std::string frame;
  EncodePing(PingMsg{}, &frame);
  FrameHeader header;
  ASSERT_EQ(DecodeFrameHeader(reinterpret_cast<const uint8_t*>(frame.data()), frame.size(),
                              &header),
            DecodeStatus::kOk);
  std::string padded = frame.substr(kFrameHeaderBytes) + '\0';
  header.length += 1;
  DecodedFrame out;
  EXPECT_EQ(DecodePayload(header, reinterpret_cast<const uint8_t*>(padded.data()),
                          padded.size(), &out),
            DecodeStatus::kTrailingBytes);
}

// A string length prefix beyond kMaxWireString must be kMalformed (a cap, not an attempt to
// read that many bytes).
TEST(WireFuzz, OversizedStringIsMalformed) {
  std::string payload;
  auto put_u32 = [&payload](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  };
  put_u32(kWireVersion);
  put_u32(0);  // client_pid lo
  put_u32(0);  // client_pid hi
  put_u32(1);  // qos_weight
  put_u32(kMaxWireString + 1);
  FrameHeader header;
  header.length = static_cast<uint32_t>(payload.size());
  header.type = static_cast<uint16_t>(MsgType::kHello);
  DecodedFrame out;
  EXPECT_EQ(DecodePayload(header, reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size(), &out),
            DecodeStatus::kMalformed);
}

// The nine fixed InstallMsg fields before the program: u64 + u32 + u32 + five i64 + u32.
constexpr size_t kInstallFixedBytes = 8 + 4 + 4 + 5 * 8 + 4;

TEST(WireFuzz, ProgramCapsAreMalformed) {
  // Event count over the cap.
  {
    std::string payload(kInstallFixedBytes, '\0');
    auto put_u32 = [&payload](uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    };
    put_u32(kMaxProgramEvents + 1);
    FrameHeader header;
    header.length = static_cast<uint32_t>(payload.size());
    header.type = static_cast<uint16_t>(MsgType::kInstall);
    DecodedFrame out;
    EXPECT_EQ(DecodePayload(header, reinterpret_cast<const uint8_t*>(payload.data()),
                            payload.size(), &out),
              DecodeStatus::kMalformed);
  }
  // Word count over the cap inside event 0.
  {
    std::string payload(kInstallFixedBytes, '\0');
    auto put_u32 = [&payload](uint32_t v) {
      for (int i = 0; i < 4; ++i) {
        payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    };
    put_u32(1);                   // one event
    put_u32(kMaxEventWords + 1);  // with too many words
    FrameHeader header;
    header.length = static_cast<uint32_t>(payload.size());
    header.type = static_cast<uint16_t>(MsgType::kInstall);
    DecodedFrame out;
    EXPECT_EQ(DecodePayload(header, reinterpret_cast<const uint8_t*>(payload.data()),
                            payload.size(), &out),
              DecodeStatus::kMalformed);
  }
}

// Seeded bit-flip fuzz: mutate real payloads and feed random garbage to every type. Any
// DecodeStatus is acceptable; the assertions are "no crash" (ASan/UBSan make that real) and
// that kOk never comes with an impossible structure.
TEST(WireFuzz, BitFlipAndGarbageNeverCrash) {
  std::mt19937 rng(0x48504331);  // fixed seed: failures reproduce
  std::vector<std::pair<uint16_t, std::string>> corpus;
  {
    std::string f;
    HelloMsg hello;
    hello.client_name = "fuzz";
    EncodeHello(hello, &f);
    corpus.emplace_back(static_cast<uint16_t>(MsgType::kHello), f.substr(kFrameHeaderBytes));
    f.clear();
    InstallMsg install;
    install.program.events = {{1, 2, 3, 4, 5}};
    EncodeInstall(install, &f);
    corpus.emplace_back(static_cast<uint16_t>(MsgType::kInstall), f.substr(kFrameHeaderBytes));
    f.clear();
    InstallAckMsg iack;
    iack.error = "e";
    EncodeInstallAck(iack, &f);
    corpus.emplace_back(static_cast<uint16_t>(MsgType::kInstallAck),
                        f.substr(kFrameHeaderBytes));
  }
  for (int iter = 0; iter < 2000; ++iter) {
    auto [type, payload] = corpus[rng() % corpus.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips && !payload.empty(); ++i) {
      payload[rng() % payload.size()] ^= static_cast<char>(1u << (rng() % 8));
    }
    FrameHeader header;
    header.type = type;
    header.length = static_cast<uint32_t>(payload.size());
    DecodedFrame out;
    DecodeStatus status = DecodePayload(
        header, reinterpret_cast<const uint8_t*>(payload.data()), payload.size(), &out);
    if (status == DecodeStatus::kOk && type == static_cast<uint16_t>(MsgType::kInstall)) {
      EXPECT_LE(out.install.program.events.size(), kMaxProgramEvents);
    }
  }
  // Pure garbage payloads of random lengths against every message type.
  for (uint16_t type = static_cast<uint16_t>(MsgType::kHello);
       type <= static_cast<uint16_t>(MsgType::kError); ++type) {
    for (int iter = 0; iter < 200; ++iter) {
      std::string payload(rng() % 128, '\0');
      for (char& c : payload) {
        c = static_cast<char>(rng());
      }
      FrameHeader header;
      header.type = type;
      header.length = static_cast<uint32_t>(payload.size());
      DecodedFrame out;
      (void)DecodePayload(header, reinterpret_cast<const uint8_t*>(payload.data()),
                          payload.size(), &out);
    }
  }
}

// --- shared-memory ring ----------------------------------------------------------------------

TEST(Ring, CapacityAndWrapAround) {
  RingPair ring;
  std::string error;
  ASSERT_TRUE(ring.Create(8, &error)) << error;
  // Fill to capacity, then one more must fail.
  for (uint64_t i = 0; i < 8; ++i) {
    Request r;
    r.seq = i;
    r.op = kOpNop;
    ASSERT_TRUE(ring.TryPushRequest(r)) << i;
  }
  Request extra;
  EXPECT_FALSE(ring.TryPushRequest(extra));
  EXPECT_EQ(ring.PendingRequests(), 8u);
  Request popped[8];
  EXPECT_EQ(ring.PopRequests(popped, 3), 3u);
  EXPECT_EQ(popped[0].seq, 0u);
  EXPECT_EQ(popped[2].seq, 2u);
  EXPECT_EQ(ring.PopRequests(popped, 8), 5u);
  // Space freed; wrap the free-running indices far past the slot count.
  for (uint64_t i = 0; i < 100; ++i) {
    Request r;
    r.seq = 1000 + i;
    ASSERT_TRUE(ring.TryPushRequest(r)) << i;
    ASSERT_EQ(ring.PopRequests(popped, 8), 1u);
    EXPECT_EQ(popped[0].seq, 1000 + i);
  }
  // Completions are an independent direction.
  Completion c;
  c.seq = 42;
  c.status = kStatusOk;
  ASSERT_TRUE(ring.TryPushCompletion(c));
  EXPECT_EQ(ring.PendingCompletions(), 1u);
  Completion comps[8];
  ASSERT_EQ(ring.PopCompletions(comps, 8), 1u);
  EXPECT_EQ(comps[0].seq, 42u);
}

TEST(Ring, AttachSharesTheSameMemory) {
  RingPair server_side;
  std::string error;
  ASSERT_TRUE(server_side.Create(16, &error)) << error;
  int fd = dup(server_side.fd());
  ASSERT_GE(fd, 0);
  RingPair client_side;
  ASSERT_TRUE(client_side.Attach(fd, &error)) << error;
  EXPECT_EQ(client_side.slots(), 16u);
  Request r;
  r.seq = 7;
  r.op = kOpTouch;
  r.page = 3;
  ASSERT_TRUE(client_side.TryPushRequest(r));
  Request popped[4];
  ASSERT_EQ(server_side.PopRequests(popped, 4), 1u);
  EXPECT_EQ(popped[0].seq, 7u);
  EXPECT_EQ(popped[0].page, 3u);
}

// The segment fd is handed writable to an untrusted client; the seals applied at creation
// are what stop that client from ftruncating the segment and SIGBUSing the daemon.
TEST(Ring, SegmentIsSealedAgainstResize) {
  RingPair ring;
  std::string error;
  ASSERT_TRUE(ring.Create(16, &error)) << error;
  int seals = fcntl(ring.fd(), F_GET_SEALS);
  ASSERT_GE(seals, 0) << std::strerror(errno);
  EXPECT_TRUE(seals & F_SEAL_SHRINK);
  EXPECT_TRUE(seals & F_SEAL_GROW);
  EXPECT_TRUE(seals & F_SEAL_SEAL);  // and the seal set itself is frozen
  // What the hostile client would do — exactly what must fail.
  errno = 0;
  EXPECT_EQ(ftruncate(ring.fd(), 0), -1);
  EXPECT_EQ(errno, EPERM);
  RingLayout layout = RingLayout::For(16);
  EXPECT_EQ(ftruncate(ring.fd(), static_cast<off_t>(layout.total_bytes * 2)), -1);
  // The mapped ring still works: sealing must not block MAP_SHARED writes.
  Request r;
  r.seq = 5;
  ASSERT_TRUE(ring.TryPushRequest(r));
  Request popped[2];
  EXPECT_EQ(ring.PopRequests(popped, 2), 1u);
  EXPECT_EQ(popped[0].seq, 5u);
}

TEST(Ring, CreateAndAttachRejectGarbage) {
  std::string error;
  // Non-power-of-two, zero, and oversized slot counts are rejected at creation.
  RingPair odd;
  EXPECT_FALSE(odd.Create(12, &error));
  EXPECT_FALSE(odd.Create(0, &error));
  EXPECT_FALSE(odd.Create(1u << 20, &error));
  // Invalid fd.
  RingPair bad;
  EXPECT_FALSE(bad.Attach(-1, &error));
  // A segment whose header is garbage (wrong magic) must be rejected, not trusted.
  RingPair server_side;
  ASSERT_TRUE(server_side.Create(16, &error)) << error;
  server_side.header()->magic = 0xDEADBEEF;
  int fd = dup(server_side.fd());
  ASSERT_GE(fd, 0);
  RingPair client_side;
  EXPECT_FALSE(client_side.Attach(fd, &error));
  server_side.header()->magic = kRingMagic;  // restore for a clean Close
}

}  // namespace
}  // namespace hipec::server
