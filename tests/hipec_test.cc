// Unit tests for the HiPEC command codec, operand array, program container and static
// validator (the security checker's syntax/consistency pass).
#include <gtest/gtest.h>

#include "hipec/builder.h"
#include "hipec/instruction.h"
#include "hipec/operand.h"
#include "hipec/program.h"
#include "hipec/validator.h"
#include "mach/page_queue.h"
#include "sim/random.h"

namespace hipec::core {
namespace {

namespace ops = std_ops;

// ---------------------------------------------------------------- Instruction codec

TEST(InstructionTest, TableOneBinaryValues) {
  // The binary values of Table 1.
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kReturn), 0x00);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kArith), 0x01);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kComp), 0x02);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kLogic), 0x03);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kEmptyQ), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kInQ), 0x05);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kJump), 0x06);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kDeQueue), 0x07);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kEnQueue), 0x08);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kRequest), 0x09);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kRelease), 0x0A);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kFlush), 0x0B);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kSet), 0x0C);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kRef), 0x0D);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kMod), 0x0E);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kFind), 0x0F);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kActivate), 0x10);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kFifo), 0x11);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kLru), 0x12);
  EXPECT_EQ(static_cast<uint8_t>(Opcode::kMru), 0x13);
}

TEST(InstructionTest, EncodeLayout) {
  // 8-bit operator in the top byte, then op1, op2, flag — one 32-bit long word (Figure 3).
  Instruction inst{Opcode::kComp, 0x02, 0x0C, 0x01};
  EXPECT_EQ(inst.Encode(), 0x02020C01u);
}

TEST(InstructionTest, RoundTripSampled) {
  sim::Rng rng(42);
  for (int i = 0; i < 100'000; ++i) {
    auto word = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Instruction::Decode(word).Encode(), word);
  }
}

TEST(InstructionTest, NamesRoundTrip) {
  for (int i = 0; i < kOpcodeCount; ++i) {
    auto op = static_cast<Opcode>(i);
    auto name = OpcodeName(op);
    ASSERT_TRUE(name.has_value());
    auto back = OpcodeFromName(*name);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(OpcodeName(static_cast<Opcode>(0x77)).has_value());
  EXPECT_FALSE(OpcodeFromName("Bogus").has_value());
}

TEST(InstructionTest, ConditionSettingCommands) {
  EXPECT_TRUE(SetsCondition(Opcode::kComp));
  EXPECT_TRUE(SetsCondition(Opcode::kEmptyQ));
  EXPECT_TRUE(SetsCondition(Opcode::kRef));
  EXPECT_TRUE(SetsCondition(Opcode::kMod));
  EXPECT_TRUE(SetsCondition(Opcode::kRequest));
  EXPECT_FALSE(SetsCondition(Opcode::kJump));
  EXPECT_FALSE(SetsCondition(Opcode::kDeQueue));
  EXPECT_FALSE(SetsCondition(Opcode::kEnQueue));
  EXPECT_FALSE(SetsCondition(Opcode::kActivate));
  EXPECT_FALSE(SetsCondition(Opcode::kReturn));
}

TEST(InstructionTest, ToStringReadable) {
  EXPECT_EQ((Instruction{Opcode::kComp, 0x02, 0x0C, 1}).ToString(), "Comp 02,0C,1");
  EXPECT_EQ((Instruction{Opcode::kJump, 0, 0, 5}).ToString(), "Jump -> 5");
  EXPECT_EQ((Instruction{Opcode::kReturn, 0x0B, 0, 0}).ToString(), "Return 0B");
}

// ---------------------------------------------------------------- OperandArray

TEST(OperandArrayTest, IntReadWrite) {
  OperandArray a;
  a.DefineInt(3, 42);
  EXPECT_EQ(a.ReadInt(3), 42);
  a.WriteInt(3, -7);
  EXPECT_EQ(a.ReadInt(3), -7);
}

TEST(OperandArrayTest, ReadOnlyIntRejectsWrites) {
  OperandArray a;
  a.DefineInt(3, 42, /*read_only=*/true);
  EXPECT_THROW(a.WriteInt(3, 1), PolicyError);
}

TEST(OperandArrayTest, QueueCountIsLiveView) {
  OperandArray a;
  mach::PageQueue q("q");
  a.DefineQueueCount(5, &q);
  EXPECT_EQ(a.ReadInt(5), 0);
  mach::VmPage page;
  q.EnqueueTail(&page, 0);
  EXPECT_EQ(a.ReadInt(5), 1);
  EXPECT_THROW(a.WriteInt(5, 3), PolicyError);
}

TEST(OperandArrayTest, TypeConfusionThrows) {
  OperandArray a;
  a.DefineInt(1, 0);
  a.DefinePage(2);
  mach::PageQueue q("q");
  a.DefineQueue(3, &q);
  EXPECT_THROW(a.ReadPage(1), PolicyError);
  EXPECT_THROW(a.ReadQueue(2), PolicyError);
  EXPECT_THROW(a.ReadInt(2), PolicyError);
  EXPECT_THROW(a.ReadInt(0), PolicyError);  // unset
}

TEST(OperandArrayTest, EmptyPageVariableThrowsOnRead) {
  OperandArray a;
  a.DefinePage(2);
  EXPECT_EQ(a.ReadPageOrNull(2), nullptr);
  EXPECT_THROW(a.ReadPage(2), PolicyError);
  mach::VmPage page;
  a.WritePage(2, &page);
  EXPECT_EQ(a.ReadPage(2), &page);
}

// ---------------------------------------------------------------- Program + builder

TEST(ProgramTest, MagicPrepended) {
  PolicyProgram p;
  p.SetEvent(0, {{Opcode::kReturn, 0, 0, 0}});
  EXPECT_EQ(p.event(0).words[0], kHipecMagic);
  EXPECT_EQ(p.event(0).CommandCount(), 1u);
  EXPECT_TRUE(p.HasEvent(0));
  EXPECT_FALSE(p.HasEvent(1));
}

TEST(BuilderTest, LabelsResolveForwardAndBackward) {
  EventBuilder b;
  auto start = b.NewLabel();
  auto end = b.NewLabel();
  b.Bind(start);                                  // CC 1
  b.Comp(ops::kScratch0, ops::kScratch1, CompOp::kEq);  // CC 1
  b.JumpIfFalse(end);                             // CC 2
  b.JumpIfFalse(start);                           // CC 3 (backward)
  b.Bind(end);
  b.Return(0);                                    // CC 4
  auto commands = b.Build();
  ASSERT_EQ(commands.size(), 4u);
  EXPECT_EQ(commands[1].op3, 4);  // forward to Return at CC 4
  EXPECT_EQ(commands[2].op3, 1);  // backward to CC 1
}

TEST(BuilderTest, UnboundLabelThrows) {
  EventBuilder b;
  b.JumpIfFalse(b.NewLabel());
  b.Return(0);
  EXPECT_THROW(b.Build(), sim::CheckFailure);
}

// ---------------------------------------------------------------- Validator

OperandArray StandardLayout() {
  // Mirrors HipecEngine::SetupOperands for validation tests.
  static mach::PageQueue free_q("f"), active_q("a"), inactive_q("i");
  OperandArray a;
  a.DefineInt(ops::kScratch0, 0);
  a.DefineQueue(ops::kFreeQueue, &free_q);
  a.DefineQueueCount(ops::kFreeCount, &free_q);
  a.DefineQueue(ops::kActiveQueue, &active_q);
  a.DefineQueueCount(ops::kActiveCount, &active_q);
  a.DefineQueue(ops::kInactiveQueue, &inactive_q);
  a.DefineQueueCount(ops::kInactiveCount, &inactive_q);
  a.DefineInt(ops::kFreeTarget, 0);
  a.DefineInt(ops::kInactiveTarget, 0);
  a.DefineInt(ops::kReservedTarget, 0);
  a.DefineInt(ops::kRequestSize, 16);
  a.DefinePage(ops::kPage);
  a.DefineInt(ops::kFaultAddr, 0);
  a.DefineInt(ops::kReclaimCount, 0);
  a.DefineInt(ops::kResult, 0);
  a.DefineInt(ops::kScratch1, 0);
  return a;
}

PolicyProgram MinimalValidProgram() {
  PolicyProgram p;
  EventBuilder fault;
  fault.DeQueueHead(ops::kPage, ops::kFreeQueue).Return(ops::kPage);
  p.SetEvent(kEventPageFault, fault.Build());
  EventBuilder reclaim;
  reclaim.Return(0);
  p.SetEvent(kEventReclaimFrame, reclaim.Build());
  return p;
}

TEST(ValidatorTest, AcceptsMinimalProgram) {
  OperandArray layout = StandardLayout();
  EXPECT_TRUE(ValidatePolicy(MinimalValidProgram(), layout).empty());
}

TEST(ValidatorTest, RequiresBothWellKnownEvents) {
  OperandArray layout = StandardLayout();
  PolicyProgram p;  // nothing defined
  auto errors = ValidatePolicy(p, layout);
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_NE(errors[0].message.find("PageFault"), std::string::npos);
  EXPECT_NE(errors[1].message.find("ReclaimFrame"), std::string::npos);
}

TEST(ValidatorTest, RejectsBadMagic) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<uint32_t> words = p.event(0).words;
  words[0] = 0xDEADBEEF;
  p.SetEventRaw(0, words);
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("magic"), std::string::npos);
}

TEST(ValidatorTest, RejectsInvalidOpcode) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<uint32_t> words = p.event(0).words;
  words[1] = 0xFF000000;  // opcode 0xFF
  p.SetEventRaw(0, words);
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("invalid operator code"), std::string::npos);
}

TEST(ValidatorTest, RejectsOperandTypeMismatch) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  EventBuilder bad;
  // DeQueue whose "queue" operand is an integer.
  bad.DeQueueHead(ops::kPage, ops::kFreeTarget).Return(ops::kPage);
  p.SetEvent(kEventPageFault, bad.Build());
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("not a queue"), std::string::npos);
}

TEST(ValidatorTest, RejectsWriteToReadOnlyCount) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  EventBuilder bad;
  bad.Arith(ops::kFreeCount, ops::kScratch0, ArithOp::kAdd).Return(0);
  p.SetEvent(kEventPageFault, bad.Build());
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("writable"), std::string::npos);
}

TEST(ValidatorTest, RejectsJumpOutsideStream) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  PolicyProgram q = p;
  std::vector<Instruction> commands = {{Opcode::kJump, 0, 0, 200},
                                       {Opcode::kReturn, 0, 0, 0}};
  q.SetEvent(kEventPageFault, commands);
  auto errors = ValidatePolicy(q, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("target outside"), std::string::npos);
}

TEST(ValidatorTest, RejectsJumpToMagicWord) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<Instruction> commands = {{Opcode::kJump, 0, 0, 0},
                                       {Opcode::kReturn, 0, 0, 0}};
  p.SetEvent(kEventPageFault, commands);
  EXPECT_FALSE(ValidatePolicy(p, layout).empty());
}

TEST(ValidatorTest, RejectsActivateOfMissingEvent) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<Instruction> commands = {{Opcode::kActivate, 9, 0, 0},
                                       {Opcode::kReturn, 0, 0, 0}};
  p.SetEvent(kEventPageFault, commands);
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("no such event"), std::string::npos);
}

TEST(ValidatorTest, RejectsStreamWithoutReturn) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<Instruction> commands = {{Opcode::kComp, ops::kScratch0, ops::kScratch1, 3}};
  p.SetEvent(kEventPageFault, commands);
  auto errors = ValidatePolicy(p, layout);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(FormatErrors(errors).find("no Return"), std::string::npos);
}

TEST(ValidatorTest, RejectsBadFlagRanges) {
  OperandArray layout = StandardLayout();
  PolicyProgram p = MinimalValidProgram();
  std::vector<Instruction> commands = {
      {Opcode::kComp, ops::kScratch0, ops::kScratch1, 9},  // bad comparison op
      {Opcode::kReturn, 0, 0, 0}};
  p.SetEvent(kEventPageFault, commands);
  EXPECT_FALSE(ValidatePolicy(p, layout).empty());

  commands[0] = {Opcode::kDeQueue, ops::kPage, ops::kFreeQueue, 3};  // bad queue end
  p.SetEvent(kEventPageFault, commands);
  EXPECT_FALSE(ValidatePolicy(p, layout).empty());
}

// Property: random garbage programs never pass validation silently with an out-of-range
// opcode, and validation never crashes.
TEST(ValidatorTest, FuzzRandomWordsNeverCrash) {
  OperandArray layout = StandardLayout();
  sim::Rng rng(7);
  for (int round = 0; round < 200; ++round) {
    PolicyProgram p;
    std::vector<uint32_t> words{kHipecMagic};
    size_t n = 1 + rng.Below(20);
    for (size_t i = 0; i < n; ++i) {
      words.push_back(static_cast<uint32_t>(rng.Next()));
    }
    p.SetEventRaw(kEventPageFault, words);
    p.SetEventRaw(kEventReclaimFrame, {kHipecMagic, Instruction{}.Encode()});
    auto errors = ValidatePolicy(p, layout);  // must not throw
    (void)errors;
  }
}

}  // namespace
}  // namespace hipec::core
