// Tests for the extended policy library: CLOCK and the 2Q-like scan-resistant policy.
#include <gtest/gtest.h>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/oracle.h"
#include "policies/policies.h"
#include "sim/random.h"
#include "workloads/access_patterns.h"

namespace hipec::policies {
namespace {

using core::HipecEngine;
using core::HipecOptions;
using core::HipecRegion;
using mach::kPageSize;

mach::KernelParams SmallParams() {
  mach::KernelParams params;
  params.total_frames = 1024;
  params.kernel_reserved_frames = 128;
  params.hipec_build = true;
  return params;
}

// Replays `trace` through the engine with `program`; returns fault count (or -1 if the task
// died).
int64_t RunTrace(const std::vector<uint64_t>& trace, size_t frames,
                 const core::PolicyProgram& program, HipecOptions options = {}) {
  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  options.min_frames = frames;
  HipecRegion region = engine.VmAllocateHipec(task, 512 * kPageSize, program, options);
  EXPECT_TRUE(region.ok) << region.error;
  for (uint64_t page : trace) {
    if (!kernel.Touch(task, region.addr + page * kPageSize, false)) {
      ADD_FAILURE() << "terminated: " << task->termination_reason();
      return -1;
    }
  }
  return engine.counters().Get("engine.faults_handled");
}

class ClockOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(ClockOracleTest, BytecodeClockMatchesOracleOnRandomTraces) {
  sim::Rng rng(static_cast<uint64_t>(GetParam()) * 31337ULL);
  std::vector<uint64_t> trace;
  for (int i = 0; i < 800; ++i) {
    trace.push_back(rng.Below(70));
  }
  int64_t engine_faults = RunTrace(trace, 32, ClockPolicy());
  OracleResult oracle = SimulateReplacement(trace, 32, OraclePolicy::kClock);
  EXPECT_EQ(engine_faults, static_cast<int64_t>(oracle.faults)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockOracleTest, ::testing::Range(1, 9));

TEST(ClockPolicyTest, AllReferencedStillTerminates) {
  // One sweep exactly fills the pool, then a second sweep: every resident page is referenced
  // when the first eviction happens — the rotation must clear bits and still find a victim.
  auto trace = workloads::CyclicScan(33, 3);
  int64_t faults = RunTrace(trace, 32, ClockPolicy());
  EXPECT_GT(faults, 33);
}

TEST(ClockPolicyTest, ProtectsHotPageLikeSecondChance) {
  // Interleave a hot page with a long sweep: CLOCK must fault far less on the hot page than
  // plain FIFO.
  std::vector<uint64_t> trace;
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 1; p < 80; ++p) {
      trace.push_back(p);
      trace.push_back(0);  // hot
    }
  }
  OracleResult clock = SimulateReplacement(trace, 32, OraclePolicy::kClock);
  OracleResult fifo = SimulateReplacement(trace, 32, OraclePolicy::kFifo);
  int clock_hot_evictions = 0, fifo_hot_evictions = 0;
  for (uint64_t v : clock.evictions) {
    clock_hot_evictions += v == 0;
  }
  for (uint64_t v : fifo.evictions) {
    fifo_hot_evictions += v == 0;
  }
  EXPECT_LT(clock_hot_evictions, fifo_hot_evictions);
}

TEST(TwoQueuePolicyTest, ScanResistance) {
  // A Zipf-hot working set with a long one-shot sequential scan running *through* it (point
  // lookups continue during a table scan). 2Q promotes the re-referenced hot pages to the
  // protected queue, so the scan cannot displace them; FIFO evicts by age regardless.
  std::vector<uint64_t> trace;
  sim::ZipfGenerator hot(40, 0.9, 99);
  for (int i = 0; i < 600; ++i) {
    trace.push_back(hot.Next());
  }
  for (uint64_t scan = 100; scan < 400; ++scan) {
    trace.push_back(scan);      // the scan (cold, one-shot)
    trace.push_back(hot.Next());  // interleaved lookups keep the hot set referenced
  }
  for (int i = 0; i < 600; ++i) {
    trace.push_back(hot.Next());
  }

  int64_t two_queue = RunTrace(trace, 64, TwoQueuePolicy(), TwoQueueOptions());
  int64_t clock = RunTrace(trace, 64, ClockPolicy());
  int64_t fifo = RunTrace(trace, 64, FifoPolicy(CommandStyle::kSimple));
  EXPECT_LT(two_queue, fifo);
  EXPECT_LE(two_queue, clock);
}

TEST(TwoQueuePolicyTest, SurvivesQueueExhaustion) {
  // Degenerate shapes: everything promoted (all referenced), then force Am evictions.
  auto trace = workloads::CyclicScan(96, 4);
  int64_t faults = RunTrace(trace, 48, TwoQueuePolicy(), TwoQueueOptions());
  EXPECT_GT(faults, 96);
}

TEST(AwrpPolicyTest, ConvergesOnColdStartLoopWhereFifoThrashes) {
  // A cyclic scan one-eighth larger than the pool: FIFO (and LRU/CLOCK) evict every page
  // just before its next use and miss on every access. AWRP's newest-on-tie eviction lets
  // a stable resident set form from a cold start, so most accesses hit from loop two on.
  auto trace = workloads::CyclicScan(36, 12);
  int64_t awrp = RunTrace(trace, 32, AwrpPolicy());
  int64_t fifo = RunTrace(trace, 32, FifoPolicy(CommandStyle::kSimple));
  EXPECT_EQ(fifo, static_cast<int64_t>(trace.size()));  // the classic 0% hit ratio
  EXPECT_LT(awrp, fifo / 2);
}

TEST(AwrpPolicyTest, HotSetOutScoresColdChurn) {
  // 90% of references hit 16 hot pages; the cold tail streams through. The hot pages earn
  // +64 per rotation and are never the WeightedSelectMin victim, so hot evictions should be
  // rarer than under FIFO's age-only ordering.
  auto trace = workloads::HotColdTrace(128, 16, 0.9, 3000, 7);
  int64_t awrp = RunTrace(trace, 32, AwrpPolicy());
  int64_t fifo = RunTrace(trace, 32, FifoPolicy(CommandStyle::kSimple));
  EXPECT_LT(awrp, fifo);
}

TEST(PerceptronPolicyTest, BeatsFifoOnLoopAndTrainsOnline) {
  auto trace = workloads::CyclicScan(36, 12);
  int64_t fifo = RunTrace(trace, 32, FifoPolicy(CommandStyle::kSimple));

  mach::Kernel kernel(SmallParams());
  HipecEngine engine(&kernel);
  mach::Task* task = kernel.CreateTask("app");
  HipecOptions options = PerceptronOptions();
  options.min_frames = 32;
  HipecRegion region =
      engine.VmAllocateHipec(task, 512 * kPageSize, PerceptronPolicy(), options);
  ASSERT_TRUE(region.ok) << region.error;
  for (uint64_t page : trace) {
    ASSERT_TRUE(kernel.Touch(task, region.addr + page * kPageSize, false))
        << task->termination_reason();
  }
  int64_t perceptron = engine.counters().Get("engine.faults_handled");
  EXPECT_LT(perceptron, fifo);
  // The referenced-feature weight starts at 64 and moves by +-1 on every reuse
  // misprediction; thousands of rotations over a churning loop must have touched it.
  int64_t w0 = region.container->operands().ReadInt(core::std_ops::kUserBase);
  EXPECT_NE(w0, 64);
  EXPECT_GE(w0, 1);
  EXPECT_LE(w0, 96);
}

TEST(PolicyLibraryTest, AllPoliciesValidateAgainstTheirOptions) {
  struct Case {
    core::PolicyProgram program;
    HipecOptions options;
  };
  std::vector<Case> cases;
  cases.push_back({FifoSecondChancePolicy(), {}});
  cases.push_back({FifoPolicy(CommandStyle::kComplex), {}});
  cases.push_back({LruPolicy(CommandStyle::kComplex), {}});
  cases.push_back({MruPolicy(CommandStyle::kSimple), {}});
  cases.push_back({ClockPolicy(), {}});
  cases.push_back({TwoQueuePolicy(), TwoQueueOptions()});
  cases.push_back({AwrpPolicy(), {}});
  cases.push_back({PerceptronPolicy(), PerceptronOptions()});
  for (Case& c : cases) {
    mach::Kernel kernel(SmallParams());
    HipecEngine engine(&kernel);
    mach::Task* task = kernel.CreateTask("t");
    c.options.min_frames = 16;
    c.options.free_target = 4;
    c.options.inactive_target = 8;
    HipecRegion region =
        engine.VmAllocateHipec(task, 32 * kPageSize, c.program, c.options);
    EXPECT_TRUE(region.ok) << region.error;
  }
}

}  // namespace
}  // namespace hipec::policies
