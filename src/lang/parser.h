// Recursive-descent parser for the pseudo-code policy language.
#ifndef HIPEC_LANG_PARSER_H_
#define HIPEC_LANG_PARSER_H_

#include <string>

#include "lang/ast.h"
#include "lang/lexer.h"

namespace hipec::lang {

// Parses a whole policy source file. Throws CompileError on syntax errors.
PolicySource Parse(const std::string& source);

}  // namespace hipec::lang

#endif  // HIPEC_LANG_PARSER_H_
