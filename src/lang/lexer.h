// Tokenizer for the pseudo-code policy language.
#ifndef HIPEC_LANG_LEXER_H_
#define HIPEC_LANG_LEXER_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hipec::lang {

// A translation problem in user pseudo-code (lexing, parsing, or semantic). Reported with the
// source line.
class CompileError : public std::runtime_error {
 public:
  CompileError(int line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message), line_(line) {}
  int line() const { return line_; }

 private:
  int line_;
};

enum class TokenKind {
  kEnd,
  kIdent,
  kInt,
  // keywords
  kEvent,
  kIf,
  kElse,
  kWhile,
  kReturn,
  kBegin,
  kEndKw,
  kEndIf,
  kQueue,
  kConst,
  // punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kSemi,
  kDot,
  kAssign,  // =
  kEq,      // ==
  kNe,
  kLt,
  kGt,
  kLe,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kNot,   // ! or `not`
  kAnd,   // && or `and`
  kOr,    // || or `or`
};

struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  int line = 1;
};

// Tokenizes `source`. Supports //-comments, /* */-comments, and case-sensitive keywords with
// the paper's capitalization quirks (`Event` and `event`, `endif`/`end`).
std::vector<Token> Tokenize(const std::string& source);

}  // namespace hipec::lang

#endif  // HIPEC_LANG_LEXER_H_
