// AST for the HiPEC pseudo-code policy language (§4.3.4, Figure 4).
//
// The language is C-like: `Event Name() { ... }` declarations containing if/else (with either
// braces or begin/end/endif, both appear in the paper), while loops, assignments, builtin
// calls (de_queue_head, en_queue_tail, flush, reset, ...), and event activations written as
// procedure calls. See lang/compiler.h for the full builtin list and name bindings.
#ifndef HIPEC_LANG_AST_H_
#define HIPEC_LANG_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hipec::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kInt,     // integer literal
    kIdent,   // variable / queue / target name
    kField,   // name.field (page.reference, page.dirty, page.modified)
    kBinary,  // op in {+ - * / % > < >= <= == != && ||}
    kNot,     // !x
    kCall,    // builtin or event call
  };

  Kind kind;
  int line = 0;
  int64_t int_value = 0;
  std::string name;   // ident / field base / callee
  std::string field;  // for kField
  std::string op;     // for kBinary
  ExprPtr lhs, rhs;   // binary / not (rhs only)
  std::vector<ExprPtr> args;  // call
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kIf,
    kWhile,
    kAssign,
    kExprStmt,  // builtin call or event activation
    kReturn,
  };

  Kind kind;
  int line = 0;
  ExprPtr cond;                  // if / while
  std::vector<StmtPtr> then_body;  // if-then / while-body
  std::vector<StmtPtr> else_body;  // if-else
  std::string target;            // assign lvalue
  ExprPtr value;                 // assign RHS / expr-stmt / return value (may be null)
};

struct EventDecl {
  std::string name;
  int line = 0;
  std::vector<StmtPtr> body;
};

struct PolicySource {
  std::vector<std::string> queue_decls;  // `queue name` declarations
  std::vector<std::pair<std::string, int64_t>> const_decls;  // `const name = value`
  std::vector<EventDecl> events;
};

}  // namespace hipec::lang

#endif  // HIPEC_LANG_AST_H_
