// The pseudo-code translator (§4.3.4): compiles the C-like policy language of Figure 4 into
// HiPEC command streams, "implemented as a stand-alone program and also incorporated into the
// user level library".
//
// Name bindings (standard operand layout, see hipec/operand.h):
//   _free_queue / _active_queue / _inactive_queue           private page queues
//   _free_count / _active_count / _inactive_count           read-only live counts
//   free_target, inactive_target, reserved_target           policy targets (reserve_target is
//                                                           accepted as an alias — the paper
//                                                           itself uses both spellings)
//   request_size, fault_addr, reclaim_count, result         kernel-communication integers
//   page                                                    the page variable of Table 2
//
// Builtins:
//   page producers:  de_queue_head(q), de_queue_tail(q), fifo(q), lru(q), mru(q), find(addr)
//   statements:      en_queue_head(q[,p]), en_queue_tail(q[,p])   (p defaults to `page`),
//                    reset(p.reference|p.dirty), set(p.reference|p.dirty),
//                    flush(p), release(p|q), request(n, q)
//   conditions:      empty(q), in_queue(q, p), p.reference, p.dirty / p.modified,
//                    comparisons, !, &&, ||
//
// Events: `Event PageFault()` and `Event ReclaimFrame()` bind to the HiPEC-defined events;
// other events get numbers from 2 in declaration order and are activated by calling them.
// Undeclared identifiers become user integer variables; variables first assigned from a page
// producer become page variables; `queue name` declares a private user queue.
#ifndef HIPEC_LANG_COMPILER_H_
#define HIPEC_LANG_COMPILER_H_

#include <map>
#include <string>

#include "hipec/engine.h"
#include "hipec/program.h"
#include "lang/ast.h"
#include "lang/lexer.h"

namespace hipec::lang {

struct CompiledPolicy {
  core::PolicyProgram program;
  // Template options with user_queue_count / user_int_count / user_page_count filled in so
  // the engine lays out the operand array the compiler assumed. Callers still set
  // min_frames, targets, and timeout.
  core::HipecOptions options;
  // name -> operand index, for diagnostics and tests.
  std::map<std::string, uint8_t> symbols;
  // event name -> event number.
  std::map<std::string, int> events;
};

// Compiles policy source text. Throws CompileError on any lexical/syntax/semantic problem.
CompiledPolicy CompilePolicy(const std::string& source);
CompiledPolicy CompilePolicy(const PolicySource& ast);

}  // namespace hipec::lang

#endif  // HIPEC_LANG_COMPILER_H_
