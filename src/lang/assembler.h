// A textual exchange format for compiled policies, so programs can be shipped between the
// stand-alone translator (examples/hipecc) and applications:
//
//   # comment
//   event 0
//   48695043        <- magic
//   02020C01        <- one 32-bit command word per line, hex
//   ...
//
// DumpHex and ParseHex round-trip exactly; hipec/program.h's ToString() provides the
// human-readable disassembly.
#ifndef HIPEC_LANG_ASSEMBLER_H_
#define HIPEC_LANG_ASSEMBLER_H_

#include <string>

#include "hipec/program.h"
#include "lang/lexer.h"

namespace hipec::lang {

std::string DumpHex(const core::PolicyProgram& program);

// Throws CompileError on malformed input.
core::PolicyProgram ParseHex(const std::string& text);

}  // namespace hipec::lang

#endif  // HIPEC_LANG_ASSEMBLER_H_
