#include "lang/lexer.h"

#include <cctype>
#include <unordered_map>

namespace hipec::lang {
namespace {

const std::unordered_map<std::string, TokenKind> kKeywords = {
    {"event", TokenKind::kEvent},   {"Event", TokenKind::kEvent},
    {"if", TokenKind::kIf},         {"else", TokenKind::kElse},
    {"while", TokenKind::kWhile},   {"return", TokenKind::kReturn},
    {"begin", TokenKind::kBegin},   {"end", TokenKind::kEndKw},
    {"endif", TokenKind::kEndIf},   {"queue", TokenKind::kQueue},
    {"const", TokenKind::kConst},
    {"not", TokenKind::kNot},       {"and", TokenKind::kAnd},
    {"or", TokenKind::kOr},
};

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::vector<Token> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text = "") {
    tokens.push_back(Token{kind, std::move(text), 0, line});
  };

  while (i < n) {
    char c = source[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        if (source[i] == '\n') {
          ++line;
        }
        ++i;
      }
      if (i + 1 >= n) {
        throw CompileError(line, "unterminated /* comment");
      }
      i += 2;
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) {
        ++i;
      }
      std::string text = source.substr(start, i - start);
      auto kw = kKeywords.find(text);
      if (kw != kKeywords.end()) {
        push(kw->second, text);
      } else {
        push(TokenKind::kIdent, text);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
        ++i;
      }
      Token token{TokenKind::kInt, source.substr(start, i - start), 0, line};
      token.int_value = std::stoll(token.text);
      tokens.push_back(token);
      continue;
    }
    auto two = [&](char next) { return i + 1 < n && source[i + 1] == next; };
    switch (c) {
      case '(': push(TokenKind::kLParen); ++i; break;
      case ')': push(TokenKind::kRParen); ++i; break;
      case '{': push(TokenKind::kLBrace); ++i; break;
      case '}': push(TokenKind::kRBrace); ++i; break;
      case ',': push(TokenKind::kComma); ++i; break;
      case ';': push(TokenKind::kSemi); ++i; break;
      case '.': push(TokenKind::kDot); ++i; break;
      case '+': push(TokenKind::kPlus); ++i; break;
      case '-': push(TokenKind::kMinus); ++i; break;
      case '*': push(TokenKind::kStar); ++i; break;
      case '/': push(TokenKind::kSlash); ++i; break;
      case '%': push(TokenKind::kPercent); ++i; break;
      case '=':
        if (two('=')) {
          push(TokenKind::kEq);
          i += 2;
        } else {
          push(TokenKind::kAssign);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenKind::kNe);
          i += 2;
        } else {
          push(TokenKind::kNot);
          ++i;
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenKind::kLe);
          i += 2;
        } else {
          push(TokenKind::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenKind::kGe);
          i += 2;
        } else {
          push(TokenKind::kGt);
          ++i;
        }
        break;
      case '&':
        if (two('&')) {
          push(TokenKind::kAnd);
          i += 2;
        } else {
          throw CompileError(line, "stray '&'");
        }
        break;
      case '|':
        if (two('|')) {
          push(TokenKind::kOr);
          i += 2;
        } else {
          throw CompileError(line, "stray '|'");
        }
        break;
      default:
        throw CompileError(line, std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEnd);
  return tokens;
}

}  // namespace hipec::lang
