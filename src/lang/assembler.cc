#include "lang/assembler.h"

#include <cstdio>
#include <sstream>

namespace hipec::lang {

std::string DumpHex(const core::PolicyProgram& program) {
  std::ostringstream os;
  for (int ev = 0; ev < program.event_limit(); ++ev) {
    if (!program.HasEvent(ev)) {
      continue;
    }
    os << "event " << ev << "\n";
    char buf[16];
    for (uint32_t word : program.event(ev).words) {
      std::snprintf(buf, sizeof(buf), "%08X", word);
      os << buf << "\n";
    }
  }
  return os.str();
}

core::PolicyProgram ParseHex(const std::string& text) {
  core::PolicyProgram program;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  int current_event = -1;
  std::vector<uint32_t> words;

  auto flush = [&] {
    if (current_event >= 0) {
      if (words.empty()) {
        throw CompileError(line_no, "event with no words");
      }
      program.SetEventRaw(current_event, std::move(words));
      words = {};
    }
  };

  while (std::getline(is, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    // Trim.
    size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(begin, end - begin + 1);

    if (line.rfind("event", 0) == 0) {
      flush();
      try {
        current_event = std::stoi(line.substr(5));
      } catch (const std::exception&) {
        throw CompileError(line_no, "bad event header: " + line);
      }
      if (current_event < 0 || current_event > 255) {
        throw CompileError(line_no, "event number out of range");
      }
      continue;
    }
    if (current_event < 0) {
      throw CompileError(line_no, "command word before any 'event' header");
    }
    uint32_t word = 0;
    if (std::sscanf(line.c_str(), "%8X", &word) != 1 ||
        line.find_first_not_of("0123456789abcdefABCDEF") != std::string::npos) {
      throw CompileError(line_no, "bad command word: " + line);
    }
    words.push_back(word);
  }
  flush();
  return program;
}

}  // namespace hipec::lang
