#include "lang/compiler.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "hipec/builder.h"
#include "lang/parser.h"

namespace hipec::lang {
namespace {

using core::ArithOp;
using core::CompOp;
using core::EventBuilder;
using core::PageBit;
namespace ops = hipec::core::std_ops;

enum class SymKind { kInt, kReadOnlyInt, kPage, kQueue };

struct Symbol {
  SymKind kind;
  uint8_t index;
};

constexpr int kTempInts = 4;
constexpr int kTempPages = 1;

bool IsPageProducer(const std::string& callee) {
  return callee == "de_queue_head" || callee == "de_queue_tail" || callee == "fifo" ||
         callee == "lru" || callee == "mru" || callee == "find" ||
         callee == "weighted_min" || callee == "weighted_max";
}

class Compiler {
 public:
  explicit Compiler(const PolicySource& source) : source_(source) {}

  CompiledPolicy Run() {
    CollectEvents();
    CollectSymbols();
    AssignIndices();
    for (const EventDecl& event : source_.events) {
      EventBuilder builder;
      builder_ = &builder;
      for (const StmtPtr& stmt : event.body) {
        GenStmt(*stmt);
      }
      builder.Return(0);  // implicit fall-off return
      result_.program.SetEvent(result_.events.at(event.name), builder.Build());
      builder_ = nullptr;
    }
    for (const auto& [name, sym] : table_) {
      result_.symbols[name] = sym.index;
    }
    return std::move(result_);
  }

 private:
  // --- pass A: events and symbols -------------------------------------------------------------

  void CollectEvents() {
    int next_user_event = core::kFirstUserEvent;
    for (const EventDecl& event : source_.events) {
      if (result_.events.contains(event.name)) {
        throw CompileError(event.line, "event '" + event.name + "' declared twice");
      }
      if (event.name == "PageFault") {
        result_.events[event.name] = core::kEventPageFault;
      } else if (event.name == "ReclaimFrame") {
        result_.events[event.name] = core::kEventReclaimFrame;
      } else {
        result_.events[event.name] = next_user_event++;
      }
    }
    if (!result_.events.contains("PageFault") || !result_.events.contains("ReclaimFrame")) {
      throw CompileError(1,
                         "a specific application must handle at least the PageFault and "
                         "ReclaimFrame events");
    }
  }

  void Predefine(const std::string& name, SymKind kind, uint8_t index) {
    table_[name] = Symbol{kind, index};
  }

  void CollectSymbols() {
    Predefine("_free_queue", SymKind::kQueue, ops::kFreeQueue);
    Predefine("_free_count", SymKind::kReadOnlyInt, ops::kFreeCount);
    Predefine("_active_queue", SymKind::kQueue, ops::kActiveQueue);
    Predefine("_active_count", SymKind::kReadOnlyInt, ops::kActiveCount);
    Predefine("_inactive_queue", SymKind::kQueue, ops::kInactiveQueue);
    Predefine("_inactive_count", SymKind::kReadOnlyInt, ops::kInactiveCount);
    Predefine("free_target", SymKind::kInt, ops::kFreeTarget);
    Predefine("inactive_target", SymKind::kInt, ops::kInactiveTarget);
    Predefine("reserved_target", SymKind::kInt, ops::kReservedTarget);
    Predefine("reserve_target", SymKind::kInt, ops::kReservedTarget);  // paper's other spelling
    Predefine("request_size", SymKind::kInt, ops::kRequestSize);
    Predefine("page", SymKind::kPage, ops::kPage);
    Predefine("fault_addr", SymKind::kInt, ops::kFaultAddr);
    Predefine("reclaim_count", SymKind::kInt, ops::kReclaimCount);
    Predefine("result", SymKind::kInt, ops::kResult);

    for (const std::string& queue : source_.queue_decls) {
      if (table_.contains(queue)) {
        throw CompileError(1, "queue '" + queue + "' redeclares an existing name");
      }
      user_queues_.push_back(queue);
      table_[queue] = Symbol{SymKind::kQueue, 0};  // index assigned later
    }
    for (const auto& [name, value] : source_.const_decls) {
      if (table_.contains(name)) {
        throw CompileError(1, "const '" + name + "' redeclares an existing name");
      }
      const_values_[name] = value;
      table_[name] = Symbol{SymKind::kReadOnlyInt, 0};
    }
    for (const EventDecl& event : source_.events) {
      for (const StmtPtr& stmt : event.body) {
        CollectStmt(*stmt);
      }
    }
    for (const EventDecl& event : source_.events) {
      for (const StmtPtr& stmt : event.body) {
        CollectReads(*stmt);
      }
    }
  }

  // Reads of unknown names declare integer variables implicitly too: kernel-communication
  // operands (like a migration partner's id) are often written only from outside the policy.
  void CollectExpr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIdent:
        if (!table_.contains(expr.name)) {
          user_ints_.push_back(expr.name);
          table_[expr.name] = Symbol{SymKind::kInt, 0};
        }
        break;
      case Expr::Kind::kInt:
        // Literals beyond the 8-bit immediate range are hoisted into pooled read-only
        // constant operands.
        if (expr.int_value < 0 || expr.int_value > 255) {
          std::string name = "$lit" + std::to_string(expr.int_value);
          if (!table_.contains(name)) {
            const_values_[name] = expr.int_value;
            table_[name] = Symbol{SymKind::kReadOnlyInt, 0};
          }
        }
        break;
      case Expr::Kind::kBinary:
        CollectExpr(*expr.lhs);
        CollectExpr(*expr.rhs);
        break;
      case Expr::Kind::kNot:
        CollectExpr(*expr.rhs);
        break;
      case Expr::Kind::kCall:
        for (const ExprPtr& arg : expr.args) {
          CollectExpr(*arg);
        }
        break;
      default:
        break;  // literals and fields (whose base must already be a page variable)
    }
  }

  // Second collection pass: reads (the first pass has already typed every assigned name, so
  // an ident that is assigned a page later in the source is correctly a page here).
  void CollectReads(const Stmt& stmt) {
    if (stmt.cond) {
      CollectExpr(*stmt.cond);
    }
    if (stmt.value) {
      CollectExpr(*stmt.value);
    }
    for (const StmtPtr& s : stmt.then_body) {
      CollectReads(*s);
    }
    for (const StmtPtr& s : stmt.else_body) {
      CollectReads(*s);
    }
  }

  void CollectStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        bool is_page = stmt.value->kind == Expr::Kind::kCall && IsPageProducer(stmt.value->name);
        auto it = table_.find(stmt.target);
        if (it == table_.end()) {
          if (is_page) {
            user_pages_.push_back(stmt.target);
            table_[stmt.target] = Symbol{SymKind::kPage, 0};
          } else {
            user_ints_.push_back(stmt.target);
            table_[stmt.target] = Symbol{SymKind::kInt, 0};
          }
        } else {
          const Symbol& sym = it->second;
          if (is_page && sym.kind != SymKind::kPage) {
            throw CompileError(stmt.line,
                               "'" + stmt.target + "' holds an integer but is assigned a page");
          }
          if (!is_page && sym.kind == SymKind::kPage) {
            throw CompileError(stmt.line,
                               "'" + stmt.target + "' holds a page but is assigned an integer");
          }
          if (sym.kind == SymKind::kReadOnlyInt || sym.kind == SymKind::kQueue) {
            throw CompileError(stmt.line, "'" + stmt.target + "' cannot be assigned");
          }
        }
        break;
      }
      case Stmt::Kind::kIf:
      case Stmt::Kind::kWhile:
        for (const StmtPtr& s : stmt.then_body) {
          CollectStmt(*s);
        }
        for (const StmtPtr& s : stmt.else_body) {
          CollectStmt(*s);
        }
        break;
      default:
        break;
    }
  }

  void AssignIndices() {
    // Must match HipecEngine::SetupStandardOperands: user queues, then ints, then pages.
    int index = ops::kUserBase;
    auto take = [&index, this](int line = 1) {
      if (index > 255) {
        throw CompileError(line, "too many user operands (operand array has 256 entries)");
      }
      return static_cast<uint8_t>(index++);
    };
    for (const std::string& name : user_queues_) {
      table_[name].index = take();
    }
    for (const std::string& name : user_ints_) {
      table_[name].index = take();
    }
    // Declared constants and pooled literals are user ints with read-only initial values.
    for (auto& [name, value] : const_values_) {
      uint8_t slot = take();
      table_[name].index = slot;
      result_.options.user_int_inits.push_back(
          core::HipecOptions::IntInit{slot, value, /*read_only=*/true});
    }
    first_temp_int_ = index;
    for (int i = 0; i < kTempInts; ++i) {
      take();
    }
    for (const std::string& name : user_pages_) {
      table_[name].index = take();
    }
    first_temp_page_ = index;
    for (int i = 0; i < kTempPages; ++i) {
      take();
    }
    result_.options.user_queue_count = user_queues_.size();
    result_.options.user_int_count = user_ints_.size() + const_values_.size() + kTempInts;
    result_.options.user_page_count = user_pages_.size() + kTempPages;
  }

  // --- symbol helpers -------------------------------------------------------------------------

  const Symbol& Lookup(const std::string& name, int line) const {
    auto it = table_.find(name);
    if (it == table_.end()) {
      throw CompileError(line, "unknown name '" + name + "'");
    }
    return it->second;
  }

  uint8_t QueueOf(const Expr& expr) const {
    if (expr.kind != Expr::Kind::kIdent) {
      throw CompileError(expr.line, "expected a queue name");
    }
    const Symbol& sym = Lookup(expr.name, expr.line);
    if (sym.kind != SymKind::kQueue) {
      throw CompileError(expr.line, "'" + expr.name + "' is not a queue");
    }
    return sym.index;
  }

  uint8_t PageOf(const Expr& expr) const {
    if (expr.kind != Expr::Kind::kIdent) {
      throw CompileError(expr.line, "expected a page variable");
    }
    const Symbol& sym = Lookup(expr.name, expr.line);
    if (sym.kind != SymKind::kPage) {
      throw CompileError(expr.line, "'" + expr.name + "' is not a page variable");
    }
    return sym.index;
  }

  uint8_t AllocTempInt(int line) {
    if (temp_ints_used_ >= kTempInts) {
      throw CompileError(line, "expression too complex (temporary limit)");
    }
    return static_cast<uint8_t>(first_temp_int_ + temp_ints_used_++);
  }
  uint8_t TempPage() const { return static_cast<uint8_t>(first_temp_page_); }
  void ResetTemps() { temp_ints_used_ = 0; }

  // --- expression codegen ---------------------------------------------------------------------

  static ArithOp ArithOpFor(const std::string& op, int line) {
    if (op == "+") return ArithOp::kAdd;
    if (op == "-") return ArithOp::kSub;
    if (op == "*") return ArithOp::kMul;
    if (op == "/") return ArithOp::kDiv;
    if (op == "%") return ArithOp::kMod;
    throw CompileError(line, "'" + op + "' is not an arithmetic operator here");
  }

  static bool IsRelational(const std::string& op) {
    return op == ">" || op == "<" || op == ">=" || op == "<=" || op == "==" || op == "!=";
  }

  static CompOp CompOpFor(const std::string& op) {
    if (op == ">") return CompOp::kGt;
    if (op == "<") return CompOp::kLt;
    if (op == ">=") return CompOp::kGe;
    if (op == "<=") return CompOp::kLe;
    if (op == "==") return CompOp::kEq;
    return CompOp::kNe;
  }

  // Materializes an integer-valued expression; returns the operand index holding it.
  uint8_t GenInt(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kInt: {
        if (expr.int_value < 0 || expr.int_value > 255) {
          // A pooled constant operand (allocated during the collection pass).
          auto it = table_.find("$lit" + std::to_string(expr.int_value));
          if (it == table_.end()) {
            throw CompileError(expr.line, "internal: literal missing from the constant pool");
          }
          return it->second.index;
        }
        uint8_t temp = AllocTempInt(expr.line);
        builder_->LoadImm(temp, static_cast<uint8_t>(expr.int_value));
        return temp;
      }
      case Expr::Kind::kIdent: {
        const Symbol& sym = Lookup(expr.name, expr.line);
        if (sym.kind != SymKind::kInt && sym.kind != SymKind::kReadOnlyInt) {
          throw CompileError(expr.line, "'" + expr.name + "' is not an integer");
        }
        return sym.index;
      }
      case Expr::Kind::kBinary: {
        if (IsRelational(expr.op) || expr.op == "&&" || expr.op == "||") {
          throw CompileError(expr.line, "comparison used where a value is required");
        }
        uint8_t lhs = GenInt(*expr.lhs);
        uint8_t rhs = GenInt(*expr.rhs);
        uint8_t temp = AllocTempInt(expr.line);
        builder_->Arith(temp, lhs, ArithOp::kMov);
        builder_->Arith(temp, rhs, ArithOpFor(expr.op, expr.line));
        return temp;
      }
      default:
        throw CompileError(expr.line, "expected an integer expression");
    }
  }

  // Emits a page-producing call with destination `dst`.
  void GenPageProducer(const Expr& call, uint8_t dst) {
    auto want_args = [&call](size_t n) {
      if (call.args.size() != n) {
        throw CompileError(call.line, call.name + " expects " + std::to_string(n) +
                                          " argument(s)");
      }
    };
    if (call.name == "de_queue_head") {
      want_args(1);
      builder_->DeQueueHead(dst, QueueOf(*call.args[0]));
    } else if (call.name == "de_queue_tail") {
      want_args(1);
      builder_->DeQueueTail(dst, QueueOf(*call.args[0]));
    } else if (call.name == "fifo") {
      want_args(1);
      builder_->Fifo(QueueOf(*call.args[0]), dst);
    } else if (call.name == "lru") {
      want_args(1);
      builder_->Lru(QueueOf(*call.args[0]), dst);
    } else if (call.name == "mru") {
      want_args(1);
      builder_->Mru(QueueOf(*call.args[0]), dst);
    } else if (call.name == "find") {
      want_args(1);
      builder_->Find(dst, GenInt(*call.args[0]));
    } else if (call.name == "weighted_min") {
      want_args(1);
      builder_->WeightedSelectMin(QueueOf(*call.args[0]), dst);
    } else if (call.name == "weighted_max") {
      want_args(1);
      builder_->WeightedSelectMax(QueueOf(*call.args[0]), dst);
    } else {
      throw CompileError(call.line, "'" + call.name + "' does not produce a page");
    }
  }

  // --- condition codegen ----------------------------------------------------------------------

  // Emits a test command for an atomic condition; leaves its truth in the condition flag.
  void GenTest(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kBinary:
        if (!IsRelational(expr.op)) {
          throw CompileError(expr.line, "expected a comparison");
        }
        {
          uint8_t lhs = GenInt(*expr.lhs);
          uint8_t rhs = GenInt(*expr.rhs);
          builder_->Comp(lhs, rhs, CompOpFor(expr.op));
        }
        break;
      case Expr::Kind::kField: {
        uint8_t page = PageOf(*MakeIdent(expr.name, expr.line));
        if (expr.field == "reference" || expr.field == "ref") {
          builder_->Ref(page);
        } else if (expr.field == "dirty" || expr.field == "modified" || expr.field == "mod") {
          builder_->Mod(page);
        } else {
          throw CompileError(expr.line, "unknown page field '" + expr.field + "'");
        }
        break;
      }
      case Expr::Kind::kCall:
        if (expr.name == "empty") {
          if (expr.args.size() != 1) {
            throw CompileError(expr.line, "empty expects one queue");
          }
          builder_->EmptyQ(QueueOf(*expr.args[0]));
        } else if (expr.name == "in_queue") {
          if (expr.args.size() != 2) {
            throw CompileError(expr.line, "in_queue expects (queue, page)");
          }
          builder_->InQ(QueueOf(*expr.args[0]), PageOf(*expr.args[1]));
        } else if (expr.name == "request") {
          GenRequest(expr);  // condition = grant succeeded
        } else if (expr.name == "migrate") {
          if (expr.args.size() != 2) {
            throw CompileError(expr.line, "migrate expects (page, target_id)");
          }
          builder_->Migrate(PageOf(*expr.args[0]), GenInt(*expr.args[1]));
        } else {
          throw CompileError(expr.line, "'" + expr.name + "' is not a condition");
        }
        break;
      case Expr::Kind::kIdent: {
        // Truthiness of an integer variable.
        uint8_t value = GenInt(expr);
        uint8_t zero = AllocTempInt(expr.line);
        builder_->LoadImm(zero, 0);
        builder_->Comp(value, zero, CompOp::kNe);
        break;
      }
      default:
        throw CompileError(expr.line, "expected a condition");
    }
  }

  // Fallthrough when the condition is TRUE; jump to `target` when FALSE.
  void GenCondJumpIfFalse(const Expr& expr, EventBuilder::Label target) {
    if (expr.kind == Expr::Kind::kNot) {
      GenCondJumpIfTrue(*expr.rhs, target);
      return;
    }
    if (expr.kind == Expr::Kind::kBinary && expr.op == "&&") {
      GenCondJumpIfFalse(*expr.lhs, target);
      GenCondJumpIfFalse(*expr.rhs, target);
      return;
    }
    if (expr.kind == Expr::Kind::kBinary && expr.op == "||") {
      auto taken = builder_->NewLabel();
      GenCondJumpIfTrue(*expr.lhs, taken);
      GenCondJumpIfFalse(*expr.rhs, target);
      builder_->Bind(taken);
      return;
    }
    if (expr.kind == Expr::Kind::kInt) {
      if (expr.int_value == 0) {
        builder_->JumpAlways(target);
      }
      return;
    }
    GenTest(expr);
    builder_->JumpIfFalse(target);
  }

  // Fallthrough when the condition is FALSE; jump to `target` when TRUE.
  void GenCondJumpIfTrue(const Expr& expr, EventBuilder::Label target) {
    if (expr.kind == Expr::Kind::kNot) {
      GenCondJumpIfFalse(*expr.rhs, target);
      return;
    }
    if (expr.kind == Expr::Kind::kBinary && expr.op == "&&") {
      auto skip = builder_->NewLabel();
      GenCondJumpIfFalse(*expr.lhs, skip);
      GenCondJumpIfTrue(*expr.rhs, target);
      builder_->Bind(skip);
      return;
    }
    if (expr.kind == Expr::Kind::kBinary && expr.op == "||") {
      GenCondJumpIfTrue(*expr.lhs, target);
      GenCondJumpIfTrue(*expr.rhs, target);
      return;
    }
    if (expr.kind == Expr::Kind::kInt) {
      if (expr.int_value != 0) {
        builder_->JumpAlways(target);
      }
      return;
    }
    GenTest(expr);
    auto skip = builder_->NewLabel();
    builder_->JumpIfFalse(skip);   // condition false -> fall through below
    builder_->JumpIfFalse(target);  // flag was cleared by the untaken jump: always taken
    builder_->Bind(skip);
  }

  // --- statements -----------------------------------------------------------------------------

  void GenRequest(const Expr& call) {
    if (call.args.size() != 2) {
      throw CompileError(call.line, "request expects (count, queue)");
    }
    uint8_t count = GenInt(*call.args[0]);
    builder_->Request(count, QueueOf(*call.args[1]));
  }

  void GenCallStmt(const Expr& call) {
    auto event = result_.events.find(call.name);
    if (event != result_.events.end()) {
      if (!call.args.empty()) {
        throw CompileError(call.line, "event activations take no arguments");
      }
      builder_->Activate(static_cast<uint8_t>(event->second));
      return;
    }
    auto want_args = [&call](size_t lo, size_t hi) {
      if (call.args.size() < lo || call.args.size() > hi) {
        throw CompileError(call.line, "wrong number of arguments to " + call.name);
      }
    };
    if (call.name == "en_queue_head" || call.name == "en_queue_tail") {
      want_args(1, 2);
      uint8_t queue = QueueOf(*call.args[0]);
      // Figure 4 writes en_queue_tail(_inactive_queue) with the page implicit.
      uint8_t page = call.args.size() == 2 ? PageOf(*call.args[1]) : ops::kPage;
      if (call.name == "en_queue_head") {
        builder_->EnQueueHead(page, queue);
      } else {
        builder_->EnQueueTail(page, queue);
      }
    } else if (call.name == "reset" || call.name == "set") {
      want_args(1, 1);
      const Expr& field = *call.args[0];
      if (field.kind != Expr::Kind::kField) {
        throw CompileError(call.line, call.name + " expects page.reference or page.dirty");
      }
      uint8_t page = PageOf(*MakeIdent(field.name, field.line));
      PageBit bit;
      if (field.field == "reference" || field.field == "ref") {
        bit = PageBit::kReference;
      } else if (field.field == "dirty" || field.field == "modified" || field.field == "mod") {
        bit = PageBit::kModify;
      } else {
        throw CompileError(call.line, "unknown page field '" + field.field + "'");
      }
      builder_->SetBit(page, bit, call.name == "set");
    } else if (call.name == "flush") {
      want_args(1, 1);
      builder_->Flush(PageOf(*call.args[0]));
    } else if (call.name == "release") {
      want_args(1, 1);
      const Expr& arg = *call.args[0];
      if (arg.kind != Expr::Kind::kIdent) {
        throw CompileError(call.line, "release expects a page or queue name");
      }
      builder_->Release(Lookup(arg.name, arg.line).index);
    } else if (call.name == "request") {
      GenRequest(call);
    } else if (call.name == "migrate") {
      want_args(2, 2);
      builder_->Migrate(PageOf(*call.args[0]), GenInt(*call.args[1]));
    } else if (call.name == "unlink") {
      want_args(1, 1);
      builder_->Unlink(PageOf(*call.args[0]));
    } else if (call.name == "set_page_word") {
      want_args(2, 2);
      uint8_t page = PageOf(*call.args[0]);
      builder_->PageWordStore(page, GenInt(*call.args[1]));
    } else if (IsPageProducer(call.name)) {
      // Result discarded into the default page variable.
      GenPageProducer(call, ops::kPage);
    } else {
      throw CompileError(call.line, "unknown builtin or event '" + call.name + "'");
    }
  }

  void GenStmt(const Stmt& stmt) {
    ResetTemps();
    switch (stmt.kind) {
      case Stmt::Kind::kAssign: {
        const Symbol& sym = Lookup(stmt.target, stmt.line);
        if (sym.kind == SymKind::kPage) {
          if (stmt.value->kind != Expr::Kind::kCall || !IsPageProducer(stmt.value->name)) {
            throw CompileError(stmt.line,
                               "page variables can only be assigned from queue operations");
          }
          GenPageProducer(*stmt.value, sym.index);
          break;
        }
        const Expr& rhs = *stmt.value;
        if (rhs.kind == Expr::Kind::kInt) {
          if (rhs.int_value < 0 || rhs.int_value > 255) {
            builder_->Arith(sym.index, GenInt(rhs), ArithOp::kMov);  // via the constant pool
          } else {
            builder_->LoadImm(sym.index, static_cast<uint8_t>(rhs.int_value));
          }
        } else if (rhs.kind == Expr::Kind::kIdent) {
          builder_->Arith(sym.index, GenInt(rhs), ArithOp::kMov);
        } else if (rhs.kind == Expr::Kind::kCall && rhs.name == "page_word") {
          if (rhs.args.size() != 1) {
            throw CompileError(rhs.line, "page_word expects one page variable");
          }
          builder_->PageWordLoad(PageOf(*rhs.args[0]), sym.index);
        } else if (rhs.kind == Expr::Kind::kCall && rhs.name == "sat_dot") {
          // sat_dot(first, N): the N weights live in the N consecutive operand slots
          // starting at `first`, the N features in the N slots after those. The compiler
          // lays user integers out in first-appearance order, so declaring the weights and
          // features contiguously (e.g. via consts) gives the layout this command needs;
          // the install-time validator rejects any slot that is not a readable integer.
          if (rhs.args.size() != 2 || rhs.args[0]->kind != Expr::Kind::kIdent ||
              rhs.args[1]->kind != Expr::Kind::kInt) {
            throw CompileError(rhs.line,
                               "sat_dot expects (first_operand_name, width_literal)");
          }
          const Symbol& base = Lookup(rhs.args[0]->name, rhs.args[0]->line);
          if (base.kind != SymKind::kInt && base.kind != SymKind::kReadOnlyInt) {
            throw CompileError(rhs.line,
                               "'" + rhs.args[0]->name + "' is not an integer");
          }
          int64_t n = rhs.args[1]->int_value;
          if (n < 1 || n > core::kMaxDotWidth) {
            throw CompileError(rhs.line, "sat_dot width must be between 1 and " +
                                             std::to_string(core::kMaxDotWidth));
          }
          builder_->SatDotProduct(sym.index, base.index, static_cast<uint8_t>(n));
        } else if (rhs.kind == Expr::Kind::kBinary) {
          uint8_t lhs_idx = GenInt(*rhs.lhs);
          uint8_t rhs_idx = GenInt(*rhs.rhs);
          if (rhs_idx == sym.index && lhs_idx != sym.index) {
            uint8_t temp = AllocTempInt(rhs.line);
            builder_->Arith(temp, rhs_idx, ArithOp::kMov);
            rhs_idx = temp;
          }
          if (lhs_idx != sym.index) {
            builder_->Arith(sym.index, lhs_idx, ArithOp::kMov);
          }
          builder_->Arith(sym.index, rhs_idx, ArithOpFor(rhs.op, rhs.line));
        } else {
          throw CompileError(stmt.line, "unsupported assignment expression");
        }
        break;
      }
      case Stmt::Kind::kExprStmt:
        if (stmt.value->kind != Expr::Kind::kCall) {
          throw CompileError(stmt.line, "expression statement must be a call");
        }
        GenCallStmt(*stmt.value);
        break;
      case Stmt::Kind::kReturn: {
        if (!stmt.value) {
          builder_->Return(0);
          break;
        }
        const Expr& value = *stmt.value;
        if (value.kind == Expr::Kind::kIdent) {
          builder_->Return(Lookup(value.name, value.line).index);
        } else {
          builder_->Return(GenInt(value));
        }
        break;
      }
      case Stmt::Kind::kIf: {
        auto else_label = builder_->NewLabel();
        GenCondJumpIfFalse(*stmt.cond, else_label);
        for (const StmtPtr& s : stmt.then_body) {
          GenStmt(*s);
        }
        if (stmt.else_body.empty()) {
          builder_->Bind(else_label);
        } else {
          auto end_label = builder_->NewLabel();
          builder_->JumpAlways(end_label);
          builder_->Bind(else_label);
          for (const StmtPtr& s : stmt.else_body) {
            GenStmt(*s);
          }
          builder_->Bind(end_label);
        }
        break;
      }
      case Stmt::Kind::kWhile: {
        auto loop = builder_->NewLabel();
        auto end = builder_->NewLabel();
        builder_->Bind(loop);
        ResetTemps();  // the loop re-enters here; temps are per-iteration
        GenCondJumpIfFalse(*stmt.cond, end);
        for (const StmtPtr& s : stmt.then_body) {
          GenStmt(*s);
        }
        builder_->JumpAlways(loop);
        builder_->Bind(end);
        break;
      }
    }
  }

  // Helper to reuse PageOf for field bases.
  static ExprPtr MakeIdentPtr(const std::string& name, int line) {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kIdent;
    e->name = name;
    e->line = line;
    return e;
  }
  // Keeps a scratch expression alive for the duration of the call.
  const Expr* MakeIdent(const std::string& name, int line) {
    scratch_exprs_.push_back(MakeIdentPtr(name, line));
    return scratch_exprs_.back().get();
  }

  const PolicySource& source_;
  CompiledPolicy result_;
  std::unordered_map<std::string, Symbol> table_;
  std::vector<std::string> user_queues_, user_ints_, user_pages_;
  std::map<std::string, int64_t> const_values_;  // declared consts + pooled literals
  int first_temp_int_ = 0;
  int first_temp_page_ = 0;
  int temp_ints_used_ = 0;
  EventBuilder* builder_ = nullptr;
  std::vector<ExprPtr> scratch_exprs_;
};

}  // namespace

CompiledPolicy CompilePolicy(const PolicySource& ast) { return Compiler(ast).Run(); }

CompiledPolicy CompilePolicy(const std::string& source) { return CompilePolicy(Parse(source)); }

}  // namespace hipec::lang
