#include "lang/parser.h"

#include <utility>

namespace hipec::lang {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  PolicySource Run() {
    PolicySource source;
    while (!At(TokenKind::kEnd)) {
      if (At(TokenKind::kQueue)) {
        Next();
        Token name = Expect(TokenKind::kIdent, "queue name");
        source.queue_decls.push_back(name.text);
        Accept(TokenKind::kSemi);
        continue;
      }
      if (At(TokenKind::kConst)) {
        Next();
        Token name = Expect(TokenKind::kIdent, "constant name");
        Expect(TokenKind::kAssign, "'=' in const declaration");
        bool negative = Accept(TokenKind::kMinus);
        Token value = Expect(TokenKind::kInt, "integer constant");
        source.const_decls.emplace_back(name.text,
                                        negative ? -value.int_value : value.int_value);
        Accept(TokenKind::kSemi);
        continue;
      }
      source.events.push_back(ParseEvent());
    }
    return source;
  }

 private:
  // --- token helpers --------------------------------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  Token Next() { return tokens_[pos_++]; }
  bool Accept(TokenKind kind) {
    if (At(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Token Expect(TokenKind kind, const std::string& what) {
    if (!At(kind)) {
      throw CompileError(Peek().line, "expected " + what + ", found '" + Peek().text + "'");
    }
    return Next();
  }

  // --- grammar --------------------------------------------------------------------------------

  EventDecl ParseEvent() {
    Token kw = Expect(TokenKind::kEvent, "'Event'");
    EventDecl event;
    event.line = kw.line;
    event.name = Expect(TokenKind::kIdent, "event name").text;
    Expect(TokenKind::kLParen, "'('");
    Expect(TokenKind::kRParen, "')'");
    event.body = ParseBlock();
    return event;
  }

  // A block: { ... } or begin ... end/endif.
  std::vector<StmtPtr> ParseBlock() {
    std::vector<StmtPtr> body;
    if (Accept(TokenKind::kLBrace)) {
      while (!Accept(TokenKind::kRBrace)) {
        if (At(TokenKind::kEnd)) {
          throw CompileError(Peek().line, "unterminated '{' block");
        }
        body.push_back(ParseStmt());
      }
      return body;
    }
    if (Accept(TokenKind::kBegin)) {
      while (!Accept(TokenKind::kEndKw) && !Accept(TokenKind::kEndIf)) {
        if (At(TokenKind::kEnd)) {
          throw CompileError(Peek().line, "unterminated 'begin' block");
        }
        body.push_back(ParseStmt());
      }
      return body;
    }
    // A single statement acts as a one-statement block.
    body.push_back(ParseStmt());
    return body;
  }

  StmtPtr ParseStmt() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIf:
        return ParseIf();
      case TokenKind::kWhile:
        return ParseWhile();
      case TokenKind::kReturn:
        return ParseReturn();
      case TokenKind::kIdent:
        return ParseAssignOrCall();
      default:
        throw CompileError(t.line, "expected a statement, found '" + t.text + "'");
    }
  }

  StmtPtr ParseIf() {
    Token kw = Next();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kIf;
    stmt->line = kw.line;
    Expect(TokenKind::kLParen, "'(' after if");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    stmt->then_body = ParseBlock();
    if (Accept(TokenKind::kElse)) {
      stmt->else_body = ParseBlock();
    }
    return stmt;
  }

  StmtPtr ParseWhile() {
    Token kw = Next();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kWhile;
    stmt->line = kw.line;
    Expect(TokenKind::kLParen, "'(' after while");
    stmt->cond = ParseExpr();
    Expect(TokenKind::kRParen, "')'");
    stmt->then_body = ParseBlock();
    return stmt;
  }

  StmtPtr ParseReturn() {
    Token kw = Next();
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kReturn;
    stmt->line = kw.line;
    if (Accept(TokenKind::kLParen)) {
      if (!At(TokenKind::kRParen)) {
        stmt->value = ParseExpr();
      }
      Expect(TokenKind::kRParen, "')'");
    } else if (At(TokenKind::kIdent) || At(TokenKind::kInt)) {
      stmt->value = ParseExpr();
    }
    Accept(TokenKind::kSemi);
    return stmt;
  }

  StmtPtr ParseAssignOrCall() {
    Token name = Next();
    auto stmt = std::make_unique<Stmt>();
    stmt->line = name.line;
    if (Accept(TokenKind::kAssign)) {
      stmt->kind = Stmt::Kind::kAssign;
      stmt->target = name.text;
      stmt->value = ParseExpr();
    } else if (At(TokenKind::kLParen)) {
      stmt->kind = Stmt::Kind::kExprStmt;
      stmt->value = ParseCall(name);
    } else {
      throw CompileError(name.line, "expected '=' or '(' after '" + name.text + "'");
    }
    Accept(TokenKind::kSemi);
    return stmt;
  }

  ExprPtr ParseCall(const Token& callee) {
    auto expr = std::make_unique<Expr>();
    expr->kind = Expr::Kind::kCall;
    expr->line = callee.line;
    expr->name = callee.text;
    Expect(TokenKind::kLParen, "'('");
    if (!At(TokenKind::kRParen)) {
      expr->args.push_back(ParseExpr());
      while (Accept(TokenKind::kComma)) {
        expr->args.push_back(ParseExpr());
      }
    }
    Expect(TokenKind::kRParen, "')'");
    return expr;
  }

  // Expression precedence (lowest first): || , && , ! , relational , + - , * / %.
  ExprPtr ParseExpr() { return ParseOr(); }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (At(TokenKind::kOr)) {
      int line = Next().line;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = "||";
      node->line = line;
      node->lhs = std::move(lhs);
      node->rhs = ParseAnd();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseNot();
    while (At(TokenKind::kAnd)) {
      int line = Next().line;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = "&&";
      node->line = line;
      node->lhs = std::move(lhs);
      node->rhs = ParseNot();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseNot() {
    if (At(TokenKind::kNot)) {
      int line = Next().line;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kNot;
      node->line = line;
      node->rhs = ParseNot();
      return node;
    }
    return ParseRelational();
  }

  ExprPtr ParseRelational() {
    ExprPtr lhs = ParseAdditive();
    std::string op;
    switch (Peek().kind) {
      case TokenKind::kGt: op = ">"; break;
      case TokenKind::kLt: op = "<"; break;
      case TokenKind::kGe: op = ">="; break;
      case TokenKind::kLe: op = "<="; break;
      case TokenKind::kEq: op = "=="; break;
      case TokenKind::kNe: op = "!="; break;
      default:
        return lhs;
    }
    int line = Next().line;
    auto node = std::make_unique<Expr>();
    node->kind = Expr::Kind::kBinary;
    node->op = op;
    node->line = line;
    node->lhs = std::move(lhs);
    node->rhs = ParseAdditive();
    return node;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseTerm();
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      std::string op = At(TokenKind::kPlus) ? "+" : "-";
      int line = Next().line;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->line = line;
      node->lhs = std::move(lhs);
      node->rhs = ParseTerm();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParseTerm() {
    ExprPtr lhs = ParsePrimary();
    while (At(TokenKind::kStar) || At(TokenKind::kSlash) || At(TokenKind::kPercent)) {
      std::string op = At(TokenKind::kStar) ? "*" : At(TokenKind::kSlash) ? "/" : "%";
      int line = Next().line;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = op;
      node->line = line;
      node->lhs = std::move(lhs);
      node->rhs = ParsePrimary();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr ParsePrimary() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kMinus) {
      // Unary minus: -x parses as (0 - x).
      int line = Next().line;
      auto zero = std::make_unique<Expr>();
      zero->kind = Expr::Kind::kInt;
      zero->line = line;
      zero->int_value = 0;
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kBinary;
      node->op = "-";
      node->line = line;
      node->lhs = std::move(zero);
      node->rhs = ParsePrimary();
      return node;
    }
    if (t.kind == TokenKind::kInt) {
      Next();
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kInt;
      node->line = t.line;
      node->int_value = t.int_value;
      return node;
    }
    if (t.kind == TokenKind::kLParen) {
      Next();
      ExprPtr inner = ParseExpr();
      Expect(TokenKind::kRParen, "')'");
      return inner;
    }
    if (t.kind == TokenKind::kIdent) {
      Token name = Next();
      if (At(TokenKind::kLParen)) {
        return ParseCall(name);
      }
      if (Accept(TokenKind::kDot)) {
        Token field = Expect(TokenKind::kIdent, "field name after '.'");
        auto node = std::make_unique<Expr>();
        node->kind = Expr::Kind::kField;
        node->line = name.line;
        node->name = name.text;
        node->field = field.text;
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = Expr::Kind::kIdent;
      node->line = name.line;
      node->name = name.text;
      return node;
    }
    throw CompileError(t.line, "expected an expression, found '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

PolicySource Parse(const std::string& source) { return Parser(Tokenize(source)).Run(); }

}  // namespace hipec::lang
