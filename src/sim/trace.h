// A lightweight execution tracer: fixed-capacity ring buffer of typed events with virtual
// timestamps. Free when disabled (one branch per hook); when enabled, subsystems record
// faults, evictions, policy events, reclamations, checker activity, and IPC — the record a
// policy author reads to understand what their replacement policy actually did.
#ifndef HIPEC_SIM_TRACE_H_
#define HIPEC_SIM_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace hipec::sim {

enum class TraceCategory : uint8_t {
  kFault,     // page fault taken (a=task id, b=vaddr)
  kFill,      // data fill (a=object id, b=offset; code 0=zero, 1=disk, 2=pager)
  kEviction,  // page evicted (a=frame number, b=object id)
  kPolicy,    // HiPEC event executed (a=container id, b=event number; code=outcome)
  kReclaim,   // frames reclaimed (a=container id, b=count; code 0=normal 1=forced)
  kChecker,   // checker activity (code 0=wakeup 1=timeout-detected, a=interval ns;
              //                   code 2=kill, a=victim container id, b=overrun ns)
  kIpc,       // pager message (a=object id, b=offset; code=message id)
  kManager,   // frame-manager decision (a=container, b=n; code 0=grant 1=reject 2=migrate
              //                         3=flush-exchange 4=flush-sync 5=flush-clean)
};

struct TraceEvent {
  Nanos time;
  TraceCategory category;
  uint16_t code;
  uint64_t a;
  uint64_t b;

  std::string ToString() const;
};

class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096) : capacity_(capacity) {}

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  void Record(Nanos time, TraceCategory category, uint16_t code, uint64_t a, uint64_t b) {
    if (!enabled_) {
      return;
    }
    if (events_.size() < capacity_) {
      events_.push_back(TraceEvent{time, category, code, a, b});
    } else {
      events_[next_] = TraceEvent{time, category, code, a, b};
    }
    next_ = (next_ + 1) % capacity_;
    ++total_recorded_;
  }

  // Events in chronological order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;

  // Only events of one category.
  std::vector<TraceEvent> Snapshot(TraceCategory category) const;

  // Text dump, one event per line.
  std::string Dump() const;

  // Machine-readable dump: one JSON object with drop accounting plus the surviving events in
  // chronological order. This is what the scenario invariant auditor prints on a violation,
  // so failures carry an ingestible record of what led up to them.
  std::string DumpJson() const;

  size_t size() const { return events_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  // Events overwritten because the ring wrapped; Snapshot() can never return them.
  uint64_t dropped() const { return total_recorded_ - events_.size(); }
  void Clear() {
    events_.clear();
    next_ = 0;
    total_recorded_ = 0;
  }

 private:
  size_t capacity_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_TRACE_H_
