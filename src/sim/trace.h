// A lightweight execution tracer: fixed-capacity ring buffer of typed events with virtual
// timestamps. Free when disabled (one branch per hook); when enabled, subsystems record
// faults, evictions, policy events, reclamations, checker activity, and IPC — the record a
// policy author reads to understand what their replacement policy actually did.
#ifndef HIPEC_SIM_TRACE_H_
#define HIPEC_SIM_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace hipec::sim {

enum class TraceCategory : uint8_t {
  kFault,     // page fault taken (a=task id, b=vaddr)
  kFill,      // data fill (a=object id, b=offset; code 0=zero, 1=disk, 2=pager)
  kEviction,  // page evicted (a=frame number, b=object id)
  kPolicy,    // HiPEC event executed (a=container id, b=event number; code=outcome)
  kReclaim,   // frames reclaimed (a=container id, b=count; code 0=normal 1=forced)
  kChecker,   // checker activity (code 0=wakeup 1=timeout-detected, a=interval ns;
              //                   code 2=kill, a=victim container id, b=overrun ns)
  kIpc,       // pager message (a=object id, b=offset; code=message id)
  kManager,   // frame-manager decision (a=container, b=n; code 0=grant 1=reject 2=migrate
              //                         3=flush-exchange 4=flush-sync 5=flush-clean)
};

struct TraceEvent {
  Nanos time;
  TraceCategory category;
  uint16_t code;
  uint64_t a;
  uint64_t b;

  std::string ToString() const;
};

// Thread-safety: single-threaded (and lock-free) by default. EnableConcurrent(), called
// before worker threads exist, routes Record() through a leaf mutex (rank kLeaf, DESIGN.md
// §10); the enabled check stays a lock-free relaxed load so a disabled tracer costs one
// branch per hook in either mode.
class Tracer {
 public:
  explicit Tracer(size_t capacity = 4096) : capacity_(capacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  void EnableConcurrent() { concurrent_ = true; }

  void Record(Nanos time, TraceCategory category, uint16_t code, uint64_t a, uint64_t b) {
    if (!enabled()) {
      return;
    }
    if (concurrent_) {
      std::lock_guard<std::mutex> lock(mu_);
      RecordLocked(time, category, code, a, b);
      return;
    }
    RecordLocked(time, category, code, a, b);
  }

  // Events in chronological order (oldest surviving first).
  std::vector<TraceEvent> Snapshot() const;

  // Only events of one category.
  std::vector<TraceEvent> Snapshot(TraceCategory category) const;

  // Text dump, one event per line.
  std::string Dump() const;

  // Machine-readable dump: one JSON object with drop accounting plus the surviving events in
  // chronological order. This is what the scenario invariant auditor prints on a violation,
  // so failures carry an ingestible record of what led up to them.
  std::string DumpJson() const;

  size_t size() const { return events_.size(); }
  uint64_t total_recorded() const { return total_recorded_; }
  // Events overwritten because the ring wrapped; Snapshot() can never return them.
  uint64_t dropped() const { return total_recorded_ - events_.size(); }
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    next_ = 0;
    total_recorded_ = 0;
  }

 private:
  void RecordLocked(Nanos time, TraceCategory category, uint16_t code, uint64_t a,
                    uint64_t b) {
    if (events_.size() < capacity_) {
      events_.push_back(TraceEvent{time, category, code, a, b});
    } else {
      events_[next_] = TraceEvent{time, category, code, a, b};
    }
    next_ = (next_ + 1) % capacity_;
    ++total_recorded_;
  }

  size_t capacity_;
  std::atomic<bool> enabled_{false};
  bool concurrent_ = false;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  size_t next_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_TRACE_H_
