#include "sim/clock.h"

#include <utility>

#include "sim/check.h"

namespace hipec::sim {

void VirtualClock::AdvanceSlow(Nanos delta) {
  HIPEC_CHECK_MSG(delta >= 0, "cannot advance the clock backwards (delta=" << delta << ")");
  HIPEC_CHECK_MSG(!dispatching_, "Advance() called from inside an event callback");
  AdvanceTo(now_ + delta);
}

void VirtualClock::AdvanceTo(Nanos when) {
  if (when <= now_) {
    return;
  }
  HIPEC_CHECK_MSG(!dispatching_, "AdvanceTo() called from inside an event callback");
  DispatchDueEvents(when);
  now_ = when;
}

VirtualClock::EventId VirtualClock::ScheduleAt(Nanos when, Callback fn, std::string label) {
  HIPEC_CHECK_MSG(when >= now_, "event scheduled in the past: " << label);
  EventId id = next_id_++;
  events_.emplace(Key{when, next_seq_++}, Event{id, std::move(fn), std::move(label)});
  live_ids_.insert(id);
  return id;
}

VirtualClock::EventId VirtualClock::ScheduleAfter(Nanos delta, Callback fn, std::string label) {
  HIPEC_CHECK_MSG(delta >= 0, "negative delay for event: " << label);
  return ScheduleAt(now_ + delta, std::move(fn), std::move(label));
}

bool VirtualClock::Cancel(EventId id) {
  auto live = live_ids_.find(id);
  if (live == live_ids_.end()) {
    return false;
  }
  live_ids_.erase(live);
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->second.id == id) {
      events_.erase(it);
      return true;
    }
  }
  return false;
}

Nanos VirtualClock::next_deadline() const {
  if (events_.empty()) {
    return -1;
  }
  return events_.begin()->first.first;
}

RealClock::EventId RealClock::ScheduleAt(Nanos when, Callback fn, std::string label) {
  std::lock_guard<std::mutex> lock(mu_);
  EventId id = next_id_++;
  events_.emplace(Key{when, next_seq_++}, Event{id, std::move(fn), std::move(label)});
  return id;
}

RealClock::EventId RealClock::ScheduleAfter(Nanos delta, Callback fn, std::string label) {
  HIPEC_CHECK_MSG(delta >= 0, "negative delay for event: " << label);
  return ScheduleAt(now() + delta, std::move(fn), std::move(label));
}

bool RealClock::Cancel(EventId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->second.id == id) {
      events_.erase(it);
      return true;
    }
  }
  return false;
}

size_t RealClock::pending_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

Nanos RealClock::next_deadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.empty() ? -1 : events_.begin()->first.first;
}

size_t RealClock::PollDue(bool fire_all) {
  // Pop due events one at a time and run each callback outside the internal mutex so
  // callbacks can schedule or cancel without deadlocking. The caller serializes against
  // other threads touching the callbacks' state (DESIGN.md §10).
  size_t fired = 0;
  for (;;) {
    Event event;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (events_.empty() || (!fire_all && events_.begin()->first.first > now())) {
        return fired;
      }
      auto it = events_.begin();
      event = std::move(it->second);
      events_.erase(it);
    }
    event.fn();
    ++fired;
  }
}

void VirtualClock::DispatchDueEvents(Nanos horizon) {
  // Events fired here may schedule new events, possibly also due before `horizon`; the loop
  // re-inspects the queue head every iteration so those fire in correct order too.
  while (!events_.empty() && events_.begin()->first.first <= horizon) {
    auto it = events_.begin();
    Nanos deadline = it->first.first;
    Event event = std::move(it->second);
    events_.erase(it);
    live_ids_.erase(event.id);
    now_ = deadline;  // Callbacks observe their own deadline as now().
    dispatching_ = true;
    try {
      event.fn();
    } catch (...) {
      dispatching_ = false;
      throw;
    }
    dispatching_ = false;
  }
}

}  // namespace hipec::sim
