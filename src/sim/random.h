// Deterministic pseudo-random number generation for reproducible experiments.
//
// xoshiro256** seeded via SplitMix64. All workload generators take an explicit seed so every
// table/figure regenerates identically run-to-run.
#ifndef HIPEC_SIM_RANDOM_H_
#define HIPEC_SIM_RANDOM_H_

#include <array>
#include <cmath>
#include <cstdint>

#include "sim/check.h"

namespace hipec::sim {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x48695045'43313934ULL) {  // "HiPEC1994"
    // SplitMix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  // Next raw 64-bit value (xoshiro256**).
  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0. Uses rejection to avoid modulo bias.
  uint64_t Below(uint64_t bound) {
    HIPEC_CHECK(bound > 0);
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    HIPEC_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> state_;
};

// Zipf-distributed ranks in [0, n): rank r drawn with probability proportional to
// 1 / (r+1)^theta. Used by skewed memory-access workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed) : n_(n), theta_(theta), rng_(seed) {
    HIPEC_CHECK(n > 0);
    zeta_n_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - FastPow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zeta_n_);
  }

  uint64_t Next() {
    // Gray et al., "Quickly generating billion-record synthetic databases".
    double u = rng_.Uniform();
    double uz = u * zeta_n_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + FastPow(0.5, theta_)) {
      return 1;
    }
    auto rank = static_cast<uint64_t>(static_cast<double>(n_) *
                                      FastPow(eta_ * u - eta_ + 1.0, alpha_));
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  static double FastPow(double base, double exp) { return std::pow(base, exp); }
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / FastPow(static_cast<double>(i), theta);
    }
    return sum;
  }

  uint64_t n_;
  double theta_;
  Rng rng_;
  double zeta_n_, zeta2_, alpha_, eta_;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_RANDOM_H_
