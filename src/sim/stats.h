// Counters and latency recording for experiments and tests.
#ifndef HIPEC_SIM_STATS_H_
#define HIPEC_SIM_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace hipec::sim {

// Accumulates scalar samples and reports summary statistics. Keeps all samples (experiment
// scale here is modest), so exact percentiles are available.
class LatencyRecorder {
 public:
  void Record(Nanos value) {
    samples_.push_back(value);
    sum_ += value;
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  Nanos sum() const { return sum_; }
  double Mean() const { return samples_.empty() ? 0.0 : static_cast<double>(sum_) / count(); }
  Nanos Min() const;
  Nanos Max() const;
  // p in [0, 100]. Nearest-rank percentile.
  Nanos Percentile(double p) const;
  void Clear() {
    samples_.clear();
    sum_ = 0;
    sorted_ = false;
  }

 private:
  void Sort() const;

  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
  Nanos sum_ = 0;
};

// A named bag of monotonically increasing counters. Every subsystem exposes one so tests can
// assert on event counts (faults taken, commands decoded, pages flushed, ...).
class CounterSet {
 public:
  void Add(const std::string& name, int64_t delta = 1) { counters_[name] += delta; }
  int64_t Get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, int64_t>& all() const { return counters_; }
  void Clear() { counters_.clear(); }
  // Renders "name=value" lines, sorted by name.
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> counters_;
};

// Formats virtual nanoseconds as a human-readable duration ("4016.5 ms", "19.0 us").
std::string FormatNanos(Nanos ns);

}  // namespace hipec::sim

#endif  // HIPEC_SIM_STATS_H_
