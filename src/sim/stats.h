// Counters and latency recording for experiments and tests.
//
// Concurrency: everything here is single-threaded by default and pays no synchronization —
// the deterministic execution mode stays exactly as fast and as reproducible as before. A
// component running under ExecMode::kRealThreads calls EnableConcurrent() on its sets at
// construction time (before worker threads exist); from then on Add() is a relaxed atomic
// into a per-thread slab (no cross-core cache-line ping-pong on hot counters) and readers
// sum the slabs. The registry itself is always thread-safe: interning is rare and cold.
#ifndef HIPEC_SIM_STATS_H_
#define HIPEC_SIM_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/clock.h"

namespace hipec::sim {

// Accumulates scalar samples and reports summary statistics. Keeps all samples (experiment
// scale here is modest), so exact percentiles are available. Min/Max are running values
// maintained by Record — querying them never forces the percentile sort.
//
// EnableConcurrent() makes Record() safe from many threads (one leaf mutex; recording sites
// are far off the per-access hot path). Queries are snapshot-style: call them after the
// recording threads have quiesced, as the tests and benches do.
class LatencyRecorder {
 public:
  void Record(Nanos value) {
    if (concurrent_) {
      std::lock_guard<std::mutex> lock(mu_);
      RecordLocked(value);
      return;
    }
    RecordLocked(value);
  }

  void EnableConcurrent() { concurrent_ = true; }

  size_t count() const { return samples_.size(); }
  Nanos sum() const { return sum_; }
  double Mean() const { return samples_.empty() ? 0.0 : static_cast<double>(sum_) / count(); }
  Nanos Min() const;
  Nanos Max() const;
  // p in [0, 100]. Nearest-rank percentile.
  Nanos Percentile(double p) const;
  void Clear() {
    samples_.clear();
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    sorted_ = false;
  }

 private:
  void RecordLocked(Nanos value) {
    if (samples_.empty() || value < min_) {
      min_ = value;
    }
    if (samples_.empty() || value > max_) {
      max_ = value;
    }
    samples_.push_back(value);
    sum_ += value;
    sorted_ = false;
  }
  void Sort() const;

  mutable std::vector<Nanos> samples_;
  mutable bool sorted_ = false;
  Nanos sum_ = 0;
  Nanos min_ = 0;
  Nanos max_ = 0;
  bool concurrent_ = false;
  std::mutex mu_;
};

// A dense counter index. Names are interned into small integers exactly once (normally by a
// namespace-scope initializer in the subsystem's .cc file), and every CounterSet stores its
// values in a plain array indexed by id — the fault path never touches a string or a tree.
using CounterId = uint32_t;

// The process-wide name <-> id table. Thread-safe: ids are dense, stable for the process
// lifetime, and shared by every CounterSet. Names live in a deque so the references NameOf()
// hands out stay valid across later interning.
class CounterRegistry {
 public:
  static CounterRegistry& Instance();

  // Returns the id for `name`, interning it on first sight. Idempotent: re-registering an
  // existing name returns the same id.
  CounterId Intern(const std::string& name);

  // Returns the id for `name` if it was ever interned, or kInvalid.
  static constexpr CounterId kInvalid = ~CounterId{0};
  CounterId Find(const std::string& name) const;

  const std::string& NameOf(CounterId id) const;
  size_t size() const;

 private:
  CounterRegistry() = default;
  mutable std::mutex mu_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, CounterId> index_;
};

// Call-site shorthand for static-initializer interning:
//   const sim::CounterId kFaults = sim::InternCounter("kernel.page_faults");
inline CounterId InternCounter(const char* name) {
  return CounterRegistry::Instance().Intern(name);
}

// A named bag of monotonically increasing counters. Every subsystem exposes one so tests can
// assert on event counts (faults taken, commands decoded, pages flushed, ...).
//
// The hot path is Add(CounterId): one bounds check (taken only when the registry grew since
// this set last resized, or never for sets touched after static init) plus an indexed add.
// The string-keyed API is a thin wrapper kept for tests, ad-hoc probes and ToString().
//
// Concurrent mode (EnableConcurrent, flipped before worker threads exist): values live in
// kSlabs thread-striped copies of the counter array, each slab cacheline-padded from its
// neighbours; Add() is one relaxed fetch_add into the caller's slab and readers sum across
// slabs. Counters interned after the arrays were sized fall back to a mutex-protected
// overflow map — correctness for the rare case, zero cost for the common one.
class CounterSet {
 public:
  void Add(CounterId id, int64_t delta = 1) {
    if (legacy_string_lookups_) [[unlikely]] {
      AddViaLegacyLookup(id, delta);
      return;
    }
    if (id >= capacity_) [[unlikely]] {
      AddSlow(id, delta);
      return;
    }
    std::atomic<int64_t>& slot = values_[slab_base() + id];
    if (!concurrent_) {
      // Single-threaded: plain load/add/store, same codegen as the pre-atomic int64 add.
      slot.store(slot.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
    } else {
      slot.fetch_add(delta, std::memory_order_relaxed);
    }
  }

  // Switches this set to thread-striped storage. Must be called before any thread other than
  // the caller touches the set (kernel construction time in real-threads mode).
  void EnableConcurrent();
  bool concurrent() const { return concurrent_; }

  // A/B switch for benchmarking: when enabled, every Add(CounterId) re-does the work the
  // pre-interning implementation did per call — construct the key string and look it up in a
  // string-keyed hash map — before landing the delta in the same dense slot. Values stay
  // identical either way; only the per-call cost changes. bench_faultpath's pre_pr
  // configuration turns this on so "faults/sec before interning" is measured, not estimated.
  static void SetLegacyStringLookups(bool enabled) { legacy_string_lookups_ = enabled; }
  static bool legacy_string_lookups() { return legacy_string_lookups_; }

  // Sums across slabs (exact once writers quiesce; monotonic-approximate while they run).
  int64_t Get(CounterId id) const;

  // String-keyed wrappers over the interned fast path.
  void Add(const std::string& name, int64_t delta = 1) {
    Add(CounterRegistry::Instance().Intern(name), delta);
  }
  int64_t Get(const std::string& name) const {
    CounterId id = CounterRegistry::Instance().Find(name);
    return id == CounterRegistry::kInvalid ? 0 : Get(id);
  }

  // Materializes the non-zero counters, keyed by name (sorted). Zero-valued counters are
  // indistinguishable from never-touched ones in the dense representation, so they do not
  // appear — Get() still reports 0 for both.
  std::map<std::string, int64_t> all() const;
  void Clear();
  // Renders "name=value" lines, sorted by name (non-zero counters only).
  std::string ToString() const;

 private:
  static constexpr size_t kSlabs = 8;

  // Round the per-slab stride up to a full 64-byte cache line of int64s so hot counters in
  // different slabs never share a line.
  static size_t PadStride(size_t n) { return (n + 7) & ~size_t{7}; }
  // Inline because Add() runs several times per fault; the thread-striping arithmetic only
  // matters once EnableConcurrent has switched the set over.
  size_t slab_base() const {
    if (!concurrent_) [[likely]] {
      return 0;
    }
    return ConcurrentSlabBase();
  }
  size_t ConcurrentSlabBase() const;
  void AddSlow(CounterId id, int64_t delta);
  void Grow(CounterId id);
  void AddViaLegacyLookup(CounterId id, int64_t delta);

  std::unique_ptr<std::atomic<int64_t>[]> values_;
  size_t capacity_ = 0;  // ids [0, capacity_) hit the dense arrays
  size_t stride_ = 0;    // padded distance between slabs
  size_t slabs_ = 1;
  bool concurrent_ = false;
  // Ids interned after EnableConcurrent sized the slabs (growth would race with writers).
  mutable std::mutex overflow_mu_;
  std::map<CounterId, int64_t> overflow_;
  // Pre-interning cost emulation: name -> id, populated lazily while the legacy switch is on.
  std::unordered_map<std::string, CounterId> legacy_index_;
  static inline bool legacy_string_lookups_ = false;
};

// Formats virtual nanoseconds as a human-readable duration ("4016.5 ms", "19.0 us").
std::string FormatNanos(Nanos ns);

}  // namespace hipec::sim

#endif  // HIPEC_SIM_STATS_H_
