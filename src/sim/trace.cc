#include "sim/trace.h"

#include <sstream>

#include "sim/stats.h"

namespace hipec::sim {

namespace {
const char* CategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kFault:
      return "FAULT";
    case TraceCategory::kFill:
      return "FILL";
    case TraceCategory::kEviction:
      return "EVICT";
    case TraceCategory::kPolicy:
      return "POLICY";
    case TraceCategory::kReclaim:
      return "RECLAIM";
    case TraceCategory::kChecker:
      return "CHECKER";
    case TraceCategory::kIpc:
      return "IPC";
    case TraceCategory::kManager:
      return "MANAGER";
  }
  return "?";
}
}  // namespace

std::string TraceEvent::ToString() const {
  std::ostringstream os;
  os << "[" << FormatNanos(time) << "] " << CategoryName(category) << " code=" << code
     << " a=0x" << std::hex << a << " b=0x" << b << std::dec;
  return os.str();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  // Snapshots are cold (dumps, test assertions); take the ring lock unconditionally so a
  // concurrent-mode reader never sees a half-written event.
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  if (events_.size() < capacity_) {
    out = events_;
  } else {
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(next_ + i) % events_.size()]);
    }
  }
  return out;
}

std::vector<TraceEvent> Tracer::Snapshot(TraceCategory category) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& event : Snapshot()) {
    if (event.category == category) {
      out.push_back(event);
    }
  }
  return out;
}

std::string Tracer::Dump() const {
  std::ostringstream os;
  for (const TraceEvent& event : Snapshot()) {
    os << event.ToString() << "\n";
  }
  return os.str();
}

std::string Tracer::DumpJson() const {
  std::ostringstream os;
  os << "{\"total_recorded\":" << total_recorded_ << ",\"dropped\":" << dropped()
     << ",\"events\":[";
  bool first = true;
  for (const TraceEvent& event : Snapshot()) {
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"t\":" << event.time << ",\"cat\":\"" << CategoryName(event.category)
       << "\",\"code\":" << event.code << ",\"a\":" << event.a << ",\"b\":" << event.b << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace hipec::sim
