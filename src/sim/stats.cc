#include "sim/stats.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/check.h"

namespace hipec::sim {

Nanos LatencyRecorder::Min() const {
  HIPEC_CHECK(!samples_.empty());
  Sort();
  return samples_.front();
}

Nanos LatencyRecorder::Max() const {
  HIPEC_CHECK(!samples_.empty());
  Sort();
  return samples_.back();
}

Nanos LatencyRecorder::Percentile(double p) const {
  HIPEC_CHECK(!samples_.empty());
  HIPEC_CHECK(p >= 0.0 && p <= 100.0);
  Sort();
  if (p == 0.0) {
    return samples_.front();
  }
  auto rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank - 1];
}

void LatencyRecorder::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

std::string CounterSet::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters_) {
    os << name << "=" << value << "\n";
  }
  return os.str();
}

std::string FormatNanos(Nanos ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  // The paper reports elapsed times in msec up to tens of seconds (Table 3); match that.
  if (ns >= 100 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / kSecond);
  } else if (ns >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", v / kMillisecond);
  } else if (ns >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace hipec::sim
