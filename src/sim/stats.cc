#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/check.h"

namespace hipec::sim {

Nanos LatencyRecorder::Min() const {
  HIPEC_CHECK(!samples_.empty());
  return min_;
}

Nanos LatencyRecorder::Max() const {
  HIPEC_CHECK(!samples_.empty());
  return max_;
}

Nanos LatencyRecorder::Percentile(double p) const {
  HIPEC_CHECK(!samples_.empty());
  HIPEC_CHECK(p >= 0.0 && p <= 100.0);
  Sort();
  if (p == 0.0) {
    return samples_.front();
  }
  auto rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank - 1];
}

void LatencyRecorder::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

CounterRegistry& CounterRegistry::Instance() {
  static CounterRegistry registry;
  return registry;
}

CounterId CounterRegistry::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = index_.try_emplace(name, static_cast<CounterId>(names_.size()));
  if (inserted) {
    names_.push_back(name);
  }
  return it->second;
}

CounterId CounterRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

const std::string& CounterRegistry::NameOf(CounterId id) const {
  // The reference stays valid after unlock: names_ is a deque and entries are never erased.
  std::lock_guard<std::mutex> lock(mu_);
  return names_[id];
}

size_t CounterRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

size_t CounterSet::ConcurrentSlabBase() const {
  // Threads are striped round-robin over slabs at first touch; the id is process-global so a
  // thread lands on the same slab in every set (helpful locality, not a correctness need).
  static std::atomic<size_t> next_thread{0};
  thread_local size_t thread_slab = next_thread.fetch_add(1, std::memory_order_relaxed);
  return stride_ * (thread_slab % slabs_);
}

void CounterSet::EnableConcurrent() {
  HIPEC_CHECK_MSG(!concurrent_, "EnableConcurrent called twice");
  concurrent_ = true;
  slabs_ = kSlabs;
  // Size for every id interned so far; later interns take the overflow path.
  size_t want = PadStride(CounterRegistry::Instance().size());
  stride_ = want;
  auto fresh = std::make_unique<std::atomic<int64_t>[]>(slabs_ * stride_);
  for (size_t i = 0; i < slabs_ * stride_; ++i) {
    fresh[i].store(0, std::memory_order_relaxed);
  }
  // Carry over anything recorded single-threaded before the switch (slab 0).
  for (size_t i = 0; i < capacity_; ++i) {
    fresh[i].store(values_[i].load(std::memory_order_relaxed), std::memory_order_relaxed);
  }
  values_ = std::move(fresh);
  capacity_ = CounterRegistry::Instance().size();
}

void CounterSet::AddSlow(CounterId id, int64_t delta) {
  if (!concurrent_) {
    Grow(id);
    values_[id].store(values_[id].load(std::memory_order_relaxed) + delta,
                      std::memory_order_relaxed);
    return;
  }
  // Growing the slab arrays would race with concurrent writers; park late ids in a map.
  std::lock_guard<std::mutex> lock(overflow_mu_);
  overflow_[id] += delta;
}

int64_t CounterSet::Get(CounterId id) const {
  int64_t total = 0;
  if (id < capacity_) {
    for (size_t s = 0; s < slabs_; ++s) {
      total += values_[s * stride_ + id].load(std::memory_order_relaxed);
    }
  }
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    auto it = overflow_.find(id);
    if (it != overflow_.end()) {
      total += it->second;
    }
  }
  return total;
}

void CounterSet::AddViaLegacyLookup(CounterId id, int64_t delta) {
  // Faithfully re-do what the string-keyed implementation did per Add: materialize the key
  // (call sites passed string literals, so every call constructed a std::string — heap
  // allocation for names past the SSO limit) and hash it into a string-keyed map. The delta
  // still lands in the dense slot so Get()/all() are oblivious to the mode.
  std::string key(CounterRegistry::Instance().NameOf(id).c_str());
  auto [it, inserted] = legacy_index_.try_emplace(std::move(key), id);
  CounterId slot = it->second;
  if (slot >= capacity_) [[unlikely]] {
    Grow(slot);
  }
  values_[slot].store(values_[slot].load(std::memory_order_relaxed) + delta,
                      std::memory_order_relaxed);
}

void CounterSet::Grow(CounterId id) {
  // Single-threaded only (concurrent sets size once in EnableConcurrent). Size to the whole
  // registry (not just id+1): after static init the registry rarely grows, so one resize
  // typically covers every counter this set will ever see.
  size_t want =
      std::max<size_t>(CounterRegistry::Instance().size(), static_cast<size_t>(id) + 1);
  auto fresh = std::make_unique<std::atomic<int64_t>[]>(want);
  for (size_t i = 0; i < want; ++i) {
    fresh[i].store(i < capacity_ ? values_[i].load(std::memory_order_relaxed) : 0,
                   std::memory_order_relaxed);
  }
  values_ = std::move(fresh);
  capacity_ = want;
  stride_ = want;
}

std::map<std::string, int64_t> CounterSet::all() const {
  std::map<std::string, int64_t> out;
  const CounterRegistry& registry = CounterRegistry::Instance();
  for (CounterId id = 0; id < capacity_; ++id) {
    int64_t value = Get(id);
    if (value != 0) {
      out.emplace(registry.NameOf(id), value);
    }
  }
  if (concurrent_) {
    std::lock_guard<std::mutex> lock(overflow_mu_);
    for (const auto& [id, value] : overflow_) {
      if (value != 0 && id >= capacity_) {
        out.emplace(registry.NameOf(id), value);
      }
    }
  }
  return out;
}

void CounterSet::Clear() {
  for (size_t i = 0; i < slabs_ * stride_ && capacity_ > 0; ++i) {
    values_[i].store(0, std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(overflow_mu_);
  overflow_.clear();
}

std::string CounterSet::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : all()) {
    os << name << "=" << value << "\n";
  }
  return os.str();
}

std::string FormatNanos(Nanos ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  // The paper reports elapsed times in msec up to tens of seconds (Table 3); match that.
  if (ns >= 100 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / kSecond);
  } else if (ns >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", v / kMillisecond);
  } else if (ns >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace hipec::sim
