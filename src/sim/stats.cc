#include "sim/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "sim/check.h"

namespace hipec::sim {

Nanos LatencyRecorder::Min() const {
  HIPEC_CHECK(!samples_.empty());
  return min_;
}

Nanos LatencyRecorder::Max() const {
  HIPEC_CHECK(!samples_.empty());
  return max_;
}

Nanos LatencyRecorder::Percentile(double p) const {
  HIPEC_CHECK(!samples_.empty());
  HIPEC_CHECK(p >= 0.0 && p <= 100.0);
  Sort();
  if (p == 0.0) {
    return samples_.front();
  }
  auto rank = static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank - 1];
}

void LatencyRecorder::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

CounterRegistry& CounterRegistry::Instance() {
  static CounterRegistry registry;
  return registry;
}

CounterId CounterRegistry::Intern(const std::string& name) {
  auto [it, inserted] = index_.try_emplace(name, static_cast<CounterId>(names_.size()));
  if (inserted) {
    names_.push_back(name);
  }
  return it->second;
}

CounterId CounterRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

void CounterSet::AddViaLegacyLookup(CounterId id, int64_t delta) {
  // Faithfully re-do what the string-keyed implementation did per Add: materialize the key
  // (call sites passed string literals, so every call constructed a std::string — heap
  // allocation for names past the SSO limit) and hash it into a string-keyed map. The delta
  // still lands in the dense slot so Get()/all() are oblivious to the mode.
  std::string key(CounterRegistry::Instance().NameOf(id).c_str());
  auto [it, inserted] = legacy_index_.try_emplace(std::move(key), id);
  CounterId slot = it->second;
  if (slot >= values_.size()) [[unlikely]] {
    Grow(slot);
  }
  values_[slot] += delta;
}

void CounterSet::Grow(CounterId id) {
  // Size to the whole registry (not just id+1): after static init the registry rarely grows,
  // so one resize typically covers every counter this set will ever see.
  size_t want = std::max<size_t>(CounterRegistry::Instance().size(), static_cast<size_t>(id) + 1);
  values_.resize(want, 0);
}

std::map<std::string, int64_t> CounterSet::all() const {
  std::map<std::string, int64_t> out;
  const CounterRegistry& registry = CounterRegistry::Instance();
  for (CounterId id = 0; id < values_.size(); ++id) {
    if (values_[id] != 0) {
      out.emplace(registry.NameOf(id), values_[id]);
    }
  }
  return out;
}

std::string CounterSet::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : all()) {
    os << name << "=" << value << "\n";
  }
  return os.str();
}

std::string FormatNanos(Nanos ns) {
  char buf[64];
  double v = static_cast<double>(ns);
  // The paper reports elapsed times in msec up to tens of seconds (Table 3); match that.
  if (ns >= 100 * kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3f s", v / kSecond);
  } else if (ns >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", v / kMillisecond);
  } else if (ns >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.1f us", v / kMicrosecond);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(ns));
  }
  return buf;
}

}  // namespace hipec::sim
