// Lightweight invariant checking for the simulator.
//
// Simulator invariant violations are programming errors, but the test suite needs to observe
// them without aborting the process, so HIPEC_CHECK throws rather than calling std::abort().
#ifndef HIPEC_SIM_CHECK_H_
#define HIPEC_SIM_CHECK_H_

#include <sstream>
#include <stdexcept>
#include <string>

namespace hipec::sim {

// Thrown when an internal simulator invariant is violated.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line,
                                     const std::string& message) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw CheckFailure(os.str());
}

}  // namespace internal
}  // namespace hipec::sim

#define HIPEC_CHECK(expr)                                                 \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::hipec::sim::internal::CheckFailed(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

#define HIPEC_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream hipec_check_os_;                                   \
      hipec_check_os_ << msg;                                               \
      ::hipec::sim::internal::CheckFailed(#expr, __FILE__, __LINE__,        \
                                          hipec_check_os_.str());           \
    }                                                                       \
  } while (false)

#endif  // HIPEC_SIM_CHECK_H_
