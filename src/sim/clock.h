// Discrete virtual-time clock.
//
// Every cost in the reproduction (syscall entry, command decode, disk service, ...) is charged
// to a VirtualClock instead of being measured on the host. Components that the paper runs as
// kernel threads (the security checker, the pageout daemon) and asynchronous completions (disk
// write-back) are modelled as scheduled events that fire when simulated time passes their
// deadline.
#ifndef HIPEC_SIM_CLOCK_H_
#define HIPEC_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_set>

namespace hipec::sim {

// Virtual nanoseconds. Signed so that subtraction of timestamps is safe.
using Nanos = int64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

// A discrete-event virtual clock.
//
// The "foreground" computation (an application touching memory, the kernel handling a fault)
// advances the clock with Advance(); any events whose deadline is crossed fire, in deadline
// order, before Advance() returns. Event callbacks run *at* their deadline (now() reports the
// deadline while the callback runs) and may schedule further events, but must not call
// Advance() themselves — they represent instantaneous occurrences whose costs are modelled by
// scheduling follow-up events.
class VirtualClock {
 public:
  using EventId = uint64_t;
  using Callback = std::function<void()>;

  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  // Current virtual time.
  Nanos now() const { return now_; }

  // Moves time forward by `delta` (>= 0), firing due events in deadline order. Inlined fast
  // path for the executor's per-command decode charge: when no pending event falls inside the
  // step — the overwhelmingly common case — advancing is a single compare plus an add.
  void Advance(Nanos delta) {
    Nanos when = now_ + delta;
    if (delta >= 0 && !dispatching_ &&
        (events_.empty() || events_.begin()->first.first > when)) [[likely]] {
      now_ = when;
      return;
    }
    AdvanceSlow(delta);  // due events to fire, or a misuse to diagnose
  }

  // Moves time forward to `when` if it is in the future; no-op otherwise.
  void AdvanceTo(Nanos when);

  // Schedules `fn` to run at absolute virtual time `when` (>= now()). Returns an id usable
  // with Cancel(). `label` is kept for diagnostics.
  EventId ScheduleAt(Nanos when, Callback fn, std::string label = "");

  // Schedules `fn` to run `delta` ns from now.
  EventId ScheduleAfter(Nanos delta, Callback fn, std::string label = "");

  // Cancels a pending event. Returns false if it already fired or was never scheduled.
  bool Cancel(EventId id);

  // Number of events still pending.
  size_t pending_events() const { return events_.size(); }

  // Deadline of the earliest pending event, or -1 if none.
  Nanos next_deadline() const;

  // Runs pending events until none remain with deadline <= `until`, advancing time to each
  // event in turn and finally to `until`.
  void RunUntil(Nanos until) { AdvanceTo(until); }

  // True while an event callback is executing (Advance() is then forbidden).
  bool dispatching() const { return dispatching_; }

 private:
  struct Event {
    EventId id;
    Callback fn;
    std::string label;
  };

  // Key: (deadline, sequence) so that same-deadline events fire in scheduling order.
  using Key = std::pair<Nanos, uint64_t>;

  void AdvanceSlow(Nanos delta);
  void DispatchDueEvents(Nanos horizon);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  bool dispatching_ = false;
  std::map<Key, Event> events_;
  std::unordered_set<EventId> live_ids_;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_CLOCK_H_
