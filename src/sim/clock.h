// The clock seam: virtual time for deterministic simulation, monotonic host time for the
// real-threads execution mode.
//
// Every cost in the reproduction (syscall entry, command decode, disk service, ...) is charged
// to a clock instead of being measured ad hoc. Components that the paper runs as kernel
// threads (the security checker, the pageout daemon) and asynchronous completions (disk
// write-back) are modelled as scheduled events that fire when time passes their deadline.
//
// Two implementations sit behind the Clock interface:
//   * VirtualClock — the deterministic discrete-event clock. Advance() moves time and fires
//     due events inline; two runs of the same inputs are bit-for-bit identical.
//   * RealClock — a monotonic wall clock for ExecMode::kRealThreads. Advance() is a no-op
//     (real time passes by itself); scheduled events are held in a mutex-protected deadline
//     queue and fired by explicit PollDue() calls from whoever owns the affected state.
//
// Hot paths that charge per-command costs keep a raw `VirtualClock*` (null in real mode) so
// the deterministic mode pays no virtual dispatch: see KernelContext::Charge() in
// mach/kernel.h.
#ifndef HIPEC_SIM_CLOCK_H_
#define HIPEC_SIM_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_set>

namespace hipec::sim {

// Virtual nanoseconds. Signed so that subtraction of timestamps is safe.
using Nanos = int64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

// How the kernel executes: the deterministic single-threaded reference mode on a
// VirtualClock, or real concurrent threads on a RealClock with real locks.
enum class ExecMode {
  kDeterministic,  // one thread, virtual time, locks compiled to no-ops, bit-for-bit runs
  kRealThreads,    // N threads, monotonic time, real mutexes under the documented hierarchy
};

// The seam both clocks implement. Deadline-queue semantics are shared: events fire in
// (deadline, scheduling order); a callback may schedule or cancel events but must not advance
// time itself.
class Clock {
 public:
  using EventId = uint64_t;
  using Callback = std::function<void()>;

  virtual ~Clock() = default;

  // Current time in nanoseconds (virtual, or monotonic since construction).
  virtual Nanos now() const = 0;

  // Charges `delta` ns of modelled cost. Virtual mode: moves time forward, firing due events.
  // Real mode: no-op — host time passes on its own and modelled costs are not re-charged.
  virtual void Advance(Nanos delta) = 0;

  // Moves time forward to `when` if it is in the future; no-op otherwise (and always a no-op
  // on a real clock).
  virtual void AdvanceTo(Nanos when) = 0;

  // Schedules `fn` to run at absolute time `when` (>= now()). Returns an id usable with
  // Cancel(). `label` is kept for diagnostics.
  virtual EventId ScheduleAt(Nanos when, Callback fn, std::string label = "") = 0;

  // Schedules `fn` to run `delta` ns from now.
  virtual EventId ScheduleAfter(Nanos delta, Callback fn, std::string label = "") = 0;

  // Cancels a pending event. Returns false if it already fired or was never scheduled.
  virtual bool Cancel(EventId id) = 0;

  // Number of events still pending.
  virtual size_t pending_events() const = 0;

  // Deadline of the earliest pending event, or -1 if none.
  virtual Nanos next_deadline() const = 0;

  // True for VirtualClock: same inputs, same outputs, single thread.
  virtual bool deterministic() const = 0;

  // Real clocks: fires events whose deadline has passed (all pending events when
  // `fire_all`), in deadline order, on the calling thread; returns the number fired. The
  // caller must hold whatever lock protects the state the callbacks touch. Virtual clocks
  // fire events from Advance()/AdvanceTo() instead and return 0 here.
  virtual size_t PollDue(bool fire_all = false) {
    (void)fire_all;
    return 0;
  }
};

// The deterministic discrete-event clock.
//
// The "foreground" computation (an application touching memory, the kernel handling a fault)
// advances the clock with Advance(); any events whose deadline is crossed fire, in deadline
// order, before Advance() returns. Event callbacks run *at* their deadline (now() reports the
// deadline while the callback runs) and may schedule further events, but must not call
// Advance() themselves — they represent instantaneous occurrences whose costs are modelled by
// scheduling follow-up events.
//
// `final` matters: hot paths hold a VirtualClock* and the compiler devirtualizes + inlines
// the Advance() fast path through it.
class VirtualClock final : public Clock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  // Current virtual time.
  Nanos now() const override { return now_; }

  // Moves time forward by `delta` (>= 0), firing due events in deadline order. Inlined fast
  // path for the executor's per-command decode charge: when no pending event falls inside the
  // step — the overwhelmingly common case — advancing is a single compare plus an add.
  void Advance(Nanos delta) override {
    Nanos when = now_ + delta;
    if (delta >= 0 && !dispatching_ &&
        (events_.empty() || events_.begin()->first.first > when)) [[likely]] {
      now_ = when;
      return;
    }
    AdvanceSlow(delta);  // due events to fire, or a misuse to diagnose
  }

  void AdvanceTo(Nanos when) override;

  EventId ScheduleAt(Nanos when, Callback fn, std::string label = "") override;
  EventId ScheduleAfter(Nanos delta, Callback fn, std::string label = "") override;
  bool Cancel(EventId id) override;

  size_t pending_events() const override { return events_.size(); }
  Nanos next_deadline() const override;
  bool deterministic() const override { return true; }

  // Runs pending events until none remain with deadline <= `until`, advancing time to each
  // event in turn and finally to `until`.
  void RunUntil(Nanos until) { AdvanceTo(until); }

  // True while an event callback is executing (Advance() is then forbidden).
  bool dispatching() const { return dispatching_; }

  // Stable address of the current virtual time, for the policy JIT's inlined charge fast
  // path. A store through it must satisfy the same precondition as the Advance() fast path:
  // delta >= 0, not dispatching, and no pending event with deadline <= the new time. The JIT
  // guards this with a cached charge_horizon() and bridges into Advance() otherwise.
  Nanos* now_storage() { return &now_; }

  // The guard value for that cached-horizon check: the earliest pending deadline (INT64_MAX
  // when none — any charge is safe), or INT64_MIN while an event callback is dispatching so
  // that every charge bridges into AdvanceSlow and hits the same misuse CHECK the
  // interpreter's Advance() would. Inline (and the class final) because the JIT entry path
  // recomputes it per event.
  Nanos charge_horizon() const {
    if (dispatching_) [[unlikely]] {
      return INT64_MIN;
    }
    return events_.empty() ? INT64_MAX : events_.begin()->first.first;
  }

 private:
  struct Event {
    EventId id;
    Callback fn;
    std::string label;
  };

  // Key: (deadline, sequence) so that same-deadline events fire in scheduling order.
  using Key = std::pair<Nanos, uint64_t>;

  void AdvanceSlow(Nanos delta);
  void DispatchDueEvents(Nanos horizon);

  Nanos now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  bool dispatching_ = false;
  std::map<Key, Event> events_;
  std::unordered_set<EventId> live_ids_;
};

// Monotonic host clock for the real-threads mode. now() is steady_clock time since
// construction, so timestamps stay small and comparable with virtual-time constants.
//
// The deadline queue is mutex-protected (rank: leaf — see DESIGN.md §10); callbacks fire from
// PollDue() *outside* the internal mutex, on the polling thread, so a callback may freely
// schedule or cancel. In this codebase the only real-mode events are disk write completions,
// polled by the frame manager under the manager lock.
class RealClock final : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}
  RealClock(const RealClock&) = delete;
  RealClock& operator=(const RealClock&) = delete;

  Nanos now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  // Host time passes on its own; modelled costs are not re-charged in real mode.
  void Advance(Nanos) override {}
  void AdvanceTo(Nanos) override {}

  EventId ScheduleAt(Nanos when, Callback fn, std::string label = "") override;
  EventId ScheduleAfter(Nanos delta, Callback fn, std::string label = "") override;
  bool Cancel(EventId id) override;

  size_t pending_events() const override;
  Nanos next_deadline() const override;
  bool deterministic() const override { return false; }

  size_t PollDue(bool fire_all = false) override;

 private:
  struct Event {
    EventId id;
    Callback fn;
    std::string label;
  };
  using Key = std::pair<Nanos, uint64_t>;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::map<Key, Event> events_;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_CLOCK_H_
