#include "sim/lock.h"

#include <algorithm>
#include <vector>

#include "sim/check.h"

namespace hipec::sim {
namespace {

// Per-thread stack of held locks. Small and append-only in practice (a fault holds at most
// ~4 locks), so a flat vector beats anything clever.
struct Held {
  const OrderedMutex* mu;
  LockRank rank;
};

thread_local std::vector<Held> g_held;

}  // namespace

void OrderedMutex::AssertRankFree() {
  for (const Held& h : g_held) {
    if (h.mu == this) {
      return;  // recursion on the same lock is sanctioned
    }
  }
  for (const Held& h : g_held) {
    HIPEC_CHECK_MSG(static_cast<int>(h.rank) < static_cast<int>(rank_),
                    "lock-order violation: blocking on rank "
                        << static_cast<int>(rank_) << " while holding rank "
                        << static_cast<int>(h.rank) << " (use try_lock for inverted edges)");
  }
}

void OrderedMutex::PushRank() { g_held.push_back(Held{this, rank_}); }

void OrderedMutex::PopRank() {
  // Unlocks are LIFO in practice, but recursive locks may interleave; erase the last match.
  for (auto it = g_held.rbegin(); it != g_held.rend(); ++it) {
    if (it->mu == this) {
      g_held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace hipec::sim
