// Virtual-time cost model.
//
// All constants are calibrated from measurements the paper itself reports on the Acer Altos
// 10000 (i486-50, 64 MB):
//
//   * Table 4: null system call 19 us, null IPC 292 us, "simple HiPEC page fault overhead"
//     ~150 ns (= fetch+decode of Comp, DeQueue, Return -> ~50 ns per command).
//   * Table 3: 40 MB (10 240 faults) without disk I/O takes 4016.5 ms on stock Mach
//     -> ~392 us per fault for the non-I/O fault path (zero-fill, map enter, bookkeeping);
//     82 485.5 ms with disk I/O -> ~8.05 ms per fault, i.e. ~7.66 ms of disk service.
//
// Derived experiments use only these constants plus algorithmic behaviour, so Table 3/4 rows
// are reproduced near-exactly by construction and Figures 5/6 test whether the mechanisms
// compose to the paper's shapes.
#ifndef HIPEC_SIM_COST_MODEL_H_
#define HIPEC_SIM_COST_MODEL_H_

#include "sim/clock.h"

namespace hipec::sim {

struct CostModel {
  // Kernel-crossing primitives (Table 4).
  Nanos null_syscall_ns = 19 * kMicrosecond;
  Nanos null_ipc_ns = 292 * kMicrosecond;
  // An upcall is a kernel->user procedure invocation: allocate a user stack, switch to it,
  // run, trap back. The paper uses the null-syscall time to describe one crossing; a policy
  // decision needs the up-call and the return, plus stack setup.
  Nanos upcall_stack_setup_ns = 4 * kMicrosecond;

  // HiPEC interpreter.
  Nanos command_decode_ns = 50;          // fetch + decode one 32-bit command
  Nanos complex_command_ns = 300;        // extra body cost of FIFO/LRU/MRU complex commands
  // Per-event dispatch: container lookup, CC reset, timestamp write, private-list
  // bookkeeping — the "miscellaneous processings" of §5. Calibrated so the Table 3 no-I/O
  // sweep lands at the paper's 1.8 % overhead (~7 us extra per fault); the ~150 ns figure in
  // Table 4 counts only the command fetch+decode component, as the paper does.
  Nanos policy_invoke_ns = 6'500;
  Nanos hipec_region_check_ns = 180;     // per-fault "is this a HiPEC region?" test added
                                         // to every fault on the modified kernel

  // Mach fault path (Table 3, no-I/O row): page allocation, zero-fill/copyin, pmap enter.
  Nanos fault_base_ns = 392'000;
  // Resident-page fault (page already in the object; only map enter needed).
  Nanos fault_resident_ns = 40 * kMicrosecond;
  // Cost of the default in-kernel replacement scan, folded into fault_base for stock Mach.
  Nanos pageout_scan_per_page_ns = 2 * kMicrosecond;

  // Security checker.
  Nanos checker_scan_per_container_ns = 2 * kMicrosecond;
  Nanos checker_wakeup_ns = 5 * kMicrosecond;  // thread wakeup + walk setup
  Nanos checker_wakeup_min_ns = 250 * kMillisecond;
  Nanos checker_wakeup_max_ns = 8 * kSecond;
  Nanos policy_timeout_ns = 500 * kMillisecond;  // TimeOut period (set by privileged user)

  // User-level memory access (TLB hit, no fault).
  Nanos memory_access_ns = 60;

  // Scheduling (used by the AIM-like multiuser model).
  Nanos context_switch_ns = 60 * kMicrosecond;

  // Convenience: cost of one policy decision under each crossing mechanism, executing a
  // policy whose in-kernel interpretation takes `commands` HiPEC commands.
  Nanos HipecDecisionNs(int commands) const {
    return policy_invoke_ns + static_cast<Nanos>(commands) * command_decode_ns;
  }
  Nanos UpcallDecisionNs() const { return 2 * null_syscall_ns + upcall_stack_setup_ns; }
  Nanos IpcDecisionNs() const { return null_ipc_ns; }
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_COST_MODEL_H_
