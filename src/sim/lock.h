// Rank-tagged conditional mutexes: the enforcement half of the lock hierarchy documented in
// DESIGN.md §10.
//
// Every lock in the kernel core is an OrderedMutex carrying a LockRank. In the deterministic
// execution mode locks are constructed disabled and every operation is a single predictable
// branch — the reference mode stays bit-for-bit identical to the pre-concurrency code and
// pays no synchronization cost. In the real-threads mode locks are real recursive mutexes,
// and (in debug builds) each blocking acquisition asserts that the calling thread holds no
// lock of an equal or higher rank, so a lock-order inversion fails loudly instead of
// deadlocking once in a thousand runs.
//
// Two deliberate escapes from strict ordering:
//   * Recursion: the same thread may re-acquire a lock it holds (std::recursive_mutex).
//     Reclamation terminates a victim whose teardown re-enters the frame manager; the
//     manager lock must tolerate that re-entry.
//   * TryLock: try-acquisitions are exempt from the rank check because the caller handles
//     failure. They are the sanctioned way to take a *lower*-ranked lock while holding a
//     higher one (e.g. the manager, during reclamation, try-locks a victim task), the same
//     escape valve Linux shrinkers use.
#ifndef HIPEC_SIM_LOCK_H_
#define HIPEC_SIM_LOCK_H_

#include <mutex>
#include <shared_mutex>
#include <thread>

namespace hipec::sim {

// Blocking acquisition order: a thread holding a lock of rank R may only block on locks of
// rank strictly greater than R (recursion on the same lock excepted). See DESIGN.md §10 for
// the edge-by-edge justification.
//
// Ranks shared by a family of peer locks (kDaemon's queue shards, kShard's free-pool shards,
// kRunQueue's per-worker run queues) carry an implicit extra rule: peers never block on each
// other. A thread holds at most one lock of such a rank at a time; taking a sibling is
// either a fresh acquisition (nothing of the rank held — fine) or a try-lock (steal paths).
enum class LockRank : int {
  kEngine = 1,    // HipecEngine registration state (container ids, zone, task list)
  kTask = 2,      // one per task/container: address map, pmap entries, container queues
  kManager = 3,   // GlobalFrameManager: FAFR list, reserve/laundry, burst accounting
  kDaemon = 4,    // one per pageout-daemon queue shard: that shard's active/inactive queues
  kShard = 5,     // one per free-pool shard: that shard's free queue
  kDisk = 6,      // DiskModel: head position, write queue, latency RNG
  kLeaf = 7,      // terminal locks that take nothing else: tracer ring, registries, zones
  kRunQueue = 8,  // one per M:N scheduler worker: its run queue. Terminal by construction —
                  // a worker pops/pushes under it and NEVER calls into the kernel while
                  // holding it; steals take a sibling via try-lock only.
};

class OrderedMutex {
 public:
  // Disabled (deterministic mode) unless `enabled`: lock/unlock are no-ops behind one branch.
  explicit OrderedMutex(LockRank rank, bool enabled = false)
      : rank_(rank), enabled_(enabled) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  // Flips a lock live before any thread contends on it (kernel construction time).
  void Enable(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }
  LockRank rank() const { return rank_; }

  void lock() {
    if (!enabled_) {
      return;
    }
    AssertRankFree();
    mu_.lock();
    PushRank();
  }

  void unlock() {
    if (!enabled_) {
      return;
    }
    PopRank();
    mu_.unlock();
  }

  // Rank-exempt (see header comment); returns true when disabled (the caller "owns" it).
  bool try_lock() {
    if (!enabled_) {
      return true;
    }
    if (!mu_.try_lock()) {
      return false;
    }
    PushRank();
    return true;
  }

 private:
  void AssertRankFree();
  void PushRank();
  void PopRank();

  std::recursive_mutex mu_;
  LockRank rank_;
  bool enabled_;
};

// Scoped blocking acquisition.
class ScopedLock {
 public:
  explicit ScopedLock(OrderedMutex& mu) : mu_(&mu) { mu_->lock(); }
  ~ScopedLock() { mu_->unlock(); }
  ScopedLock(const ScopedLock&) = delete;
  ScopedLock& operator=(const ScopedLock&) = delete;

 private:
  OrderedMutex* mu_;
};

// Scoped try-acquisition; check owns() before touching the protected state. Always owns a
// disabled mutex, so deterministic-mode callers take the success path unchanged.
class ScopedTryLock {
 public:
  explicit ScopedTryLock(OrderedMutex& mu) : mu_(&mu), owns_(mu.try_lock()) {}
  ~ScopedTryLock() {
    if (owns_) {
      mu_->unlock();
    }
  }
  ScopedTryLock(const ScopedTryLock&) = delete;
  ScopedTryLock& operator=(const ScopedTryLock&) = delete;

  bool owns() const { return owns_; }

 private:
  OrderedMutex* mu_;
  bool owns_;
};

// Try-acquisition with bounded backoff: up to `attempts` try_locks with a scheduler yield
// between them. Still rank-exempt — the caller handles failure — but a victim that is merely
// *briefly* busy (mid-fault on another thread) no longer causes an instant skip, which is
// the reclamation-starvation fix: a hot container cannot dodge every reclaim pass forever
// just because single try_locks keep landing inside its fault windows. On a disabled mutex
// (deterministic mode) the first attempt owns, exactly like ScopedTryLock.
class ScopedBackoffTryLock {
 public:
  ScopedBackoffTryLock(OrderedMutex& mu, int attempts) : mu_(&mu), owns_(mu.try_lock()) {
    for (int i = 1; !owns_ && i < attempts; ++i) {
      std::this_thread::yield();
      owns_ = mu_->try_lock();
    }
  }
  ~ScopedBackoffTryLock() {
    if (owns_) {
      mu_->unlock();
    }
  }
  ScopedBackoffTryLock(const ScopedBackoffTryLock&) = delete;
  ScopedBackoffTryLock& operator=(const ScopedBackoffTryLock&) = delete;

  bool owns() const { return owns_; }

 private:
  OrderedMutex* mu_;
  bool owns_;
};

// Stop-the-world lock for the real-threads auditor: fault threads hold it shared around each
// access; the auditor takes it exclusive, observes a quiesced kernel, and releases. Disabled
// (all no-ops) in deterministic mode, where per-decision auditing is synchronous anyway.
// Conceptually rank 0: acquired before any OrderedMutex and never while holding one.
class WorldLock {
 public:
  explicit WorldLock(bool enabled = false) : enabled_(enabled) {}

  // Flip live before any thread contends (kernel construction time).
  void Enable(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  void lock_shared() {
    if (enabled_) {
      mu_.lock_shared();
    }
  }
  void unlock_shared() {
    if (enabled_) {
      mu_.unlock_shared();
    }
  }
  void lock() {
    if (enabled_) {
      mu_.lock();
    }
  }
  void unlock() {
    if (enabled_) {
      mu_.unlock();
    }
  }

 private:
  std::shared_mutex mu_;
  bool enabled_;
};

// RAII shared hold: a mutator thread inside the kernel.
class SharedWorldGuard {
 public:
  explicit SharedWorldGuard(WorldLock& world) : world_(&world) { world_->lock_shared(); }
  ~SharedWorldGuard() { world_->unlock_shared(); }
  SharedWorldGuard(const SharedWorldGuard&) = delete;
  SharedWorldGuard& operator=(const SharedWorldGuard&) = delete;

 private:
  WorldLock* world_;
};

// RAII exclusive hold: the auditor's quiesced window.
class ExclusiveWorldGuard {
 public:
  explicit ExclusiveWorldGuard(WorldLock& world) : world_(&world) { world_->lock(); }
  ~ExclusiveWorldGuard() { world_->unlock(); }
  ExclusiveWorldGuard(const ExclusiveWorldGuard&) = delete;
  ExclusiveWorldGuard& operator=(const ExclusiveWorldGuard&) = delete;

 private:
  WorldLock* world_;
};

}  // namespace hipec::sim

#endif  // HIPEC_SIM_LOCK_H_
