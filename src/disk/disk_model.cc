#include "disk/disk_model.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "sim/check.h"

namespace hipec::disk {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrReads = sim::InternCounter("disk.reads");
const sim::CounterId kCtrWritesQueued = sim::InternCounter("disk.writes_queued");
const sim::CounterId kCtrWritesSync = sim::InternCounter("disk.writes_sync");
const sim::CounterId kCtrWritesDone = sim::InternCounter("disk.writes_done");

// Probe ids: read service-time distribution (including queue-wait and injected latency).
const obs::ProbeId kPrbReadNs = obs::InternProbe("disk.read_ns");

}  // namespace

DiskModel::DiskModel(sim::Clock* clock, DiskParams params, uint64_t seed,
                     WriteScheduling sched)
    : clock_(clock), params_(params), rng_(seed), sched_(sched) {
  HIPEC_CHECK(clock != nullptr);
  HIPEC_CHECK(params_.cylinders > 0 && params_.heads > 0 && params_.sectors_per_track > 0);
}

void DiskModel::EnableConcurrent() {
  mu_.Enable(true);
  counters_.EnableConcurrent();
  probes_.EnableConcurrent();
  read_latency_.EnableConcurrent();
}

sim::Nanos DiskModel::SeekNs(int64_t from_cyl, int64_t to_cyl) const {
  int64_t distance = std::llabs(to_cyl - from_cyl);
  if (distance == 0) {
    return 0;
  }
  return params_.seek_base_ns +
         static_cast<sim::Nanos>(static_cast<double>(params_.seek_per_sqrt_cyl_ns) *
                                 std::sqrt(static_cast<double>(distance)));
}

sim::Nanos DiskModel::ServiceTimeNs(uint64_t block, bool is_write) {
  sim::ScopedLock lock(mu_);
  if (params_.solid_state) {
    sim::Nanos transfer =
        is_write ? static_cast<sim::Nanos>(static_cast<double>(params_.flash_read_ns) *
                                           params_.flash_write_penalty)
                 : params_.flash_read_ns;
    return params_.controller_overhead_ns + transfer;
  }
  int64_t target = CylinderOf(block);
  sim::Nanos seek = SeekNs(head_cylinder_, target);
  head_cylinder_ = target;
  // Rotational position is not tracked exactly; latency is uniform over one revolution.
  auto rotation = static_cast<sim::Nanos>(
      rng_.Uniform() * static_cast<double>(params_.RevolutionNs()));
  return params_.controller_overhead_ns + seek + rotation + params_.PageTransferNs();
}

sim::Nanos DiskModel::ReadPage(uint64_t block) {
  sim::ScopedLock lock(mu_);
  sim::Nanos start = clock_->now();
  // Reads wait only if the write queue is saturated (back-pressure), mirroring how the global
  // frame manager's laundry throttles under heavy flushing. Waiting on the event queue is a
  // virtual-time construct; under a real clock the queue simply grows until polled.
  if (clock_->deterministic()) {
    while (write_queue_.size() >= params_.write_queue_limit) {
      sim::Nanos deadline = clock_->next_deadline();
      HIPEC_CHECK_MSG(deadline >= 0, "write queue saturated with no drain event pending");
      clock_->AdvanceTo(deadline);
    }
  }
  sim::Nanos service = ServiceTimeNs(block) + injected_read_ns_;
  clock_->Advance(service);
  counters_.Add(kCtrReads);
  sim::Nanos total = clock_->deterministic() ? clock_->now() - start : service;
  read_latency_.Record(total);
  if (obs::ProbesEnabled()) {
    probes_.Record(kPrbReadNs, total);
  }
  return total;
}

void DiskModel::WritePageAsync(uint64_t block, std::function<void()> on_complete) {
  sim::ScopedLock lock(mu_);
  counters_.Add(kCtrWritesQueued);
  write_queue_.push_back(PendingWrite{block, std::move(on_complete)});
  MaybeStartWriteLocked();
}

sim::Nanos DiskModel::WritePageSync(uint64_t block) {
  sim::ScopedLock lock(mu_);
  sim::Nanos service = ServiceTimeNs(block, /*is_write=*/true);
  clock_->Advance(service);
  counters_.Add(kCtrWritesSync);
  return service;
}

DiskModel::PendingWrite DiskModel::PopNextWrite() {
  HIPEC_CHECK(!write_queue_.empty());
  if (sched_ == WriteScheduling::kFifo) {
    PendingWrite w = std::move(write_queue_.front());
    write_queue_.pop_front();
    return w;
  }
  // Elevator: nearest cylinder to the current head position.
  size_t best = 0;
  int64_t best_distance = std::llabs(CylinderOf(write_queue_[0].block) - head_cylinder_);
  for (size_t i = 1; i < write_queue_.size(); ++i) {
    int64_t d = std::llabs(CylinderOf(write_queue_[i].block) - head_cylinder_);
    if (d < best_distance) {
      best_distance = d;
      best = i;
    }
  }
  PendingWrite w = std::move(write_queue_[best]);
  write_queue_.erase(write_queue_.begin() + static_cast<ptrdiff_t>(best));
  return w;
}

void DiskModel::MaybeStartWriteLocked() {
  if (write_in_flight_ || write_queue_.empty()) {
    return;
  }
  write_in_flight_ = true;
  PendingWrite w = PopNextWrite();
  sim::Nanos service = ServiceTimeNs(w.block, /*is_write=*/true);
  auto on_complete = std::move(w.on_complete);
  // The completion releases the disk lock before running on_complete: completion handlers
  // re-enter higher layers (frame manager laundry) whose locks rank below kDisk.
  clock_->ScheduleAfter(
      service,
      [this, on_complete = std::move(on_complete)]() {
        {
          sim::ScopedLock lock(mu_);
          counters_.Add(kCtrWritesDone);
          write_in_flight_ = false;
        }
        if (on_complete) {
          on_complete();
        }
        sim::ScopedLock lock(mu_);
        MaybeStartWriteLocked();
      },
      "disk-write-complete");
}

void DiskModel::DrainWrites() {
  if (clock_->deterministic()) {
    while (pending_writes() > 0) {
      sim::Nanos deadline = clock_->next_deadline();
      HIPEC_CHECK_MSG(deadline >= 0, "pending writes but no completion event");
      clock_->AdvanceTo(deadline);
    }
    return;
  }
  // Real clock: force-fire scheduled completions until the chain is exhausted (each
  // completion may start the next queued write).
  while (pending_writes() > 0) {
    clock_->PollDue(/*fire_all=*/true);
  }
}

}  // namespace hipec::disk
