// A mechanical disk model in the style of Ruemmler & Wilkes, "An Introduction to Disk Drive
// Modeling" (IEEE Computer, 1994) — the reference the paper itself cites for disk behaviour.
//
// Service time for a request = controller overhead + seek (a + b*sqrt(cylinder distance))
// + rotational latency + transfer. Parameters default to an early-90s SCSI drive tuned so a
// random 4 KB page read averages ~7.66 ms, the per-fault disk component implied by Table 3
// (82 485.5 ms for 10 240 faults => ~8.05 ms/fault, of which ~392 us is the in-kernel path).
//
// Reads are synchronous: they advance the virtual clock by the service time (plus any time
// spent waiting behind a saturated write queue). Writes are asynchronous: the page is queued
// and drained by scheduled events — this is what lets the HiPEC `Flush` command return
// immediately, as §4.3.1 ("I/O Handling") requires.
#ifndef HIPEC_DISK_DISK_MODEL_H_
#define HIPEC_DISK_DISK_MODEL_H_

#include <cstdint>
#include <deque>
#include <functional>

#include "obs/probe.h"
#include "sim/clock.h"
#include "sim/lock.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace hipec::disk {

inline constexpr uint64_t kPageSize = 4096;

struct DiskParams {
  int64_t cylinders = 1200;
  int64_t heads = 8;
  int64_t sectors_per_track = 64;     // 512 B sectors -> 32 KB per track
  double rpm = 6000.0;                // 10 ms per revolution
  sim::Nanos controller_overhead_ns = 300 * sim::kMicrosecond;
  sim::Nanos seek_base_ns = 600 * sim::kMicrosecond;         // head settle
  sim::Nanos seek_per_sqrt_cyl_ns = 25 * sim::kMicrosecond;  // a + b*sqrt(d) seek curve

  // Maximum pending asynchronous writes before further writers stall.
  size_t write_queue_limit = 256;

  // Solid-state mode (the "new hardware architecture, such as flash RAM" of the paper's §6):
  // no seek or rotation; reads take controller + transfer time, writes pay an erase penalty.
  bool solid_state = false;
  sim::Nanos flash_read_ns = 350 * sim::kMicrosecond;   // 4 KB at ~12 MB/s
  double flash_write_penalty = 4.0;                     // erase-before-write

  // An early-90s flash storage card (SunDisk-class).
  static DiskParams Flash1994() {
    DiskParams p;
    p.solid_state = true;
    p.controller_overhead_ns = 150 * sim::kMicrosecond;
    return p;
  }

  // One full revolution.
  sim::Nanos RevolutionNs() const {
    return static_cast<sim::Nanos>(60.0 * sim::kSecond / rpm);
  }
  // Time to transfer one 4 KB page once the head is on-sector.
  sim::Nanos PageTransferNs() const {
    double sectors = static_cast<double>(kPageSize) / 512.0;
    return static_cast<sim::Nanos>(static_cast<double>(RevolutionNs()) * sectors /
                                   static_cast<double>(sectors_per_track));
  }
  int64_t BlocksPerCylinder() const { return heads * sectors_per_track * 512 / 4096; }

  // Parameters calibrated for the Table 3 reproduction (see module comment).
  static DiskParams Era1994() { return DiskParams{}; }
};

// Scheduling discipline for draining the asynchronous write queue.
enum class WriteScheduling {
  kFifo,      // drain in arrival order
  kElevator,  // nearest-cylinder-first
};

class DiskModel {
 public:
  // Works against either clock flavour: with a VirtualClock, reads advance virtual time and
  // write completions are discrete events; with a RealClock, service times stamp deadlines
  // and completions fire when some thread polls the clock (the frame manager does, at its
  // entry points). One rank-kDisk lock serializes the mechanical state — there is one head.
  DiskModel(sim::Clock* clock, DiskParams params, uint64_t seed,
            WriteScheduling sched = WriteScheduling::kFifo);
  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  // Arms the disk lock and the stats sinks for real-threads mode.
  void EnableConcurrent();

  // Reads one 4 KB page at `block` (block = page-sized unit). Advances the virtual clock by
  // the full service time and returns it. If the write queue is over its limit, the read also
  // waits for it to drain below the limit first (charged to the caller). The wait is a
  // virtual-time construct: under a real clock a saturated queue is simply allowed to grow
  // (completions drain as they are polled).
  sim::Nanos ReadPage(uint64_t block);

  // Queues one 4 KB page write at `block` and returns immediately. The write is performed by
  // scheduled events; `on_complete` (optional) fires when the platters have it.
  void WritePageAsync(uint64_t block, std::function<void()> on_complete = nullptr);

  // Synchronous write: advances the clock by the full service time. Used only by fallback
  // paths (e.g. a HiPEC Flush when the frame manager's clean reserve is empty).
  sim::Nanos WritePageSync(uint64_t block);

  // Blocks until all queued writes have completed: advances virtual time event by event, or
  // (real clock) force-fires every scheduled completion.
  void DrainWrites();

  size_t pending_writes() const {
    sim::ScopedLock lock(mu_);
    return write_queue_.size() + (write_in_flight_ ? 1 : 0);
  }

  // Deterministic service time for moving the head from its current position to `block` and
  // transferring one page (or, in solid-state mode, the flat flash access time). Advances
  // the modelled head state.
  sim::Nanos ServiceTimeNs(uint64_t block, bool is_write = false);

  // Fault injection (scenario engine): every read pays this much extra service time until the
  // injection is cleared with 0. Models a degraded drive / saturated bus latency spike.
  void InjectReadLatency(sim::Nanos extra_ns) {
    sim::ScopedLock lock(mu_);
    injected_read_ns_ = extra_ns;
  }
  sim::Nanos injected_read_latency() const {
    sim::ScopedLock lock(mu_);
    return injected_read_ns_;
  }

  const DiskParams& params() const { return params_; }
  sim::CounterSet& counters() { return counters_; }
  obs::ProbeSet& probes() { return probes_; }
  const sim::LatencyRecorder& read_latency() const { return read_latency_; }

 private:
  struct PendingWrite {
    uint64_t block;
    std::function<void()> on_complete;
  };

  int64_t CylinderOf(uint64_t block) const {
    return static_cast<int64_t>(block / static_cast<uint64_t>(params_.BlocksPerCylinder())) %
           params_.cylinders;
  }
  sim::Nanos SeekNs(int64_t from_cyl, int64_t to_cyl) const;
  // Starts the next queued write if none is in flight; mu_ must be held.
  void MaybeStartWriteLocked();
  PendingWrite PopNextWrite();

  sim::Clock* clock_;
  // Serializes head position, RNG, the write queue, and the stats sinks (one spindle).
  mutable sim::OrderedMutex mu_{sim::LockRank::kDisk};
  DiskParams params_;
  sim::Rng rng_;
  WriteScheduling sched_;
  int64_t head_cylinder_ = 0;
  sim::Nanos injected_read_ns_ = 0;
  bool write_in_flight_ = false;
  std::deque<PendingWrite> write_queue_;
  sim::CounterSet counters_;
  obs::ProbeSet probes_;
  sim::LatencyRecorder read_latency_;
};

}  // namespace hipec::disk

#endif  // HIPEC_DISK_DISK_MODEL_H_
