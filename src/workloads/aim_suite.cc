#include "workloads/aim_suite.h"

#include <deque>
#include <functional>
#include <memory>
#include <utility>

#include "disk/disk_model.h"
#include "sim/check.h"
#include "sim/cost_model.h"
#include "sim/random.h"

namespace hipec::workloads {
namespace {

// A single-server FIFO resource (the CPU, the disk) on the virtual clock.
class Resource {
 public:
  explicit Resource(sim::VirtualClock* clock) : clock_(clock) {}

  void Submit(sim::Nanos duration, std::function<void()> done) {
    queue_.emplace_back(duration, std::move(done));
    MaybeStart();
  }

  sim::Nanos busy_ns() const { return busy_ns_; }

 private:
  void MaybeStart() {
    if (serving_ || queue_.empty()) {
      return;
    }
    serving_ = true;
    auto [duration, done] = std::move(queue_.front());
    queue_.pop_front();
    busy_ns_ += duration;
    clock_->ScheduleAfter(duration, [this, done = std::move(done)] {
      serving_ = false;
      done();
      MaybeStart();
    });
  }

  sim::VirtualClock* clock_;
  bool serving_ = false;
  std::deque<std::pair<sim::Nanos, std::function<void()>>> queue_;
  sim::Nanos busy_ns_ = 0;
};

// The shared frame pool: per-user residency under global FIFO replacement. Exact counts, no
// per-page bookkeeping — AIM only needs the fault *rate* under pressure.
class SharedPool {
 public:
  SharedPool(size_t capacity, size_t working_set) : capacity_(capacity), ws_(working_set) {}

  // One page reference by `user`; returns true on a page fault.
  bool Touch(int user, sim::Rng& rng) {
    if (static_cast<size_t>(user) >= resident_.size()) {
      resident_.resize(static_cast<size_t>(user) + 1, 0);
    }
    double hit_probability =
        static_cast<double>(resident_[static_cast<size_t>(user)]) / static_cast<double>(ws_);
    if (rng.Uniform() < hit_probability) {
      return false;
    }
    // Fault: take a frame, evicting the globally oldest-loaded frame when full.
    if (owners_.size() >= capacity_) {
      int victim_owner = owners_.front();
      owners_.pop_front();
      --resident_[static_cast<size_t>(victim_owner)];
    }
    owners_.push_back(user);
    ++resident_[static_cast<size_t>(user)];
    return true;
  }

 private:
  size_t capacity_;
  size_t ws_;
  std::vector<size_t> resident_;
  std::deque<int> owners_;  // frame load order; entry = owning user
};

struct AimSim {
  AimSim(const AimConfig& config)
      : config_(config),
        cpu_(&clock_),
        disk_resource_(&clock_),
        disk_model_(&clock_, disk::DiskParams::Era1994(), config.seed ^ 0xD15C),
        pool_(config.memory_frames, config.working_set_pages) {}

  void Run(AimResult* out) {
    for (int u = 0; u < config_.users; ++u) {
      users_.push_back(std::make_unique<User>(User{
          sim::Rng(config_.seed * 7919 + static_cast<uint64_t>(u)), 0}));
      // Stagger starts slightly so users do not run in lockstep.
      int user = u;
      clock_.ScheduleAfter(static_cast<sim::Nanos>(u) * 977 * sim::kMicrosecond,
                           [this, user] { NextOp(user); });
    }
    if (config_.hipec_kernel) {
      ScheduleChecker(costs_.checker_wakeup_min_ns);
    }
    clock_.AdvanceTo(config_.duration);

    out->jobs_completed = jobs_completed_;
    out->jobs_per_minute = static_cast<double>(jobs_completed_) /
                           (static_cast<double>(config_.duration) / (60.0 * sim::kSecond));
    out->page_faults = page_faults_;
    out->checker_wakeups = checker_wakeups_;
    out->cpu_utilization =
        static_cast<double>(cpu_.busy_ns()) / static_cast<double>(config_.duration);
    out->disk_utilization =
        static_cast<double>(disk_resource_.busy_ns()) / static_cast<double>(config_.duration);
  }

 private:
  struct User {
    sim::Rng rng;
    int ops_done;
  };

  // Tunables for the job mix (see aim_suite.h for how the shape emerges).
  static constexpr sim::Nanos kComputeOpNs = 8 * sim::kMillisecond;
  static constexpr sim::Nanos kDiskSetupNs = 500 * sim::kMicrosecond;
  static constexpr sim::Nanos kMemoryLoopNs = 700 * sim::kMicrosecond;
  static constexpr sim::Nanos kThinkNs = 16 * sim::kMillisecond;
  static constexpr int kTouchesPerMemoryOp = 60;

  void ScheduleChecker(sim::Nanos interval) {
    if (clock_.now() >= config_.duration) {
      return;
    }
    clock_.ScheduleAfter(interval, [this, interval] {
      ++checker_wakeups_;
      // The checker steals CPU; with no specific applications it finds nothing and its
      // interval doubles toward the 8 s cap (§4.3.3).
      cpu_.Submit(costs_.checker_wakeup_ns, [] {});
      ScheduleChecker(std::min(interval * 2, costs_.checker_wakeup_max_ns));
    });
  }

  void NextOp(int user) {
    if (clock_.now() >= config_.duration) {
      return;
    }
    User& u = *users_[static_cast<size_t>(user)];
    if (u.ops_done >= config_.ops_per_job) {
      u.ops_done = 0;
      ++jobs_completed_;
    }
    ++u.ops_done;

    const WorkloadMix& mix = config_.mix;
    double total = mix.compute_weight + mix.disk_weight + mix.memory_weight;
    double draw = u.rng.Uniform() * total;
    auto think_then_next = [this, user] {
      clock_.ScheduleAfter(kThinkNs, [this, user] { NextOp(user); });
    };

    if (draw < mix.compute_weight) {
      cpu_.Submit(kComputeOpNs, think_then_next);
      return;
    }
    if (draw < mix.compute_weight + mix.disk_weight) {
      cpu_.Submit(kDiskSetupNs, [this, user, think_then_next] {
        sim::Nanos service = disk_model_.ServiceTimeNs(users_[static_cast<size_t>(user)]
                                                           ->rng.Below(1'000'000));
        disk_resource_.Submit(service, think_then_next);
      });
      return;
    }
    // Memory operation: touch pages of the user's working set; misses cost fault handling on
    // the CPU plus disk reads.
    User& usr = *users_[static_cast<size_t>(user)];
    int misses = 0;
    for (int i = 0; i < kTouchesPerMemoryOp; ++i) {
      if (pool_.Touch(user, usr.rng)) {
        ++misses;
      }
    }
    page_faults_ += misses;
    sim::Nanos cpu_cost =
        kMemoryLoopNs + static_cast<sim::Nanos>(kTouchesPerMemoryOp) * costs_.memory_access_ns +
        static_cast<sim::Nanos>(misses) *
            (costs_.fault_base_ns +
             (config_.hipec_kernel ? costs_.hipec_region_check_ns : 0));
    if (misses == 0) {
      cpu_.Submit(cpu_cost, think_then_next);
      return;
    }
    int remaining = misses;
    sim::Nanos disk_cost = 0;
    for (int i = 0; i < remaining; ++i) {
      disk_cost += disk_model_.ServiceTimeNs(usr.rng.Below(1'000'000));
    }
    cpu_.Submit(cpu_cost, [this, disk_cost, think_then_next] {
      disk_resource_.Submit(disk_cost, think_then_next);
    });
  }

  AimConfig config_;
  sim::VirtualClock clock_;
  sim::CostModel costs_;
  Resource cpu_;
  Resource disk_resource_;
  disk::DiskModel disk_model_;
  SharedPool pool_;
  std::vector<std::unique_ptr<User>> users_;
  int64_t jobs_completed_ = 0;
  int64_t page_faults_ = 0;
  int64_t checker_wakeups_ = 0;
};

}  // namespace

AimResult RunAim(const AimConfig& config) {
  HIPEC_CHECK(config.users > 0);
  AimResult result;
  AimSim(config).Run(&result);
  return result;
}

}  // namespace hipec::workloads
