// The shared workload registry: the canonical named workload lists every bench enumerates,
// so "zipf" (and friends) mean exactly one generator configuration across the tree, plus
// discovery of canned .hpt traces from a directory.
#ifndef HIPEC_WORKLOADS_REGISTRY_H_
#define HIPEC_WORKLOADS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload_source.h"

namespace hipec::workloads {

// One registry entry: a name (the leaderboard/metric key), the region a replay must
// allocate, and a shared source (clone per consumer).
struct NamedWorkload {
  std::string name;
  uint64_t region_pages = 0;
  bool trace = false;  // true: replayed real evidence (.hpt); false: synthetic
  std::shared_ptr<const WorkloadSource> source;
};

// The eviction-tournament grid (bench_tournament): hot_cold, looping, zipf, uniform,
// scan_mix over a 512-page region. hot_cold and looping carry the CI policy floors.
std::vector<NamedWorkload> TournamentWorkloads();

// bench_policy_comparison's four columns (cyclic, zipf, uniform, mixed) over a 256-page
// region — the paper's "no row wins every column" table.
std::vector<NamedWorkload> ComparisonWorkloads();

// Loads every *.hpt directly inside `dir` (sorted by filename for a stable grid order).
// Unreadable or malformed files append to *error (semicolon-joined) and are skipped; an
// unreadable directory yields an empty list with *error set.
std::vector<NamedWorkload> LoadTraceDir(const std::string& dir, std::string* error);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_REGISTRY_H_
