// The .hpt captured-trace format: a versioned little-endian binary container for real
// programs' page-access streams, produced by tools/hipec-capture + tools/hipec-trace and
// replayed through any WorkloadSource consumer (tournament, scenario engine, benches).
//
// Layout (all integers little-endian):
//   u32 magic        'H' 'P' 'T' '1'  (0x31545048)
//   u32 version      1
//   u32 page_size    power of two in [512, 65536]
//   u32 flags        reserved, must be 0
//   u64 region_pages exclusive vpage bound, in (0, 2^40]
//   u64 record_count number of records, <= 2^28
//   u16 name_len     then name bytes (<= 256)
//   records, delta-encoded:
//     u8 tag         bit0 = write, bit1 = tenant follows, bit2 = think follows,
//                    bits 3..7 reserved (must be 0)
//     [tenant]       uvarint (LEB128), present when bit1; else previous record's tenant
//                    (first record defaults to tenant 0)
//     vpage delta    svarint (zigzag LEB128) against the previous record's vpage
//                    (first record deltas against 0)
//     [think_ns]     uvarint, present when bit2; else 0
//
// The decoder follows the server/wire.cc discipline: every read is bounds-checked, every
// length/count field is capped before allocation, every decoded vpage/tenant is validated
// against the header, and malformed input yields a typed status — never a crash, throw, or
// overrun (the truncation-sweep and bit-flip fuzz suites in tests/trace_format_test.cc hold
// this under ASan/UBSan).
#ifndef HIPEC_WORKLOADS_TRACE_FORMAT_H_
#define HIPEC_WORKLOADS_TRACE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/workload_source.h"

namespace hipec::workloads {

inline constexpr uint32_t kTraceMagic = 0x31545048u;  // "HPT1"
inline constexpr uint32_t kTraceVersion = 1;
inline constexpr uint64_t kMaxTraceRecords = 1ull << 28;
inline constexpr uint64_t kMaxTraceRegionPages = 1ull << 40;
inline constexpr uint32_t kMaxTraceTenant = 1u << 20;
inline constexpr size_t kMaxTraceName = 256;

enum class TraceStatus {
  kOk,
  kTruncated,     // input ended mid-header or mid-record
  kBadMagic,      // not an .hpt file at all
  kBadVersion,    // a version this build does not speak
  kMalformed,     // a cap or validity rule tripped (hostile or corrupt input)
  kTrailingBytes, // all records decoded but bytes remain
  kIoError,       // file could not be read/written
};

const char* TraceStatusName(TraceStatus status);

// A decoded (or to-be-encoded) trace.
struct TraceData {
  std::string name;
  uint32_t page_size = 4096;
  uint64_t region_pages = 0;
  std::vector<Access> records;
};

// Decodes `len` bytes. On kOk, *out holds the trace; on any other status *out is
// unspecified but the call never crashes or reads out of bounds.
TraceStatus DecodeTrace(const uint8_t* data, size_t len, TraceData* out);

// Encodes a trace; the inverse of DecodeTrace. Records with vpage >= region_pages,
// tenant >= kMaxTraceTenant, or an oversized name make encoding fail (returns empty) —
// the writer refuses to produce files the loader would reject.
std::string EncodeTrace(const TraceData& trace);

// File wrappers. LoadTraceFile reports decode failures through the returned status and
// fills *error with a human-readable message (path + status).
TraceStatus LoadTraceFile(const std::string& path, TraceData* out, std::string* error);
bool WriteTraceFile(const std::string& path, const TraceData& trace, std::string* error);

// Wraps a decoded trace as a shareable source (clones share the record storage).
std::shared_ptr<const WorkloadSource> MakeTraceSource(TraceData trace);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_TRACE_FORMAT_H_
