#include "workloads/registry.h"

#include <algorithm>
#include <filesystem>

#include "workloads/access_patterns.h"
#include "workloads/trace_format.h"

namespace hipec::workloads {

namespace {

NamedWorkload FromPages(std::string name, uint64_t region_pages,
                        std::vector<uint64_t> pages) {
  auto records = std::make_shared<std::vector<Access>>();
  records->reserve(pages.size());
  for (uint64_t page : pages) {
    Access a;
    a.vpage = page;
    records->push_back(a);
  }
  NamedWorkload w;
  w.name = name;
  w.region_pages = region_pages;
  w.source =
      std::make_shared<MaterializedSource>(std::move(name), region_pages, std::move(records));
  return w;
}

}  // namespace

std::vector<NamedWorkload> TournamentWorkloads() {
  // The grid bench_tournament has always run (same generators, parameters, and seeds, so
  // leaderboard history stays comparable):
  //   hot_cold — 64 hot pages take 90% of references; the cold tail spans the region.
  //   looping  — 288-page cyclic scan over 256 frames: 32 pages don't fit, so FIFO/LRU
  //              evict every page just before its next use (the classic worst case).
  //   zipf     — skewed lookups, the database-index pattern.
  //   uniform  — no structure at all; every policy converges to the same miss rate.
  //   scan_mix — Zipf hot set with an interleaved one-shot scan (the 2Q showcase).
  constexpr uint64_t kRegionPages = 512;
  std::vector<NamedWorkload> out;
  out.push_back(
      FromPages("hot_cold", kRegionPages, HotColdTrace(kRegionPages, 64, 0.9, 8000, 11)));
  out.push_back(FromPages("looping", kRegionPages, CyclicScan(288, 24)));
  out.push_back(FromPages("zipf", kRegionPages, ZipfTrace(kRegionPages, 8000, 0.9, 17)));
  out.push_back(
      FromPages("uniform", kRegionPages, UniformRandom(kRegionPages, 8000, 23)));
  out.push_back(
      FromPages("scan_mix", kRegionPages, ScanMixTrace(128, 0.9, 31, 2400, 300, 2400)));
  return out;
}

std::vector<NamedWorkload> ComparisonWorkloads() {
  constexpr uint64_t kRegionPages = 256;
  std::vector<NamedWorkload> out;
  out.push_back(FromPages("cyclic", kRegionPages, CyclicScan(192, 6)));
  out.push_back(FromPages("zipf", kRegionPages, ZipfTrace(kRegionPages, 4000, 0.9, 17)));
  out.push_back(
      FromPages("uniform", kRegionPages, UniformRandom(kRegionPages, 4000, 23)));
  out.push_back(
      FromPages("mixed", kRegionPages, ScanMixTrace(96, 0.9, 31, 1200, 150, 1200)));
  return out;
}

std::vector<NamedWorkload> LoadTraceDir(const std::string& dir, std::string* error) {
  namespace fs = std::filesystem;
  std::vector<NamedWorkload> out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    if (error != nullptr) {
      *error = dir + ": not a directory";
    }
    return out;
  }
  std::vector<std::string> paths;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file(ec) && entry.path().extension() == ".hpt") {
      paths.push_back(entry.path().string());
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    TraceData trace;
    std::string load_error;
    if (LoadTraceFile(path, &trace, &load_error) != TraceStatus::kOk) {
      if (error != nullptr) {
        if (!error->empty()) {
          *error += "; ";
        }
        *error += load_error;
      }
      continue;
    }
    NamedWorkload w;
    w.name = trace.name.empty() ? fs::path(path).stem().string() : trace.name;
    w.region_pages = trace.region_pages;
    w.trace = true;
    w.source = MakeTraceSource(std::move(trace));
    out.push_back(std::move(w));
  }
  return out;
}

}  // namespace hipec::workloads
