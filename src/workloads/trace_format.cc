#include "workloads/trace_format.h"

#include <cstdio>
#include <utility>

namespace hipec::workloads {

namespace {

// --- writers ---------------------------------------------------------------------------------

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string* out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v & 0xffff));
  PutU16(out, static_cast<uint16_t>(v >> 16));
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutUvarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t ZigZag(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

int64_t UnZigZag(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// --- bounds-checked reader -------------------------------------------------------------------

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > len_) {
      return false;
    }
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > len_) {
      return false;
    }
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return true;
  }
  bool U32(uint32_t* v) {
    uint16_t lo;
    uint16_t hi;
    if (!U16(&lo) || !U16(&hi)) {
      return false;
    }
    *v = static_cast<uint32_t>(lo) | (static_cast<uint32_t>(hi) << 16);
    return true;
  }
  bool U64(uint64_t* v) {
    uint32_t lo;
    uint32_t hi;
    if (!U32(&lo) || !U32(&hi)) {
      return false;
    }
    *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
    return true;
  }
  // LEB128, at most 10 bytes; an unterminated or over-long varint is malformed rather than
  // truncated only when the continuation run itself is illegal — running off the end of the
  // buffer stays a truncation so prefix sweeps report the honest status.
  bool Uvarint(uint64_t* v, bool* malformed) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte;
      if (!U8(&byte)) {
        return false;
      }
      result |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        if (shift == 63 && (byte & 0x7e) != 0) {
          *malformed = true;  // bits beyond 64 set
          return false;
        }
        *v = result;
        return true;
      }
    }
    *malformed = true;  // 10 continuation bytes: no terminator inside a u64
    return false;
  }
  // Raw bytes, length already validated by the caller against its own cap.
  bool Bytes(std::string* s, size_t n) {
    if (pos_ + n > len_) {
      return false;
    }
    s->assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }
  bool done() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

bool PowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

const char* TraceStatusName(TraceStatus status) {
  switch (status) {
    case TraceStatus::kOk:
      return "ok";
    case TraceStatus::kTruncated:
      return "truncated";
    case TraceStatus::kBadMagic:
      return "bad-magic";
    case TraceStatus::kBadVersion:
      return "bad-version";
    case TraceStatus::kMalformed:
      return "malformed";
    case TraceStatus::kTrailingBytes:
      return "trailing-bytes";
    case TraceStatus::kIoError:
      return "io-error";
  }
  return "?";
}

TraceStatus DecodeTrace(const uint8_t* data, size_t len, TraceData* out) {
  Reader r(data, len);
  uint32_t magic;
  if (!r.U32(&magic)) {
    return TraceStatus::kTruncated;
  }
  if (magic != kTraceMagic) {
    return TraceStatus::kBadMagic;
  }
  uint32_t version;
  if (!r.U32(&version)) {
    return TraceStatus::kTruncated;
  }
  if (version != kTraceVersion) {
    return TraceStatus::kBadVersion;
  }
  uint32_t page_size;
  uint32_t flags;
  uint64_t region_pages;
  uint64_t record_count;
  uint16_t name_len;
  if (!r.U32(&page_size) || !r.U32(&flags) || !r.U64(&region_pages) ||
      !r.U64(&record_count) || !r.U16(&name_len)) {
    return TraceStatus::kTruncated;
  }
  if (!PowerOfTwo(page_size) || page_size < 512 || page_size > 65536 || flags != 0 ||
      region_pages == 0 || region_pages > kMaxTraceRegionPages ||
      record_count > kMaxTraceRecords || name_len > kMaxTraceName) {
    return TraceStatus::kMalformed;
  }
  // A hostile record_count cannot force a huge allocation past this point: every record is
  // at least 2 bytes on the wire, so the remaining length bounds the claimable count.
  if (record_count > len) {
    return TraceStatus::kTruncated;
  }
  std::string name;
  if (!r.Bytes(&name, name_len)) {
    return TraceStatus::kTruncated;
  }

  std::vector<Access> records;
  records.reserve(record_count);
  uint64_t prev_vpage = 0;
  uint32_t prev_tenant = 0;
  bool malformed = false;
  for (uint64_t i = 0; i < record_count; ++i) {
    uint8_t tag;
    if (!r.U8(&tag)) {
      return TraceStatus::kTruncated;
    }
    if ((tag & ~0x07u) != 0) {
      return TraceStatus::kMalformed;
    }
    Access a;
    a.op = (tag & 0x01) ? AccessOp::kWrite : AccessOp::kRead;
    if (tag & 0x02) {
      uint64_t tenant;
      if (!r.Uvarint(&tenant, &malformed)) {
        return malformed ? TraceStatus::kMalformed : TraceStatus::kTruncated;
      }
      if (tenant >= kMaxTraceTenant) {
        return TraceStatus::kMalformed;
      }
      prev_tenant = static_cast<uint32_t>(tenant);
    }
    a.tenant = prev_tenant;
    uint64_t zz;
    if (!r.Uvarint(&zz, &malformed)) {
      return malformed ? TraceStatus::kMalformed : TraceStatus::kTruncated;
    }
    uint64_t vpage = prev_vpage + static_cast<uint64_t>(UnZigZag(zz));
    if (vpage >= region_pages) {
      return TraceStatus::kMalformed;
    }
    a.vpage = vpage;
    prev_vpage = vpage;
    if (tag & 0x04) {
      uint64_t think;
      if (!r.Uvarint(&think, &malformed)) {
        return malformed ? TraceStatus::kMalformed : TraceStatus::kTruncated;
      }
      if (think > UINT32_MAX) {
        return TraceStatus::kMalformed;
      }
      a.think_ns = static_cast<uint32_t>(think);
    }
    records.push_back(a);
  }
  if (!r.done()) {
    return TraceStatus::kTrailingBytes;
  }
  out->name = std::move(name);
  out->page_size = page_size;
  out->region_pages = region_pages;
  out->records = std::move(records);
  return TraceStatus::kOk;
}

std::string EncodeTrace(const TraceData& trace) {
  if (!PowerOfTwo(trace.page_size) || trace.page_size < 512 || trace.page_size > 65536 ||
      trace.region_pages == 0 || trace.region_pages > kMaxTraceRegionPages ||
      trace.records.size() > kMaxTraceRecords || trace.name.size() > kMaxTraceName) {
    return {};
  }
  for (const Access& a : trace.records) {
    if (a.vpage >= trace.region_pages || a.tenant >= kMaxTraceTenant) {
      return {};
    }
  }
  std::string out;
  PutU32(&out, kTraceMagic);
  PutU32(&out, kTraceVersion);
  PutU32(&out, trace.page_size);
  PutU32(&out, 0);
  PutU64(&out, trace.region_pages);
  PutU64(&out, trace.records.size());
  PutU16(&out, static_cast<uint16_t>(trace.name.size()));
  out.append(trace.name);
  uint64_t prev_vpage = 0;
  uint32_t prev_tenant = 0;
  for (const Access& a : trace.records) {
    uint8_t tag = a.op == AccessOp::kWrite ? 0x01 : 0x00;
    if (a.tenant != prev_tenant) {
      tag |= 0x02;
    }
    if (a.think_ns != 0) {
      tag |= 0x04;
    }
    out.push_back(static_cast<char>(tag));
    if (tag & 0x02) {
      PutUvarint(&out, a.tenant);
      prev_tenant = a.tenant;
    }
    PutUvarint(&out, ZigZag(static_cast<int64_t>(a.vpage) -
                            static_cast<int64_t>(prev_vpage)));
    prev_vpage = a.vpage;
    if (tag & 0x04) {
      PutUvarint(&out, a.think_ns);
    }
  }
  return out;
}

TraceStatus LoadTraceFile(const std::string& path, TraceData* out, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = path + ": cannot open";
    }
    return TraceStatus::kIoError;
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) {
      *error = path + ": read error";
    }
    return TraceStatus::kIoError;
  }
  TraceStatus status =
      DecodeTrace(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size(), out);
  if (status != TraceStatus::kOk && error != nullptr) {
    *error = path + ": " + TraceStatusName(status);
  }
  return status;
}

bool WriteTraceFile(const std::string& path, const TraceData& trace, std::string* error) {
  std::string bytes = EncodeTrace(trace);
  if (bytes.empty()) {
    if (error != nullptr) {
      *error = path + ": trace violates format caps (region/tenant/name/count)";
    }
    return false;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = path + ": cannot open for writing";
    }
    return false;
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) {
    *error = path + ": write error";
  }
  return ok;
}

std::shared_ptr<const WorkloadSource> MakeTraceSource(TraceData trace) {
  auto records =
      std::make_shared<std::vector<Access>>(std::move(trace.records));
  return std::make_shared<MaterializedSource>(std::move(trace.name), trace.region_pages,
                                              std::move(records));
}

}  // namespace hipec::workloads
