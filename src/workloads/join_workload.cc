#include "workloads/join_workload.h"

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "policies/oracle.h"
#include "policies/policies.h"
#include "sim/check.h"

namespace hipec::workloads {
namespace {

using mach::kPageSize;

mach::KernelParams JoinMachine(const JoinConfig& config) {
  mach::KernelParams params;
  // 64 MB machine; reserve everything beyond MSize + slack so the effective pool for the
  // outer table matches the paper's 40 MB budget on both kernels.
  params.total_frames = 16384;
  uint64_t msize_frames = static_cast<uint64_t>(config.memory_bytes) >> mach::kPageShift;
  uint64_t slack = 256;  // inner table, command buffer, manager reserve, daemon headroom
  HIPEC_CHECK(msize_frames + slack < params.total_frames);
  params.kernel_reserved_frames = params.total_frames - msize_frames - slack;
  params.pageout.free_target = 64;
  params.pageout.free_min = 16;
  params.pageout.inactive_target = 128;
  params.hipec_build = config.mode != JoinMode::kMachDefault;
  if (config.flash_backing) {
    params.disk = disk::DiskParams::Flash1994();
  }
  params.seed = config.seed;
  return params;
}

}  // namespace

JoinResult RunJoin(const JoinConfig& config) {
  JoinResult result;
  mach::KernelParams params = JoinMachine(config);
  mach::Kernel kernel(params);

  const int loops = static_cast<int>(config.inner_bytes / config.tuple_bytes);  // 64 scans
  const int64_t tuples_per_page = static_cast<int64_t>(kPageSize) / config.tuple_bytes;
  const uint64_t outer_pages = static_cast<uint64_t>(config.outer_bytes) >> mach::kPageShift;

  result.analytic_faults =
      config.mode == JoinMode::kHipecMru
          ? policies::JoinFaultsMru(config.outer_bytes, config.memory_bytes, loops)
          : policies::JoinFaultsLru(config.outer_bytes, config.memory_bytes, loops);

  mach::Task* task = kernel.CreateTask("join");

  // The pinned 4 KB inner table.
  uint64_t inner_addr = kernel.VmAllocate(task, static_cast<uint64_t>(config.inner_bytes));
  kernel.VmWire(task, inner_addr, static_cast<uint64_t>(config.inner_bytes));

  // The memory-mapped outer table.
  mach::VmObject* outer = kernel.CreateFileObject("outer_table", config.outer_bytes);

  std::unique_ptr<core::HipecEngine> engine;
  uint64_t outer_addr = 0;
  if (config.mode == JoinMode::kMachDefault) {
    outer_addr = kernel.VmMapFile(task, outer);
  } else {
    // The paper grants the join its full 40 MB request on a 64 MB machine, which exceeds a
    // 50% partition_burst; the experiment evidently raised the watermark, so we do too.
    engine = std::make_unique<core::HipecEngine>(&kernel, core::FrameManagerConfig{0.99, 64});
    core::PolicyProgram program;
    switch (config.mode) {
      case JoinMode::kHipecMru:
        // The simple-command MRU (DeQueue tail): exact for a sequential scan and O(1).
        program = policies::MruPolicy(policies::CommandStyle::kSimple);
        break;
      case JoinMode::kHipecLru:
        program = policies::LruPolicy(policies::CommandStyle::kSimple);
        break;
      default:
        program = policies::FifoPolicy(policies::CommandStyle::kSimple);
        break;
    }
    core::HipecOptions options;
    options.min_frames = static_cast<size_t>(config.memory_bytes >> mach::kPageShift);
    core::HipecRegion region = engine->VmMapHipec(task, outer, program, options);
    HIPEC_CHECK_MSG(region.ok, "join: HiPEC registration failed: " << region.error);
    outer_addr = region.addr;
  }

  sim::Nanos start = kernel.clock().now();
  int64_t faults_before = kernel.counters().Get("kernel.page_faults");
  int64_t reads_before = kernel.disk().counters().Get("disk.reads");

  // One scan of the outer table per inner tuple. Accesses are modelled per outer *page*:
  // the paging behaviour of 64 tuple touches on one page equals one touch, and the per-tuple
  // join computation is charged in bulk.
  for (int loop = 0; loop < loops && !task->terminated(); ++loop) {
    for (uint64_t p = 0; p < outer_pages && !task->terminated(); ++p) {
      kernel.Touch(task, outer_addr + p * kPageSize, /*is_write=*/false);
      kernel.clock().Advance(tuples_per_page * config.tuple_join_ns);
    }
  }

  result.elapsed = kernel.clock().now() - start;
  result.minutes = static_cast<double>(result.elapsed) / (60.0 * sim::kSecond);
  result.page_faults = kernel.counters().Get("kernel.page_faults") - faults_before;
  result.disk_reads = kernel.disk().counters().Get("disk.reads") - reads_before;
  result.terminated = task->terminated();
  result.termination_reason = task->termination_reason();
  return result;
}

}  // namespace hipec::workloads
