// The nested-loops join workload of §5.3 (Figure 6).
//
// A 4 KB inner table (64-byte tuples) is pinned in memory; the outer table (20-60 MB of
// 64-byte tuples, memory-mapped from disk) is scanned once per inner tuple — Loop = 64 scans.
// The output table is "dumped immediately", so only the outer table's paging matters. With a
// 40 MB frame budget, an LRU-like policy thrashes cyclically on every scan once the outer
// table exceeds memory, while MRU under HiPEC faults only on the part that does not fit.
#ifndef HIPEC_WORKLOADS_JOIN_WORKLOAD_H_
#define HIPEC_WORKLOADS_JOIN_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "sim/clock.h"

namespace hipec::workloads {

enum class JoinMode {
  kMachDefault,  // unmodified kernel, global FIFO-second-chance ("LRU-like") replacement
  kHipecMru,     // HiPEC with the MRU policy (the paper's solution)
  kHipecLru,     // HiPEC with an explicit LRU policy (ablation)
  kHipecFifo,    // HiPEC with plain FIFO (ablation)
};

struct JoinConfig {
  int64_t outer_bytes = 20 * 1024 * 1024;
  int64_t inner_bytes = 4096;
  int64_t tuple_bytes = 64;
  // MSize: the frame budget for the outer table (the paper pins this at 40 MB).
  int64_t memory_bytes = 40 * 1024 * 1024;
  JoinMode mode = JoinMode::kMachDefault;
  // Computation per tuple-pair join.
  sim::Nanos tuple_join_ns = 400;
  // Back the tables with flash storage instead of a mechanical disk (the §6 "new hardware"
  // extension): faults become ~16x cheaper, shrinking — but not closing — the policy gap.
  bool flash_backing = false;
  uint64_t seed = 1994;
};

struct JoinResult {
  sim::Nanos elapsed = 0;
  double minutes = 0.0;
  int64_t page_faults = 0;
  int64_t disk_reads = 0;
  int64_t analytic_faults = 0;  // the paper's PF_l / PF_m formula for this configuration
  bool terminated = false;
  std::string termination_reason;
};

JoinResult RunJoin(const JoinConfig& config);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_JOIN_WORKLOAD_H_
