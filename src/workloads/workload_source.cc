#include "workloads/workload_source.h"

#include <algorithm>

#include "sim/random.h"
#include "workloads/access_patterns.h"

namespace hipec::workloads {

namespace {

const char* PatternName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kSequential:
      return "sequential";
    case PatternKind::kCyclic:
      return "cyclic";
    case PatternKind::kUniform:
      return "uniform";
    case PatternKind::kZipf:
      return "zipf";
    case PatternKind::kStrided:
      return "strided";
    case PatternKind::kHotCold:
      return "hot_cold";
    case PatternKind::kBursty:
      return "bursty";
  }
  return "?";
}

// The page stream a SyntheticSpec names. Byte-compatibility contract: these are exactly the
// generator calls (and the kCyclic pad rule) the scenario engine made before the workload
// layer existed — changing any of them moves golden scenario fingerprints.
std::vector<uint64_t> PatternPages(const SyntheticSpec& spec, uint64_t seed) {
  switch (spec.kind) {
    case PatternKind::kSequential:
      return StridedScan(spec.pages, 1, spec.accesses);
    case PatternKind::kCyclic: {
      std::vector<uint64_t> pages = CyclicScan(spec.pages, spec.cyclic_loops);
      // Pad or truncate to the requested length by continuing the cycle.
      size_t n = pages.size();
      pages.resize(spec.accesses);
      for (size_t i = n; i < pages.size(); ++i) {
        pages[i] = pages[i % std::max<size_t>(n, 1)];
      }
      return pages;
    }
    case PatternKind::kUniform:
      return UniformRandom(spec.pages, spec.accesses, seed);
    case PatternKind::kZipf:
      return ZipfTrace(spec.pages, spec.accesses, spec.zipf_theta, seed);
    case PatternKind::kStrided:
      return StridedScan(spec.pages, spec.stride, spec.accesses);
    case PatternKind::kHotCold:
      return HotColdTrace(spec.pages, spec.hot_pages, spec.hot_fraction, spec.accesses,
                          seed);
    case PatternKind::kBursty:
      return BurstyTrace(spec.pages, spec.burst_phase, spec.accesses, seed);
  }
  return {};
}

}  // namespace

std::unique_ptr<WorkloadSource> MakePatternSource(const SyntheticSpec& spec, uint64_t seed,
                                                  std::string name) {
  std::vector<uint64_t> pages = PatternPages(spec, seed);
  sim::Rng write_rng(seed + 1);
  auto records = std::make_shared<std::vector<Access>>();
  records->reserve(pages.size());
  for (uint64_t page : pages) {
    Access a;
    a.vpage = page;
    a.op = write_rng.Chance(spec.write_fraction) ? AccessOp::kWrite : AccessOp::kRead;
    records->push_back(a);
  }
  if (name.empty()) {
    name = PatternName(spec.kind);
  }
  return std::make_unique<MaterializedSource>(std::move(name), spec.pages,
                                              std::move(records));
}

std::unique_ptr<WorkloadSource> Workload::Instantiate(uint64_t seed) const {
  if (shared_ != nullptr) {
    return shared_->Clone();
  }
  if (synthetic_.has_value()) {
    return MakePatternSource(*synthetic_, seed);
  }
  return nullptr;
}

}  // namespace hipec::workloads
