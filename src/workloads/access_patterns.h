// Synthetic page-reference trace generators for tests and ablation benches.
#ifndef HIPEC_WORKLOADS_ACCESS_PATTERNS_H_
#define HIPEC_WORKLOADS_ACCESS_PATTERNS_H_

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace hipec::workloads {

// 0, 1, ..., pages-1.
std::vector<uint64_t> SequentialScan(uint64_t pages);

// `loops` repetitions of a sequential scan — the nested-loops join pattern.
std::vector<uint64_t> CyclicScan(uint64_t pages, int loops);

// `count` uniform random references over `pages`.
std::vector<uint64_t> UniformRandom(uint64_t pages, size_t count, uint64_t seed);

// `count` Zipf-skewed references (database-index-like hot set).
std::vector<uint64_t> ZipfTrace(uint64_t pages, size_t count, double theta, uint64_t seed);

// Strided sweep: 0, s, 2s, ... wrapping over `pages`, `count` references (matrix-column walk).
std::vector<uint64_t> StridedScan(uint64_t pages, uint64_t stride, size_t count);

// Hot/cold mix: `hot_fraction` of references hit a small hot set at the front of the region
// (`hot_pages` pages), the rest are uniform over the cold remainder. The working-set pattern
// multi-tenant scenarios use for "well-behaved" tenants.
std::vector<uint64_t> HotColdTrace(uint64_t pages, uint64_t hot_pages, double hot_fraction,
                                   size_t count, uint64_t seed);

// Bursty phases: alternating phases of `phase_len` references; each phase picks a random base
// page and walks sequentially from it, so tenants slam a fresh region every phase (the
// thundering-herd / churn pattern).
std::vector<uint64_t> BurstyTrace(uint64_t pages, size_t phase_len, size_t count, uint64_t seed);

// Zipf hot set with an interleaved one-shot sequential scan (the 2Q showcase): `warm` Zipf
// draws over [0, hot_pages), then the scan pages [hot_pages, hot_pages + scan_pages) each
// followed by one more hot draw, then `tail` hot draws. One generator instance drives every
// draw, so the stream is fully determined by (hot_pages, theta, seed, warm, scan_pages, tail).
std::vector<uint64_t> ScanMixTrace(uint64_t hot_pages, double theta, uint64_t seed,
                                   size_t warm, uint64_t scan_pages, size_t tail);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_ACCESS_PATTERNS_H_
