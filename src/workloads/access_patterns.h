// Synthetic page-reference trace generators for tests and ablation benches.
#ifndef HIPEC_WORKLOADS_ACCESS_PATTERNS_H_
#define HIPEC_WORKLOADS_ACCESS_PATTERNS_H_

#include <cstdint>
#include <vector>

#include "sim/random.h"

namespace hipec::workloads {

// 0, 1, ..., pages-1.
std::vector<uint64_t> SequentialScan(uint64_t pages);

// `loops` repetitions of a sequential scan — the nested-loops join pattern.
std::vector<uint64_t> CyclicScan(uint64_t pages, int loops);

// `count` uniform random references over `pages`.
std::vector<uint64_t> UniformRandom(uint64_t pages, size_t count, uint64_t seed);

// `count` Zipf-skewed references (database-index-like hot set).
std::vector<uint64_t> ZipfTrace(uint64_t pages, size_t count, double theta, uint64_t seed);

// Strided sweep: 0, s, 2s, ... wrapping over `pages`, `count` references (matrix-column walk).
std::vector<uint64_t> StridedScan(uint64_t pages, uint64_t stride, size_t count);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_ACCESS_PATTERNS_H_
