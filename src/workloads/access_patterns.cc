#include "workloads/access_patterns.h"

namespace hipec::workloads {

std::vector<uint64_t> SequentialScan(uint64_t pages) {
  std::vector<uint64_t> trace;
  trace.reserve(pages);
  for (uint64_t p = 0; p < pages; ++p) {
    trace.push_back(p);
  }
  return trace;
}

std::vector<uint64_t> CyclicScan(uint64_t pages, int loops) {
  std::vector<uint64_t> trace;
  trace.reserve(pages * static_cast<uint64_t>(loops));
  for (int l = 0; l < loops; ++l) {
    for (uint64_t p = 0; p < pages; ++p) {
      trace.push_back(p);
    }
  }
  return trace;
}

std::vector<uint64_t> UniformRandom(uint64_t pages, size_t count, uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<uint64_t> trace;
  trace.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    trace.push_back(rng.Below(pages));
  }
  return trace;
}

std::vector<uint64_t> ZipfTrace(uint64_t pages, size_t count, double theta, uint64_t seed) {
  sim::ZipfGenerator zipf(pages, theta, seed);
  std::vector<uint64_t> trace;
  trace.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    trace.push_back(zipf.Next());
  }
  return trace;
}

std::vector<uint64_t> StridedScan(uint64_t pages, uint64_t stride, size_t count) {
  std::vector<uint64_t> trace;
  trace.reserve(count);
  uint64_t p = 0;
  for (size_t i = 0; i < count; ++i) {
    trace.push_back(p % pages);
    p += stride;
  }
  return trace;
}

std::vector<uint64_t> HotColdTrace(uint64_t pages, uint64_t hot_pages, double hot_fraction,
                                   size_t count, uint64_t seed) {
  if (hot_pages == 0 || hot_pages > pages) {
    hot_pages = pages;
  }
  sim::Rng rng(seed);
  std::vector<uint64_t> trace;
  trace.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (pages == hot_pages || rng.Chance(hot_fraction)) {
      trace.push_back(rng.Below(hot_pages));
    } else {
      trace.push_back(hot_pages + rng.Below(pages - hot_pages));
    }
  }
  return trace;
}

std::vector<uint64_t> BurstyTrace(uint64_t pages, size_t phase_len, size_t count,
                                  uint64_t seed) {
  if (phase_len == 0) {
    phase_len = 1;
  }
  sim::Rng rng(seed);
  std::vector<uint64_t> trace;
  trace.reserve(count);
  uint64_t base = 0;
  for (size_t i = 0; i < count; ++i) {
    if (i % phase_len == 0) {
      base = rng.Below(pages);
    }
    trace.push_back((base + (i % phase_len)) % pages);
  }
  return trace;
}

std::vector<uint64_t> ScanMixTrace(uint64_t hot_pages, double theta, uint64_t seed,
                                   size_t warm, uint64_t scan_pages, size_t tail) {
  sim::ZipfGenerator hot(hot_pages, theta, seed);
  std::vector<uint64_t> trace;
  trace.reserve(warm + 2 * scan_pages + tail);
  for (size_t i = 0; i < warm; ++i) {
    trace.push_back(hot.Next());
  }
  for (uint64_t s = hot_pages; s < hot_pages + scan_pages; ++s) {
    trace.push_back(s);
    trace.push_back(hot.Next());
  }
  for (size_t i = 0; i < tail; ++i) {
    trace.push_back(hot.Next());
  }
  return trace;
}

}  // namespace hipec::workloads
