// An AIM Suite III-like multiuser throughput benchmark (§5.2, Figure 5).
//
// N simulated users each run a stream of jobs drawn from a tunable mix of compute, disk and
// memory operations, contending for one CPU and one disk on the virtual clock (the paper's
// machine runs with one CPU enabled). Throughput (jobs/minute) rises with multiprogramming
// overlap, peaks around 5-6 users, and declines as the aggregate working set outgrows
// physical memory — the Figure 5 shape.
//
// Two kernel flavours are modelled exactly as in §5.2: the unmodified Mach kernel, and the
// HiPEC kernel, which adds (a) the per-fault check "is this address in a specific region?"
// and (b) the security-checker thread waking periodically and stealing CPU. No specific
// applications run during AIM, so those are the only differences — the experiment measures
// the overhead HiPEC imposes on non-specific applications.
#ifndef HIPEC_WORKLOADS_AIM_SUITE_H_
#define HIPEC_WORKLOADS_AIM_SUITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace hipec::workloads {

struct WorkloadMix {
  std::string name;
  // Relative weights of operation types within a job.
  double compute_weight = 1.0;
  double disk_weight = 1.0;
  double memory_weight = 1.0;

  // The paper's three mixes.
  static WorkloadMix Standard() { return {"standard", 1.0, 1.0, 1.0}; }
  static WorkloadMix DiskHeavy() { return {"disk", 0.5, 2.5, 1.0}; }
  static WorkloadMix MemoryHeavy() { return {"memory", 0.5, 0.5, 3.0}; }
};

struct AimConfig {
  WorkloadMix mix = WorkloadMix::Standard();
  int users = 1;
  bool hipec_kernel = false;
  // Virtual time simulated.
  sim::Nanos duration = 120 * sim::kSecond;
  // Machine size in frames (64 MB machine with ~14k usable).
  size_t memory_frames = 14'000;
  // Per-user working set in pages; aggregate pressure appears beyond
  // memory_frames / working_set_pages users.
  size_t working_set_pages = 1'600;
  // Operations per job.
  int ops_per_job = 12;
  uint64_t seed = 3;
};

struct AimResult {
  double jobs_per_minute = 0.0;
  int64_t jobs_completed = 0;
  int64_t page_faults = 0;
  int64_t checker_wakeups = 0;
  double cpu_utilization = 0.0;
  double disk_utilization = 0.0;
};

AimResult RunAim(const AimConfig& config);

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_AIM_SUITE_H_
