// The one workload layer: every reference stream in the tree — synthetic generators, the
// scenario engine's per-tenant patterns, and captured real-program traces — is produced
// behind the WorkloadSource interface. Sources are pull-based (Next), seekable (Seek), and
// cheaply cloneable (Clone shares the underlying record storage), so one trace can fan out
// to thousands of tenants without duplicating its records.
//
// Synthetic streams are described by a SyntheticSpec (the PatternKind family the scenario
// engine has always shipped) and materialized by MakePatternSource, which is the ONLY
// consumer of the per-pattern generators in access_patterns.h: the compatibility contract is
// that MakePatternSource(spec, seed) yields byte-identical streams to the pre-refactor
// scenario::MaterializeTrace, so golden scenario fingerprints do not move.
//
// The Workload handle is the value type specs carry: either a SyntheticSpec (seeded at
// Instantiate time, so per-tenant ordinals keep streams independent) or a shared
// already-built source such as a loaded .hpt trace (seed-ignored; every tenant replays the
// same evidence).
#ifndef HIPEC_WORKLOADS_WORKLOAD_SOURCE_H_
#define HIPEC_WORKLOADS_WORKLOAD_SOURCE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace hipec::workloads {

enum class AccessOp : uint8_t {
  kRead = 0,
  kWrite = 1,
};

// One reference-stream record. think_ns is the modelled gap before the access (captured
// traces carry real inter-access time; synthetic streams leave it 0).
struct Access {
  uint64_t vpage = 0;
  uint32_t tenant = 0;
  uint32_t think_ns = 0;
  AccessOp op = AccessOp::kRead;

  bool is_write() const { return op == AccessOp::kWrite; }
  bool operator==(const Access& other) const {
    return vpage == other.vpage && tenant == other.tenant && think_ns == other.think_ns &&
           op == other.op;
  }
};

// Pull-based, seekable, cheaply cloneable reference stream.
class WorkloadSource {
 public:
  virtual ~WorkloadSource() = default;

  virtual const std::string& name() const = 0;
  // Exclusive upper bound on the vpage values this source emits (the region size a replay
  // must allocate).
  virtual uint64_t region_pages() const = 0;
  // Total records in the stream.
  virtual uint64_t size() const = 0;
  // Current cursor (records already returned by Next since the last Seek/construction).
  virtual uint64_t pos() const = 0;
  // Moves the cursor; position is clamped to [0, size()].
  virtual void Seek(uint64_t pos) = 0;
  void Reset() { Seek(0); }
  // Pulls the next record. Returns false at end of stream (out untouched).
  virtual bool Next(Access* out) = 0;
  // A new source over the same stream with its own cursor at 0. Clones share the backing
  // record storage, so cloning is O(1) regardless of stream length.
  virtual std::unique_ptr<WorkloadSource> Clone() const = 0;
};

// The concrete source every producer in the tree currently uses: a shared immutable record
// vector plus a cursor. Loaded traces and materialized synthetic streams are both served
// from this.
class MaterializedSource : public WorkloadSource {
 public:
  MaterializedSource(std::string name, uint64_t region_pages,
                     std::shared_ptr<const std::vector<Access>> records)
      : name_(std::move(name)),
        region_pages_(region_pages),
        records_(std::move(records)) {}

  const std::string& name() const override { return name_; }
  uint64_t region_pages() const override { return region_pages_; }
  uint64_t size() const override { return records_->size(); }
  uint64_t pos() const override { return pos_; }
  void Seek(uint64_t pos) override { pos_ = pos < records_->size() ? pos : records_->size(); }
  bool Next(Access* out) override {
    if (pos_ >= records_->size()) {
      return false;
    }
    *out = (*records_)[pos_++];
    return true;
  }
  std::unique_ptr<WorkloadSource> Clone() const override {
    return std::make_unique<MaterializedSource>(name_, region_pages_, records_);
  }

  // Exposed so tests can prove Clone shares storage instead of copying it.
  const std::vector<Access>* records() const { return records_.get(); }

 private:
  std::string name_;
  uint64_t region_pages_;
  std::shared_ptr<const std::vector<Access>> records_;
  uint64_t pos_ = 0;
};

// The synthetic pattern family. This enum is the scenario engine's PatternKind, moved to the
// workload layer so every consumer shares one definition (scenario keeps an alias).
enum class PatternKind {
  kSequential,
  kCyclic,
  kUniform,
  kZipf,
  kStrided,
  kHotCold,
  kBursty,
};

// Shape of one synthetic stream; field defaults match the pre-refactor TenantSpec defaults.
struct SyntheticSpec {
  PatternKind kind = PatternKind::kHotCold;
  uint64_t pages = 128;
  size_t accesses = 2000;
  double write_fraction = 0.0;
  double zipf_theta = 0.9;
  uint64_t stride = 8;
  uint64_t hot_pages = 32;
  double hot_fraction = 0.9;
  size_t burst_phase = 64;
  int cyclic_loops = 4;
};

// Materializes a synthetic stream. This is the PatternKind compatibility adapter: for every
// kind it reproduces the pre-refactor scenario::MaterializeTrace byte for byte (same
// generator calls from access_patterns.h, same write-flag derivation from seed + 1).
std::unique_ptr<WorkloadSource> MakePatternSource(const SyntheticSpec& spec, uint64_t seed,
                                                  std::string name = "");

// Copyable handle describing a tenant's reference stream. Either a synthetic spec (seeded
// per-tenant at Instantiate) or a shared pre-built source (seed ignored — trace fan-out).
class Workload {
 public:
  Workload() = default;

  static Workload Pattern(const SyntheticSpec& spec) {
    Workload w;
    w.synthetic_ = spec;
    return w;
  }
  static Workload Shared(std::shared_ptr<const WorkloadSource> source) {
    Workload w;
    w.shared_ = std::move(source);
    return w;
  }

  bool set() const { return synthetic_.has_value() || shared_ != nullptr; }

  // Builds a source with its own cursor. `seed` feeds synthetic generation only.
  std::unique_ptr<WorkloadSource> Instantiate(uint64_t seed) const;

 private:
  std::optional<SyntheticSpec> synthetic_;
  std::shared_ptr<const WorkloadSource> shared_;
};

}  // namespace hipec::workloads

#endif  // HIPEC_WORKLOADS_WORKLOAD_SOURCE_H_
