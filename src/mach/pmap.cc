#include "mach/pmap.h"

#include "sim/check.h"

namespace hipec::mach {

void Pmap::EnsureTask(Task* task) {
  maps_[task->id()];
}

void Pmap::Enter(Task* task, uint64_t vaddr, VmPage* page, bool write_protected) {
  HIPEC_CHECK_MSG(!page->has_mapping,
                  "frame " << page->frame_number << " is already mapped (single-mapping model)");
  auto& task_map = maps_[task->id()];
  auto [it, inserted] = task_map.emplace(Vpn(vaddr), Translation{page, write_protected});
  HIPEC_CHECK_MSG(inserted, "vaddr already translated");
  page->has_mapping = true;
  page->mapped_task = task;
  page->mapped_vaddr = vaddr & ~(kPageSize - 1);
  count_.fetch_add(1, std::memory_order_relaxed);
}

VmPage* Pmap::Lookup(const Task* task, uint64_t vaddr) const {
  auto tm = maps_.find(task->id());
  if (tm == maps_.end()) {
    return nullptr;
  }
  auto it = tm->second.find(Vpn(vaddr));
  return it == tm->second.end() ? nullptr : it->second.page;
}

void Pmap::RemovePage(VmPage* page) {
  if (!page->has_mapping) {
    return;
  }
  auto tm = maps_.find(page->mapped_task->id());
  HIPEC_CHECK(tm != maps_.end());
  size_t erased = tm->second.erase(Vpn(page->mapped_vaddr));
  HIPEC_CHECK(erased == 1);
  page->has_mapping = false;
  page->mapped_task = nullptr;
  page->mapped_vaddr = 0;
  count_.fetch_sub(1, std::memory_order_relaxed);
}

void Pmap::RemoveTask(Task* task) {
  auto tm = maps_.find(task->id());
  if (tm == maps_.end()) {
    return;
  }
  for (auto& [vpn, translation] : tm->second) {
    VmPage* page = translation.page;
    page->has_mapping = false;
    page->mapped_task = nullptr;
    page->mapped_vaddr = 0;
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  // Keep the (now empty) outer slot: concurrent lookups in other tasks must never observe
  // a rehash of the outer table (see class comment in pmap.h).
  tm->second.clear();
}

bool Pmap::IsWriteProtected(const VmPage* page) const {
  if (!page->has_mapping) {
    return false;
  }
  auto tm = maps_.find(page->mapped_task->id());
  HIPEC_CHECK(tm != maps_.end());
  auto it = tm->second.find(Vpn(page->mapped_vaddr));
  HIPEC_CHECK(it != tm->second.end());
  return it->second.write_protected;
}

}  // namespace hipec::mach
