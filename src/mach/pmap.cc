#include "mach/pmap.h"

#include "sim/check.h"

namespace hipec::mach {

void Pmap::Enter(Task* task, uint64_t vaddr, VmPage* page, bool write_protected) {
  HIPEC_CHECK_MSG(!page->has_mapping,
                  "frame " << page->frame_number << " is already mapped (single-mapping model)");
  auto [it, inserted] =
      task->pmap_translations().emplace(Vpn(vaddr), PmapTranslation{page, write_protected});
  HIPEC_CHECK_MSG(inserted, "vaddr already translated");
  page->has_mapping = true;
  page->mapped_task = task;
  page->mapped_vaddr = vaddr & ~(kPageSize - 1);
  count_.fetch_add(1, std::memory_order_relaxed);
}

VmPage* Pmap::Lookup(const Task* task, uint64_t vaddr) const {
  const auto& table = task->pmap_translations();
  auto it = table.find(Vpn(vaddr));
  return it == table.end() ? nullptr : it->second.page;
}

void Pmap::RemovePage(VmPage* page) {
  if (!page->has_mapping) {
    return;
  }
  size_t erased = page->mapped_task->pmap_translations().erase(Vpn(page->mapped_vaddr));
  HIPEC_CHECK(erased == 1);
  page->has_mapping = false;
  page->mapped_task = nullptr;
  page->mapped_vaddr = 0;
  count_.fetch_sub(1, std::memory_order_relaxed);
}

void Pmap::RemoveTask(Task* task) {
  for (auto& [vpn, translation] : task->pmap_translations()) {
    VmPage* page = translation.page;
    page->has_mapping = false;
    page->mapped_task = nullptr;
    page->mapped_vaddr = 0;
    count_.fetch_sub(1, std::memory_order_relaxed);
  }
  task->pmap_translations().clear();
}

bool Pmap::IsWriteProtected(const VmPage* page) const {
  if (!page->has_mapping) {
    return false;
  }
  const auto& table = page->mapped_task->pmap_translations();
  auto it = table.find(Vpn(page->mapped_vaddr));
  HIPEC_CHECK(it != table.end());
  return it->second.write_protected;
}

}  // namespace hipec::mach
