#include "mach/frame_pool.h"

#include <string>

#include "sim/check.h"

namespace hipec::mach {

ShardedFramePool::ShardedFramePool(size_t shards) {
  HIPEC_CHECK(shards > 0);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>("vm_page_queue_free." + std::to_string(i)));
  }
}

void ShardedFramePool::EnableConcurrent() {
  concurrent_ = true;
  for (auto& shard : shards_) {
    shard->mu.Enable(true);
  }
  magazines_mu_.Enable(true);
}

size_t ShardedFramePool::HomeShard() const {
  if (!concurrent_) {
    // Deterministic mode is single-threaded: a fixed home keeps drain order reproducible.
    return 0;
  }
  static std::atomic<size_t> next_thread{0};
  thread_local size_t thread_stripe = next_thread.fetch_add(1, std::memory_order_relaxed);
  return thread_stripe % shards_.size();
}

void ShardedFramePool::AddBootFrame(VmPage* page) {
  Shard& shard = *shards_[next_boot_++ % shards_.size()];
  sim::ScopedLock lock(shard.mu);
  shard.queue.EnqueueTail(page, 0);
  total_.fetch_add(1, std::memory_order_relaxed);
}

VmPage* ShardedFramePool::Take() {
  size_t home = HomeShard();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    sim::ScopedLock lock(shard.mu);
    VmPage* page = shard.queue.DequeueHead();
    if (page != nullptr) {
      total_.fetch_sub(1, std::memory_order_relaxed);
      return page;
    }
  }
  return nullptr;
}

void ShardedFramePool::Put(VmPage* page, sim::Nanos now) {
  Shard& shard = *shards_[HomeShard()];
  sim::ScopedLock lock(shard.mu);
  shard.queue.EnqueueTail(page, now);
  total_.fetch_add(1, std::memory_order_relaxed);
}

size_t ShardedFramePool::TakeBatch(size_t n, PageQueue* out, sim::Nanos now) {
  size_t got = 0;
  size_t home = HomeShard();
  for (size_t i = 0; i < shards_.size() && got < n; ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    sim::ScopedLock lock(shard.mu);
    while (got < n) {
      VmPage* page = shard.queue.DequeueHead();
      if (page == nullptr) {
        break;
      }
      total_.fetch_sub(1, std::memory_order_relaxed);
      out->EnqueueTail(page, now);
      ++got;
    }
  }
  return got;
}

void ShardedFramePool::PutBatch(PageQueue* from, size_t n, sim::Nanos now) {
  Shard& shard = *shards_[HomeShard()];
  sim::ScopedLock lock(shard.mu);
  for (size_t i = 0; i < n; ++i) {
    VmPage* page = from->DequeueHead();
    if (page == nullptr) {
      break;
    }
    shard.queue.EnqueueTail(page, now);
    total_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardedFramePool::Owns(const PageQueue* q) const {
  if (q == nullptr) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (&shard->queue == q) {
      return true;
    }
  }
  sim::ScopedLock lock(magazines_mu_);
  for (const PageQueue* magazine : magazines_) {
    if (magazine == q) {
      return true;
    }
  }
  return false;
}

void ShardedFramePool::RegisterMagazine(const PageQueue* q) {
  sim::ScopedLock lock(magazines_mu_);
  magazines_.push_back(q);
}

void ShardedFramePool::UnregisterMagazine(const PageQueue* q) {
  sim::ScopedLock lock(magazines_mu_);
  std::erase(magazines_, q);
}

FrameMagazine::FrameMagazine(ShardedFramePool* pool, size_t capacity, const std::string& name)
    : pool_(pool), capacity_(capacity < 2 ? 2 : capacity), queue_("magazine_" + name) {
  pool_->RegisterMagazine(&queue_);
}

FrameMagazine::~FrameMagazine() {
  HIPEC_CHECK_MSG(queue_.empty(), "magazine destroyed holding " << queue_.count()
                                                                << " frame(s); Flush() first");
  pool_->UnregisterMagazine(&queue_);
}

VmPage* FrameMagazine::Take(sim::Nanos now) {
  VmPage* page = queue_.DequeueHead();
  if (page != nullptr) {
    return page;
  }
  if (pool_->TakeBatch(capacity_ / 2, &queue_, now) == 0) {
    return nullptr;
  }
  return queue_.DequeueHead();
}

void FrameMagazine::Put(VmPage* page, sim::Nanos now) {
  queue_.EnqueueTail(page, now);
  if (queue_.count() > capacity_) {
    pool_->PutBatch(&queue_, capacity_ / 2, now);
  }
}

void FrameMagazine::Flush(sim::Nanos now) {
  pool_->PutBatch(&queue_, queue_.count(), now);
}

}  // namespace hipec::mach
