#include "mach/frame_pool.h"

#include <string>

#include "sim/check.h"

namespace hipec::mach {

ShardedFramePool::ShardedFramePool(size_t shards) {
  HIPEC_CHECK(shards > 0);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>("vm_page_queue_free." + std::to_string(i)));
  }
}

void ShardedFramePool::EnableConcurrent() {
  concurrent_ = true;
  for (auto& shard : shards_) {
    shard->mu.Enable(true);
  }
}

size_t ShardedFramePool::HomeShard() const {
  if (!concurrent_) {
    // Deterministic mode is single-threaded: a fixed home keeps drain order reproducible.
    return 0;
  }
  static std::atomic<size_t> next_thread{0};
  thread_local size_t thread_stripe = next_thread.fetch_add(1, std::memory_order_relaxed);
  return thread_stripe % shards_.size();
}

void ShardedFramePool::AddBootFrame(VmPage* page) {
  Shard& shard = *shards_[next_boot_++ % shards_.size()];
  sim::ScopedLock lock(shard.mu);
  shard.queue.EnqueueTail(page, 0);
  total_.fetch_add(1, std::memory_order_relaxed);
}

VmPage* ShardedFramePool::Take() {
  size_t home = HomeShard();
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[(home + i) % shards_.size()];
    sim::ScopedLock lock(shard.mu);
    VmPage* page = shard.queue.DequeueHead();
    if (page != nullptr) {
      total_.fetch_sub(1, std::memory_order_relaxed);
      return page;
    }
  }
  return nullptr;
}

void ShardedFramePool::Put(VmPage* page, sim::Nanos now) {
  Shard& shard = *shards_[HomeShard()];
  sim::ScopedLock lock(shard.mu);
  shard.queue.EnqueueTail(page, now);
  total_.fetch_add(1, std::memory_order_relaxed);
}

bool ShardedFramePool::Owns(const PageQueue* q) const {
  for (const auto& shard : shards_) {
    if (&shard->queue == q) {
      return true;
    }
  }
  return false;
}

}  // namespace hipec::mach
