// The kernel facade: physical memory, tasks, address maps, the fault path, the pageout
// daemon, the disk, and the virtual clock — the substrate HiPEC is implemented on.
//
// Two kernel builds are modelled, as in §5.2:
//   * the unmodified Mach kernel (`hipec_build = false`), and
//   * the modified HiPEC kernel (`hipec_build = true`), which pays an extra check on every
//     fault ("is this address in a region controlled by a specific application?") and hosts
//     the security-checker thread.
#ifndef HIPEC_MACH_KERNEL_H_
#define HIPEC_MACH_KERNEL_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "disk/disk_model.h"
#include "mach/emm.h"
#include "mach/pageout_daemon.h"
#include "mach/pmap.h"
#include "mach/vm_map.h"
#include "mach/vm_object.h"
#include "mach/vm_page.h"
#include "sim/clock.h"
#include "sim/cost_model.h"
#include "sim/lock.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace hipec::mach {

// True when the HIPEC_JIT environment variable selects the policy JIT (set and not "0").
// Read once per KernelParams construction so a test or CI job flips the whole suite's
// dispatch engine without touching call sites.
bool DefaultJitMode();

struct KernelParams {
  // 64 MB machine, like the paper's Acer Altos 10000.
  uint64_t total_frames = 16384;
  // Frames wired by the kernel at boot (text, data, zones, buffers).
  uint64_t kernel_reserved_frames = 2048;
  PageoutTargets pageout;
  // Build flavour (see file comment).
  bool hipec_build = false;
  sim::CostModel costs;
  disk::DiskParams disk;
  uint64_t seed = 0x1994;
  // Execution mode (sim/clock.h): the deterministic virtual-clock reference mode, or real
  // threads on a monotonic clock with the lock hierarchy armed (DESIGN.md §10).
  sim::ExecMode exec_mode = sim::ExecMode::kDeterministic;
  // Shards in the global free-frame pool (mach/frame_pool.h).
  size_t free_pool_shards = ShardedFramePool::kDefaultShards;
  // Shards in the pageout daemon's active/inactive queues (mach/pageout_daemon.h). 0 = pick
  // the default: 1 in deterministic mode, hardware_concurrency() (clamped) in real-threads.
  size_t daemon_shards = 0;
  // Run policies through the install-time template JIT (hipec/jit.h) instead of the IR
  // interpreter. Safe to enable anywhere: hosts without an emitter fall back to the
  // interpreter per event. Defaults from the HIPEC_JIT environment variable.
  bool jit_mode = DefaultJitMode();
};

// The execution context threaded through every kernel-side component (frame manager,
// checker, engine, executor) in place of reaching back into kernel singletons: which clock
// time comes from, which tracer events go to, which cost model charges derive from, and
// which execution mode — and therefore locking discipline — is in force.
//
// The vclock/clock split is the hot-path contract: `vclock` is non-null exactly in
// deterministic mode, so per-command charging is a devirtualized inline call behind one
// predictable branch, and real-threads mode (where host time passes by itself) pays nothing.
struct KernelContext {
  sim::Clock* clock = nullptr;
  sim::VirtualClock* vclock = nullptr;  // non-null iff deterministic
  sim::Tracer* tracer = nullptr;
  const sim::CostModel* costs = nullptr;
  sim::ExecMode mode = sim::ExecMode::kDeterministic;

  bool concurrent() const { return mode == sim::ExecMode::kRealThreads; }
  sim::Nanos now() const { return vclock != nullptr ? vclock->now() : clock->now(); }
  // Charges modelled cost: advances virtual time, or does nothing under a real clock.
  void Charge(sim::Nanos ns) const {
    if (vclock != nullptr) {
      vclock->Advance(ns);
    }
  }
};

// Context handed to the HiPEC engine when a fault lands in a specific region.
struct FaultContext {
  Task* task;
  VmMapEntry* entry;
  uint64_t vaddr;
  uint64_t object_offset;
  bool is_write;
};

// Hook through which the HiPEC engine (src/hipec) plugs into the fault path without the mach
// layer depending on it.
class FaultInterceptor {
 public:
  virtual ~FaultInterceptor() = default;
  // Handles a fault in a region whose object has a container. Returns false if the fault
  // could not be handled (the kernel then terminates the task).
  virtual bool HandleFault(const FaultContext& ctx) = 0;
  // Invoked before the kernel tears down a specific region, so private frames are returned.
  virtual void OnRegionTeardown(Task* task, VmMapEntry* entry) = 0;

  // Low-memory notification: the pageout daemon could not restore its free target while
  // serving a non-specific fault. Called from the fault path (foreground), so implementations
  // may reclaim, adapt watermarks, and charge time. Default: ignore.
  virtual void OnMemoryPressure() {}
};

// Snapshot of where every physical frame currently is; used by the conservation invariant.
struct FrameAccounting {
  size_t total = 0;
  size_t global_free = 0;
  size_t global_active = 0;
  size_t global_inactive = 0;
  size_t container_owned = 0;  // frames on HiPEC private queues (owner != nullptr)
  size_t manager_owned = 0;    // frames held by the frame manager itself (reserve + laundry)
  size_t wired = 0;
  size_t unaccounted = 0;  // should be 0 between operations

  size_t Sum() const {
    return global_free + global_active + global_inactive + container_owned + manager_owned +
           wired + unaccounted;
  }
};

class Kernel {
 public:
  explicit Kernel(KernelParams params);
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;
  ~Kernel();

  // --- Task and object management -----------------------------------------------------------

  Task* CreateTask(const std::string& name);
  void TerminateTask(Task* task, const std::string& reason);

  // Creates a file-like object with dedicated disk blocks (a memory-mappable data file).
  VmObject* CreateFileObject(const std::string& name, uint64_t size_bytes);

  // Creates an anonymous (zero-fill, swap-backed) object not yet mapped anywhere. Used by
  // vm_allocate() and by vm_allocate_hipec().
  VmObject* CreateAnonObject(uint64_t size_bytes);

  // Routes an object's backing-store traffic through an external pager (EMM interface).
  void AttachPager(VmObject* object, ExternalPager* pager) { object->pager = pager; }

  // Object lookup by id (used by pagers servicing messages).
  VmObject* FindObject(uint64_t object_id) const;

  // --- System calls (each charges the syscall cost) ------------------------------------------

  // vm_allocate(): anonymous, zero-filled, swap-backed region. Returns the region address.
  uint64_t VmAllocate(Task* task, uint64_t size_bytes);

  // vm_map(): maps a file object into the address space. Returns the region address.
  uint64_t VmMapFile(Task* task, VmObject* object);

  // vm_deallocate(): removes the region starting at `start`, freeing resident frames.
  void VmDeallocate(Task* task, uint64_t start);

  // Fault-in and wire [vaddr, vaddr+size): the pages are removed from replacement queues.
  void VmWire(Task* task, uint64_t vaddr, uint64_t size_bytes);

  // A null system call (used by Table 4 and by the upcall/IPC baselines).
  void NullSyscall();

  // Creates a wired, write-protected region (the "wired down user-level area" holding a HiPEC
  // command buffer, §4.1). Frames are taken from the global pool and never paged.
  uint64_t MapWiredRegion(Task* task, uint64_t size_bytes);

  // --- Memory access -------------------------------------------------------------------------

  // One user-level access. Returns false if the task is (or becomes) terminated.
  bool Touch(Task* task, uint64_t vaddr, bool is_write);

  // Touches every page of [vaddr, vaddr+size) once.
  bool TouchRange(Task* task, uint64_t vaddr, uint64_t size_bytes, bool is_write);

  // Asynchronously writes back the page mapped at `vaddr` if it is resident and dirty.
  // Takes the same world/task locks as Touch, so external front-ends (hipecd's drain loop)
  // may call it from any thread. Returns false only if the task is terminated; a clean or
  // non-resident page is a successful no-op.
  bool FlushAddress(Task* task, uint64_t vaddr);

  // --- Services used by the daemon and the HiPEC engine ---------------------------------------

  // Unmaps, optionally flushes (if dirty), and removes the page from its object. The page must
  // already be off all queues. After this the frame is free to reuse.
  //
  // Returns false only in real-threads mode, when the mapping task's lock could not be
  // acquired without inverting the hierarchy (manager/daemon → task is a try-lock edge,
  // DESIGN.md §10); the caller must requeue the page and pick another victim. Always true in
  // deterministic mode and whenever the caller already holds the task lock.
  [[nodiscard]] bool EvictPage(VmPage* page, bool flush_if_dirty);

  // Asynchronously writes a resident dirty page to its backing store and clears the dirty bit.
  void FlushPageAsync(VmPage* page);

  // Installs `page` as the resident page for (entry, vaddr): disk read if the data is only on
  // disk, object insert, pmap enter, bits set. Charges the fault-path base cost.
  void InstallPage(Task* task, VmMapEntry* entry, uint64_t vaddr, VmPage* page, bool is_write);

  void ChargePageoutScan(size_t pages_examined);

  // CPU time consumed by kernel threads (the security checker) while no foreground
  // computation is running. Event callbacks cannot advance the clock themselves, so they
  // accumulate their cost here and the next foreground operation pays it. Atomic because the
  // real-threads checker charges from its own thread.
  void AddDeferredCharge(sim::Nanos ns) {
    pending_charge_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  sim::Nanos pending_deferred_charge() const {
    return pending_charge_ns_.load(std::memory_order_relaxed);
  }

  // --- Components ----------------------------------------------------------------------------

  sim::Clock& clock() { return *clock_ptr_; }
  // The virtual clock, or nullptr in real-threads mode. Hot paths that charge modelled time
  // use this (one null check instead of a virtual call); code that needs RunUntil() or
  // dispatching() must run in deterministic mode and may CHECK it non-null.
  sim::VirtualClock* virtual_clock() { return vclock_.get(); }
  const KernelContext& ctx() const { return ctx_; }
  sim::ExecMode exec_mode() const { return params_.exec_mode; }
  bool concurrent() const { return params_.exec_mode == sim::ExecMode::kRealThreads; }
  sim::Tracer& tracer() { return tracer_; }
  const sim::CostModel& costs() const { return params_.costs; }
  disk::DiskModel& disk() { return *disk_; }
  PageoutDaemon& daemon() { return *daemon_; }
  Pmap& pmap() { return pmap_; }
  sim::CounterSet& counters() { return counters_; }
  const KernelParams& params() const { return params_; }
  bool hipec_build() const { return params_.hipec_build; }

  // The stop-the-world lock for cross-cutting audits in real-threads mode: fault threads
  // hold it shared for the duration of each kernel entry point; the invariant auditor takes
  // it exclusive to see a quiesced machine. No-op in deterministic mode.
  sim::WorldLock& world() { return world_; }

  void SetFaultInterceptor(FaultInterceptor* interceptor) { interceptor_ = interceptor; }

  // Forwards the daemon's low-memory signal to the interceptor (re-entrancy guarded; in
  // real-threads mode the guard is per-machine, so concurrent notifications coalesce —
  // pressure handling is advisory and the loser's fault path re-checks the watermarks).
  void NotifyMemoryPressure() {
    if (interceptor_ == nullptr) {
      return;
    }
    bool expected = false;
    if (!in_pressure_notification_.compare_exchange_strong(expected, true,
                                                           std::memory_order_acq_rel)) {
      return;
    }
    interceptor_->OnMemoryPressure();
    in_pressure_notification_.store(false, std::memory_order_release);
  }

  // Frames that were free once the kernel finished booting; partition_burst derives from it.
  uint64_t boot_free_frames() const { return boot_free_frames_; }

  // `manager_owner` (when non-null) is the frame manager's self-ownership tag: frames whose
  // owner equals it are classified manager_owned instead of container_owned, letting the
  // scenario auditor state the conservation invariant per pool.
  FrameAccounting ComputeFrameAccounting(const void* manager_owner = nullptr) const;

  // Visits every physical frame (wired or not). Used by recovery paths (leaked-frame sweeps)
  // and invariant checks; `fn` must not allocate or free frames.
  template <typename Fn>
  void ForEachFrame(Fn&& fn) {
    for (VmPage& page : frames_) {
      fn(&page);
    }
  }

  uint64_t AllocSwapBlocks(uint64_t n_pages);

 private:
  void DefaultFault(Task* task, VmMapEntry* entry, uint64_t vaddr, bool is_write);
  // EvictPage with the task-lock edge already resolved by the caller.
  void EvictPageLocked(VmPage* page, bool flush_if_dirty);
  uint64_t AllocSwapBlocksLocked(uint64_t n_pages);

  KernelParams params_;
  // Exactly one clock exists per kernel; clock_ptr_ is the erased view, vclock_ the
  // deterministic fast path (null in real-threads mode).
  std::unique_ptr<sim::VirtualClock> vclock_;
  std::unique_ptr<sim::RealClock> rclock_;
  sim::Clock* clock_ptr_ = nullptr;
  std::unique_ptr<disk::DiskModel> disk_;
  std::vector<VmPage> frames_;
  std::unique_ptr<PageoutDaemon> daemon_;
  Pmap pmap_;
  // Guards tasks_/objects_/id counters/swap cursor — pure bookkeeping, rank kLeaf.
  mutable sim::OrderedMutex structure_mu_{sim::LockRank::kLeaf};
  std::vector<std::unique_ptr<Task>> tasks_;
  std::vector<std::unique_ptr<VmObject>> objects_;
  FaultInterceptor* interceptor_ = nullptr;
  sim::CounterSet counters_;
  uint64_t next_object_id_ = 1;
  uint64_t next_task_id_ = 1;
  uint64_t next_disk_block_ = 1'000'000;  // swap + file blocks allocated upward from here
  uint64_t boot_free_frames_ = 0;
  std::atomic<sim::Nanos> pending_charge_ns_{0};
  std::atomic<bool> in_pressure_notification_{false};
  sim::WorldLock world_;
  sim::Tracer tracer_;
  KernelContext ctx_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_KERNEL_H_
