#include "mach/emm.h"

#include "mach/kernel.h"
#include "mach/vm_object.h"
#include "sim/check.h"

namespace hipec::mach {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrDataRequests = sim::InternCounter("pager.data_requests");
const sim::CounterId kCtrDataWrites = sim::InternCounter("pager.data_writes");
const sim::CounterId kCtrTerminates = sim::InternCounter("pager.terminates");
const sim::CounterId kCtrFills = sim::InternCounter("pager.fills");

}  // namespace

namespace {
// User-level pager computation per serviced message (lookup tables, buffer headers).
constexpr sim::Nanos kPagerComputeNs = 15 * sim::kMicrosecond;
}  // namespace

ExternalPager::ExternalPager(Kernel* kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)), port_(name_ + "_port") {}

void ExternalPager::RunPager() {
  IpcMessage message;
  while (port_.TryReceive(&message)) {
    // Receiving the message is the second half of an IPC exchange; the send was charged by
    // the kernel side. The pager's own computation runs at user level.
    kernel_->clock().Advance(kPagerComputeNs);
    VmObject* object = kernel_->FindObject(message.object_id);
    HIPEC_CHECK_MSG(object != nullptr, "pager message for an unknown object");
    switch (message.id) {
      case IpcMessage::Id::kMemoryObjectDataRequest: {
        counters_.Add(kCtrDataRequests);
        bool ok = ServiceDataRequest(object, message.offset);
        (void)ok;
        break;
      }
      case IpcMessage::Id::kMemoryObjectDataWrite:
        counters_.Add(kCtrDataWrites);
        ServiceDataWrite(object, message.offset);
        break;
      case IpcMessage::Id::kMemoryObjectTerminate:
        counters_.Add(kCtrTerminates);
        break;
      default:
        break;
    }
  }
}

bool ExternalPager::RequestData(VmObject* object, uint64_t offset) {
  // Kernel -> pager: one full IPC round trip (request + data_provided reply) plus the pager
  // run. The faulting thread blocks for the reply, so all of it is synchronous virtual time.
  kernel_->clock().Advance(kernel_->costs().null_ipc_ns);
  port_.Send(IpcMessage{IpcMessage::Id::kMemoryObjectDataRequest, object->id(), offset, true});
  RunPager();
  counters_.Add(kCtrFills);
  return true;
}

void ExternalPager::WriteData(VmObject* object, uint64_t offset) {
  // Page-outs are one-way messages; the pager services them when it runs. We run it
  // immediately (its disk writes are asynchronous anyway), charging half a round trip.
  kernel_->clock().Advance(kernel_->costs().null_ipc_ns / 2);
  port_.Send(IpcMessage{IpcMessage::Id::kMemoryObjectDataWrite, object->id(), offset, true});
  RunPager();
}

void ExternalPager::Terminate(VmObject* object) {
  kernel_->clock().Advance(kernel_->costs().null_ipc_ns / 2);
  port_.Send(IpcMessage{IpcMessage::Id::kMemoryObjectTerminate, object->id(), 0, true});
  RunPager();
}

// ---------------------------------------------------------------- stock pagers

DefaultPager::DefaultPager(Kernel* kernel) : ExternalPager(kernel, "default_pager") {}

bool DefaultPager::ServiceDataRequest(VmObject* object, uint64_t offset) {
  // Anonymous memory: data exists on swap only if it was paged out before; otherwise the
  // kernel zero-fills and the pager provides nothing.
  if (object->NeedsDiskRead(offset)) {
    kernel_->disk().ReadPage(object->BlockFor(offset));
  }
  return true;
}

void DefaultPager::ServiceDataWrite(VmObject* object, uint64_t offset) {
  object->MarkPagedOut(offset);
  kernel_->disk().WritePageAsync(object->BlockFor(offset));
}

FilePager::FilePager(Kernel* kernel) : ExternalPager(kernel, "file_pager") {}

bool FilePager::ServiceDataRequest(VmObject* object, uint64_t offset) {
  kernel_->disk().ReadPage(object->BlockFor(offset));
  return true;
}

void FilePager::ServiceDataWrite(VmObject* object, uint64_t offset) {
  object->MarkPagedOut(offset);
  kernel_->disk().WritePageAsync(object->BlockFor(offset));
}

}  // namespace hipec::mach
