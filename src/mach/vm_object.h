// VM objects, modelled on Mach's `vm_object`: a pager-backed segment of data (a memory-mapped
// file or an anonymous region backed by the default pager / swap). HiPEC mounts its container
// under the VM object (§4.1), so the object carries an opaque container pointer.
#ifndef HIPEC_MACH_VM_OBJECT_H_
#define HIPEC_MACH_VM_OBJECT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "mach/vm_page.h"

namespace hipec::mach {

class ExternalPager;

class VmObject {
 public:
  // `disk_base_block` is the first 4 KB block of this object's backing store. For anonymous
  // objects the blocks are swap space, used only for offsets that have been paged out.
  VmObject(uint64_t id, std::string name, uint64_t size_bytes, bool file_backed,
           uint64_t disk_base_block);
  VmObject(const VmObject&) = delete;
  VmObject& operator=(const VmObject&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  uint64_t size() const { return size_bytes_; }
  bool file_backed() const { return file_backed_; }

  // Residency.
  VmPage* Lookup(uint64_t offset) const;
  void InsertPage(VmPage* page, uint64_t offset);
  void RemovePage(VmPage* page);
  size_t resident_count() const { return resident_.size(); }

  // Backing store. A fault must read from disk when the data exists only on disk: always for
  // file-backed objects, and for anonymous objects only at offsets previously paged out.
  uint64_t BlockFor(uint64_t offset) const { return disk_base_block_ + (offset >> kPageShift); }
  bool NeedsDiskRead(uint64_t offset) const {
    return file_backed_ || paged_out_.contains(offset);
  }
  void MarkPagedOut(uint64_t offset) { paged_out_.insert(offset); }

  // HiPEC container mounted under this object (opaque at this layer; owned by the engine).
  void* container = nullptr;

  // External pager supplying/storing this object's data through the EMM interface (emm.h);
  // nullptr means the kernel pages the object directly against the disk.
  ExternalPager* pager = nullptr;

  // Walks resident pages; `fn` must not mutate residency.
  template <typename Fn>
  void ForEachResident(Fn&& fn) const {
    for (const auto& [offset, page] : resident_) {
      fn(offset, page);
    }
  }

 private:
  uint64_t id_;
  std::string name_;
  uint64_t size_bytes_;
  bool file_backed_;
  uint64_t disk_base_block_;
  std::unordered_map<uint64_t, VmPage*> resident_;
  std::unordered_set<uint64_t> paged_out_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_VM_OBJECT_H_
