// The Mach pageout daemon: maintains the global free/active/inactive queues and runs the
// default FIFO-with-second-chance replacement policy for non-specific applications (Draves,
// "Page Replacement and Reference Bit Emulation in Mach"). Under HiPEC it doubles as the
// substrate the global frame manager draws private frames from (§4.3.1).
//
// Concurrency (DESIGN.md §10): the free queue is a ShardedFramePool with per-shard locks;
// the active/inactive queues and the balancing pass are behind one rank-kDaemon mutex. The
// memory-pressure notification runs *outside* the daemon lock — it re-enters the HiPEC
// layer at rank kManager, below kDaemon — preserving the deterministic-mode call order
// (balance, notify, then dequeue) exactly.
#ifndef HIPEC_MACH_PAGEOUT_DAEMON_H_
#define HIPEC_MACH_PAGEOUT_DAEMON_H_

#include <cstdint>

#include "mach/frame_pool.h"
#include "mach/page_queue.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec::mach {

class Kernel;

struct PageoutTargets {
  // Balance tries to keep at least this many frames on the free queue.
  size_t free_target = 256;
  // The fault path triggers balancing when the free queue drops to this level; the last
  // free_min frames are reserved for the kernel itself.
  size_t free_min = 64;
  // Balance refills the inactive queue to this level from the active queue.
  size_t inactive_target = 768;
};

class PageoutDaemon {
 public:
  PageoutDaemon(Kernel* kernel, PageoutTargets targets,
                size_t free_pool_shards = ShardedFramePool::kDefaultShards);
  PageoutDaemon(const PageoutDaemon&) = delete;
  PageoutDaemon& operator=(const PageoutDaemon&) = delete;

  // Arms the daemon mutex and the pool's shard locks for real-threads mode.
  void EnableConcurrent();

  // Called at boot for every initially free frame.
  void AddBootFrame(VmPage* page);

  // Allocates a frame for a faulting non-specific application, balancing (and evicting) as
  // needed. Returns nullptr only when memory is exhausted beyond recovery.
  VmPage* AllocForFault();

  // Allocates `n` frames for the HiPEC global frame manager (private pools). All-or-nothing:
  // returns false without side effects if `n` frames cannot be freed while keeping free_min.
  bool AllocFramesForManager(size_t n, PageQueue* out, void* owner);

  // Returns a frame to the global free pool (from eviction, task teardown, or a HiPEC
  // Release).
  void ReturnFrame(VmPage* page);

  // Hands a faulted-in page to the daemon's bookkeeping (global active queue).
  void Activate(VmPage* page);

  // Soft-fault support: if `page` sits on the global inactive queue, move it to the active
  // queue (the second-chance promotion the fault path applies to still-resident pages).
  void ReactivateIfInactive(VmPage* page);

  // Removes `page` from whichever daemon queue it is on, if any (wire and teardown paths).
  void Unqueue(VmPage* page);

  // Runs one balancing pass of the FIFO-second-chance policy.
  void Balance();

  // Frames the manager could still hand to specific applications right now.
  size_t AvailableForManager() const;

  size_t free_count() const { return pool_.count(); }
  size_t active_count() const;
  size_t inactive_count() const;
  const PageoutTargets& targets() const { return targets_; }

  ShardedFramePool& free_pool() { return pool_; }
  const ShardedFramePool& free_pool() const { return pool_; }
  PageQueue& active_queue() { return active_; }
  PageQueue& inactive_queue() { return inactive_; }

  sim::CounterSet& counters() { return counters_; }

 private:
  // The balancing pass with mu_ already held.
  void BalanceLocked();

  Kernel* kernel_;
  PageoutTargets targets_;
  // Guards active_/inactive_ and the balancing pass. Recursive: desperation reclaim and
  // balance both run under it and call back into EvictPage, which never re-enters the
  // daemon.
  mutable sim::OrderedMutex mu_{sim::LockRank::kDaemon};
  ShardedFramePool pool_;
  PageQueue active_;
  PageQueue inactive_;
  sim::CounterSet counters_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PAGEOUT_DAEMON_H_
