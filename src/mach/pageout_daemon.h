// The Mach pageout daemon: maintains the global free/active/inactive queues and runs the
// default FIFO-with-second-chance replacement policy for non-specific applications (Draves,
// "Page Replacement and Reference Bit Emulation in Mach"). Under HiPEC it doubles as the
// substrate the global frame manager draws private frames from (§4.3.1).
#ifndef HIPEC_MACH_PAGEOUT_DAEMON_H_
#define HIPEC_MACH_PAGEOUT_DAEMON_H_

#include <cstdint>

#include "mach/page_queue.h"
#include "sim/stats.h"

namespace hipec::mach {

class Kernel;

struct PageoutTargets {
  // Balance tries to keep at least this many frames on the free queue.
  size_t free_target = 256;
  // The fault path triggers balancing when the free queue drops to this level; the last
  // free_min frames are reserved for the kernel itself.
  size_t free_min = 64;
  // Balance refills the inactive queue to this level from the active queue.
  size_t inactive_target = 768;
};

class PageoutDaemon {
 public:
  PageoutDaemon(Kernel* kernel, PageoutTargets targets);
  PageoutDaemon(const PageoutDaemon&) = delete;
  PageoutDaemon& operator=(const PageoutDaemon&) = delete;

  // Called at boot for every initially free frame.
  void AddBootFrame(VmPage* page);

  // Allocates a frame for a faulting non-specific application, balancing (and evicting) as
  // needed. Returns nullptr only when memory is exhausted beyond recovery.
  VmPage* AllocForFault();

  // Allocates `n` frames for the HiPEC global frame manager (private pools). All-or-nothing:
  // returns false without side effects if `n` frames cannot be freed while keeping free_min.
  bool AllocFramesForManager(size_t n, PageQueue* out, void* owner);

  // Returns a frame to the global free queue (from eviction, task teardown, or a HiPEC
  // Release).
  void ReturnFrame(VmPage* page);

  // Hands a faulted-in page to the daemon's bookkeeping (global active queue).
  void Activate(VmPage* page);

  // Runs one balancing pass of the FIFO-second-chance policy.
  void Balance();

  // Frames the manager could still hand to specific applications right now.
  size_t AvailableForManager() const;

  size_t free_count() const { return free_.count(); }
  size_t active_count() const { return active_.count(); }
  size_t inactive_count() const { return inactive_.count(); }
  const PageoutTargets& targets() const { return targets_; }

  PageQueue& free_queue() { return free_; }
  PageQueue& active_queue() { return active_; }
  PageQueue& inactive_queue() { return inactive_; }

  sim::CounterSet& counters() { return counters_; }

 private:
  Kernel* kernel_;
  PageoutTargets targets_;
  PageQueue free_;
  PageQueue active_;
  PageQueue inactive_;
  sim::CounterSet counters_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PAGEOUT_DAEMON_H_
