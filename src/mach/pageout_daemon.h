// The Mach pageout daemon: maintains the global free/active/inactive queues and runs the
// default FIFO-with-second-chance replacement policy for non-specific applications (Draves,
// "Page Replacement and Reference Bit Emulation in Mach"). Under HiPEC it doubles as the
// substrate the global frame manager draws private frames from (§4.3.1).
//
// Concurrency (DESIGN.md §10-§11): the free queue is a ShardedFramePool with per-shard
// locks; the active/inactive queues are likewise split over queue shards, each pair behind
// its own rank-kDaemon lock. A thread's operations land on its home shard; the balancing
// pass and the desperation reclaim walk every shard starting at home, taking one shard lock
// at a time (steal-on-empty, mirroring the free pool). In deterministic mode the daemon
// compiles down to a single shard, so the reference mode's operation order — and therefore
// the golden fingerprints — is byte-identical to the pre-sharding code.
//
// Off-queue transition protocol: a balance/desperation pass momentarily holds a page off
// every queue (dequeue → evict-or-repark). Such a page carries busy = true for the duration;
// Unqueue() and ReactivateIfInactive(), which resolve a page's shard from its racy queue
// pointer, spin past the window instead of misreading "off-queue". See vm_page.h.
//
// The memory-pressure notification runs *outside* any daemon lock — it re-enters the HiPEC
// layer at rank kManager, below kDaemon — preserving the deterministic-mode call order
// (balance, notify, then dequeue) exactly.
#ifndef HIPEC_MACH_PAGEOUT_DAEMON_H_
#define HIPEC_MACH_PAGEOUT_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mach/frame_pool.h"
#include "mach/page_queue.h"
#include "sim/lock.h"
#include "sim/stats.h"

namespace hipec::mach {

class Kernel;

struct PageoutTargets {
  // Balance tries to keep at least this many frames on the free queue.
  size_t free_target = 256;
  // The fault path triggers balancing when the free queue drops to this level; the last
  // free_min frames are reserved for the kernel itself.
  size_t free_min = 64;
  // Balance refills the inactive queue to this level from the active queue.
  size_t inactive_target = 768;
};

class PageoutDaemon {
 public:
  // `queue_shards` splits the active/inactive queues; 0 picks the default — 1 in
  // deterministic mode (byte-identical reference behavior), hardware_concurrency() clamped
  // to [1, kMaxQueueShards] in real-threads mode.
  static constexpr size_t kMaxQueueShards = 16;

  PageoutDaemon(Kernel* kernel, PageoutTargets targets,
                size_t free_pool_shards = ShardedFramePool::kDefaultShards,
                size_t queue_shards = 0);
  PageoutDaemon(const PageoutDaemon&) = delete;
  PageoutDaemon& operator=(const PageoutDaemon&) = delete;

  // Arms the per-shard daemon locks and the pool's shard locks for real-threads mode.
  void EnableConcurrent();

  // Called at boot for every initially free frame.
  void AddBootFrame(VmPage* page);

  // Allocates a frame for a faulting non-specific application, balancing (and evicting) as
  // needed. Returns nullptr only when memory is exhausted beyond recovery. Served from the
  // calling thread's attached FrameMagazine when one exists.
  VmPage* AllocForFault();

  // Allocates `n` frames for the HiPEC global frame manager (private pools). All-or-nothing:
  // returns false without side effects if `n` frames cannot be freed while keeping free_min.
  bool AllocFramesForManager(size_t n, PageQueue* out, void* owner);

  // Returns a frame to the global free pool (from eviction, task teardown, or a HiPEC
  // Release). Lands in the calling thread's attached FrameMagazine when one exists.
  void ReturnFrame(VmPage* page);

  // Hands a faulted-in page to the daemon's bookkeeping (home shard's active queue).
  void Activate(VmPage* page);

  // Soft-fault support: if `page` sits on a global inactive queue, move it to that shard's
  // active queue (the second-chance promotion the fault path applies to still-resident
  // pages). The caller holds the mapping task's lock, pinning the page's residency.
  void ReactivateIfInactive(VmPage* page);

  // Removes `page` from whichever daemon queue it is on, if any (wire and teardown paths).
  // The caller holds the mapping task's lock, so a concurrent balance pass cannot evict the
  // page — only move it — and the removal is race-free.
  void Unqueue(VmPage* page);

  // Runs one balancing pass of the FIFO-second-chance policy over every queue shard.
  void Balance();

  // Frames the manager could still hand to specific applications right now.
  size_t AvailableForManager() const;

  size_t free_count() const { return pool_.count(); }
  size_t active_count() const { return active_total_.load(std::memory_order_relaxed); }
  size_t inactive_count() const { return inactive_total_.load(std::memory_order_relaxed); }
  const PageoutTargets& targets() const { return targets_; }

  ShardedFramePool& free_pool() { return pool_; }
  const ShardedFramePool& free_pool() const { return pool_; }

  // Per-shard queue access for tests and accounting sweeps. Deterministic-mode callers that
  // predate sharding use the default shard 0 — the only shard in that mode.
  size_t queue_shard_count() const { return shards_.size(); }
  PageQueue& active_queue(size_t shard = 0) { return shards_[shard]->active; }
  PageQueue& inactive_queue(size_t shard = 0) { return shards_[shard]->inactive; }

  // Membership tests for the accounting layer: is `q` one of this daemon's active (resp.
  // inactive) shard queues?
  bool OwnsActiveQueue(const PageQueue* q) const;
  bool OwnsInactiveQueue(const PageQueue* q) const;

  // Attaches `magazine` as the calling thread's frame cache for this daemon's pool
  // (AllocForFault/ReturnFrame fast path). Detach before the magazine dies; the caller
  // flushes it. Thread-local: each worker attaches its own.
  void AttachThreadMagazine(FrameMagazine* magazine);
  void DetachThreadMagazine();

  sim::CounterSet& counters() { return counters_; }

 private:
  struct alignas(64) QueueShard {
    explicit QueueShard(size_t index);
    sim::OrderedMutex mu;
    PageQueue active;
    PageQueue inactive;
  };

  size_t HomeShard() const;
  // The shard owning `q` as its active or inactive queue, else nullptr.
  QueueShard* ShardForQueue(const PageQueue* q) const;
  // The calling thread's attached magazine, or nullptr (other daemon / none attached).
  FrameMagazine* ThreadMagazine() const;

  Kernel* kernel_;
  PageoutTargets targets_;
  ShardedFramePool pool_;
  std::vector<std::unique_ptr<QueueShard>> shards_;
  // Pages across all shards' active (resp. inactive) queues; relaxed, maintained alongside
  // the per-queue counts. Watermark reads (inactive_total vs inactive_target) are heuristics
  // exactly like the pool count; per-shard counts under the shard lock are authoritative.
  std::atomic<size_t> active_total_{0};
  std::atomic<size_t> inactive_total_{0};
  bool concurrent_ = false;
  sim::CounterSet counters_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PAGEOUT_DAEMON_H_
