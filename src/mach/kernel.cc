#include "mach/kernel.h"

#include <cstdlib>
#include <utility>

#include "sim/check.h"

namespace hipec::mach {

bool DefaultJitMode() {
  const char* env = std::getenv("HIPEC_JIT");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

namespace {

// Interned once at startup; the fault path then bumps counters with an array index instead
// of a string-keyed map lookup per event (see sim::CounterRegistry).
const sim::CounterId kCtrTaskTerminations = sim::InternCounter("kernel.task_terminations");
const sim::CounterId kCtrVmAllocate = sim::InternCounter("kernel.vm_allocate");
const sim::CounterId kCtrVmMap = sim::InternCounter("kernel.vm_map");
const sim::CounterId kCtrVmDeallocate = sim::InternCounter("kernel.vm_deallocate");
const sim::CounterId kCtrWiredPages = sim::InternCounter("kernel.wired_pages");
const sim::CounterId kCtrNullSyscalls = sim::InternCounter("kernel.null_syscalls");
const sim::CounterId kCtrProtectionFaults = sim::InternCounter("kernel.protection_faults");
const sim::CounterId kCtrPageFaults = sim::InternCounter("kernel.page_faults");
const sim::CounterId kCtrHipecFaults = sim::InternCounter("kernel.hipec_faults");
const sim::CounterId kCtrSoftFaults = sim::InternCounter("kernel.soft_faults");
const sim::CounterId kCtrPagerFills = sim::InternCounter("kernel.pager_fills");
const sim::CounterId kCtrDiskFills = sim::InternCounter("kernel.disk_fills");
const sim::CounterId kCtrZeroFills = sim::InternCounter("kernel.zero_fills");
const sim::CounterId kCtrPagerWrites = sim::InternCounter("kernel.pager_writes");
const sim::CounterId kCtrPageouts = sim::InternCounter("kernel.pageouts");

}  // namespace

Kernel::Kernel(KernelParams params) : params_(params), frames_(params_.total_frames) {
  // frames_ is count-constructed in the init list: VmPage carries atomic members (queue,
  // busy) and is therefore not movable, so resize() after the fact would not compile.
  HIPEC_CHECK(params_.total_frames > params_.kernel_reserved_frames);

  // Exactly one clock, chosen by mode: the virtual clock is also reachable through vclock_
  // so hot paths charge time without a virtual call.
  if (params_.exec_mode == sim::ExecMode::kDeterministic) {
    vclock_ = std::make_unique<sim::VirtualClock>();
    clock_ptr_ = vclock_.get();
  } else {
    rclock_ = std::make_unique<sim::RealClock>();
    clock_ptr_ = rclock_.get();
  }

  disk_ = std::make_unique<disk::DiskModel>(clock_ptr_, params_.disk, params_.seed);
  daemon_ = std::make_unique<PageoutDaemon>(this, params_.pageout, params_.free_pool_shards,
                                            params_.daemon_shards);

  if (concurrent()) {
    // Arm every lock before any worker thread can exist (locks must not flip while held).
    structure_mu_.Enable(true);
    world_.Enable(true);
    daemon_->EnableConcurrent();
    disk_->EnableConcurrent();
    counters_.EnableConcurrent();
    tracer_.EnableConcurrent();
  }

  ctx_.clock = clock_ptr_;
  ctx_.vclock = vclock_.get();
  ctx_.tracer = &tracer_;
  ctx_.costs = &params_.costs;
  ctx_.mode = params_.exec_mode;

  for (uint64_t i = 0; i < params_.total_frames; ++i) {
    frames_[i].frame_number = static_cast<uint32_t>(i);
    if (i < params_.kernel_reserved_frames) {
      frames_[i].wired = true;  // kernel text/data/zones
    } else {
      daemon_->AddBootFrame(&frames_[i]);
    }
  }
  boot_free_frames_ = params_.total_frames - params_.kernel_reserved_frames;
}

Kernel::~Kernel() = default;

Task* Kernel::CreateTask(const std::string& name) {
  sim::ScopedLock lock(structure_mu_);
  tasks_.push_back(std::make_unique<Task>(next_task_id_++, name));
  Task* task = tasks_.back().get();
  if (concurrent()) {
    task->mutex().Enable(true);
  }
  return task;
}

void Kernel::TerminateTask(Task* task, const std::string& reason) {
  sim::ScopedLock task_lock(task->mutex());
  if (task->terminated()) {
    return;
  }
  task->Terminate(reason);
  counters_.Add(kCtrTaskTerminations);
  // Tear down the whole address space.
  std::vector<uint64_t> starts;
  task->map().ForEachEntry([&](const VmMapEntry& entry) { starts.push_back(entry.start); });
  for (uint64_t start : starts) {
    VmDeallocate(task, start);
  }
}

VmObject* Kernel::CreateAnonObject(uint64_t size_bytes) {
  sim::ScopedLock lock(structure_mu_);
  uint64_t base = AllocSwapBlocksLocked(size_bytes >> kPageShift);
  objects_.push_back(std::make_unique<VmObject>(next_object_id_++, "anon", size_bytes,
                                                /*file_backed=*/false, base));
  return objects_.back().get();
}

VmObject* Kernel::CreateFileObject(const std::string& name, uint64_t size_bytes) {
  HIPEC_CHECK_MSG(size_bytes % kPageSize == 0, "object size must be page aligned");
  sim::ScopedLock lock(structure_mu_);
  uint64_t base = AllocSwapBlocksLocked(size_bytes >> kPageShift);
  objects_.push_back(std::make_unique<VmObject>(next_object_id_++, name, size_bytes,
                                                /*file_backed=*/true, base));
  return objects_.back().get();
}

VmObject* Kernel::FindObject(uint64_t object_id) const {
  sim::ScopedLock lock(structure_mu_);
  for (const auto& object : objects_) {
    if (object->id() == object_id) {
      return object.get();
    }
  }
  return nullptr;
}

uint64_t Kernel::AllocSwapBlocks(uint64_t n_pages) {
  sim::ScopedLock lock(structure_mu_);
  return AllocSwapBlocksLocked(n_pages);
}

uint64_t Kernel::AllocSwapBlocksLocked(uint64_t n_pages) {
  uint64_t base = next_disk_block_;
  next_disk_block_ += n_pages;
  return base;
}

uint64_t Kernel::VmAllocate(Task* task, uint64_t size_bytes) {
  sim::ScopedLock task_lock(task->mutex());
  ctx_.Charge(params_.costs.null_syscall_ns);
  counters_.Add(kCtrVmAllocate);
  VmObject* object = CreateAnonObject(size_bytes);
  return task->map().Insert(object, 0, size_bytes);
}

uint64_t Kernel::VmMapFile(Task* task, VmObject* object) {
  sim::ScopedLock task_lock(task->mutex());
  ctx_.Charge(params_.costs.null_syscall_ns);
  counters_.Add(kCtrVmMap);
  return task->map().Insert(object, 0, object->size());
}

void Kernel::VmDeallocate(Task* task, uint64_t start) {
  sim::ScopedLock task_lock(task->mutex());
  counters_.Add(kCtrVmDeallocate);
  VmMapEntry* entry = task->map().Lookup(start);
  HIPEC_CHECK_MSG(entry != nullptr && entry->start == start, "vm_deallocate: no such region");
  VmObject* object = entry->object;

  if (object->container != nullptr && interceptor_ != nullptr) {
    // A specific region: the HiPEC engine returns the private frames itself.
    interceptor_->OnRegionTeardown(task, entry);
  } else {
    // Free every frame of this object that is mapped through this task. Dirty anonymous pages
    // are discarded (the region is going away); dirty file pages are flushed.
    std::vector<VmPage*> resident;
    object->ForEachResident([&](uint64_t, VmPage* page) { resident.push_back(page); });
    for (VmPage* page : resident) {
      daemon_->Unqueue(page);
      page->wired = false;
      // Holding the task lock, so the try edge inside EvictPage cannot fail.
      bool evicted = EvictPage(page, /*flush_if_dirty=*/object->file_backed());
      HIPEC_CHECK(evicted);
      daemon_->ReturnFrame(page);
    }
  }
  if (object->pager != nullptr) {
    object->pager->Terminate(object);
  }
  task->map().Remove(start);
}

void Kernel::VmWire(Task* task, uint64_t vaddr, uint64_t size_bytes) {
  ctx_.Charge(params_.costs.null_syscall_ns);
  sim::ScopedLock task_lock(task->mutex());
  for (uint64_t a = vaddr; a < vaddr + size_bytes; a += kPageSize) {
    if (!Touch(task, a, /*is_write=*/false)) {
      return;
    }
    VmPage* page = pmap_.Lookup(task, a);
    HIPEC_CHECK(page != nullptr);
    daemon_->Unqueue(page);
    page->wired = true;
  }
  counters_.Add(kCtrWiredPages, static_cast<int64_t>(size_bytes >> kPageShift));
}

void Kernel::NullSyscall() {
  ctx_.Charge(params_.costs.null_syscall_ns);
  counters_.Add(kCtrNullSyscalls);
}

uint64_t Kernel::MapWiredRegion(Task* task, uint64_t size_bytes) {
  sim::ScopedLock task_lock(task->mutex());
  ctx_.Charge(params_.costs.null_syscall_ns);
  size_bytes = (size_bytes + kPageSize - 1) & ~(kPageSize - 1);
  VmObject* object = CreateAnonObject(size_bytes);
  uint64_t start = task->map().Insert(object, 0, size_bytes, /*write_protected=*/true);
  for (uint64_t offset = 0; offset < size_bytes; offset += kPageSize) {
    VmPage* page = daemon_->AllocForFault();
    HIPEC_CHECK_MSG(page != nullptr, "out of memory wiring a command buffer");
    object->InsertPage(page, offset);
    pmap_.Enter(task, start + offset, page, /*write_protected=*/true);
    page->wired = true;
  }
  counters_.Add(kCtrWiredPages, static_cast<int64_t>(size_bytes >> kPageShift));
  return start;
}

bool Kernel::Touch(Task* task, uint64_t vaddr, bool is_write) {
  if (task->terminated()) {
    return false;
  }
  // Real-threads mode: participate in stop-the-world audits, then own this task's address
  // space for the duration of the access. Both are no-op branches in deterministic mode.
  sim::SharedWorldGuard world(world_);
  sim::ScopedLock task_lock(task->mutex());
  if (pending_charge_ns_.load(std::memory_order_relaxed) > 0) {
    sim::Nanos charge = pending_charge_ns_.exchange(0, std::memory_order_relaxed);
    ctx_.Charge(charge);
  }
  ctx_.Charge(params_.costs.memory_access_ns);

  // TLB / page-table hit: no kernel involvement; the hardware sets reference/modify bits.
  if (VmPage* page = pmap_.Lookup(task, vaddr); page != nullptr) {
    if (is_write && pmap_.IsWriteProtected(page)) {
      counters_.Add(kCtrProtectionFaults);
      TerminateTask(task, "wrote to a write-protected region (wired HiPEC command buffer)");
      return false;
    }
    page->reference = true;
    if (is_write) {
      page->modified = true;
    }
    page->last_reference_ns = ctx_.now();
    return true;
  }

  // Page fault.
  counters_.Add(kCtrPageFaults);
  tracer_.Record(ctx_.now(), sim::TraceCategory::kFault, 0, task->id(), vaddr);
  if (params_.hipec_build) {
    // The modified kernel checks every fault against the specific-region table (§5.2).
    ctx_.Charge(params_.costs.hipec_region_check_ns);
  }
  VmMapEntry* entry = task->map().Lookup(vaddr);
  if (entry == nullptr) {
    TerminateTask(task, "segmentation violation");
    return false;
  }
  if (is_write && entry->write_protected) {
    counters_.Add(kCtrProtectionFaults);
    TerminateTask(task, "wrote to a write-protected region (wired HiPEC command buffer)");
    return false;
  }

  if (entry->object->container != nullptr && interceptor_ != nullptr) {
    FaultContext ctx{task, entry, vaddr, entry->OffsetOf(vaddr), is_write};
    counters_.Add(kCtrHipecFaults);
    if (!interceptor_->HandleFault(ctx)) {
      if (!task->terminated()) {
        TerminateTask(task, "HiPEC policy failed to resolve a fault");
      }
      return false;
    }
    return !task->terminated();
  }

  DefaultFault(task, entry, vaddr, is_write);
  return !task->terminated();
}

bool Kernel::TouchRange(Task* task, uint64_t vaddr, uint64_t size_bytes, bool is_write) {
  for (uint64_t a = vaddr; a < vaddr + size_bytes; a += kPageSize) {
    if (!Touch(task, a, is_write)) {
      return false;
    }
  }
  return true;
}

bool Kernel::FlushAddress(Task* task, uint64_t vaddr) {
  if (task->terminated()) {
    return false;
  }
  sim::SharedWorldGuard world(world_);
  sim::ScopedLock task_lock(task->mutex());
  if (task->terminated()) {
    return false;
  }
  ctx_.Charge(params_.costs.memory_access_ns);
  VmPage* page = pmap_.Lookup(task, vaddr);
  if (page != nullptr && page->modified) {
    FlushPageAsync(page);
  }
  return true;
}

void Kernel::DefaultFault(Task* task, VmMapEntry* entry, uint64_t vaddr, bool is_write) {
  VmObject* object = entry->object;
  uint64_t offset = entry->OffsetOf(vaddr);

  // Soft fault: the data is still resident (e.g. on the inactive queue); just re-map it.
  if (VmPage* page = object->Lookup(offset); page != nullptr) {
    ctx_.Charge(params_.costs.fault_resident_ns);
    counters_.Add(kCtrSoftFaults);
    daemon_->ReactivateIfInactive(page);
    pmap_.Enter(task, vaddr, page, entry->write_protected);
    page->reference = true;
    if (is_write) {
      page->modified = true;
    }
    page->last_reference_ns = ctx_.now();
    return;
  }

  VmPage* page = daemon_->AllocForFault();
  if (page == nullptr) {
    TerminateTask(task, "out of physical memory");
    return;
  }
  InstallPage(task, entry, vaddr, page, is_write);
  daemon_->Activate(page);
}

void Kernel::InstallPage(Task* task, VmMapEntry* entry, uint64_t vaddr, VmPage* page,
                         bool is_write) {
  ctx_.Charge(params_.costs.fault_base_ns);
  VmObject* object = entry->object;
  uint64_t offset = entry->OffsetOf(vaddr);

  if (object->NeedsDiskRead(offset)) {
    if (object->pager != nullptr) {
      // EMM path: ask the external pager (IPC round trip + user-level service).
      object->pager->RequestData(object, offset);
      counters_.Add(kCtrPagerFills);
      tracer_.Record(ctx_.now(), sim::TraceCategory::kFill, 2, object->id(), offset);
    } else {
      disk_->ReadPage(object->BlockFor(offset));
      tracer_.Record(ctx_.now(), sim::TraceCategory::kFill, 1, object->id(), offset);
    }
    counters_.Add(kCtrDiskFills);
  } else {
    counters_.Add(kCtrZeroFills);
    tracer_.Record(ctx_.now(), sim::TraceCategory::kFill, 0, object->id(), offset);
  }

  object->InsertPage(page, offset);
  pmap_.Enter(task, vaddr & ~(kPageSize - 1), page, entry->write_protected);
  page->reference = true;
  page->modified = is_write;
  page->last_reference_ns = ctx_.now();
}

bool Kernel::EvictPage(VmPage* page, bool flush_if_dirty) {
  // The page's state (bits, pmap entry) belongs to the task it is mapped into; callers off
  // the fault path (daemon balance, manager reclaim) may only try-lock that task — blocking
  // would invert the hierarchy. A caller already holding the task lock (fault path,
  // teardown) re-enters recursively and always succeeds; so does deterministic mode.
  if (Task* task = page->has_mapping ? page->mapped_task : nullptr; task != nullptr) {
    sim::ScopedTryLock task_lock(task->mutex());
    if (!task_lock.owns()) {
      return false;
    }
    EvictPageLocked(page, flush_if_dirty);
    return true;
  }
  EvictPageLocked(page, flush_if_dirty);
  return true;
}

void Kernel::EvictPageLocked(VmPage* page, bool flush_if_dirty) {
  HIPEC_CHECK_MSG(page->queue.load(std::memory_order_relaxed) == nullptr,
                  "evicting a page still on a queue");
  if (page->has_mapping) {
    pmap_.RemovePage(page);
  }
  if (page->object != nullptr) {
    tracer_.Record(ctx_.now(), sim::TraceCategory::kEviction, page->modified ? 1 : 0,
                   page->frame_number, page->object->id());
  }
  if (page->object != nullptr) {
    if (page->modified && flush_if_dirty) {
      FlushPageAsync(page);
    }
    page->object->RemovePage(page);
  }
  page->reference = false;
  page->modified = false;
  page->busy = false;
}

void Kernel::FlushPageAsync(VmPage* page) {
  HIPEC_CHECK_MSG(page->object != nullptr, "flushing a page with no backing object");
  VmObject* object = page->object;
  if (object->pager != nullptr) {
    // EMM path: memory_object_data_write to the external pager.
    object->pager->WriteData(object, page->offset);
    counters_.Add(kCtrPagerWrites);
  } else {
    object->MarkPagedOut(page->offset);
    disk_->WritePageAsync(object->BlockFor(page->offset));
  }
  page->modified = false;
  counters_.Add(kCtrPageouts);
}

void Kernel::ChargePageoutScan(size_t pages_examined) {
  ctx_.Charge(static_cast<sim::Nanos>(pages_examined) *
              params_.costs.pageout_scan_per_page_ns);
}

FrameAccounting Kernel::ComputeFrameAccounting(const void* manager_owner) const {
  FrameAccounting acc;
  acc.total = frames_.size();
  const ShardedFramePool& pool = daemon_->free_pool();
  for (const VmPage& page : frames_) {
    const PageQueue* q = page.queue.load(std::memory_order_relaxed);
    if (page.wired) {
      ++acc.wired;
    } else if (pool.Owns(q)) {
      // Pool shard queues and registered thread magazines both count as free.
      ++acc.global_free;
    } else if (daemon_->OwnsActiveQueue(q)) {
      ++acc.global_active;
    } else if (daemon_->OwnsInactiveQueue(q)) {
      ++acc.global_inactive;
    } else if (manager_owner != nullptr && page.owner == manager_owner) {
      ++acc.manager_owned;
    } else if (page.owner != nullptr) {
      ++acc.container_owned;
    } else {
      ++acc.unaccounted;
    }
  }
  return acc;
}

}  // namespace hipec::mach
