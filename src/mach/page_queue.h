// Intrusive doubly-linked page queues, as used for Mach's active/inactive/free lists and for
// HiPEC containers' private lists. A page can be a member of at most one PageQueue.
#ifndef HIPEC_MACH_PAGE_QUEUE_H_
#define HIPEC_MACH_PAGE_QUEUE_H_

#include <cstddef>
#include <string>

#include "mach/vm_page.h"

namespace hipec::mach {

class PageQueue {
 public:
  explicit PageQueue(std::string name);
  PageQueue(const PageQueue&) = delete;
  PageQueue& operator=(const PageQueue&) = delete;
  ~PageQueue();

  // Insertion. The page must not currently be on any queue.
  void EnqueueHead(VmPage* page, sim::Nanos now);
  void EnqueueTail(VmPage* page, sim::Nanos now);

  // Removal. Return nullptr when empty.
  VmPage* DequeueHead();
  VmPage* DequeueTail();

  // Removes `page`, which must be a member of this queue.
  void Remove(VmPage* page);

  bool Contains(const VmPage* page) const {
    return page->queue.load(std::memory_order_relaxed) == this;
  }
  bool empty() const { return count_ == 0; }
  size_t count() const { return count_; }
  // Stable address of the element count, for the policy JIT's inlined EmptyQ and queue-count
  // loads. Strictly read-only through this pointer.
  const size_t* count_addr() const { return &count_; }
  // Stable member addresses for the policy JIT's inlined EnQueue/DeQueue templates
  // (jit_x86_64.cc), which splice the intrusive links and maintain the count exactly as the
  // methods above do — the templates are only reached after the same membership checks the
  // interpreter performs, so the HIPEC_CHECKs above cannot be bypassed by them.
  VmPage** head_storage() { return &head_; }
  VmPage** tail_storage() { return &tail_; }
  size_t* count_storage() { return &count_; }
  VmPage* head() const { return head_; }
  VmPage* tail() const { return tail_; }
  const std::string& name() const { return name_; }

  // Walks the queue head->tail calling `fn(page)`; stops early if `fn` returns false.
  // `fn` must not mutate the queue.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (VmPage* p = head_; p != nullptr; p = p->q_next) {
      if (!fn(p)) {
        return;
      }
    }
  }

  // Counts the links by traversal; used by the invariant tests.
  size_t CountByTraversal() const;

 private:
  std::string name_;
  VmPage* head_ = nullptr;
  VmPage* tail_ = nullptr;
  size_t count_ = 0;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PAGE_QUEUE_H_
