// The external memory management (EMM) interface: Mach's memory_object protocol, through
// which user-level *pagers* supply and store the contents of VM objects (Young et al., "The
// Duality of Memory and Communication..."). HiPEC "extends the external memory management
// interface of Mach kernel" (§4); this module provides that substrate:
//
//   * a VM object may name an ExternalPager; faults on such objects send
//     memory_object_data_request messages and wait for memory_object_data_provided replies,
//     paying the measured IPC round-trip cost per message exchange;
//   * page-outs send memory_object_data_write messages, serviced asynchronously;
//   * DefaultPager (anonymous memory / swap) and FilePager are the two stock pagers, both
//     running "user-level" logic against the shared disk.
//
// Wang's result — that an EMM interface adds little overhead because disk time dominates —
// is reproduced by bench_extension_emm.
#ifndef HIPEC_MACH_EMM_H_
#define HIPEC_MACH_EMM_H_

#include <cstdint>
#include <memory>
#include <string>

#include "mach/ipc.h"
#include "sim/clock.h"
#include "sim/stats.h"

namespace hipec::mach {

class Kernel;
class VmObject;

// A user-level pager task. The kernel talks to it exclusively through its port; servicing
// happens at user level (charged pager compute + backing-store time).
class ExternalPager {
 public:
  ExternalPager(Kernel* kernel, std::string name);
  virtual ~ExternalPager() = default;
  ExternalPager(const ExternalPager&) = delete;
  ExternalPager& operator=(const ExternalPager&) = delete;

  // Kernel-side entry points. Each performs the full message exchange on the virtual clock:
  // request message, pager scheduling + service, reply message.

  // Synchronous data fill for a faulting thread. Returns false on pager error.
  bool RequestData(VmObject* object, uint64_t offset);

  // Asynchronous page-out of dirty data.
  void WriteData(VmObject* object, uint64_t offset);

  // Object teardown notification.
  void Terminate(VmObject* object);

  IpcPort& port() { return port_; }
  sim::CounterSet& counters() { return counters_; }
  const std::string& name() const { return name_; }

 protected:
  // Pager policy: how long the user-level code takes and where the data lives.
  // Implementations run "in the pager task": they may read/write the disk.
  virtual bool ServiceDataRequest(VmObject* object, uint64_t offset) = 0;
  virtual void ServiceDataWrite(VmObject* object, uint64_t offset) = 0;

  Kernel* kernel_;

 private:
  // Drains the port and services every queued message (the pager task "runs").
  void RunPager();

  std::string name_;
  IpcPort port_;
  sim::CounterSet counters_;
};

// The default pager: backs anonymous memory with swap space, like the (moved-out-of-kernel)
// Mach default memory manager.
class DefaultPager final : public ExternalPager {
 public:
  explicit DefaultPager(Kernel* kernel);

 protected:
  bool ServiceDataRequest(VmObject* object, uint64_t offset) override;
  void ServiceDataWrite(VmObject* object, uint64_t offset) override;
};

// A file pager: backs memory-mapped files; every fill is a read of the file's blocks.
class FilePager final : public ExternalPager {
 public:
  explicit FilePager(Kernel* kernel);

 protected:
  bool ServiceDataRequest(VmObject* object, uint64_t offset) override;
  void ServiceDataWrite(VmObject* object, uint64_t offset) override;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_EMM_H_
