#include "mach/pageout_daemon.h"

#include "mach/kernel.h"
#include "sim/check.h"

namespace hipec::mach {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrSecondChances = sim::InternCounter("pageout.second_chances");
const sim::CounterId kCtrEvictions = sim::InternCounter("pageout.evictions");
const sim::CounterId kCtrBalanceRuns = sim::InternCounter("pageout.balance_runs");
const sim::CounterId kCtrPagesExamined = sim::InternCounter("pageout.pages_examined");
const sim::CounterId kCtrDesperationReclaims = sim::InternCounter("pageout.desperation_reclaims");
const sim::CounterId kCtrAllocForFault = sim::InternCounter("pageout.alloc_for_fault");
const sim::CounterId kCtrFramesToManager = sim::InternCounter("pageout.frames_to_manager");

}  // namespace

PageoutDaemon::PageoutDaemon(Kernel* kernel, PageoutTargets targets)
    : kernel_(kernel),
      targets_(targets),
      free_("vm_page_queue_free"),
      active_("vm_page_queue_active"),
      inactive_("vm_page_queue_inactive") {}

void PageoutDaemon::AddBootFrame(VmPage* page) {
  free_.EnqueueTail(page, 0);
}

void PageoutDaemon::Balance() {
  sim::Nanos now = kernel_->clock().now();
  size_t examined = 0;

  // Refill the inactive queue from the active queue, clearing reference bits so a second
  // reference can be detected (the "second chance").
  while (inactive_.count() < targets_.inactive_target && !active_.empty()) {
    VmPage* page = active_.DequeueHead();
    page->reference = false;
    inactive_.EnqueueTail(page, now);
    ++examined;
  }

  // Refill the free queue from the inactive queue.
  while (free_.count() < targets_.free_target && !inactive_.empty()) {
    VmPage* page = inactive_.DequeueHead();
    ++examined;
    if (page->reference) {
      // Referenced while inactive: give it a second chance on the active queue.
      page->reference = false;
      active_.EnqueueTail(page, now);
      counters_.Add(kCtrSecondChances);
      continue;
    }
    kernel_->EvictPage(page, /*flush_if_dirty=*/true);
    free_.EnqueueTail(page, now);
    counters_.Add(kCtrEvictions);
  }

  counters_.Add(kCtrBalanceRuns);
  counters_.Add(kCtrPagesExamined, static_cast<int64_t>(examined));
  kernel_->ChargePageoutScan(examined);
}

VmPage* PageoutDaemon::AllocForFault() {
  if (free_.count() <= targets_.free_min) {
    Balance();
    // The free pool ran dry while serving a non-specific fault: that is memory pressure.
    // Tell the HiPEC layer (it may adapt partition_burst and reclaim specific frames).
    kernel_->NotifyMemoryPressure();
  }
  VmPage* page = free_.DequeueHead();
  if (page == nullptr) {
    Balance();
    page = free_.DequeueHead();
  }
  if (page == nullptr) {
    // Desperation: reclaim ignoring reference bits.
    page = inactive_.DequeueHead();
    if (page == nullptr) {
      page = active_.DequeueHead();
    }
    if (page != nullptr) {
      kernel_->EvictPage(page, /*flush_if_dirty=*/true);
      counters_.Add(kCtrDesperationReclaims);
    }
  }
  if (page != nullptr) {
    counters_.Add(kCtrAllocForFault);
  }
  return page;
}

bool PageoutDaemon::AllocFramesForManager(size_t n, PageQueue* out, void* owner) {
  if (AvailableForManager() < n) {
    Balance();
  }
  if (AvailableForManager() < n) {
    return false;
  }
  sim::Nanos now = kernel_->clock().now();
  for (size_t i = 0; i < n; ++i) {
    VmPage* page = free_.DequeueHead();
    HIPEC_CHECK(page != nullptr);
    page->owner = owner;
    out->EnqueueTail(page, now);
  }
  counters_.Add(kCtrFramesToManager, static_cast<int64_t>(n));
  return true;
}

void PageoutDaemon::ReturnFrame(VmPage* page) {
  HIPEC_CHECK_MSG(page->queue == nullptr, "frame still on a queue");
  HIPEC_CHECK_MSG(page->object == nullptr, "frame still resident in an object");
  HIPEC_CHECK_MSG(!page->has_mapping, "frame still mapped");
  page->owner = nullptr;
  page->reference = false;
  page->modified = false;
  page->wired = false;
  free_.EnqueueTail(page, kernel_->clock().now());
}

void PageoutDaemon::Activate(VmPage* page) {
  active_.EnqueueTail(page, kernel_->clock().now());
}

size_t PageoutDaemon::AvailableForManager() const {
  // The last free_min frames are reserved so the kernel's own fault path cannot starve.
  size_t free = free_.count();
  return free > targets_.free_min ? free - targets_.free_min : 0;
}

}  // namespace hipec::mach
