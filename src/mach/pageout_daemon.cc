#include "mach/pageout_daemon.h"

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "mach/kernel.h"
#include "sim/check.h"

namespace hipec::mach {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrSecondChances = sim::InternCounter("pageout.second_chances");
const sim::CounterId kCtrEvictions = sim::InternCounter("pageout.evictions");
const sim::CounterId kCtrBalanceRuns = sim::InternCounter("pageout.balance_runs");
const sim::CounterId kCtrPagesExamined = sim::InternCounter("pageout.pages_examined");
const sim::CounterId kCtrDesperationReclaims = sim::InternCounter("pageout.desperation_reclaims");
const sim::CounterId kCtrAllocForFault = sim::InternCounter("pageout.alloc_for_fault");
const sim::CounterId kCtrFramesToManager = sim::InternCounter("pageout.frames_to_manager");
const sim::CounterId kCtrEvictLockMisses = sim::InternCounter("pageout.evict_lock_misses");

// The calling thread's attached magazine, if any. Keyed by daemon so a thread that outlives
// one kernel and joins another never serves stale frames.
thread_local FrameMagazine* tls_magazine = nullptr;
thread_local const PageoutDaemon* tls_magazine_daemon = nullptr;

size_t ResolveQueueShards(const Kernel* kernel, size_t requested) {
  if (requested != 0) {
    return std::min(requested, PageoutDaemon::kMaxQueueShards);
  }
  if (!kernel->concurrent()) {
    // Deterministic mode: one shard, so Balance/AllocForFault walk the exact queue-operation
    // sequence of the pre-sharding daemon and golden fingerprints stay byte-identical.
    return 1;
  }
  size_t hw = std::thread::hardware_concurrency();
  return std::clamp<size_t>(hw, 1, PageoutDaemon::kMaxQueueShards);
}

}  // namespace

PageoutDaemon::QueueShard::QueueShard(size_t index)
    : mu(sim::LockRank::kDaemon),
      active("vm_page_queue_active." + std::to_string(index)),
      inactive("vm_page_queue_inactive." + std::to_string(index)) {}

PageoutDaemon::PageoutDaemon(Kernel* kernel, PageoutTargets targets, size_t free_pool_shards,
                             size_t queue_shards)
    : kernel_(kernel), targets_(targets), pool_(free_pool_shards) {
  size_t n = ResolveQueueShards(kernel, queue_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<QueueShard>(i));
  }
}

void PageoutDaemon::EnableConcurrent() {
  concurrent_ = true;
  for (auto& shard : shards_) {
    shard->mu.Enable(true);
  }
  pool_.EnableConcurrent();
  counters_.EnableConcurrent();
}

size_t PageoutDaemon::HomeShard() const {
  if (!concurrent_) {
    // Deterministic mode is single-threaded (and single-sharded): fixed home.
    return 0;
  }
  static std::atomic<size_t> next_thread{0};
  thread_local size_t thread_stripe = next_thread.fetch_add(1, std::memory_order_relaxed);
  return thread_stripe % shards_.size();
}

PageoutDaemon::QueueShard* PageoutDaemon::ShardForQueue(const PageQueue* q) const {
  for (const auto& shard : shards_) {
    if (&shard->active == q || &shard->inactive == q) {
      return shard.get();
    }
  }
  return nullptr;
}

FrameMagazine* PageoutDaemon::ThreadMagazine() const {
  return tls_magazine_daemon == this ? tls_magazine : nullptr;
}

void PageoutDaemon::AttachThreadMagazine(FrameMagazine* magazine) {
  HIPEC_CHECK_MSG(magazine->pool() == &pool_, "magazine belongs to another pool");
  tls_magazine = magazine;
  tls_magazine_daemon = this;
}

void PageoutDaemon::DetachThreadMagazine() {
  tls_magazine = nullptr;
  tls_magazine_daemon = nullptr;
}

void PageoutDaemon::AddBootFrame(VmPage* page) {
  pool_.AddBootFrame(page);
}

void PageoutDaemon::Balance() {
  sim::Nanos now = kernel_->clock().now();
  size_t examined = 0;
  size_t home = HomeShard();

  // Phase 1: refill the inactive queues from the active queues, clearing reference bits so
  // a second reference can be detected (the "second chance"). The inactive target is global:
  // each shard contributes until the pooled total reaches it, home shard first, stealing
  // from siblings' active queues when home runs dry — the free pool's drain discipline.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (inactive_total_.load(std::memory_order_relaxed) >= targets_.inactive_target) {
      break;
    }
    QueueShard& shard = *shards_[(home + i) % shards_.size()];
    sim::ScopedLock lock(shard.mu);
    while (inactive_total_.load(std::memory_order_relaxed) < targets_.inactive_target &&
           !shard.active.empty()) {
      VmPage* page = shard.active.head();
      // Busy brackets the off-queue instant between the two queue stores so a racing
      // Unqueue/ReactivateIfInactive never misreads "queue == nullptr" as off-every-queue.
      page->busy.store(true, std::memory_order_release);
      shard.active.Remove(page);
      active_total_.fetch_sub(1, std::memory_order_relaxed);
      page->reference = false;
      shard.inactive.EnqueueTail(page, now);
      page->busy.store(false, std::memory_order_release);
      inactive_total_.fetch_add(1, std::memory_order_relaxed);
      ++examined;
    }
  }

  // Phase 2: refill the free pool from the inactive queues.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (pool_.count() >= targets_.free_target) {
      break;
    }
    QueueShard& shard = *shards_[(home + i) % shards_.size()];
    sim::ScopedLock lock(shard.mu);
    while (pool_.count() < targets_.free_target && !shard.inactive.empty()) {
      VmPage* page = shard.inactive.head();
      page->busy.store(true, std::memory_order_release);
      shard.inactive.Remove(page);
      inactive_total_.fetch_sub(1, std::memory_order_relaxed);
      ++examined;
      if (page->reference) {
        // Referenced while inactive: give it a second chance on the active queue.
        page->reference = false;
        shard.active.EnqueueTail(page, now);
        active_total_.fetch_add(1, std::memory_order_relaxed);
        page->busy.store(false, std::memory_order_release);
        counters_.Add(kCtrSecondChances);
        continue;
      }
      if (!kernel_->EvictPage(page, /*flush_if_dirty=*/true)) {
        // Real-threads mode only: the mapping task's lock was busy (try edge). Park the page
        // on the active queue and move on; the inactive queue shrank, so the loop terminates.
        shard.active.EnqueueTail(page, now);
        active_total_.fetch_add(1, std::memory_order_relaxed);
        page->busy.store(false, std::memory_order_release);
        counters_.Add(kCtrEvictLockMisses);
        continue;
      }
      pool_.Put(page, now);
      page->busy.store(false, std::memory_order_release);
      counters_.Add(kCtrEvictions);
    }
  }

  counters_.Add(kCtrBalanceRuns);
  counters_.Add(kCtrPagesExamined, static_cast<int64_t>(examined));
  kernel_->ChargePageoutScan(examined);
}

VmPage* PageoutDaemon::AllocForFault() {
  if (pool_.count() <= targets_.free_min) {
    Balance();
    // The free pool ran dry while serving a non-specific fault: that is memory pressure.
    // Tell the HiPEC layer (it may adapt partition_burst and reclaim specific frames).
    // Deliberately outside any daemon lock: the notification re-enters the frame manager at
    // rank kManager < kDaemon, which would invert the hierarchy under a shard lock.
    kernel_->NotifyMemoryPressure();
  }
  FrameMagazine* magazine = ThreadMagazine();
  VmPage* page = magazine != nullptr ? magazine->Take(kernel_->clock().now()) : pool_.Take();
  if (page == nullptr) {
    Balance();
    page = pool_.Take();
    if (page == nullptr) {
      // Desperation: reclaim ignoring reference bits, shard by shard from home. EvictPage
      // can fail only in real-threads mode (task-lock try edge); park such pages on the
      // active queue and keep scanning. The per-shard budget (snapshot of its population)
      // bounds the walk: each iteration either succeeds or re-parks a page we will not
      // re-examine within budget, so the loop terminates.
      sim::Nanos now = kernel_->clock().now();
      size_t home = HomeShard();
      for (size_t i = 0; i < shards_.size() && page == nullptr; ++i) {
        QueueShard& shard = *shards_[(home + i) % shards_.size()];
        sim::ScopedLock lock(shard.mu);
        size_t budget = shard.inactive.count() + shard.active.count();
        for (size_t j = 0; j < budget && page == nullptr; ++j) {
          bool from_inactive = !shard.inactive.empty();
          VmPage* victim = from_inactive ? shard.inactive.head() : shard.active.head();
          if (victim == nullptr) {
            break;
          }
          victim->busy.store(true, std::memory_order_release);
          (from_inactive ? shard.inactive : shard.active).Remove(victim);
          if (from_inactive) {
            inactive_total_.fetch_sub(1, std::memory_order_relaxed);
          } else {
            active_total_.fetch_sub(1, std::memory_order_relaxed);
          }
          if (kernel_->EvictPage(victim, /*flush_if_dirty=*/true)) {
            counters_.Add(kCtrDesperationReclaims);
            page = victim;
            // Stays busy=false-after-clear but off-queue: it now belongs to the faulting
            // thread, and nothing else can reach it until it is re-entered into an object.
            victim->busy.store(false, std::memory_order_release);
          } else {
            shard.active.EnqueueTail(victim, now);
            active_total_.fetch_add(1, std::memory_order_relaxed);
            victim->busy.store(false, std::memory_order_release);
            counters_.Add(kCtrEvictLockMisses);
          }
        }
      }
    }
  }
  if (page != nullptr) {
    counters_.Add(kCtrAllocForFault);
  }
  return page;
}

bool PageoutDaemon::AllocFramesForManager(size_t n, PageQueue* out, void* owner) {
  // No daemon-wide lock exists anymore; the GlobalFrameManager's own lock (rank kManager)
  // serializes every caller of this path, and the collect-commit-rollback below already
  // tolerated fault threads racing the pool, so nothing further is needed.
  if (AvailableForManager() < n) {
    Balance();
  }
  if (AvailableForManager() < n) {
    return false;
  }
  sim::Nanos now = kernel_->clock().now();
  // Collect first, commit second: concurrent fault threads can race the admission check
  // above (it reads the relaxed pool count), so a shortfall puts everything back.
  std::vector<VmPage*> got;
  got.reserve(n);
  while (got.size() < n) {
    VmPage* page = pool_.Take();
    if (page == nullptr) {
      break;
    }
    got.push_back(page);
  }
  if (got.size() < n) {
    for (VmPage* page : got) {
      pool_.Put(page, now);
    }
    return false;
  }
  for (VmPage* page : got) {
    page->owner = owner;
    page->user_word = 0;  // policy scratch must not leak between owners
    out->EnqueueTail(page, now);
  }
  counters_.Add(kCtrFramesToManager, static_cast<int64_t>(n));
  return true;
}

void PageoutDaemon::ReturnFrame(VmPage* page) {
  HIPEC_CHECK_MSG(page->queue.load(std::memory_order_relaxed) == nullptr,
                  "frame still on a queue");
  HIPEC_CHECK_MSG(page->object == nullptr, "frame still resident in an object");
  HIPEC_CHECK_MSG(!page->has_mapping, "frame still mapped");
  page->owner = nullptr;
  page->reference = false;
  page->modified = false;
  page->wired = false;
  sim::Nanos now = kernel_->clock().now();
  FrameMagazine* magazine = ThreadMagazine();
  if (magazine != nullptr) {
    magazine->Put(page, now);
  } else {
    pool_.Put(page, now);
  }
}

void PageoutDaemon::Activate(VmPage* page) {
  QueueShard& shard = *shards_[HomeShard()];
  sim::ScopedLock lock(shard.mu);
  shard.active.EnqueueTail(page, kernel_->clock().now());
  active_total_.fetch_add(1, std::memory_order_relaxed);
}

void PageoutDaemon::ReactivateIfInactive(VmPage* page) {
  for (;;) {
    PageQueue* q = page->queue.load(std::memory_order_acquire);
    if (q == nullptr) {
      if (page->busy.load(std::memory_order_acquire)) {
        // Mid-transition inside a balance pass; it cannot evict (we hold the mapping task's
        // lock), so the page lands on a daemon queue momentarily. Wait it out.
        std::this_thread::yield();
        continue;
      }
      // Stable off-queue (e.g. wired): nothing to reactivate.
      if (page->queue.load(std::memory_order_acquire) == nullptr) {
        return;
      }
      continue;
    }
    QueueShard* shard = ShardForQueue(q);
    if (shard == nullptr || q != &shard->inactive) {
      // On an active queue, a container queue, or the free pool: not our business.
      return;
    }
    sim::ScopedLock lock(shard->mu);
    if (page->queue.load(std::memory_order_relaxed) != q) {
      continue;  // Moved between the resolve and the lock; retry.
    }
    shard->inactive.Remove(page);
    inactive_total_.fetch_sub(1, std::memory_order_relaxed);
    shard->active.EnqueueTail(page, kernel_->clock().now());
    active_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
}

void PageoutDaemon::Unqueue(VmPage* page) {
  for (;;) {
    PageQueue* q = page->queue.load(std::memory_order_acquire);
    if (q == nullptr) {
      if (page->busy.load(std::memory_order_acquire)) {
        // In flight between daemon queues; the holder cannot evict it (the caller holds the
        // mapping task's lock), so it will reappear on a queue. Spin past the window.
        std::this_thread::yield();
        continue;
      }
      if (page->queue.load(std::memory_order_acquire) == nullptr) {
        return;  // Genuinely off every queue.
      }
      continue;
    }
    QueueShard* shard = ShardForQueue(q);
    if (shard == nullptr) {
      // A container/private queue, which the caller's task lock already guards.
      q->Remove(page);
      return;
    }
    sim::ScopedLock lock(shard->mu);
    if (page->queue.load(std::memory_order_relaxed) != q) {
      continue;  // Raced with a balance move; resolve again.
    }
    q->Remove(page);
    if (q == &shard->active) {
      active_total_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      inactive_total_.fetch_sub(1, std::memory_order_relaxed);
    }
    return;
  }
}

size_t PageoutDaemon::AvailableForManager() const {
  // The last free_min frames are reserved so the kernel's own fault path cannot starve.
  size_t free = pool_.count();
  return free > targets_.free_min ? free - targets_.free_min : 0;
}

bool PageoutDaemon::OwnsActiveQueue(const PageQueue* q) const {
  if (q == nullptr) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (&shard->active == q) {
      return true;
    }
  }
  return false;
}

bool PageoutDaemon::OwnsInactiveQueue(const PageQueue* q) const {
  if (q == nullptr) {
    return false;
  }
  for (const auto& shard : shards_) {
    if (&shard->inactive == q) {
      return true;
    }
  }
  return false;
}

}  // namespace hipec::mach
