#include "mach/pageout_daemon.h"

#include <vector>

#include "mach/kernel.h"
#include "sim/check.h"

namespace hipec::mach {

namespace {

// Interned counter ids: array-indexed adds on the fault path, no string lookups.
const sim::CounterId kCtrSecondChances = sim::InternCounter("pageout.second_chances");
const sim::CounterId kCtrEvictions = sim::InternCounter("pageout.evictions");
const sim::CounterId kCtrBalanceRuns = sim::InternCounter("pageout.balance_runs");
const sim::CounterId kCtrPagesExamined = sim::InternCounter("pageout.pages_examined");
const sim::CounterId kCtrDesperationReclaims = sim::InternCounter("pageout.desperation_reclaims");
const sim::CounterId kCtrAllocForFault = sim::InternCounter("pageout.alloc_for_fault");
const sim::CounterId kCtrFramesToManager = sim::InternCounter("pageout.frames_to_manager");
const sim::CounterId kCtrEvictLockMisses = sim::InternCounter("pageout.evict_lock_misses");

}  // namespace

PageoutDaemon::PageoutDaemon(Kernel* kernel, PageoutTargets targets, size_t free_pool_shards)
    : kernel_(kernel),
      targets_(targets),
      pool_(free_pool_shards),
      active_("vm_page_queue_active"),
      inactive_("vm_page_queue_inactive") {}

void PageoutDaemon::EnableConcurrent() {
  mu_.Enable(true);
  pool_.EnableConcurrent();
  counters_.EnableConcurrent();
}

void PageoutDaemon::AddBootFrame(VmPage* page) {
  pool_.AddBootFrame(page);
}

void PageoutDaemon::Balance() {
  sim::ScopedLock lock(mu_);
  BalanceLocked();
}

void PageoutDaemon::BalanceLocked() {
  sim::Nanos now = kernel_->clock().now();
  size_t examined = 0;

  // Refill the inactive queue from the active queue, clearing reference bits so a second
  // reference can be detected (the "second chance").
  while (inactive_.count() < targets_.inactive_target && !active_.empty()) {
    VmPage* page = active_.DequeueHead();
    page->reference = false;
    inactive_.EnqueueTail(page, now);
    ++examined;
  }

  // Refill the free pool from the inactive queue.
  while (pool_.count() < targets_.free_target && !inactive_.empty()) {
    VmPage* page = inactive_.DequeueHead();
    ++examined;
    if (page->reference) {
      // Referenced while inactive: give it a second chance on the active queue.
      page->reference = false;
      active_.EnqueueTail(page, now);
      counters_.Add(kCtrSecondChances);
      continue;
    }
    if (!kernel_->EvictPage(page, /*flush_if_dirty=*/true)) {
      // Real-threads mode only: the mapping task's lock was busy (try edge). Park the page
      // on the active queue and move on; the inactive queue shrank, so the loop terminates.
      active_.EnqueueTail(page, now);
      counters_.Add(kCtrEvictLockMisses);
      continue;
    }
    pool_.Put(page, now);
    counters_.Add(kCtrEvictions);
  }

  counters_.Add(kCtrBalanceRuns);
  counters_.Add(kCtrPagesExamined, static_cast<int64_t>(examined));
  kernel_->ChargePageoutScan(examined);
}

VmPage* PageoutDaemon::AllocForFault() {
  if (pool_.count() <= targets_.free_min) {
    Balance();
    // The free pool ran dry while serving a non-specific fault: that is memory pressure.
    // Tell the HiPEC layer (it may adapt partition_burst and reclaim specific frames).
    // Deliberately outside mu_: the notification re-enters the frame manager at rank
    // kManager < kDaemon, which would invert the hierarchy under the daemon lock.
    kernel_->NotifyMemoryPressure();
  }
  VmPage* page = pool_.Take();
  if (page == nullptr) {
    sim::ScopedLock lock(mu_);
    BalanceLocked();
    page = pool_.Take();
    if (page == nullptr) {
      // Desperation: reclaim ignoring reference bits. EvictPage can fail only in
      // real-threads mode (task-lock try edge); park such pages on the active queue and
      // keep scanning — each iteration shortens inactive_ + active_ or succeeds.
      size_t budget = inactive_.count() + active_.count();
      sim::Nanos now = kernel_->clock().now();
      for (size_t i = 0; i < budget && page == nullptr; ++i) {
        VmPage* victim = inactive_.DequeueHead();
        if (victim == nullptr) {
          victim = active_.DequeueHead();
        }
        if (victim == nullptr) {
          break;
        }
        if (kernel_->EvictPage(victim, /*flush_if_dirty=*/true)) {
          counters_.Add(kCtrDesperationReclaims);
          page = victim;
        } else {
          active_.EnqueueTail(victim, now);
          counters_.Add(kCtrEvictLockMisses);
        }
      }
    }
  }
  if (page != nullptr) {
    counters_.Add(kCtrAllocForFault);
  }
  return page;
}

bool PageoutDaemon::AllocFramesForManager(size_t n, PageQueue* out, void* owner) {
  sim::ScopedLock lock(mu_);
  if (AvailableForManager() < n) {
    BalanceLocked();
  }
  if (AvailableForManager() < n) {
    return false;
  }
  sim::Nanos now = kernel_->clock().now();
  // Collect first, commit second: concurrent fault threads can race the admission check
  // above (it reads the relaxed pool count), so a shortfall puts everything back.
  std::vector<VmPage*> got;
  got.reserve(n);
  while (got.size() < n) {
    VmPage* page = pool_.Take();
    if (page == nullptr) {
      break;
    }
    got.push_back(page);
  }
  if (got.size() < n) {
    for (VmPage* page : got) {
      pool_.Put(page, now);
    }
    return false;
  }
  for (VmPage* page : got) {
    page->owner = owner;
    out->EnqueueTail(page, now);
  }
  counters_.Add(kCtrFramesToManager, static_cast<int64_t>(n));
  return true;
}

void PageoutDaemon::ReturnFrame(VmPage* page) {
  HIPEC_CHECK_MSG(page->queue == nullptr, "frame still on a queue");
  HIPEC_CHECK_MSG(page->object == nullptr, "frame still resident in an object");
  HIPEC_CHECK_MSG(!page->has_mapping, "frame still mapped");
  page->owner = nullptr;
  page->reference = false;
  page->modified = false;
  page->wired = false;
  pool_.Put(page, kernel_->clock().now());
}

void PageoutDaemon::Activate(VmPage* page) {
  sim::ScopedLock lock(mu_);
  active_.EnqueueTail(page, kernel_->clock().now());
}

void PageoutDaemon::ReactivateIfInactive(VmPage* page) {
  sim::ScopedLock lock(mu_);
  if (page->queue == &inactive_) {
    inactive_.Remove(page);
    active_.EnqueueTail(page, kernel_->clock().now());
  }
}

void PageoutDaemon::Unqueue(VmPage* page) {
  sim::ScopedLock lock(mu_);
  if (page->queue != nullptr) {
    page->queue->Remove(page);
  }
}

size_t PageoutDaemon::AvailableForManager() const {
  // The last free_min frames are reserved so the kernel's own fault path cannot starve.
  size_t free = pool_.count();
  return free > targets_.free_min ? free - targets_.free_min : 0;
}

size_t PageoutDaemon::active_count() const {
  sim::ScopedLock lock(mu_);
  return active_.count();
}

size_t PageoutDaemon::inactive_count() const {
  sim::ScopedLock lock(mu_);
  return inactive_.count();
}

}  // namespace hipec::mach
