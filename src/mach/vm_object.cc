#include "mach/vm_object.h"

#include <utility>

#include "sim/check.h"

namespace hipec::mach {

VmObject::VmObject(uint64_t id, std::string name, uint64_t size_bytes, bool file_backed,
                   uint64_t disk_base_block)
    : id_(id),
      name_(std::move(name)),
      size_bytes_(size_bytes),
      file_backed_(file_backed),
      disk_base_block_(disk_base_block) {
  HIPEC_CHECK_MSG(size_bytes % kPageSize == 0, "object size must be page aligned");
}

VmPage* VmObject::Lookup(uint64_t offset) const {
  auto it = resident_.find(offset);
  return it == resident_.end() ? nullptr : it->second;
}

void VmObject::InsertPage(VmPage* page, uint64_t offset) {
  HIPEC_CHECK_MSG(offset % kPageSize == 0, "unaligned offset");
  HIPEC_CHECK_MSG(offset < size_bytes_, "offset beyond object size");
  HIPEC_CHECK_MSG(page->object == nullptr, "page already resident in an object");
  auto [it, inserted] = resident_.emplace(offset, page);
  HIPEC_CHECK_MSG(inserted, "offset already has a resident page");
  page->object = this;
  page->offset = offset;
}

void VmObject::RemovePage(VmPage* page) {
  HIPEC_CHECK_MSG(page->object == this, "page not resident in this object");
  size_t erased = resident_.erase(page->offset);
  HIPEC_CHECK(erased == 1);
  page->object = nullptr;
  page->offset = 0;
}

}  // namespace hipec::mach
