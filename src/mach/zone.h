// A typed fixed-size-object allocator modelled on the Mach zone system (Sciver & Rashid,
// "Zone Garbage Collection"). The paper allocates HiPEC containers from a zone; we reproduce
// the interface and the chunked free-list behaviour so allocation counts are observable.
#ifndef HIPEC_MACH_ZONE_H_
#define HIPEC_MACH_ZONE_H_

#include <cstddef>
#include <memory>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "sim/check.h"
#include "sim/lock.h"

namespace hipec::mach {

// Zone<T>: allocates T objects from chunked slabs with an intrusive free list. Memory is
// returned to the system only when the zone is destroyed (as in Mach before zone GC runs).
template <typename T>
class Zone {
 public:
  explicit Zone(std::string name, size_t chunk_elements = 64)
      : name_(std::move(name)), chunk_elements_(chunk_elements) {
    HIPEC_CHECK(chunk_elements_ > 0);
  }

  Zone(const Zone&) = delete;
  Zone& operator=(const Zone&) = delete;

  ~Zone() {
    // All elements must have been freed; a live element here is a leak in the kernel model.
    // (Destructor must not throw, so this is a best-effort diagnostic only.)
  }

  // Arms the zone's free-list lock (rank kLeaf — zones guard pure storage and call out to
  // nothing) for real-threads mode.
  void EnableConcurrent() { mu_.Enable(true); }

  template <typename... Args>
  T* Alloc(Args&&... args) {
    sim::ScopedLock lock(mu_);
    if (free_list_ == nullptr) {
      Grow();
    }
    Slot* slot = free_list_;
    free_list_ = slot->next_free;
    ++live_;
    ++total_allocs_;
    return new (slot->storage) T(std::forward<Args>(args)...);
  }

  void Free(T* object) {
    HIPEC_CHECK_MSG(object != nullptr, "Zone::Free(nullptr) in zone " << name_);
    object->~T();
    sim::ScopedLock lock(mu_);
    auto* slot = reinterpret_cast<Slot*>(reinterpret_cast<unsigned char*>(object) -
                                         offsetof(Slot, storage));
    slot->next_free = free_list_;
    free_list_ = slot;
    HIPEC_CHECK_MSG(live_ > 0, "double free in zone " << name_);
    --live_;
  }

  const std::string& name() const { return name_; }
  size_t live() const {
    sim::ScopedLock lock(mu_);
    return live_;
  }
  size_t capacity() const {
    sim::ScopedLock lock(mu_);
    return chunks_.size() * chunk_elements_;
  }
  size_t total_allocs() const {
    sim::ScopedLock lock(mu_);
    return total_allocs_;
  }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    Slot* next_free;
  };

  void Grow() {
    chunks_.push_back(std::make_unique<Slot[]>(chunk_elements_));
    Slot* chunk = chunks_.back().get();
    for (size_t i = 0; i < chunk_elements_; ++i) {
      chunk[i].next_free = free_list_;
      free_list_ = &chunk[i];
    }
  }

  std::string name_;
  size_t chunk_elements_;
  mutable sim::OrderedMutex mu_{sim::LockRank::kLeaf};
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  Slot* free_list_ = nullptr;
  size_t live_ = 0;
  size_t total_allocs_ = 0;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_ZONE_H_
