#include "mach/vm_map.h"

#include "sim/check.h"

namespace hipec::mach {

VmMapEntry* VmMap::Lookup(uint64_t vaddr) {
  auto it = entries_.upper_bound(vaddr);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  VmMapEntry& entry = it->second;
  return (vaddr >= entry.start && vaddr < entry.end) ? &entry : nullptr;
}

const VmMapEntry* VmMap::Lookup(uint64_t vaddr) const {
  return const_cast<VmMap*>(this)->Lookup(vaddr);
}

uint64_t VmMap::Insert(VmObject* object, uint64_t object_offset, uint64_t size,
                       bool write_protected) {
  uint64_t start = next_free_;
  next_free_ += (size + kPageSize - 1) & ~(kPageSize - 1);
  next_free_ += kPageSize;  // guard page between regions
  InsertAt(start, object, object_offset, size, write_protected);
  return start;
}

void VmMap::InsertAt(uint64_t start, VmObject* object, uint64_t object_offset, uint64_t size,
                     bool write_protected) {
  HIPEC_CHECK_MSG(start % kPageSize == 0 && size % kPageSize == 0 && size > 0,
                  "unaligned or empty mapping");
  HIPEC_CHECK_MSG(object_offset + size <= object->size(), "mapping beyond object");
  HIPEC_CHECK_MSG(Lookup(start) == nullptr && Lookup(start + size - 1) == nullptr,
                  "mapping overlaps an existing entry");
  entries_.emplace(start, VmMapEntry{start, start + size, object, object_offset,
                                     write_protected});
}

VmMapEntry VmMap::Remove(uint64_t start) {
  auto it = entries_.find(start);
  HIPEC_CHECK_MSG(it != entries_.end(), "no map entry at this address");
  VmMapEntry entry = it->second;
  entries_.erase(it);
  return entry;
}

}  // namespace hipec::mach
