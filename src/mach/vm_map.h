// Per-task address maps, modelled on Mach's `vm_map`: an ordered set of entries, each mapping
// a contiguous virtual range onto a VM object. The *region* — one map entry — is HiPEC's unit
// of specific control (§3).
#ifndef HIPEC_MACH_VM_MAP_H_
#define HIPEC_MACH_VM_MAP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "mach/vm_object.h"
#include "sim/lock.h"

namespace hipec::mach {

struct VmMapEntry {
  uint64_t start = 0;  // inclusive
  uint64_t end = 0;    // exclusive
  VmObject* object = nullptr;
  uint64_t object_offset = 0;  // object offset corresponding to `start`
  // Read-only region; writes terminate the task. Used for wired HiPEC command buffers (§4.1).
  bool write_protected = false;

  uint64_t size() const { return end - start; }
  uint64_t OffsetOf(uint64_t vaddr) const {
    return object_offset + ((vaddr - start) & ~(kPageSize - 1));
  }
};

class VmMap {
 public:
  VmMap() = default;
  VmMap(const VmMap&) = delete;
  VmMap& operator=(const VmMap&) = delete;

  // Finds the entry containing `vaddr`, or nullptr.
  VmMapEntry* Lookup(uint64_t vaddr);
  const VmMapEntry* Lookup(uint64_t vaddr) const;

  // Inserts a mapping at a kernel-chosen address; returns the start address.
  uint64_t Insert(VmObject* object, uint64_t object_offset, uint64_t size,
                  bool write_protected = false);

  // Inserts a mapping at a fixed address; the range must be free.
  void InsertAt(uint64_t start, VmObject* object, uint64_t object_offset, uint64_t size,
                bool write_protected = false);

  // Removes the entry starting at `start`; returns the removed entry.
  VmMapEntry Remove(uint64_t start);

  size_t entry_count() const { return entries_.size(); }

  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [start, entry] : entries_) {
      fn(entry);
    }
  }

 private:
  // Keyed by entry start address.
  std::map<uint64_t, VmMapEntry> entries_;
  // Simple bump allocator for kernel-chosen addresses; user address space is vast relative to
  // the experiments, so freed ranges are not recycled.
  uint64_t next_free_ = 0x0000'1000'0000ULL;
};

// A Mach task: an address space plus termination state. Thread scheduling is handled by the
// workload models; the kernel only needs the address space and fault accounting here.
//
// Concurrency: mutex() (rank kTask) guards the address map, the pmap translations of this
// task, and pages mapped into it. Fault threads take it blocking at kernel entry; the
// manager and daemon reach it only via try_lock (DESIGN.md §10). The terminated flag is a
// relaxed atomic so the checker and other tasks' fault paths can poll it lock-free; the
// reason string is written once, under the task lock, before the flag is raised.
// One virtual-to-physical translation (mach/pmap.h). Stored inside the owning Task rather
// than in a shared pmap-wide table: tasks are created while other tasks fault concurrently
// (the M:N scheduler admits tenants throughout a run), and a shared id-keyed outer map would
// rehash under readers. Per-task storage is guarded by the task's own kTask lock like the
// rest of its address-space state, and needs no global structure at all.
struct PmapTranslation {
  VmPage* page;
  bool write_protected;
};

class Task {
 public:
  Task(uint64_t id, std::string name) : id_(id), name_(std::move(name)) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  VmMap& map() { return map_; }
  const VmMap& map() const { return map_; }

  // The task's translation table (virtual page number -> translation), written only by
  // Pmap with this task's mutex held.
  std::unordered_map<uint64_t, PmapTranslation>& pmap_translations() {
    return pmap_translations_;
  }
  const std::unordered_map<uint64_t, PmapTranslation>& pmap_translations() const {
    return pmap_translations_;
  }

  sim::OrderedMutex& mutex() const { return mu_; }

  bool terminated() const { return terminated_.load(std::memory_order_acquire); }
  const std::string& termination_reason() const { return termination_reason_; }
  void Terminate(const std::string& reason) {
    if (terminated_.load(std::memory_order_relaxed)) {
      return;
    }
    termination_reason_ = reason;
    terminated_.store(true, std::memory_order_release);
  }

 private:
  uint64_t id_;
  std::string name_;
  mutable sim::OrderedMutex mu_{sim::LockRank::kTask};
  VmMap map_;
  std::unordered_map<uint64_t, PmapTranslation> pmap_translations_;
  std::atomic<bool> terminated_{false};
  std::string termination_reason_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_VM_MAP_H_
