// Minimal Mach-style IPC: ports carrying typed messages. Used by the external-memory-
// management interface (emm.h) so kernel/pager traffic is real queued messages whose costs
// and counts are observable — the paper's §2 critique of external pagers ("the IPC overhead
// for communication between the kernel and external pager is high") becomes measurable.
#ifndef HIPEC_MACH_IPC_H_
#define HIPEC_MACH_IPC_H_

#include <cstdint>
#include <deque>
#include <string>

#include "sim/stats.h"

namespace hipec::mach {

struct IpcMessage {
  // Message ids follow Mach's memory_object protocol naming.
  enum class Id {
    kMemoryObjectDataRequest,   // kernel -> pager: page me this offset
    kMemoryObjectDataWrite,     // kernel -> pager: here is a dirty page, keep it
    kMemoryObjectDataProvided,  // pager -> kernel: here is the data you asked for
    kMemoryObjectTerminate,     // kernel -> pager: the object is going away
  };

  Id id;
  uint64_t object_id = 0;
  uint64_t offset = 0;
  bool ok = true;
};

// A message queue endpoint. Single-receiver, unbounded (the experiments never queue more
// than a handful of messages).
class IpcPort {
 public:
  explicit IpcPort(std::string name) : name_(std::move(name)) {}
  IpcPort(const IpcPort&) = delete;
  IpcPort& operator=(const IpcPort&) = delete;

  void Send(const IpcMessage& message) {
    static const sim::CounterId kCtrSends = sim::InternCounter("port.sends");
    queue_.push_back(message);
    counters_.Add(kCtrSends);
  }

  bool TryReceive(IpcMessage* out) {
    static const sim::CounterId kCtrReceives = sim::InternCounter("port.receives");
    if (queue_.empty()) {
      return false;
    }
    *out = queue_.front();
    queue_.pop_front();
    counters_.Add(kCtrReceives);
    return true;
  }

  size_t pending() const { return queue_.size(); }
  const std::string& name() const { return name_; }
  sim::CounterSet& counters() { return counters_; }

 private:
  std::string name_;
  std::deque<IpcMessage> queue_;
  sim::CounterSet counters_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_IPC_H_
