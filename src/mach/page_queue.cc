#include "mach/page_queue.h"

#include <utility>

#include "sim/check.h"

namespace hipec::mach {

PageQueue::PageQueue(std::string name) : name_(std::move(name)) {}

PageQueue::~PageQueue() {
  // Pages are owned by PhysicalMemory; nothing to free, but detach membership so dangling
  // queue pointers are caught by the Contains() checks.
  for (VmPage* p = head_; p != nullptr;) {
    VmPage* next = p->q_next;
    p->queue.store(nullptr, std::memory_order_relaxed);
    p->q_prev = p->q_next = nullptr;
    p = next;
  }
}

void PageQueue::EnqueueHead(VmPage* page, sim::Nanos now) {
  HIPEC_CHECK_MSG(page->queue.load(std::memory_order_relaxed) == nullptr,
                  "page " << page->frame_number << " already on a queue while enqueuing to "
                          << name_);
  // Release: a racing shard-resolver that acquire-loads this pointer must also see the
  // writer's preceding stores (in particular `busy = true` around daemon-queue transitions).
  page->queue.store(this, std::memory_order_release);
  page->enqueue_ns = now;
  page->q_prev = nullptr;
  page->q_next = head_;
  if (head_ != nullptr) {
    head_->q_prev = page;
  } else {
    tail_ = page;
  }
  head_ = page;
  ++count_;
}

void PageQueue::EnqueueTail(VmPage* page, sim::Nanos now) {
  HIPEC_CHECK_MSG(page->queue.load(std::memory_order_relaxed) == nullptr,
                  "page " << page->frame_number << " already on a queue while enqueuing to "
                          << name_);
  page->queue.store(this, std::memory_order_release);
  page->enqueue_ns = now;
  page->q_next = nullptr;
  page->q_prev = tail_;
  if (tail_ != nullptr) {
    tail_->q_next = page;
  } else {
    head_ = page;
  }
  tail_ = page;
  ++count_;
}

VmPage* PageQueue::DequeueHead() {
  if (head_ == nullptr) {
    return nullptr;
  }
  VmPage* page = head_;
  Remove(page);
  return page;
}

VmPage* PageQueue::DequeueTail() {
  if (tail_ == nullptr) {
    return nullptr;
  }
  VmPage* page = tail_;
  Remove(page);
  return page;
}

void PageQueue::Remove(VmPage* page) {
  HIPEC_CHECK_MSG(page->queue.load(std::memory_order_relaxed) == this,
                  "removing page " << page->frame_number << " from wrong queue " << name_);
  if (page->q_prev != nullptr) {
    page->q_prev->q_next = page->q_next;
  } else {
    head_ = page->q_next;
  }
  if (page->q_next != nullptr) {
    page->q_next->q_prev = page->q_prev;
  } else {
    tail_ = page->q_prev;
  }
  page->q_prev = page->q_next = nullptr;
  // Release pairs with the acquire load in PageoutDaemon::Unqueue: seeing nullptr implies
  // seeing any `busy = true` the remover published first.
  page->queue.store(nullptr, std::memory_order_release);
  HIPEC_CHECK(count_ > 0);
  --count_;
}

size_t PageQueue::CountByTraversal() const {
  size_t n = 0;
  for (VmPage* p = head_; p != nullptr; p = p->q_next) {
    ++n;
  }
  return n;
}

}  // namespace hipec::mach
