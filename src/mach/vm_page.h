// The machine-independent page structure, modelled on Mach's `struct vm_page`.
//
// One VmPage exists per physical frame. A page is linked onto at most one replacement queue
// at a time (global free/active/inactive queues, or a HiPEC container's private queues), plus
// — independently — the global allocation-ordered list the frame manager walks during forced
// reclamation (§4.3.1 "Deallocation").
#ifndef HIPEC_MACH_VM_PAGE_H_
#define HIPEC_MACH_VM_PAGE_H_

#include <atomic>
#include <cstdint>

#include "sim/clock.h"

namespace hipec::mach {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;

class VmObject;
class PageQueue;
class Task;

struct VmPage {
  // Identity.
  uint32_t frame_number = 0;

  // Object residency: which VM object (and offset within it) this frame currently caches.
  VmObject* object = nullptr;
  uint64_t offset = 0;  // page-aligned byte offset within `object`

  // Replacement-queue linkage (intrusive, owned by PageQueue). `queue` is atomic because the
  // sharded pageout daemon resolves a page's shard from it *before* taking that shard's lock
  // (then re-checks under the lock); the links themselves are only ever touched under the
  // lock guarding the owning queue. All PageQueue-internal accesses are relaxed — the shard
  // mutexes order the transitions; the atomic only makes the pre-lock read well-defined.
  VmPage* q_prev = nullptr;
  VmPage* q_next = nullptr;
  std::atomic<PageQueue*> queue{nullptr};

  // State bits.
  bool wired = false;     // never paged (kernel memory, command buffers, pinned tables)
  // In flight between daemon queues: set (release) by a balance/desperation pass that holds a
  // page off-queue momentarily while deciding its fate, cleared (release) once the page has
  // landed. Unqueue() — called with the mapping task's lock held, which pins the page's
  // residency — spins on it so "queue == nullptr" is never mistaken for "off every queue"
  // while a concurrent balance pass is mid-transition.
  std::atomic<bool> busy{false};
  bool reference = false;  // pmap-emulated reference bit
  bool modified = false;   // pmap-emulated modify (dirty) bit

  // Simulator-maintained recency, used by the LRU/MRU complex commands. On real Mach this is
  // approximated with reference-bit sampling (Draves, "Page Replacement and Reference Bit
  // Emulation in Mach"); the simulator can afford exact times.
  sim::Nanos last_reference_ns = 0;
  // Time this page was appended to its current queue (FIFO arrival order).
  sim::Nanos enqueue_ns = 0;
  // Policy-visible per-page scratch word: written/read by the PageWord command and ranked by
  // WeightedSelect. Belongs to the owning container's policy; zeroed whenever the frame is
  // granted to a new owner so scores never leak between containers.
  int64_t user_word = 0;

  // Private-pool ownership: the HiPEC container this frame is allocated to, or nullptr when
  // the frame belongs to the global pool. Opaque at this layer.
  void* owner = nullptr;

  // Allocation-ordered list for FAFR forced reclamation (only frames with owner != nullptr).
  VmPage* alloc_prev = nullptr;
  VmPage* alloc_next = nullptr;
  bool on_alloc_list = false;
  // Monotonic stamp assigned when the frame manager appends the frame to the allocation
  // list; the scenario invariant auditor verifies the list stays sorted by it (FAFR order).
  uint64_t alloc_seq = 0;

  // Reverse mapping. The reproduction uses a single-mapping model (no page sharing between
  // tasks), which covers every experiment in the paper.
  Task* mapped_task = nullptr;
  uint64_t mapped_vaddr = 0;
  bool has_mapping = false;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_VM_PAGE_H_
