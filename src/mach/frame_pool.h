// The sharded free-frame pool: the centralized free queue split into N shards, each behind
// its own rank-kShard lock, so concurrent fault threads allocating and returning frames do
// not serialize on one list head.
//
// Placement: a thread has a home shard (thread-striped in real-threads mode, shard 0 in the
// deterministic mode, which keeps single-threaded draining order fixed). Take() drains the
// home shard first and work-steals from the others when it runs dry; Put() returns to the
// home shard. The pool-wide count is a relaxed atomic maintained alongside the queues, so
// watermark checks (`free_count <= free_min`) never take a lock — they are admission
// heuristics, and the allocation paths below them re-verify under the shard locks (Take()
// returning nullptr is the authoritative "empty").
//
// Frame conservation — the property the invariant auditor proves — is global: the sum of
// shard counts plus everything resident/granted must equal total_frames, regardless of how
// frames are distributed over shards.
#ifndef HIPEC_MACH_FRAME_POOL_H_
#define HIPEC_MACH_FRAME_POOL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "mach/page_queue.h"
#include "sim/clock.h"
#include "sim/lock.h"

namespace hipec::mach {

class ShardedFramePool {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedFramePool(size_t shards = kDefaultShards);
  ShardedFramePool(const ShardedFramePool&) = delete;
  ShardedFramePool& operator=(const ShardedFramePool&) = delete;

  // Arms the per-shard locks for real-threads mode. Call before worker threads exist.
  void EnableConcurrent();
  bool concurrent() const { return concurrent_; }

  // Boot-time distribution: frames spread round-robin over the shards.
  void AddBootFrame(VmPage* page);

  // Takes one free frame: home shard first, then steals round-robin from the others.
  // Returns nullptr when every shard is empty.
  VmPage* Take();

  // Returns a frame to the caller's home shard. `now` stamps the queue entry.
  void Put(VmPage* page, sim::Nanos now);

  // Pool-wide free count (relaxed; exact when writers are quiesced, an admission heuristic
  // while they run).
  size_t count() const { return total_.load(std::memory_order_relaxed); }

  // True if `q` is one of this pool's shard queues — the accounting layer's "is this frame
  // free" test, replacing identity comparison against the old single queue.
  bool Owns(const PageQueue* q) const;

  size_t shard_count() const { return shards_.size(); }
  // Per-shard inspection for tests and the auditor; hold no frames while iterating in real
  // mode (the auditor runs stop-the-world).
  const PageQueue& shard_queue(size_t i) const { return shards_[i]->queue; }

 private:
  struct alignas(64) Shard {
    explicit Shard(std::string name)
        : mu(sim::LockRank::kShard), queue(std::move(name)) {}
    sim::OrderedMutex mu;
    PageQueue queue;
  };

  size_t HomeShard() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> total_{0};
  size_t next_boot_ = 0;
  bool concurrent_ = false;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_FRAME_POOL_H_
