// The sharded free-frame pool: the centralized free queue split into N shards, each behind
// its own rank-kShard lock, so concurrent fault threads allocating and returning frames do
// not serialize on one list head.
//
// Placement: a thread has a home shard (thread-striped in real-threads mode, shard 0 in the
// deterministic mode, which keeps single-threaded draining order fixed). Take() drains the
// home shard first and work-steals from the others when it runs dry; Put() returns to the
// home shard. The pool-wide count is a relaxed atomic maintained alongside the queues, so
// watermark checks (`free_count <= free_min`) never take a lock — they are admission
// heuristics, and the allocation paths below them re-verify under the shard locks (Take()
// returning nullptr is the authoritative "empty").
//
// Magazines: a FrameMagazine is a thread-confined cache of free frames sitting in front of
// the pool (magazine-allocator style). Take/Put move frames one at a time without any lock;
// refills and flushes move half a magazine per shard-lock acquisition, so a worker thread
// that allocates and frees at fault rate amortizes its shard-lock traffic by the batch
// factor. Magazine queues register with the pool so the accounting layer still classifies
// cached frames as free (conservation is pool + magazines).
//
// Frame conservation — the property the invariant auditor proves — is global: the sum of
// shard counts plus everything resident/granted must equal total_frames, regardless of how
// frames are distributed over shards.
#ifndef HIPEC_MACH_FRAME_POOL_H_
#define HIPEC_MACH_FRAME_POOL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "mach/page_queue.h"
#include "sim/clock.h"
#include "sim/lock.h"

namespace hipec::mach {

class ShardedFramePool {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedFramePool(size_t shards = kDefaultShards);
  ShardedFramePool(const ShardedFramePool&) = delete;
  ShardedFramePool& operator=(const ShardedFramePool&) = delete;

  // Arms the per-shard locks for real-threads mode. Call before worker threads exist.
  void EnableConcurrent();
  bool concurrent() const { return concurrent_; }

  // Boot-time distribution: frames spread round-robin over the shards.
  void AddBootFrame(VmPage* page);

  // Takes one free frame: home shard first, then steals round-robin from the others.
  // Returns nullptr when every shard is empty.
  VmPage* Take();

  // Returns a frame to the caller's home shard. `now` stamps the queue entry.
  void Put(VmPage* page, sim::Nanos now);

  // Takes up to `n` frames into `out`, draining whole shards per lock acquisition (home
  // first, then steal order). Returns how many were taken. The magazine refill path.
  size_t TakeBatch(size_t n, PageQueue* out, sim::Nanos now);

  // Moves up to `n` frames from `from`'s head to the caller's home shard under one lock
  // acquisition. The magazine flush path.
  void PutBatch(PageQueue* from, size_t n, sim::Nanos now);

  // Pool-wide free count (relaxed; exact when writers are quiesced, an admission heuristic
  // while they run). Excludes frames checked out into magazines.
  size_t count() const { return total_.load(std::memory_order_relaxed); }

  // True if `q` is one of this pool's shard queues or a registered magazine's queue — the
  // accounting layer's "is this frame free" test, replacing identity comparison against the
  // old single queue.
  bool Owns(const PageQueue* q) const;

  // Magazine registry (rank-kLeaf lock): lets Owns() classify magazine-cached frames as
  // free. Registration happens at worker start/exit, never on the fault path.
  void RegisterMagazine(const PageQueue* q);
  void UnregisterMagazine(const PageQueue* q);

  size_t shard_count() const { return shards_.size(); }
  // Per-shard inspection for tests and the auditor; hold no frames while iterating in real
  // mode (the auditor runs stop-the-world).
  const PageQueue& shard_queue(size_t i) const { return shards_[i]->queue; }

 private:
  struct alignas(64) Shard {
    explicit Shard(std::string name)
        : mu(sim::LockRank::kShard), queue(std::move(name)) {}
    sim::OrderedMutex mu;
    PageQueue queue;
  };

  size_t HomeShard() const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<size_t> total_{0};
  size_t next_boot_ = 0;
  bool concurrent_ = false;
  mutable sim::OrderedMutex magazines_mu_{sim::LockRank::kLeaf};
  std::vector<const PageQueue*> magazines_;
};

// A thread-confined cache of free frames in front of a ShardedFramePool. No lock of its own:
// exactly one worker thread Takes/Puts; the pool's shard locks cover the batched refill and
// flush transfers. Capacity bounds how many frames one idle worker can keep out of
// circulation; refill pulls capacity/2 frames, Put past capacity flushes capacity/2 back, so
// a balanced alloc/free workload oscillates around half-full and touches shard locks once
// per capacity/2 operations.
class FrameMagazine {
 public:
  FrameMagazine(ShardedFramePool* pool, size_t capacity, const std::string& name);
  ~FrameMagazine();  // must be Flush()ed empty first
  FrameMagazine(const FrameMagazine&) = delete;
  FrameMagazine& operator=(const FrameMagazine&) = delete;

  // One cached frame, refilling a half-capacity batch from the pool when empty. Returns
  // nullptr when the magazine is empty and so is the pool.
  VmPage* Take(sim::Nanos now);

  // Caches `page`; flushes half the magazine back to the pool when full.
  void Put(VmPage* page, sim::Nanos now);

  // Returns every cached frame to the pool (worker exit, stop-the-world drains).
  void Flush(sim::Nanos now);

  size_t count() const { return queue_.count(); }
  size_t capacity() const { return capacity_; }
  const PageQueue& queue() const { return queue_; }
  ShardedFramePool* pool() const { return pool_; }

 private:
  ShardedFramePool* pool_;
  size_t capacity_;
  PageQueue queue_;
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_FRAME_POOL_H_
