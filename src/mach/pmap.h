// Physical map (pmap) emulation: per-task virtual-to-physical translations plus the
// reference/modify bits the HiPEC `Ref`/`Mod`/`Set` commands and the pageout daemon consult.
//
// The reproduction uses a single-mapping model — a frame is mapped into at most one task at a
// time — which covers every experiment in the paper (no experiment shares pages).
#ifndef HIPEC_MACH_PMAP_H_
#define HIPEC_MACH_PMAP_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "mach/vm_map.h"
#include "mach/vm_page.h"

namespace hipec::mach {

// Thread-safety contract (DESIGN.md §10): translations of a task are guarded by that task's
// rank-kTask lock, which every mutator of those translations holds (fault path blocking,
// manager/daemon via try_lock through the page's mapped_task). The outer per-task table is
// made structurally stable under concurrency by EnsureTask(): the kernel pre-creates each
// task's slot at CreateTask time and RemoveTask() clears the inner map but keeps the slot,
// so concurrent lookups never race a rehash of the outer table.
class Pmap {
 public:
  Pmap() = default;
  Pmap(const Pmap&) = delete;
  Pmap& operator=(const Pmap&) = delete;

  // Pre-creates the (empty) translation table for `task`. Called at CreateTask, before the
  // task can fault, so Enter/Lookup never insert into the outer table concurrently.
  void EnsureTask(Task* task);

  // Installs a translation. The page must not currently be mapped anywhere.
  // `write_protected` records that writes through this mapping must fault.
  void Enter(Task* task, uint64_t vaddr, VmPage* page, bool write_protected);

  // Translation lookup; nullptr on miss.
  VmPage* Lookup(const Task* task, uint64_t vaddr) const;

  // Tears down the translation for `page` (no-op if unmapped).
  void RemovePage(VmPage* page);

  // Tears down all translations of a task; pages become unmapped but stay resident.
  void RemoveTask(Task* task);

  // True if writes through the current mapping of `page` must fault.
  bool IsWriteProtected(const VmPage* page) const;

  size_t mapping_count() const { return count_.load(std::memory_order_relaxed); }

 private:
  static uint64_t Vpn(uint64_t vaddr) { return vaddr >> kPageShift; }

  struct Translation {
    VmPage* page;
    bool write_protected;
  };

  // task id -> (virtual page number -> translation). Outer entries are created by
  // EnsureTask and never erased (see class comment).
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, Translation>> maps_;
  std::atomic<size_t> count_{0};
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PMAP_H_
