// Physical map (pmap) emulation: per-task virtual-to-physical translations plus the
// reference/modify bits the HiPEC `Ref`/`Mod`/`Set` commands and the pageout daemon consult.
//
// The reproduction uses a single-mapping model — a frame is mapped into at most one task at a
// time — which covers every experiment in the paper (no experiment shares pages).
#ifndef HIPEC_MACH_PMAP_H_
#define HIPEC_MACH_PMAP_H_

#include <atomic>
#include <cstdint>

#include "mach/vm_map.h"
#include "mach/vm_page.h"

namespace hipec::mach {

// Thread-safety contract (DESIGN.md §10): translations of a task are guarded by that task's
// rank-kTask lock, which every mutator of those translations holds (fault path blocking,
// manager/daemon via try_lock through the page's mapped_task). The tables themselves live
// inside each Task (Task::pmap_translations), so there is no shared pmap-wide structure:
// task creation — which happens mid-run under the M:N scheduler — never resizes anything a
// concurrent fault in another task could be reading. This class is just the protocol
// (single-mapping checks, the VmPage mapping back-pointers, the global mapping count).
class Pmap {
 public:
  Pmap() = default;
  Pmap(const Pmap&) = delete;
  Pmap& operator=(const Pmap&) = delete;

  // Installs a translation. The page must not currently be mapped anywhere.
  // `write_protected` records that writes through this mapping must fault.
  void Enter(Task* task, uint64_t vaddr, VmPage* page, bool write_protected);

  // Translation lookup; nullptr on miss.
  VmPage* Lookup(const Task* task, uint64_t vaddr) const;

  // Tears down the translation for `page` (no-op if unmapped). Resolves the owning task
  // through the page's mapping back-pointer; the caller holds that task's lock.
  void RemovePage(VmPage* page);

  // Tears down all translations of a task; pages become unmapped but stay resident.
  void RemoveTask(Task* task);

  // True if writes through the current mapping of `page` must fault.
  bool IsWriteProtected(const VmPage* page) const;

  size_t mapping_count() const { return count_.load(std::memory_order_relaxed); }

 private:
  static uint64_t Vpn(uint64_t vaddr) { return vaddr >> kPageShift; }

  std::atomic<size_t> count_{0};
};

}  // namespace hipec::mach

#endif  // HIPEC_MACH_PMAP_H_
