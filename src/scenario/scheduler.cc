#include "scenario/scheduler.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "hipec/engine.h"
#include "mach/frame_pool.h"
#include "mach/kernel.h"
#include "obs/flight_recorder.h"
#include "obs/probe.h"
#include "scenario/invariants.h"
#include "sim/check.h"
#include "sim/lock.h"

namespace hipec::scenario {

using mach::kPageSize;

namespace {

const obs::ProbeId kPrbSliceNs = obs::InternProbe("scheduler.slice_ns");
const obs::ProbeId kPrbAdmitNs = obs::InternProbe("scheduler.admit_ns");
const obs::ProbeId kPrbRunQueueLen = obs::InternProbe("scheduler.run_queue_len");

int64_t HostNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One tenant's lifetime across the scheduler. Only the worker currently running the tenant
// touches this state (the run-queue lock is the handoff fence); teardown_requested is the
// single cross-thread field, set by the control thread's injection replay.
struct TenantRun {
  TenantSpec spec;
  TenantResult result;
  std::unique_ptr<workloads::WorkloadSource> source;  // built at admission, freed at retire
  uint64_t region_pages = 0;  // max(spec.pages, source->region_pages())
  mach::Task* task = nullptr;
  core::HipecRegion region;
  uint64_t addr = 0;
  uint64_t container_id = 0;
  size_t slices_run = 0;
  std::atomic<bool> teardown_requested{false};
};

// One worker's run queue. Rank kRunQueue is terminal: pops/pushes happen under it and
// nothing else is acquired while it is held; a stealer takes a sibling's via try-lock only.
struct WorkerState {
  sim::OrderedMutex mu{sim::LockRank::kRunQueue};
  std::deque<TenantRun*> queue;
  int64_t slices = 0;
  int64_t steals = 0;
};

class Scheduler {
 public:
  explicit Scheduler(const SchedulerSpec& spec) : spec_(spec) {
    mach::KernelParams params;
    params.total_frames = spec_.total_frames;
    params.kernel_reserved_frames = spec_.kernel_reserved_frames;
    params.hipec_build = true;
    params.seed = spec_.seed;
    params.exec_mode = sim::ExecMode::kRealThreads;
    if (spec_.free_pool_shards > 0) {
      params.free_pool_shards = spec_.free_pool_shards;
    }
    params.daemon_shards = spec_.daemon_shards;
    kernel_ = std::make_unique<mach::Kernel>(params);
    engine_ = std::make_unique<core::HipecEngine>(kernel_.get(), spec_.manager);
    probes_.EnableConcurrent();

    if (spec_.flight_recorder_window > 0) {
      recorder_ = std::make_unique<obs::FlightRecorder>(&kernel_->tracer(),
                                                        spec_.flight_recorder_window);
      recorder_->AddCounterSource("kernel", &kernel_->counters());
      recorder_->AddCounterSource("pageout", &kernel_->daemon().counters());
      recorder_->AddCounterSource("engine", &engine_->counters());
      recorder_->AddProbeSource("scheduler", &probes_);
      if (spec_.flight_recorder_sink) {
        recorder_->SetSink(spec_.flight_recorder_sink);
      }
    }

    engine_->checker().SetTimeoutObserver([this](uint64_t container_id) {
      std::lock_guard<std::mutex> lk(kills_mu_);
      killed_.insert(container_id);
    });

    runs_.reserve(spec_.tenants.size());
    for (const TenantSpec& tenant : spec_.tenants) {
      auto run = std::make_unique<TenantRun>();
      run->spec = tenant;
      run->result.name = tenant.name;
      runs_.push_back(std::move(run));
    }
    // Injected tenants are created by the control thread at fire time; the slots are
    // reserved up front so the vector never reallocates under the workers' feet.
    injected_runs_.reserve(spec_.injections.size());
    for (const InjectionSpec& inj : spec_.injections) {
      if (inj.kind == InjectionKind::kPolicyLoop ||
          inj.kind == InjectionKind::kReserveStarvation) {
        pending_injections_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    size_t n_workers = std::max<size_t>(1, spec_.workers);
    workers_.reserve(n_workers);
    for (size_t i = 0; i < n_workers; ++i) {
      auto w = std::make_unique<WorkerState>();
      w->mu.Enable(true);
      workers_.push_back(std::move(w));
    }
  }

  SchedulerResult Run() {
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      threads.emplace_back([this, i] { WorkerLoop(i); });
    }
    ControlLoop();
    for (std::thread& t : threads) {
      t.join();
    }
    const auto end = std::chrono::steady_clock::now();
    if (!violation_.empty()) {
      throw sim::CheckFailure("scheduler-audit: " + violation_);
    }
    return Finish(std::chrono::duration<double>(end - start).count());
  }

 private:
  // --- tenant lifecycle ----------------------------------------------------------------------

  void Register(TenantRun& run, uint64_t ordinal) {
    int64_t t0 = obs::ProbesEnabled() ? HostNowNs() : 0;
    run.source = MaterializeSource(run.spec, spec_.seed, ordinal);
    run.region_pages = std::max(run.spec.pages, run.source->region_pages());
    sim::SharedWorldGuard world(kernel_->world());
    run.task = kernel_->CreateTask(run.spec.name);
    core::HipecOptions options;
    options.min_frames = run.spec.min_frames;
    options.timeout_ns = run.spec.timeout_ns;
    options.request_size = run.spec.request_size;
    options.free_target = 4;
    options.inactive_target = 8;
    options.reserved_target = 0;
    if (run.spec.policy == PolicyKind::kTwoQueue) {
      options.user_queue_count = 2;
    }
    run.region = engine_->VmAllocateHipec(run.task, run.region_pages * kPageSize,
                                          MakePolicy(run.spec.policy), options);
    run.result.admitted = run.region.ok;
    if (run.region.ok) {
      run.addr = run.region.addr;
      run.container_id = run.region.container->id();
    } else {
      // Admission denied: runs non-specific (§4.3.1), still generating global pressure.
      run.addr = kernel_->VmAllocate(run.task, run.region_pages * kPageSize);
    }
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbAdmitNs, HostNowNs() - t0);
    }
  }

  // Snapshots the container's live counters under the owning task's lock (see threaded.cc:
  // reclaimers and termination both act under that lock, so the re-check makes the container
  // pointer safe to chase).
  void Snapshot(TenantRun& run) {
    if (!run.region.ok || run.task == nullptr || run.task->terminated()) {
      return;
    }
    sim::ScopedLock lock(run.task->mutex());
    if (run.task->terminated()) {
      return;
    }
    core::Container* c = run.region.container;
    run.result.faults_handled = c->faults_handled;
    run.result.commands_executed = c->commands_executed;
    run.result.requests_made = c->requests_made;
    run.result.requests_rejected = c->requests_rejected;
    run.result.frames_force_reclaimed = c->frames_force_reclaimed;
    run.result.frames_reclaimed_from = c->frames_reclaimed_from;
    run.result.frames_peak = std::max(run.result.frames_peak, c->allocated_frames);
  }

  void Retire(TenantRun& run) {
    {
      sim::SharedWorldGuard world(kernel_->world());
      kernel_->TerminateTask(run.task, "scheduler retire");
    }
    // Free the source now: live memory scales with max_live_tenants, not the population
    // (synthetic sources own their records; trace clones only drop a refcount).
    run.source.reset();
    retired_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_release);
  }

  // Runs one slice of `run`; returns true if the tenant should be re-queued.
  bool RunSlice(WorkerState& me, TenantRun& run) {
    ++me.slices;
    int64_t t0 = obs::ProbesEnabled() ? HostNowNs() : 0;
    if (run.teardown_requested.load(std::memory_order_acquire) && !run.result.torn_down &&
        !run.task->terminated()) {
      Snapshot(run);
      {
        sim::SharedWorldGuard world(kernel_->world());
        kernel_->VmDeallocate(run.task, run.addr);
      }
      run.result.torn_down = true;
      Retire(run);
      return false;
    }
    size_t end = std::min<size_t>(run.result.accesses_done + spec_.slice_accesses,
                                  run.source->size());
    workloads::Access access;
    while (run.result.accesses_done < end) {
      if (run.task->terminated()) {
        break;
      }
      run.source->Next(&access);
      if (!kernel_->Touch(run.task, run.addr + access.vpage * kPageSize,
                          access.is_write())) {
        run.source->Seek(run.source->pos() - 1);
        break;  // terminated mid-access (checker kill or policy error)
      }
      ++run.result.accesses_done;
    }
    Snapshot(run);
    ++run.slices_run;
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbSliceNs, HostNowNs() - t0);
    }
    if (run.task->terminated()) {
      run.result.terminated = true;
      Retire(run);
      return false;
    }
    if (run.result.accesses_done == run.source->size()) {
      run.result.completed = true;
      Retire(run);
      return false;
    }
    if (run.spec.departure_step >= 0 &&
        run.slices_run >= static_cast<size_t>(run.spec.departure_step)) {
      run.result.terminated = true;  // departed: ended before completing its trace
      Retire(run);
      return false;
    }
    return true;
  }

  // --- the M:N loop --------------------------------------------------------------------------

  TenantRun* PopLocal(WorkerState& me) {
    sim::ScopedLock lock(me.mu);
    if (obs::ProbesEnabled()) {
      probes_.Record(kPrbRunQueueLen, static_cast<int64_t>(me.queue.size()));
    }
    if (me.queue.empty()) {
      return nullptr;
    }
    TenantRun* run = me.queue.front();
    me.queue.pop_front();
    return run;
  }

  TenantRun* TryAdmit() {
    // Reserve a live slot before claiming an index, so the population in the kernel never
    // exceeds max_live_tenants.
    size_t live = live_.load(std::memory_order_relaxed);
    for (;;) {
      if (live >= spec_.max_live_tenants) {
        return nullptr;
      }
      if (live_.compare_exchange_weak(live, live + 1, std::memory_order_acq_rel)) {
        break;
      }
    }
    size_t idx = next_admit_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= runs_.size()) {
      live_.fetch_sub(1, std::memory_order_release);
      return nullptr;
    }
    TenantRun& run = *runs_[idx];
    Register(run, idx);
    return &run;
  }

  TenantRun* TrySteal(size_t self) {
    for (size_t i = 1; i < workers_.size(); ++i) {
      WorkerState& victim = *workers_[(self + i) % workers_.size()];
      sim::ScopedTryLock lock(victim.mu);
      if (!lock.owns() || victim.queue.empty()) {
        continue;
      }
      // Steal from the tail: the victim pops from the head, so contention on a deep queue
      // lands on opposite ends.
      TenantRun* run = victim.queue.back();
      victim.queue.pop_back();
      ++workers_[self]->steals;
      return run;
    }
    return nullptr;
  }

  bool AllWorkDone() const {
    // Order matters: live is read before pending_injections, and the control thread
    // increments live before decrementing pending (release), so a worker can never observe
    // "no live tenants and no pending injections" while an injected tenant is being born.
    if (next_admit_.load(std::memory_order_relaxed) < runs_.size()) {
      return false;
    }
    if (live_.load(std::memory_order_acquire) > 0) {
      return false;
    }
    return pending_injections_.load(std::memory_order_acquire) == 0;
  }

  void WorkerLoop(size_t wid) {
    WorkerState& me = *workers_[wid];
    std::unique_ptr<mach::FrameMagazine> magazine;
    if (spec_.magazine_capacity > 0) {
      sim::SharedWorldGuard world(kernel_->world());
      magazine = std::make_unique<mach::FrameMagazine>(&kernel_->daemon().free_pool(),
                                                       spec_.magazine_capacity,
                                                       "worker" + std::to_string(wid));
      kernel_->daemon().AttachThreadMagazine(magazine.get());
    }
    for (;;) {
      TenantRun* run = PopLocal(me);
      if (run == nullptr) {
        run = TryAdmit();
      }
      if (run == nullptr) {
        run = TrySteal(wid);
      }
      if (run == nullptr) {
        if (AllWorkDone()) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        continue;
      }
      if (RunSlice(me, *run)) {
        sim::ScopedLock lock(me.mu);
        me.queue.push_back(run);
      }
    }
    if (magazine != nullptr) {
      kernel_->daemon().DetachThreadMagazine();
      // Flush inside the world lock: the auditor must never catch frames mid-transfer, and
      // destruction unregisters the magazine from the pool's accounting.
      sim::SharedWorldGuard world(kernel_->world());
      magazine->Flush(kernel_->clock().now());
      magazine.reset();
    }
  }

  // --- control thread: injections + audits ---------------------------------------------------

  void InjectTenant(const InjectionSpec& inj, int ordinal) {
    auto run = std::make_unique<TenantRun>();
    TenantSpec spec;
    if (inj.kind == InjectionKind::kPolicyLoop) {
      spec.name = "inject-loop-" + std::to_string(ordinal);
      spec.policy = PolicyKind::kLooping;
      spec.pattern = PatternKind::kSequential;
      spec.write_fraction = 0.0;
      // A looping policy only ends via the security checker; give it a short fuse so the
      // kill lands within the scenario.
      spec.timeout_ns = 50 * sim::kMillisecond;
    } else {
      spec.name = "inject-flusher-" + std::to_string(ordinal);
      spec.policy = PolicyKind::kGreedy;
      spec.pattern = PatternKind::kBursty;
      spec.write_fraction = 0.95;
    }
    spec.pages = inj.pages;
    spec.min_frames = inj.min_frames;
    spec.accesses = inj.accesses;
    run->spec = spec;
    run->result.name = spec.name;
    run->result.injected = true;
    TenantRun& r = *run;
    injected_runs_.push_back(std::move(run));
    // Injected tenants bypass the admission window (the whole point is perturbing a full
    // system). live_ goes up before pending_injections_ comes down — see AllWorkDone().
    live_.fetch_add(1, std::memory_order_relaxed);
    Register(r, runs_.size() + static_cast<uint64_t>(ordinal));
    {
      WorkerState& w = *workers_[static_cast<size_t>(ordinal) % workers_.size()];
      sim::ScopedLock lock(w.mu);
      w.queue.push_front(&r);  // front: perturb now, not after the backlog
    }
    pending_injections_.fetch_sub(1, std::memory_order_release);
  }

  void ControlLoop() {
    struct Event {
      int at_ms;
      enum { kApply, kClearSpike } what;
      const InjectionSpec* inj;
      int ordinal;
    };
    std::vector<Event> events;
    int ordinal = 0;
    for (const InjectionSpec& inj : spec_.injections) {
      int ord = -1;
      if (inj.kind == InjectionKind::kPolicyLoop ||
          inj.kind == InjectionKind::kReserveStarvation) {
        ord = ordinal++;
      }
      events.push_back({inj.at_step, Event::kApply, &inj, ord});
      if (inj.kind == InjectionKind::kDiskLatencySpike) {
        events.push_back({inj.at_step + inj.duration_steps, Event::kClearSpike, &inj, -1});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const Event& a, const Event& b) { return a.at_ms < b.at_ms; });

    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [&start] {
      return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
    };
    size_t next_event = 0;
    auto last_audit = start;
    while (!AllWorkDone() || next_event < events.size()) {
      if (AllWorkDone() && next_event < events.size()) {
        // Workers are gone; unfired tenant injections must release their pending count or
        // the exit condition above (workers already checked it) would have been wrong — and
        // a lingering disk spike must not outlive the run.
        for (; next_event < events.size(); ++next_event) {
          const Event& ev = events[next_event];
          if (ev.what == Event::kApply &&
              (ev.inj->kind == InjectionKind::kPolicyLoop ||
               ev.inj->kind == InjectionKind::kReserveStarvation)) {
            pending_injections_.fetch_sub(1, std::memory_order_release);
          }
        }
        kernel_->disk().InjectReadLatency(0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      while (next_event < events.size() && events[next_event].at_ms <= elapsed_ms() &&
             !AllWorkDone()) {
        const Event& ev = events[next_event++];
        switch (ev.what) {
          case Event::kClearSpike:
            kernel_->disk().InjectReadLatency(0);
            break;
          case Event::kApply:
            switch (ev.inj->kind) {
              case InjectionKind::kDiskLatencySpike:
                kernel_->disk().InjectReadLatency(ev.inj->extra_latency_ns);
                break;
              case InjectionKind::kTeardown:
                if (ev.inj->tenant_index < runs_.size()) {
                  runs_[ev.inj->tenant_index]->teardown_requested.store(
                      true, std::memory_order_release);
                }
                break;
              case InjectionKind::kPolicyLoop:
              case InjectionKind::kReserveStarvation:
                InjectTenant(*ev.inj, ev.ordinal);
                break;
            }
            break;
        }
      }
      if (spec_.audit && violation_.empty() &&
          std::chrono::steady_clock::now() - last_audit >=
              std::chrono::milliseconds(spec_.audit_interval_ms) &&
          !AllWorkDone()) {
        last_audit = std::chrono::steady_clock::now();
        sim::ExclusiveWorldGuard world(kernel_->world());
        AuditReport report = AuditFrameInvariants(*engine_);
        ++audits_;
        if (!report.ok) {
          violation_ = report.violation;
          if (recorder_ != nullptr) {
            recorder_->Dump("scheduler-audit: " + report.violation);
          }
        }
      }
    }
  }

  SchedulerResult Finish(double wall_seconds) {
    // Any tenant still registered (shouldn't happen — workers drain everything — but a
    // violation-aborted audit loop leaves no guarantees) is torn down before the final audit.
    for (auto& run : runs_) {
      if (run->task != nullptr && !run->task->terminated()) {
        Snapshot(*run);
        kernel_->TerminateTask(run->task, "scheduler end");
      }
    }
    for (auto& run : injected_runs_) {
      if (run->task != nullptr && !run->task->terminated()) {
        Snapshot(*run);
        kernel_->TerminateTask(run->task, "scheduler end");
      }
    }
    kernel_->disk().DrainWrites();

    {
      sim::ExclusiveWorldGuard world(kernel_->world());
      AuditReport report = AuditFrameInvariants(*engine_);
      ++audits_;
      if (!report.ok) {
        if (recorder_ != nullptr) {
          recorder_->Dump("scheduler-final-audit: " + report.violation);
        }
        throw sim::CheckFailure("scheduler-final-audit: " + report.violation);
      }
    }

    SchedulerResult result;
    result.name = spec_.name;
    result.workers = workers_.size();
    result.tenants_total = runs_.size() + injected_runs_.size();
    result.audits_run = audits_;
    result.wall_seconds = wall_seconds;
    {
      std::lock_guard<std::mutex> lk(kills_mu_);
      result.checker_kills = static_cast<int64_t>(killed_.size());
      auto collect = [&](TenantRun& run) {
        run.result.killed_by_checker =
            run.container_id != 0 && killed_.contains(run.container_id);
        if (run.task == nullptr) {
          return;  // never admitted (population exhausted the scenario first)
        }
        if (run.result.admitted) {
          ++result.admitted;
        } else {
          ++result.denied;
        }
        if (run.result.completed) {
          ++result.completed;
        } else if (run.result.torn_down) {
          ++result.torn_down;
        } else if (run.result.terminated && !run.result.killed_by_checker &&
                   run.spec.departure_step >= 0 &&
                   run.slices_run >= static_cast<size_t>(run.spec.departure_step)) {
          ++result.departed;
        } else if (run.result.terminated) {
          ++result.terminated;
        }
        result.total_accesses += run.result.accesses_done;
        result.tenants.push_back(run.result);
      };
      for (auto& run : runs_) {
        collect(*run);
      }
      for (auto& run : injected_runs_) {
        collect(*run);
      }
    }
    for (auto& w : workers_) {
      result.slices += w->slices;
      result.steals += w->steals;
    }
    result.total_faults = engine_->counters().Get("engine.faults_handled");
    if (recorder_ != nullptr) {
      result.flight_recorder_dumps = recorder_->dumps();
    }
    if (wall_seconds > 0.0) {
      result.tenants_per_sec =
          static_cast<double>(retired_.load(std::memory_order_relaxed)) / wall_seconds;
      result.faults_per_sec = static_cast<double>(result.total_faults) / wall_seconds;
    }
    return result;
  }

  const SchedulerSpec& spec_;
  std::unique_ptr<mach::Kernel> kernel_;
  std::unique_ptr<core::HipecEngine> engine_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  obs::ProbeSet probes_;

  std::vector<std::unique_ptr<TenantRun>> runs_;
  std::vector<std::unique_ptr<TenantRun>> injected_runs_;  // control thread only (pre-reserved)
  std::vector<std::unique_ptr<WorkerState>> workers_;

  std::atomic<size_t> next_admit_{0};
  std::atomic<size_t> live_{0};
  std::atomic<size_t> retired_{0};
  std::atomic<size_t> pending_injections_{0};

  std::mutex kills_mu_;
  std::unordered_set<uint64_t> killed_;

  int64_t audits_ = 0;
  std::string violation_;
};

}  // namespace

SchedulerResult RunScheduledScenario(const SchedulerSpec& spec) {
  Scheduler scheduler(spec);
  return scheduler.Run();
}

}  // namespace hipec::scenario
