// The multi-tenant scenario engine: runs N specific applications (each with its own
// container, policy program, and access pattern) plus M non-specific Mach tasks against one
// kernel on the shared virtual clock, in deterministic round-robin time slices. Real
// contention flows through the real mechanisms: the global frame manager grants and rejects
// Requests against the burst watermark, normal and forced reclamation claw frames back, Flush
// drains the clean reserve, and the security checker kills runaway policies mid-scenario.
//
// A fault-injection layer perturbs a running scenario at step boundaries (disk latency
// spikes, injected infinite-loop policies, mid-scenario region teardown, reserve starvation),
// and an always-on invariant auditor (invariants.h) re-proves frame conservation after every
// manager decision.
//
// Determinism: all randomness is pre-materialized into per-tenant access traces from seeds
// derived from ScenarioSpec::seed, the schedule is a fixed round-robin, and the kernel's own
// stochastic pieces (disk rotation) derive from the same seed — two runs of the same spec
// produce byte-identical ScenarioResult::Fingerprint() strings.
#ifndef HIPEC_SCENARIO_SCENARIO_H_
#define HIPEC_SCENARIO_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hipec/frame_manager.h"
#include "hipec/program.h"
#include "sim/clock.h"
#include "workloads/workload_source.h"

namespace hipec::scenario {

// Which policy program a tenant registers with.
enum class PolicyKind {
  kFifoSecondChance,  // the paper's Table 2 program
  kFifo,
  kLru,
  kMru,
  kClock,
  kTwoQueue,
  kGreedy,    // scenario policy: Requests more frames before evicting (tenant_policies.h)
  kStubborn,  // greedy + refuses cooperative reclamation (forces ForcedReclaim)
  kLooping,   // PageFault never returns; only the security checker ends it
};

// The synthetic pattern family now lives in the workload layer (workloads/workload_source.h);
// the alias keeps every existing spec-building call site compiling unchanged.
using PatternKind = workloads::PatternKind;

// One specific (HiPEC-controlled) application. Its reference stream comes from `workload`
// when set (a loaded trace or an explicit synthetic spec); otherwise the legacy
// pattern/parameter fields below describe a synthetic stream, routed through the single
// PatternKind compatibility adapter (workloads::MakePatternSource) — byte-identical to the
// pre-workload-layer generation, so golden scenario fingerprints do not move.
struct TenantSpec {
  std::string name;
  PolicyKind policy = PolicyKind::kGreedy;
  workloads::Workload workload;  // when set, overrides the pattern fields below
  PatternKind pattern = PatternKind::kHotCold;
  uint64_t pages = 128;        // region size in pages (traces may widen it, see region_pages)
  size_t min_frames = 16;      // minFrame admission grant
  size_t accesses = 2000;      // total references issued over the scenario
  double write_fraction = 0.0;
  int arrival_step = 0;        // scheduling round at which the tenant registers
  int departure_step = -1;     // round at which it is terminated (-1: runs to completion)
  sim::Nanos timeout_ns = 0;   // security-checker TimeOut (0: cost-model default)
  int64_t request_size = 16;   // frames per Request command
  // Pattern parameters (compatibility path; ignored when `workload` is set).
  double zipf_theta = 0.9;
  uint64_t stride = 8;
  uint64_t hot_pages = 32;
  double hot_fraction = 0.9;
  size_t burst_phase = 64;
  int cyclic_loops = 4;
};

// One non-specific Mach task (paged by the default daemon; generates global pressure).
struct BackgroundSpec {
  std::string name;
  workloads::Workload workload;  // when set, overrides the uniform default below
  uint64_t pages = 256;
  size_t accesses = 2000;
  double write_fraction = 0.0;
};

enum class InjectionKind {
  kDiskLatencySpike,    // every disk read pays extra_latency_ns for duration_steps rounds
  kPolicyLoop,          // a tenant with LoopingPolicy arrives (checker must kill it)
  kTeardown,            // tenant_index's region is deallocated mid-scenario
  kReserveStarvation,   // a write-heavy flusher tenant arrives to drain the clean reserve
};

struct InjectionSpec {
  InjectionKind kind = InjectionKind::kDiskLatencySpike;
  int at_step = 0;
  // kDiskLatencySpike:
  int duration_steps = 4;
  sim::Nanos extra_latency_ns = 20 * sim::kMillisecond;
  // kTeardown: index into ScenarioSpec::tenants.
  size_t tenant_index = 0;
  // kPolicyLoop / kReserveStarvation: shape of the injected tenant.
  uint64_t pages = 64;
  size_t min_frames = 8;
  size_t accesses = 512;
};

struct ScenarioSpec {
  std::string name;
  // Kernel shape.
  uint64_t total_frames = 2048;
  uint64_t kernel_reserved_frames = 256;
  uint64_t seed = 0x5CE11A0;
  // Per-command fetch/decode cost override (0: cost-model default). Raised in checker-kill
  // scenarios so a runaway policy crosses its virtual-time TimeOut within few commands.
  sim::Nanos command_decode_ns = 0;
  core::FrameManagerConfig manager;
  // Schedule: `steps` rounds; each round gives every live tenant and background task a slice
  // of `slice_accesses` references in fixed arrival order.
  int steps = 64;
  size_t slice_accesses = 64;
  bool audit = true;  // run the invariant auditor after every manager decision
  bool trace = true;  // enable the kernel trace ring (dumped on audit failure)
  // Observability (src/obs/). When non-empty, the finished run is exported to this path as
  // Chrome trace-event JSON (loadable in ui.perfetto.dev / chrome://tracing) with one
  // timeline track per tenant; requires trace = true to have events to export.
  std::string chrome_trace_path;
  // Trace events included in each flight-recorder crash dump (auditor violation or checker
  // kill). 0 disables the recorder entirely.
  size_t flight_recorder_window = 64;
  // Test hook: flight-recorder dumps go here instead of stderr when set.
  std::function<void(const std::string& json)> flight_recorder_sink;
  std::vector<TenantSpec> tenants;
  std::vector<BackgroundSpec> background;
  std::vector<InjectionSpec> injections;
};

// Per-tenant outcome, snapshotted continuously while the container is alive (the container
// is freed at termination, so counters survive kills and teardowns).
struct TenantResult {
  std::string name;
  bool injected = false;          // materialized by the fault-injection layer
  bool admitted = false;          // registration succeeded (else ran non-specific, §4.3.1)
  bool completed = false;         // issued every access in its trace
  bool terminated = false;        // task ended before completing (kill, policy error, departure)
  bool killed_by_checker = false;
  bool torn_down = false;         // region removed by a kTeardown injection
  size_t accesses_done = 0;
  int64_t faults_handled = 0;
  int64_t commands_executed = 0;
  int64_t requests_made = 0;
  int64_t requests_rejected = 0;
  int64_t frames_force_reclaimed = 0;
  int64_t frames_reclaimed_from = 0;
  size_t frames_peak = 0;         // high-water allocated_frames
};

struct BackgroundResult {
  std::string name;
  size_t accesses_done = 0;
  bool completed = false;
};

struct ScenarioResult {
  std::string name;
  sim::Nanos virtual_ns = 0;      // virtual time consumed by the whole scenario
  int64_t audits_run = 0;
  int64_t checker_kills = 0;      // distinct containers killed by the security checker
  size_t burst_watermark_final = 0;
  // Trace events overwritten because the ring wrapped (exported timelines are missing that
  // many events). Deliberately not part of Fingerprint(): ring capacity is an observer
  // setting, not simulation state.
  uint64_t trace_dropped = 0;
  int64_t flight_recorder_dumps = 0;
  // Manager decisions by name ("request", "request-reject", "flush-sync", ...), counted by
  // the same hook that drives the auditor.
  std::map<std::string, int64_t> decisions;
  std::vector<TenantResult> tenants;
  std::vector<BackgroundResult> background;

  int64_t Decision(const std::string& name) const {
    auto it = decisions.find(name);
    return it == decisions.end() ? 0 : it->second;
  }
  // Deterministic serialization of every counter above; byte-identical across same-seed runs.
  std::string Fingerprint() const;
};

// Builds the world, runs the schedule, tears everything down, and returns the outcome.
// Throws sim::CheckFailure if the invariant auditor finds a violation.
ScenarioResult RunScenario(const ScenarioSpec& spec);

// The reference stream a tenant spec names, as a pull source with its own cursor: the
// tenant's `workload` when set, else the legacy pattern fields via the compatibility
// adapter. Every driver (deterministic, threaded, M:N scheduler) builds tenant streams
// through this one function.
std::unique_ptr<workloads::WorkloadSource> MaterializeSource(const TenantSpec& tenant,
                                                             uint64_t scenario_seed,
                                                             uint64_t tenant_ordinal);

// The same stream flattened into (page index, is_write) pairs. Exposed for tests that want
// to reason about a tenant's reference string.
std::vector<std::pair<uint64_t, bool>> MaterializeTrace(const TenantSpec& tenant,
                                                        uint64_t scenario_seed,
                                                        uint64_t tenant_ordinal);

// The policy program a PolicyKind names. Shared by the deterministic and threaded drivers.
core::PolicyProgram MakePolicy(PolicyKind kind);

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_SCENARIO_H_
