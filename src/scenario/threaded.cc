#include "scenario/threaded.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "hipec/engine.h"
#include "mach/kernel.h"
#include "scenario/invariants.h"
#include "sim/check.h"
#include "sim/lock.h"

namespace hipec::scenario {

using mach::kPageSize;

namespace {

// Runtime state for one tenant worker. The thread that runs the trace is the only writer of
// everything here except the container counters snapshotted into `result` (see Snapshot) and
// teardown_requested, which the control loop sets from the main thread.
struct Worker {
  TenantSpec spec;
  TenantResult result;
  std::unique_ptr<workloads::WorkloadSource> source;
  uint64_t region_pages = 0;  // max(spec.pages, source->region_pages())
  mach::Task* task = nullptr;
  core::HipecRegion region;
  uint64_t addr = 0;
  uint64_t container_id = 0;
  std::atomic<bool> teardown_requested{false};
};

// Materializes the worker's reference stream and the region it implies. Traces may span a
// wider region than the spec's page count, so the allocation covers both.
void MaterializeWorker(Worker& w, uint64_t scenario_seed, uint64_t ordinal) {
  w.source = MaterializeSource(w.spec, scenario_seed, ordinal);
  w.region_pages = std::max(w.spec.pages, w.source->region_pages());
}

// Copies the container's live counters into the worker's result. Taken under the owning
// task's lock: a reclaimer on another thread may hold that lock (manager → victim-task is a
// try-lock edge, DESIGN.md §10) while bumping frames_reclaimed_from, and termination — which
// frees the container — also happens under it, so the re-check inside the lock makes the
// container pointer safe to chase.
void Snapshot(Worker& w) {
  if (!w.region.ok || w.task == nullptr || w.task->terminated()) {
    return;
  }
  sim::ScopedLock lock(w.task->mutex());
  if (w.task->terminated()) {
    return;
  }
  core::Container* c = w.region.container;
  w.result.faults_handled = c->faults_handled;
  w.result.commands_executed = c->commands_executed;
  w.result.requests_made = c->requests_made;
  w.result.requests_rejected = c->requests_rejected;
  w.result.frames_force_reclaimed = c->frames_force_reclaimed;
  w.result.frames_reclaimed_from = c->frames_reclaimed_from;
  w.result.frames_peak = std::max(w.result.frames_peak, c->allocated_frames);
}

// One tenant thread: runs the whole trace, snapshotting counters every 32 accesses (and once
// at the end) so the numbers survive a checker kill or a policy-error termination. A
// mid-scenario teardown injection deallocates the region from this thread — the address
// becomes invalid, so the control loop only sets the flag and the owner acts on it.
void RunWorker(mach::Kernel* kernel, Worker& w) {
  workloads::Access access;
  while (w.source->pos() < w.source->size()) {
    if (w.task->terminated()) {
      break;
    }
    if (w.teardown_requested.load(std::memory_order_acquire)) {
      Snapshot(w);
      sim::SharedWorldGuard world(kernel->world());
      kernel->VmDeallocate(w.task, w.addr);
      w.result.torn_down = true;
      break;
    }
    w.source->Next(&access);
    if (!kernel->Touch(w.task, w.addr + access.vpage * kPageSize, access.is_write())) {
      break;  // terminated mid-access (checker kill or policy error)
    }
    ++w.result.accesses_done;
    if ((w.result.accesses_done & 31u) == 0) {
      Snapshot(w);
    }
  }
  Snapshot(w);
  if (w.task->terminated()) {
    w.result.terminated = true;
  } else if (w.result.accesses_done == w.source->size()) {
    w.result.completed = true;
  }
}

// Registers one tenant: task, specific region (or the non-specific fallback), trace. Under
// the world lock when called with workers already running (injections).
void RegisterWorker(mach::Kernel* kernel, core::HipecEngine* engine, Worker& w) {
  w.task = kernel->CreateTask(w.spec.name);
  core::HipecOptions options;
  options.min_frames = w.spec.min_frames;
  options.timeout_ns = w.spec.timeout_ns;
  options.request_size = w.spec.request_size;
  options.free_target = 4;
  options.inactive_target = 8;
  options.reserved_target = 0;
  if (w.spec.policy == PolicyKind::kTwoQueue) {
    options.user_queue_count = 2;
  }
  w.region = engine->VmAllocateHipec(w.task, w.region_pages * kPageSize,
                                     MakePolicy(w.spec.policy), options);
  w.result.admitted = w.region.ok;
  if (w.region.ok) {
    w.addr = w.region.addr;
    w.container_id = w.region.container->id();
  } else {
    // Admission denied: runs non-specific (§4.3.1), still generating global pressure.
    w.addr = kernel->VmAllocate(w.task, w.region_pages * kPageSize);
  }
}

// The spec an injected tenant materializes as; mirrors the deterministic driver's
// SetUpTenants so both injection layers perturb with the same tenant shapes.
TenantSpec InjectedTenantSpec(const InjectionSpec& inj, int ordinal) {
  TenantSpec spec;
  if (inj.kind == InjectionKind::kPolicyLoop) {
    spec.name = "inject-loop-" + std::to_string(ordinal);
    spec.policy = PolicyKind::kLooping;
    spec.pattern = PatternKind::kSequential;
    spec.write_fraction = 0.0;
    // A looping policy only ends via the security checker; a short fuse lands the kill
    // within the scenario instead of after every honest tenant has finished.
    spec.timeout_ns = 50 * sim::kMillisecond;
  } else {
    spec.name = "inject-flusher-" + std::to_string(ordinal);
    spec.policy = PolicyKind::kGreedy;
    spec.pattern = PatternKind::kBursty;
    spec.write_fraction = 0.95;
  }
  spec.pages = inj.pages;
  spec.min_frames = inj.min_frames;
  spec.accesses = inj.accesses;
  return spec;
}

}  // namespace

ThreadedScenarioResult RunThreadedScenario(const ThreadedScenarioSpec& spec) {
  mach::KernelParams params;
  params.total_frames = spec.total_frames;
  params.kernel_reserved_frames = spec.kernel_reserved_frames;
  params.hipec_build = true;
  params.seed = spec.seed;
  params.exec_mode = sim::ExecMode::kRealThreads;
  if (spec.free_pool_shards > 0) {
    params.free_pool_shards = spec.free_pool_shards;
  }
  auto kernel = std::make_unique<mach::Kernel>(params);
  auto engine = std::make_unique<core::HipecEngine>(kernel.get(), spec.manager);

  // The checker thread is already running (the engine constructor started it), but its first
  // wakeup is >= the minimum interval away, so installing the observer here is safely before
  // any possible invocation.
  std::mutex kills_mu;
  std::unordered_set<uint64_t> killed;
  engine->checker().SetTimeoutObserver([&kills_mu, &killed](uint64_t container_id) {
    std::lock_guard<std::mutex> lk(kills_mu);
    killed.insert(container_id);
  });

  // unique_ptrs: Worker carries an atomic (teardown_requested) and must stay put once its
  // thread holds a reference; injected workers are appended while others run.
  std::vector<std::unique_ptr<Worker>> workers;
  size_t injected_slots = 0;
  for (const InjectionSpec& inj : spec.injections) {
    if (inj.kind == InjectionKind::kPolicyLoop ||
        inj.kind == InjectionKind::kReserveStarvation) {
      ++injected_slots;
    }
  }
  workers.reserve(spec.tenants.size() + injected_slots);
  uint64_t ordinal = 0;
  for (const TenantSpec& tenant : spec.tenants) {
    auto w = std::make_unique<Worker>();
    w->spec = tenant;
    w->result.name = tenant.name;
    MaterializeWorker(*w, spec.seed, ordinal++);
    workers.push_back(std::move(w));
  }

  // Registration is sequential, from this thread: admission against the burst watermark is
  // decided in spec order even though everything after this point is scheduler-dependent.
  for (auto& w : workers) {
    RegisterWorker(kernel.get(), engine.get(), *w);
  }

  std::atomic<size_t> live{workers.size()};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers.size() + injected_slots);
  for (auto& w : workers) {
    Worker& worker = *w;
    threads.emplace_back([&kernel, &live, &worker] {
      RunWorker(kernel.get(), worker);
      live.fetch_sub(1, std::memory_order_release);
    });
  }

  // Injection schedule: wall-clock events (ms since start), replayed by the control loop.
  struct Event {
    int at_ms;
    bool clear_spike;
    const InjectionSpec* inj;
    int ordinal;
  };
  std::vector<Event> events;
  int inject_ordinal = 0;
  for (const InjectionSpec& inj : spec.injections) {
    int ord = -1;
    if (inj.kind == InjectionKind::kPolicyLoop ||
        inj.kind == InjectionKind::kReserveStarvation) {
      ord = inject_ordinal++;
    }
    events.push_back({inj.at_step, false, &inj, ord});
    if (inj.kind == InjectionKind::kDiskLatencySpike) {
      events.push_back({inj.at_step + inj.duration_steps, true, &inj, -1});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.at_ms < b.at_ms; });
  size_t next_event = 0;
  auto elapsed_ms = [&start] {
    return static_cast<int>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                std::chrono::steady_clock::now() - start)
                                .count());
  };

  // Control loop: injections + stop-the-world audits. A violation is recorded, not thrown,
  // so the workers are always joined before the failure propagates.
  int64_t audits = 0;
  std::string violation;
  while (live.load(std::memory_order_acquire) > 0 || next_event < events.size()) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, spec.audit ? spec.audit_interval_ms : 1)));
    bool workers_done = live.load(std::memory_order_acquire) == 0;
    while (next_event < events.size() && events[next_event].at_ms <= elapsed_ms()) {
      const Event& ev = events[next_event++];
      if (ev.clear_spike) {
        kernel->disk().InjectReadLatency(0);
        continue;
      }
      switch (ev.inj->kind) {
        case InjectionKind::kDiskLatencySpike:
          kernel->disk().InjectReadLatency(ev.inj->extra_latency_ns);
          break;
        case InjectionKind::kTeardown:
          if (ev.inj->tenant_index < workers.size()) {
            workers[ev.inj->tenant_index]->teardown_requested.store(
                true, std::memory_order_release);
          }
          break;
        case InjectionKind::kPolicyLoop:
        case InjectionKind::kReserveStarvation: {
          if (workers_done) {
            break;  // nobody left to perturb; don't spawn tenants into an ending run
          }
          auto w = std::make_unique<Worker>();
          w->spec = InjectedTenantSpec(*ev.inj, ev.ordinal);
          w->result.name = w->spec.name;
          w->result.injected = true;
          MaterializeWorker(*w, spec.seed, ordinal++);
          Worker& worker = *w;
          {
            sim::SharedWorldGuard world(kernel->world());
            RegisterWorker(kernel.get(), engine.get(), worker);
          }
          live.fetch_add(1, std::memory_order_release);
          workers.push_back(std::move(w));
          threads.emplace_back([&kernel, &live, &worker] {
            RunWorker(kernel.get(), worker);
            live.fetch_sub(1, std::memory_order_release);
          });
          break;
        }
      }
    }
    if (!spec.audit || !violation.empty() || live.load(std::memory_order_acquire) == 0) {
      continue;
    }
    sim::ExclusiveWorldGuard world(kernel->world());
    AuditReport report = AuditFrameInvariants(*engine);
    if (!report.ok) {
      violation = report.violation;
    }
    ++audits;
  }
  kernel->disk().InjectReadLatency(0);  // never let a spike outlive the schedule
  for (std::thread& t : threads) {
    t.join();
  }
  const auto end = std::chrono::steady_clock::now();
  if (!violation.empty()) {
    throw sim::CheckFailure("threaded-audit: " + violation);
  }

  ThreadedScenarioResult result;
  result.name = spec.name;
  result.threads = workers.size();
  for (auto& w : workers) {
    Snapshot(*w);
    if (!w->task->terminated()) {
      kernel->TerminateTask(w->task, "threaded scenario end");
    }
    result.total_accesses += w->result.accesses_done;
  }
  kernel->disk().DrainWrites();

  // The final audit always runs: every threaded run ends on a proven-consistent machine.
  {
    sim::ExclusiveWorldGuard world(kernel->world());
    AuditReport report = AuditFrameInvariants(*engine);
    if (!report.ok) {
      throw sim::CheckFailure("threaded-final-audit: " + report.violation);
    }
    ++audits;
  }

  {
    std::lock_guard<std::mutex> lk(kills_mu);
    result.checker_kills = static_cast<int64_t>(killed.size());
    for (auto& w : workers) {
      w->result.killed_by_checker = w->container_id != 0 && killed.contains(w->container_id);
    }
  }
  result.audits_run = audits;
  result.checker_wakeups = engine->checker().wakeups();
  result.total_faults = engine->counters().Get("engine.faults_handled");
  result.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (result.wall_seconds > 0.0) {
    result.faults_per_sec = static_cast<double>(result.total_faults) / result.wall_seconds;
    result.accesses_per_sec = static_cast<double>(result.total_accesses) / result.wall_seconds;
  }
  for (auto& w : workers) {
    result.tenants.push_back(w->result);
  }
  return result;
}

}  // namespace hipec::scenario
