// The M:N tenant scheduler: thousands of tenants multiplexed over a fixed pool of worker
// threads against one real-threads kernel. The concurrency counterpart of threaded.h for
// churn-scale populations — a 10,000-tenant scenario cannot afford 10,000 OS threads, and
// the interesting contention (admission, reclamation, checker kills, daemon balancing) needs
// only as many runnable tenants as there are cores.
//
// Architecture (DESIGN.md §11):
//   * Each worker owns a run queue of tenant runs behind a rank-kRunQueue lock — terminal
//     by construction: a worker pops/pushes under it and never calls into the kernel while
//     holding it. An idle worker first drains its own queue, then admits the next un-started
//     tenant from the shared spec list (bounded by max_live_tenants), then work-steals from
//     a sibling's queue tail via try-lock.
//   * A tenant runs in slices of slice_accesses references; between slices it sits in a run
//     queue and can migrate between workers freely (all per-tenant state is touched only by
//     the worker currently running it — the run-queue lock is the handoff fence).
//   * Each worker attaches a FrameMagazine (mach/frame_pool.h) as its thread-local frame
//     cache, so tenant churn — every departure frees a task's frames, every admission
//     faults them back in — batches its free-pool traffic instead of hammering shard locks.
//   * Tenant traces are materialized lazily at admission and freed at retirement, so memory
//     scales with max_live_tenants, not the total population.
//   * A control thread replays the injection schedule (disk latency spikes, looping-policy
//     arrivals, reserve-starvation flushers, mid-run teardown) and periodically stops the
//     world to run the frame-invariant auditor; any violation triggers a FlightRecorder
//     dump and fails the run after the workers join.
#ifndef HIPEC_SCENARIO_SCHEDULER_H_
#define HIPEC_SCENARIO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hipec/frame_manager.h"
#include "scenario/scenario.h"

namespace hipec::scenario {

struct SchedulerSpec {
  std::string name;
  // Kernel shape.
  uint64_t total_frames = 4096;
  uint64_t kernel_reserved_frames = 256;
  uint64_t seed = 0x5C4ED;
  core::FrameManagerConfig manager;
  // 0 = the respective subsystem default (free pool: kDefaultShards; daemon queues:
  // hardware_concurrency clamped).
  size_t free_pool_shards = 0;
  size_t daemon_shards = 0;
  // The worker pool (the N of M:N).
  size_t workers = 8;
  // References a tenant issues per scheduling slice before re-queueing.
  size_t slice_accesses = 64;
  // Admission window: at most this many tenants are registered (task + region + container)
  // at once; the rest wait un-started. Bounds both memory and kernel population.
  size_t max_live_tenants = 64;
  // Per-worker frame-magazine capacity; 0 runs without magazines.
  size_t magazine_capacity = 32;
  // Stop-the-world audits while the workers run; a final audit always runs after joining.
  bool audit = true;
  int audit_interval_ms = 10;
  // Trace events per flight-recorder dump; 0 disables the recorder.
  size_t flight_recorder_window = 64;
  // Test hook: dumps go here instead of stderr when set.
  std::function<void(const std::string& json)> flight_recorder_sink;
  // The tenant population, admitted strictly in order as live slots free up. The
  // deterministic driver's scheduling fields are reinterpreted for wall-clock execution:
  // arrival_step is ignored (admission order is list order); departure_step >= 0 means the
  // tenant departs (is terminated) after that many slices.
  std::vector<TenantSpec> tenants;
  // Fault injections, reinterpreted for wall-clock execution: at_step and duration_steps
  // are milliseconds since scenario start.
  std::vector<InjectionSpec> injections;
};

struct SchedulerResult {
  std::string name;
  size_t workers = 0;
  size_t tenants_total = 0;
  // Outcome tallies over the whole population.
  size_t admitted = 0;   // registration granted a container
  size_t denied = 0;     // ran non-specific after admission rejection
  size_t completed = 0;  // issued every access in the trace
  size_t departed = 0;   // left via departure_step
  size_t terminated = 0; // ended early (checker kill, policy error)
  size_t torn_down = 0;  // region removed by a kTeardown injection
  int64_t checker_kills = 0;
  int64_t audits_run = 0;
  int64_t flight_recorder_dumps = 0;
  // Scheduler mechanics.
  int64_t slices = 0;
  int64_t steals = 0;
  uint64_t total_accesses = 0;
  int64_t total_faults = 0;
  double wall_seconds = 0.0;
  // Tenants retired (completed + departed + terminated + torn down) per wall second — the
  // churn metric bench_parallel reports as scheduler.tenants_per_sec.
  double tenants_per_sec = 0.0;
  double faults_per_sec = 0.0;
  std::vector<TenantResult> tenants;
};

// Builds a real-threads kernel, runs the population over the worker pool to completion, and
// tears down. Throws sim::CheckFailure if any stop-the-world audit finds a violation (after
// dumping the flight recorder and joining the workers).
SchedulerResult RunScheduledScenario(const SchedulerSpec& spec);

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_SCHEDULER_H_
