// The canned multi-tenant scenario library: named, deterministic contention stories used by
// the scenario tests, the bench_scenario benchmark, and the CI perf-smoke gate. Each returns
// a fully-specified ScenarioSpec; run it with RunScenario().
#ifndef HIPEC_SCENARIO_CANNED_H_
#define HIPEC_SCENARIO_CANNED_H_

#include <vector>

#include "scenario/scenario.h"

namespace hipec::scenario {

// 8 specific tenants (mixed policies) arriving two steps apart over 4 non-specific tasks:
// the acceptance scenario — everything completes with invariants intact.
ScenarioSpec RampUp();

// 8 greedy tenants all arriving at step 0: the burst watermark must reject a large share of
// their Requests while every tenant still completes on its minFrame grant.
ScenarioSpec ThunderingHerd();

// One stubborn hog (refuses cooperative reclamation) that grabs early, then 6 small tenants
// arrive: the manager must take the hog's frames back by forced reclamation (FAFR order).
ScenarioSpec HogVsMany();

// Tenants arrive and depart throughout, and one region is torn down mid-scenario by fault
// injection: exercises admission/removal churn and teardown under load.
ScenarioSpec Churn();

// Three infinite-loop policies injected at different times among well-behaved tenants: the
// security checker must kill each looper while the others finish unharmed. Raises the
// per-command decode cost so the loopers cross their TimeOut within few commands.
ScenarioSpec CheckerKillStorm();

// Tiny Flush reserve + write-heavy flusher injection: the clean reserve runs dry and Flush
// degrades to synchronous writes (decision "flush-sync") without breaking solvency.
ScenarioSpec ReserveStarvation();

// A disk latency spike hits mid-scenario and clears: throughput dips, nothing breaks.
ScenarioSpec DiskSpike();

// All of the above, in a stable order.
std::vector<ScenarioSpec> AllCannedScenarios();

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_CANNED_H_
