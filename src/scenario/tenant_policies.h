// Policy programs written for multi-tenant contention scenarios. The library policies
// (src/policies) are self-contained — they recycle within their minFrame grant and never
// call Request — so they cannot exercise the manager's grant/reject, burst-pressure, or
// forced-reclamation paths. These three do, each stressing a different manager behaviour.
#ifndef HIPEC_SCENARIO_TENANT_POLICIES_H_
#define HIPEC_SCENARIO_TENANT_POLICIES_H_

#include "hipec/program.h"

namespace hipec::scenario {

// Greedy grower: serve from the private free list when possible; when it runs dry, Request
// kRequestSize more frames from the global manager, and only on rejection fall back to FIFO
// eviction from its own active queue. A population of these generates continuous allocation
// pressure against the burst watermark.
core::PolicyProgram GreedyPolicy();

// Greedy on faults, but its ReclaimFrame event returns without releasing anything — normal
// (cooperative) reclamation gets nothing from it, so the manager must fall back to forced
// reclamation to claw frames back. The "hog" in hog-vs-many scenarios.
core::PolicyProgram StubbornPolicy();

// PageFault spins in a tight jump loop forever; only the security checker's timeout kill can
// end the event. Used by the fault-injection layer to prove a runaway policy is killed while
// other tenants keep running.
core::PolicyProgram LoopingPolicy();

}  // namespace hipec::scenario

#endif  // HIPEC_SCENARIO_TENANT_POLICIES_H_
