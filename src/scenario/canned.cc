#include "scenario/canned.h"

namespace hipec::scenario {

namespace {

TenantSpec Tenant(std::string name, PolicyKind policy, PatternKind pattern, uint64_t pages,
                  size_t min_frames, size_t accesses, double write_fraction, int arrival) {
  TenantSpec t;
  t.name = std::move(name);
  t.policy = policy;
  t.pattern = pattern;
  t.pages = pages;
  t.min_frames = min_frames;
  t.accesses = accesses;
  t.write_fraction = write_fraction;
  t.arrival_step = arrival;
  return t;
}

BackgroundSpec Background(std::string name, uint64_t pages, size_t accesses,
                          double write_fraction) {
  BackgroundSpec b;
  b.name = std::move(name);
  b.pages = pages;
  b.accesses = accesses;
  b.write_fraction = write_fraction;
  return b;
}

}  // namespace

ScenarioSpec RampUp() {
  ScenarioSpec spec;
  spec.name = "ramp_up";
  spec.seed = 0xA11CE;
  spec.steps = 40;
  spec.tenants = {
      Tenant("greedy-0", PolicyKind::kGreedy, PatternKind::kHotCold, 128, 24, 1200, 0.2, 0),
      Tenant("fifo2c-1", PolicyKind::kFifoSecondChance, PatternKind::kZipf, 112, 24, 1200,
             0.1, 2),
      Tenant("clock-2", PolicyKind::kClock, PatternKind::kHotCold, 96, 24, 1200, 0.0, 4),
      Tenant("greedy-3", PolicyKind::kGreedy, PatternKind::kUniform, 160, 24, 1200, 0.25, 6),
      Tenant("twoq-4", PolicyKind::kTwoQueue, PatternKind::kZipf, 128, 24, 1200, 0.0, 8),
      Tenant("lru-5", PolicyKind::kLru, PatternKind::kHotCold, 96, 24, 1200, 0.1, 10),
      Tenant("greedy-6", PolicyKind::kGreedy, PatternKind::kBursty, 144, 24, 1200, 0.3, 12),
      Tenant("fifo-7", PolicyKind::kFifo, PatternKind::kStrided, 112, 24, 1200, 0.0, 14),
  };
  spec.background = {
      Background("bg-0", 256, 1200, 0.1),
      Background("bg-1", 192, 1200, 0.0),
      Background("bg-2", 256, 1200, 0.2),
      Background("bg-3", 224, 1200, 0.0),
  };
  return spec;
}

ScenarioSpec ThunderingHerd() {
  ScenarioSpec spec;
  spec.name = "thundering_herd";
  spec.seed = 0x4E4D;
  spec.steps = 24;
  // Rejections require the burst headroom above the pinned minimums to be smaller than one
  // Request: reclamation cannot take a victim below min_frames, so with 8 x 106 frames
  // pinned against a watermark of ~0.49 * boot-free (~878) only ~30 spare frames exist —
  // every 32-frame Request overshoots the watermark by more than the total reclaimable
  // surplus and is denied, and the herd falls back to evicting its own pages.
  spec.manager.partition_burst_fraction = 0.49;
  for (int i = 0; i < 8; ++i) {
    TenantSpec t = Tenant("herd-" + std::to_string(i), PolicyKind::kGreedy,
                          PatternKind::kUniform, 192, 106, 1000, 0.15, 0);
    t.request_size = 32;
    spec.tenants.push_back(std::move(t));
  }
  spec.background = {
      Background("bg-0", 256, 800, 0.0),
      Background("bg-1", 256, 800, 0.1),
      Background("bg-2", 192, 800, 0.0),
      Background("bg-3", 192, 800, 0.0),
  };
  return spec;
}

ScenarioSpec HogVsMany() {
  ScenarioSpec spec;
  spec.name = "hog_vs_many";
  spec.seed = 0x4064;
  spec.steps = 40;
  spec.manager.partition_burst_fraction = 0.45;
  // The hog refuses cooperative reclamation and grows unchecked toward the watermark
  // (~0.45 * boot-free = ~800 frames) while it has the machine to itself. The smalls arrive
  // late with pages == min_frames: they never hold reclaimable surplus, so once the hog plus
  // the admitted smalls cross the watermark, each further admission can only be satisfied by
  // ForcedReclaim seizing the hog's oldest frames (FAFR) — and the hog's own Requests, with
  // nobody else above min, are rejected.
  TenantSpec hog =
      Tenant("hog", PolicyKind::kStubborn, PatternKind::kUniform, 700, 64, 3000, 0.1, 0);
  hog.request_size = 48;
  spec.tenants.push_back(std::move(hog));
  for (int i = 0; i < 6; ++i) {
    spec.tenants.push_back(Tenant("small-" + std::to_string(i), PolicyKind::kGreedy,
                                  PatternKind::kHotCold, 48, 48, 600, 0.1, 16 + 2 * i));
  }
  spec.background = {
      Background("bg-0", 256, 1000, 0.0),
      Background("bg-1", 256, 1000, 0.1),
  };
  return spec;
}

ScenarioSpec Churn() {
  ScenarioSpec spec;
  spec.name = "churn";
  spec.seed = 0xC4C4;
  spec.steps = 44;
  for (int i = 0; i < 8; ++i) {
    // Traces are longer than the scenario: departures and the teardown always interrupt a
    // tenant mid-stream (a trace that finishes before its departure step would make the
    // departure a no-op).
    TenantSpec t = Tenant("churn-" + std::to_string(i),
                          i % 2 == 0 ? PolicyKind::kGreedy : PolicyKind::kFifoSecondChance,
                          i % 3 == 0 ? PatternKind::kBursty : PatternKind::kHotCold, 112, 20,
                          i < 4 ? 4000 : 2200, 0.2, i);
    if (i < 4) {
      t.departure_step = 14 + 3 * i;  // half the population departs mid-scenario
    }
    spec.tenants.push_back(std::move(t));
  }
  // Late arrivals into the space the departures opened.
  spec.tenants.push_back(
      Tenant("late-0", PolicyKind::kGreedy, PatternKind::kZipf, 128, 24, 600, 0.1, 20));
  spec.tenants.push_back(
      Tenant("late-1", PolicyKind::kClock, PatternKind::kHotCold, 96, 24, 600, 0.0, 22));
  spec.background = {
      Background("bg-0", 224, 1000, 0.1),
      Background("bg-1", 224, 1000, 0.0),
  };
  InjectionSpec teardown;
  teardown.kind = InjectionKind::kTeardown;
  teardown.at_step = 8;
  teardown.tenant_index = 2;
  spec.injections.push_back(teardown);
  return spec;
}

ScenarioSpec CheckerKillStorm() {
  ScenarioSpec spec;
  spec.name = "checker_kill_storm";
  spec.seed = 0x511;
  spec.steps = 24;
  // A runaway policy advances the clock only by the per-command decode cost; raise it so the
  // loopers cross their TimeOut within tens of thousands of commands instead of millions.
  spec.command_decode_ns = 10 * sim::kMicrosecond;
  spec.tenants = {
      Tenant("worker-0", PolicyKind::kGreedy, PatternKind::kHotCold, 96, 20, 600, 0.1, 0),
      Tenant("worker-1", PolicyKind::kFifoSecondChance, PatternKind::kZipf, 96, 20, 600, 0.0,
             0),
      Tenant("worker-2", PolicyKind::kClock, PatternKind::kHotCold, 80, 20, 600, 0.1, 1),
      Tenant("worker-3", PolicyKind::kLru, PatternKind::kUniform, 80, 20, 600, 0.0, 1),
  };
  spec.background = {
      Background("bg-0", 192, 600, 0.0),
      Background("bg-1", 192, 600, 0.0),
  };
  for (int i = 0; i < 3; ++i) {
    InjectionSpec loop;
    loop.kind = InjectionKind::kPolicyLoop;
    loop.at_step = 2 + 4 * i;
    loop.pages = 32;
    loop.min_frames = 8;
    loop.accesses = 64;
    spec.injections.push_back(loop);
  }
  return spec;
}

ScenarioSpec ReserveStarvation() {
  ScenarioSpec spec;
  spec.name = "reserve_starvation";
  spec.seed = 0x5A47;
  spec.steps = 30;
  spec.manager.reserve_frames = 4;  // tiny Flush reserve: easy to run dry
  // Policies only execute the Flush command on their own eviction path, and greedy tenants
  // only evict once Request is denied — so pin the writers at min_frames against a low
  // watermark (~0.20 * boot-free = ~358; 4 x 84 = 336 pinned, 22 spare < one 24-frame
  // Request). Every Request overshoots, gets rejected, and the writer evicts its own dirty
  // pages (write_fraction 0.7) through Flush. With 4 reserve frames and millisecond
  // write-backs in flight, the reserve runs dry and Flush degrades to the synchronous path
  // (flush-sync decisions).
  spec.manager.partition_burst_fraction = 0.20;
  for (int i = 0; i < 4; ++i) {
    TenantSpec t = Tenant("writer-" + std::to_string(i), PolicyKind::kGreedy,
                          PatternKind::kUniform, 120, 84, 1400, 0.7, i);
    t.request_size = 24;
    spec.tenants.push_back(std::move(t));
  }
  spec.background = {Background("bg-0", 192, 800, 0.2)};
  InjectionSpec starve;
  starve.kind = InjectionKind::kReserveStarvation;
  starve.at_step = 2;
  starve.pages = 128;
  starve.min_frames = 16;
  starve.accesses = 1024;
  spec.injections.push_back(starve);
  return spec;
}

ScenarioSpec DiskSpike() {
  ScenarioSpec spec;
  spec.name = "disk_spike";
  spec.seed = 0xD15C;
  spec.steps = 30;
  spec.tenants = {
      Tenant("t-0", PolicyKind::kGreedy, PatternKind::kHotCold, 112, 20, 800, 0.15, 0),
      Tenant("t-1", PolicyKind::kFifoSecondChance, PatternKind::kZipf, 112, 20, 800, 0.1, 1),
      Tenant("t-2", PolicyKind::kClock, PatternKind::kUniform, 96, 20, 800, 0.0, 2),
      Tenant("t-3", PolicyKind::kTwoQueue, PatternKind::kZipf, 112, 20, 800, 0.0, 3),
      Tenant("t-4", PolicyKind::kGreedy, PatternKind::kBursty, 96, 20, 800, 0.2, 4),
  };
  spec.background = {
      Background("bg-0", 224, 800, 0.1),
      Background("bg-1", 224, 800, 0.0),
  };
  InjectionSpec spike;
  spike.kind = InjectionKind::kDiskLatencySpike;
  spike.at_step = 8;
  spike.duration_steps = 6;
  spike.extra_latency_ns = 20 * sim::kMillisecond;
  spec.injections.push_back(spike);
  return spec;
}

std::vector<ScenarioSpec> AllCannedScenarios() {
  return {RampUp(),  ThunderingHerd(),    HogVsMany(), Churn(),
          CheckerKillStorm(), ReserveStarvation(), DiskSpike()};
}

}  // namespace hipec::scenario
